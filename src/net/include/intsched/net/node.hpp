#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "intsched/net/packet.hpp"
#include "intsched/net/queue.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/sim/simulator.hpp"
#include "intsched/sim/units.hpp"

namespace intsched::net {

class FaultPlan;
class Node;

/// Per-direction link parameters. A Topology::connect call creates one Port
/// on each endpoint, both using the same config (full-duplex, symmetric).
struct LinkConfig {
  sim::DataRate rate = sim::DataRate::megabits_per_second(100.0);
  sim::SimDuration prop_delay = sim::SimDuration::millis(10);
  /// Uniform extra propagation jitter in [0, jitter]; arrivals stay
  /// monotonic per channel (no reordering on a link).
  sim::SimDuration jitter = sim::SimDuration::zero();
  std::int64_t queue_capacity_pkts = 512;
};

/// One attachment point of a node: an egress queue plus a transmitter
/// feeding a directed channel to a peer port. Ingress needs no state — the
/// peer's transmitter delivers straight into Node::receive.
class Port {
 public:
  Port(Node& owner, std::int32_t index, LinkConfig cfg);

  /// Queues the packet for transmission, starting the transmitter if idle.
  /// Returns false when the drop-tail queue rejected it.
  bool send(Packet&& p);

  void connect_to(Node& peer, std::int32_t peer_port);

  [[nodiscard]] std::int32_t index() const { return index_; }
  [[nodiscard]] Node& owner() const { return owner_; }
  [[nodiscard]] Node* peer() const { return peer_; }
  [[nodiscard]] std::int32_t peer_port() const { return peer_port_; }
  [[nodiscard]] const LinkConfig& config() const { return cfg_; }

  [[nodiscard]] DropTailQueue& queue() { return queue_; }
  [[nodiscard]] const DropTailQueue& queue() const { return queue_; }

  [[nodiscard]] std::int64_t tx_packets() const { return tx_packets_; }
  [[nodiscard]] sim::Bytes tx_bytes() const { return tx_bytes_; }

  /// Busy fraction accumulator: total time the transmitter was serving
  /// packets. utilization = busy_time / elapsed.
  [[nodiscard]] sim::SimDuration busy_time() const { return busy_time_; }

  /// Opts this port into fault injection: the transmitter consults the
  /// plan's link state before putting bits on the wire. Null (the default)
  /// means no fault checks at all.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }

 private:
  void try_transmit();

  Node& owner_;
  std::int32_t index_;
  LinkConfig cfg_;
  DropTailQueue queue_;
  Node* peer_ = nullptr;
  std::int32_t peer_port_ = -1;
  FaultPlan* faults_ = nullptr;
  bool transmitting_ = false;
  sim::SimTime last_arrival_ = sim::SimTime::zero();
  std::int64_t tx_packets_ = 0;
  sim::Bytes tx_bytes_ = 0;
  sim::SimDuration busy_time_ = sim::SimDuration::zero();
};

enum class NodeKind { kHost, kSwitch };

/// Base class for anything attached to the network. Subclasses implement
/// receive() (what to do with an arriving packet) and may hook the egress
/// path (on_egress) and add per-packet service latency
/// (egress_service_delay) — the latter is how the BMv2 software-switch
/// processing bottleneck is modelled.
class Node {
 public:
  Node(sim::Simulator& sim, core::NodeId id, std::string name, NodeKind kind);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] core::NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] sim::Simulator& simulator() const { return sim_; }

  Port& add_port(LinkConfig cfg);
  [[nodiscard]] Port& port(std::int32_t index);
  [[nodiscard]] const Port& port(std::int32_t index) const;
  [[nodiscard]] std::int32_t port_count() const {
    return static_cast<std::int32_t>(ports_.size());
  }

  /// Handles a packet arriving on `ingress_port`.
  virtual void receive(Packet&& p, std::int32_t ingress_port) = 0;

  /// Called by a Port as a packet leaves its queue, before serialization.
  /// The INT program's egress stage (probe timestamping, register
  /// collection) hooks in here.
  virtual void on_egress(Packet& p, Port& out) { (void)p; (void)out; }

  /// Extra per-packet service time charged by this node's data plane on the
  /// given egress port (0 for plain hosts; BMv2-like processing delay for
  /// P4 switches).
  [[nodiscard]] virtual sim::SimDuration egress_service_delay(const Packet& p,
                                                              const Port& out) {
    (void)p; (void)out;
    return sim::SimDuration::zero();
  }

  /// Routing hook: remembers which port reaches `dst`. The base class
  /// stores the mapping; subclasses decide whether to consult it.
  virtual void set_route(core::NodeId dst, std::int32_t port_index);
  [[nodiscard]] std::int32_t route_to(core::NodeId dst) const;

  /// Crash-fault state. An offline node loses every packet that arrives
  /// (counted in rx_dropped_offline); subclasses hook on_online_changed to
  /// model state loss across a restart (a P4 switch clears its INT
  /// registers). Nodes start online; only fault injection takes them down.
  [[nodiscard]] bool online() const { return online_; }
  void set_online(bool online) {
    if (online == online_) return;
    online_ = online;
    on_online_changed();
  }
  [[nodiscard]] std::int64_t rx_dropped_offline() const {
    return rx_dropped_offline_;
  }

  /// Local clock with optional skew, for timestamping telemetry the way an
  /// (imperfectly) NTP-synced device would.
  [[nodiscard]] sim::SimTime local_time() const {
    return sim_.now() + clock_skew_;
  }
  void set_clock_skew(sim::SimDuration skew) { clock_skew_ = skew; }
  [[nodiscard]] sim::SimDuration clock_skew() const { return clock_skew_; }

  [[nodiscard]] std::int64_t rx_packets() const { return rx_packets_; }
  [[nodiscard]] sim::Bytes rx_bytes() const { return rx_bytes_; }

 protected:
  friend class Port;
  void note_rx(const Packet& p) {
    ++rx_packets_;
    rx_bytes_ += p.wire_size;
  }
  void note_offline_drop() { ++rx_dropped_offline_; }

  /// Called after online() flips (both directions).
  virtual void on_online_changed() {}

 private:
  sim::Simulator& sim_;
  core::NodeId id_;
  std::string name_;
  NodeKind kind_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::unordered_map<core::NodeId, std::int32_t> routes_;
  sim::SimDuration clock_skew_ = sim::SimDuration::zero();
  bool online_ = true;
  std::int64_t rx_packets_ = 0;
  sim::Bytes rx_bytes_ = 0;
  std::int64_t rx_dropped_offline_ = 0;
};

/// A plain end host: single-homed, delivers arriving packets to a
/// registered receiver callback (the transport layer). Outbound traffic
/// goes through port 0 unconditionally.
class Host : public Node {
 public:
  using Receiver = std::function<void(Packet&&)>;

  Host(sim::Simulator& sim, core::NodeId id, std::string name)
      : Node(sim, id, std::move(name), NodeKind::kHost) {}

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  void receive(Packet&& p, std::int32_t ingress_port) override;

  /// Sends via port 0; assigns the packet uid. Returns false on local
  /// queue drop.
  bool send(Packet&& p);

 private:
  Receiver receiver_;
  std::uint64_t next_uid_ = 1;
};

}  // namespace intsched::net
