#pragma once

#include <concepts>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "intsched/net/node.hpp"
#include "intsched/net/routing.hpp"
#include "intsched/sim/simulator.hpp"

namespace intsched::net {

/// Owns all nodes of an emulated network, wires them together, and installs
/// shortest-path routes. The mininet-equivalent of this reproduction.
class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_{sim} {}

  /// Creates a node of type T (must derive from Node). The id is assigned
  /// sequentially and doubles as the node's address.
  template <std::derived_from<Node> T, typename... Args>
  T& add_node(std::string name, Args&&... args) {
    const core::NodeId id{static_cast<std::int32_t>(nodes_.size())};
    auto node = std::make_unique<T>(sim_, id, std::move(name),
                                    std::forward<Args>(args)...);
    T& ref = *node;
    by_id_.emplace(id, node.get());
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a full-duplex link: one port on each node, cross-connected,
  /// both directions using `cfg`.
  void connect(Node& a, Node& b, const LinkConfig& cfg);

  /// Computes shortest paths (cost = propagation delay) between all pairs
  /// and installs next-hop forwarding state into every node. Must be called
  /// after all connect() calls and before traffic starts.
  void install_routes();

  /// Ground-truth graph (edge cost = propagation delay). Valid after the
  /// first connect().
  [[nodiscard]] const Graph& graph() const { return graph_; }

  /// Ground-truth node sequence a..b inclusive along installed routes.
  /// Requires install_routes() to have run.
  [[nodiscard]] std::vector<core::NodeId> path(core::NodeId a, core::NodeId b) const;

  /// Ground-truth path delay (sum of link propagation delays), the
  /// uncongested baseline the paper's Delay() formula estimates.
  [[nodiscard]] sim::SimDuration path_delay(core::NodeId a, core::NodeId b) const;

  [[nodiscard]] Node& node(core::NodeId id) const;
  [[nodiscard]] std::vector<Node*> nodes_of_kind(NodeKind kind) const;
  [[nodiscard]] std::int64_t node_count() const {
    return static_cast<std::int64_t>(nodes_.size());
  }
  [[nodiscard]] sim::Simulator& simulator() const { return sim_; }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<core::NodeId, Node*> by_id_;
  Graph graph_;
  std::unordered_map<core::NodeId, ShortestPaths> paths_;  // per source
};

}  // namespace intsched::net
