#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "intsched/core/types.hpp"
#include "intsched/sim/time.hpp"
#include "intsched/sim/units.hpp"

namespace intsched::net {

// The node identifier moved to intsched/core/types.hpp (core::NodeId): a
// network address is not a packet concern, and the old home forced packet
// includes everywhere an id was named. These compatibility aliases last
// exactly one PR; the analyzer preset (INTSCHED_STRICT_TYPES) already
// rejects them so no new in-tree use can appear.
#if defined(INTSCHED_STRICT_TYPES)
using NodeId [[deprecated("use core::NodeId (intsched/core/types.hpp)")]] =
    core::NodeId;
[[deprecated("use core::kInvalidNode (intsched/core/types.hpp)")]]
inline constexpr core::NodeId kInvalidNode = core::kInvalidNode;
#else
using NodeId = core::NodeId;
inline constexpr core::NodeId kInvalidNode = core::kInvalidNode;
#endif

/// Transport port number for application demultiplexing on hosts.
using PortNumber = std::uint16_t;

enum class IpProtocol : std::uint8_t { kUdp, kTcp };

/// Well-known ports used by the system (values are arbitrary but fixed).
inline constexpr PortNumber kProbePort = 5001;       ///< INT probe sink
inline constexpr PortNumber kSchedulerPort = 5002;   ///< scheduler service
inline constexpr PortNumber kTaskPort = 5003;        ///< edge-server task intake
inline constexpr PortNumber kTaskDonePort = 5004;    ///< completion notices
inline constexpr PortNumber kIperfPort = 5201;       ///< background traffic
inline constexpr PortNumber kPingPort = 7;           ///< echo

struct UdpHeader {
  PortNumber src_port = 0;
  PortNumber dst_port = 0;
};

enum class TcpFlag : std::uint8_t {
  kNone = 0,
  kSyn = 1u << 0,
  kAck = 1u << 1,
  kFin = 1u << 2,
};

[[nodiscard]] constexpr TcpFlag operator|(TcpFlag a, TcpFlag b) {
  return static_cast<TcpFlag>(static_cast<std::uint8_t>(a) |
                              static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has_flag(TcpFlag flags, TcpFlag f) {
  return (static_cast<std::uint8_t>(flags) & static_cast<std::uint8_t>(f)) !=
         0;
}

struct TcpHeader {
  PortNumber src_port = 0;
  PortNumber dst_port = 0;
  std::int64_t seq = 0;        ///< first payload byte carried (byte index)
  std::int64_t ack = 0;        ///< next byte expected by the sender of this seg
  TcpFlag flags = TcpFlag::kNone;
};

/// Geneve-style tunnel option used to mark INT probe packets so the data
/// plane can distinguish them from production traffic (paper §III-A: "UDP
/// with certain IP header fields set (aka Geneve option)").
struct GeneveOption {
  std::uint16_t option_class = 0x0103;  ///< experimental class
  std::uint8_t type = 0;
};
inline constexpr std::uint8_t kIntProbeOptionType = 0x42;

/// One hop's worth of telemetry appended to a probe packet by the INT data
/// plane program. Entries appear in traversal order, which is what lets the
/// scheduler reconstruct the topology (paper §III-B).
struct IntStackEntry {
  core::NodeId device = core::kInvalidNode;       ///< switch that appended this entry
  std::int32_t ingress_port = -1;     ///< port the probe arrived on
  std::int32_t egress_port = -1;      ///< port the probe left through
  /// Max egress-queue occupancy (packets) observed on the probe's egress
  /// port since the previous probe collected (and reset) the register.
  std::int64_t max_queue_pkts = 0;
  /// Max occupancy across all of the device's ports since last collection.
  std::int64_t device_max_queue_pkts = 0;
  /// Mean occupancy observed by packets since last collection, in
  /// hundredths of a packet (fixed point). The paper evaluates this
  /// statistic and finds it "inconclusive" — it stays near zero even at
  /// full load; carried so the ablation can reproduce that finding.
  std::int64_t device_avg_queue_x100 = 0;
  /// Link latency of the hop the probe arrived over, measured by egress
  /// timestamping at the upstream device and ingress extraction here
  /// (kInvalid for the first hop, which has no upstream switch timestamp).
  sim::SimDuration ingress_link_latency = sim::SimDuration::nanos(-1);
  /// Device-local time when the probe left this device (egress stage).
  sim::SimTime egress_timestamp = sim::SimTime::zero();
  /// Maximum in-device dwell time (queueing) measured directly by the
  /// data plane since the last collection — what a full INT deployment
  /// reports as "hop latency". The paper approximates this with
  /// k * max_queue because its registers only store occupancy; the
  /// direct measurement feeds the kMeasuredHopLatency ranking ablation.
  sim::SimDuration max_hop_latency = sim::SimDuration::zero();
};
inline constexpr sim::Bytes kIntStackEntryWireBytes = 32;

/// Base class for structured application payloads carried by control-plane
/// datagrams (scheduler requests/responses, task submissions). Data-plane
/// bulk bytes are modelled by packet sizes alone and carry no message.
struct AppMessage {
  virtual ~AppMessage() = default;
};

/// A simulated network packet. Header fields are plain data; wire_size
/// accounts for everything (headers + payload + INT stack) and is what the
/// links and queues charge for.
struct Packet {
  // -- L3 --
  core::NodeId src = core::kInvalidNode;
  core::NodeId dst = core::kInvalidNode;
  IpProtocol protocol = IpProtocol::kUdp;
  std::int32_t ttl = 64;

  // -- L4 --
  std::variant<UdpHeader, TcpHeader> l4 = UdpHeader{};

  // -- Options / telemetry --
  std::optional<GeneveOption> geneve;
  std::vector<IntStackEntry> int_stack;
  /// Loose source route for probe packets (probe-route optimization, the
  /// paper's §III-A future work): remaining waypoint node ids, visited in
  /// order before heading to dst. Empty for normal traffic.
  std::vector<core::NodeId> source_route;
  /// Scratch field used by the INT program's link-latency measurement: the
  /// upstream device's egress timestamp, overwritten at every hop.
  sim::SimTime last_egress_timestamp = sim::SimTime::nanoseconds(-1);
  /// P4 standard_metadata survival between the ingress and egress stages of
  /// the device currently holding the packet: the port it arrived on and
  /// the link latency its ingress stage measured (probe packets only).
  std::int32_t meta_ingress_port = -1;
  sim::SimDuration meta_link_latency = sim::SimDuration::nanos(-1);
  /// P4 standard_metadata.ingress_global_timestamp: when this device's
  /// ingress stage saw the packet (device-local clock).
  sim::SimTime meta_ingress_timestamp = sim::SimTime::nanoseconds(-1);

  // -- Payload --
  sim::Bytes wire_size = 0;
  std::shared_ptr<const AppMessage> app;

  /// Monotonic id for tracing/debugging; assigned by the sender.
  std::uint64_t uid = 0;

  [[nodiscard]] const UdpHeader* udp() const {
    return std::get_if<UdpHeader>(&l4);
  }
  [[nodiscard]] const TcpHeader* tcp() const {
    return std::get_if<TcpHeader>(&l4);
  }
  [[nodiscard]] bool is_int_probe() const {
    return geneve.has_value() && geneve->type == kIntProbeOptionType;
  }
};

/// Conventional header overhead charged to every packet (Ethernet + IP +
/// UDP/TCP, rounded).
inline constexpr sim::Bytes kHeaderBytes = 54;
/// Maximum transport payload per packet, chosen so a full segment plus
/// headers matches the paper's 1.5 KB packets.
inline constexpr sim::Bytes kMss = 1446;

[[nodiscard]] std::string to_string(const Packet& p);

}  // namespace intsched::net
