#pragma once

// Parametric metro-scale topology generators (fat-tree/Clos pods and a
// ring-of-pods metro), producing graph-level topologies for the scheduler
// layers: thousands of switches and hundreds of edge servers, far beyond
// what the packet-level net::Topology is meant to simulate. A GenTopology
// carries nodes, undirected links with base delays, and a region (pod)
// label per node — the unit the region-sharded scheduler state
// (core::ShardedNetworkMap) shards by.
//
// Determinism contract: generation is a pure function of the config.
// Per-link delay jitter (which makes shortest paths almost surely unique,
// so two-level ranking agrees exactly with flat ranking) is drawn from a
// named sim::Rng stream in link-creation order; two calls with equal
// configs produce byte-identical topologies (fingerprint()).

#include <cstdint>
#include <string>
#include <vector>

#include "intsched/core/types.hpp"
#include "intsched/net/node.hpp"
#include "intsched/net/routing.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/sim/time.hpp"

namespace intsched::net {

// The region index moved to intsched/core/types.hpp (core::RegionId);
// compatibility aliases, kept one PR like net::NodeId (see packet.hpp).
#if defined(INTSCHED_STRICT_TYPES)
using RegionId [[deprecated("use core::RegionId (intsched/core/types.hpp)")]] =
    core::RegionId;
[[deprecated("use core::kNoRegion (intsched/core/types.hpp)")]]
inline constexpr core::RegionId kNoRegion = core::kNoRegion;
#else
using RegionId = core::RegionId;
inline constexpr core::RegionId kNoRegion = core::kNoRegion;
#endif

struct GenNode {
  core::NodeId id = core::kInvalidNode;  ///< == index into GenTopology::nodes
  NodeKind kind = NodeKind::kSwitch;
  core::RegionId region = core::kNoRegion;
  bool edge_server = false;  ///< hosts only
  std::string name;
};

/// Undirected link with its base one-way delay (assumed symmetric).
struct GenLink {
  core::NodeId a = core::kInvalidNode;
  core::NodeId b = core::kInvalidNode;
  sim::SimDuration delay = sim::SimDuration::zero();
};

/// One pod: `leaves` x `spines` full-bipartite Clos fabric with
/// `hosts_per_leaf` hosts per leaf; the first `edge_servers_per_pod`
/// hosts of the pod are flagged as candidate edge servers.
struct PodShape {
  std::int32_t spines = 2;
  std::int32_t leaves = 4;
  std::int32_t hosts_per_leaf = 2;
  std::int32_t edge_servers_per_pod = 2;
  sim::SimDuration host_link_delay = sim::SimDuration::millis(2);
  sim::SimDuration fabric_link_delay = sim::SimDuration::millis(5);
};

/// Ring-of-pods metro: `pods` identical Clos pods whose first
/// `gateways_per_pod` spines carry inter-pod ring links. The ring delay
/// defaults to well above any intra-pod path so regions are
/// delay-isolated — the regime where two-level (region, then server)
/// selection is exact (DESIGN.md §11).
struct MetroConfig {
  std::uint64_t seed = 42;
  std::int32_t pods = 2;
  PodShape pod{};
  std::int32_t gateways_per_pod = 1;
  sim::SimDuration ring_link_delay = sim::SimDuration::millis(20);
  /// Extra gateway links from pod i to the pod halfway around the ring
  /// (requires >= 4 pods); shortens metro diameter without breaking
  /// delay isolation.
  std::int32_t ring_chords = 0;
  /// Multiplicative uniform jitter (+-frac) applied per link to the base
  /// delay. Non-zero makes shortest paths almost surely unique.
  double delay_jitter_frac = 0.05;
};

/// A generated topology: nodes (id == index), undirected links in
/// generation order, and the region count. Purely data — instantiate the
/// Graph view with graph() for routing/ranking layers.
struct GenTopology {
  std::vector<GenNode> nodes;
  std::vector<GenLink> links;
  core::RegionId regions{0};

  [[nodiscard]] core::RegionId region_of(core::NodeId n) const {
    if (!n.valid() || n.index() >= nodes.size()) {
      return core::kNoRegion;
    }
    return nodes[n.index()].region;
  }

  [[nodiscard]] std::int64_t switch_count() const;
  [[nodiscard]] std::vector<core::NodeId> hosts() const;
  [[nodiscard]] std::vector<core::NodeId> edge_servers() const;
  /// Links whose endpoints lie in different regions (the ring/chord
  /// links) — the summary graph's edge set.
  [[nodiscard]] std::vector<GenLink> border_links() const;

  /// Directed graph view with both directions per link. Egress ports are
  /// assigned per node in link-creation order (deterministic), so every
  /// (node, neighbour) pair has a stable port number.
  [[nodiscard]] Graph graph() const;

  /// Well-formedness violations, empty when the topology is sound:
  /// dense ids, valid regions, no self-loops or duplicate links,
  /// positive delays, connectivity, hosts of degree exactly 1, and (when
  /// `max_switch_degree` > 0) the switch degree bound.
  [[nodiscard]] std::vector<std::string> validate(
      std::int32_t max_switch_degree = 0) const;

  /// Canonical serialization of every field — byte-identical iff the
  /// topologies are identical. The seed-determinism property tests
  /// compare these.
  [[nodiscard]] std::string fingerprint() const;
};

/// The generators. Both are pure functions of their arguments.
class TopologyGen {
 public:
  /// Single Clos pod (region 0), optionally with per-link delay jitter
  /// drawn from `seed`.
  [[nodiscard]] static GenTopology clos_pod(const PodShape& shape,
                                            std::uint64_t seed,
                                            double delay_jitter_frac = 0.0);

  /// Ring-of-pods metro; region = pod index.
  [[nodiscard]] static GenTopology ring_of_pods(const MetroConfig& cfg);
};

}  // namespace intsched::net
