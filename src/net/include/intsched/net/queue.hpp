#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "intsched/net/packet.hpp"

namespace intsched::net {

/// FIFO drop-tail egress queue with occupancy instrumentation. This is the
/// queue whose length the INT data-plane program samples: the paper's whole
/// congestion signal is "max egress queue occupancy within a probing
/// interval".
class DropTailQueue {
 public:
  explicit DropTailQueue(std::int64_t capacity_pkts)
      : capacity_{capacity_pkts} {}

  /// Enqueues, or drops when full. Returns true if enqueued.
  bool enqueue(Packet&& p);

  /// Pops the head packet; nullopt when empty.
  std::optional<Packet> dequeue();

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::int64_t size_pkts() const {
    return static_cast<std::int64_t>(q_.size());
  }
  [[nodiscard]] sim::Bytes size_bytes() const { return bytes_; }
  [[nodiscard]] std::int64_t capacity_pkts() const { return capacity_; }

  // Lifetime counters.
  [[nodiscard]] std::int64_t enqueued() const { return enqueued_; }
  [[nodiscard]] std::int64_t dequeued() const { return dequeued_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }

  /// Observer invoked on every enqueue attempt with the occupancy the
  /// arriving packet observed (pre-enqueue depth — BMv2's enq_qdepth
  /// semantics; a full queue reports its capacity on drop). The INT
  /// program uses this to maintain its max-occupancy register at packet
  /// granularity. Idle queues therefore report 0, matching the paper's
  /// "many packets observe empty queue".
  void set_occupancy_observer(std::function<void(std::int64_t)> cb) {
    occupancy_observer_ = std::move(cb);
  }
  void set_drop_observer(std::function<void(const Packet&)> cb) {
    drop_observer_ = std::move(cb);
  }

 private:
  std::deque<Packet> q_;
  std::int64_t capacity_;
  sim::Bytes bytes_ = 0;
  std::int64_t enqueued_ = 0;
  std::int64_t dequeued_ = 0;
  std::int64_t dropped_ = 0;
  std::function<void(std::int64_t)> occupancy_observer_;
  std::function<void(const Packet&)> drop_observer_;
};

}  // namespace intsched::net
