#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "intsched/net/packet.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/sim/time.hpp"

namespace intsched::net {

class Topology;

/// Probabilistic probe-packet faults, applied by the probe agent before a
/// probe enters the network (telemetry loss is the common case in real INT
/// deployments; production traffic is not touched). Decisions draw from
/// named Rng streams owned by the FaultPlan, so enabling one fault kind
/// never perturbs the sequence another kind sees.
struct ProbeFaultConfig {
  /// Fraction of probes silently lost before transmission.
  double drop_probability = 0.0;
  /// Fraction of probes emitted twice back-to-back (duplicated reports).
  double duplicate_probability = 0.0;
  /// Fraction of probes held back for a uniform delay in
  /// [delay_min, delay_max] before being sent (stale/out-of-order arrival).
  double delay_probability = 0.0;
  sim::SimDuration delay_min = sim::SimDuration::millis(50);
  sim::SimDuration delay_max = sim::SimDuration::millis(500);
};

/// One scheduled down/up cycle of the undirected link a<->b. While down,
/// packets entering either direction of the wire are lost.
struct LinkFlapSpec {
  core::NodeId a = core::kInvalidNode;
  core::NodeId b = core::kInvalidNode;
  sim::SimTime down_at = sim::SimTime::zero();
  sim::SimTime up_at = sim::SimTime::zero();  ///< <= down_at: stays down
};

/// Kill/restart cycle of one node. While dead the node drops every
/// arriving packet; a restarting P4 switch additionally loses all INT
/// register state (cleared to initial values).
struct SwitchKillSpec {
  core::NodeId node = core::kInvalidNode;
  sim::SimTime kill_at = sim::SimTime::zero();
  sim::SimTime restart_at = sim::SimTime::zero();  ///< <= kill_at: stays dead
};

/// Constant per-node timestamp skew applied when the plan is armed —
/// models the NTP-sync assumption (paper footnote 1) being violated.
struct ClockSkewSpec {
  core::NodeId node = core::kInvalidNode;
  sim::SimDuration skew = sim::SimDuration::zero();
};

/// Full description of the faults injected into one run. Default-constructed
/// plans are inert: enabled() is false and nothing in the data path changes
/// behaviour (the zero-cost default every seed experiment relies on).
struct FaultPlanConfig {
  std::uint64_t seed = 1;
  ProbeFaultConfig probe{};
  std::vector<LinkFlapSpec> link_flaps;
  std::vector<SwitchKillSpec> switch_kills;
  std::vector<ClockSkewSpec> clock_skews;

  [[nodiscard]] bool enabled() const {
    return probe.drop_probability > 0.0 ||
           probe.duplicate_probability > 0.0 ||
           probe.delay_probability > 0.0 || !link_flaps.empty() ||
           !switch_kills.empty() || !clock_skews.empty();
  }
};

/// Injection-side ledger. Together with per-node offline-drop counters and
/// per-queue drop counters this closes the packet conservation equation the
/// property suite checks: sent + duplicated = delivered + dropped.
struct FaultCounters {
  std::int64_t probes_dropped = 0;     ///< suppressed before transmission
  std::int64_t probes_delayed = 0;
  std::int64_t probes_duplicated = 0;  ///< extra copies injected
  std::int64_t packets_lost_link_down = 0;
  std::int64_t link_down_events = 0;
  std::int64_t link_up_events = 0;
  std::int64_t switch_kills = 0;
  std::int64_t switch_restarts = 0;
};

/// Deterministic fault-injection layer driven by the event queue and
/// sim::Rng streams. Construct from a config, then arm() it on a topology:
/// every port consults the plan's link state at transmit time, the
/// flap/kill schedules become simulator events, and clock skews are
/// applied. Probe agents opt in via ProbeConfig::faults.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  /// Wires the plan into the topology and arms the flap/kill schedules on
  /// its simulator. Events whose time is already past fire immediately.
  /// Call once, after topology wiring.
  void arm(Topology& topo);

  [[nodiscard]] const FaultPlanConfig& config() const { return cfg_; }

  // -- probe faults (consulted by telemetry::ProbeAgent) --

  /// Draws the per-probe drop decision (counts when true).
  [[nodiscard]] bool should_drop_probe();
  /// Draws the per-probe duplication decision (counts when true).
  [[nodiscard]] bool should_duplicate_probe();
  /// Draws the per-probe delay decision; nullopt = send immediately.
  [[nodiscard]] std::optional<sim::SimDuration> probe_delay();

  // -- link state (consulted by net::Port at transmit time) --

  [[nodiscard]] bool link_up(core::NodeId a, core::NodeId b) const;
  void set_link_state(core::NodeId a, core::NodeId b, bool up);
  void note_packet_lost_link_down() { ++counters_.packets_lost_link_down; }

  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

 private:
  /// Ledger conservation checks (active only under INTSCHED_AUDIT):
  /// counters never go negative, every restart had a prior kill, every
  /// link-up had a prior link-down. Called after each counter mutation.
  void audit_ledger() const;
  static std::pair<core::NodeId, core::NodeId> link_key(core::NodeId a, core::NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  FaultPlanConfig cfg_;
  sim::Rng drop_rng_;
  sim::Rng dup_rng_;
  sim::Rng delay_rng_;
  std::set<std::pair<core::NodeId, core::NodeId>> down_links_;
  FaultCounters counters_;
};

}  // namespace intsched::net
