#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "intsched/core/contracts.hpp"
#include "intsched/net/packet.hpp"
#include "intsched/sim/time.hpp"

namespace intsched::net {

/// Lightweight graph view of a topology used by the routing computation and
/// by the scheduler's network map. Edges are directed; connect() in the
/// topology adds both directions.
struct Graph {
  struct Edge {
    core::NodeId to = core::kInvalidNode;
    std::int32_t out_port = -1;   ///< egress port on the source node
    sim::SimDuration cost = sim::SimDuration::zero();
  };

  /// adjacency[node] -> outgoing edges, in insertion order.
  std::unordered_map<core::NodeId, std::vector<Edge>> adjacency;

  void add_edge(core::NodeId from, core::NodeId to, std::int32_t out_port,
                sim::SimDuration cost);
  [[nodiscard]] bool has_node(core::NodeId n) const {
    return adjacency.contains(n);
  }
  [[nodiscard]] std::vector<core::NodeId> nodes() const;
};

/// Result of a single-source shortest-path run.
struct ShortestPaths {
  core::NodeId source = core::kInvalidNode;
  /// Distance from source; missing key = unreachable.
  std::unordered_map<core::NodeId, sim::SimDuration> distance;
  /// Predecessor on the chosen shortest path (deterministic tie-break:
  /// smallest predecessor id wins).
  std::unordered_map<core::NodeId, core::NodeId> predecessor;
  /// First-hop egress port at the source toward each destination.
  std::unordered_map<core::NodeId, std::int32_t> first_hop_port;

  /// Node sequence source..dst inclusive; empty if unreachable.
  [[nodiscard]] INTSCHED_COLDPATH std::vector<core::NodeId> path_to(
      core::NodeId dst) const;

  /// Appends the node sequence source..dst (inclusive) to `out`; returns
  /// false — appending nothing — when dst is unreachable. The
  /// allocation-free flavour of path_to for hot paths: with enough
  /// capacity in `out` no heap allocation happens (the serving path
  /// reuses one scratch vector per thread, DESIGN.md §13).
  bool append_path_to(core::NodeId dst, std::vector<core::NodeId>& out) const;
};

/// Dijkstra with deterministic tie-breaking (by distance, then node id) so
/// route tables — and therefore every experiment — are reproducible.
[[nodiscard]] INTSCHED_COLDPATH ShortestPaths dijkstra(const Graph& g,
                                                       core::NodeId source);

}  // namespace intsched::net
