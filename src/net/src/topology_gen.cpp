#include "intsched/net/topology_gen.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "intsched/sim/strfmt.hpp"

namespace intsched::net {
namespace {

/// Jittered copy of a base delay: base * (1 +- frac), quantized to whole
/// nanoseconds (SimTime's resolution) so fingerprints are exact.
sim::SimDuration jittered(sim::SimDuration base, double frac, sim::Rng& rng) {
  if (frac <= 0.0) return base;
  const double scale = rng.uniform_real(1.0 - frac, 1.0 + frac);
  return sim::SimDuration::nanos(static_cast<std::int64_t>(
      static_cast<double>(base.ns()) * scale));
}

struct Builder {
  GenTopology topo;
  sim::Rng rng;
  double jitter_frac;

  Builder(std::uint64_t seed, double jitter)
      : rng{sim::Rng::derive(seed, "topogen.link")}, jitter_frac{jitter} {}

  core::NodeId add_node(NodeKind kind, core::RegionId region, bool edge_server,
                  std::string name) {
    const core::NodeId id{static_cast<std::int32_t>(topo.nodes.size())};
    topo.nodes.push_back(GenNode{id, kind, region, edge_server,
                                 std::move(name)});
    return id;
  }

  void link(core::NodeId a, core::NodeId b, sim::SimDuration base_delay) {
    topo.links.push_back(GenLink{a, b, jittered(base_delay, jitter_frac,
                                                rng)});
  }

  /// Appends one Clos pod; returns the pod's spine node ids (the first
  /// gateways_per_pod of them carry the ring links).
  std::vector<core::NodeId> add_pod(const PodShape& shape, core::RegionId region) {
    std::vector<core::NodeId> spines;
    spines.reserve(static_cast<std::size_t>(shape.spines));
    for (std::int32_t s = 0; s < shape.spines; ++s) {
      spines.push_back(add_node(NodeKind::kSwitch, region, false,
                                sim::cat("p", region, ".spine", s)));
    }
    std::vector<core::NodeId> leaves;
    leaves.reserve(static_cast<std::size_t>(shape.leaves));
    for (std::int32_t l = 0; l < shape.leaves; ++l) {
      leaves.push_back(add_node(NodeKind::kSwitch, region, false,
                                sim::cat("p", region, ".leaf", l)));
    }
    std::int32_t host_index = 0;
    std::vector<core::NodeId> hosts;
    for (std::int32_t l = 0; l < shape.leaves; ++l) {
      for (std::int32_t h = 0; h < shape.hosts_per_leaf; ++h) {
        const bool server = host_index < shape.edge_servers_per_pod;
        hosts.push_back(add_node(NodeKind::kHost, region, server,
                                 sim::cat("p", region, ".h", host_index)));
        ++host_index;
      }
    }
    // Fabric: full leaf-spine bipartite graph, then host access links —
    // all in a fixed order so ports and jitter draws are reproducible.
    for (std::int32_t l = 0; l < shape.leaves; ++l) {
      for (std::int32_t s = 0; s < shape.spines; ++s) {
        link(leaves[static_cast<std::size_t>(l)],
             spines[static_cast<std::size_t>(s)], shape.fabric_link_delay);
      }
    }
    for (std::int32_t l = 0; l < shape.leaves; ++l) {
      for (std::int32_t h = 0; h < shape.hosts_per_leaf; ++h) {
        const std::size_t hi = static_cast<std::size_t>(
            l * shape.hosts_per_leaf + h);
        link(hosts[hi], leaves[static_cast<std::size_t>(l)],
             shape.host_link_delay);
      }
    }
    return spines;
  }
};

}  // namespace

std::int64_t GenTopology::switch_count() const {
  std::int64_t n = 0;
  for (const GenNode& node : nodes) {
    if (node.kind == NodeKind::kSwitch) ++n;
  }
  return n;
}

std::vector<core::NodeId> GenTopology::hosts() const {
  std::vector<core::NodeId> out;
  for (const GenNode& node : nodes) {
    if (node.kind == NodeKind::kHost) out.push_back(node.id);
  }
  return out;
}

std::vector<core::NodeId> GenTopology::edge_servers() const {
  std::vector<core::NodeId> out;
  for (const GenNode& node : nodes) {
    if (node.edge_server) out.push_back(node.id);
  }
  return out;
}

std::vector<GenLink> GenTopology::border_links() const {
  std::vector<GenLink> out;
  for (const GenLink& l : links) {
    if (region_of(l.a) != region_of(l.b)) out.push_back(l);
  }
  return out;
}

Graph GenTopology::graph() const {
  Graph g;
  std::vector<std::int32_t> next_port(nodes.size(), 0);
  for (const GenLink& l : links) {
    const std::int32_t port_a = next_port[l.a.index()]++;
    const std::int32_t port_b = next_port[l.b.index()]++;
    g.add_edge(l.a, l.b, port_a, l.delay);
    g.add_edge(l.b, l.a, port_b, l.delay);
  }
  return g;
}

std::vector<std::string> GenTopology::validate(
    std::int32_t max_switch_degree) const {
  std::vector<std::string> bad;
  const core::NodeId n{static_cast<std::int32_t>(nodes.size())};
  for (core::NodeId i{0}; i < n; ++i) {
    const GenNode& node = nodes[i.index()];
    if (node.id != i) {
      bad.push_back(sim::cat("node at index ", i, " has id ", node.id));
    }
    if (!node.region.valid() || node.region >= regions) {
      bad.push_back(sim::cat("node ", i, " region ", node.region,
                             " outside [0, ", regions, ")"));
    }
    if (node.edge_server && node.kind != NodeKind::kHost) {
      bad.push_back(sim::cat("node ", i, " is an edge server but not a host"));
    }
  }

  std::vector<std::int64_t> degree(nodes.size(), 0);
  std::set<std::pair<core::NodeId, core::NodeId>> seen;
  for (std::size_t li = 0; li < links.size(); ++li) {
    const GenLink& l = links[li];
    if (!l.a.valid() || l.a >= n || !l.b.valid() || l.b >= n) {
      bad.push_back(sim::cat("link ", li, " endpoint out of range"));
      continue;
    }
    if (l.a == l.b) {
      bad.push_back(sim::cat("link ", li, " is a self-loop at ", l.a));
      continue;
    }
    if (l.delay <= sim::SimDuration::zero()) {
      bad.push_back(sim::cat("link ", li, " has non-positive delay"));
    }
    const auto key = std::minmax(l.a, l.b);
    if (!seen.insert(key).second) {
      bad.push_back(sim::cat("duplicate link ", key.first, "-", key.second));
    }
    ++degree[l.a.index()];
    ++degree[l.b.index()];
  }

  for (core::NodeId i{0}; i < n; ++i) {
    const GenNode& node = nodes[i.index()];
    const std::int64_t d = degree[i.index()];
    if (node.kind == NodeKind::kHost && d != 1) {
      bad.push_back(sim::cat("host ", i, " has degree ", d, ", want 1"));
    }
    if (node.kind == NodeKind::kSwitch && d < 1) {
      bad.push_back(sim::cat("switch ", i, " is isolated"));
    }
    if (node.kind == NodeKind::kSwitch && max_switch_degree > 0 &&
        d > max_switch_degree) {
      bad.push_back(sim::cat("switch ", i, " degree ", d, " exceeds bound ",
                             max_switch_degree));
    }
  }

  // Connectivity: BFS over the undirected adjacency from node 0.
  if (!nodes.empty()) {
    std::vector<std::vector<core::NodeId>> adj(nodes.size());
    for (const GenLink& l : links) {
      if (!l.a.valid() || l.a >= n || !l.b.valid() || l.b >= n || l.a == l.b) continue;
      adj[l.a.index()].push_back(l.b);
      adj[l.b.index()].push_back(l.a);
    }
    std::vector<char> visited(nodes.size(), 0);
    std::vector<core::NodeId> frontier{core::NodeId{0}};
    visited[0] = 1;
    std::int64_t reached = 1;
    while (!frontier.empty()) {
      const core::NodeId cur = frontier.back();
      frontier.pop_back();
      for (const core::NodeId next : adj[cur.index()]) {
        if (visited[next.index()] == 0) {
          visited[next.index()] = 1;
          ++reached;
          frontier.push_back(next);
        }
      }
    }
    if (reached != static_cast<std::int64_t>(nodes.size())) {
      bad.push_back(sim::cat("topology is disconnected: reached ", reached,
                             " of ", nodes.size(), " nodes"));
    }
  }
  return bad;
}

std::string GenTopology::fingerprint() const {
  std::ostringstream os;
  os << "regions=" << regions << '\n';
  for (const GenNode& node : nodes) {
    os << node.id << ',' << static_cast<int>(node.kind) << ',' << node.region
       << ',' << (node.edge_server ? 1 : 0) << ',' << node.name << '\n';
  }
  for (const GenLink& l : links) {
    os << l.a << '-' << l.b << '@' << l.delay.ns() << '\n';
  }
  return os.str();
}

GenTopology TopologyGen::clos_pod(const PodShape& shape, std::uint64_t seed,
                                  double delay_jitter_frac) {
  Builder b{seed, delay_jitter_frac};
  b.topo.regions = core::RegionId{1};
  (void)b.add_pod(shape, core::RegionId{0});
  return std::move(b.topo);
}

GenTopology TopologyGen::ring_of_pods(const MetroConfig& cfg) {
  Builder b{cfg.seed, cfg.delay_jitter_frac};
  b.topo.regions = core::RegionId{cfg.pods};

  std::vector<std::vector<core::NodeId>> spines;
  spines.reserve(static_cast<std::size_t>(cfg.pods));
  for (std::int32_t p = 0; p < cfg.pods; ++p) {
    spines.push_back(b.add_pod(cfg.pod, core::RegionId{p}));
  }

  const std::int32_t gateways =
      std::min(cfg.gateways_per_pod, cfg.pod.spines);
  // Ring links between consecutive pods' gateway spines. A 2-pod "ring"
  // degenerates to a single inter-pod trunk; dedupe instead of doubling.
  if (cfg.pods >= 2) {
    const std::int32_t ring_edges = cfg.pods == 2 ? 1 : cfg.pods;
    for (std::int32_t p = 0; p < ring_edges; ++p) {
      const auto next = static_cast<std::size_t>((p + 1) % cfg.pods);
      for (std::int32_t g = 0; g < gateways; ++g) {
        b.link(spines[static_cast<std::size_t>(p)]
                     [static_cast<std::size_t>(g)],
               spines[next][static_cast<std::size_t>(g)],
               cfg.ring_link_delay);
      }
    }
  }
  // Chords: pod c to the pod halfway around, first gateways only. Skip
  // pairs the ring already connects (pods < 4 make every "chord" a ring
  // edge).
  if (cfg.pods >= 4) {
    std::set<std::pair<core::NodeId, core::NodeId>> existing;
    for (const GenLink& l : b.topo.links) {
      existing.insert(std::minmax(l.a, l.b));
    }
    for (std::int32_t c = 0; c < cfg.ring_chords; ++c) {
      const std::int32_t p = c % cfg.pods;
      const std::int32_t q = (p + cfg.pods / 2) % cfg.pods;
      if (p == q) continue;
      const core::NodeId a = spines[static_cast<std::size_t>(p)][0];
      const core::NodeId bb = spines[static_cast<std::size_t>(q)][0];
      if (!existing.insert(std::minmax(a, bb)).second) continue;
      b.link(a, bb, cfg.ring_link_delay);
    }
  }
  return std::move(b.topo);
}

}  // namespace intsched::net
