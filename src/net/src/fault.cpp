#include "intsched/net/fault.hpp"

#include <algorithm>

#include "intsched/net/topology.hpp"
#include "intsched/sim/audit.hpp"

namespace intsched::net {

#if INTSCHED_AUDIT_ENABLED
void FaultPlan::audit_ledger() const {
  const FaultCounters& c = counters_;
  INTSCHED_AUDIT_ASSERT(
      c.probes_dropped >= 0 && c.probes_delayed >= 0 &&
          c.probes_duplicated >= 0 && c.packets_lost_link_down >= 0,
      "fault ledger counter went negative");
  INTSCHED_AUDIT_ASSERT(
      c.switch_restarts <= c.switch_kills,
      "fault ledger records a switch restart without a prior kill");
  INTSCHED_AUDIT_ASSERT(
      c.link_up_events <= c.link_down_events,
      "fault ledger records a link-up without a prior link-down");
  INTSCHED_AUDIT_ASSERT(
      static_cast<std::int64_t>(down_links_.size()) ==
          c.link_down_events - c.link_up_events,
      "down-link set size disagrees with the flap ledger");
}
#else
void FaultPlan::audit_ledger() const {}
#endif

FaultPlan::FaultPlan(FaultPlanConfig config)
    : cfg_{std::move(config)},
      drop_rng_{sim::Rng::derive(cfg_.seed, "fault-probe-drop")},
      dup_rng_{sim::Rng::derive(cfg_.seed, "fault-probe-dup")},
      delay_rng_{sim::Rng::derive(cfg_.seed, "fault-probe-delay")} {}

void FaultPlan::arm(Topology& topo) {
  sim::Simulator& sim = topo.simulator();
  // Every port consults the plan before putting bits on the wire.
  for (std::int32_t n = 0; n < topo.node_count(); ++n) {
    Node& node = topo.node(core::NodeId{n});
    for (std::int32_t i = 0; i < node.port_count(); ++i) {
      node.port(i).set_fault_plan(this);
    }
  }
  // schedule_at refuses past times; clamp so plans can be armed mid-run.
  const auto at_or_now = [&sim](sim::SimTime at) {
    return std::max(at, sim.now());
  };
  for (const LinkFlapSpec& flap : cfg_.link_flaps) {
    sim.schedule_at(at_or_now(flap.down_at), [this, flap] {
      set_link_state(flap.a, flap.b, false);
    });
    if (flap.up_at > flap.down_at) {
      sim.schedule_at(at_or_now(flap.up_at), [this, flap] {
        set_link_state(flap.a, flap.b, true);
      });
    }
  }
  for (const SwitchKillSpec& kill : cfg_.switch_kills) {
    Node& node = topo.node(kill.node);
    sim.schedule_at(at_or_now(kill.kill_at), [this, &node] {
      node.set_online(false);
      ++counters_.switch_kills;
      audit_ledger();
    });
    if (kill.restart_at > kill.kill_at) {
      sim.schedule_at(at_or_now(kill.restart_at), [this, &node] {
        node.set_online(true);
        ++counters_.switch_restarts;
        audit_ledger();
      });
    }
  }
  for (const ClockSkewSpec& skew : cfg_.clock_skews) {
    topo.node(skew.node).set_clock_skew(skew.skew);
  }
}

bool FaultPlan::should_drop_probe() {
  if (cfg_.probe.drop_probability <= 0.0) return false;
  const bool drop = drop_rng_.chance(cfg_.probe.drop_probability);
  if (drop) {
    ++counters_.probes_dropped;
    audit_ledger();
  }
  return drop;
}

bool FaultPlan::should_duplicate_probe() {
  if (cfg_.probe.duplicate_probability <= 0.0) return false;
  const bool dup = dup_rng_.chance(cfg_.probe.duplicate_probability);
  if (dup) {
    ++counters_.probes_duplicated;
    audit_ledger();
  }
  return dup;
}

std::optional<sim::SimDuration> FaultPlan::probe_delay() {
  if (cfg_.probe.delay_probability <= 0.0) return std::nullopt;
  if (!delay_rng_.chance(cfg_.probe.delay_probability)) return std::nullopt;
  ++counters_.probes_delayed;
  audit_ledger();
  return sim::SimDuration::nanos(delay_rng_.uniform_int(
      cfg_.probe.delay_min.ns(), cfg_.probe.delay_max.ns()));
}

bool FaultPlan::link_up(core::NodeId a, core::NodeId b) const {
  return !down_links_.contains(link_key(a, b));
}

void FaultPlan::set_link_state(core::NodeId a, core::NodeId b, bool up) {
  if (up) {
    if (down_links_.erase(link_key(a, b)) > 0) ++counters_.link_up_events;
  } else {
    if (down_links_.insert(link_key(a, b)).second) {
      ++counters_.link_down_events;
    }
  }
  audit_ledger();
}

}  // namespace intsched::net
