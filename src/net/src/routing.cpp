#include "intsched/net/routing.hpp"

#include <algorithm>
#include <queue>

namespace intsched::net {

void Graph::add_edge(core::NodeId from, core::NodeId to, std::int32_t out_port,
                     sim::SimDuration cost) {
  adjacency[from].push_back(Edge{to, out_port, cost});
  adjacency.try_emplace(to);  // ensure isolated sinks are known nodes
}

std::vector<core::NodeId> Graph::nodes() const {
  std::vector<core::NodeId> out;
  out.reserve(adjacency.size());
  // Sorted before return: hash order never escapes this function.
  // intsched-lint: allow(unordered-iter)
  for (const auto& [n, _] : adjacency) out.push_back(n);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<core::NodeId> ShortestPaths::path_to(core::NodeId dst) const {
  std::vector<core::NodeId> path;
  append_path_to(dst, path);
  return path;
}

// intsched-lint: hot-path
bool ShortestPaths::append_path_to(core::NodeId dst,
                                   std::vector<core::NodeId>& out) const {
  const std::size_t begin = out.size();
  if (!distance.contains(dst)) return false;
  for (core::NodeId cur = dst; cur != source;) {
    out.push_back(cur);
    const auto it = predecessor.find(cur);
    if (it == predecessor.end()) {  // defensive: broken chain
      out.resize(begin);
      return false;
    }
    cur = it->second;
  }
  out.push_back(source);
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(begin), out.end());
  return true;
}

ShortestPaths dijkstra(const Graph& g, core::NodeId source) {
  ShortestPaths result;
  result.source = source;

  struct QueueEntry {
    sim::SimDuration dist;
    core::NodeId node;
    bool operator>(const QueueEntry& o) const {
      if (dist != o.dist) return dist > o.dist;
      return node > o.node;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;

  result.distance[source] = sim::SimDuration::zero();
  frontier.push({sim::SimDuration::zero(), source});

  while (!frontier.empty()) {
    const auto [dist, node] = frontier.top();
    frontier.pop();
    const auto best = result.distance.find(node);
    if (best == result.distance.end() || dist > best->second) continue;

    const auto adj = g.adjacency.find(node);
    if (adj == g.adjacency.end()) continue;
    for (const auto& edge : adj->second) {
      const sim::SimDuration next_dist = dist + edge.cost;
      const auto cur = result.distance.find(edge.to);
      const bool improves = cur == result.distance.end() ||
                            next_dist < cur->second;
      // Deterministic tie-break: keep the path whose predecessor id is
      // smaller, so route tables never depend on hash-map iteration order.
      const bool ties_better = cur != result.distance.end() &&
                               next_dist == cur->second &&
                               node < result.predecessor.at(edge.to);
      if (!improves && !ties_better) continue;
      result.distance[edge.to] = next_dist;
      result.predecessor[edge.to] = node;
      result.first_hop_port[edge.to] =
          node == source ? edge.out_port : result.first_hop_port[node];
      frontier.push({next_dist, edge.to});
    }
  }
  result.first_hop_port.erase(source);
  return result;
}

}  // namespace intsched::net
