#include "intsched/net/topology.hpp"

#include "intsched/sim/strfmt.hpp"
#include <stdexcept>

namespace intsched::net {

void Topology::connect(Node& a, Node& b, const LinkConfig& cfg) {
  Port& pa = a.add_port(cfg);
  Port& pb = b.add_port(cfg);
  pa.connect_to(b, pb.index());
  pb.connect_to(a, pa.index());
  graph_.add_edge(a.id(), b.id(), pa.index(), cfg.prop_delay);
  graph_.add_edge(b.id(), a.id(), pb.index(), cfg.prop_delay);
}

void Topology::install_routes() {
  paths_.clear();
  for (const auto& node : nodes_) {
    ShortestPaths sp = dijkstra(graph_, node->id());
    // Each set_route writes an independent per-destination table slot;
    // the final routing state is identical for any visit order.
    // intsched-lint: allow(unordered-iter)
    for (const auto& [dst, port] : sp.first_hop_port) {
      node->set_route(dst, port);
    }
    paths_.emplace(node->id(), std::move(sp));
  }
}

std::vector<core::NodeId> Topology::path(core::NodeId a, core::NodeId b) const {
  const auto it = paths_.find(a);
  if (it == paths_.end()) {
    throw std::logic_error("Topology::path before install_routes()");
  }
  return it->second.path_to(b);
}

sim::SimDuration Topology::path_delay(core::NodeId a, core::NodeId b) const {
  const auto it = paths_.find(a);
  if (it == paths_.end()) {
    throw std::logic_error("Topology::path_delay before install_routes()");
  }
  const auto d = it->second.distance.find(b);
  if (d == it->second.distance.end()) {
    throw std::invalid_argument(
        sim::cat("no path from node ", a, " to node ", b));
  }
  return d->second;
}

Node& Topology::node(core::NodeId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    throw std::invalid_argument(sim::cat("unknown node id ", id));
  }
  return *it->second;
}

std::vector<Node*> Topology::nodes_of_kind(NodeKind kind) const {
  std::vector<Node*> out;
  for (const auto& node : nodes_) {
    if (node->kind() == kind) out.push_back(node.get());
  }
  return out;
}

}  // namespace intsched::net
