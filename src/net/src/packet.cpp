#include "intsched/net/packet.hpp"

#include "intsched/sim/strfmt.hpp"

namespace intsched::net {

std::string to_string(const Packet& p) {
  const char* proto = p.protocol == IpProtocol::kUdp ? "udp" : "tcp";
  return sim::cat("pkt[uid=", p.uid, " ", p.src, "->", p.dst, " ", proto, " ",
                  p.wire_size, "B", p.is_int_probe() ? " probe" : "", "]");
}

}  // namespace intsched::net
