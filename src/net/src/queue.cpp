#include "intsched/net/queue.hpp"

namespace intsched::net {

bool DropTailQueue::enqueue(Packet&& p) {
  const std::int64_t observed_depth = size_pkts();
  if (observed_depth >= capacity_) {
    ++dropped_;
    if (drop_observer_) drop_observer_(p);
    if (occupancy_observer_) occupancy_observer_(observed_depth);
    return false;
  }
  bytes_ += p.wire_size;
  q_.push_back(std::move(p));
  ++enqueued_;
  if (occupancy_observer_) occupancy_observer_(observed_depth);
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.wire_size;
  ++dequeued_;
  return p;
}

}  // namespace intsched::net
