#include "intsched/net/node.hpp"

#include <cassert>
#include <stdexcept>

#include "intsched/net/fault.hpp"
#include "intsched/sim/strfmt.hpp"

namespace intsched::net {

Port::Port(Node& owner, std::int32_t index, LinkConfig cfg)
    : owner_{owner},
      index_{index},
      cfg_{cfg},
      queue_{cfg.queue_capacity_pkts} {}

void Port::connect_to(Node& peer, std::int32_t peer_port) {
  peer_ = &peer;
  peer_port_ = peer_port;
}

bool Port::send(Packet&& p) {
  const bool accepted = queue_.enqueue(std::move(p));
  if (accepted && !transmitting_) try_transmit();
  return accepted;
}

void Port::try_transmit() {
  if (transmitting_) return;
  auto next = queue_.dequeue();
  if (!next) return;
  if (peer_ == nullptr) {
    throw std::logic_error(
        sim::cat("port ", index_, " of ", owner_.name(), " transmits while unconnected"));
  }

  Packet p = std::move(*next);
  owner_.on_egress(p, *this);

  auto& sim = owner_.simulator();
  const sim::SimDuration service = cfg_.rate.transmission_time(p.wire_size) +
                               owner_.egress_service_delay(p, *this);
  transmitting_ = true;
  busy_time_ += service;
  ++tx_packets_;
  tx_bytes_ += p.wire_size;

  // Serialization finishes after `service`; the bits then propagate for
  // prop_delay (+ jitter). Arrivals on one channel never reorder: a later
  // packet cannot arrive before an earlier one even if it draws less jitter.
  sim::SimTime arrival = sim.now() + service + cfg_.prop_delay;
  if (cfg_.jitter > sim::SimDuration::zero()) {
    // Deterministic per-port pseudo-jitter would need an Rng; links default
    // to zero jitter and tests inject it explicitly via config. We derive
    // jitter from the packet uid so results stay reproducible without
    // threading an Rng through every port.
    const auto seed = p.uid * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL;
    const auto frac = static_cast<double>(seed >> 11) * 0x1.0p-53;
    arrival += sim::SimDuration::nanos(
        static_cast<std::int64_t>(frac * static_cast<double>(cfg_.jitter.ns())));
  }
  if (arrival < last_arrival_) arrival = last_arrival_;
  last_arrival_ = arrival;

  // Fault injection: a downed link loses the bits on the wire (the
  // transmitter still spends the service time, as real NICs do).
  if (faults_ != nullptr && !faults_->link_up(owner_.id(), peer_->id())) {
    faults_->note_packet_lost_link_down();
  } else {
    Node* peer = peer_;
    const std::int32_t peer_port = peer_port_;
    sim.schedule_at(arrival,
                    [peer, peer_port, pkt = std::move(p)]() mutable {
                      if (!peer->online()) {
                        peer->note_offline_drop();
                        return;
                      }
                      peer->note_rx(pkt);
                      peer->receive(std::move(pkt), peer_port);
                    });
  }
  sim.schedule_after(service, [this] {
    transmitting_ = false;
    try_transmit();
  });
}

Node::Node(sim::Simulator& sim, core::NodeId id, std::string name, NodeKind kind)
    : sim_{sim}, id_{id}, name_{std::move(name)}, kind_{kind} {}

Port& Node::add_port(LinkConfig cfg) {
  ports_.push_back(std::make_unique<Port>(
      *this, static_cast<std::int32_t>(ports_.size()), cfg));
  return *ports_.back();
}

Port& Node::port(std::int32_t index) {
  assert(index >= 0 && index < port_count());
  return *ports_[static_cast<std::size_t>(index)];
}

const Port& Node::port(std::int32_t index) const {
  assert(index >= 0 && index < port_count());
  return *ports_[static_cast<std::size_t>(index)];
}

void Node::set_route(core::NodeId dst, std::int32_t port_index) {
  routes_[dst] = port_index;
}

std::int32_t Node::route_to(core::NodeId dst) const {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? -1 : it->second;
}

void Host::receive(Packet&& p, std::int32_t ingress_port) {
  (void)ingress_port;
  if (p.dst != id()) return;  // not ours; hosts do not forward
  if (receiver_) receiver_(std::move(p));
}

bool Host::send(Packet&& p) {
  if (port_count() == 0) {
    throw std::logic_error(
        sim::cat("host ", name(), " sends with no port attached"));
  }
  p.uid = (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(id().value()))
           << 40) |
          next_uid_++;
  return port(0).send(std::move(p));
}

}  // namespace intsched::net
