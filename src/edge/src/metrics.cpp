#include "intsched/edge/metrics.hpp"

#include <cassert>
#include <stdexcept>

#include "intsched/sim/strfmt.hpp"

namespace intsched::edge {

std::string to_string(const DegradationCounters& c) {
  return sim::cat("dropped=", c.probes_dropped, " delayed=", c.probes_delayed,
                  " duplicated=", c.probes_duplicated,
                  " link_down_loss=", c.packets_lost_link_down,
                  " flaps=", c.link_flap_events, " kills=", c.switch_kills,
                  " restarts=", c.switch_restarts,
                  " malformed=", c.malformed_reports,
                  " rejected_entries=", c.rejected_entries,
                  " stale_lookups=", c.stale_lookups,
                  " fallbacks=", c.fallback_decisions);
}

TaskRecord& MetricsCollector::open(const TaskSpec& spec, core::NodeId device) {
  const auto key = std::make_pair(spec.job_id, spec.task_index);
  const auto [it, inserted] = records_.try_emplace(key);
  if (!inserted) {
    throw std::logic_error(sim::cat("task (", spec.job_id, ",",
                                    spec.task_index, ") opened twice"));
  }
  TaskRecord& r = it->second;
  r.job_id = spec.job_id;
  r.task_index = spec.task_index;
  r.cls = spec.cls;
  r.device = device;
  r.data_bytes = spec.data_bytes;
  r.exec_time = spec.exec_time;
  return r;
}

TaskRecord& MetricsCollector::at(std::int64_t job_id,
                                 std::int32_t task_index) {
  const auto it = records_.find({job_id, task_index});
  if (it == records_.end()) {
    throw std::logic_error(
        sim::cat("unknown task (", job_id, ",", task_index, ")"));
  }
  return it->second;
}

const TaskRecord* MetricsCollector::find(std::int64_t job_id,
                                         std::int32_t task_index) const {
  const auto it = records_.find({job_id, task_index});
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<const TaskRecord*> MetricsCollector::records() const {
  std::vector<const TaskRecord*> out;
  out.reserve(records_.size());
  for (const auto& [_, r] : records_) out.push_back(&r);
  return out;
}

std::optional<double> MetricsCollector::mean_completion_s(
    TaskClass cls) const {
  sim::RunningStats stats;
  for (const auto& [_, r] : records_) {
    if (r.cls == cls && r.is_complete()) {
      stats.add(r.completion_time().to_seconds());
    }
  }
  if (stats.count() == 0) return std::nullopt;
  return stats.mean();
}

std::optional<double> MetricsCollector::mean_transfer_s(TaskClass cls) const {
  sim::RunningStats stats;
  for (const auto& [_, r] : records_) {
    if (r.cls == cls && r.is_complete() &&
        r.transfer_end >= sim::SimTime::zero()) {
      stats.add(r.transfer_time().to_seconds());
    }
  }
  if (stats.count() == 0) return std::nullopt;
  return stats.mean();
}

std::vector<double> paired_gains(const MetricsCollector& treatment,
                                 const MetricsCollector& baseline,
                                 bool use_transfer_time) {
  std::vector<double> gains;
  for (const TaskRecord* t : treatment.records()) {
    if (!t->is_complete()) continue;
    const TaskRecord* b = baseline.find(t->job_id, t->task_index);
    if (b == nullptr || !b->is_complete()) continue;
    const double treat = use_transfer_time
                             ? t->transfer_time().to_seconds()
                             : t->completion_time().to_seconds();
    const double base = use_transfer_time
                            ? b->transfer_time().to_seconds()
                            : b->completion_time().to_seconds();
    if (base <= 0.0) continue;
    gains.push_back((base - treat) / base);
  }
  return gains;
}

}  // namespace intsched::edge
