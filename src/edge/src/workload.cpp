#include "intsched/edge/workload.hpp"

#include <cassert>
#include <stdexcept>

namespace intsched::edge {

const char* to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kServerless: return "serverless";
    case WorkloadKind::kDistributed: return "distributed";
  }
  return "?";
}

std::int32_t tasks_per_job(WorkloadKind kind) {
  return kind == WorkloadKind::kServerless ? 1 : 3;
}

std::vector<JobSpec> generate_workload(
    const WorkloadConfig& config, const std::vector<core::NodeId>& submitters,
    sim::Rng& rng) {
  if (submitters.empty()) {
    throw std::invalid_argument("generate_workload: no submitters");
  }
  if (config.classes.empty()) {
    throw std::invalid_argument("generate_workload: no task classes");
  }
  const std::int32_t per_job = tasks_per_job(config.kind);
  const std::int32_t n_jobs =
      (config.total_tasks + per_job - 1) / per_job;

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(n_jobs));
  sim::SimTime at = config.first_submit;
  for (std::int32_t j = 0; j < n_jobs; ++j) {
    JobSpec job;
    job.job_id = j;
    job.kind = config.kind;
    job.cls = config.classes[static_cast<std::size_t>(j) %
                             config.classes.size()];
    job.submitter = submitters[static_cast<std::size_t>(
        rng.index(static_cast<std::int64_t>(submitters.size())))];
    job.submit_at = at;
    for (std::int32_t t = 0; t < per_job; ++t) {
      job.tasks.push_back(sample_task(job.cls, j, t, rng));
    }
    jobs.push_back(std::move(job));

    const double jitter = rng.uniform_real(0.75, 1.25);
    at += sim::SimDuration::nanos(static_cast<std::int64_t>(
        static_cast<double>(config.job_interval.ns()) * jitter));
  }
  return jobs;
}

MetroTaskStream::MetroTaskStream(std::uint64_t seed,
                                 std::vector<core::NodeId> submitters)
    : submitters_{std::move(submitters)},
      rng_{sim::Rng::derive(seed, "metro.tasks")} {}

MetroTaskStream::Task MetroTaskStream::next() {
  Task t;
  t.task_id = next_id_++;
  if (!submitters_.empty()) {
    t.submitter = submitters_[static_cast<std::size_t>(
        rng_.index(static_cast<std::int64_t>(submitters_.size())))];
  }
  t.cls = kAllTaskClasses[static_cast<std::size_t>(t.task_id) %
                          kAllTaskClasses.size()];
  return t;
}

}  // namespace intsched::edge
