#include "intsched/edge/edge_server.hpp"

#include <algorithm>

#include "intsched/core/scheduler_service.hpp"

namespace intsched::edge {

EdgeServer::EdgeServer(transport::HostStack& stack,
                       MetricsCollector& metrics, EdgeServerConfig config)
    : stack_{stack}, metrics_{metrics}, cfg_{config} {
  listener_ = std::make_unique<transport::TcpListener>(
      stack_, net::kTaskPort,
      [this](core::NodeId peer, sim::Bytes bytes,
             std::shared_ptr<const net::AppMessage> msg) {
        on_task_arrival(peer, bytes, msg);
      });
  stack_.bind_udp(net::kTaskPort,
                  [this](const net::Packet& p) { on_done_ack(p); });
}

EdgeServer::~EdgeServer() {
  *alive_ = false;
  disable_load_reports();  // the periodic timer would outlive `this`
  stack_.unbind_udp(net::kTaskPort);
}

void EdgeServer::enable_load_reports(core::NodeId scheduler,
                                     sim::SimDuration interval) {
  disable_load_reports();
  load_report_target_ = scheduler;
  load_report_timer_ = stack_.simulator().schedule_periodic(
      sim::SimDuration::zero(), interval, [this] {
        auto report = std::make_shared<core::LoadReportMessage>();
        report->server = id();
        report->outstanding_tasks = outstanding_tasks();
        stack_.send_datagram(load_report_target_, net::kTaskPort,
                             net::kSchedulerPort, net::kHeaderBytes + 8,
                             std::move(report));
      });
}

void EdgeServer::disable_load_reports() { load_report_timer_.cancel(); }

void EdgeServer::on_done_ack(const net::Packet& p) {
  const auto* ack = dynamic_cast<const TaskDoneAck*>(p.app.get());
  if (ack == nullptr) return;
  unacked_.erase({ack->job_id, ack->task_index});
}

void EdgeServer::on_task_arrival(
    core::NodeId peer, sim::Bytes bytes,
    const std::shared_ptr<const net::AppMessage>& msg) {
  (void)bytes;
  const auto* desc = dynamic_cast<const TaskDescriptor*>(msg.get());
  if (desc == nullptr) return;  // not a task submission (e.g. plain iperf)
  ++received_;

  TaskRecord& record =
      metrics_.at(desc->spec.job_id, desc->spec.task_index);
  record.transfer_end = stack_.simulator().now();
  record.server = id();

  waiting_.push_back(PendingTask{desc->spec, peer, desc->done_port});
  maybe_start_next();
}

void EdgeServer::maybe_start_next() {
  while (!waiting_.empty() &&
         (cfg_.worker_slots <= 0 || running_ < cfg_.worker_slots)) {
    PendingTask task = std::move(waiting_.front());
    waiting_.pop_front();
    execute(std::move(task));
  }
}

void EdgeServer::execute(PendingTask task) {
  ++running_;
  high_water_ = std::max<std::int64_t>(high_water_, running_);
  const sim::SimDuration exec_time = task.spec.exec_time;
  stack_.simulator().schedule_after(
      exec_time, [this, alive = alive_, task = std::move(task)] {
        if (!*alive) return;
        --running_;
        finish(task);
        maybe_start_next();
      });
}

void EdgeServer::finish(const PendingTask& task) {
  ++executed_;
  TaskRecord& record = metrics_.at(task.spec.job_id, task.spec.task_index);
  record.exec_end = stack_.simulator().now();
  unacked_.insert({task.spec.job_id, task.spec.task_index});
  send_done(task, 0);
}

void EdgeServer::send_done(const PendingTask& task, std::int32_t attempt) {
  const auto key = std::make_pair(task.spec.job_id, task.spec.task_index);
  if (!unacked_.contains(key)) return;

  auto done = std::make_shared<TaskDoneMessage>();
  done->job_id = task.spec.job_id;
  done->task_index = task.spec.task_index;
  done->server = id();
  stack_.send_datagram(task.submitter, net::kTaskPort, task.done_port,
                       net::kHeaderBytes + 16, std::move(done));
  // Unbounded retransmission with exponential backoff (capped at 10 s):
  // congestion hotspots move, so delivery eventually succeeds, and a task
  // must never be lost to a dropped notification.
  const sim::SimDuration delay = std::min(
      sim::SimDuration::secs(1) * (std::int64_t{1} << std::min(attempt, 4)),
      sim::SimDuration::secs(10));
  stack_.simulator().schedule_after(
      delay, [this, alive = alive_, task, attempt] {
        if (!*alive) return;
        send_done(task, attempt + 1);
      });
}

}  // namespace intsched::edge
