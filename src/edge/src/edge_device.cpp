#include "intsched/edge/edge_device.hpp"

#include <cassert>

#include "intsched/sim/logging.hpp"

namespace intsched::edge {

EdgeDevice::EdgeDevice(transport::HostStack& stack,
                       MetricsCollector& metrics,
                       core::SelectionPolicy& policy)
    : stack_{stack}, metrics_{metrics}, policy_{policy} {
  stack_.bind_udp(net::kTaskDonePort,
                  [this](const net::Packet& p) { on_done_message(p); });
}

EdgeDevice::~EdgeDevice() { stack_.unbind_udp(net::kTaskDonePort); }

void EdgeDevice::submit(const JobSpec& job) {
  assert(job.submitter == id());
  ++jobs_;
  const sim::SimTime now = stack_.simulator().now();
  for (const TaskSpec& task : job.tasks) {
    TaskRecord& r = metrics_.open(task, id());
    r.submitted = now;
  }
  policy_.select(id(), static_cast<std::int32_t>(job.tasks.size()),
                 job.tasks.front().requirements,
                 [this, job](std::vector<core::NodeId> servers) {
                   dispatch(job, std::move(servers));
                 });
}

void EdgeDevice::dispatch(const JobSpec& job,
                          std::vector<core::NodeId> servers) {
  const sim::SimTime now = stack_.simulator().now();
  if (servers.empty()) {
    sim::Log::log(sim::LogLevel::kWarn, now, "edge-device",
                  "no servers for job ", job.job_id);
    return;
  }
  for (std::size_t i = 0; i < job.tasks.size(); ++i) {
    const TaskSpec& task = job.tasks[i];
    const core::NodeId server = servers[i % servers.size()];
    TaskRecord& r = metrics_.at(task.job_id, task.task_index);
    r.scheduled = now;
    r.server = server;
    start_transfer(task, server);
  }
}

void EdgeDevice::start_transfer(const TaskSpec& task, core::NodeId server) {
  auto desc = std::make_shared<TaskDescriptor>();
  desc->spec = task;
  desc->submitter = id();
  desc->done_port = net::kTaskDonePort;

  auto sender = std::make_unique<transport::TcpSender>(
      stack_, server, net::kTaskPort, task.data_bytes, std::move(desc));
  const auto key = std::make_pair(task.job_id, task.task_index);
  sender->set_completion_handler([this, key](transport::TcpSender&) {
    // Deferred erase: the sender is mid-callback; destroy it next event.
    stack_.simulator().schedule_after(sim::SimDuration::zero(),
                                      [this, key] { senders_.erase(key); });
  });

  TaskRecord& r = metrics_.at(task.job_id, task.task_index);
  r.transfer_start = stack_.simulator().now();
  transport::TcpSender& ref = *sender;
  senders_.emplace(key, std::move(sender));
  ref.start();
}

void EdgeDevice::on_done_message(const net::Packet& p) {
  const auto* done = dynamic_cast<const TaskDoneMessage*>(p.app.get());
  if (done == nullptr) return;
  // Always (re-)acknowledge so the server stops retransmitting, including
  // for duplicates whose original ack was lost.
  auto ack = std::make_shared<TaskDoneAck>();
  ack->job_id = done->job_id;
  ack->task_index = done->task_index;
  const auto* udp = p.udp();
  stack_.send_datagram(p.src, udp != nullptr ? udp->dst_port : 0,
                       net::kTaskPort, net::kHeaderBytes + 16,
                       std::move(ack));

  TaskRecord& r = metrics_.at(done->job_id, done->task_index);
  if (r.is_complete()) return;  // duplicate notification
  r.completed = stack_.simulator().now();
  metrics_.note_completed();
  ++done_;
  if (on_complete_) on_complete_(r);
}

}  // namespace intsched::edge
