#include "intsched/edge/task.hpp"

namespace intsched::edge {

const char* to_string(TaskClass cls) {
  switch (cls) {
    case TaskClass::kVerySmall: return "very-small";
    case TaskClass::kSmall: return "small";
    case TaskClass::kMedium: return "medium";
    case TaskClass::kLarge: return "large";
  }
  return "?";
}

const char* short_name(TaskClass cls) {
  switch (cls) {
    case TaskClass::kVerySmall: return "VS";
    case TaskClass::kSmall: return "S";
    case TaskClass::kMedium: return "M";
    case TaskClass::kLarge: return "L";
  }
  return "?";
}

const TaskClassSpec& task_class_spec(TaskClass cls) {
  static const TaskClassSpec specs[] = {
      // VS: 0-1000 KB, 0-2000 ms (1 KB floor so transfers are non-empty).
      {1 * sim::kKB, 1000 * sim::kKB, sim::SimDuration::zero(),
       sim::SimDuration::millis(2000)},
      // S: 1500-2500 KB, 2500-4500 ms.
      {1500 * sim::kKB, 2500 * sim::kKB, sim::SimDuration::millis(2500),
       sim::SimDuration::millis(4500)},
      // M: 3000-4000 KB, 5000-7000 ms.
      {3000 * sim::kKB, 4000 * sim::kKB, sim::SimDuration::millis(5000),
       sim::SimDuration::millis(7000)},
      // L: 4500-5500 KB, 7500-9500 ms.
      {4500 * sim::kKB, 5500 * sim::kKB, sim::SimDuration::millis(7500),
       sim::SimDuration::millis(9500)},
  };
  return specs[static_cast<std::size_t>(cls)];
}

TaskSpec sample_task(TaskClass cls, std::int64_t job_id,
                     std::int32_t task_index, sim::Rng& rng) {
  const TaskClassSpec& spec = task_class_spec(cls);
  TaskSpec task;
  task.job_id = job_id;
  task.task_index = task_index;
  task.cls = cls;
  task.data_bytes = rng.uniform_int(spec.data_min, spec.data_max);
  task.exec_time = sim::SimDuration::nanos(
      rng.uniform_int(spec.exec_min.ns(), spec.exec_max.ns()));
  return task;
}

}  // namespace intsched::edge
