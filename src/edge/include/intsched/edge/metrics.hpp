#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "intsched/edge/task.hpp"
#include "intsched/sim/stats.hpp"

namespace intsched::edge {

/// Aggregated graceful-degradation telemetry for one run: how much probe
/// traffic the fault plan destroyed and how often the scheduler had to
/// stop trusting its congestion estimates. All zero in fault-free runs.
struct DegradationCounters {
  // -- injected faults (from the FaultPlan) --
  std::int64_t probes_dropped = 0;     ///< suppressed before transmission
  std::int64_t probes_delayed = 0;
  std::int64_t probes_duplicated = 0;
  std::int64_t packets_lost_link_down = 0;
  std::int64_t link_flap_events = 0;   ///< down + up transitions
  std::int64_t switch_kills = 0;
  std::int64_t switch_restarts = 0;
  // -- observed consequences (from the scheduler) --
  std::int64_t malformed_reports = 0;  ///< collector-level rejects
  std::int64_t rejected_entries = 0;   ///< map-level per-entry rejects
  std::int64_t stale_lookups = 0;      ///< stale candidates at query time
  std::int64_t fallback_decisions = 0; ///< queries re-ordered by staleness

  [[nodiscard]] bool any() const {
    return probes_dropped != 0 || probes_delayed != 0 ||
           probes_duplicated != 0 || packets_lost_link_down != 0 ||
           link_flap_events != 0 || switch_kills != 0 ||
           switch_restarts != 0 || malformed_reports != 0 ||
           rejected_entries != 0 || stale_lookups != 0 ||
           fallback_decisions != 0;
  }
};

/// Single-line human-readable rendering for experiment reports.
[[nodiscard]] std::string to_string(const DegradationCounters& c);

/// Per-task timeline collected by the experiment harness. Times are
/// simulation timestamps; durations are derived.
struct TaskRecord {
  std::int64_t job_id = 0;
  std::int32_t task_index = 0;
  TaskClass cls = TaskClass::kVerySmall;
  core::NodeId device = core::kInvalidNode;
  core::NodeId server = core::kInvalidNode;

  sim::Bytes data_bytes = 0;
  sim::SimDuration exec_time = sim::SimDuration::zero();

  sim::SimTime submitted = sim::SimTime::nanoseconds(-1);
  sim::SimTime scheduled = sim::SimTime::nanoseconds(-1);
  sim::SimTime transfer_start = sim::SimTime::nanoseconds(-1);
  sim::SimTime transfer_end = sim::SimTime::nanoseconds(-1);  ///< receiver side
  sim::SimTime exec_end = sim::SimTime::nanoseconds(-1);
  sim::SimTime completed = sim::SimTime::nanoseconds(-1);     ///< device notified

  [[nodiscard]] bool is_complete() const {
    return completed >= sim::SimTime::zero();
  }
  /// End-device to edge-server data movement time (Fig. 7's metric).
  [[nodiscard]] sim::SimDuration transfer_time() const {
    return transfer_end - transfer_start;
  }
  /// Submit-to-notification turnaround (Figs. 5/6 metric).
  [[nodiscard]] sim::SimDuration completion_time() const {
    return completed - submitted;
  }
};

/// Keyed store for task records; the device and server both update the
/// same record as the task progresses.
class MetricsCollector {
 public:
  /// Registers a task at submission. Asserts the key is fresh.
  TaskRecord& open(const TaskSpec& spec, core::NodeId device);

  [[nodiscard]] TaskRecord& at(std::int64_t job_id, std::int32_t task_index);
  [[nodiscard]] const TaskRecord* find(std::int64_t job_id,
                                       std::int32_t task_index) const;

  [[nodiscard]] std::int64_t total() const {
    return static_cast<std::int64_t>(records_.size());
  }
  [[nodiscard]] std::int64_t completed() const { return completed_count_; }
  void note_completed() { ++completed_count_; }

  /// All records, ordered by (job, task).
  [[nodiscard]] std::vector<const TaskRecord*> records() const;

  /// Mean completion / transfer time (seconds) over completed tasks of one
  /// class; nullopt when the class has no completed tasks.
  [[nodiscard]] std::optional<double> mean_completion_s(TaskClass cls) const;
  [[nodiscard]] std::optional<double> mean_transfer_s(TaskClass cls) const;

 private:
  std::map<std::pair<std::int64_t, std::int32_t>, TaskRecord> records_;
  std::int64_t completed_count_ = 0;
};

/// Per-task relative gain of `treatment` over `baseline`, matched by
/// (job_id, task_index):  (T_base - T_treat) / T_base. Only pairs complete
/// in both runs contribute. `use_transfer_time` selects the Fig. 7 metric.
[[nodiscard]] std::vector<double> paired_gains(
    const MetricsCollector& treatment, const MetricsCollector& baseline,
    bool use_transfer_time = false);

}  // namespace intsched::edge
