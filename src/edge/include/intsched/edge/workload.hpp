#pragma once

#include <cstdint>
#include <vector>

#include "intsched/edge/task.hpp"
#include "intsched/sim/rng.hpp"

namespace intsched::edge {

/// The two workload shapes of §IV: serverless (FaaS) jobs submit one task;
/// distributed-computing jobs (e.g. federated learning rounds) submit
/// three tasks to three servers.
enum class WorkloadKind : std::uint8_t { kServerless, kDistributed };

[[nodiscard]] const char* to_string(WorkloadKind kind);
[[nodiscard]] std::int32_t tasks_per_job(WorkloadKind kind);

/// One job: tasks plus where and when it is submitted.
struct JobSpec {
  std::int64_t job_id = 0;
  WorkloadKind kind = WorkloadKind::kServerless;
  TaskClass cls = TaskClass::kVerySmall;
  core::NodeId submitter = core::kInvalidNode;
  sim::SimTime submit_at = sim::SimTime::zero();
  std::vector<TaskSpec> tasks;
};

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kServerless;
  /// Total tasks across all jobs (the paper's "each experiment consists of
  /// 200 tasks"); the generator emits ceil(total_tasks / tasks_per_job)
  /// jobs.
  std::int32_t total_tasks = 200;
  /// Jobs are submitted this far apart (uniform jitter of +-25% applied so
  /// arrivals do not beat against probe timers).
  sim::SimDuration job_interval = sim::SimDuration::secs(2);
  sim::SimTime first_submit = sim::SimTime::seconds(5);
  /// Restrict to one class, or cycle through all four when empty.
  std::vector<TaskClass> classes = {kAllTaskClasses.begin(),
                                    kAllTaskClasses.end()};
};

/// Deterministically expands a config into a job schedule. Submitters are
/// drawn uniformly from `submitters`; classes cycle deterministically so
/// every class receives the same number of tasks (the paper reports
/// per-class averages from one mixed run). Two generators with equal seeds
/// produce identical schedules — the fairness rule for comparing policies.
[[nodiscard]] std::vector<JobSpec> generate_workload(
    const WorkloadConfig& config, const std::vector<core::NodeId>& submitters,
    sim::Rng& rng);

/// O(1)-per-task streaming counterpart of generate_workload for
/// metro-scale runs: a million-task sweep must not materialize a JobSpec
/// vector. Submitters are drawn uniformly and classes cycle, matching
/// generate_workload's fairness rule; two streams with equal seeds and
/// submitter lists produce identical task sequences.
class MetroTaskStream {
 public:
  struct Task {
    std::int64_t task_id = 0;
    core::NodeId submitter = core::kInvalidNode;
    TaskClass cls = TaskClass::kVerySmall;
  };

  MetroTaskStream(std::uint64_t seed, std::vector<core::NodeId> submitters);

  [[nodiscard]] Task next();
  [[nodiscard]] std::int64_t emitted() const { return next_id_; }

 private:
  std::vector<core::NodeId> submitters_;
  sim::Rng rng_;
  std::int64_t next_id_ = 0;
};

}  // namespace intsched::edge
