#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "intsched/core/policies.hpp"
#include "intsched/edge/metrics.hpp"
#include "intsched/edge/workload.hpp"
#include "intsched/transport/tcp.hpp"

namespace intsched::edge {

/// An end device that offloads jobs: asks its selection policy for servers
/// (steps 5-6 of the paper's Fig. 1), ships each task's data over TCP, and
/// waits for completion notifications.
class EdgeDevice {
 public:
  using CompletionHandler = std::function<void(const TaskRecord&)>;

  EdgeDevice(transport::HostStack& stack, MetricsCollector& metrics,
             core::SelectionPolicy& policy);
  ~EdgeDevice();
  EdgeDevice(const EdgeDevice&) = delete;
  EdgeDevice& operator=(const EdgeDevice&) = delete;

  [[nodiscard]] core::NodeId id() const { return stack_.host().id(); }

  /// Submits a job (all of its tasks at once). The job's submitter must be
  /// this device.
  void submit(const JobSpec& job);

  /// Fires every time one of this device's tasks completes.
  void set_completion_handler(CompletionHandler h) {
    on_complete_ = std::move(h);
  }

  [[nodiscard]] std::int64_t jobs_submitted() const { return jobs_; }
  [[nodiscard]] std::int64_t tasks_completed() const { return done_; }
  [[nodiscard]] std::int64_t transfers_in_flight() const {
    return static_cast<std::int64_t>(senders_.size());
  }

 private:
  void dispatch(const JobSpec& job, std::vector<core::NodeId> servers);
  void start_transfer(const TaskSpec& task, core::NodeId server);
  void on_done_message(const net::Packet& p);

  transport::HostStack& stack_;
  MetricsCollector& metrics_;
  core::SelectionPolicy& policy_;
  CompletionHandler on_complete_;
  std::map<std::pair<std::int64_t, std::int32_t>,
           std::unique_ptr<transport::TcpSender>>
      senders_;
  std::int64_t jobs_ = 0;
  std::int64_t done_ = 0;
};

}  // namespace intsched::edge
