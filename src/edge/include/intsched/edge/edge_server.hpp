#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <utility>

#include "intsched/edge/metrics.hpp"
#include "intsched/edge/task.hpp"
#include "intsched/transport/tcp.hpp"

namespace intsched::edge {

struct EdgeServerConfig {
  /// Concurrent task executions; 0 = unlimited. The paper models no
  /// compute contention (compute-awareness is its future work), so the
  /// default is unlimited; finite slots are available for the extension
  /// experiments.
  std::int32_t worker_slots = 0;
};

/// An edge server: accepts task submissions over TCP on the task port,
/// executes them (a pure timer — computation is out of scope for the
/// paper), and notifies the submitting device on completion.
class EdgeServer {
 public:
  EdgeServer(transport::HostStack& stack, MetricsCollector& metrics,
             EdgeServerConfig config = {});
  ~EdgeServer();
  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  [[nodiscard]] core::NodeId id() const { return stack_.host().id(); }

  /// Compute-aware extension (paper §VI): periodically reports this
  /// server's outstanding task count to the scheduler.
  void enable_load_reports(
      core::NodeId scheduler,
      sim::SimDuration interval = sim::SimDuration::millis(500));
  void disable_load_reports();

  /// Tasks currently running plus queued.
  [[nodiscard]] std::int32_t outstanding_tasks() const {
    return running_ + static_cast<std::int32_t>(waiting_.size());
  }

  [[nodiscard]] std::int64_t tasks_received() const { return received_; }
  [[nodiscard]] std::int64_t tasks_executed() const { return executed_; }
  [[nodiscard]] std::int32_t running_now() const { return running_; }
  [[nodiscard]] std::int64_t max_concurrent() const { return high_water_; }

 private:
  struct PendingTask {
    TaskSpec spec;
    core::NodeId submitter = core::kInvalidNode;
    net::PortNumber done_port = 0;
  };

  void on_task_arrival(core::NodeId peer, sim::Bytes bytes,
                       const std::shared_ptr<const net::AppMessage>& msg);
  void maybe_start_next();
  void execute(PendingTask task);
  void finish(const PendingTask& task);
  void send_done(const PendingTask& task, std::int32_t attempt);
  void on_done_ack(const net::Packet& p);

  transport::HostStack& stack_;
  MetricsCollector& metrics_;
  EdgeServerConfig cfg_;
  /// Guard token captured (weakly, by copy of the shared_ptr) by every
  /// deferred callback so destroying the server mid-simulation is safe.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  sim::PeriodicHandle load_report_timer_;
  core::NodeId load_report_target_ = core::kInvalidNode;
  std::unique_ptr<transport::TcpListener> listener_;
  std::deque<PendingTask> waiting_;
  /// Done notifications awaiting device acknowledgement.
  std::set<std::pair<std::int64_t, std::int32_t>> unacked_;
  std::int32_t running_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t received_ = 0;
  std::int64_t executed_ = 0;
};

}  // namespace intsched::edge
