#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "intsched/net/packet.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/sim/units.hpp"

namespace intsched::edge {

/// Table I's task classes.
enum class TaskClass : std::uint8_t { kVerySmall, kSmall, kMedium, kLarge };

inline constexpr std::array<TaskClass, 4> kAllTaskClasses = {
    TaskClass::kVerySmall, TaskClass::kSmall, TaskClass::kMedium,
    TaskClass::kLarge};

[[nodiscard]] const char* to_string(TaskClass cls);
[[nodiscard]] const char* short_name(TaskClass cls);  ///< VS / S / M / L

/// Sampling ranges from Table I (data in KB, execution time in ms).
struct TaskClassSpec {
  sim::Bytes data_min = 0;
  sim::Bytes data_max = 0;
  sim::SimDuration exec_min = sim::SimDuration::zero();
  sim::SimDuration exec_max = sim::SimDuration::zero();
};

/// Table I, verbatim: VS 0-1000 KB / 0-2000 ms, S 1500-2500 KB /
/// 2500-4500 ms, M 3000-4000 KB / 5000-7000 ms, L 4500-5500 KB /
/// 7500-9500 ms. (The VS data floor is clamped to 1 KB so every task has a
/// transfer to measure.)
[[nodiscard]] const TaskClassSpec& task_class_spec(TaskClass cls);

/// One schedulable unit: the data to ship to an edge server plus the time
/// the server computes on it.
struct TaskSpec {
  std::int64_t job_id = 0;
  std::int32_t task_index = 0;
  TaskClass cls = TaskClass::kVerySmall;
  sim::Bytes data_bytes = 0;
  sim::SimDuration exec_time = sim::SimDuration::zero();
  /// Hardware/software the executing server must provide (paper §VI
  /// future work: "tasks may have certain hardware (e.g., GPU) or software
  /// (e.g., Keras) requirements"). Empty = any server qualifies.
  std::vector<std::string> requirements;
};

/// Draws a task's size/duration uniformly from its class's Table-I range.
[[nodiscard]] TaskSpec sample_task(TaskClass cls, std::int64_t job_id,
                                   std::int32_t task_index, sim::Rng& rng);

/// Application-layer descriptor that rides along the task's data transfer
/// so the edge server knows what to execute and whom to notify.
struct TaskDescriptor : net::AppMessage {
  TaskSpec spec;
  core::NodeId submitter = core::kInvalidNode;
  net::PortNumber done_port = 0;  ///< where the completion message goes
};

/// Completion notification (edge server -> device). Retransmitted until
/// the device acknowledges — completion rides UDP and must survive the
/// very congestion the experiments create.
struct TaskDoneMessage : net::AppMessage {
  std::int64_t job_id = 0;
  std::int32_t task_index = 0;
  core::NodeId server = core::kInvalidNode;
};

/// Device -> edge server acknowledgement of a TaskDoneMessage.
struct TaskDoneAck : net::AppMessage {
  std::int64_t job_id = 0;
  std::int32_t task_index = 0;
};

}  // namespace intsched::edge
