#pragma once

// ServeFrontend: the scheduler-as-a-service request path (DESIGN.md
// §13). One frontend fronts one ShardedNetworkMap; serving threads call
// serve() concurrently with ingest, each with its own ServeContext.
//
// Hot-path budget per request — the contract the million-QPS harness
// (bench/qps_serve.cpp) measures and the hotpath-alloc lint + the
// allocation-counting test enforce:
//
//   * no locks: the answer is computed entirely from the immutable
//     MetroView the map last published (one atomic shared_ptr acquire);
//   * no per-request heap allocation once warm: decode writes into the
//     context's fixed-capacity request struct, candidate validation
//     probes the flat open-addressing registry (core::FlatTable — a
//     contiguous array instead of std::unordered_map's node chase),
//     ranking runs through MetroView::rank_into / pick_with over the
//     context's reusable scratch, and encode writes straight into the
//     caller's response buffer;
//   * region sharding for free: pick_with routes the query through the
//     per-region RankSnapshots and prunes whole regions by delay lower
//     bound, so a metro-sized registry costs ~one region's work.
//
// Registration (register_server) is the cold path and must not run
// concurrently with serve().

#include <cstddef>
#include <cstdint>
#include <vector>

#include "intsched/core/contracts.hpp"
#include "intsched/core/flat_table.hpp"
#include "intsched/core/sharded_map.hpp"
#include "intsched/core/types.hpp"
#include "intsched/serve/wire.hpp"

namespace intsched::serve {

/// Per-thread working state: decoded-request/response staging, ranking
/// scratch, and counters. Buffers retain capacity across requests —
/// after the first request per shape, serve() allocates nothing.
struct ServeContext {
  core::MetroView::RankScratch scratch;
  /// Validated explicit-candidate list (request order preserved).
  std::vector<core::NodeId> candidates;
  /// rank_into output staging.
  std::vector<core::ServerRank> ranked;
  RankRequest request;
  RankResponse response;
  std::int64_t served = 0;
  std::int64_t malformed = 0;
  std::int64_t unknown_origin = 0;
  std::int64_t no_candidates = 0;
};

class ServeFrontend {
 public:
  explicit ServeFrontend(const core::ShardedNetworkMap& map) : map_{&map} {}

  /// Cold path: adds one server to the registry (idempotent). The
  /// registry is what candidate_count == 0 requests rank, and explicit
  /// candidates are validated against it.
  INTSCHED_COLDPATH void register_server(core::NodeId server);

  /// Registered servers, ascending node id.
  [[nodiscard]] const std::vector<core::NodeId>& registered() const {
    return registry_;
  }

  /// Registry membership probe (the flat-table lookup the decision path
  /// uses); region is the server's provisioning region.
  [[nodiscard]] INTSCHED_HOTPATH bool is_registered(
      core::NodeId server, core::RegionId* region = nullptr) const;

  /// Hot path: decode one request frame, answer from the currently
  /// published MetroView at sim-time `now`, and encode the response into
  /// response_buf. Returns false (response_len = 0) only for malformed
  /// requests or an undersized response buffer (kMaxFrameSize always
  /// suffices); well-formed requests with no usable candidates still
  /// produce an encoded response carrying the status.
  INTSCHED_HOTPATH bool serve(ServeContext& ctx, const std::byte* request_buf,
                              std::size_t request_len, std::byte* response_buf,
                              std::size_t response_cap,
                              std::size_t& response_len,
                              sim::SimTime now) const;

 private:
  struct ServerInfo {
    core::ServerId server = core::kInvalidServer;
    core::RegionId region = core::kNoRegion;
  };

  const core::ShardedNetworkMap* map_;
  /// Sorted unique registry — the deterministic iteration order the flat
  /// table deliberately does not provide.
  std::vector<core::NodeId> registry_;
  core::FlatTable<core::NodeId, ServerInfo> table_{64};
};

}  // namespace intsched::serve
