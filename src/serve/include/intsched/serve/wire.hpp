#pragma once

// Binary wire format for the scheduler-as-a-service serving path
// (DESIGN.md §13). The design mirrors what PINT argues for telemetry —
// small, bounded per-request bytes — on the serving side:
//
//   * fixed-width little-endian fields, no varints, no framing escapes:
//     a request's size is a pure function of its candidate count, so
//     buffers are sized statically and decode never scans;
//   * a versioned 8-byte header so the format can evolve without
//     ambiguity on the wire;
//   * encode/decode work on caller-provided flat byte buffers and
//     fixed-capacity message structs — zero heap allocation on the hot
//     path in either direction;
//   * every decode read is bounds-checked against the buffer AND the
//     declared payload length, and every enum/count field is
//     range-checked, so arbitrary garbage is rejected with a typed
//     error instead of undefined behaviour (property-tested under
//     ASan/UBSan in tests/serve/test_wire.cpp).
//
// Layout (all integers little-endian):
//
//   header (8 bytes, both directions)
//     u16 magic     0x4E49 ("IN")
//     u8  version   1
//     u8  type      1 = rank request, 2 = rank response
//     u32 payload_len   exact remaining bytes; trailing garbage is an error
//
//   rank request payload (16 + 4*candidate_count bytes)
//     u64 query_id      echoed verbatim in the response
//     i32 origin        requesting node id
//     u8  metric        0 = delay, 1 = bandwidth
//     u8  max_results   1..kMaxResponseEntries
//     u16 candidate_count   0 = "rank the frontend's whole registry"
//     i32 candidates[candidate_count]
//
//   rank response payload (20 + 32*entry_count bytes)
//     u64 query_id
//     i64 epoch         publish epoch the answer was computed from
//     u8  status        0 = ok, 1 = unknown origin, 2 = no candidates
//     u8  entry_count
//     u16 reserved      must be zero
//     entries[entry_count], 32 bytes each:
//       i32 server
//       u8  flags       bit 0 = stale telemetry on the path
//       u8x3 reserved   must be zero
//       i64 delay_estimate (ns; INT64_MAX = unreachable)
//       i64 baseline_delay (ns)
//       u64 bandwidth_estimate (IEEE-754 bit pattern of bits/second)
//
// The in-memory structs carry the repo's strong types (NodeId,
// SimDuration, DataRate, Epoch); only the byte layout is raw, and the
// conversion is exact both ways (ns are the native SimDuration rep,
// doubles round-trip by bit pattern).

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "intsched/core/contracts.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/core/types.hpp"
#include "intsched/sim/time.hpp"
#include "intsched/sim/units.hpp"

namespace intsched::serve {

// The wire layout is little-endian by definition. The codec moves bytes
// with explicit shifts (wire.cpp put_le/get_le), never by memcpy of host
// integers, so it frames correctly on either endianness — the constexpr
// check below pins that property at compile time, and the host check
// refuses the exotic mixed-endian targets the shift identity does not
// cover (PDP-endian doubles would still reinterpret bit patterns).
namespace detail {
[[nodiscard]] constexpr std::array<std::uint8_t, 4> wire_le_bytes(
    std::uint32_t v) {
  // Mirror of wire.cpp's put_le byte moves, kept constexpr-evaluable.
  return {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
          static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 24)};
}
}  // namespace detail

static_assert(detail::wire_le_bytes(0x11223344u)[0] == 0x44 &&
                  detail::wire_le_bytes(0x11223344u)[1] == 0x33 &&
                  detail::wire_le_bytes(0x11223344u)[2] == 0x22 &&
                  detail::wire_le_bytes(0x11223344u)[3] == 0x11,
              "wire byte moves must produce little-endian layout");
static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "mixed-endian hosts are unsupported by the wire format");

inline constexpr std::uint16_t kWireMagic = 0x4E49;  // "IN"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
/// Bounded like PINT bounds per-packet bytes: a request names at most
/// this many explicit candidates (0 means "whole registry").
inline constexpr std::size_t kMaxRequestCandidates = 128;
/// A response carries at most the top-k entries the client asked for.
inline constexpr std::size_t kMaxResponseEntries = 32;

enum class MessageType : std::uint8_t {
  kRankRequest = 1,
  kRankResponse = 2,
};

/// Typed decode failure. Every malformed input maps to exactly one of
/// these; none of them is undefined behaviour.
enum class WireError : std::uint8_t {
  kOk = 0,
  kTruncated,    ///< buffer shorter than the header or fixed payload head
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,    ///< payload_len disagrees with the buffer or the counts
  kBadField,     ///< enum/count/reserved field out of range
};

[[nodiscard]] const char* to_string(WireError e);

enum class ServeStatus : std::uint8_t {
  kOk = 0,
  kUnknownOrigin = 1,  ///< request carried an invalid origin id
  kNoCandidates = 2,   ///< no requested candidate is registered
};

struct RankRequest {
  std::uint64_t query_id = 0;
  core::NodeId origin = core::kInvalidNode;
  core::RankingMetric metric = core::RankingMetric::kDelay;
  std::uint8_t max_results = 1;
  /// 0 = rank every registered server; otherwise the first
  /// candidate_count slots of `candidates` are the explicit set.
  std::uint16_t candidate_count = 0;
  std::array<core::NodeId, kMaxRequestCandidates> candidates{};
};

struct RankResponseEntry {
  core::NodeId server = core::kInvalidNode;
  bool stale = false;
  sim::SimDuration delay_estimate = sim::SimDuration::zero();
  sim::SimDuration baseline_delay = sim::SimDuration::zero();
  sim::DataRate bandwidth_estimate = sim::DataRate::bits_per_second(0.0);
};

struct RankResponse {
  std::uint64_t query_id = 0;
  core::Epoch epoch = core::Epoch::none();
  ServeStatus status = ServeStatus::kOk;
  std::uint8_t entry_count = 0;
  std::array<RankResponseEntry, kMaxResponseEntries> entries{};
};

[[nodiscard]] constexpr std::size_t encoded_request_size(
    std::size_t candidate_count) {
  return kHeaderSize + 16 + 4 * candidate_count;
}
[[nodiscard]] constexpr std::size_t encoded_response_size(
    std::size_t entry_count) {
  return kHeaderSize + 20 + 32 * entry_count;
}
/// Big enough for any frame in either direction — the harness and the
/// frontend size their per-thread buffers with this.
inline constexpr std::size_t kMaxFrameSize =
    encoded_response_size(kMaxResponseEntries) >
            encoded_request_size(kMaxRequestCandidates)
        ? encoded_response_size(kMaxResponseEntries)
        : encoded_request_size(kMaxRequestCandidates);

/// Encodes into `buf`; returns the frame size, or 0 when the buffer is
/// too small or a count field exceeds its wire bound. Never allocates.
[[nodiscard]] INTSCHED_HOTPATH std::size_t encode_rank_request(
    const RankRequest& req, std::byte* buf, std::size_t cap);
[[nodiscard]] INTSCHED_HOTPATH std::size_t encode_rank_response(
    const RankResponse& resp, std::byte* buf, std::size_t cap);

/// Decodes exactly one frame from `buf[0..len)`; the frame must span the
/// whole buffer (trailing bytes are kBadLength). On any error `out` may
/// be partially written but the call itself is well-defined.
[[nodiscard]] INTSCHED_HOTPATH WireError decode_rank_request(
    const std::byte* buf, std::size_t len, RankRequest& out);
[[nodiscard]] INTSCHED_HOTPATH WireError decode_rank_response(
    const std::byte* buf, std::size_t len, RankResponse& out);

}  // namespace intsched::serve
