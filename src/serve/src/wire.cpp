#include "intsched/serve/wire.hpp"

#include <bit>
#include <type_traits>

namespace intsched::serve {

namespace {

// Explicit little-endian byte moves: portable (no host-endianness
// assumptions), branch-free, and fully unrolled by the compiler at
// these fixed widths.
template <typename T>
void put_le(std::byte* p, T v) {
  static_assert(std::is_unsigned_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    p[i] = static_cast<std::byte>(v >> (8 * i));
  }
}

template <typename T>
[[nodiscard]] T get_le(const std::byte* p) {
  static_assert(std::is_unsigned_v<T>);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= std::uint64_t{std::to_integer<std::uint8_t>(p[i])} << (8 * i);
  }
  return static_cast<T>(v);
}

void put_header(std::byte* p, MessageType type, std::size_t payload_len) {
  put_le<std::uint16_t>(p, kWireMagic);
  p[2] = static_cast<std::byte>(kWireVersion);
  p[3] = static_cast<std::byte>(type);
  put_le<std::uint32_t>(p + 4, static_cast<std::uint32_t>(payload_len));
}

/// Validates the header and the exact-framing rule (payload_len ==
/// len - kHeaderSize); on success the payload length is in *payload.
[[nodiscard]] WireError check_header(const std::byte* buf, std::size_t len,
                                     MessageType expected,
                                     std::size_t* payload) {
  if (len < kHeaderSize) return WireError::kTruncated;
  if (get_le<std::uint16_t>(buf) != kWireMagic) return WireError::kBadMagic;
  if (std::to_integer<std::uint8_t>(buf[2]) != kWireVersion) {
    return WireError::kBadVersion;
  }
  if (std::to_integer<std::uint8_t>(buf[3]) !=
      static_cast<std::uint8_t>(expected)) {
    return WireError::kBadType;
  }
  *payload = get_le<std::uint32_t>(buf + 4);
  if (*payload != len - kHeaderSize) return WireError::kBadLength;
  return WireError::kOk;
}

}  // namespace

const char* to_string(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadType: return "bad-type";
    case WireError::kBadLength: return "bad-length";
    case WireError::kBadField: return "bad-field";
  }
  return "unknown";
}

// intsched-lint: hot-path
std::size_t encode_rank_request(const RankRequest& req, std::byte* buf,
                                std::size_t cap) {
  if (req.candidate_count > kMaxRequestCandidates) return 0;
  if (req.max_results == 0 || req.max_results > kMaxResponseEntries) return 0;
  const std::size_t need = encoded_request_size(req.candidate_count);
  if (cap < need) return 0;
  put_header(buf, MessageType::kRankRequest, need - kHeaderSize);
  std::byte* p = buf + kHeaderSize;
  put_le<std::uint64_t>(p, req.query_id);
  put_le<std::uint32_t>(p + 8,
                        static_cast<std::uint32_t>(req.origin.value()));
  p[12] = static_cast<std::byte>(req.metric);
  p[13] = static_cast<std::byte>(req.max_results);
  put_le<std::uint16_t>(p + 14, req.candidate_count);
  p += 16;
  for (std::size_t i = 0; i < req.candidate_count; ++i) {
    put_le<std::uint32_t>(
        p + 4 * i, static_cast<std::uint32_t>(req.candidates[i].value()));
  }
  return need;
}

// intsched-lint: hot-path
WireError decode_rank_request(const std::byte* buf, std::size_t len,
                              RankRequest& out) {
  std::size_t payload = 0;
  const WireError h =
      check_header(buf, len, MessageType::kRankRequest, &payload);
  if (h != WireError::kOk) return h;
  if (payload < 16) return WireError::kTruncated;
  const std::byte* p = buf + kHeaderSize;
  out.query_id = get_le<std::uint64_t>(p);
  out.origin = core::NodeId{
      static_cast<std::int32_t>(get_le<std::uint32_t>(p + 8))};
  const auto metric = std::to_integer<std::uint8_t>(p[12]);
  if (metric > static_cast<std::uint8_t>(core::RankingMetric::kBandwidth)) {
    return WireError::kBadField;
  }
  out.metric = static_cast<core::RankingMetric>(metric);
  out.max_results = std::to_integer<std::uint8_t>(p[13]);
  if (out.max_results == 0 || out.max_results > kMaxResponseEntries) {
    return WireError::kBadField;
  }
  out.candidate_count = get_le<std::uint16_t>(p + 14);
  if (out.candidate_count > kMaxRequestCandidates) return WireError::kBadField;
  if (payload != 16 + 4 * std::size_t{out.candidate_count}) {
    return WireError::kBadLength;
  }
  p += 16;
  for (std::size_t i = 0; i < out.candidate_count; ++i) {
    out.candidates[i] = core::NodeId{
        static_cast<std::int32_t>(get_le<std::uint32_t>(p + 4 * i))};
  }
  return WireError::kOk;
}

// intsched-lint: hot-path
std::size_t encode_rank_response(const RankResponse& resp, std::byte* buf,
                                 std::size_t cap) {
  if (resp.entry_count > kMaxResponseEntries) return 0;
  const std::size_t need = encoded_response_size(resp.entry_count);
  if (cap < need) return 0;
  put_header(buf, MessageType::kRankResponse, need - kHeaderSize);
  std::byte* p = buf + kHeaderSize;
  put_le<std::uint64_t>(p, resp.query_id);
  put_le<std::uint64_t>(p + 8,
                        static_cast<std::uint64_t>(resp.epoch.value()));
  p[16] = static_cast<std::byte>(resp.status);
  p[17] = static_cast<std::byte>(resp.entry_count);
  put_le<std::uint16_t>(p + 18, 0);  // reserved
  p += 20;
  for (std::size_t i = 0; i < resp.entry_count; ++i, p += 32) {
    const RankResponseEntry& e = resp.entries[i];
    put_le<std::uint32_t>(p, static_cast<std::uint32_t>(e.server.value()));
    p[4] = static_cast<std::byte>(e.stale ? 1 : 0);
    p[5] = std::byte{0};
    p[6] = std::byte{0};
    p[7] = std::byte{0};
    put_le<std::uint64_t>(
        p + 8, static_cast<std::uint64_t>(e.delay_estimate.ns()));
    put_le<std::uint64_t>(
        p + 16, static_cast<std::uint64_t>(e.baseline_delay.ns()));
    put_le<std::uint64_t>(
        p + 24, std::bit_cast<std::uint64_t>(e.bandwidth_estimate.bps()));
  }
  return need;
}

// intsched-lint: hot-path
WireError decode_rank_response(const std::byte* buf, std::size_t len,
                               RankResponse& out) {
  std::size_t payload = 0;
  const WireError h =
      check_header(buf, len, MessageType::kRankResponse, &payload);
  if (h != WireError::kOk) return h;
  if (payload < 20) return WireError::kTruncated;
  const std::byte* p = buf + kHeaderSize;
  out.query_id = get_le<std::uint64_t>(p);
  out.epoch = core::Epoch{
      static_cast<std::int64_t>(get_le<std::uint64_t>(p + 8))};
  const auto status = std::to_integer<std::uint8_t>(p[16]);
  if (status > static_cast<std::uint8_t>(ServeStatus::kNoCandidates)) {
    return WireError::kBadField;
  }
  out.status = static_cast<ServeStatus>(status);
  out.entry_count = std::to_integer<std::uint8_t>(p[17]);
  if (out.entry_count > kMaxResponseEntries) return WireError::kBadField;
  if (get_le<std::uint16_t>(p + 18) != 0) return WireError::kBadField;
  if (payload != 20 + 32 * std::size_t{out.entry_count}) {
    return WireError::kBadLength;
  }
  p += 20;
  for (std::size_t i = 0; i < out.entry_count; ++i, p += 32) {
    RankResponseEntry& e = out.entries[i];
    e.server = core::NodeId{
        static_cast<std::int32_t>(get_le<std::uint32_t>(p))};
    const auto flags = std::to_integer<std::uint8_t>(p[4]);
    if (flags > 1) return WireError::kBadField;
    if (std::to_integer<std::uint8_t>(p[5]) != 0 ||
        std::to_integer<std::uint8_t>(p[6]) != 0 ||
        std::to_integer<std::uint8_t>(p[7]) != 0) {
      return WireError::kBadField;
    }
    e.stale = flags != 0;
    e.delay_estimate = sim::SimDuration::nanos(
        static_cast<std::int64_t>(get_le<std::uint64_t>(p + 8)));
    e.baseline_delay = sim::SimDuration::nanos(
        static_cast<std::int64_t>(get_le<std::uint64_t>(p + 16)));
    e.bandwidth_estimate = sim::DataRate::bits_per_second(
        std::bit_cast<double>(get_le<std::uint64_t>(p + 24)));
  }
  return WireError::kOk;
}

}  // namespace intsched::serve
