#include "intsched/serve/frontend.hpp"

#include <algorithm>
#include <memory>
#include <optional>

namespace intsched::serve {

namespace {

// intsched-lint: hot-path
void fill_entry(RankResponseEntry& e, const core::ServerRank& r) {
  e.server = r.server;
  e.stale = r.stale;
  e.delay_estimate = r.delay_estimate;
  e.baseline_delay = r.baseline_delay;
  e.bandwidth_estimate = r.bandwidth_estimate;
}

}  // namespace

void ServeFrontend::register_server(core::NodeId server) {
  if (!server.valid() || table_.contains(server)) return;
  ServerInfo info;
  info.server = core::server_at(server);
  info.region = map_->region_of(server);
  table_.insert_or_assign(server, info);
  const auto it =
      std::lower_bound(registry_.begin(), registry_.end(), server);
  registry_.insert(it, server);
}

bool ServeFrontend::is_registered(core::NodeId server,
                                  core::RegionId* region) const {
  const ServerInfo* info = table_.find(server);
  if (info == nullptr) return false;
  if (region != nullptr) *region = info->region;
  return true;
}

// intsched-lint: hot-path
bool ServeFrontend::serve(ServeContext& ctx, const std::byte* request_buf,
                          std::size_t request_len, std::byte* response_buf,
                          std::size_t response_cap,
                          std::size_t& response_len, sim::SimTime now) const {
  response_len = 0;
  if (decode_rank_request(request_buf, request_len, ctx.request) !=
      WireError::kOk) {
    ++ctx.malformed;
    return false;
  }
  const RankRequest& req = ctx.request;
  RankResponse& resp = ctx.response;
  resp.query_id = req.query_id;
  resp.status = ServeStatus::kOk;
  resp.entry_count = 0;

  // Candidate resolution: the whole registry (no copy — rank_into takes
  // pointer + count), or the request's explicit ids filtered through the
  // flat registry table.
  const core::NodeId* candidates = registry_.data();
  std::size_t candidate_count = registry_.size();
  if (req.candidate_count != 0) {
    ctx.candidates.clear();
    for (std::size_t i = 0; i < req.candidate_count; ++i) {
      const core::NodeId n = req.candidates[i];
      if (table_.find(n) != nullptr) ctx.candidates.push_back(n);
    }
    candidates = ctx.candidates.data();
    candidate_count = ctx.candidates.size();
  }

  // One atomic acquire pins the immutable view for the whole answer —
  // epoch, pruning state, and every estimate are mutually consistent
  // even while ingest publishes concurrently.
  const std::shared_ptr<const core::MetroView> view = map_->view();
  resp.epoch = view->epoch();

  if (!req.origin.valid()) {
    resp.status = ServeStatus::kUnknownOrigin;
    ++ctx.unknown_origin;
  } else if (candidate_count == 0) {
    resp.status = ServeStatus::kNoCandidates;
    ++ctx.no_candidates;
  } else if (req.max_results == 1 &&
             req.metric == core::RankingMetric::kDelay) {
    // Single-best delay queries take the region-pruned pick path.
    const std::optional<core::ServerRank> best =
        view->pick_with(req.origin, candidates, candidate_count, req.metric,
                        now, ctx.scratch, nullptr);
    if (best.has_value()) {
      fill_entry(resp.entries[0], *best);
      resp.entry_count = 1;
    }
  } else {
    view->rank_into(req.origin, candidates, candidate_count, req.metric, now,
                    ctx.scratch, ctx.ranked);
    const std::size_t n = std::min<std::size_t>(
        req.max_results, ctx.ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      fill_entry(resp.entries[i], ctx.ranked[i]);
    }
    resp.entry_count = static_cast<std::uint8_t>(n);
  }

  ++ctx.served;
  response_len = encode_rank_response(resp, response_buf, response_cap);
  return response_len != 0;
}

}  // namespace intsched::serve
