#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "intsched/net/node.hpp"
#include "intsched/net/packet.hpp"

namespace intsched::transport {

class TcpEndpoint;

/// Key identifying one TCP connection from the local host's point of view.
struct ConnKey {
  core::NodeId peer = core::kInvalidNode;
  net::PortNumber local_port = 0;
  net::PortNumber remote_port = 0;
  friend constexpr bool operator==(const ConnKey&, const ConnKey&) = default;
};

struct ConnKeyHash {
  std::size_t operator()(const ConnKey& k) const {
    const auto a = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(k.peer.value()));
    return std::hash<std::uint64_t>{}(
        (a << 32) | (static_cast<std::uint64_t>(k.local_port) << 16) |
        k.remote_port);
  }
};

/// Minimal host networking stack: demultiplexes arriving packets to UDP
/// port handlers and TCP endpoints, allocates ephemeral ports, and offers a
/// datagram-send helper. One per Host; installs itself as the host's
/// receiver.
class HostStack {
 public:
  using DatagramHandler = std::function<void(const net::Packet&)>;

  explicit HostStack(net::Host& host);

  [[nodiscard]] net::Host& host() const { return host_; }
  [[nodiscard]] sim::Simulator& simulator() const {
    return host_.simulator();
  }

  /// Registers a UDP receive handler for a local port. Overwrites any
  /// previous handler on that port.
  void bind_udp(net::PortNumber port, DatagramHandler handler);

  /// Removes a UDP handler; late datagrams count as unroutable. Objects
  /// that bind a port must unbind it on destruction.
  void unbind_udp(net::PortNumber port);

  /// Sends a UDP datagram. `size` is the wire size including headers (use
  /// datagram_size() to build it from a payload size).
  bool send_datagram(core::NodeId dst, net::PortNumber src_port,
                     net::PortNumber dst_port, sim::Bytes size,
                     std::shared_ptr<const net::AppMessage> app = nullptr);

  [[nodiscard]] static sim::Bytes datagram_size(sim::Bytes payload) {
    return net::kHeaderBytes + payload;
  }

  /// Ephemeral port allocator for client connections.
  [[nodiscard]] net::PortNumber allocate_port();

  // -- TCP plumbing (used by TcpListener/TcpSender/TcpReceiver) --
  void register_tcp(const ConnKey& key, TcpEndpoint* endpoint);
  void unregister_tcp(const ConnKey& key);
  void listen_tcp(net::PortNumber port,
                  std::function<void(const net::Packet&)> on_syn);
  bool send_raw(net::Packet&& p) { return host_.send(std::move(p)); }

  [[nodiscard]] std::int64_t datagrams_received() const { return udp_rx_; }
  [[nodiscard]] std::int64_t unroutable_packets() const {
    return unroutable_;
  }

 private:
  void on_packet(net::Packet&& p);

  net::Host& host_;
  std::unordered_map<net::PortNumber, DatagramHandler> udp_handlers_;
  std::unordered_map<ConnKey, TcpEndpoint*, ConnKeyHash> tcp_conns_;
  std::unordered_map<net::PortNumber,
                     std::function<void(const net::Packet&)>>
      tcp_listeners_;
  net::PortNumber next_ephemeral_ = 20000;
  std::int64_t udp_rx_ = 0;
  std::int64_t unroutable_ = 0;
};

/// Interface for objects receiving TCP segments from the stack.
class TcpEndpoint {
 public:
  virtual ~TcpEndpoint() = default;
  virtual void on_segment(const net::Packet& p) = 0;
};

}  // namespace intsched::transport
