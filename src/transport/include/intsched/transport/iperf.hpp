#pragma once

#include <cstdint>
#include <memory>

#include "intsched/transport/host_stack.hpp"
#include "intsched/transport/tcp.hpp"

namespace intsched::transport {

/// iperf-like constant-bit-rate UDP source ("iperf -u -b <rate>"), the
/// paper's background-congestion and Fig. 3 load generator. Packets are
/// paced at exactly rate/packet_size; the receiving side just counts.
class IperfUdpSender {
 public:
  struct Config {
    sim::DataRate rate = sim::DataRate::megabits_per_second(10.0);
    sim::Bytes packet_size = 1500;  ///< wire size per packet
    net::PortNumber dst_port = net::kIperfPort;
  };

  IperfUdpSender(HostStack& stack, core::NodeId dst, Config config);
  ~IperfUdpSender() { stop(); }
  IperfUdpSender(const IperfUdpSender&) = delete;
  IperfUdpSender& operator=(const IperfUdpSender&) = delete;

  /// Starts sending; if `duration` > 0 the sender stops by itself.
  void start(sim::SimDuration duration = sim::SimDuration::zero());
  void stop();
  [[nodiscard]] bool running() const { return timer_.active(); }

  [[nodiscard]] std::int64_t packets_sent() const { return sent_; }
  [[nodiscard]] sim::Bytes bytes_sent() const { return bytes_; }

 private:
  void send_one();

  HostStack& stack_;
  core::NodeId dst_;
  Config cfg_;
  net::PortNumber src_port_ = 0;
  sim::PeriodicHandle timer_;
  sim::EventId stop_event_{};
  bool stop_armed_ = false;
  std::int64_t sent_ = 0;
  sim::Bytes bytes_ = 0;
};

/// Counts datagrams arriving on a UDP port and tracks goodput.
class IperfUdpSink {
 public:
  IperfUdpSink(HostStack& stack, net::PortNumber port = net::kIperfPort);

  [[nodiscard]] std::int64_t packets_received() const { return packets_; }
  [[nodiscard]] sim::Bytes bytes_received() const { return bytes_; }
  [[nodiscard]] sim::SimTime first_arrival() const { return first_; }
  [[nodiscard]] sim::SimTime last_arrival() const { return last_; }

  /// Average goodput between the first and last arrival.
  [[nodiscard]] sim::DataRate goodput() const;

 private:
  std::int64_t packets_ = 0;
  sim::Bytes bytes_ = 0;
  sim::SimTime first_ = sim::SimTime::zero();
  sim::SimTime last_ = sim::SimTime::zero();
};

/// Bulk TCP transfer ("iperf" classic mode): pushes `bytes` through a
/// TcpSender and reports the achieved throughput.
class IperfTcpSender {
 public:
  IperfTcpSender(HostStack& stack, core::NodeId dst, sim::Bytes bytes,
                 net::PortNumber dst_port = net::kIperfPort,
                 TcpConfig config = {});

  void start();
  [[nodiscard]] bool complete() const;
  [[nodiscard]] sim::SimDuration elapsed() const;
  [[nodiscard]] sim::DataRate throughput() const;
  [[nodiscard]] TcpSender& sender() { return *sender_; }

 private:
  std::unique_ptr<TcpSender> sender_;
  sim::Bytes bytes_;
};

/// Accepts bulk TCP transfers on a port (the "iperf -s" side).
class IperfTcpServer {
 public:
  IperfTcpServer(HostStack& stack, net::PortNumber port = net::kIperfPort);

  [[nodiscard]] std::int64_t transfers_completed() const {
    return listener_->completed();
  }

 private:
  std::unique_ptr<TcpListener> listener_;
};

}  // namespace intsched::transport
