#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "intsched/transport/host_stack.hpp"

namespace intsched::transport {

/// Reno-style congestion control parameters.
struct TcpConfig {
  sim::Bytes mss = net::kMss;
  /// Initial window (RFC 6928-style 10 segments).
  std::int64_t initial_window_segments = 10;
  /// Receive-window cap on the congestion window.
  sim::Bytes max_window = 256 * sim::kKiB;
  sim::SimDuration initial_rto = sim::SimDuration::secs(1);
  sim::SimDuration min_rto = sim::SimDuration::millis(200);
  sim::SimDuration max_rto = sim::SimDuration::secs(60);
};

/// Message framing for a one-shot transfer: total size plus an optional
/// structured payload the receiver's application gets on completion.
struct TransferHeader : net::AppMessage {
  sim::Bytes total_bytes = 0;
  std::shared_ptr<const net::AppMessage> payload;
};

/// Sender half of a one-shot reliable transfer (think: HTTP PUT of a task's
/// input data). Implements Reno congestion control: slow start, AIMD
/// congestion avoidance, fast retransmit on three duplicate ACKs, and
/// exponentially backed-off retransmission timeouts. Byte-counted: segments
/// carry sizes, not buffers.
class TcpSender : public TcpEndpoint {
 public:
  using CompletionHandler = std::function<void(TcpSender&)>;

  TcpSender(HostStack& stack, core::NodeId dst, net::PortNumber dst_port,
            sim::Bytes payload_bytes,
            std::shared_ptr<const net::AppMessage> message = nullptr,
            TcpConfig config = {});
  ~TcpSender() override;
  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Sends the SYN and begins the transfer.
  void start();

  /// Invoked once all payload bytes have been acknowledged.
  void set_completion_handler(CompletionHandler h) { done_cb_ = std::move(h); }

  void on_segment(const net::Packet& p) override;

  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] sim::Bytes total_bytes() const { return total_; }
  [[nodiscard]] sim::SimTime start_time() const { return start_time_; }
  [[nodiscard]] sim::SimTime completion_time() const { return done_time_; }
  [[nodiscard]] std::int64_t retransmissions() const { return retransmits_; }
  [[nodiscard]] std::int64_t timeouts() const { return timeouts_; }
  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] sim::SimDuration smoothed_rtt() const { return srtt_; }

 private:
  void send_syn();
  void send_window();
  void send_segment(std::int64_t seq, bool retransmission);
  void on_ack(std::int64_t ack);
  void enter_fast_retransmit();
  void arm_rto();
  void on_rto();
  void update_rtt(sim::SimDuration sample);
  void finish();

  HostStack& stack_;
  core::NodeId dst_;
  net::PortNumber dst_port_;
  net::PortNumber src_port_;
  sim::Bytes total_;
  std::shared_ptr<const TransferHeader> header_;
  TcpConfig cfg_;
  CompletionHandler done_cb_;

  bool started_ = false;
  bool established_ = false;
  bool complete_ = false;
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;
  std::int32_t dup_acks_ = 0;

  // RTT estimation (RFC 6298) with Karn's rule: only segments sent exactly
  // once are sampled, one at a time.
  sim::SimDuration srtt_ = sim::SimDuration::zero();
  sim::SimDuration rttvar_ = sim::SimDuration::zero();
  sim::SimDuration rto_;
  std::int64_t rtt_seq_ = -1;
  sim::SimTime rtt_sent_at_ = sim::SimTime::zero();

  sim::EventId rto_timer_{};
  bool rto_armed_ = false;
  std::int64_t retransmits_ = 0;
  std::int64_t timeouts_ = 0;
  sim::SimTime start_time_ = sim::SimTime::zero();
  sim::SimTime done_time_ = sim::SimTime::zero();
};

/// Receiver half, created by a TcpListener on SYN arrival. Acknowledges
/// cumulatively, reassembles out-of-order ranges, and reports completion
/// when all bytes of the framed transfer have arrived.
class TcpReceiver : public TcpEndpoint {
 public:
  using CompletionHandler =
      std::function<void(TcpReceiver&, std::shared_ptr<const net::AppMessage>)>;

  TcpReceiver(HostStack& stack, core::NodeId peer, net::PortNumber peer_port,
              net::PortNumber local_port, CompletionHandler on_complete,
              TcpConfig config = {});
  ~TcpReceiver() override;
  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  void on_segment(const net::Packet& p) override;

  [[nodiscard]] core::NodeId peer() const { return peer_; }
  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] sim::Bytes bytes_received() const { return rcv_nxt_; }
  [[nodiscard]] sim::SimTime first_segment_time() const { return first_rx_; }
  [[nodiscard]] sim::SimTime completion_time() const { return done_time_; }

 private:
  void send_control(net::TcpFlag flags, std::int64_t ack);
  void merge_range(std::int64_t begin, std::int64_t end);

  HostStack& stack_;
  core::NodeId peer_;
  net::PortNumber peer_port_;
  net::PortNumber local_port_;
  CompletionHandler on_complete_;
  TcpConfig cfg_;

  std::int64_t rcv_nxt_ = 0;
  sim::Bytes expected_total_ = -1;
  std::map<std::int64_t, std::int64_t> ooo_;  ///< out-of-order [begin,end)
  std::shared_ptr<const net::AppMessage> app_payload_;
  bool complete_ = false;
  sim::SimTime first_rx_ = sim::SimTime::zero();
  sim::SimTime done_time_ = sim::SimTime::zero();
};

/// Passive endpoint: spawns a TcpReceiver per incoming connection and
/// surfaces completed transfers to the application.
class TcpListener {
 public:
  /// on_transfer(peer, bytes, message, receiver) fires when a transfer
  /// completes.
  using TransferHandler = std::function<void(
      core::NodeId, sim::Bytes, std::shared_ptr<const net::AppMessage>)>;

  TcpListener(HostStack& stack, net::PortNumber port,
              TransferHandler on_transfer, TcpConfig config = {});

  [[nodiscard]] std::int64_t accepted() const { return accepted_; }
  [[nodiscard]] std::int64_t completed() const { return completed_; }

 private:
  void on_syn(const net::Packet& p);

  HostStack& stack_;
  net::PortNumber port_;
  TransferHandler on_transfer_;
  TcpConfig cfg_;
  std::vector<std::unique_ptr<TcpReceiver>> receivers_;
  std::int64_t accepted_ = 0;
  std::int64_t completed_ = 0;
};

}  // namespace intsched::transport
