#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "intsched/sim/stats.hpp"
#include "intsched/transport/host_stack.hpp"

namespace intsched::transport {

/// Echo payload: the responder reflects it unchanged so the pinger can
/// match replies to requests and compute RTTs.
struct EchoMessage : net::AppMessage {
  std::int64_t sequence = 0;
  sim::SimTime sent_at = sim::SimTime::zero();
};

/// Answers echo requests on the echo port. One per pingable host.
class PingResponder {
 public:
  explicit PingResponder(HostStack& stack);

  [[nodiscard]] std::int64_t replies_sent() const { return replies_; }

 private:
  std::int64_t replies_ = 0;
};

/// Parameters for PingApp. Defined outside the class because GCC rejects
/// brace-default arguments of nested aggregates with member initializers.
struct PingConfig {
  sim::SimDuration interval = sim::SimDuration::secs(1);
  sim::Bytes packet_size = 64 + net::kHeaderBytes;
};

/// `ping`-equivalent: sends an echo request every interval and records
/// RTTs. The paper runs this in the background during the Fig. 3
/// calibration to relate utilization to end-to-end delay.
class PingApp {
 public:
  using Config = PingConfig;

  PingApp(HostStack& stack, core::NodeId dst, Config config = {});
  ~PingApp() { stop(); }
  PingApp(const PingApp&) = delete;
  PingApp& operator=(const PingApp&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::int64_t sent() const { return sent_; }
  [[nodiscard]] std::int64_t received() const { return received_; }
  [[nodiscard]] const sim::RunningStats& rtt_ms() const { return rtt_ms_; }
  [[nodiscard]] const std::vector<double>& rtt_samples_ms() const {
    return samples_ms_;
  }

 private:
  void send_request();

  HostStack& stack_;
  core::NodeId dst_;
  Config cfg_;
  net::PortNumber src_port_ = 0;
  sim::PeriodicHandle timer_;
  std::int64_t sent_ = 0;
  std::int64_t received_ = 0;
  sim::RunningStats rtt_ms_;
  std::vector<double> samples_ms_;
};

}  // namespace intsched::transport
