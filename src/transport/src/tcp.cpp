#include "intsched/transport/tcp.hpp"

#include <algorithm>
#include <cassert>

namespace intsched::transport {
namespace {

net::Packet make_tcp_packet(core::NodeId src, core::NodeId dst,
                            net::PortNumber src_port,
                            net::PortNumber dst_port, std::int64_t seq,
                            std::int64_t ack, net::TcpFlag flags,
                            sim::Bytes payload) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.protocol = net::IpProtocol::kTcp;
  p.l4 = net::TcpHeader{.src_port = src_port,
                        .dst_port = dst_port,
                        .seq = seq,
                        .ack = ack,
                        .flags = flags};
  p.wire_size = net::kHeaderBytes + payload;
  return p;
}

}  // namespace

// ---------------------------------------------------------------- sender

TcpSender::TcpSender(HostStack& stack, core::NodeId dst,
                     net::PortNumber dst_port, sim::Bytes payload_bytes,
                     std::shared_ptr<const net::AppMessage> message,
                     TcpConfig config)
    : stack_{stack},
      dst_{dst},
      dst_port_{dst_port},
      src_port_{0},
      total_{payload_bytes},
      cfg_{config},
      rto_{config.initial_rto} {
  assert(payload_bytes > 0);
  auto header = std::make_shared<TransferHeader>();
  header->total_bytes = payload_bytes;
  header->payload = std::move(message);
  header_ = std::move(header);
}

TcpSender::~TcpSender() {
  if (rto_armed_) stack_.simulator().cancel(rto_timer_);
  if (started_ && !complete_) {
    stack_.unregister_tcp(ConnKey{dst_, src_port_, dst_port_});
  }
}

void TcpSender::start() {
  assert(!started_);
  started_ = true;
  start_time_ = stack_.simulator().now();
  src_port_ = stack_.allocate_port();
  stack_.register_tcp(ConnKey{dst_, src_port_, dst_port_}, this);
  cwnd_ = static_cast<double>(cfg_.initial_window_segments * cfg_.mss);
  ssthresh_ = static_cast<double>(cfg_.max_window);
  send_syn();
  arm_rto();
}

void TcpSender::send_syn() {
  stack_.send_raw(make_tcp_packet(stack_.host().id(), dst_, src_port_,
                                  dst_port_, 0, 0, net::TcpFlag::kSyn, 0));
}

void TcpSender::on_segment(const net::Packet& p) {
  const auto* tcp = p.tcp();
  if (tcp == nullptr || complete_) return;

  if (has_flag(tcp->flags, net::TcpFlag::kSyn) &&
      has_flag(tcp->flags, net::TcpFlag::kAck)) {
    if (!established_) {
      established_ = true;
      dup_acks_ = 0;
      arm_rto();
      send_window();
    }
    return;
  }
  if (has_flag(tcp->flags, net::TcpFlag::kAck)) on_ack(tcp->ack);
}

void TcpSender::on_ack(std::int64_t ack) {
  if (ack > snd_una_) {
    const std::int64_t acked = ack - snd_una_;
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    dup_acks_ = 0;

    if (rtt_seq_ >= 0 && ack > rtt_seq_) {
      update_rtt(stack_.simulator().now() - rtt_sent_at_);
      rtt_seq_ = -1;
    }

    // Appropriate byte counting: slow start grows by at most one MSS per
    // ACK; congestion avoidance by MSS*MSS/cwnd.
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(std::min<std::int64_t>(acked, cfg_.mss));
    } else {
      cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(cfg_.mss) /
               cwnd_;
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_window));

    if (snd_una_ >= total_) {
      finish();
      return;
    }
    arm_rto();
    send_window();
    return;
  }

  // Duplicate ACK.
  if (snd_una_ < snd_nxt_) {
    ++dup_acks_;
    if (dup_acks_ == 3) enter_fast_retransmit();
  }
}

void TcpSender::enter_fast_retransmit() {
  const auto flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ =
      std::max(flight / 2.0, static_cast<double>(2 * cfg_.mss));
  cwnd_ = ssthresh_;
  dup_acks_ = 0;
  ++retransmits_;
  send_segment(snd_una_, /*retransmission=*/true);
  arm_rto();
}

void TcpSender::send_window() {
  if (!established_ || complete_) return;
  while (snd_nxt_ < total_) {
    const sim::Bytes len = std::min<sim::Bytes>(cfg_.mss, total_ - snd_nxt_);
    const std::int64_t in_flight = snd_nxt_ - snd_una_;
    if (static_cast<double>(in_flight + len) > cwnd_) break;
    send_segment(snd_nxt_, /*retransmission=*/false);
    if (rtt_seq_ < 0) {
      rtt_seq_ = snd_nxt_;
      rtt_sent_at_ = stack_.simulator().now();
    }
    snd_nxt_ += len;
  }
}

void TcpSender::send_segment(std::int64_t seq, bool retransmission) {
  const sim::Bytes len = std::min<sim::Bytes>(cfg_.mss, total_ - seq);
  auto p = make_tcp_packet(stack_.host().id(), dst_, src_port_, dst_port_,
                           seq, 0, net::TcpFlag::kNone, len);
  p.app = header_;
  stack_.send_raw(std::move(p));
  if (retransmission && rtt_seq_ == seq) rtt_seq_ = -1;  // Karn's rule
}

void TcpSender::arm_rto() {
  if (rto_armed_) stack_.simulator().cancel(rto_timer_);
  rto_armed_ = true;
  rto_timer_ = stack_.simulator().schedule_after(rto_, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void TcpSender::on_rto() {
  if (complete_) return;
  ++timeouts_;
  const auto flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ =
      std::max(flight / 2.0, static_cast<double>(2 * cfg_.mss));
  cwnd_ = static_cast<double>(cfg_.mss);
  rto_ = std::min(rto_ * 2, cfg_.max_rto);
  rtt_seq_ = -1;
  dup_acks_ = 0;
  if (!established_) {
    send_syn();
  } else {
    // Go-back-N from the last cumulative ACK.
    snd_nxt_ = snd_una_;
    ++retransmits_;
    send_window();
  }
  arm_rto();
}

void TcpSender::update_rtt(sim::SimDuration sample) {
  if (srtt_ == sim::SimDuration::zero()) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::SimDuration err =
        sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (rttvar_ * 3) / 4 + err / 4;
    srtt_ = (srtt_ * 7) / 8 + sample / 8;
  }
  rto_ = std::clamp(srtt_ + rttvar_ * 4, cfg_.min_rto, cfg_.max_rto);
}

void TcpSender::finish() {
  complete_ = true;
  done_time_ = stack_.simulator().now();
  if (rto_armed_) {
    stack_.simulator().cancel(rto_timer_);
    rto_armed_ = false;
  }
  stack_.unregister_tcp(ConnKey{dst_, src_port_, dst_port_});
  // The handler may destroy this sender, which would free the member
  // std::function while it executes — move it to the stack first.
  if (done_cb_) {
    const CompletionHandler cb = std::move(done_cb_);
    cb(*this);
  }
}

// -------------------------------------------------------------- receiver

TcpReceiver::TcpReceiver(HostStack& stack, core::NodeId peer,
                         net::PortNumber peer_port,
                         net::PortNumber local_port,
                         CompletionHandler on_complete, TcpConfig config)
    : stack_{stack},
      peer_{peer},
      peer_port_{peer_port},
      local_port_{local_port},
      on_complete_{std::move(on_complete)},
      cfg_{config} {
  stack_.register_tcp(ConnKey{peer_, local_port_, peer_port_}, this);
  send_control(net::TcpFlag::kSyn | net::TcpFlag::kAck, 0);
}

TcpReceiver::~TcpReceiver() {
  stack_.unregister_tcp(ConnKey{peer_, local_port_, peer_port_});
}

void TcpReceiver::send_control(net::TcpFlag flags, std::int64_t ack) {
  stack_.send_raw(make_tcp_packet(stack_.host().id(), peer_, local_port_,
                                  peer_port_, 0, ack, flags, 0));
}

void TcpReceiver::on_segment(const net::Packet& p) {
  const auto* tcp = p.tcp();
  if (tcp == nullptr) return;

  if (has_flag(tcp->flags, net::TcpFlag::kSyn)) {
    // Retransmitted SYN: our SYN-ACK was lost.
    send_control(net::TcpFlag::kSyn | net::TcpFlag::kAck, rcv_nxt_);
    return;
  }

  const sim::Bytes len = p.wire_size - net::kHeaderBytes;
  if (len <= 0) return;  // stray control segment

  if (first_rx_ == sim::SimTime::zero() && rcv_nxt_ == 0 && ooo_.empty()) {
    first_rx_ = stack_.simulator().now();
  }
  if (const auto* header = dynamic_cast<const TransferHeader*>(p.app.get())) {
    expected_total_ = header->total_bytes;
    if (header->payload) app_payload_ = header->payload;
  }

  if (complete_) {
    // Post-completion duplicate (our FIN-ACK was lost): re-acknowledge.
    send_control(net::TcpFlag::kFin | net::TcpFlag::kAck, rcv_nxt_);
    return;
  }

  merge_range(tcp->seq, tcp->seq + len);

  if (expected_total_ >= 0 && rcv_nxt_ >= expected_total_) {
    complete_ = true;
    done_time_ = stack_.simulator().now();
    send_control(net::TcpFlag::kFin | net::TcpFlag::kAck, rcv_nxt_);
    if (on_complete_) on_complete_(*this, app_payload_);
    return;
  }
  send_control(net::TcpFlag::kAck, rcv_nxt_);
}

void TcpReceiver::merge_range(std::int64_t begin, std::int64_t end) {
  if (end <= rcv_nxt_) return;  // entirely duplicate
  begin = std::max(begin, rcv_nxt_);

  // Insert [begin,end) into the out-of-order set, coalescing overlaps.
  auto it = ooo_.lower_bound(begin);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = ooo_.erase(prev);
    }
  }
  while (it != ooo_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ooo_.erase(it);
  }
  ooo_.emplace(begin, end);

  // Advance the cumulative pointer through now-contiguous ranges.
  auto head = ooo_.begin();
  while (head != ooo_.end() && head->first <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, head->second);
    head = ooo_.erase(head);
  }
}

// -------------------------------------------------------------- listener

TcpListener::TcpListener(HostStack& stack, net::PortNumber port,
                         TransferHandler on_transfer, TcpConfig config)
    : stack_{stack},
      port_{port},
      on_transfer_{std::move(on_transfer)},
      cfg_{config} {
  stack_.listen_tcp(port_,
                    [this](const net::Packet& p) { on_syn(p); });
}

void TcpListener::on_syn(const net::Packet& p) {
  const auto* tcp = p.tcp();
  if (tcp == nullptr) return;
  ++accepted_;
  receivers_.push_back(std::make_unique<TcpReceiver>(
      stack_, p.src, tcp->src_port, port_,
      [this](TcpReceiver& r,
             std::shared_ptr<const net::AppMessage> message) {
        ++completed_;
        if (on_transfer_) {
          on_transfer_(r.peer(), r.bytes_received(), std::move(message));
        }
      },
      cfg_));
}

}  // namespace intsched::transport
