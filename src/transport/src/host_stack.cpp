#include "intsched/transport/host_stack.hpp"

namespace intsched::transport {

HostStack::HostStack(net::Host& host) : host_{host} {
  host_.set_receiver([this](net::Packet&& p) { on_packet(std::move(p)); });
}

void HostStack::bind_udp(net::PortNumber port, DatagramHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void HostStack::unbind_udp(net::PortNumber port) {
  udp_handlers_.erase(port);
}

bool HostStack::send_datagram(core::NodeId dst, net::PortNumber src_port,
                              net::PortNumber dst_port, sim::Bytes size,
                              std::shared_ptr<const net::AppMessage> app) {
  net::Packet p;
  p.src = host_.id();
  p.dst = dst;
  p.protocol = net::IpProtocol::kUdp;
  p.l4 = net::UdpHeader{.src_port = src_port, .dst_port = dst_port};
  p.wire_size = size;
  p.app = std::move(app);
  return host_.send(std::move(p));
}

net::PortNumber HostStack::allocate_port() {
  // 20000..60000 wraparound; the simulator never holds 40k live
  // connections per host, so collisions cannot occur in practice.
  if (next_ephemeral_ >= 60000) next_ephemeral_ = 20000;
  return next_ephemeral_++;
}

void HostStack::register_tcp(const ConnKey& key, TcpEndpoint* endpoint) {
  tcp_conns_[key] = endpoint;
}

void HostStack::unregister_tcp(const ConnKey& key) { tcp_conns_.erase(key); }

void HostStack::listen_tcp(net::PortNumber port,
                           std::function<void(const net::Packet&)> on_syn) {
  tcp_listeners_[port] = std::move(on_syn);
}

void HostStack::on_packet(net::Packet&& p) {
  if (p.protocol == net::IpProtocol::kUdp) {
    const auto* udp = p.udp();
    if (udp == nullptr) {
      ++unroutable_;
      return;
    }
    const auto it = udp_handlers_.find(udp->dst_port);
    if (it == udp_handlers_.end()) {
      ++unroutable_;
      return;
    }
    ++udp_rx_;
    it->second(p);
    return;
  }

  const auto* tcp = p.tcp();
  if (tcp == nullptr) {
    ++unroutable_;
    return;
  }
  // Established connections first (a retransmitted SYN for an existing
  // connection must reach the endpoint, not spawn a duplicate).
  const ConnKey key{p.src, tcp->dst_port, tcp->src_port};
  const auto conn = tcp_conns_.find(key);
  if (conn != tcp_conns_.end()) {
    conn->second->on_segment(p);
    return;
  }
  if (has_flag(tcp->flags, net::TcpFlag::kSyn) &&
      !has_flag(tcp->flags, net::TcpFlag::kAck)) {
    const auto listener = tcp_listeners_.find(tcp->dst_port);
    if (listener != tcp_listeners_.end()) {
      listener->second(p);
      return;
    }
  }
  ++unroutable_;
}

}  // namespace intsched::transport
