#include "intsched/transport/iperf.hpp"

namespace intsched::transport {

IperfUdpSender::IperfUdpSender(HostStack& stack, core::NodeId dst,
                               Config config)
    : stack_{stack}, dst_{dst}, cfg_{config} {}

void IperfUdpSender::start(sim::SimDuration duration) {
  if (timer_.active()) return;
  src_port_ = stack_.allocate_port();
  const sim::SimDuration spacing =
      cfg_.rate.transmission_time(cfg_.packet_size);
  timer_ = stack_.simulator().schedule_periodic(sim::SimDuration::zero(),
                                                spacing,
                                                [this] { send_one(); });
  if (duration > sim::SimDuration::zero()) {
    stop_event_ = stack_.simulator().schedule_after(duration, [this] {
      stop_armed_ = false;
      stop();
    });
    stop_armed_ = true;
  }
}

void IperfUdpSender::stop() {
  timer_.cancel();
  if (stop_armed_) {
    stack_.simulator().cancel(stop_event_);
    stop_armed_ = false;
  }
}

void IperfUdpSender::send_one() {
  if (stack_.send_datagram(dst_, src_port_, cfg_.dst_port,
                           cfg_.packet_size)) {
    ++sent_;
    bytes_ += cfg_.packet_size;
  }
}

IperfUdpSink::IperfUdpSink(HostStack& stack, net::PortNumber port) {
  stack.bind_udp(port, [this, &stack](const net::Packet& p) {
    const sim::SimTime now = stack.simulator().now();
    if (packets_ == 0) first_ = now;
    last_ = now;
    ++packets_;
    bytes_ += p.wire_size;
  });
}

sim::DataRate IperfUdpSink::goodput() const {
  const sim::SimDuration span = last_ - first_;
  if (span <= sim::SimDuration::zero()) {
    return sim::DataRate::bits_per_second(0.0);
  }
  return sim::DataRate::bits_per_second(static_cast<double>(bytes_) * 8.0 /
                                        span.to_seconds());
}

IperfTcpSender::IperfTcpSender(HostStack& stack, core::NodeId dst,
                               sim::Bytes bytes, net::PortNumber dst_port,
                               TcpConfig config)
    : sender_{std::make_unique<TcpSender>(stack, dst, dst_port, bytes,
                                          nullptr, config)},
      bytes_{bytes} {}

void IperfTcpSender::start() { sender_->start(); }

bool IperfTcpSender::complete() const { return sender_->complete(); }

sim::SimDuration IperfTcpSender::elapsed() const {
  return sender_->completion_time() - sender_->start_time();
}

sim::DataRate IperfTcpSender::throughput() const {
  const sim::SimDuration span = elapsed();
  if (!complete() || span <= sim::SimDuration::zero()) {
    return sim::DataRate::bits_per_second(0.0);
  }
  return sim::DataRate::bits_per_second(static_cast<double>(bytes_) * 8.0 /
                                        span.to_seconds());
}

IperfTcpServer::IperfTcpServer(HostStack& stack, net::PortNumber port)
    : listener_{std::make_unique<TcpListener>(
          stack, port,
          [](core::NodeId, sim::Bytes,
             std::shared_ptr<const net::AppMessage>) {})} {}

}  // namespace intsched::transport
