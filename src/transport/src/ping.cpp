#include "intsched/transport/ping.hpp"

namespace intsched::transport {

PingResponder::PingResponder(HostStack& stack) {
  stack.bind_udp(net::kPingPort, [this, &stack](const net::Packet& p) {
    const auto* udp = p.udp();
    if (udp == nullptr) return;
    // Reflect the echo payload back to the sender's source port.
    stack.send_datagram(p.src, net::kPingPort, udp->src_port, p.wire_size,
                        p.app);
    ++replies_;
  });
}

PingApp::PingApp(HostStack& stack, core::NodeId dst, Config config)
    : stack_{stack}, dst_{dst}, cfg_{config} {
  src_port_ = stack_.allocate_port();
  stack_.bind_udp(src_port_, [this](const net::Packet& p) {
    const auto* echo = dynamic_cast<const EchoMessage*>(p.app.get());
    if (echo == nullptr) return;
    ++received_;
    // intsched-lint: allow(raw-unit): stats accumulator, fractional ms
    const double rtt_ms =
        (stack_.simulator().now() - echo->sent_at).to_milliseconds();
    rtt_ms_.add(rtt_ms);
    samples_ms_.push_back(rtt_ms);
  });
}

void PingApp::start() {
  if (timer_.active()) return;
  timer_ = stack_.simulator().schedule_periodic(
      sim::SimDuration::zero(), cfg_.interval, [this] { send_request(); });
}

void PingApp::stop() { timer_.cancel(); }

void PingApp::send_request() {
  auto echo = std::make_shared<EchoMessage>();
  echo->sequence = sent_;
  echo->sent_at = stack_.simulator().now();
  if (stack_.send_datagram(dst_, src_port_, net::kPingPort, cfg_.packet_size,
                           std::move(echo))) {
    ++sent_;
  }
}

}  // namespace intsched::transport
