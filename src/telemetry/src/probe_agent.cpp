#include "intsched/telemetry/probe_agent.hpp"

#include "intsched/net/fault.hpp"

namespace intsched::telemetry {

ProbeAgent::ProbeAgent(net::Host& host, core::NodeId collector,
                       ProbeConfig config)
    : host_{host}, collector_{collector}, config_{config} {}

void ProbeAgent::start() {
  if (timer_.active()) return;
  timer_ = host_.simulator().schedule_periodic(
      config_.start_offset, config_.interval, [this] { send_probe(); });
}

void ProbeAgent::stop() {
  timer_.cancel();
  for (const sim::EventId id : delayed_probes_) {
    host_.simulator().cancel(id);
  }
  delayed_probes_.clear();
}

void ProbeAgent::set_interval(sim::SimDuration interval) {
  config_.interval = interval;
  if (timer_.active()) {
    stop();
    start();
  }
}

void ProbeAgent::send_probe() {
  net::FaultPlan* faults = config_.faults;
  if (faults == nullptr) {
    emit_probe();
    return;
  }
  if (faults->should_drop_probe()) {
    ++suppressed_;
    return;
  }
  const bool duplicate = faults->should_duplicate_probe();
  if (const auto delay = faults->probe_delay()) {
    delayed_probes_.push_back(host_.simulator().schedule_after(
        *delay, [this, duplicate] {
          emit_probe();
          if (duplicate) emit_probe();
        }));
    return;
  }
  emit_probe();
  if (duplicate) emit_probe();
}

void ProbeAgent::emit_probe() {
  net::Packet p;
  p.src = host_.id();
  p.dst = collector_;
  p.protocol = net::IpProtocol::kUdp;
  p.l4 = net::UdpHeader{.src_port = net::kProbePort,
                        .dst_port = net::kProbePort};
  p.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  p.source_route = config_.waypoints;
  p.wire_size = config_.base_size;
  // Host-side departure stamp so the access link's latency is measurable
  // by the first switch's ingress stage.
  p.last_egress_timestamp = host_.local_time();
  if (host_.send(std::move(p))) {
    ++sent_;
    bytes_sent_ += config_.base_size;
  }
}

}  // namespace intsched::telemetry
