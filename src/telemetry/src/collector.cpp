#include "intsched/telemetry/collector.hpp"

#include "intsched/sim/audit.hpp"

namespace intsched::telemetry {

bool IntCollector::handle_packet(const net::Packet& p) {
  if (!p.is_int_probe()) return false;
  if (p.dst != host_.id()) {
    ++malformed_;
    return false;
  }

  ProbeReport report;
  report.src = p.src;
  report.dst = p.dst;
  report.arrival = host_.local_time();
  report.entries = p.int_stack;

  // Entries must form a chain: entry i's device forwarded to entry i+1's
  // device. A probe that somehow carries no entries (e.g. a directly
  // attached host with no switch in between) is still valid but useless.
  for (std::size_t i = 1; i < report.entries.size(); ++i) {
    if (report.entries[i].device == report.entries[i - 1].device) {
      ++malformed_;
      return false;
    }
  }

  if (p.last_egress_timestamp >= sim::SimTime::zero()) {
    report.final_link_latency =
        host_.local_time() - p.last_egress_timestamp;
  }

  ++received_;
  entries_ += static_cast<std::int64_t>(report.entries.size());

#if INTSCHED_AUDIT_ENABLED
  // INT-stack hop-order sanity: every report handed to the subscriber
  // satisfies the traversal-order contract the NetworkMap builds on. The
  // depth bound comes from the packet TTL: each switch decrements the TTL
  // once per entry it appends, so a longer stack means a forwarding bug.
  INTSCHED_AUDIT_ASSERT(report.entries.size() <= 64,
                        "INT stack deeper than the TTL allows");
  for (std::size_t i = 1; i < report.entries.size(); ++i) {
    INTSCHED_AUDIT_ASSERT(
        report.entries[i].device != report.entries[i - 1].device,
        "INT stack has adjacent duplicate devices past the malformed "
        "filter");
  }
#endif

  if (handler_) handler_(report);
  return true;
}

}  // namespace intsched::telemetry
