#include "intsched/telemetry/collector.hpp"

namespace intsched::telemetry {

bool IntCollector::handle_packet(const net::Packet& p) {
  if (!p.is_int_probe()) return false;
  if (p.dst != host_.id()) {
    ++malformed_;
    return false;
  }

  ProbeReport report;
  report.src = p.src;
  report.dst = p.dst;
  report.arrival = host_.local_time();
  report.entries = p.int_stack;

  // Entries must form a chain: entry i's device forwarded to entry i+1's
  // device. A probe that somehow carries no entries (e.g. a directly
  // attached host with no switch in between) is still valid but useless.
  for (std::size_t i = 1; i < report.entries.size(); ++i) {
    if (report.entries[i].device == report.entries[i - 1].device) {
      ++malformed_;
      return false;
    }
  }

  if (p.last_egress_timestamp >= sim::SimTime::zero()) {
    report.final_link_latency =
        host_.local_time() - p.last_egress_timestamp;
  }

  ++received_;
  entries_ += static_cast<std::int64_t>(report.entries.size());
  if (handler_) handler_(report);
  return true;
}

}  // namespace intsched::telemetry
