#include "intsched/telemetry/int_program.hpp"

namespace intsched::telemetry {

void IntTelemetryProgram::on_attach(p4::P4Switch& device) {
  const auto ports = static_cast<std::int64_t>(device.port_count());
  port_max_queue_ = &device.register_array(kMaxQueuePortRegister, ports);
  device_max_queue_ = &device.register_array(kMaxQueueDeviceRegister, 1);
  device_sum_queue_ = &device.register_array(kSumQueueDeviceRegister, 1);
  device_cnt_queue_ = &device.register_array(kCntQueueDeviceRegister, 1);
  device_max_hop_latency_ =
      &device.register_array(kMaxHopLatencyRegister, 1);

  // Per-packet register update, at enqueue granularity: exactly the
  // "measure queue length when a packet is processed and save it if larger
  // than all values observed within a probing interval" step.
  for (std::int32_t i = 0; i < device.port_count(); ++i) {
    device.port(i).queue().set_occupancy_observer(
        [this, i](std::int64_t occupancy) {
          port_max_queue_->update_max(i, occupancy);
          device_max_queue_->update_max(0, occupancy);
          device_sum_queue_->write(0, device_sum_queue_->read(0) + occupancy);
          device_cnt_queue_->write(0, device_cnt_queue_->read(0) + 1);
        });
  }
}

void IntTelemetryProgram::parse(p4::PipelineContext& ctx) {
  // Probe packets must be UDP towards the probe port; anything else with
  // the probe Geneve option is malformed and dropped by the parser.
  if (!ctx.packet.is_int_probe()) return;
  const auto* udp = ctx.packet.udp();
  if (udp == nullptr || udp->dst_port != net::kProbePort) ctx.drop = true;
}

void IntTelemetryProgram::ingress(p4::PipelineContext& ctx) {
  // Probe-route optimization (paper future work): loose source routing.
  // Consume any waypoint(s) naming this device, then steer toward the
  // next waypoint instead of the final destination.
  auto& route = ctx.packet.source_route;
  if (ctx.packet.is_int_probe() && !route.empty()) {
    while (!route.empty() && route.front() == ctx.device.id()) {
      route.erase(route.begin());
    }
  }
  if (ctx.packet.is_int_probe() && !route.empty()) {
    forward_toward(ctx, route.front());
  } else {
    ForwardingProgram::ingress(ctx);
  }
  if (ctx.drop) return;
  // standard_metadata.ingress_global_timestamp, for the hop-latency
  // measurement at the egress stage (every packet, not just probes).
  ctx.packet.meta_ingress_timestamp = ctx.now;
  if (!ctx.packet.is_int_probe()) return;
  // Link-latency measurement: extract the upstream egress timestamp before
  // the packet is enqueued, so queueing here never pollutes the sample.
  if (ctx.packet.last_egress_timestamp >= sim::SimTime::zero()) {
    ctx.packet.meta_link_latency =
        ctx.now - ctx.packet.last_egress_timestamp;
  }
}

void IntTelemetryProgram::egress(p4::PipelineContext& ctx) {
  // Direct hop-latency measurement on every packet: dwell time between
  // the ingress stage and leaving the egress queue.
  if (ctx.packet.meta_ingress_timestamp >= sim::SimTime::zero()) {
    device_max_hop_latency_->update_max(
        0, (ctx.now - ctx.packet.meta_ingress_timestamp).ns());
  }
  if (!ctx.packet.is_int_probe()) return;
  net::IntStackEntry entry;
  entry.device = ctx.device.id();
  entry.ingress_port = ctx.ingress_port;
  entry.egress_port = ctx.egress_port;
  entry.max_queue_pkts = port_max_queue_->collect(ctx.egress_port);
  entry.device_max_queue_pkts = device_max_queue_->collect(0);
  const std::int64_t sum = device_sum_queue_->collect(0);
  const std::int64_t cnt = device_cnt_queue_->collect(0);
  entry.device_avg_queue_x100 = cnt > 0 ? sum * 100 / cnt : 0;
  entry.max_hop_latency =
      sim::SimDuration::nanos(device_max_hop_latency_->collect(0));
  entry.ingress_link_latency = ctx.packet.meta_link_latency;
  entry.egress_timestamp = ctx.now;
  ctx.packet.int_stack.push_back(entry);
  ctx.packet.wire_size += net::kIntStackEntryWireBytes;
}

void IntTelemetryProgram::deparse(p4::PipelineContext& ctx) {
  if (!ctx.packet.is_int_probe()) return;
  ctx.packet.last_egress_timestamp = ctx.now;
}

void EmbeddingIntProgram::egress(p4::PipelineContext& ctx) {
  // Telemetry on *every* packet: the classic INT deployment model.
  net::IntStackEntry entry;
  entry.device = ctx.device.id();
  entry.ingress_port = ctx.ingress_port;
  entry.egress_port = ctx.egress_port;
  entry.max_queue_pkts =
      ctx.device.port(ctx.egress_port).queue().size_pkts();
  entry.device_max_queue_pkts = entry.max_queue_pkts;
  entry.egress_timestamp = ctx.now;
  ctx.packet.int_stack.push_back(entry);
  ctx.packet.wire_size += net::kIntStackEntryWireBytes;
  telemetry_bytes_ += net::kIntStackEntryWireBytes;
}

}  // namespace intsched::telemetry
