#include "intsched/telemetry/report_batcher.hpp"

#include <stdexcept>
#include <utility>

namespace intsched::telemetry {

ReportBatcher::ReportBatcher(BatchHandler handler, std::size_t max_batch)
    : handler_{std::move(handler)}, max_batch_{max_batch} {
  if (!handler_) {
    throw std::invalid_argument("ReportBatcher: null batch handler");
  }
  if (max_batch_ == 0) {
    throw std::invalid_argument("ReportBatcher: max_batch must be >= 1");
  }
  buffer_.reserve(max_batch_);
}

void ReportBatcher::add(const ProbeReport& report) {
  buffer_.push_back(report);
  ++reports_;
  if (buffer_.size() >= max_batch_) flush();
}

void ReportBatcher::flush() {
  if (buffer_.empty()) return;
  ++batches_;
  handler_(buffer_);
  buffer_.clear();
}

}  // namespace intsched::telemetry
