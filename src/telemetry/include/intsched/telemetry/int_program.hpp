#pragma once

#include <string>

#include "intsched/p4/program.hpp"
#include "intsched/p4/register_array.hpp"
#include "intsched/p4/switch.hpp"

namespace intsched::telemetry {

/// Names of the register arrays the INT program allocates on each switch.
inline constexpr const char* kMaxQueuePortRegister = "int_max_queue_port";
inline constexpr const char* kMaxQueueDeviceRegister = "int_max_queue_device";
inline constexpr const char* kSumQueueDeviceRegister = "int_sum_queue_device";
inline constexpr const char* kCntQueueDeviceRegister = "int_cnt_queue_device";
inline constexpr const char* kMaxHopLatencyRegister = "int_max_hop_latency";

/// The paper's INT data-plane program (§III-A, Fig. 2):
///
///  * On every packet enqueue, the egress queue occupancy is folded into a
///    per-port max register and a device-wide max register ("we create one
///    register for each INT parameter and update its value as new packets
///    are observed").
///  * Probe packets (UDP + Geneve option) additionally collect-and-reset
///    those registers into an INT stack entry appended at the egress stage,
///    growing the probe's wire size per hop.
///  * The ingress stage extracts the upstream device's egress timestamp —
///    before the packet is queued — so the measured difference is pure link
///    latency (transmission + propagation, no queueing).
///  * The deparser stamps the device-local egress time into the probe for
///    the next hop's measurement.
///
/// Production packets are forwarded unmodified: zero telemetry bytes on the
/// data path, which is the paper's key overhead argument.
class IntTelemetryProgram : public p4::ForwardingProgram {
 public:
  void on_attach(p4::P4Switch& device) override;
  void parse(p4::PipelineContext& ctx) override;
  void ingress(p4::PipelineContext& ctx) override;
  void egress(p4::PipelineContext& ctx) override;
  void deparse(p4::PipelineContext& ctx) override;

 private:
  p4::RegisterArray* port_max_queue_ = nullptr;
  p4::RegisterArray* device_max_queue_ = nullptr;
  // Sum/count registers backing the average-occupancy statistic the paper
  // evaluated and rejected (kept for the ablation).
  p4::RegisterArray* device_sum_queue_ = nullptr;
  p4::RegisterArray* device_cnt_queue_ = nullptr;
  // Direct hop-latency measurement (ns), for the measured-vs-k ablation.
  p4::RegisterArray* device_max_hop_latency_ = nullptr;
};

/// The collection scheme the paper argues *against* (§III-A): every
/// production packet carries its own INT stack, growing by one entry per
/// traversed device. No registers, no probes — and measurable per-packet
/// byte overhead, which ablation_int_overhead quantifies against the
/// register+probe design.
class EmbeddingIntProgram : public p4::ForwardingProgram {
 public:
  void egress(p4::PipelineContext& ctx) override;

  [[nodiscard]] sim::Bytes telemetry_bytes_added() const {
    return telemetry_bytes_;
  }

 private:
  sim::Bytes telemetry_bytes_ = 0;
};

}  // namespace intsched::telemetry
