#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "intsched/telemetry/collector.hpp"

namespace intsched::telemetry {

/// Collector-side probe-burst coalescer. INT probes arrive as a burst once
/// per probing interval (every agent fires on the same cadence), but the
/// IntCollector hands reports over one at a time; feeding each one to a
/// concurrent map means one writer critical section — and, on the snapshot
/// read path, one full snapshot publication — per probe. ReportBatcher
/// sits between the collector and the map: it buffers reports and emits
/// them as one batch, sized for ConcurrentNetworkMap::ingest_batch, so a
/// burst of N probes costs one publish instead of N.
///
/// Flush policy: automatically when the buffer reaches `max_batch`
/// reports, and explicitly via flush() — callers flush at the probing
/// interval boundary (or on telemetry-loss timeout) so a partial burst
/// never lingers. Reports are emitted in arrival order; batching is pure
/// plumbing and must not reorder or drop anything.
///
/// Threading: thread-confined like the IntCollector that feeds it (the
/// simulator is single-threaded by contract); only the batch handler's
/// target (e.g. ConcurrentNetworkMap) is thread-safe.
class ReportBatcher {
 public:
  using BatchHandler = std::function<void(const std::vector<ProbeReport>&)>;

  explicit ReportBatcher(BatchHandler handler, std::size_t max_batch = 32);

  /// Buffers one report; flushes the batch when it reaches max_batch.
  void add(const ProbeReport& report);

  /// Emits buffered reports (no-op when empty). Call at the probing
  /// interval boundary.
  void flush();

  [[nodiscard]] std::size_t pending() const { return buffer_.size(); }
  [[nodiscard]] std::size_t max_batch() const { return max_batch_; }
  [[nodiscard]] std::int64_t reports_batched() const { return reports_; }
  [[nodiscard]] std::int64_t batches_emitted() const { return batches_; }

 private:
  BatchHandler handler_;
  std::size_t max_batch_;
  std::vector<ProbeReport> buffer_;
  std::int64_t reports_ = 0;
  std::int64_t batches_ = 0;
};

}  // namespace intsched::telemetry
