#pragma once

#include <cstdint>
#include <vector>

#include "intsched/net/node.hpp"
#include "intsched/sim/simulator.hpp"
#include "intsched/sim/units.hpp"

namespace intsched::net {
class FaultPlan;
}

namespace intsched::telemetry {

struct ProbeConfig {
  /// Paper default: a probe from every edge server each 100 ms.
  sim::SimDuration interval = sim::SimDuration::millis(100);
  /// First probe fires after this offset; stagger agents so the collector
  /// is not hit by synchronized bursts.
  sim::SimDuration start_offset = sim::SimDuration::zero();
  /// Paper sizes probes at ~1.5 KB (10 pkt/s * 1.5 KB = 120 Kbps per
  /// server). The INT stack grows this by 32 B per hop on top.
  sim::Bytes base_size = 1400;
  /// Loose source route: switches to visit (in order) before reaching the
  /// collector — the paper's probe-route-optimization future work. Empty
  /// = shortest path, the paper's default behaviour.
  std::vector<core::NodeId> waypoints;
  /// Fault-injection opt-in: when set, every probe consults the plan for
  /// drop/delay/duplicate decisions before entering the network. Null (the
  /// default) skips all fault checks — the seed's zero-cost behaviour.
  net::FaultPlan* faults = nullptr;
};

/// Emits INT probe packets from an edge server toward the scheduler. The
/// host's NIC stamps the departure time (last_egress_timestamp) so the
/// first switch can measure the access-link latency too.
class ProbeAgent {
 public:
  ProbeAgent(net::Host& host, core::NodeId collector, ProbeConfig config = {});
  ~ProbeAgent() { stop(); }
  ProbeAgent(const ProbeAgent&) = delete;
  ProbeAgent& operator=(const ProbeAgent&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return timer_.active(); }

  void set_interval(sim::SimDuration interval);
  [[nodiscard]] sim::SimDuration interval() const { return config_.interval; }

  [[nodiscard]] std::int64_t probes_sent() const { return sent_; }
  [[nodiscard]] sim::Bytes bytes_sent() const { return bytes_sent_; }
  /// Probes the fault plan suppressed before transmission.
  [[nodiscard]] std::int64_t probes_suppressed() const { return suppressed_; }

  /// Sends one probe immediately (also used by the periodic timer), after
  /// consulting the fault plan when one is configured.
  void send_probe();

 private:
  /// Builds and transmits one probe packet (post fault decisions).
  void emit_probe();

  net::Host& host_;
  core::NodeId collector_;
  ProbeConfig config_;
  sim::PeriodicHandle timer_;
  std::vector<sim::EventId> delayed_probes_;
  std::int64_t sent_ = 0;
  std::int64_t suppressed_ = 0;
  sim::Bytes bytes_sent_ = 0;
};

}  // namespace intsched::telemetry
