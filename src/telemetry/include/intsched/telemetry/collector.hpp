#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "intsched/net/node.hpp"
#include "intsched/net/packet.hpp"

namespace intsched::telemetry {

/// One parsed probe packet, in scheduler-side terms. Entries are in
/// traversal order — the property the network-mapping step relies on.
struct ProbeReport {
  core::NodeId src = core::kInvalidNode;  ///< probing edge server
  core::NodeId dst = core::kInvalidNode;  ///< the collector host
  sim::SimTime arrival = sim::SimTime::zero();
  std::vector<net::IntStackEntry> entries;
  /// Latency of the final hop (last switch -> collector host), measured by
  /// the collector from the last switch's egress timestamp.
  sim::SimDuration final_link_latency = sim::SimDuration::nanos(-1);
};

/// Scheduler-side INT termination point: validates and parses probe
/// packets into ProbeReports and hands them to a subscriber (the network
/// map). Dropping malformed probes here mirrors an INT sink's behaviour.
class IntCollector {
 public:
  using ReportHandler = std::function<void(const ProbeReport&)>;

  explicit IntCollector(net::Host& host) : host_{host} {}

  void set_handler(ReportHandler handler) { handler_ = std::move(handler); }

  /// Feeds one arriving packet. Non-probe packets are ignored (returns
  /// false); malformed probes count as errors.
  bool handle_packet(const net::Packet& p);

  [[nodiscard]] std::int64_t probes_received() const { return received_; }
  [[nodiscard]] std::int64_t entries_parsed() const { return entries_; }
  [[nodiscard]] std::int64_t malformed() const { return malformed_; }

 private:
  net::Host& host_;
  ReportHandler handler_;
  std::int64_t received_ = 0;
  std::int64_t entries_ = 0;
  std::int64_t malformed_ = 0;
};

}  // namespace intsched::telemetry
