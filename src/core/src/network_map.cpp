#include "intsched/core/network_map.hpp"

#include <algorithm>
#include <limits>

#include "intsched/sim/audit.hpp"

namespace intsched::core {

sim::SimTime NetworkMap::window_cutoff(sim::SimTime now,
                                       sim::SimDuration window) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const std::int64_t n = now.ns();
  const std::int64_t w = window.ns();
  // n - w would underflow when w > n - kMin; saturate to "everything is
  // fresh" instead. Windows are non-negative, so overflow upward is
  // impossible.
  if (w > 0 && n < kMin + w) return sim::SimTime::nanoseconds(kMin);
  return sim::SimTime::nanoseconds(n - w);
}

void NetworkMap::learn_link(core::NodeId from, core::NodeId to,
                            std::int32_t out_port,
                            sim::SimDuration delay_sample, sim::SimTime now) {
  const LinkKey key{from, to};
  const auto known = link_delay_.find(key);
  const bool have_sample = delay_sample >= sim::SimDuration::zero();

  if (known == link_delay_.end()) {
    link_delay_.emplace(
        key, DelayEstimate{
                 have_sample ? delay_sample : cfg_.default_link_delay,
                 sim::SimDuration::zero(), now, have_sample});
    if (out_port >= 0) link_port_[key] = out_port;
    // New edge: extend the inferred graph. Edge cost is refreshed at
    // query time via delay_graph(); the stored cost is the first estimate.
    graph_.add_edge(from, to, out_port,
                    have_sample ? delay_sample : cfg_.default_link_delay);
    return;
  }

  if (out_port >= 0) link_port_[key] = out_port;
  if (have_sample) {
    DelayEstimate& est = known->second;
    est.measured_at = std::max(est.measured_at, now);
    if (!est.measured) {
      est.value = delay_sample;
      est.jitter = sim::SimDuration::zero();
      est.measured = true;
      return;
    }
    const double alpha = cfg_.link_delay_alpha;
    const auto deviation = delay_sample > est.value
                               ? delay_sample - est.value
                               : est.value - delay_sample;
    est.jitter = sim::SimDuration::nanos(static_cast<std::int64_t>(
        alpha * static_cast<double>(deviation.ns()) +
        (1.0 - alpha) * static_cast<double>(est.jitter.ns())));
    const double blended =
        alpha * static_cast<double>(delay_sample.ns()) +
        (1.0 - alpha) * static_cast<double>(est.value.ns());
    est.value = sim::SimDuration::nanos(static_cast<std::int64_t>(blended));
  }
}

void NetworkMap::record_queue(QueueSeries& series, sim::SimTime now,
                              std::int64_t value) {
  // The series is a monotonic max-deque: times ascend, values strictly
  // descend, and every entry is the window max from its own timestamp
  // until the next entry's. max_in_window is then a front read instead of
  // a full scan; the invariant is maintained here, at ingest.
  auto& d = series.samples;
  const sim::SimTime cutoff = window_cutoff(now, cfg_.queue_window);
  while (!d.empty() && d.front().first < cutoff) d.pop_front();

  // Ingest accepts late stragglers, so find the time-ordered insertion
  // point from the back (O(1) for in-order arrivals).
  std::size_t insert_at = d.size();
  while (insert_at > 0 && d[insert_at - 1].first > now) --insert_at;
  // Entries at/after the insertion point are newer, and the first of them
  // carries their largest value; if it already dominates the new sample
  // (newer and at least as large), the sample can never be a window max.
  if (insert_at < d.size() && d[insert_at].second >= value) return;
  // Conversely, older entries no larger than the new sample expire first
  // while never exceeding it — drop them.
  std::size_t keep = insert_at;
  while (keep > 0 && d[keep - 1].second <= value) --keep;
  d.erase(d.begin() + static_cast<std::ptrdiff_t>(keep),
          d.begin() + static_cast<std::ptrdiff_t>(insert_at));
  d.insert(d.begin() + static_cast<std::ptrdiff_t>(keep), {now, value});
}

std::int64_t NetworkMap::max_in_window(const QueueSeries& series,
                                       sim::SimTime cutoff) {
  // Values descend front-to-back, so the first fresh entry is the max.
  // Expired fronts are skipped (not popped — this path must stay const
  // for arbitrary query times) and reclaimed at the next ingest.
  for (const auto& [t, v] : series.samples) {
    if (t >= cutoff) return v;
  }
  return 0;
}

void NetworkMap::record_entry_telemetry(const net::IntStackEntry& e,
                                        sim::SimTime now) {
  // Congestion state. Register values are occupancy counts; negative
  // values can only come from corruption, clamp so the max logic and
  // bandwidth estimator never see them.
  record_queue(port_queue_[PortKey{e.device, e.egress_port}], now,
               std::max<std::int64_t>(0, e.max_queue_pkts));
  record_queue(device_queue_[e.device], now,
               std::max<std::int64_t>(0, e.device_max_queue_pkts));
  record_queue(device_avg_queue_[e.device], now,
               std::max<std::int64_t>(0, e.device_avg_queue_x100));
  record_queue(device_hop_latency_[e.device], now,
               std::max<std::int64_t>(0, e.max_hop_latency.ns()));
}

void NetworkMap::finish_ingest(sim::SimTime now) {
  ++reports_;
#if INTSCHED_AUDIT_ENABLED
  audit_ingest_hw_ = std::max(audit_ingest_hw_, now);
  // Amortized schedule (see audit_invariants' docs): every report while
  // the map is Fig.-4 sized, every kAuditSparsePeriod-th beyond that, so
  // the audit preset stays usable on TopologyGen-scale maps.
  if (static_cast<std::int64_t>(link_delay_.size()) <=
          kAuditFullWalkMaxLinks ||
      reports_ % kAuditSparsePeriod == 0) {
    audit_invariants(audit_ingest_hw_);
  }
#else
  (void)now;
#endif
}

void NetworkMap::ingest(const telemetry::ProbeReport& report,
                        sim::SimTime now) {
  const auto& entries = report.entries;

  // Track the previous *accepted* entry so a rejected one in the middle of
  // the stack does not fabricate an edge across the gap from a bogus id.
  core::NodeId upstream = report.src;
  std::int32_t upstream_port = 0;

  for (const auto& e : entries) {
    // Sanity: a damaged stack entry (truncated / corrupted probe) must not
    // poison the topology with an invalid node. Skip it but keep the rest.
    if (!e.device.valid()) {
      note_rejected_entry();
      continue;
    }

    // Adjacency + link delay. Entry i's ingress link comes from the
    // previous device in the stack (or the probing host for i == 0).
    learn_link(upstream, e.device, upstream_port, e.ingress_link_latency,
               now);
    // The reverse direction's egress port is this entry's ingress port;
    // delay is assumed symmetric but we do not overwrite a measured value
    // with the sample (pass no sample).
    learn_link(e.device, upstream, e.ingress_port,
               sim::SimDuration::nanos(-1), now);

    record_entry_telemetry(e, now);

    upstream = e.device;
    upstream_port = e.egress_port;
  }

  // Final hop: last accepted switch -> collector host.
  if (upstream != report.src) {
    learn_link(upstream, report.dst, upstream_port,
               report.final_link_latency, now);
    learn_link(report.dst, upstream, 0, sim::SimDuration::nanos(-1), now);
  }

  finish_ingest(now);
}

#if INTSCHED_AUDIT_ENABLED
void NetworkMap::audit_invariants(sim::SimTime high_water) const {
  // Order-insensitive walk: every check is per-entry, so hash order is
  // immaterial here. intsched-lint: allow(unordered-iter)
  for (const auto& [key, est] : link_delay_) {
    INTSCHED_AUDIT_ASSERT(
        key.from != core::kInvalidNode && key.to != core::kInvalidNode,
        "NetworkMap learned a link with an invalid endpoint");
    INTSCHED_AUDIT_ASSERT(key.from != key.to,
                          "NetworkMap learned a self-loop link");
    INTSCHED_AUDIT_ASSERT(
        graph_.has_node(key.from) && graph_.has_node(key.to),
        "link_delay_ references a node missing from the inferred graph");
    INTSCHED_AUDIT_ASSERT(
        !est.measured || est.measured_at <= high_water,
        "link freshness stamp postdates every ingest seen");
    INTSCHED_AUDIT_ASSERT(est.jitter >= sim::SimDuration::zero(),
                          "negative jitter estimate");
  }
  // intsched-lint: allow(unordered-iter)
  for (const auto& [key, port] : link_port_) {
    INTSCHED_AUDIT_ASSERT(port >= 0, "learned egress port is negative");
    INTSCHED_AUDIT_ASSERT(
        link_delay_.contains(key),
        "link_port_ entry without a matching delay estimate");
  }
  // Each series is a monotonic max-deque (see record_queue): times must
  // ascend, values strictly descend, no sample postdates the newest
  // ingest, and values are sane.
  const auto audit_series = [high_water](const QueueSeries& series) {
    for (std::size_t i = 0; i < series.samples.size(); ++i) {
      const auto& [t, v] = series.samples[i];
      INTSCHED_AUDIT_ASSERT(
          t <= high_water,
          "telemetry sample postdates every ingest seen");
      INTSCHED_AUDIT_ASSERT(v >= 0, "negative queue-occupancy sample");
      if (i > 0) {
        INTSCHED_AUDIT_ASSERT(series.samples[i - 1].first <= t,
                              "max-deque times must be non-decreasing");
        INTSCHED_AUDIT_ASSERT(series.samples[i - 1].second > v,
                              "max-deque values must strictly decrease");
      }
    }
  };
  // intsched-lint: allow(unordered-iter)
  for (const auto& [key, series] : port_queue_) audit_series(series);
  // intsched-lint: allow(unordered-iter)
  for (const auto& [key, series] : device_queue_) audit_series(series);
  // intsched-lint: allow(unordered-iter)
  for (const auto& [key, series] : device_avg_queue_) audit_series(series);
  // intsched-lint: allow(unordered-iter)
  for (const auto& [key, series] : device_hop_latency_) audit_series(series);
}
#endif

bool NetworkMap::link_stale(core::NodeId from, core::NodeId to,
                            sim::SimTime now) const {
  if (cfg_.link_staleness <= sim::SimDuration::zero()) return false;
  const sim::SimTime cutoff = window_cutoff(now, cfg_.link_staleness);
  const auto it = link_delay_.find(LinkKey{from, to});
  if (it != link_delay_.end() && it->second.measured) {
    return it->second.measured_at < cutoff;
  }
  const auto rev = link_delay_.find(LinkKey{to, from});
  if (rev != link_delay_.end() && rev->second.measured) {
    return rev->second.measured_at < cutoff;
  }
  return true;  // never measured in either direction
}

bool NetworkMap::path_stale(const std::vector<core::NodeId>& path,
                            sim::SimTime now) const {
  if (cfg_.link_staleness <= sim::SimDuration::zero()) return false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (link_stale(path[i - 1], path[i], now)) return true;
  }
  return false;
}

sim::SimDuration NetworkMap::link_jitter(core::NodeId from,
                                     core::NodeId to) const {
  const auto it = link_delay_.find(LinkKey{from, to});
  if (it != link_delay_.end() && it->second.measured) {
    return it->second.jitter;
  }
  const auto rev = link_delay_.find(LinkKey{to, from});
  if (rev != link_delay_.end() && rev->second.measured) {
    return rev->second.jitter;
  }
  return sim::SimDuration::zero();
}

net::Graph NetworkMap::delay_graph() const {
  // The snapshot feeds Dijkstra and, through it, candidate rankings.
  // Materialize the hash-map keys and sort so the emitted adjacency lists
  // are identical across rehashes and insertion histories — hash order
  // must never reach ranking or report output.
  std::vector<LinkKey> keys;
  keys.reserve(link_delay_.size());
  // intsched-lint: allow(unordered-iter)
  for (const auto& [key, _] : link_delay_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const LinkKey& a, const LinkKey& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  net::Graph g;
  for (const LinkKey& key : keys) {
    const auto port = link_port_.find(key);
    g.add_edge(key.from, key.to,
               port == link_port_.end() ? -1 : port->second,
               link_delay(key.from, key.to));
  }
  return g;
}

sim::SimDuration NetworkMap::link_delay(core::NodeId from, core::NodeId to) const {
  const auto it = link_delay_.find(LinkKey{from, to});
  if (it != link_delay_.end() && it->second.measured) return it->second.value;
  // Never measured in this direction: assume symmetry with the reverse.
  const auto rev = link_delay_.find(LinkKey{to, from});
  if (rev != link_delay_.end() && rev->second.measured) {
    return rev->second.value;
  }
  if (it != link_delay_.end()) return it->second.value;
  if (rev != link_delay_.end()) return rev->second.value;
  return cfg_.default_link_delay;
}

std::int32_t NetworkMap::egress_port(core::NodeId from, core::NodeId to) const {
  const auto it = link_port_.find(LinkKey{from, to});
  return it == link_port_.end() ? -1 : it->second;
}

std::int64_t NetworkMap::device_max_queue(core::NodeId device,
                                          sim::SimTime now) const {
  const auto it = device_queue_.find(device);
  if (it == device_queue_.end()) return 0;
  return max_in_window(it->second, window_cutoff(now, cfg_.queue_window));
}

double NetworkMap::device_avg_queue(core::NodeId device,
                                    sim::SimTime now) const {
  const auto it = device_avg_queue_.find(device);
  if (it == device_avg_queue_.end()) return 0.0;
  return static_cast<double>(
             max_in_window(it->second, window_cutoff(now, cfg_.queue_window))) /
         100.0;
}

sim::SimDuration NetworkMap::device_hop_latency(core::NodeId device,
                                                sim::SimTime now) const {
  const auto it = device_hop_latency_.find(device);
  if (it == device_hop_latency_.end()) return sim::SimDuration::zero();
  return sim::SimDuration::nanos(
      max_in_window(it->second, window_cutoff(now, cfg_.queue_window)));
}

std::optional<std::int64_t> NetworkMap::fresh_port_max_queue(
    core::NodeId device, std::int32_t port, sim::SimTime now) const {
  const sim::SimTime cutoff = window_cutoff(now, cfg_.queue_window);
  const auto q = port_queue_.find(PortKey{device, port});
  if (q == port_queue_.end() || q->second.samples.empty() ||
      q->second.samples.back().first < cutoff) {
    return std::nullopt;
  }
  return max_in_window(q->second, cutoff);
}

std::int64_t NetworkMap::link_max_queue(core::NodeId from, core::NodeId to,
                                        sim::SimTime now) const {
  const auto port_it = link_port_.find(LinkKey{from, to});
  if (port_it != link_port_.end()) {
    if (const auto q = fresh_port_max_queue(from, port_it->second, now)) {
      return *q;
    }
  }
  // Port never probed (or stale): fall back to the device-wide register,
  // a conservative over-approximation.
  return device_max_queue(from, now);
}

}  // namespace intsched::core
