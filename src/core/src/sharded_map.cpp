#include "intsched/core/sharded_map.hpp"

#include <algorithm>
#include <cassert>

namespace intsched::core {

RegionAssignment RegionAssignment::from_topology(
    const net::GenTopology& topo) {
  std::vector<core::RegionId> by_node;
  by_node.reserve(topo.nodes.size());
  for (const net::GenNode& node : topo.nodes) {
    by_node.push_back(node.region);
  }
  return RegionAssignment{std::move(by_node), topo.regions};
}

// ---------------------------------------------------------------------------
// MetroView

MetroView::MetroView(
    std::shared_ptr<const RegionAssignment> regions,
    std::vector<std::shared_ptr<const RankSnapshot>> region_snaps,
    std::shared_ptr<const NetworkMap> summary_map,
    std::vector<std::vector<core::NodeId>> borders_by_region,
    RankerConfig config, Epoch epoch)
    : regions_{std::move(regions)},
      region_snaps_{std::move(region_snaps)},
      summary_map_{std::move(summary_map)},
      borders_by_region_{std::move(borders_by_region)},
      cfg_{std::move(config)},
      epoch_{epoch} {
  // Base summary graph: the cross-region links (deterministically sorted
  // by delay_graph()).
  summary_graph_ = summary_map_->delay_graph();

  // Transit edges: for every region, border-to-border traversal at the
  // region's shortest-path cost. Regions ascend and borders are sorted,
  // so construction order — and therefore the graph — is deterministic.
  for (std::size_t r = 0; r < region_snaps_.size(); ++r) {
    const RankSnapshot& snap = *region_snaps_[r];
    const std::vector<core::NodeId>& borders = borders_by_region_[r];
    for (const core::NodeId b1 : borders) {
      const net::ShortestPaths* sp = snap.paths_from(b1);
      if (sp == nullptr) continue;
      for (const core::NodeId b2 : borders) {
        if (b2 == b1) continue;
        const auto d = sp->distance.find(b2);
        if (d == sp->distance.end()) continue;
        summary_graph_.add_edge(b1, b2, -1, d->second);
        transit_region_[{b1, b2}] =
            core::RegionId{static_cast<std::int32_t>(r)};
      }
    }
  }

  // Query-context slot per node known to any region graph (plus the
  // summary's own nodes, so gateway-origin queries resolve too). The
  // slot *set* is fixed here; readers only fill slot contents.
  for (const std::shared_ptr<const RankSnapshot>& snap : region_snaps_) {
    for (const core::NodeId n : snap->delay_graph().nodes()) {
      ctx_slots_.try_emplace(n);
    }
  }
  for (const core::NodeId n : summary_graph_.nodes()) {
    ctx_slots_.try_emplace(n);
  }
}

const NetworkMap& MetroView::link_map(core::NodeId from, core::NodeId to) const {
  const core::RegionId ra = regions_->region_of(from);
  const core::RegionId rb = regions_->region_of(to);
  if (ra == rb && valid_region(ra)) return region_map(ra);
  return *summary_map_;
}

const NetworkMap& MetroView::device_map(core::NodeId device) const {
  const core::RegionId r = regions_->region_of(device);
  if (valid_region(r)) return region_map(r);
  return *summary_map_;
}

std::int64_t MetroView::hier_link_max_queue(core::NodeId from, core::NodeId to,
                                            sim::SimTime now) const {
  const core::RegionId ra = regions_->region_of(from);
  const core::RegionId rb = regions_->region_of(to);
  if (ra == rb && valid_region(ra)) {
    return region_map(ra).link_max_queue(from, to, now);
  }
  // Cross-region link: the egress port was learned in the summary map,
  // but the port's queue series (per-device telemetry) lives in `from`'s
  // region map — consult both halves, then the flat fallback.
  const std::int32_t port = summary_map_->egress_port(from, to);
  const NetworkMap& dm = device_map(from);
  if (port >= 0) {
    if (const auto q = dm.fresh_port_max_queue(from, port, now)) return *q;
  }
  return dm.device_max_queue(from, now);
}

bool MetroView::hier_path_stale(const std::vector<core::NodeId>& path,
                                sim::SimTime now) const {
  if (summary_map_->config().link_staleness <= sim::SimDuration::zero()) {
    return false;
  }
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (link_map(path[i - 1], path[i]).link_stale(path[i - 1], path[i], now)) {
      return true;
    }
  }
  return false;
}

void MetroView::build_context(core::NodeId origin, QueryContext& ctx) const {
  ctx.region = regions_->region_of(origin);
  if (!valid_region(ctx.region)) return;
  ctx.sp0 = region_snaps_[ctx.region.index()]->paths_from(origin);
  if (ctx.sp0 == nullptr) return;

  // Summary-level Dijkstra from the origin: copy the augmented summary
  // graph and add synthetic origin->border edges costed by the
  // region-local distances. The copy is small — the summary graph holds
  // only border gateways, not the metro.
  net::Graph g = summary_graph_;
  for (const core::NodeId b :
       borders_by_region_[ctx.region.index()]) {
    const auto d = ctx.sp0->distance.find(b);
    if (d == ctx.sp0->distance.end()) continue;
    g.add_edge(origin, b, -1, d->second);
  }
  ctx.summary_sp = net::dijkstra(g, origin);
  ctx.valid = true;
}

const MetroView::QueryContext* MetroView::query_context(
    core::NodeId origin) const {
  const auto it = ctx_slots_.find(origin);
  if (it == ctx_slots_.end()) return nullptr;
  const CtxSlot& slot = it->second;
  // intsched-contract: allow(hot-lock): once-per-origin memo fill (§11)
  std::call_once(slot.once, [this, origin, &slot] {
    // intsched-contract: allow(hot-coldcall): sanctioned once-only fill
    build_context(origin, slot.ctx);
  });
  return &slot.ctx;
}

// intsched-lint: hot-path
void MetroView::expand_summary_path_into(const QueryContext& ctx,
                                         core::NodeId origin,
                                         core::NodeId border,
                                         std::vector<core::NodeId>& out,
                                         RankScratch& scratch) const {
  out.clear();
  scratch.spine.clear();
  if (!ctx.summary_sp.append_path_to(border, scratch.spine)) return;
  out.push_back(origin);
  for (std::size_t i = 1; i < scratch.spine.size(); ++i) {
    const core::NodeId u = scratch.spine[i - 1];
    const core::NodeId v = scratch.spine[i];
    if (u == origin) {
      // Synthetic first edge: splice the region-local path origin..v.
      // (If the origin is itself a summary node, a real edge u->v has
      // the same cost as this splice, so either interpretation is
      // sound.)
      scratch.seg.clear();
      if (ctx.sp0->append_path_to(v, scratch.seg)) {
        out.insert(out.end(), scratch.seg.begin() + 1, scratch.seg.end());
      }
      continue;
    }
    const auto t = transit_region_.find({u, v});
    if (t != transit_region_.end()) {
      // Transit edge: splice the owning region's path u..v.
      const net::ShortestPaths* sp =
          region_snaps_[t->second.index()]->paths_from(u);
      assert(sp != nullptr);  // transit edges are built from these memos
      scratch.seg.clear();
      if (sp->append_path_to(v, scratch.seg)) {
        out.insert(out.end(), scratch.seg.begin() + 1, scratch.seg.end());
      }
      continue;
    }
    out.push_back(v);  // real cross-region hop
  }
}

// intsched-lint: hot-path
void MetroView::candidate_path_into(const QueryContext& ctx,
                                    core::NodeId origin, core::NodeId server,
                                    CandidatePath& c,
                                    RankScratch& scratch) const {
  c.server = server;
  c.path.clear();
  c.baseline_delay = sim::SimDuration::max();
  const core::RegionId rs = regions_->region_of(server);
  if (rs == ctx.region) {
    ctx.sp0->append_path_to(server, c.path);
    const auto d = ctx.sp0->distance.find(server);
    if (d != ctx.sp0->distance.end()) c.baseline_delay = d->second;
    return;
  }
  if (!valid_region(rs)) return;  // unknown region: unreachable

  // Cheapest entry border of the server's region: summary distance to the
  // border plus region distance border -> server. Borders are sorted, so
  // "first minimum wins" is the deterministic smallest-id tie-break.
  const RankSnapshot& snap = *region_snaps_[rs.index()];
  core::NodeId best_border = core::kInvalidNode;
  sim::SimDuration best_total = sim::SimDuration::max();
  const net::ShortestPaths* best_tail = nullptr;
  for (const core::NodeId b : borders_by_region_[rs.index()]) {
    const auto ds = ctx.summary_sp.distance.find(b);
    if (ds == ctx.summary_sp.distance.end()) continue;
    const net::ShortestPaths* tail = snap.paths_from(b);
    if (tail == nullptr) continue;
    const auto dt = tail->distance.find(server);
    if (dt == tail->distance.end()) continue;
    const sim::SimDuration total = ds->second + dt->second;
    if (best_border == core::kInvalidNode || total < best_total) {
      best_border = b;
      best_total = total;
      best_tail = tail;
    }
  }
  if (best_border == core::kInvalidNode) return;

  c.baseline_delay = best_total;
  expand_summary_path_into(ctx, origin, best_border, c.path, scratch);
  scratch.seg.clear();
  best_tail->append_path_to(server, scratch.seg);
  if (c.path.empty() || scratch.seg.empty()) {
    c.path.clear();  // defensive: treat as unreachable
    return;
  }
  c.path.insert(c.path.end(), scratch.seg.begin() + 1, scratch.seg.end());
}

// intsched-lint: hot-path
void MetroView::rank_into(core::NodeId origin, const core::NodeId* candidates,
                          std::size_t count, RankingMetric metric,
                          sim::SimTime now, RankScratch& scratch,
                          std::vector<ServerRank>& out) const {
  const QueryContext* ctx = query_context(origin);
  // Grow-only: shrinking would destroy the pooled path vectors (and
  // their capacity) the zero-allocation contract depends on.
  if (scratch.paths.size() < count) scratch.paths.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    CandidatePath& c = scratch.paths[i];
    if (ctx != nullptr && ctx->valid) {
      candidate_path_into(*ctx, origin, candidates[i], c, scratch);
    } else {
      // Unknown origin: every candidate unreachable.
      c.server = candidates[i];
      c.path.clear();
      c.baseline_delay = sim::SimDuration::max();
    }
  }
  rank_paths_into(HierMap{this}, cfg_, scratch.paths.data(), count, metric,
                  now, out);
}

std::vector<ServerRank> MetroView::rank(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  RankScratch scratch;
  // intsched-contract: allow(hot-alloc): allocating overload contract
  std::vector<ServerRank> out;
  rank_into(origin, candidates.data(), candidates.size(), metric, now,
            scratch, out);
  return out;
}

// intsched-lint: hot-path
std::optional<ServerRank> MetroView::pick_with(
    core::NodeId origin, const core::NodeId* candidates, std::size_t count,
    RankingMetric metric, sim::SimTime now, RankScratch& scratch,
    PickStats* stats) const {
  if (count == 0) return std::nullopt;
  const QueryContext* ctx = query_context(origin);
  if (ctx == nullptr || !ctx->valid || metric != RankingMetric::kDelay) {
    // Bandwidth has no admissible region lower bound (a distant region
    // can still win); unknown origins rank everything unreachable. Both
    // fall back to the full ranking.
    rank_into(origin, candidates, count, metric, now, scratch,
              scratch.ranked);
    if (stats != nullptr) {
      stats->regions_considered = 1;
      stats->candidates_scored = static_cast<std::int64_t>(count);
    }
    return scratch.ranked.front();
  }

  // Group candidates by region, keeping candidate order within a group:
  // tag each candidate with (region, original index) and sort — the
  // index tie-break reproduces exactly the per-region insertion order
  // the previous std::map-of-vectors grouping produced, without its
  // per-query node allocations.
  scratch.grouped.clear();
  for (std::size_t i = 0; i < count; ++i) {
    RankScratch::Grouped g;
    g.region = regions_->region_of(candidates[i]);
    g.index = i;
    g.server = candidates[i];
    scratch.grouped.push_back(g);
  }
  std::sort(scratch.grouped.begin(), scratch.grouped.end(),
            [](const RankScratch::Grouped& a, const RankScratch::Grouped& b) {
              if (a.region != b.region) return a.region < b.region;
              return a.index < b.index;
            });

  // Admissible lower bound per region: every path into region r enters
  // through a border, so no server there can beat the cheapest border
  // arrival (queue terms only add). The origin's own region starts at 0.
  scratch.order.clear();
  for (std::size_t begin = 0; begin < scratch.grouped.size();) {
    std::size_t end = begin;
    while (end < scratch.grouped.size() &&
           scratch.grouped[end].region == scratch.grouped[begin].region) {
      ++end;
    }
    RankScratch::GroupBound gb;
    gb.region = scratch.grouped[begin].region;
    gb.begin = begin;
    gb.end = end;
    if (gb.region == ctx->region) {
      gb.bound = sim::SimDuration::zero();
    } else if (valid_region(gb.region)) {
      for (const core::NodeId b : borders_by_region_[gb.region.index()]) {
        const auto d = ctx->summary_sp.distance.find(b);
        if (d != ctx->summary_sp.distance.end()) {
          gb.bound = std::min(gb.bound, d->second);
        }
      }
    }
    scratch.order.push_back(gb);
    begin = end;
  }
  std::sort(scratch.order.begin(), scratch.order.end(),
            [](const RankScratch::GroupBound& a,
               const RankScratch::GroupBound& b) {
              if (a.bound != b.bound) return a.bound < b.bound;
              return a.region < b.region;
            });

  const HierMap hier{this};
  std::optional<ServerRank> best;
  PickStats local{};
  for (const RankScratch::GroupBound& gb : scratch.order) {
    // Strict >: a region whose bound *ties* the best estimate can still
    // hold the tie-breaking (smaller-id) winner, so only a strictly
    // worse bound may be pruned.
    if (best.has_value() && gb.bound > best->delay_estimate) {
      ++local.regions_pruned;
      continue;
    }
    ++local.regions_considered;
    const std::size_t group_size = gb.end - gb.begin;
    if (scratch.paths.size() < group_size) scratch.paths.resize(group_size);
    for (std::size_t i = 0; i < group_size; ++i) {
      candidate_path_into(*ctx, origin, scratch.grouped[gb.begin + i].server,
                          scratch.paths[i], scratch);
    }
    local.candidates_scored += static_cast<std::int64_t>(group_size);
    rank_paths_into(hier, cfg_, scratch.paths.data(), group_size, metric, now,
                    scratch.ranked);
    if (scratch.ranked.empty()) continue;
    const ServerRank& top = scratch.ranked.front();
    if (!best.has_value() ||
        top.delay_estimate < best->delay_estimate ||
        (top.delay_estimate == best->delay_estimate &&
         top.server < best->server)) {
      best = top;
    }
  }
  if (stats != nullptr) *stats = local;
  return best;
}

std::optional<ServerRank> MetroView::pick(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now, PickStats* stats) const {
  RankScratch scratch;
  return pick_with(origin, candidates.data(), candidates.size(), metric, now,
                   scratch, stats);
}

// ---------------------------------------------------------------------------
// ShardedNetworkMap

ShardedNetworkMap::ShardedNetworkMap(RegionAssignment regions,
                                     ShardedMapConfig config)
    : regions_{std::make_shared<const RegionAssignment>(std::move(regions))},
      cfg_{std::move(config)},
      summary_map_{cfg_.map} {
  const auto n = static_cast<std::size_t>(
      std::max<std::int32_t>(0, regions_->count().value()));
  region_maps_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    region_maps_.emplace_back(cfg_.map);
  }
  borders_by_region_.resize(n);
  last_snaps_.resize(n);
  touched_.assign(n + 1, 0);
  LockGuard lock{mutex_};
  publish_locked();  // empty epoch-0 view so view() is never null
}

void ShardedNetworkMap::learn_pair_locked(core::NodeId from, core::NodeId to,
                                          std::int32_t out_port,
                                          sim::SimDuration delay_sample,
                                          sim::SimTime now) {
  const core::RegionId ra = regions_->region_of(from);
  const core::RegionId rb = regions_->region_of(to);
  const auto n = region_maps_.size();
  if (ra == rb && ra.valid() && ra.index() < n) {
    region_maps_[ra.index()].learn_link(from, to, out_port, delay_sample,
                                        now);
    touched_[ra.index()] = 1;
    return;
  }
  summary_map_.learn_link(from, to, out_port, delay_sample, now);
  touched_[n] = 1;
  const auto note_border = [this, n](core::RegionId r, core::NodeId node) {
    if (!r.valid() || r.index() >= n) return;
    std::vector<core::NodeId>& borders = borders_by_region_[r.index()];
    const auto it = std::lower_bound(borders.begin(), borders.end(), node);
    if (it == borders.end() || *it != node) borders.insert(it, node);
  };
  note_border(ra, from);
  note_border(rb, to);
}

void ShardedNetworkMap::apply_report_locked(
    const telemetry::ProbeReport& report, sim::SimTime now) {
  std::fill(touched_.begin(), touched_.end(), 0);

  // Same walk as NetworkMap::ingest, with each step routed to the owning
  // shard (see that function for the semantics of every step).
  core::NodeId upstream = report.src;
  std::int32_t upstream_port = 0;
  for (const auto& e : report.entries) {
    if (!e.device.valid()) {
      ++rejected_;
      continue;
    }
    learn_pair_locked(upstream, e.device, upstream_port,
                      e.ingress_link_latency, now);
    learn_pair_locked(e.device, upstream, e.ingress_port,
                      sim::SimDuration::nanos(-1), now);
    const core::RegionId rd = regions_->region_of(e.device);
    if (rd.valid() && rd.index() < region_maps_.size()) {
      region_maps_[rd.index()].record_entry_telemetry(e, now);
      touched_[rd.index()] = 1;
    } else {
      summary_map_.record_entry_telemetry(e, now);
      touched_[region_maps_.size()] = 1;
    }
    upstream = e.device;
    upstream_port = e.egress_port;
  }
  if (upstream != report.src) {
    learn_pair_locked(upstream, report.dst, upstream_port,
                      report.final_link_latency, now);
    learn_pair_locked(report.dst, upstream, 0, sim::SimDuration::nanos(-1),
                      now);
  }

  for (std::size_t r = 0; r < region_maps_.size(); ++r) {
    if (touched_[r] != 0) region_maps_[r].finish_ingest(now);
  }
  if (touched_[region_maps_.size()] != 0) summary_map_.finish_ingest(now);
  ++reports_;
}

std::shared_ptr<const RankSnapshot> ShardedNetworkMap::build_region_snapshot(
    std::size_t r) const {
  return std::make_shared<const RankSnapshot>(region_maps_[r], cfg_.ranker);
}

void ShardedNetworkMap::publish_locked() {
  // A region is dirty iff its shard ingested anything since its last
  // snapshot (RankSnapshot's epoch is the shard's reports_ingested at
  // build time). Clean regions keep their snapshot — Dijkstra memos and
  // all — across the publish.
  std::vector<std::size_t> dirty;
  for (std::size_t r = 0; r < region_maps_.size(); ++r) {
    if (last_snaps_[r] == nullptr ||
        last_snaps_[r]->epoch() != region_maps_[r].ingest_epoch()) {
      dirty.push_back(r);
    }
  }
  if (!dirty.empty()) {
    if (cfg_.rebuild_executor != nullptr && dirty.size() > 1) {
      // Workers write index-addressed slots, so the published vector is
      // byte-identical no matter how the executor schedules them.
      std::vector<std::shared_ptr<const RankSnapshot>> built(dirty.size());
      cfg_.rebuild_executor(dirty.size(), [this, &dirty, &built](
                                              std::size_t i) {
        built[i] = build_region_snapshot(dirty[i]);
      });
      for (std::size_t i = 0; i < dirty.size(); ++i) {
        last_snaps_[dirty[i]] = std::move(built[i]);
      }
    } else {
      for (const std::size_t r : dirty) {
        last_snaps_[r] = build_region_snapshot(r);
      }
    }
    snapshot_builds_ += static_cast<std::int64_t>(dirty.size());
  }
  if (last_summary_ == nullptr ||
      last_summary_epoch_ != summary_map_.ingest_epoch()) {
    last_summary_ = std::make_shared<const NetworkMap>(summary_map_);
    last_summary_epoch_ = summary_map_.ingest_epoch();
  }

  view_.store(std::make_shared<const MetroView>(
                  regions_, last_snaps_, last_summary_, borders_by_region_,
                  cfg_.ranker, Epoch{reports_}),
              std::memory_order_release);
  ++publishes_;
}

void ShardedNetworkMap::ingest(const telemetry::ProbeReport& report,
                               sim::SimTime now) {
  LockGuard lock{mutex_};
  apply_report_locked(report, now);
  publish_locked();
}

void ShardedNetworkMap::ingest_batch(
    const std::vector<telemetry::ProbeReport>& reports, sim::SimTime now) {
  LockGuard lock{mutex_};
  for (const telemetry::ProbeReport& report : reports) {
    apply_report_locked(report, now);
  }
  publish_locked();
}

std::vector<ServerRank> ShardedNetworkMap::rank(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const MetroView> v =
      view_.load(std::memory_order_acquire);
  return v->rank(origin, candidates, metric, now);
}

std::optional<ServerRank> ShardedNetworkMap::pick(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now, PickStats* stats) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<const MetroView> v =
      view_.load(std::memory_order_acquire);
  return v->pick(origin, candidates, metric, now, stats);
}

void ShardedNetworkMap::set_k_factor(sim::SimDuration k) {
  LockGuard lock{mutex_};
  cfg_.ranker.k_factor = k;
  // Cached state must never outlive the config it was computed under:
  // drop every snapshot so publish rebuilds them under the new config.
  std::fill(last_snaps_.begin(), last_snaps_.end(), nullptr);
  last_summary_ = nullptr;
  publish_locked();
}

std::int64_t ShardedNetworkMap::reports_ingested() const {
  LockGuard lock{mutex_};
  return reports_;
}

std::int64_t ShardedNetworkMap::rejected_entries() const {
  LockGuard lock{mutex_};
  return rejected_;
}

std::int64_t ShardedNetworkMap::region_snapshot_builds() const {
  LockGuard lock{mutex_};
  return snapshot_builds_;
}

std::int64_t ShardedNetworkMap::view_publishes() const {
  LockGuard lock{mutex_};
  return publishes_;
}

}  // namespace intsched::core
