#include "intsched/core/concurrent_map.hpp"

namespace intsched::core {

void ConcurrentNetworkMap::ingest(const telemetry::ProbeReport& report,
                                  sim::SimTime now) {
  LockGuard lock{mutex_};
  map_.ingest(report, now);
}

std::vector<ServerRank> ConcurrentNetworkMap::rank(
    net::NodeId origin, const std::vector<net::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  LockGuard lock{mutex_};
  return rank_locked(origin, candidates, metric, now);
}

std::vector<ServerRank> ConcurrentNetworkMap::rank_locked(
    net::NodeId origin, const std::vector<net::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  ++queries_;
  return ranker_.rank(origin, candidates, metric, now);
}

sim::SimTime ConcurrentNetworkMap::link_delay(net::NodeId from,
                                              net::NodeId to) const {
  LockGuard lock{mutex_};
  return map_.link_delay(from, to);
}

bool ConcurrentNetworkMap::knows_node(net::NodeId node) const {
  LockGuard lock{mutex_};
  return map_.knows_node(node);
}

std::int64_t ConcurrentNetworkMap::reports_ingested() const {
  LockGuard lock{mutex_};
  return map_.reports_ingested();
}

std::int64_t ConcurrentNetworkMap::rejected_entries() const {
  LockGuard lock{mutex_};
  return map_.rejected_entries();
}

std::int64_t ConcurrentNetworkMap::queries_served() const {
  LockGuard lock{mutex_};
  return queries_;
}

}  // namespace intsched::core
