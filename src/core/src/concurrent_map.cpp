#include "intsched/core/concurrent_map.hpp"


namespace intsched::core {

const char* to_string(ConcurrencyMode mode) {
  switch (mode) {
    case ConcurrencyMode::kSnapshot: return "snapshot";
    case ConcurrencyMode::kLockedFacade: return "locked";
  }
  return "?";
}

ConcurrentNetworkMap::ConcurrentNetworkMap(NetworkMapConfig map_config,
                                           RankerConfig ranker_config,
                                           ConcurrencyMode mode)
    : mode_{mode}, map_{map_config}, ranker_{map_, std::move(ranker_config)} {
  if (mode_ == ConcurrencyMode::kSnapshot) {
    // Publish the empty-map epoch-0 snapshot so rank() never observes a
    // null pointer — construction is single-threaded, no lock needed, but
    // the annotation checker cannot see that; publish_locked is reused
    // under a real lock to keep one code path.
    LockGuard lock{mutex_};
    publish_locked();
  }
}

void ConcurrentNetworkMap::publish_locked() {
  if (mode_ != ConcurrencyMode::kSnapshot) return;
  snapshot_.store(std::make_shared<const RankSnapshot>(map_, ranker_.config()),
                  std::memory_order_release);
}

void ConcurrentNetworkMap::ingest(const telemetry::ProbeReport& report,
                                  sim::SimTime now) {
  LockGuard lock{mutex_};
  map_.ingest(report, now);
  publish_locked();
}

void ConcurrentNetworkMap::ingest_batch(
    const std::vector<telemetry::ProbeReport>& reports, sim::SimTime now) {
  if (reports.empty()) return;
  LockGuard lock{mutex_};
  for (const telemetry::ProbeReport& report : reports) {
    map_.ingest(report, now);
  }
  publish_locked();
}

std::vector<ServerRank> ConcurrentNetworkMap::rank(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == ConcurrencyMode::kSnapshot) {
    // Lock-free read path: the acquire load pairs with publish_locked's
    // release store, so everything the snapshot was built from is visible.
    const std::shared_ptr<const RankSnapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    return snap->rank(origin, candidates, metric, now);
  }
  LockGuard lock{mutex_};
  return rank_locked(origin, candidates, metric, now);
}

std::vector<ServerRank> ConcurrentNetworkMap::rank_locked(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  return ranker_.rank(origin, candidates, metric, now);
}

void ConcurrentNetworkMap::set_k_factor(sim::SimDuration k) {
  LockGuard lock{mutex_};
  ranker_.set_k_factor(k);
  // Republish: a snapshot published under the old config must not keep
  // serving rankings computed with the old k (regression-tested).
  publish_locked();
}

sim::SimDuration ConcurrentNetworkMap::link_delay(core::NodeId from,
                                              core::NodeId to) const {
  LockGuard lock{mutex_};
  return map_.link_delay(from, to);
}

bool ConcurrentNetworkMap::knows_node(core::NodeId node) const {
  LockGuard lock{mutex_};
  return map_.knows_node(node);
}

std::int64_t ConcurrentNetworkMap::reports_ingested() const {
  LockGuard lock{mutex_};
  return map_.reports_ingested();
}

std::int64_t ConcurrentNetworkMap::rejected_entries() const {
  LockGuard lock{mutex_};
  return map_.rejected_entries();
}

}  // namespace intsched::core
