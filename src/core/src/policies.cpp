#include "intsched/core/policies.hpp"

#include <algorithm>
#include <stdexcept>

namespace intsched::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kIntDelay: return "int-delay";
    case PolicyKind::kIntBandwidth: return "int-bandwidth";
    case PolicyKind::kNearest: return "nearest";
    case PolicyKind::kRandom: return "random";
  }
  return "?";
}

void IntPolicy::select(core::NodeId device, std::int32_t count,
                       const std::vector<std::string>& requirements,
                       SelectionHandler handler) {
  (void)device;  // the client stamps its own host id into the request
  client_.query(
      metric_,
      [count, handler = std::move(handler)](const CandidateResponse& resp) {
        std::vector<core::NodeId> chosen;
        chosen.reserve(static_cast<std::size_t>(count));
        for (const ServerRank& r : resp.ranked) {
          if (static_cast<std::int32_t>(chosen.size()) >= count) break;
          chosen.push_back(r.server);
        }
        // Fewer candidates than requested tasks: wrap around (a job's
        // tasks then share servers), mirroring the paper's top-N
        // assignment.
        const std::size_t unique = chosen.size();
        while (!chosen.empty() &&
               static_cast<std::int32_t>(chosen.size()) < count) {
          chosen.push_back(chosen[chosen.size() % unique]);
        }
        handler(std::move(chosen));
      },
      requirements);
}

void DirectIntPolicy::select(core::NodeId device, std::int32_t count,
                             const std::vector<std::string>& requirements,
                             SelectionHandler handler) {
  const std::vector<ServerRank> ranked =
      service_.rank_for(device, metric_, requirements);
  std::vector<core::NodeId> chosen;
  for (const ServerRank& r : ranked) {
    if (static_cast<std::int32_t>(chosen.size()) >= count) break;
    chosen.push_back(r.server);
  }
  const std::size_t unique = chosen.size();
  while (!chosen.empty() &&
         static_cast<std::int32_t>(chosen.size()) < count) {
    chosen.push_back(chosen[chosen.size() % unique]);
  }
  handler(std::move(chosen));
}

NearestPolicy::NearestPolicy(
    const net::Topology& topology, std::vector<core::NodeId> servers,
    std::unordered_map<core::NodeId, std::vector<std::string>> capabilities)
    : servers_{std::move(servers)}, capabilities_{std::move(capabilities)} {
  // Precompute, for every node in the topology, candidate servers sorted
  // by ground-truth path delay (ties by id). This is the "calculated ahead
  // of time" table the paper gives the baseline for free.
  for (std::int32_t d = 0; d < topology.node_count(); ++d) {
    const core::NodeId device{d};
    std::vector<core::NodeId> order;
    for (const core::NodeId s : servers_) {
      if (s != device) order.push_back(s);
    }
    std::sort(order.begin(), order.end(),
              [&](core::NodeId a, core::NodeId b) {
                const auto da = topology.path_delay(device, a);
                const auto db = topology.path_delay(device, b);
                if (da != db) return da < db;
                return a < b;
              });
    order_.emplace(device, std::move(order));
  }
}

const std::vector<core::NodeId>& NearestPolicy::order_for(
    core::NodeId device) const {
  const auto it = order_.find(device);
  if (it == order_.end()) {
    throw std::invalid_argument("NearestPolicy: unknown device");
  }
  return it->second;
}

bool NearestPolicy::satisfies(core::NodeId server,
                              const std::vector<std::string>& reqs) const {
  if (reqs.empty()) return true;
  const auto it = capabilities_.find(server);
  if (it == capabilities_.end()) return false;
  return std::ranges::all_of(reqs, [&](const std::string& req) {
    return std::ranges::find(it->second, req) != it->second.end();
  });
}

void NearestPolicy::select(core::NodeId device, std::int32_t count,
                           const std::vector<std::string>& requirements,
                           SelectionHandler handler) {
  std::vector<core::NodeId> order;
  for (const core::NodeId s : order_for(device)) {
    if (satisfies(s, requirements)) order.push_back(s);
  }
  std::vector<core::NodeId> chosen;
  for (std::int32_t i = 0; i < count && !order.empty(); ++i) {
    chosen.push_back(order[static_cast<std::size_t>(i) % order.size()]);
  }
  handler(std::move(chosen));
}

void RandomPolicy::select(core::NodeId device, std::int32_t count,
                          const std::vector<std::string>& requirements,
                          SelectionHandler handler) {
  const auto qualifies = [&](core::NodeId s) {
    if (s == device) return false;
    if (requirements.empty()) return true;
    const auto it = capabilities_.find(s);
    if (it == capabilities_.end()) return false;
    return std::ranges::all_of(requirements, [&](const std::string& req) {
      return std::ranges::find(it->second, req) != it->second.end();
    });
  };
  std::vector<core::NodeId> pool;
  for (const core::NodeId s : servers_) {
    if (qualifies(s)) pool.push_back(s);
  }
  std::vector<core::NodeId> chosen;
  for (std::int32_t i = 0; i < count && !pool.empty(); ++i) {
    // Sample without replacement until the pool runs dry, then reuse.
    if (pool.empty()) break;
    const auto idx = static_cast<std::size_t>(
        rng_.index(static_cast<std::int64_t>(pool.size())));
    chosen.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    if (pool.empty() && static_cast<std::int32_t>(chosen.size()) < count) {
      for (const core::NodeId s : servers_) {
        if (qualifies(s)) pool.push_back(s);
      }
    }
  }
  handler(std::move(chosen));
}

}  // namespace intsched::core
