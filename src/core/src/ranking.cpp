#include "intsched/core/ranking.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace intsched::core {

const char* to_string(RankingMetric metric) {
  switch (metric) {
    case RankingMetric::kDelay: return "delay";
    case RankingMetric::kBandwidth: return "bandwidth";
  }
  return "?";
}

QueueToUtilization::QueueToUtilization()
    : QueueToUtilization(std::vector<Point>{
          // Inverse of the measured Fig.-3 curve (bench/fig3_queue_vs_util):
          // avg window-max queue of ~4 packets appears near 50% load,
          // ~10 near 70%, ~17 near 80%, hundreds at saturation.
          {0.0, 0.00},
          {1.0, 0.25},
          {2.0, 0.35},
          {4.0, 0.50},
          {7.0, 0.62},
          {10.0, 0.70},
          {17.0, 0.80},
          {40.0, 0.86},
          {100.0, 0.90},
          {200.0, 0.94},
          {512.0, 1.00},
      }) {}

QueueToUtilization::QueueToUtilization(std::vector<Point> points)
    : points_{std::move(points)} {
  if (points_.empty()) {
    throw std::invalid_argument("QueueToUtilization: empty table");
  }
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const Point& a, const Point& b) {
                        return a.max_queue_pkts < b.max_queue_pkts;
                      })) {
    throw std::invalid_argument("QueueToUtilization: table must be sorted");
  }
}

double QueueToUtilization::utilization(std::int64_t max_queue_pkts) const {
  const auto q = static_cast<double>(max_queue_pkts);
  if (q <= points_.front().max_queue_pkts) {
    return points_.front().utilization;
  }
  if (q >= points_.back().max_queue_pkts) {
    return points_.back().utilization;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (q <= points_[i].max_queue_pkts) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double t = (q - lo.max_queue_pkts) /
                       (hi.max_queue_pkts - lo.max_queue_pkts);
      return lo.utilization + t * (hi.utilization - lo.utilization);
    }
  }
  return points_.back().utilization;  // unreachable
}

sim::SimDuration estimate_k_factor(
    const std::vector<KCalibrationSample>& samples) {
  double qq = 0.0;
  double qd = 0.0;
  for (const KCalibrationSample& s : samples) {
    qq += s.max_queue_pkts * s.max_queue_pkts;
    qd += s.max_queue_pkts * s.extra_delay_ms;
  }
  if (qq <= 0.0 || qd <= 0.0) {
    return sim::SimDuration::millis(20);  // paper default: no signal
  }
  return sim::SimDuration::from_seconds(qd / qq * 1e-3);
}

std::vector<ServerRank> rank_candidates(
    const NetworkMap& map, const RankerConfig& cfg,
    const net::ShortestPaths& sp, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) {
  std::vector<CandidatePath> paths;
  paths.reserve(candidates.size());
  for (const core::NodeId server : candidates) {
    CandidatePath c;
    c.server = server;
    c.path = sp.path_to(server);
    const auto d = sp.distance.find(server);
    if (d != sp.distance.end()) {
      c.baseline_delay = d->second;
    }
    paths.push_back(std::move(c));
  }
  return rank_paths(map, cfg, paths, metric, now);
}

sim::SimDuration Ranker::path_delay_estimate(const std::vector<core::NodeId>& path,
                                         sim::SimTime now) const {
  return estimate_path_delay(*map_, cfg_, path, now);
}

sim::DataRate Ranker::path_bandwidth_estimate(
    const std::vector<core::NodeId>& path, sim::SimTime now) const {
  return estimate_path_bandwidth(*map_, cfg_, path, now);
}

void Ranker::refresh_cache() const {
  const Epoch epoch = map_->ingest_epoch();
  if (cache_.epoch == epoch) {
    return;
  }

  net::Graph fresh = map_->delay_graph();

  // Diff the fresh delay graph against the cached epoch's edge facts.
  // Iteration order over the unordered adjacency is irrelevant here: the
  // diff only *collects* the changed-edge set, and every decision below is
  // an order-insensitive OR / count over it.
  std::vector<std::pair<LinkKey, PathCache::EdgeFacts>> changed;
  std::size_t fresh_edges = 0;
  std::size_t matched = 0;
  // intsched-lint: allow(unordered-iter)
  for (const auto& [from, edges] : fresh.adjacency) {
    for (const net::Graph::Edge& e : edges) {
      ++fresh_edges;
      const LinkKey key{from, e.to};
      const PathCache::EdgeFacts facts{e.cost, e.out_port};
      const auto it = cache_.edge_index.find(key);
      if (it == cache_.edge_index.end()) {
        changed.emplace_back(key, facts);
      } else {
        ++matched;
        if (it->second.cost != facts.cost || it->second.port != facts.port) {
          changed.emplace_back(key, facts);
        }
      }
    }
  }

  // NetworkMap never forgets a learned link, so a cached edge missing from
  // the fresh graph should be impossible — but if it ever happens the diff
  // below would be unsound, so fall back to a full rebuild. Likewise when
  // the memo is empty (nothing to save) or the diff touches so much of the
  // graph that per-origin checks cost more than recomputing.
  const bool edges_removed = matched != cache_.edge_index.size();
  const bool churned = changed.size() * 4 > fresh_edges;
  if (cache_.sp_by_origin.empty() || edges_removed || churned) {
    cache_.sp_by_origin.clear();
    ++cache_.full_rebuilds;
  } else {
    ++cache_.delta_refreshes;
    // Keep an origin's memoized Dijkstra result unless some changed edge
    // (u, v) can alter it:
    //  (a) the edge is on the origin's shortest-path tree (pred[v] == u) —
    //      any change, cost or egress port, invalidates paths through it;
    //  (b) the origin reaches u and the new cost ties or beats v's old
    //      distance (d(u) + cost <= d(v), or v was unreachable) — `<=`
    //      because a new tie can flip the deterministic tie-break.
    // Cascaded effects are covered: any path whose cost improves must
    // cross a *first* changed edge whose prefix is unchanged, so that
    // edge's tail distance is finite in the old result and (b) fires.
    for (auto it = cache_.sp_by_origin.begin();
         it != cache_.sp_by_origin.end();) {
      const net::ShortestPaths& sp = it->second;
      bool affected = false;
      for (const auto& [key, facts] : changed) {
        const auto pred = sp.predecessor.find(key.to);
        if (pred != sp.predecessor.end() && pred->second == key.from) {
          affected = true;
          break;
        }
        const auto du = sp.distance.find(key.from);
        if (du == sp.distance.end()) {
          continue;  // origin never reaches the tail: edge cannot matter
        }
        const auto dv = sp.distance.find(key.to);
        if (dv == sp.distance.end() ||
            du->second + facts.cost <= dv->second) {
          affected = true;
          break;
        }
      }
      if (affected) {
        ++cache_.origins_dropped;
        it = cache_.sp_by_origin.erase(it);
      } else {
        ++cache_.origins_kept;
        ++it;
      }
    }
  }

  cache_.epoch = epoch;
  cache_.graph = std::move(fresh);
  cache_.edge_index.clear();
  cache_.edge_index.reserve(fresh_edges);
  // Building a keyed index is order-insensitive.
  // intsched-lint: allow(unordered-iter)
  for (const auto& [from, edges] : cache_.graph.adjacency) {
    for (const net::Graph::Edge& e : edges) {
      cache_.edge_index.emplace(LinkKey{from, e.to},
                                PathCache::EdgeFacts{e.cost, e.out_port});
    }
  }
}

const net::ShortestPaths& Ranker::shortest_paths_from(
    core::NodeId origin) const {
  refresh_cache();
  const auto [it, inserted] = cache_.sp_by_origin.try_emplace(origin);
  if (inserted) {
    ++cache_.misses;
    it->second = net::dijkstra(cache_.graph, origin);
  } else {
    ++cache_.hits;
  }
  return it->second;
}

std::vector<ServerRank> Ranker::rank(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  return rank_candidates(*map_, cfg_, shortest_paths_from(origin), candidates,
                         metric, now);
}

}  // namespace intsched::core
