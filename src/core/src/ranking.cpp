#include "intsched/core/ranking.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace intsched::core {

const char* to_string(RankingMetric metric) {
  switch (metric) {
    case RankingMetric::kDelay: return "delay";
    case RankingMetric::kBandwidth: return "bandwidth";
  }
  return "?";
}

QueueToUtilization::QueueToUtilization()
    : QueueToUtilization(std::vector<Point>{
          // Inverse of the measured Fig.-3 curve (bench/fig3_queue_vs_util):
          // avg window-max queue of ~4 packets appears near 50% load,
          // ~10 near 70%, ~17 near 80%, hundreds at saturation.
          {0.0, 0.00},
          {1.0, 0.25},
          {2.0, 0.35},
          {4.0, 0.50},
          {7.0, 0.62},
          {10.0, 0.70},
          {17.0, 0.80},
          {40.0, 0.86},
          {100.0, 0.90},
          {200.0, 0.94},
          {512.0, 1.00},
      }) {}

QueueToUtilization::QueueToUtilization(std::vector<Point> points)
    : points_{std::move(points)} {
  if (points_.empty()) {
    throw std::invalid_argument("QueueToUtilization: empty table");
  }
  if (!std::is_sorted(points_.begin(), points_.end(),
                      [](const Point& a, const Point& b) {
                        return a.max_queue_pkts < b.max_queue_pkts;
                      })) {
    throw std::invalid_argument("QueueToUtilization: table must be sorted");
  }
}

double QueueToUtilization::utilization(std::int64_t max_queue_pkts) const {
  const auto q = static_cast<double>(max_queue_pkts);
  if (q <= points_.front().max_queue_pkts) {
    return points_.front().utilization;
  }
  if (q >= points_.back().max_queue_pkts) {
    return points_.back().utilization;
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (q <= points_[i].max_queue_pkts) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double t = (q - lo.max_queue_pkts) /
                       (hi.max_queue_pkts - lo.max_queue_pkts);
      return lo.utilization + t * (hi.utilization - lo.utilization);
    }
  }
  return points_.back().utilization;  // unreachable
}

sim::SimTime estimate_k_factor(
    const std::vector<KCalibrationSample>& samples) {
  double qq = 0.0;
  double qd = 0.0;
  for (const KCalibrationSample& s : samples) {
    qq += s.max_queue_pkts * s.max_queue_pkts;
    qd += s.max_queue_pkts * s.extra_delay_ms;
  }
  if (qq <= 0.0 || qd <= 0.0) {
    return sim::SimTime::milliseconds(20);  // paper default: no signal
  }
  return sim::SimTime::from_seconds(qd / qq * 1e-3);
}

sim::SimTime estimate_path_delay(const NetworkMap& map,
                                 const RankerConfig& cfg,
                                 const std::vector<net::NodeId>& path,
                                 sim::SimTime now) {
  assert(path.size() >= 2);
  sim::SimTime total_link_delay = sim::SimTime::zero();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total_link_delay += map.link_delay(path[i], path[i + 1]);
  }
  // Hops are the intermediate devices (switches) on the path.
  sim::SimTime total_hop_delay = sim::SimTime::zero();
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    switch (cfg.queue_statistic) {
      case QueueStatistic::kMaximum:
        total_hop_delay += cfg.k_factor * map.device_max_queue(path[i], now);
        break;
      case QueueStatistic::kAverage:
        total_hop_delay +=
            sim::SimTime::nanoseconds(static_cast<std::int64_t>(
                static_cast<double>(cfg.k_factor.ns()) *
                map.device_avg_queue(path[i], now)));
        break;
      case QueueStatistic::kMeasuredHopLatency:
        total_hop_delay += map.device_hop_latency(path[i], now);
        break;
    }
  }
  return total_link_delay + total_hop_delay;
}

sim::DataRate estimate_path_bandwidth(const NetworkMap& map,
                                      const RankerConfig& cfg,
                                      const std::vector<net::NodeId>& path,
                                      sim::SimTime now) {
  assert(path.size() >= 2);
  double min_bps = map.config().nominal_capacity.bps();
  // The first link is the origin host's own uplink; hosts are not
  // pps-bound, so per-link availability is charged from the first switch
  // onward (each directed link's headroom is its upstream device's egress).
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const std::int64_t q = map.link_max_queue(path[i], path[i + 1], now);
    const double util = cfg.queue_to_utilization.utilization(q);
    const double avail = map.config().nominal_capacity.bps() * (1.0 - util);
    min_bps = std::min(min_bps, avail);
  }
  return sim::DataRate::bits_per_second(min_bps);
}

std::vector<ServerRank> rank_candidates(
    const NetworkMap& map, const RankerConfig& cfg,
    const net::ShortestPaths& sp, const std::vector<net::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) {
  std::vector<ServerRank> out;
  out.reserve(candidates.size());
  for (const net::NodeId server : candidates) {
    ServerRank r;
    r.server = server;
    const std::vector<net::NodeId> path = sp.path_to(server);
    if (path.size() < 2) {
      r.delay_estimate = sim::SimTime::max();
      r.bandwidth_estimate = sim::DataRate::bits_per_second(0.0);
      r.baseline_delay = sim::SimTime::max();
    } else {
      r.delay_estimate = estimate_path_delay(map, cfg, path, now);
      r.bandwidth_estimate = estimate_path_bandwidth(map, cfg, path, now);
      const auto d = sp.distance.find(server);
      r.baseline_delay =
          d == sp.distance.end() ? sim::SimTime::max() : d->second;
      r.stale = map.path_stale(path, now);
    }
    out.push_back(r);
  }

  const auto by_delay = [](const ServerRank& a, const ServerRank& b) {
    if (a.delay_estimate != b.delay_estimate) {
      return a.delay_estimate < b.delay_estimate;
    }
    return a.server < b.server;
  };
  const auto by_bandwidth = [](const ServerRank& a, const ServerRank& b) {
    if (a.bandwidth_estimate != b.bandwidth_estimate) {
      return a.bandwidth_estimate > b.bandwidth_estimate;
    }
    return a.server < b.server;
  };
  if (metric == RankingMetric::kDelay) {
    std::sort(out.begin(), out.end(), by_delay);
  } else {
    std::sort(out.begin(), out.end(), by_bandwidth);
  }
  return out;
}

sim::SimTime Ranker::path_delay_estimate(const std::vector<net::NodeId>& path,
                                         sim::SimTime now) const {
  return estimate_path_delay(*map_, cfg_, path, now);
}

sim::DataRate Ranker::path_bandwidth_estimate(
    const std::vector<net::NodeId>& path, sim::SimTime now) const {
  return estimate_path_bandwidth(*map_, cfg_, path, now);
}

const net::ShortestPaths& Ranker::shortest_paths_from(
    net::NodeId origin) const {
  const std::int64_t epoch = map_->reports_ingested();
  if (cache_.epoch != epoch) {
    // New telemetry arrived since the snapshot: every cached path may be
    // stale. Rebuild the graph once and drop all memoized Dijkstra runs.
    cache_.epoch = epoch;
    cache_.graph = map_->delay_graph();
    cache_.sp_by_origin.clear();
  }
  const auto [it, inserted] = cache_.sp_by_origin.try_emplace(origin);
  if (inserted) {
    ++cache_.misses;
    it->second = net::dijkstra(cache_.graph, origin);
  } else {
    ++cache_.hits;
  }
  return it->second;
}

std::vector<ServerRank> Ranker::rank(
    net::NodeId origin, const std::vector<net::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  return rank_candidates(*map_, cfg_, shortest_paths_from(origin), candidates,
                         metric, now);
}

}  // namespace intsched::core
