#include "intsched/core/scheduler_service.hpp"

#include <algorithm>

#include "intsched/core/sharded_map.hpp"

namespace intsched::core {
namespace {

/// Response wire size: headers + 16 B per ranked entry.
sim::Bytes response_size(std::size_t entries) {
  return net::kHeaderBytes + static_cast<sim::Bytes>(16 * entries);
}

constexpr sim::Bytes kRequestSize = net::kHeaderBytes + 16;

}  // namespace

SchedulerService::SchedulerService(transport::HostStack& stack,
                                   RankerConfig ranker_config,
                                   NetworkMapConfig map_config,
                                   SchedulerConfig scheduler_config)
    : stack_{stack},
      collector_{stack.host()},
      map_{map_config},
      ranker_{map_, std::move(ranker_config)},
      cfg_{scheduler_config} {
  // Probe sink: INT termination into the network map.
  stack_.bind_udp(net::kProbePort, [this](const net::Packet& p) {
    collector_.handle_packet(p);
  });
  collector_.set_handler([this](const telemetry::ProbeReport& report) {
    if (metro_ != nullptr) {
      metro_->ingest(report, stack_.host().local_time());
      return;
    }
    map_.ingest(report, stack_.host().local_time());
  });
  // Query + load-report front-end.
  stack_.bind_udp(net::kSchedulerPort, [this](const net::Packet& p) {
    if (const auto* load =
            dynamic_cast<const LoadReportMessage*>(p.app.get())) {
      on_load_report(*load);
      return;
    }
    on_request(p);
  });
}

void SchedulerService::register_edge_server(
    core::NodeId server, std::vector<std::string> capabilities) {
  if (std::ranges::find(servers_, server) == servers_.end()) {
    servers_.push_back(server);
  }
  capabilities_[server] = std::move(capabilities);
}

void SchedulerService::on_load_report(const LoadReportMessage& report) {
  load_[report.server] = LoadInfo{report.outstanding_tasks,
                                  stack_.host().local_time()};
}

std::int32_t SchedulerService::server_load(core::NodeId server) const {
  const auto it = load_.find(server);
  if (it == load_.end()) return 0;
  if (stack_.host().local_time() - it->second.reported_at >
      cfg_.load_staleness) {
    return 0;
  }
  return it->second.outstanding;
}

bool SchedulerService::satisfies(
    core::NodeId server, const std::vector<std::string>& reqs) const {
  if (reqs.empty()) return true;
  const auto it = capabilities_.find(server);
  if (it == capabilities_.end()) return false;
  const auto& caps = it->second;
  return std::ranges::all_of(reqs, [&](const std::string& req) {
    return std::ranges::find(caps, req) != caps.end();
  });
}

std::vector<ServerRank> SchedulerService::rank_for(
    core::NodeId device, RankingMetric metric,
    const std::vector<std::string>& requirements) const {
  std::vector<core::NodeId> candidates;
  candidates.reserve(servers_.size());
  for (const core::NodeId s : servers_) {
    if (s != device && satisfies(s, requirements)) candidates.push_back(s);
  }
  std::vector<ServerRank> ranked =
      metro_ != nullptr
          ? metro_->rank(device, candidates, metric,
                         stack_.host().local_time())
          : ranker_.rank(device, candidates, metric,
                         stack_.host().local_time());
  for (ServerRank& r : ranked) r.outstanding_tasks = server_load(r.server);

  if (cfg_.compute_aware) {
    // Paper §VI extension: fold server load into the ordering key. Delay
    // ranking charges load_penalty per outstanding task; bandwidth
    // ranking divides the path estimate by the server's queue depth + 1
    // (the share a new task would get).
    const auto delay_key = [this](const ServerRank& r) {
      return r.delay_estimate + cfg_.load_penalty * r.outstanding_tasks;
    };
    const auto bw_key = [](const ServerRank& r) {
      return r.bandwidth_estimate.bps() /
             static_cast<double>(1 + r.outstanding_tasks);
    };
    if (metric == RankingMetric::kDelay) {
      std::stable_sort(ranked.begin(), ranked.end(),
                       [&](const ServerRank& a, const ServerRank& b) {
                         return delay_key(a) < delay_key(b);
                       });
    } else {
      std::stable_sort(ranked.begin(), ranked.end(),
                       [&](const ServerRank& a, const ServerRank& b) {
                         return bw_key(a) > bw_key(b);
                       });
    }
  }

  // Graceful degradation under telemetry loss. A path is stale when its
  // probes stopped arriving (switch dead, link flapping, probes dropped);
  // its congestion estimate is then last-known-good at best. Never drop a
  // candidate — the device may have no other choice — but stop trusting
  // stale congestion data for ordering.
  std::size_t stale_count = 0;
  for (const ServerRank& r : ranked) {
    if (r.stale) ++stale_count;
  }
  if (stale_count > 0) {
    stale_lookups_ += static_cast<std::int64_t>(stale_count);
    ++fallbacks_;
    const auto by_baseline = [](const ServerRank& a, const ServerRank& b) {
      if (a.baseline_delay != b.baseline_delay) {
        return a.baseline_delay < b.baseline_delay;
      }
      return a.server < b.server;
    };
    if (stale_count == ranked.size()) {
      // Total telemetry outage: the congestion terms are fiction. Degrade
      // to Nearest — rank by pure link delay (last-known-good estimates).
      std::stable_sort(ranked.begin(), ranked.end(), by_baseline);
    } else {
      // Partial outage: keep the metric's order within each class but
      // serve fresh paths first; stale ones trail as a last resort.
      std::stable_partition(ranked.begin(), ranked.end(),
                            [](const ServerRank& r) { return !r.stale; });
    }
  }
  return ranked;
}

void SchedulerService::on_request(const net::Packet& p) {
  const auto* req = dynamic_cast<const CandidateRequest*>(p.app.get());
  if (req == nullptr) return;
  ++queries_;

  auto resp = std::make_shared<CandidateResponse>();
  resp->query_id = req->query_id;
  resp->ranked = rank_for(req->device, req->metric, req->requirements);
  const sim::Bytes size = response_size(resp->ranked.size());
  stack_.send_datagram(p.src, net::kSchedulerPort, req->reply_port, size,
                       std::move(resp));
}

SchedulerClient::SchedulerClient(transport::HostStack& stack,
                                 core::NodeId scheduler)
    : stack_{stack}, scheduler_{scheduler} {
  reply_port_ = stack_.allocate_port();
  stack_.bind_udp(reply_port_,
                  [this](const net::Packet& p) { on_response(p); });
}

SchedulerClient::~SchedulerClient() {
  // Retry timers and the reply-port handler capture `this`; tear both
  // down so destroying a client with in-flight queries is safe.
  // Each cancel targets an independent timer; order-insensitive.
  // intsched-lint: allow(unordered-iter)
  for (auto& [id, pending] : pending_) {
    stack_.simulator().cancel(pending.retry_timer);
  }
  stack_.unbind_udp(reply_port_);
}

void SchedulerClient::query(RankingMetric metric, ResponseHandler handler,
                            std::vector<std::string> requirements) {
  const std::uint64_t id = next_id_++;
  Pending pending;
  pending.handler = std::move(handler);
  pending.metric = metric;
  pending.requirements = std::move(requirements);
  pending_.emplace(id, std::move(pending));
  send_request(id);
}

void SchedulerClient::send_request(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  ++p.attempts;
  ++sent_;
  if (p.attempts > 1) ++retries_;

  auto req = std::make_shared<CandidateRequest>();
  req->query_id = id;
  req->device = stack_.host().id();
  req->metric = p.metric;
  req->reply_port = reply_port_;
  req->requirements = p.requirements;
  stack_.send_datagram(scheduler_, reply_port_, net::kSchedulerPort,
                       kRequestSize, std::move(req));

  // Retry forever with exponential backoff (capped): a query lost to the
  // very congestion being measured must not strand the job.
  const sim::SimDuration delay = std::min(
      kRetryAfter * (std::int64_t{1} << std::min(p.attempts - 1, 4)),
      sim::SimDuration::secs(10));
  p.retry_timer = stack_.simulator().schedule_after(
      delay, [this, id] { send_request(id); });
}

void SchedulerClient::on_response(const net::Packet& p) {
  const auto* resp = dynamic_cast<const CandidateResponse*>(p.app.get());
  if (resp == nullptr) return;
  const auto it = pending_.find(resp->query_id);
  if (it == pending_.end()) return;  // duplicate or late response
  ++received_;
  ResponseHandler handler = std::move(it->second.handler);
  stack_.simulator().cancel(it->second.retry_timer);
  pending_.erase(it);
  handler(*resp);
}

}  // namespace intsched::core
