#include "intsched/core/rank_snapshot.hpp"


namespace intsched::core {

RankSnapshot::RankSnapshot(const NetworkMap& map, RankerConfig config)
    : map_{map},
      cfg_{std::move(config)},
      epoch_{map_.ingest_epoch()},
      graph_{map_.delay_graph()} {
  // Fix the slot set now, while the snapshot is still thread-private:
  // readers may fill slots concurrently but never add or remove them.
  for (const core::NodeId n : graph_.nodes()) {
    sp_slots_[n];
  }
}

const net::ShortestPaths* RankSnapshot::memoized_paths(
    core::NodeId origin) const {
  const auto it = sp_slots_.find(origin);
  if (it == sp_slots_.end()) return nullptr;
  const SpSlot& slot = it->second;
  // intsched-contract: allow(hot-lock): once-per-origin memo fill (§10)
  std::call_once(slot.once, [this, origin, &slot] {
    // intsched-contract: allow(hot-coldcall): sanctioned once-only fill
    slot.sp = net::dijkstra(graph_, origin);
    memo_fills_.fetch_add(1, std::memory_order_relaxed);
  });
  return &slot.sp;
}

std::vector<ServerRank> RankSnapshot::rank(
    core::NodeId origin, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now) const {
  if (const net::ShortestPaths* sp = memoized_paths(origin)) {
    // intsched-contract: allow(hot-coldcall): allocating overload contract
    return rank_candidates(map_, cfg_, *sp, candidates, metric, now);
  }
  // Origin unknown to the snapshot's graph (e.g. a device whose first
  // probe has not been ingested yet): compute locally, nothing to memoize.
  // intsched-contract: allow(hot-coldcall): unknown-origin miss, once per origin
  const net::ShortestPaths sp = net::dijkstra(graph_, origin);
  // intsched-contract: allow(hot-coldcall): allocating overload contract
  return rank_candidates(map_, cfg_, sp, candidates, metric, now);
}

}  // namespace intsched::core
