#pragma once

// Region-sharded scheduler state + two-level (metro) ranking — the
// metro-scale big brother of core::ConcurrentNetworkMap (DESIGN.md §11).
//
// A metro deployment (net::TopologyGen::ring_of_pods) has thousands of
// switches but strong locality: almost every link is intra-pod, and pods
// are delay-isolated (ring latency dominates any intra-pod path). A
// single flat NetworkMap makes every epoch's first rank() per origin pay
// a metro-wide Dijkstra. ShardedNetworkMap instead keeps one NetworkMap
// per region (pod) plus a small summary map holding only the
// cross-region links, snapshots each region independently (only regions
// whose telemetry actually moved are rebuilt — the others' RankSnapshots,
// Dijkstra memos included, are reused by pointer), and answers queries
// from an immutable MetroView in two levels: region-local shortest paths
// plus a summary-graph traversal whose nodes are only the border
// gateways.
//
// This header is a sanctioned concurrent component in the mold of
// concurrent_map.hpp: the atomics below are the published-view pointer
// (RCU-style read path) and the contention-free query counter.
// intsched-lint: allow-file(thread-share): concurrent facade by design;
//   see DESIGN.md §10-§11

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "intsched/core/contracts.hpp"
#include "intsched/core/network_map.hpp"
#include "intsched/core/rank_snapshot.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/core/thread_annot.hpp"
#include "intsched/net/topology_gen.hpp"

namespace intsched::core {

/// Executor hook for parallel region-snapshot rebuilds:
/// `fn(count, body)` must invoke `body(i)` exactly once for every
/// i in [0, count) — concurrently if it likes — and return only after all
/// calls completed. Results are written to index-addressed slots, so any
/// conforming executor (including plain serial) yields byte-identical
/// published views; exp::make_parallel_for adapts exp::SweepRunner.
/// Defined here (not in exp) so core does not depend upward.
using ParallelFor =
    std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

/// Static node -> region mapping the shards are keyed by. In the paper's
/// deployment shape this is provisioning data (which pod a device was
/// installed in), not something inferred from telemetry, so it is fixed
/// at construction.
class RegionAssignment {
 public:
  RegionAssignment() = default;
  RegionAssignment(std::vector<core::RegionId> by_node, core::RegionId count)
      : by_node_{std::move(by_node)}, count_{count} {}

  [[nodiscard]] static RegionAssignment from_topology(
      const net::GenTopology& topo);

  [[nodiscard]] core::RegionId region_of(core::NodeId n) const {
    if (!n.valid() || n.index() >= by_node_.size()) {
      return core::kNoRegion;
    }
    return by_node_[n.index()];
  }
  [[nodiscard]] core::RegionId count() const { return count_; }

 private:
  std::vector<core::RegionId> by_node_;
  core::RegionId count_{0};
};

struct ShardedMapConfig {
  NetworkMapConfig map{};
  RankerConfig ranker{};
  /// Runs the per-region snapshot rebuilds at publish time. Null = serial.
  ParallelFor rebuild_executor = nullptr;
};

/// Observability for MetroView::pick's region pruning.
struct PickStats {
  std::int64_t regions_considered = 0;
  std::int64_t regions_pruned = 0;
  std::int64_t candidates_scored = 0;
};

/// Immutable two-level ranking view over one publish epoch: per-region
/// RankSnapshots, a frozen copy of the cross-region summary map, and the
/// augmented summary graph (border links + per-region transit edges whose
/// costs are region shortest-path distances).
///
/// Thread-safety model mirrors RankSnapshot: everything is frozen at
/// construction except the per-origin query-context memo, which fills
/// lazily under a per-slot std::once_flag (slot set fixed at
/// construction). Region snapshots are shared with — and may outlive —
/// the publishing ShardedNetworkMap.
///
/// Determinism / exactness: rank() scores candidates with the same
/// rank_paths/estimator templates as the flat path, over paths assembled
/// from region + summary shortest paths. When regions are delay-isolated
/// and shortest paths are unique (TopologyGen's jitter regime), the
/// assembled path IS the flat shortest path and rank() agrees with the
/// flat ranking field-exactly; the general error bound is DESIGN.md §11.
class MetroView {
 public:
  /// Reusable buffers for the allocation-free query entry points
  /// (rank_into / pick_with). Every vector retains its capacity across
  /// calls — including the per-candidate path vectors inside `paths`,
  /// which are cleared element-wise rather than destroyed — so after a
  /// warm-up pass over the working set (origins seen, candidate counts
  /// seen), a query performs zero heap allocations (the hotpath-alloc
  /// lint + the serve allocation-counting test enforce this). One
  /// scratch per thread; never shared.
  struct RankScratch {
    /// Resolved candidate paths; grown monotonically, reused in place.
    std::vector<CandidatePath> paths;
    /// Summary-spine and region-segment scratch for path expansion.
    std::vector<core::NodeId> spine;
    std::vector<core::NodeId> seg;
    /// pick_with's region grouping: candidates tagged with their region
    /// and original position, sorted to form contiguous groups.
    struct Grouped {
      core::RegionId region = core::kNoRegion;
      std::size_t index = 0;
      core::NodeId server = core::kInvalidNode;
    };
    std::vector<Grouped> grouped;
    /// One entry per region group: admissible delay lower bound plus the
    /// group's [begin, end) range in `grouped`.
    struct GroupBound {
      sim::SimDuration bound = sim::SimDuration::max();
      core::RegionId region = core::kNoRegion;
      std::size_t begin = 0;
      std::size_t end = 0;
    };
    std::vector<GroupBound> order;
    /// rank_paths_into output buffer.
    std::vector<ServerRank> ranked;
  };

  MetroView(std::shared_ptr<const RegionAssignment> regions,
            std::vector<std::shared_ptr<const RankSnapshot>> region_snaps,
            std::shared_ptr<const NetworkMap> summary_map,
            std::vector<std::vector<core::NodeId>> borders_by_region,
            RankerConfig config, Epoch epoch);

  MetroView(const MetroView&) = delete;
  MetroView& operator=(const MetroView&) = delete;

  /// Two-level ranking, identical output contract to Ranker::rank /
  /// RankSnapshot::rank (best first, server-id tie-break, unreachable
  /// last with delay = max / bandwidth = 0).
  [[nodiscard]] INTSCHED_HOTPATH std::vector<ServerRank> rank(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const;

  /// rank() into caller-owned buffers: byte-identical output (rank() is
  /// a thin wrapper over this), but all working memory comes from
  /// `scratch` and `out`, so a warmed-up caller allocates nothing. This
  /// is the ServeFrontend entry point (DESIGN.md §13).
  INTSCHED_HOTPATH void rank_into(core::NodeId origin,
                                  const core::NodeId* candidates,
                                  std::size_t count, RankingMetric metric,
                                  sim::SimTime now, RankScratch& scratch,
                                  std::vector<ServerRank>& out) const;

  /// Best single candidate — exactly rank(...)[0] — but for the delay
  /// metric whole regions are pruned by lower bound (a region whose
  /// cheapest entry already costs more than the best full estimate seen
  /// cannot win), so most regions are never scored. `stats`, when
  /// non-null, reports how much work the pruning saved.
  [[nodiscard]] INTSCHED_HOTPATH std::optional<ServerRank> pick(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now,
      PickStats* stats = nullptr) const;

  /// pick() from caller-owned scratch — same answer, zero allocations
  /// once warm (the wrapper relationship mirrors rank/rank_into).
  [[nodiscard]] INTSCHED_HOTPATH std::optional<ServerRank> pick_with(
      core::NodeId origin, const core::NodeId* candidates, std::size_t count,
      RankingMetric metric, sim::SimTime now, RankScratch& scratch,
      PickStats* stats = nullptr) const;

  /// Publish epoch: the owning map's ingest epoch at publish time.
  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] core::RegionId region_count() const {
    return core::RegionId{static_cast<std::int32_t>(region_snaps_.size())};
  }
  /// Region snapshot (never null for a valid region id).
  [[nodiscard]] const RankSnapshot& region_snapshot(core::RegionId r) const {
    return *region_snaps_[r.index()];
  }
  [[nodiscard]] const NetworkMap& summary_map() const { return *summary_map_; }
  [[nodiscard]] const std::vector<core::NodeId>& borders_of(
      core::RegionId r) const {
    return borders_by_region_[r.index()];
  }
  [[nodiscard]] const RankerConfig& config() const { return cfg_; }

 private:
  /// Everything the two-level query path derives, per origin, memoized
  /// once: the origin's region, its region-local shortest paths (borrowed
  /// from the region snapshot's memo), and a Dijkstra run over the
  /// augmented summary graph with synthetic origin->border edges costed
  /// by the region-local distances.
  struct QueryContext {
    bool valid = false;
    core::RegionId region = core::kNoRegion;
    const net::ShortestPaths* sp0 = nullptr;
    net::ShortestPaths summary_sp;
  };
  struct CtxSlot {
    mutable std::once_flag once;
    mutable QueryContext ctx;
  };

  /// Adapter giving the rank_paths/estimate_* templates a NetworkMap-shaped
  /// query surface over the sharded state: same-region lookups hit the
  /// owning region snapshot's frozen map, cross-region link lookups hit
  /// the summary map, and per-device telemetry always lives in the
  /// device's region map (link_max_queue takes the egress port from the
  /// summary but the port's queue series from the region — the exact
  /// split flat ingest would have stored in one map).
  struct HierMap {
    const MetroView* view;
    [[nodiscard]] const NetworkMapConfig& config() const {
      return view->summary_map_->config();
    }
    [[nodiscard]] sim::SimDuration link_delay(core::NodeId from,
                                              core::NodeId to) const {
      return view->link_map(from, to).link_delay(from, to);
    }
    [[nodiscard]] std::int64_t device_max_queue(core::NodeId device,
                                                sim::SimTime now) const {
      return view->device_map(device).device_max_queue(device, now);
    }
    [[nodiscard]] double device_avg_queue(core::NodeId device,
                                          sim::SimTime now) const {
      return view->device_map(device).device_avg_queue(device, now);
    }
    [[nodiscard]] sim::SimDuration device_hop_latency(
        core::NodeId device, sim::SimTime now) const {
      return view->device_map(device).device_hop_latency(device, now);
    }
    [[nodiscard]] std::int64_t link_max_queue(core::NodeId from, core::NodeId to,
                                              sim::SimTime now) const {
      return view->hier_link_max_queue(from, to, now);
    }
    [[nodiscard]] bool path_stale(const std::vector<core::NodeId>& path,
                                  sim::SimTime now) const {
      return view->hier_path_stale(path, now);
    }
  };

  [[nodiscard]] bool valid_region(core::RegionId r) const {
    return r.valid() && r.index() < region_snaps_.size();
  }
  [[nodiscard]] const NetworkMap& region_map(core::RegionId r) const {
    return region_snaps_[r.index()]->map();
  }
  /// Map owning the directed link (region when both ends share one,
  /// summary otherwise).
  [[nodiscard]] const NetworkMap& link_map(core::NodeId from,
                                           core::NodeId to) const;
  /// Map owning the device's telemetry (its region; summary for
  /// region-less nodes).
  [[nodiscard]] const NetworkMap& device_map(core::NodeId device) const;
  [[nodiscard]] std::int64_t hier_link_max_queue(core::NodeId from,
                                                 core::NodeId to,
                                                 sim::SimTime now) const;
  [[nodiscard]] bool hier_path_stale(const std::vector<core::NodeId>& path,
                                     sim::SimTime now) const;

  /// Memoized query context for `origin` (nullptr when the origin is
  /// unknown to every region graph). Lock-free after the once-fill.
  [[nodiscard]] const QueryContext* query_context(core::NodeId origin) const;
  INTSCHED_COLDPATH void build_context(core::NodeId origin,
                                       QueryContext& ctx) const;

  /// Resolves one candidate to its concrete node path + baseline:
  /// region-local for same-region servers, otherwise cheapest entry
  /// border (summary distance + region distance, smallest border id on
  /// ties) with the summary path expanded through region snapshots.
  /// Writes into the reused `c` (path capacity retained); allocation-free
  /// once warm.
  void candidate_path_into(const QueryContext& ctx, core::NodeId origin,
                           core::NodeId server, CandidatePath& c,
                           RankScratch& scratch) const;
  void expand_summary_path_into(const QueryContext& ctx, core::NodeId origin,
                                core::NodeId border,
                                std::vector<core::NodeId>& out,
                                RankScratch& scratch) const;

  std::shared_ptr<const RegionAssignment> regions_;
  std::vector<std::shared_ptr<const RankSnapshot>> region_snaps_;
  std::shared_ptr<const NetworkMap> summary_map_;
  std::vector<std::vector<core::NodeId>> borders_by_region_;
  RankerConfig cfg_;
  Epoch epoch_ = Epoch::none();
  /// Summary delay graph + per-region transit edges (border -> border
  /// within a region, costed by region shortest-path distance).
  net::Graph summary_graph_;
  /// Which region a transit edge crosses, for path expansion. Ordered map:
  /// built deterministically, read-only afterwards.
  std::map<std::pair<core::NodeId, core::NodeId>, core::RegionId> transit_region_;
  /// Slot per node known to any region graph; ordered for deterministic
  /// construction, structure never mutated after it.
  std::map<core::NodeId, CtxSlot> ctx_slots_;
};

/// Region-sharded ConcurrentNetworkMap: ingest routes every learned link
/// and telemetry record to the owning shard under the writer lock, a
/// publish rebuilds only the region snapshots whose shard actually moved,
/// and rank()/pick() run lock-free over the published MetroView.
///
/// Equivalence contract (property-tested): for any report sequence,
/// rank() agrees with a flat ConcurrentNetworkMap fed the same reports —
/// field-exactly when regions are delay-isolated with unique shortest
/// paths, within the DESIGN.md §11 bound otherwise — and is byte-stable
/// across rebuild executors (serial, 2 threads, 8 threads).
class ShardedNetworkMap {
 public:
  explicit ShardedNetworkMap(RegionAssignment regions,
                             ShardedMapConfig config = {});

  ShardedNetworkMap(const ShardedNetworkMap&) = delete;
  ShardedNetworkMap& operator=(const ShardedNetworkMap&) = delete;

  /// Ingests one probe report and publishes a fresh view (freshness
  /// contract as ConcurrentNetworkMap::ingest).
  INTSCHED_COLDPATH void ingest(const telemetry::ProbeReport& report,
                                sim::SimTime now) INTSCHED_EXCLUDES(mutex_);

  /// Coalesces a burst into one critical section + one publish.
  INTSCHED_COLDPATH void ingest_batch(
      const std::vector<telemetry::ProbeReport>& reports,
      sim::SimTime now) INTSCHED_EXCLUDES(mutex_);

  /// Lock-free two-level ranking over the current view.
  [[nodiscard]] std::vector<ServerRank> rank(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const INTSCHED_EXCLUDES(mutex_);

  /// Lock-free best-candidate query with region pruning (MetroView::pick).
  [[nodiscard]] std::optional<ServerRank> pick(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now,
      PickStats* stats = nullptr) const INTSCHED_EXCLUDES(mutex_);

  /// Changes Algorithm 1's k and republishes (all regions rebuilt: cached
  /// state must never outlive the config it was computed under).
  INTSCHED_COLDPATH void set_k_factor(sim::SimDuration k)
      INTSCHED_EXCLUDES(mutex_);

  /// Currently published view; never null after construction.
  [[nodiscard]] std::shared_ptr<const MetroView> view() const {
    return view_.load(std::memory_order_acquire);
  }

  [[nodiscard]] core::RegionId region_count() const {
    return regions_->count();
  }
  /// Static provisioning lookup (no lock: the assignment is immutable).
  [[nodiscard]] core::RegionId region_of(core::NodeId n) const {
    return regions_->region_of(n);
  }
  [[nodiscard]] std::int64_t reports_ingested() const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t rejected_entries() const
      INTSCHED_EXCLUDES(mutex_);
  /// Region snapshots rebuilt over the map's lifetime — the sharding
  /// win: bounded by touched regions per publish, not region count.
  [[nodiscard]] std::int64_t region_snapshot_builds() const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t view_publishes() const INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t queries_served() const {
    return queries_.load();  // seq_cst: cold observability read
  }

 private:
  INTSCHED_COLDPATH void apply_report_locked(
      const telemetry::ProbeReport& report,
      sim::SimTime now) INTSCHED_REQUIRES(mutex_);
  /// Routes one directed link observation to its owning shard and tracks
  /// border membership for cross-region links.
  INTSCHED_COLDPATH void learn_pair_locked(
      core::NodeId from, core::NodeId to, std::int32_t out_port,
      sim::SimDuration delay_sample, sim::SimTime now)
      INTSCHED_REQUIRES(mutex_);
  INTSCHED_COLDPATH void publish_locked() INTSCHED_REQUIRES(mutex_);

  /// Deep-snapshots one region shard. Called from rebuild-executor worker
  /// threads while the publisher blocks holding mutex_: workers read
  /// disjoint guarded shards and the publisher cannot proceed (or
  /// mutate) until the executor returns, so the access is race-free but
  /// outside what the static analysis can model.
  [[nodiscard]] INTSCHED_COLDPATH std::shared_ptr<const RankSnapshot>
  build_region_snapshot(std::size_t r) const
      INTSCHED_NO_THREAD_SAFETY_ANALYSIS;

  std::shared_ptr<const RegionAssignment> regions_;
  ShardedMapConfig cfg_;
  mutable AnnotatedMutex mutex_;
  std::vector<NetworkMap> region_maps_ INTSCHED_GUARDED_BY(mutex_);
  NetworkMap summary_map_ INTSCHED_GUARDED_BY(mutex_);
  /// Sorted unique border nodes (endpoints of cross-region links) per
  /// region, grown as links are learned.
  std::vector<std::vector<core::NodeId>> borders_by_region_
      INTSCHED_GUARDED_BY(mutex_);
  /// Last published snapshot per region, reused while the shard's ingest
  /// epoch is unchanged.
  std::vector<std::shared_ptr<const RankSnapshot>> last_snaps_
      INTSCHED_GUARDED_BY(mutex_);
  std::shared_ptr<const NetworkMap> last_summary_ INTSCHED_GUARDED_BY(mutex_);
  Epoch last_summary_epoch_ INTSCHED_GUARDED_BY(mutex_) = Epoch::none();
  /// Per-report scratch: which shards the current report touched
  /// (regions, then summary at index region_count()).
  std::vector<char> touched_ INTSCHED_GUARDED_BY(mutex_);
  std::int64_t reports_ INTSCHED_GUARDED_BY(mutex_) = 0;
  std::int64_t rejected_ INTSCHED_GUARDED_BY(mutex_) = 0;
  std::int64_t snapshot_builds_ INTSCHED_GUARDED_BY(mutex_) = 0;
  std::int64_t publishes_ INTSCHED_GUARDED_BY(mutex_) = 0;
  /// Published view: written under mutex_ (release), read lock-free
  /// (acquire). Deliberately NOT GUARDED_BY — lock-free reads are the
  /// point; the atomic itself provides the ordering.
  std::atomic<std::shared_ptr<const MetroView>> view_;
  /// Contention-free query counter (relaxed bump on the hot path).
  mutable std::atomic<std::int64_t> queries_{0};
};

}  // namespace intsched::core
