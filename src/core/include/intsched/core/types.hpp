#pragma once

// Strong-typed identifiers and unit-exact time quantities — the "types as
// the analyzer" layer (DESIGN.md §12). Every quantity the scheduler's
// correctness rests on gets a distinct, zero-cost C++ type:
//
//   NodeId    a network address (hosts and switches)
//   ServerId  a candidate edge server (always *also* a node; convert
//             explicitly with node_of / server_at)
//   RegionId  a metro region / pod (the sharding unit)
//   Epoch     an ingest-epoch stamp (snapshot freshness ordering)
//   sim::SimDuration / sim::SimTime  (intsched/sim/time.hpp)
//
// The types carry no behaviour beyond comparison, hashing, and explicit
// access to the underlying representation: sizeof(NodeId) ==
// sizeof(std::int32_t) and every accessor is constexpr-inline, so the
// generated code is bit-identical to the raw-integer version (the
// BENCH_metro fingerprint gate proves it). What changes is what *fails to
// compile*: cross-tag conversion (a RegionId where a NodeId is due), raw
// integers in ID positions, and instant/duration mixups are all build
// errors now. This header is deliberately dependency-free apart from
// sim/time.hpp so every layer (net included) can sit on it.

#include <cstddef>
#include <cstdint>
#include <compare>
#include <functional>
#include <ostream>
#include <string>

#include "intsched/sim/time.hpp"

namespace intsched::core {

/// A tagged integer identifier. Distinct Tag types make distinct,
/// mutually-inconvertible ID types out of the same representation;
/// construction from the raw representation is explicit, and there is no
/// implicit conversion back (use value() / index()).
///
/// Mirrors a raw integer exactly: value-initialization yields id 0,
/// default-initialization leaves the value indeterminate, comparison and
/// hashing are those of the representation. IDs deliberately have no
/// arithmetic beyond ++ (dense id spaces are iterated; ids are never
/// added or scaled — do index math on raw integers, then wrap once).
template <typename Tag, typename Rep = std::int32_t>
class TaggedId {
 public:
  using rep = Rep;

  constexpr TaggedId() = default;
  explicit constexpr TaggedId(Rep v) : v_{v} {}

  /// The conventional "no such id" sentinel (-1).
  [[nodiscard]] static constexpr TaggedId invalid() {
    return TaggedId{Rep{-1}};
  }

  [[nodiscard]] constexpr Rep value() const { return v_; }
  /// The id as a container index. Callers guarantee non-negativity, same
  /// as the raw static_cast this replaces.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(v_);
  }
  [[nodiscard]] constexpr bool valid() const { return v_ >= Rep{0}; }

  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;

  /// Dense id spaces (node 0..n) are iterated; allow ++ but nothing else.
  constexpr TaggedId& operator++() {
    ++v_;
    return *this;
  }

  /// An id renders as its raw value; logs and reports are unchanged by
  /// the strong-type migration.
  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    return os << id.v_;
  }

 private:
  Rep v_;
};

/// Network address of a simulated node (host or switch). Doubles as the
/// L3 address: the simulator does not model ARP/DHCP.
using NodeId = TaggedId<struct NodeIdTag>;
/// A candidate edge server, as ranked and picked by the scheduler. Every
/// server is a node; the conversion is explicit (node_of / server_at) so
/// "which server" and "which network address" stay distinct in APIs.
using ServerId = TaggedId<struct ServerIdTag>;
/// Metro region (pod) index — the unit ShardedNetworkMap shards by.
using RegionId = TaggedId<struct RegionIdTag>;

inline constexpr NodeId kInvalidNode = NodeId::invalid();
inline constexpr ServerId kInvalidServer = ServerId::invalid();
inline constexpr RegionId kNoRegion = RegionId::invalid();

/// The network address a server answers at.
[[nodiscard]] constexpr NodeId node_of(ServerId s) {
  return NodeId{s.value()};
}
/// The server hosted at a node (callers assert the node is a server).
[[nodiscard]] constexpr ServerId server_at(NodeId n) {
  return ServerId{n.value()};
}

/// Ingest-epoch stamp: "state as of the Nth probe report". Epochs order
/// snapshots for the freshness contract (DESIGN.md §10); they are not
/// counts and carry no arithmetic. Default-constructed == none() (-1),
/// the conventional "before any publish" value.
class Epoch {
 public:
  constexpr Epoch() = default;
  explicit constexpr Epoch(std::int64_t v) : v_{v} {}

  /// The pre-first-publish sentinel (-1): compares less than any real
  /// epoch, so "stale until proven fresh" falls out of ordering.
  [[nodiscard]] static constexpr Epoch none() { return Epoch{-1}; }

  [[nodiscard]] constexpr std::int64_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ >= 0; }

  friend constexpr auto operator<=>(Epoch, Epoch) = default;

 private:
  std::int64_t v_ = -1;
};

[[nodiscard]] inline std::string to_string(Epoch e) {
  return std::to_string(e.value());
}

inline std::ostream& operator<<(std::ostream& os, Epoch e) {
  return os << e.value();
}

template <typename Tag, typename Rep>
[[nodiscard]] std::string to_string(TaggedId<Tag, Rep> id) {
  return std::to_string(id.value());
}

}  // namespace intsched::core

// Hash support: same bucket distribution as the raw representation (the
// identity on libstdc++), so swapping an int key for a TaggedId key
// changes no unordered-container layout.
template <typename Tag, typename Rep>
struct std::hash<intsched::core::TaggedId<Tag, Rep>> {
  std::size_t operator()(intsched::core::TaggedId<Tag, Rep> id) const {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct std::hash<intsched::core::Epoch> {
  std::size_t operator()(intsched::core::Epoch e) const {
    return std::hash<std::int64_t>{}(e.value());
  }
};
