#pragma once

// Hot-path contract annotations — the vocabulary of the whole-program
// contract analyzer (tools/lint/contracts.py, DESIGN.md §14).
//
// The serving path's latency bound ("lock-free, allocation-free from
// published MetroView snapshots", §13) used to be enforced only
// dynamically (the counting operator-new test) and file-locally (the
// detlint hotpath-alloc regex). These macros turn it into a declared,
// build-time-verifiable contract:
//
//   INTSCHED_HOTPATH   marks a per-decision entry point (or a helper
//                      that is itself part of the decision path). The
//                      analyzer walks the cross-TU call graph from every
//                      hot root and verifies nothing *transitively
//                      reachable* allocates, acquires a lock, blocks on
//                      I/O, reads the wall clock, or iterates a
//                      hash-ordered container.
//   INTSCHED_COLDPATH  marks a function that is deliberately outside
//                      the budget (registration, publish, growth). The
//                      annotation is a barrier *and* a tripwire: the
//                      analyzer never descends into a cold function, but
//                      a call edge from hot-reachable code into one is
//                      itself a finding (hot-coldcall) unless the call
//                      site carries a named suppression.
//
// Escape hatch, always naming the violated rule (unknown rule names are
// hard errors, unused suppressions are pruned by --strict-suppressions):
//
//   intsched-contract colon, then allow(RULE): why this site is sound
//   (spelled out here rather than shown verbatim so the analyzer does
//   not read this documentation line as a real suppression)
//
// on the offending line or the line directly above it.
//
// Compile-time cost: zero. Under Clang the macros expand to annotate
// attributes (so the libclang engine reads them from the AST); under
// every other compiler they expand to nothing and only the analyzer's
// textual engine sees the tokens. Either way no codegen changes — the
// BENCH_qps/BENCH_metro fingerprint gates prove annotating is
// behavior-preserving.

#if defined(__clang__)
#define INTSCHED_HOTPATH __attribute__((annotate("intsched::hotpath")))
#define INTSCHED_COLDPATH __attribute__((annotate("intsched::coldpath")))
#else
#define INTSCHED_HOTPATH
#define INTSCHED_COLDPATH
#endif
