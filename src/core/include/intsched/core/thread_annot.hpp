#pragma once

// Clang thread-safety (capability) annotations for the few types in this
// tree that are legitimately shared across threads. Under Clang with
// -Wthread-safety (the `thread-safety` CMake preset / INTSCHED_THREAD_SAFETY
// option) the compiler statically checks lock discipline: every access to an
// INTSCHED_GUARDED_BY member must happen while the named capability is held,
// INTSCHED_REQUIRES callees must be entered with it held, INTSCHED_EXCLUDES
// entry points must not be. Under GCC (and Clang without the flag) every
// macro expands to nothing, so the annotations are free documentation.
//
// The division of labour (DESIGN.md §9): these annotations catch
// lock-discipline violations at compile time, the `tsan` preset catches the
// dynamic races the static analysis cannot see, and detlint's concurrency
// rules (mutex-no-guard, raw-thread, atomic-ordering) keep new code inside
// this framework. Anything not annotated here is thread-confined by the
// simulator's single-threaded contract (detlint rule `thread-share`).
//
// This header *is* the sanctioned wrapper around the raw primitives, so it
// carries the lint suppressions every other file must not:
// intsched-lint: allow-file(thread-share): annotated wrapper over std::mutex
// intsched-lint: allow-file(mutex-no-guard): AnnotatedMutex IS the capability,
//   it guards nothing itself

#include <mutex>

#if defined(__clang__)
#define INTSCHED_THREAD_ANNOT(x) __attribute__((x))
#else
#define INTSCHED_THREAD_ANNOT(x)  // no-op outside Clang
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define INTSCHED_CAPABILITY(x) INTSCHED_THREAD_ANNOT(capability(x))
/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define INTSCHED_SCOPED_CAPABILITY INTSCHED_THREAD_ANNOT(scoped_lockable)
/// Member may only be accessed while holding the named capability.
#define INTSCHED_GUARDED_BY(x) INTSCHED_THREAD_ANNOT(guarded_by(x))
/// Pointee may only be accessed while holding the named capability.
#define INTSCHED_PT_GUARDED_BY(x) INTSCHED_THREAD_ANNOT(pt_guarded_by(x))
/// Function must be called with the capability held (and does not release).
#define INTSCHED_REQUIRES(...) \
  INTSCHED_THREAD_ANNOT(requires_capability(__VA_ARGS__))
#define INTSCHED_REQUIRES_SHARED(...) \
  INTSCHED_THREAD_ANNOT(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (held on return, not on entry).
#define INTSCHED_ACQUIRE(...) \
  INTSCHED_THREAD_ANNOT(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define INTSCHED_RELEASE(...) \
  INTSCHED_THREAD_ANNOT(release_capability(__VA_ARGS__))
/// Function acquires the capability only when returning `ret`.
#define INTSCHED_TRY_ACQUIRE(ret, ...) \
  INTSCHED_THREAD_ANNOT(try_acquire_capability(ret, __VA_ARGS__))
/// Function must be called with the capability NOT held (deadlock guard on
/// public entry points of types whose private helpers take the lock).
#define INTSCHED_EXCLUDES(...) \
  INTSCHED_THREAD_ANNOT(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define INTSCHED_RETURN_CAPABILITY(x) \
  INTSCHED_THREAD_ANNOT(lock_returned(x))
/// Escape hatch for code the analysis cannot model; every use must say why.
#define INTSCHED_NO_THREAD_SAFETY_ANALYSIS \
  INTSCHED_THREAD_ANNOT(no_thread_safety_analysis)

namespace intsched::core {

/// std::mutex with the capability attribute, so members can be declared
/// INTSCHED_GUARDED_BY(mutex_) and methods INTSCHED_REQUIRES(mutex_).
/// Same cost as a bare std::mutex; the annotations are compile-time only.
class INTSCHED_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() INTSCHED_ACQUIRE() { mutex_.lock(); }
  void unlock() INTSCHED_RELEASE() { mutex_.unlock(); }
  bool try_lock() INTSCHED_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// std::lock_guard over AnnotatedMutex, visible to the analysis: the scope
/// of a LockGuard is the scope in which guarded members may be touched.
class INTSCHED_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(AnnotatedMutex& mutex) INTSCHED_ACQUIRE(mutex)
      : mutex_{mutex} {
    mutex_.lock();
  }
  ~LockGuard() INTSCHED_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  AnnotatedMutex& mutex_;
};

}  // namespace intsched::core
