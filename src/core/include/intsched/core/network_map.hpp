#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "intsched/core/types.hpp"
#include "intsched/net/routing.hpp"
#include "intsched/sim/audit.hpp"
#include "intsched/sim/units.hpp"
#include "intsched/telemetry/collector.hpp"

namespace intsched::core {

/// Directed link key (learned from probe traversal order).
struct LinkKey {
  core::NodeId from = core::kInvalidNode;
  core::NodeId to = core::kInvalidNode;
  friend constexpr bool operator==(const LinkKey&, const LinkKey&) = default;
};
struct LinkKeyHash {
  std::size_t operator()(const LinkKey& k) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.from.value()))
         << 32) |
        static_cast<std::uint32_t>(k.to.value()));
  }
};

/// (device, egress port) key for per-port queue telemetry.
struct PortKey {
  core::NodeId device = core::kInvalidNode;
  std::int32_t port = -1;
  friend constexpr bool operator==(const PortKey&, const PortKey&) = default;
};
struct PortKeyHash {
  std::size_t operator()(const PortKey& k) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(k.device.value()))
         << 32) |
        static_cast<std::uint32_t>(k.port));
  }
};

struct NetworkMapConfig {
  /// Nominal per-hop capacity assumed by the bandwidth estimator. The
  /// paper's effective BMv2 rate.
  sim::DataRate nominal_capacity = sim::DataRate::megabits_per_second(20.0);
  /// Window over which max-queue reports are aggregated ("maximum observed
  /// queue size in the last probing interval"). Reports older than this
  /// are considered stale and ignored.
  sim::SimDuration queue_window = sim::SimDuration::millis(150);
  /// EWMA weight for new link-latency samples.
  double link_delay_alpha = 0.25;
  /// Used for links never measured (e.g. reverse direction of a host
  /// access link before symmetry kicks in).
  sim::SimDuration default_link_delay = sim::SimDuration::millis(10);
  /// A link whose latest measurement is older than this is *stale*: its
  /// delay estimate is still served (last known good) but link_stale /
  /// path_stale report it so rankers can deprioritize or fall back.
  /// Zero (the default) disables staleness tracking entirely — the seed's
  /// behaviour, where estimates never expire.
  sim::SimDuration link_staleness = sim::SimDuration::zero();
};

/// The scheduler's model of the network, built *exclusively* from INT probe
/// reports (paper §III-B): adjacency from the order of INT stack entries,
/// link delays from egress-timestamp differences, congestion from
/// collect-and-reset max-queue registers.
///
/// Threading: thread-confined, no internal locking — ingest mutates every
/// table. When probe ingest and ranking queries run on different threads
/// (the deployment shape), wrap it in core::ConcurrentNetworkMap instead
/// of sharing it directly (DESIGN.md Concurrency model).
class NetworkMap {
 public:
  explicit NetworkMap(NetworkMapConfig config = {}) : cfg_{config} {}

  /// Ingests one parsed probe. `now` is the scheduler-local arrival time.
  void ingest(const telemetry::ProbeReport& report, sim::SimTime now);

  // -- sharded ingest primitives --
  //
  // ingest() is built from these three steps. The region-sharded map
  // (core::ShardedNetworkMap) replays the same walk over a probe report
  // but routes each step to the owning shard (region map or cross-region
  // summary map), so flat and sharded ingest stay behaviourally identical
  // by construction rather than by parallel maintenance.

  /// Learns/updates one directed link: adjacency, egress port (when
  /// `out_port` >= 0), and the delay EWMA (a negative `delay_sample`
  /// means "traversed but unmeasured" — adjacency only).
  void learn_link(core::NodeId from, core::NodeId to, std::int32_t out_port,
                  sim::SimDuration delay_sample, sim::SimTime now);

  /// Records one INT stack entry's congestion telemetry (per-port queue,
  /// device max/avg queue, measured hop latency) for entry.device.
  /// Precondition: entry.device >= 0 (callers reject damaged entries).
  void record_entry_telemetry(const net::IntStackEntry& entry,
                              sim::SimTime now);

  /// Counts an entry discarded by a caller's sanity check.
  void note_rejected_entry() { ++rejected_; }

  /// Completes one report's ingest: bumps the epoch and (under
  /// INTSCHED_AUDIT) runs the consistency audit on its amortized
  /// schedule.
  void finish_ingest(sim::SimTime now);

  // -- topology queries --

  /// Inferred graph; edge costs are current link-delay estimates. Suitable
  /// for shortest-path ranking. Hosts appear once a probe from/to them has
  /// been seen.
  [[nodiscard]] const net::Graph& graph() const { return graph_; }

  /// Snapshot with up-to-date link-delay costs on every edge — what the
  /// rankers run Dijkstra over.
  [[nodiscard]] net::Graph delay_graph() const;

  [[nodiscard]] bool knows_node(core::NodeId n) const {
    return graph_.has_node(n);
  }
  [[nodiscard]] std::int64_t known_link_count() const {
    return static_cast<std::int64_t>(link_delay_.size());
  }

  /// Estimated one-way delay of a directed link; falls back to the reverse
  /// direction (symmetry), then to the configured default.
  [[nodiscard]] sim::SimDuration link_delay(core::NodeId from,
                                            core::NodeId to) const;

  /// Smoothed absolute deviation of the link-delay samples — the "jitter
  /// characteristics" the paper's probes capture (§III-A). Zero until two
  /// measurements exist.
  [[nodiscard]] sim::SimDuration link_jitter(core::NodeId from,
                                             core::NodeId to) const;

  /// Egress port of `from` facing `to`, if learned (-1 otherwise).
  [[nodiscard]] std::int32_t egress_port(core::NodeId from,
                                         core::NodeId to) const;

  // -- congestion queries --

  /// Max queue occupancy reported for the device within the freshness
  /// window ending at `now` (Algorithm 1's Q(h_i)). Zero when nothing
  /// fresh was reported — the paper's "assume uncongested" fallback.
  [[nodiscard]] std::int64_t device_max_queue(core::NodeId device,
                                              sim::SimTime now) const;

  /// Max queue for the directed link from->to: the per-port register if the
  /// port is known and fresh, otherwise the device-level value of `from`.
  [[nodiscard]] std::int64_t link_max_queue(core::NodeId from, core::NodeId to,
                                            sim::SimTime now) const;

  /// Window max of the (device, egress port) queue series when the series
  /// exists and its newest sample is still inside the freshness window;
  /// nullopt otherwise. This is link_max_queue's port-level branch,
  /// exposed so the two-level metro read path can consult the owning
  /// shard for port telemetry while taking the port number from the
  /// summary map.
  [[nodiscard]] std::optional<std::int64_t> fresh_port_max_queue(
      core::NodeId device, std::int32_t port, sim::SimTime now) const;

  /// Freshest mean occupancy (packets) reported for the device within the
  /// window — the alternative statistic the paper found inconclusive.
  [[nodiscard]] double device_avg_queue(core::NodeId device,
                                        sim::SimTime now) const;

  /// Max directly-measured in-device dwell time within the window — the
  /// hop latency a full INT deployment reports (ablation alternative to
  /// the paper's k * max_queue heuristic).
  [[nodiscard]] sim::SimDuration device_hop_latency(core::NodeId device,
                                                    sim::SimTime now) const;

  // -- staleness queries (all no-ops unless config.link_staleness > 0) --

  /// True when the directed link's telemetry (or its symmetric reverse)
  /// has not been refreshed within the staleness window ending at `now`.
  /// Links that were never measured at all count as stale.
  [[nodiscard]] bool link_stale(core::NodeId from, core::NodeId to,
                                sim::SimTime now) const;

  /// True when any hop of the node path is stale.
  [[nodiscard]] bool path_stale(const std::vector<core::NodeId>& path,
                                sim::SimTime now) const;

  [[nodiscard]] const NetworkMapConfig& config() const { return cfg_; }
  [[nodiscard]] std::int64_t reports_ingested() const { return reports_; }
  /// The map's ingest epoch: "state as of the Nth report". Equals
  /// Epoch{reports_ingested()} — the stamp published snapshots carry.
  [[nodiscard]] Epoch ingest_epoch() const { return Epoch{reports_}; }
  /// INT stack entries discarded by ingest sanity checks (invalid device
  /// ids); the report's remaining entries are still used.
  [[nodiscard]] std::int64_t rejected_entries() const { return rejected_; }

 private:
  struct QueueSeries {
    /// (report time, register value) as a monotonic max-deque: times
    /// ascend, values strictly descend, dominated samples (older and no
    /// larger than a newer one) are discarded at ingest, and entries older
    /// than the queue window are pruned. The window max is therefore the
    /// first fresh entry — an O(1) front read instead of an O(W) scan.
    std::deque<std::pair<sim::SimTime, std::int64_t>> samples;
  };

  /// Full-structure consistency walk, compiled in only under
  /// INTSCHED_AUDIT: every learned link references nodes present in the
  /// inferred graph, and no freshness stamp or telemetry sample postdates
  /// the newest ingest time seen. `high_water` is that newest time —
  /// ingest() accepts out-of-order timestamps (late stragglers), so the
  /// current call's `now` alone would be too strict a bound.
  ///
  /// The walk is O(links + telemetry series). At Fig.-4 scale that was
  /// cheap enough to run after *every* ingest, but on TopologyGen-sized
  /// maps (thousands of links) per-report walks make the audit preset
  /// quadratic in the probe stream. finish_ingest therefore audits every
  /// report only while the map is small (<= kAuditFullWalkMaxLinks) and
  /// switches to a deterministic 1-in-kAuditSparsePeriod schedule beyond
  /// that.
  void audit_invariants(sim::SimTime high_water) const;
  static constexpr std::int64_t kAuditFullWalkMaxLinks = 256;
  static constexpr std::int64_t kAuditSparsePeriod = 64;
  void record_queue(QueueSeries& series, sim::SimTime now,
                    std::int64_t value);
  [[nodiscard]] static std::int64_t max_in_window(const QueueSeries& series,
                                                  sim::SimTime cutoff);

  /// `now - window`, saturating instead of overflowing when the window is
  /// wider than the whole representable time range. All freshness
  /// comparisons go through this so they stay in SimTime space.
  [[nodiscard]] static sim::SimTime window_cutoff(sim::SimTime now,
                                                  sim::SimDuration window);

  struct DelayEstimate {
    sim::SimDuration value = sim::SimDuration::zero();
    /// EWMA of |sample - value| over measured samples.
    sim::SimDuration jitter = sim::SimDuration::zero();
    /// Ingest time of the newest real sample; meaningless until measured.
    sim::SimTime measured_at = sim::SimTime::zero();
    /// False while the estimate is only the configured default or a
    /// symmetry guess; measured values always beat unmeasured ones.
    bool measured = false;
  };

  NetworkMapConfig cfg_;
  net::Graph graph_;
  std::unordered_map<LinkKey, DelayEstimate, LinkKeyHash> link_delay_;
  std::unordered_map<LinkKey, std::int32_t, LinkKeyHash> link_port_;
  std::unordered_map<PortKey, QueueSeries, PortKeyHash> port_queue_;
  std::unordered_map<core::NodeId, QueueSeries> device_queue_;
  std::unordered_map<core::NodeId, QueueSeries> device_avg_queue_;  // x100
  std::unordered_map<core::NodeId, QueueSeries> device_hop_latency_;  // ns
  std::int64_t reports_ = 0;
  std::int64_t rejected_ = 0;
#if INTSCHED_AUDIT_ENABLED
  /// Newest `now` ever passed to ingest(); audit bookkeeping only.
  sim::SimTime audit_ingest_hw_ = sim::SimTime::nanoseconds(
      std::numeric_limits<std::int64_t>::min());
#endif
};

}  // namespace intsched::core
