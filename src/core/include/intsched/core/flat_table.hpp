#pragma once

// Flat open-addressing hash table keyed by a strong id (core::TaggedId),
// for the serving decision path (DESIGN.md §13). The std::unordered_map
// it replaces costs a pointer chase per bucket node and allocates per
// insert; FlatTable keeps every slot in one contiguous power-of-two
// array (the lnic INT-collector's flat state-table idiom), probes
// linearly, and never allocates on lookup — the one operation the
// million-QPS path runs. Inserts may grow the array and belong on the
// cold (registration) path only.
//
// Determinism: the layout depends on insertion order (linear probing),
// so the table deliberately exposes no iteration — callers that need an
// ordered walk keep their own sorted vector (ServeFrontend does). The
// hash is a fixed splitmix64-style mix of the id's raw value: identical
// across runs, platforms, and library versions.
//
// Keys use Id::invalid() (-1) as the empty-slot sentinel, so it cannot
// be stored. There is no erase: scheduler registries only grow.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "intsched/core/contracts.hpp"

namespace intsched::core {

template <typename Id, typename Value>
class FlatTable {
 public:
  /// Capacity is rounded up to a power of two; the table grows (cold
  /// path) when occupancy would exceed kMaxLoadPercent.
  explicit FlatTable(std::size_t initial_capacity = 16) {
    std::size_t cap = 8;
    while (cap < initial_capacity) cap *= 2;
    slots_.resize(cap);
  }

  /// Inserts or overwrites. Cold path: may rehash. The key must be valid;
  /// Id::invalid() is the empty-slot sentinel, so storing it would create
  /// a phantom slot every probe chain stops at — such inserts are
  /// rejected (no-op) rather than corrupting the table.
  INTSCHED_COLDPATH void insert_or_assign(Id key, Value value) {
    if (!key.valid()) return;
    if ((size_ + 1) * 100 > slots_.size() * kMaxLoadPercent) {
      grow();
    }
    Slot& s = slot_for(key);
    if (!s.key.valid()) {
      ++size_;
      s.key = key;
    }
    s.value = std::move(value);
  }

  /// Hot path: nullptr when absent. No allocation, no locks; probes a
  /// contiguous array with wrap-around.
  // intsched-lint: hot-path
  [[nodiscard]] INTSCHED_HOTPATH const Value* find(Id key) const {
    if (!key.valid()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    for (std::size_t probes = 0; probes <= mask; ++probes) {
      const Slot& s = slots_[i];
      if (!s.key.valid()) return nullptr;
      if (s.key == key) return &s.value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(Id key) const { return find(key) != nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Longest probe sequence any current key needs — observability for
  /// the clustering tests; lookups stay O(max_probe_length).
  [[nodiscard]] std::size_t max_probe_length() const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t worst = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].key.valid()) continue;
      const std::size_t home = mix(slots_[i].key) & mask;
      const std::size_t dist = (i + slots_.size() - home) & mask;
      worst = std::max(worst, dist + 1);
    }
    return worst;
  }

 private:
  static constexpr std::size_t kMaxLoadPercent = 70;

  struct Slot {
    Id key = Id::invalid();
    Value value{};
  };

  /// splitmix64 finalizer over the raw id value: cheap, fixed, and
  /// avalanche-mixing so dense sequential ids spread across the array.
  [[nodiscard]] static std::size_t mix(Id key) {
    auto h = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(key.value()));
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBULL;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }

  [[nodiscard]] Slot& slot_for(Id key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (slots_[i].key.valid() && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  INTSCHED_COLDPATH void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    size_ = 0;
    for (Slot& s : old) {
      if (!s.key.valid()) continue;
      Slot& dst = slot_for(s.key);
      dst.key = s.key;
      dst.value = std::move(s.value);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace intsched::core
