#pragma once

// Thread-safe facade over the scheduler's shared state, in two selectable
// shapes (DESIGN.md §9–§10). This header is a sanctioned concurrent
// component: the atomics below are the published-snapshot pointer (the
// RCU-style read path) and the contention-free query counter.
// intsched-lint: allow-file(thread-share): concurrent facade by design;
//   see DESIGN.md §10

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "intsched/core/network_map.hpp"
#include "intsched/core/rank_snapshot.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/core/thread_annot.hpp"

namespace intsched::core {

/// How ConcurrentNetworkMap arbitrates ingest vs. rank (A/B selectable;
/// both produce byte-identical rankings for the same ingest sequence).
enum class ConcurrencyMode : std::uint8_t {
  /// RCU-style: ingest builds an immutable RankSnapshot under the writer
  /// lock and publishes it with an atomic store; rank() loads the current
  /// snapshot and runs lock-free. Query throughput scales with reader
  /// threads; ingest pays the snapshot copy (amortize with ingest_batch).
  kSnapshot,
  /// One exclusive mutex over everything — the original facade, kept for
  /// A/B comparison and for write-dominant or memory-tight deployments.
  /// Reads serialize behind ingest *and* each other (Ranker's mutable
  /// epoch cache makes const rank() a write; see Ranker).
  kLockedFacade,
};

[[nodiscard]] const char* to_string(ConcurrencyMode mode);

/// Thread-safe facade over the scheduler's shared state: a NetworkMap fed
/// by concurrent probe ingest and a ranking engine answering concurrent
/// candidate queries. This is the deployment shape of the paper's
/// scheduler process (collector thread(s) ingesting INT reports while RPC
/// threads rank), and the one place in the tree where NetworkMap/Ranker
/// may be touched from more than one thread.
///
/// Locking model:
///  - kSnapshot (default): `mutex_` is a writer lock only — it serializes
///    ingest, snapshot publication, and the cold observability getters.
///    rank() never takes it: the query path is an atomic shared_ptr load,
///    a relaxed counter bump, and pure computation over the immutable
///    snapshot (RankSnapshot's docs spell out why that is race-free).
///  - kLockedFacade: every public method, including const readers, takes
///    `mutex_` exclusively — the PR-4 behaviour, preserved for A/B.
/// The -Wthread-safety build checks the lock discipline statically; the
/// tsan preset re-checks it dynamically on both paths.
class ConcurrentNetworkMap {
 public:
  explicit ConcurrentNetworkMap(NetworkMapConfig map_config = {},
                                RankerConfig ranker_config = {},
                                ConcurrencyMode mode = ConcurrencyMode::kSnapshot);

  ConcurrentNetworkMap(const ConcurrentNetworkMap&) = delete;
  ConcurrentNetworkMap& operator=(const ConcurrentNetworkMap&) = delete;

  [[nodiscard]] ConcurrencyMode mode() const { return mode_; }

  /// Ingests one parsed probe report (collector side). In snapshot mode
  /// this publishes a fresh snapshot before returning — the freshness
  /// contract rank() relies on.
  void ingest(const telemetry::ProbeReport& report, sim::SimTime now)
      INTSCHED_EXCLUDES(mutex_);

  /// Coalesces a probe burst into one ingest critical section and (in
  /// snapshot mode) a single snapshot publication instead of N — the
  /// collector's probing-interval batch maps onto exactly one RCU epoch.
  /// Equivalent to ingesting each report at `now` in vector order.
  void ingest_batch(const std::vector<telemetry::ProbeReport>& reports,
                    sim::SimTime now) INTSCHED_EXCLUDES(mutex_);

  /// Ranks `candidates` from `origin` at `now`, best first (query side).
  /// Lock-free in snapshot mode; takes the exclusive lock in locked mode.
  [[nodiscard]] std::vector<ServerRank> rank(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const INTSCHED_EXCLUDES(mutex_);

  /// Changes Algorithm 1's k for subsequent rankings. In snapshot mode
  /// this republishes immediately: without it, already-published
  /// snapshots would keep serving the old k until the next ingest.
  void set_k_factor(sim::SimDuration k) INTSCHED_EXCLUDES(mutex_);

  /// Currently published snapshot (snapshot mode; nullptr in locked
  /// mode). Callers may rank against it directly — it never mutates.
  [[nodiscard]] std::shared_ptr<const RankSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Current link-delay estimate (falls back like NetworkMap::link_delay).
  [[nodiscard]] sim::SimDuration link_delay(core::NodeId from, core::NodeId to)
      const INTSCHED_EXCLUDES(mutex_);

  [[nodiscard]] bool knows_node(core::NodeId node) const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t reports_ingested() const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t rejected_entries() const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t queries_served() const {
    return queries_.load();  // seq_cst: cold observability read
  }

 private:
  /// Shared ranking path for locked mode, entered with the lock held.
  [[nodiscard]] std::vector<ServerRank> rank_locked(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const INTSCHED_REQUIRES(mutex_);

  /// Builds a snapshot of the current map + ranker config and publishes
  /// it (release store). No-op in locked mode.
  void publish_locked() INTSCHED_REQUIRES(mutex_);

  const ConcurrencyMode mode_;
  mutable AnnotatedMutex mutex_;
  NetworkMap map_ INTSCHED_GUARDED_BY(mutex_);
  Ranker ranker_ INTSCHED_GUARDED_BY(mutex_);
  /// Published snapshot: written under mutex_ (release), read lock-free
  /// (acquire). Deliberately NOT GUARDED_BY — lock-free reads are the
  /// point; the atomic itself provides the ordering.
  std::atomic<std::shared_ptr<const RankSnapshot>> snapshot_;
  /// Contention-free query counter: relaxed fetch_add on the hot path so
  /// counting never serializes rankings (detlint atomic-ordering rule:
  /// relaxed is for exactly this counter-bump shape).
  mutable std::atomic<std::int64_t> queries_{0};
};

}  // namespace intsched::core
