#pragma once

#include <cstdint>
#include <vector>

#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/core/thread_annot.hpp"

namespace intsched::core {

/// Thread-safe facade over the scheduler's shared state: a NetworkMap fed
/// by concurrent probe ingest and a Ranker answering concurrent candidate
/// queries. This is the deployment shape of the paper's scheduler process
/// (collector thread(s) ingesting INT reports while RPC threads rank), and
/// the one place in the tree where NetworkMap/Ranker may be touched from
/// more than one thread.
///
/// Locking model — one exclusive AnnotatedMutex over both objects:
///  - NetworkMap::ingest mutates the graph, EWMAs, and queue windows.
///  - Ranker::rank is const but NOT read-only: its epoch path-cache
///    (delay-graph snapshot + per-origin Dijkstra memo) rebuilds lazily
///    inside const rank() calls. Two unsynchronized rank() calls race on
///    the cache even with no ingest in flight, so reads take the exclusive
///    lock too — a reader/writer lock would be unsound here, not merely
///    slower. The -Wthread-safety build enforces all of this statically;
///    the tsan preset re-checks it dynamically.
///
/// The single-threaded simulation hot paths keep using NetworkMap/Ranker
/// directly (zero locking); this facade is for genuinely concurrent
/// servers and for the TSan concurrency tests.
class ConcurrentNetworkMap {
 public:
  explicit ConcurrentNetworkMap(NetworkMapConfig map_config = {},
                                RankerConfig ranker_config = {})
      : map_{map_config}, ranker_{map_, std::move(ranker_config)} {}

  ConcurrentNetworkMap(const ConcurrentNetworkMap&) = delete;
  ConcurrentNetworkMap& operator=(const ConcurrentNetworkMap&) = delete;

  /// Ingests one parsed probe report (collector side).
  void ingest(const telemetry::ProbeReport& report, sim::SimTime now)
      INTSCHED_EXCLUDES(mutex_);

  /// Ranks `candidates` from `origin` at `now`, best first (query side).
  [[nodiscard]] std::vector<ServerRank> rank(
      net::NodeId origin, const std::vector<net::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const INTSCHED_EXCLUDES(mutex_);

  /// Current link-delay estimate (falls back like NetworkMap::link_delay).
  [[nodiscard]] sim::SimTime link_delay(net::NodeId from, net::NodeId to)
      const INTSCHED_EXCLUDES(mutex_);

  [[nodiscard]] bool knows_node(net::NodeId node) const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t reports_ingested() const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t rejected_entries() const
      INTSCHED_EXCLUDES(mutex_);
  [[nodiscard]] std::int64_t queries_served() const INTSCHED_EXCLUDES(mutex_);

 private:
  /// Shared ranking path, entered with the lock already held (also the
  /// hook for future batched ingest-then-rank operations that must not
  /// drop the lock between the two steps).
  [[nodiscard]] std::vector<ServerRank> rank_locked(
      net::NodeId origin, const std::vector<net::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const INTSCHED_REQUIRES(mutex_);

  mutable AnnotatedMutex mutex_;
  NetworkMap map_ INTSCHED_GUARDED_BY(mutex_);
  Ranker ranker_ INTSCHED_GUARDED_BY(mutex_);
  mutable std::int64_t queries_ INTSCHED_GUARDED_BY(mutex_) = 0;
};

}  // namespace intsched::core
