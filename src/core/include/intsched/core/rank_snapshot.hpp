#pragma once

// RCU-style immutable ranking snapshot: the lock-free read path of
// core::ConcurrentNetworkMap (DESIGN.md §10). An ingest (or ingest batch)
// builds one RankSnapshot under the writer lock and publishes it with an
// atomic shared_ptr store; rank() callers load the current snapshot and
// compute entirely over frozen state, so queries never contend with ingest
// or with each other.
//
// This header is one of the sanctioned concurrent components (alongside
// thread_annot.hpp and exp::SweepRunner), hence the file-wide suppression:
// the atomic here is a memo-fill counter (relaxed fetch_add bump) and the
// once_flags are the per-origin lazy-fill guards described below.
// intsched-lint: allow-file(thread-share): immutable snapshot shared across
//   reader threads by design; see DESIGN.md §10

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "intsched/core/contracts.hpp"
#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"

namespace intsched::core {

/// Epoch-stamped immutable snapshot of everything rank() consumes: a deep
/// copy of the NetworkMap (delay estimates, queue windows, staleness
/// stamps), the RankerConfig it was published under, the materialized
/// delay graph, and a per-origin shortest-path memo.
///
/// Thread-safety model — readable from any number of threads with zero
/// locks:
///  - The map copy and graph are frozen at construction and only ever
///    read (NetworkMap's const queries are genuinely read-only; the
///    Ranker's mutable cache is the reason the *locked* facade cannot
///    share const calls, and that cache does not exist here).
///  - The shortest-path memo fills lazily, guarded per origin by a
///    std::once_flag: the first query from an origin runs Dijkstra inside
///    call_once, every later query is a single synchronization-free read
///    after the flag's acquire fast path. A mutex-per-query would
///    re-serialize exactly the contention this type exists to remove; the
///    once-only guard pays synchronization only on the first fill.
///  - The slot *set* is fixed at construction (one slot per node known to
///    the graph), so no reader ever mutates the map structure itself.
///
/// Determinism: rank() must return byte-identical ServerRank vectors to
/// Ranker::rank() on the source map at the same epoch — both run the same
/// rank_candidates() over the same delay graph and Dijkstra results
/// (verified by tests/core/test_rank_snapshot.cpp).
class RankSnapshot {
 public:
  /// Deep-copies `map` (the caller holds whatever lock makes that read
  /// safe) and stamps the snapshot with the map's current ingest epoch.
  RankSnapshot(const NetworkMap& map, RankerConfig config);

  RankSnapshot(const RankSnapshot&) = delete;
  RankSnapshot& operator=(const RankSnapshot&) = delete;

  /// Pure ranking over the frozen state: no locks, no shared mutation
  /// beyond the once-only memo fill. Identical semantics to Ranker::rank.
  [[nodiscard]] INTSCHED_HOTPATH std::vector<ServerRank> rank(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const;

  /// Ingest epoch (NetworkMap::ingest_epoch) the snapshot was built
  /// at. The freshness contract: a rank() issued after ingest() of report
  /// N returns observes a snapshot with epoch() >= N.
  [[nodiscard]] Epoch epoch() const { return epoch_; }

  [[nodiscard]] const NetworkMap& map() const { return map_; }
  [[nodiscard]] const RankerConfig& config() const { return cfg_; }

  /// The frozen delay graph rank() runs Dijkstra over. The metro view
  /// (core::MetroView) augments a copy of its region snapshots' graphs, so
  /// it needs read access to the materialized edges.
  [[nodiscard]] const net::Graph& delay_graph() const { return graph_; }

  /// Memoized shortest paths from `origin` over the frozen graph, filling
  /// the slot on first use; nullptr when the origin is unknown to the
  /// graph. Same lock-free once-only contract as rank().
  [[nodiscard]] const net::ShortestPaths* paths_from(core::NodeId origin) const {
    return memoized_paths(origin);
  }

  /// Origins whose Dijkstra memo has been filled (observability for tests
  /// and benches; relaxed counter, exact only after threads quiesce).
  [[nodiscard]] std::int64_t memo_fills() const {
    return memo_fills_.load(std::memory_order_relaxed);  // intsched-lint: allow(atomic-ordering): quiescent counter read
  }

 private:
  /// One lazily-filled per-origin Dijkstra result. The members are
  /// mutable because filling happens inside const rank() — call_once
  /// provides the happens-before edge that makes the fill visible to
  /// every subsequent reader.
  struct SpSlot {
    mutable std::once_flag once;
    mutable net::ShortestPaths sp;
  };

  /// Memoized shortest paths for a known origin (nullptr when the origin
  /// is absent from the graph — callers fall back to a local run).
  [[nodiscard]] const net::ShortestPaths* memoized_paths(
      core::NodeId origin) const;

  NetworkMap map_;    ///< frozen deep copy; only const queries touch it
  RankerConfig cfg_;  ///< config the snapshot was published under
  Epoch epoch_ = Epoch::none();
  net::Graph graph_;  ///< delay graph materialized once at construction
  /// Slot per known node; ordered map for deterministic construction.
  std::map<core::NodeId, SpSlot> sp_slots_;
  mutable std::atomic<std::int64_t> memo_fills_{0};
};

}  // namespace intsched::core
