#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "intsched/core/scheduler_service.hpp"
#include "intsched/net/topology.hpp"
#include "intsched/sim/rng.hpp"

namespace intsched::core {

/// Which scheduling strategy an edge device runs. The INT variants query
/// the central scheduler; Nearest and Random are the paper's baselines and
/// decide locally (the paper assumes nearest nodes are precomputed, "no
/// runtime network topology mapping is required").
enum class PolicyKind : std::uint8_t {
  kIntDelay,
  kIntBandwidth,
  kNearest,
  kRandom,
};

[[nodiscard]] const char* to_string(PolicyKind kind);

/// Strategy interface: pick `count` servers for a job submitted by
/// `device`. Asynchronous because INT policies involve a network
/// round-trip to the scheduler.
class SelectionPolicy {
 public:
  using SelectionHandler = std::function<void(std::vector<core::NodeId>)>;

  virtual ~SelectionPolicy() = default;
  /// Picks `count` servers for `device`. `requirements` lists capabilities
  /// the servers must offer (heterogeneous-server extension; usually
  /// empty).
  virtual void select(core::NodeId device, std::int32_t count,
                      const std::vector<std::string>& requirements,
                      SelectionHandler handler) = 0;
  /// Convenience overload for requirement-free jobs.
  void select(core::NodeId device, std::int32_t count,
              SelectionHandler handler) {
    select(device, count, {}, std::move(handler));
  }
  [[nodiscard]] virtual PolicyKind kind() const = 0;
};

/// Network-aware selection through the scheduler service.
class IntPolicy : public SelectionPolicy {
 public:
  IntPolicy(SchedulerClient& client, RankingMetric metric)
      : client_{client}, metric_{metric} {}

  void select(core::NodeId device, std::int32_t count,
              const std::vector<std::string>& requirements,
              SelectionHandler handler) override;
  using SelectionPolicy::select;
  [[nodiscard]] PolicyKind kind() const override {
    return metric_ == RankingMetric::kDelay ? PolicyKind::kIntDelay
                                            : PolicyKind::kIntBandwidth;
  }

 private:
  SchedulerClient& client_;
  RankingMetric metric_;
};

/// Network-aware selection for a device co-located with the scheduler
/// (paper's Node 6 also submits tasks): ranks via a direct call instead of
/// a UDP round-trip.
class DirectIntPolicy : public SelectionPolicy {
 public:
  DirectIntPolicy(SchedulerService& service, RankingMetric metric)
      : service_{service}, metric_{metric} {}

  void select(core::NodeId device, std::int32_t count,
              const std::vector<std::string>& requirements,
              SelectionHandler handler) override;
  using SelectionPolicy::select;
  [[nodiscard]] PolicyKind kind() const override {
    return metric_ == RankingMetric::kDelay ? PolicyKind::kIntDelay
                                            : PolicyKind::kIntBandwidth;
  }

 private:
  SchedulerService& service_;
  RankingMetric metric_;
};

/// Always offloads to the statically closest servers (ground-truth
/// propagation delay, precomputed at startup).
class NearestPolicy : public SelectionPolicy {
 public:
  /// `servers` are the candidate edge servers; distances come from the
  /// ground-truth topology (link propagation delays).
  /// `capabilities` maps servers to what they offer (for the
  /// heterogeneous extension); omitted = every server satisfies anything.
  NearestPolicy(const net::Topology& topology,
                std::vector<core::NodeId> servers,
                std::unordered_map<core::NodeId, std::vector<std::string>>
                    capabilities = {});

  void select(core::NodeId device, std::int32_t count,
              const std::vector<std::string>& requirements,
              SelectionHandler handler) override;
  using SelectionPolicy::select;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kNearest;
  }

  /// The precomputed preference order for a device (nearest first).
  [[nodiscard]] const std::vector<core::NodeId>& order_for(
      core::NodeId device) const;

 private:
  [[nodiscard]] bool satisfies(core::NodeId server,
                               const std::vector<std::string>& reqs) const;

  std::vector<core::NodeId> servers_;
  std::unordered_map<core::NodeId, std::vector<core::NodeId>> order_;
  std::unordered_map<core::NodeId, std::vector<std::string>> capabilities_;
};

/// Uniformly random selection (the paper's load-balancing baseline).
class RandomPolicy : public SelectionPolicy {
 public:
  RandomPolicy(std::vector<core::NodeId> servers, sim::Rng rng,
               std::unordered_map<core::NodeId, std::vector<std::string>>
                   capabilities = {})
      : servers_{std::move(servers)},
        rng_{rng},
        capabilities_{std::move(capabilities)} {}

  void select(core::NodeId device, std::int32_t count,
              const std::vector<std::string>& requirements,
              SelectionHandler handler) override;
  using SelectionPolicy::select;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kRandom;
  }

 private:
  std::vector<core::NodeId> servers_;
  sim::Rng rng_;
  std::unordered_map<core::NodeId, std::vector<std::string>> capabilities_;
};

}  // namespace intsched::core
