#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/transport/host_stack.hpp"

namespace intsched::core {

class ShardedNetworkMap;

/// Edge-device query: "give me candidate edge servers ranked by <metric>".
struct CandidateRequest : net::AppMessage {
  std::uint64_t query_id = 0;
  core::NodeId device = core::kInvalidNode;
  RankingMetric metric = RankingMetric::kDelay;
  net::PortNumber reply_port = 0;
  /// Capabilities the job's tasks require (heterogeneous-server
  /// extension); servers missing any are excluded from the response.
  std::vector<std::string> requirements;
};

/// Periodic edge-server load report (compute-aware extension, paper §VI):
/// how many tasks the server is running plus has queued.
struct LoadReportMessage : net::AppMessage {
  core::NodeId server = core::kInvalidNode;
  std::int32_t outstanding_tasks = 0;
};

/// Scheduler reply: ranked candidates with both estimates (paper Fig. 1,
/// steps 3-4).
struct CandidateResponse : net::AppMessage {
  std::uint64_t query_id = 0;
  std::vector<ServerRank> ranked;
};

/// Compute-aware scheduling knobs (disabled by default: the paper's core
/// design is purely network-aware; §VI sketches this extension).
struct SchedulerConfig {
  bool compute_aware = false;
  /// Added to a candidate's delay key per outstanding task; bandwidth
  /// ranking divides the estimate by (1 + outstanding) instead.
  sim::SimDuration load_penalty = sim::SimDuration::millis(500);
  /// Load reports older than this are treated as "idle".
  sim::SimDuration load_staleness = sim::SimDuration::secs(3);
};

/// The central scheduler process (paper Fig. 1): terminates INT probes into
/// a NetworkMap, answers candidate queries from edge devices over UDP, and
/// owns the ranking engine.
class SchedulerService {
 public:
  SchedulerService(transport::HostStack& stack, RankerConfig ranker_config,
                   NetworkMapConfig map_config,
                   SchedulerConfig scheduler_config = {});

  /// Declares a node as a candidate edge server with the capabilities it
  /// offers. The service never returns the querying device itself as a
  /// candidate, nor servers missing a requested capability.
  void register_edge_server(core::NodeId server,
                            std::vector<std::string> capabilities = {});
  [[nodiscard]] const std::vector<core::NodeId>& edge_servers() const {
    return servers_;
  }

  /// Current believed outstanding-task count for a server (0 when no
  /// fresh report exists).
  [[nodiscard]] std::int32_t server_load(core::NodeId server) const;

  [[nodiscard]] NetworkMap& network_map() { return map_; }
  [[nodiscard]] const NetworkMap& network_map() const { return map_; }
  [[nodiscard]] Ranker& ranker() { return ranker_; }
  [[nodiscard]] telemetry::IntCollector& collector() { return collector_; }

  /// Routes the service through a region-sharded metro map (DESIGN.md
  /// §11): probe reports ingest into `metro` instead of the flat map, and
  /// rank_for answers from its two-level view. Pass nullptr to detach.
  /// The map must outlive the service (or a later detach); ownership
  /// stays with the caller — metro deployments share one
  /// ShardedNetworkMap across scheduler frontends.
  void attach_metro(ShardedNetworkMap* metro) { metro_ = metro; }
  [[nodiscard]] ShardedNetworkMap* metro() const { return metro_; }

  [[nodiscard]] std::int64_t queries_served() const { return queries_; }

  // -- graceful-degradation counters (advance only when the map's
  //    link_staleness window is enabled) --

  /// Ranked candidates whose path telemetry was stale at query time.
  [[nodiscard]] std::int64_t stale_lookups() const { return stale_lookups_; }
  /// Queries where staleness changed the ordering policy (fresh-first
  /// partition, or full Nearest fallback when everything was stale).
  [[nodiscard]] std::int64_t fallback_decisions() const { return fallbacks_; }

  /// Synchronous ranking entry point (also used by the UDP handler) —
  /// exposed for tests and for co-located schedulers.
  [[nodiscard]] std::vector<ServerRank> rank_for(
      core::NodeId device, RankingMetric metric,
      const std::vector<std::string>& requirements = {}) const;

 private:
  struct LoadInfo {
    std::int32_t outstanding = 0;
    sim::SimTime reported_at = sim::SimTime::zero();
  };

  void on_request(const net::Packet& p);
  void on_load_report(const LoadReportMessage& report);
  [[nodiscard]] bool satisfies(core::NodeId server,
                               const std::vector<std::string>& reqs) const;

  transport::HostStack& stack_;
  telemetry::IntCollector collector_;
  NetworkMap map_;
  Ranker ranker_;
  ShardedNetworkMap* metro_ = nullptr;  ///< non-owning; see attach_metro
  SchedulerConfig cfg_;
  std::vector<core::NodeId> servers_;
  std::unordered_map<core::NodeId, std::vector<std::string>> capabilities_;
  std::unordered_map<core::NodeId, LoadInfo> load_;
  std::int64_t queries_ = 0;
  // rank_for is const (callable from co-located read paths); the counters
  // are observability side-channels, hence mutable.
  mutable std::int64_t stale_lookups_ = 0;
  mutable std::int64_t fallbacks_ = 0;
};

/// Device-side stub: sends CandidateRequests and dispatches responses to
/// per-query callbacks, with timeout-based retry (requests ride UDP and can
/// be lost under the very congestion being measured).
class SchedulerClient {
 public:
  using ResponseHandler = std::function<void(const CandidateResponse&)>;

  SchedulerClient(transport::HostStack& stack, core::NodeId scheduler);
  ~SchedulerClient();
  SchedulerClient(const SchedulerClient&) = delete;
  SchedulerClient& operator=(const SchedulerClient&) = delete;

  void query(RankingMetric metric, ResponseHandler handler,
             std::vector<std::string> requirements = {});

  [[nodiscard]] std::int64_t queries_sent() const { return sent_; }
  [[nodiscard]] std::int64_t responses_received() const { return received_; }
  [[nodiscard]] std::int64_t retries() const { return retries_; }

 private:
  struct Pending {
    ResponseHandler handler;
    RankingMetric metric;
    std::vector<std::string> requirements;
    std::int32_t attempts = 0;
    sim::EventId retry_timer{};
  };

  void send_request(std::uint64_t id);
  void on_response(const net::Packet& p);

  transport::HostStack& stack_;
  core::NodeId scheduler_;
  net::PortNumber reply_port_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::int64_t sent_ = 0;
  std::int64_t received_ = 0;
  std::int64_t retries_ = 0;

  static constexpr sim::SimDuration kRetryAfter = sim::SimDuration::secs(1);
};

}  // namespace intsched::core
