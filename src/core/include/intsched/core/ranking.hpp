#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "intsched/core/contracts.hpp"
#include "intsched/core/network_map.hpp"
#include "intsched/net/routing.hpp"
#include "intsched/sim/units.hpp"

namespace intsched::core {

/// Which metric the scheduler ranks candidate edge servers by.
enum class RankingMetric : std::uint8_t { kDelay, kBandwidth };

[[nodiscard]] const char* to_string(RankingMetric metric);

/// One ranked candidate, as returned to edge devices: both estimates are
/// always filled so devices can run custom selection (the paper's "second
/// option").
struct ServerRank {
  core::NodeId server = core::kInvalidNode;
  sim::SimDuration delay_estimate = sim::SimDuration::zero();
  sim::DataRate bandwidth_estimate = sim::DataRate::bits_per_second(0.0);
  /// Pure link-delay sum of the chosen path (no queue terms): the Dijkstra
  /// distance. Survives congestion-telemetry loss, so it is the fallback
  /// key when the path's queue telemetry is stale (Nearest-style ranking).
  sim::SimDuration baseline_delay = sim::SimDuration::zero();
  /// Outstanding tasks the scheduler believes the server holds; only
  /// non-zero when the compute-aware extension is active.
  std::int32_t outstanding_tasks = 0;
  /// True when at least one hop of the path has stale telemetry (only ever
  /// set when the NetworkMap's link_staleness window is enabled).
  bool stale = false;
};

/// Piecewise-linear mapping from observed max queue occupancy to estimated
/// egress utilization (the Fig. 3 relationship, inverted). Clamped at the
/// table's ends.
class QueueToUtilization {
 public:
  struct Point {
    double max_queue_pkts;
    double utilization;  ///< in [0, 1]
  };

  /// Default calibration derived from this repo's own Fig. 3 reproduction:
  /// small standing queues appear near 50% utilization; tens of packets
  /// mean saturation.
  QueueToUtilization();
  explicit QueueToUtilization(std::vector<Point> points);

  [[nodiscard]] double utilization(std::int64_t max_queue_pkts) const;

 private:
  std::vector<Point> points_;  ///< sorted by max_queue_pkts
};

/// Which per-hop occupancy statistic Algorithm 1 consumes. The paper uses
/// the maximum ("we rely on maximum queue length value"); the average is
/// implemented for the ablation reproducing the paper's finding that it
/// "leads to inconclusive results".
enum class QueueStatistic : std::uint8_t {
  kMaximum,   ///< the paper's choice: k * max queue occupancy
  kAverage,   ///< the paper's rejected alternative: k * mean occupancy
  /// Directly measured max in-device dwell time (no k at all) — what a
  /// full INT deployment would supply.
  kMeasuredHopLatency,
};

struct RankerConfig {
  /// Algorithm 1's queue-occupancy-to-latency conversion factor k. The
  /// paper fixes k = 20 ms and notes it is a congestion-identification
  /// weight, deliberately large, rather than a calibrated per-packet
  /// queueing delay.
  sim::SimDuration k_factor = sim::SimDuration::millis(20);
  QueueStatistic queue_statistic = QueueStatistic::kMaximum;
  QueueToUtilization queue_to_utilization{};
};

/// One calibration observation: a queue occupancy and the end-to-end
/// delay inflation (over the idle baseline) seen at the same time.
struct KCalibrationSample {
  double max_queue_pkts = 0.0;
  // intsched-lint: allow(raw-unit): least-squares input, fractional ms
  double extra_delay_ms = 0.0;
};

/// Paper §III-C future work ("we leave its automation and fine-tuning as
/// a future work"): least-squares fit of extra_delay = k * max_queue
/// through the origin, from Fig.-3-style calibration measurements.
/// Returns the paper's default (20 ms) when the data carries no signal.
[[nodiscard]] sim::SimDuration estimate_k_factor(
    const std::vector<KCalibrationSample>& samples);

// -- pure ranking core (no hidden state) ------------------------------------
//
// Every input is explicit: the map, the config, and (for ranking) a
// precomputed shortest-path result. Ranker (which layers its mutable
// epoch cache on top), RankSnapshot (the lock-free read path), and
// MetroView (the two-level metro read path) all call these, so every
// path produces identical ServerRank vectors by construction rather than
// by parallel maintenance.
//
// The estimators are templates over a map-like type so the two-level
// path can substitute a hierarchical lookup (region shard + summary map,
// see sharded_map.hpp) while running the *same* arithmetic in the same
// order — the flat-vs-sharded equivalence property tests depend on
// bit-identical doubles, not just agreement in spirit. A MapLike
// provides NetworkMap's query surface: link_delay, device_max_queue,
// device_avg_queue, device_hop_latency, link_max_queue, path_stale, and
// config().

/// Algorithm 1 for a single path: sum of link-delay estimates plus
/// k * maxQueue (per cfg.queue_statistic) for every intermediate device.
template <typename MapLike>
[[nodiscard]] sim::SimDuration estimate_path_delay(
    const MapLike& map, const RankerConfig& cfg,
    const std::vector<core::NodeId>& path, sim::SimTime now) {
  assert(path.size() >= 2);
  sim::SimDuration total_link_delay = sim::SimDuration::zero();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total_link_delay += map.link_delay(path[i], path[i + 1]);
  }
  // Hops are the intermediate devices (switches) on the path.
  sim::SimDuration total_hop_delay = sim::SimDuration::zero();
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    switch (cfg.queue_statistic) {
      case QueueStatistic::kMaximum:
        total_hop_delay += cfg.k_factor * map.device_max_queue(path[i], now);
        break;
      case QueueStatistic::kAverage:
        total_hop_delay +=
            sim::SimDuration::nanos(static_cast<std::int64_t>(
                static_cast<double>(cfg.k_factor.ns()) *
                map.device_avg_queue(path[i], now)));
        break;
      case QueueStatistic::kMeasuredHopLatency:
        total_hop_delay += map.device_hop_latency(path[i], now);
        break;
    }
  }
  return total_link_delay + total_hop_delay;
}

/// §III-D: min over links of capacity * (1 - utilization(maxQueue)).
template <typename MapLike>
[[nodiscard]] sim::DataRate estimate_path_bandwidth(
    const MapLike& map, const RankerConfig& cfg,
    const std::vector<core::NodeId>& path, sim::SimTime now) {
  assert(path.size() >= 2);
  double min_bps = map.config().nominal_capacity.bps();
  // The first link is the origin host's own uplink; hosts are not
  // pps-bound, so per-link availability is charged from the first switch
  // onward (each directed link's headroom is its upstream device's egress).
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const std::int64_t q = map.link_max_queue(path[i], path[i + 1], now);
    const double util = cfg.queue_to_utilization.utilization(q);
    const double avail = map.config().nominal_capacity.bps() * (1.0 - util);
    min_bps = std::min(min_bps, avail);
  }
  return sim::DataRate::bits_per_second(min_bps);
}

/// One candidate with its already-resolved path: what rank_paths scores.
/// An empty path (or any with fewer than two nodes) means unreachable.
struct CandidatePath {
  core::NodeId server = core::kInvalidNode;
  std::vector<core::NodeId> path{};
  /// Pure link-delay distance of `path` (the Dijkstra distance).
  sim::SimDuration baseline_delay = sim::SimDuration::max();
};

/// Scores and sorts pre-resolved candidate paths into `out` (cleared
/// first), best first (ascending delay / descending bandwidth, server id
/// as the deterministic tie-break). Unreachable candidates rank last.
/// This is the single scoring + ordering implementation behind every
/// ranking entry point; the pointer+count surface (rather than a vector)
/// lets the serving path score a reused scratch prefix, and `out`
/// retains its capacity across calls so a warmed-up caller allocates
/// nothing (DESIGN.md §13).
template <typename MapLike>
INTSCHED_HOTPATH void rank_paths_into(const MapLike& map,
                                      const RankerConfig& cfg,
                                      const CandidatePath* candidates,
                                      std::size_t count, RankingMetric metric,
                                      sim::SimTime now,
                                      std::vector<ServerRank>& out) {
  out.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const CandidatePath& c = candidates[i];
    ServerRank r;
    r.server = c.server;
    if (c.path.size() < 2) {
      r.delay_estimate = sim::SimDuration::max();
      r.bandwidth_estimate = sim::DataRate::bits_per_second(0.0);
      r.baseline_delay = sim::SimDuration::max();
    } else {
      r.delay_estimate = estimate_path_delay(map, cfg, c.path, now);
      r.bandwidth_estimate = estimate_path_bandwidth(map, cfg, c.path, now);
      r.baseline_delay = c.baseline_delay;
      r.stale = map.path_stale(c.path, now);
    }
    out.push_back(r);
  }

  const auto by_delay = [](const ServerRank& a, const ServerRank& b) {
    if (a.delay_estimate != b.delay_estimate) {
      return a.delay_estimate < b.delay_estimate;
    }
    return a.server < b.server;
  };
  const auto by_bandwidth = [](const ServerRank& a, const ServerRank& b) {
    if (a.bandwidth_estimate != b.bandwidth_estimate) {
      return a.bandwidth_estimate > b.bandwidth_estimate;
    }
    return a.server < b.server;
  };
  if (metric == RankingMetric::kDelay) {
    std::sort(out.begin(), out.end(), by_delay);
  } else {
    std::sort(out.begin(), out.end(), by_bandwidth);
  }
}

/// Vector-returning convenience over rank_paths_into (same contract).
template <typename MapLike>
[[nodiscard]] INTSCHED_COLDPATH std::vector<ServerRank> rank_paths(
    const MapLike& map, const RankerConfig& cfg,
    const std::vector<CandidatePath>& candidates, RankingMetric metric,
    sim::SimTime now) {
  std::vector<ServerRank> out;
  out.reserve(candidates.size());
  rank_paths_into(map, cfg, candidates.data(), candidates.size(), metric, now,
                  out);
  return out;
}

/// Ranks `candidates` over precomputed shortest paths from the origin,
/// best first (ascending delay / descending bandwidth, server id as the
/// deterministic tie-break). Unreachable candidates rank last.
[[nodiscard]] INTSCHED_COLDPATH std::vector<ServerRank> rank_candidates(
    const NetworkMap& map, const RankerConfig& cfg,
    const net::ShortestPaths& sp, const std::vector<core::NodeId>& candidates,
    RankingMetric metric, sim::SimTime now);

/// The paper's scheduler-side ranking engine. Given the live NetworkMap it
/// computes, for an initiating edge node, the estimated end-to-end delay
/// (Algorithm 1) and bottleneck bandwidth (§III-D) to every candidate
/// server, and sorts by the requested metric.
class Ranker {
 public:
  Ranker(const NetworkMap& map, RankerConfig config = {})
      : map_{&map}, cfg_{std::move(config)} {}

  /// Ranks `candidates` as seen from `origin` at time `now`, best first
  /// (ascending delay, or descending bandwidth). Unreachable candidates
  /// rank last with delay = SimDuration::max() / bandwidth = 0.
  [[nodiscard]] std::vector<ServerRank> rank(
      core::NodeId origin, const std::vector<core::NodeId>& candidates,
      RankingMetric metric, sim::SimTime now) const;

  /// Algorithm 1 for a single path: sum of link-delay estimates plus
  /// k * maxQueue for every intermediate device.
  [[nodiscard]] sim::SimDuration path_delay_estimate(
      const std::vector<core::NodeId>& path, sim::SimTime now) const;

  /// §III-D: min over links of capacity * (1 - utilization(maxQueue)).
  [[nodiscard]] sim::DataRate path_bandwidth_estimate(
      const std::vector<core::NodeId>& path, sim::SimTime now) const;

  [[nodiscard]] const RankerConfig& config() const { return cfg_; }

  /// Changes Algorithm 1's k and invalidates the path cache: cached state
  /// must never outlive the config it was computed under, so the next
  /// rank() rebuilds from scratch instead of trusting an epoch match.
  /// (Today's cache contents — delay graph + Dijkstra memo — happen not
  /// to depend on k, but the invalidation contract is on the config as a
  /// whole; concurrent deployments additionally republish their snapshot,
  /// see ConcurrentNetworkMap::set_k_factor.)
  void set_k_factor(sim::SimDuration k) {
    cfg_.k_factor = k;
    cache_.epoch = Epoch::none();
    cache_.sp_by_origin.clear();
    cache_.edge_index.clear();
  }

  // -- path-cache observability (tests + micro benches) --

  /// Ingest epoch the cached delay-graph snapshot was built at
  /// (Epoch::none() before the first rank).
  [[nodiscard]] Epoch path_cache_epoch() const { return cache_.epoch; }
  [[nodiscard]] std::int64_t path_cache_hits() const { return cache_.hits; }
  [[nodiscard]] std::int64_t path_cache_misses() const {
    return cache_.misses;
  }
  /// Epoch changes absorbed incrementally (per-origin invalidation) vs by
  /// clearing the whole Dijkstra memo.
  [[nodiscard]] std::int64_t delta_refreshes() const {
    return cache_.delta_refreshes;
  }
  [[nodiscard]] std::int64_t full_rebuilds() const {
    return cache_.full_rebuilds;
  }
  /// Cached origins carried across delta refreshes vs dropped by the
  /// invalidation rule (cumulative over all refreshes).
  [[nodiscard]] std::int64_t origins_kept() const {
    return cache_.origins_kept;
  }
  [[nodiscard]] std::int64_t origins_dropped() const {
    return cache_.origins_dropped;
  }

 private:
  /// Epoch-invalidated snapshot of the map's delay graph plus memoized
  /// per-origin Dijkstra runs. The link-delay estimates feeding
  /// delay_graph() change only inside NetworkMap::ingest, and every ingest
  /// bumps reports_ingested(), so that counter is the cache epoch: reuse
  /// while it is unchanged, refresh the moment it moves. Congestion terms
  /// (queue windows) are *not* cached — they depend on the query's `now`
  /// and are recomputed on every rank.
  ///
  /// A refresh is *incremental*: the previous graph's edges are kept in
  /// `edge_index` (cost + egress port), the fresh delay graph is diffed
  /// against it, and only origins whose shortest-path result could be
  /// affected by a changed edge are dropped from the memo (see
  /// refresh_cache in ranking.cpp for the invalidation rule). On
  /// metro-scale maps where an ingest batch touches a handful of links,
  /// most origins keep their Dijkstra results across the epoch bump.
  struct PathCache {
    Epoch epoch = Epoch::none();
    net::Graph graph;
    std::map<core::NodeId, net::ShortestPaths> sp_by_origin;
    /// What we remember about each directed edge of `graph`, for diffing
    /// against the next epoch's delay graph.
    struct EdgeFacts {
      sim::SimDuration cost = sim::SimDuration::zero();
      std::int32_t port = -1;
    };
    std::unordered_map<LinkKey, EdgeFacts, LinkKeyHash> edge_index;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t delta_refreshes = 0;
    std::int64_t full_rebuilds = 0;
    std::int64_t origins_kept = 0;
    std::int64_t origins_dropped = 0;
  };

  /// Brings the cache to the map's current ingest epoch: no-op when the
  /// epoch is unchanged, otherwise an incremental (or, when the diff is
  /// large, full) refresh of the graph snapshot and Dijkstra memo.
  void refresh_cache() const;

  /// Shortest paths from `origin` over a delay-graph snapshot no older
  /// than the map's current ingest epoch.
  [[nodiscard]] const net::ShortestPaths& shortest_paths_from(
      core::NodeId origin) const;

  const NetworkMap* map_;
  RankerConfig cfg_;
  // rank() is const (callable from the scheduler's read path); the cache
  // is a performance side-channel, hence mutable. That also means const
  // rank() is NOT a read-only operation: concurrent rank() calls on a
  // shared Ranker race on this cache. Cross-thread use must go through
  // core::ConcurrentNetworkMap, whose exclusive lock covers both ingest
  // and rank (DESIGN.md Concurrency model).
  mutable PathCache cache_;
};

}  // namespace intsched::core
