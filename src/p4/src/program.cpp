#include "intsched/p4/program.hpp"

#include "intsched/p4/switch.hpp"

namespace intsched::p4 {

void ForwardingProgram::forward_toward(PipelineContext& ctx,
                                       core::NodeId target) {
  const auto port = ctx.device.forwarding_table().lookup(target);
  if (!port.has_value() || *port < 0) {
    ctx.drop = true;
    return;
  }
  ctx.egress_port = *port;
}

void ForwardingProgram::ingress(PipelineContext& ctx) {
  forward_toward(ctx, ctx.packet.dst);
}

}  // namespace intsched::p4
