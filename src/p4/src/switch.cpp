#include "intsched/p4/switch.hpp"

#include <stdexcept>

#include "intsched/sim/strfmt.hpp"

namespace intsched::p4 {

P4Switch::P4Switch(sim::Simulator& sim, core::NodeId id, std::string name,
                   const SwitchConfig& config)
    : net::Node(sim, id, std::move(name), net::NodeKind::kSwitch),
      config_{config},
      rng_{sim::Rng::derive(config.seed,
                            sim::cat("switch-", id, "-proc"))} {}

void P4Switch::load_program(std::unique_ptr<P4Program> program) {
  program_ = std::move(program);
  if (program_) program_->on_attach(*this);
}

RegisterArray& P4Switch::register_array(const std::string& name,
                                        std::int64_t size) {
  auto it = registers_.find(name);
  if (it == registers_.end()) {
    it = registers_
             .emplace(name, std::make_unique<RegisterArray>(name, size))
             .first;
  } else if (it->second->size() != size) {
    throw std::logic_error(
        sim::cat("register array '", name, "' re-allocated with size ", size,
                 " != ", it->second->size()));
  }
  return *it->second;
}

RegisterArray* P4Switch::find_register_array(const std::string& name) {
  const auto it = registers_.find(name);
  return it == registers_.end() ? nullptr : it->second.get();
}

void P4Switch::on_online_changed() {
  if (!online()) return;
  // Every array is zeroed independently; reset order cannot be observed.
  // intsched-lint: allow(unordered-iter)
  for (auto& entry : registers_) entry.second->reset_all();
}

void P4Switch::set_route(core::NodeId dst, std::int32_t port_index) {
  net::Node::set_route(dst, port_index);
  forwarding_table_.insert(dst, port_index);
}

void P4Switch::receive(net::Packet&& p, std::int32_t ingress_port) {
  if (program_ == nullptr) {
    throw std::logic_error(sim::cat("switch ", name(), " has no program"));
  }
  if (--p.ttl <= 0) {
    ++pipeline_drops_;
    return;
  }
  p.meta_ingress_port = ingress_port;
  p.meta_link_latency = sim::SimDuration::nanos(-1);

  PipelineContext ctx{.packet = p,
                      .device = *this,
                      .ingress_port = ingress_port,
                      .egress_port = -1,
                      .drop = false,
                      .now = local_time()};
  program_->parse(ctx);
  if (!ctx.drop) program_->ingress(ctx);
  if (ctx.drop || ctx.egress_port < 0 ||
      ctx.egress_port >= port_count()) {
    ++pipeline_drops_;
    return;
  }
  ++processed_;
  port(ctx.egress_port).send(std::move(p));
}

void P4Switch::on_egress(net::Packet& p, net::Port& out) {
  if (program_ == nullptr) return;
  PipelineContext ctx{.packet = p,
                      .device = *this,
                      .ingress_port = p.meta_ingress_port,
                      .egress_port = out.index(),
                      .drop = false,
                      .now = local_time()};
  program_->egress(ctx);
  program_->deparse(ctx);
}

sim::SimDuration P4Switch::egress_service_delay(const net::Packet& p,
                                            const net::Port& out) {
  (void)p;
  (void)out;
  const double jitter =
      rng_.uniform_real(-config_.proc_jitter_frac, config_.proc_jitter_frac);
  auto service = sim::SimDuration::nanos(static_cast<std::int64_t>(
      static_cast<double>(config_.proc_delay_mean.ns()) * (1.0 + jitter)));
  if (config_.stall_probability > 0.0 &&
      rng_.chance(config_.stall_probability)) {
    service += sim::SimDuration::nanos(
        rng_.uniform_int(config_.stall_min.ns(), config_.stall_max.ns()));
  }
  return service;
}

std::int64_t P4Switch::queue_drops() const {
  std::int64_t drops = 0;
  for (std::int32_t i = 0; i < port_count(); ++i) {
    drops += port(i).queue().dropped();
  }
  return drops;
}

}  // namespace intsched::p4
