#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "intsched/net/node.hpp"
#include "intsched/p4/program.hpp"
#include "intsched/p4/register_array.hpp"
#include "intsched/p4/table.hpp"
#include "intsched/sim/rng.hpp"

namespace intsched::p4 {

/// Models the BMv2 software switch's dominant performance trait: packet
/// processing, not link speed, is the bottleneck (paper footnote 3 — the
/// 20 Mbps ceiling "is solely because of BMv2"). Each forwarded packet
/// occupies the egress port for an extra service time drawn uniformly from
/// mean * [1-jitter, 1+jitter].
struct SwitchConfig {
  /// 480 us + ~120 us serialization at 100 Mbps gives ~1670 pkt/s for
  /// 1.5 KB packets — the paper's observed ~20 Mbps effective capacity.
  sim::SimDuration proc_delay_mean = sim::SimDuration::micros(480);
  /// Service time is uniform in mean * [1-f, 1+f]. Software switches are
  /// highly variable; the large default is what produces the paper's
  /// Fig.-3 queue build-up already at moderate utilization.
  double proc_jitter_frac = 0.8;
  /// Occasional long stalls (OS scheduling of the BMv2 process): each
  /// packet stalls with this probability for stall_min..stall_max extra.
  double stall_probability = 0.004;
  sim::SimDuration stall_min = sim::SimDuration::millis(5);
  sim::SimDuration stall_max = sim::SimDuration::millis(25);
  std::uint64_t seed = 1;
};

/// A P4-programmable switch node. Arriving packets run the loaded
/// program's parser + ingress stages, are enqueued on the chosen egress
/// port, and run egress + deparser as they leave the queue.
class P4Switch : public net::Node {
 public:
  P4Switch(sim::Simulator& sim, core::NodeId id, std::string name,
           const SwitchConfig& config = {});

  /// Loads a data-plane program. Must be called after all ports exist
  /// (i.e. after topology wiring) so on_attach can instrument the queues.
  void load_program(std::unique_ptr<P4Program> program);
  [[nodiscard]] P4Program* program() const { return program_.get(); }

  /// The L3 forwarding match-action table (dst node -> egress port).
  /// Populated automatically from route installation.
  [[nodiscard]] ExactMatchTable<core::NodeId, std::int32_t>&
  forwarding_table() {
    return forwarding_table_;
  }

  /// Allocates (or fetches) a named register array of the given size.
  RegisterArray& register_array(const std::string& name, std::int64_t size);
  [[nodiscard]] RegisterArray* find_register_array(const std::string& name);

  // -- Node interface --
  void receive(net::Packet&& p, std::int32_t ingress_port) override;
  void on_egress(net::Packet& p, net::Port& out) override;
  [[nodiscard]] sim::SimDuration egress_service_delay(
      const net::Packet& p, const net::Port& out) override;
  void set_route(core::NodeId dst, std::int32_t port_index) override;

  [[nodiscard]] std::int64_t processed_packets() const { return processed_; }
  [[nodiscard]] std::int64_t pipeline_drops() const { return pipeline_drops_; }
  [[nodiscard]] std::int64_t queue_drops() const;

 protected:
  /// Crash-restart semantics: register state does not survive a power
  /// cycle, so coming back online resets every register array to its
  /// initial value (the scheduler must cope with the telemetry gap).
  void on_online_changed() override;

 private:
  SwitchConfig config_;
  sim::Rng rng_;
  std::unique_ptr<P4Program> program_;
  ExactMatchTable<core::NodeId, std::int32_t> forwarding_table_;
  std::unordered_map<std::string, std::unique_ptr<RegisterArray>> registers_;
  std::int64_t processed_ = 0;
  std::int64_t pipeline_drops_ = 0;
};

}  // namespace intsched::p4
