#pragma once

#include <cstdint>

#include "intsched/net/packet.hpp"
#include "intsched/sim/time.hpp"

namespace intsched::p4 {

class P4Switch;

/// Per-packet pipeline state, the analogue of P4's standard_metadata plus
/// the parsed packet itself.
struct PipelineContext {
  net::Packet& packet;
  P4Switch& device;
  std::int32_t ingress_port = -1;
  std::int32_t egress_port = -1;  ///< set by the ingress control flow
  bool drop = false;
  sim::SimTime now;  ///< device-local time (includes modelled clock skew)
};

/// A data-plane program in the BMv2 architecture: Parser -> Ingress ->
/// (egress queueing) -> Egress -> Deparser. The switch invokes parse() and
/// ingress() on arrival, then egress() and deparse() as the packet leaves
/// its egress queue — exactly where the paper's INT program samples
/// registers into probe packets and applies egress timestamps.
class P4Program {
 public:
  virtual ~P4Program() = default;

  /// Called once when the program is loaded onto a switch, after all ports
  /// exist. Register allocation and queue instrumentation happen here.
  virtual void on_attach(P4Switch& device) { (void)device; }

  /// Parser stage: header validation/extraction. May mark the packet for
  /// drop on parse errors.
  virtual void parse(PipelineContext& ctx) { (void)ctx; }

  /// Ingress control flow: forwarding decision + ingress-side actions.
  virtual void ingress(PipelineContext& ctx) = 0;

  /// Egress control flow: runs when the packet leaves the egress queue.
  virtual void egress(PipelineContext& ctx) { (void)ctx; }

  /// Deparser: final packet reconstruction before serialization.
  virtual void deparse(PipelineContext& ctx) { (void)ctx; }
};

/// Baseline program: plain L3 forwarding through the match-action table,
/// no telemetry. Used by non-INT switches and as the base class for the
/// INT data-plane program.
class ForwardingProgram : public P4Program {
 public:
  void ingress(PipelineContext& ctx) override;

 protected:
  /// Sets ctx.egress_port toward `target` via the match-action table;
  /// marks the packet for drop when no entry exists.
  static void forward_toward(PipelineContext& ctx, core::NodeId target);
};

}  // namespace intsched::p4
