#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

namespace intsched::p4 {

/// An exact-match match-action table. Keys are looked up per packet; a hit
/// runs the bound action value, a miss runs the default action. This is the
/// P4 `table { key = { ... : exact; } actions = {...} }` shape; LPM is not
/// needed because the simulator's addresses are flat node ids.
template <typename Key, typename Value>
class ExactMatchTable {
 public:
  void insert(const Key& key, Value value) {
    entries_.insert_or_assign(key, std::move(value));
  }

  bool erase(const Key& key) { return entries_.erase(key) > 0; }

  void set_default(Value value) { default_ = std::move(value); }

  /// Looks the key up, falling back to the default entry; counts hits and
  /// misses like a hardware table would for telemetry.
  [[nodiscard]] std::optional<Value> lookup(const Key& key) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    return default_;
  }

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }

 private:
  std::unordered_map<Key, Value> entries_;
  std::optional<Value> default_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace intsched::p4
