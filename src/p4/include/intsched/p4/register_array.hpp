#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace intsched::p4 {

/// A P4 register extern: an array of stateful cells the data plane reads
/// and writes per packet. The INT program keeps one cell per egress port
/// (max queue occupancy since last collection) plus a device-wide cell —
/// the paper's "one register for each INT parameter".
class RegisterArray {
 public:
  RegisterArray(std::string name, std::int64_t size,
                std::int64_t initial = 0)
      : name_{std::move(name)},
        initial_{initial},
        cells_(static_cast<std::size_t>(size), initial) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(cells_.size());
  }

  [[nodiscard]] std::int64_t read(std::int64_t index) const {
    assert(index >= 0 && index < size());
    return cells_[static_cast<std::size_t>(index)];
  }

  void write(std::int64_t index, std::int64_t value) {
    assert(index >= 0 && index < size());
    cells_[static_cast<std::size_t>(index)] = value;
  }

  /// cells[index] = max(cells[index], value) — the INT program's
  /// per-packet update.
  void update_max(std::int64_t index, std::int64_t value) {
    assert(index >= 0 && index < size());
    auto& cell = cells_[static_cast<std::size_t>(index)];
    cell = std::max(cell, value);
  }

  /// Resets one cell to its initial value and returns the previous
  /// contents — the collect-and-reset a probe packet performs.
  std::int64_t collect(std::int64_t index) {
    assert(index >= 0 && index < size());
    auto& cell = cells_[static_cast<std::size_t>(index)];
    const std::int64_t value = cell;
    cell = initial_;
    return value;
  }

  void reset_all() { std::ranges::fill(cells_, initial_); }

 private:
  std::string name_;
  std::int64_t initial_;
  std::vector<std::int64_t> cells_;
};

}  // namespace intsched::p4
