#include "intsched/sim/event_queue.hpp"

#include <cassert>

#include "intsched/sim/audit.hpp"

namespace intsched::sim {

#if INTSCHED_AUDIT_ENABLED
void EventQueue::audit_check_owner() const {
  // intsched-lint: allow(thread-share): audit-only owner id, never shared
  const std::thread::id self = std::this_thread::get_id();
  // intsched-lint: allow(thread-share): default id() compare, as above
  if (audit_owner_ == std::thread::id{}) audit_owner_ = self;
  INTSCHED_AUDIT_ASSERT(
      audit_owner_ == self,
      "EventQueue touched from a second thread: the simulator and its "
      "queue are thread-confined (DESIGN.md Concurrency model); share "
      "state across trials only via explicitly thread-safe types");
}
#define INTSCHED_EQ_CHECK_OWNER() audit_check_owner()
#else
#define INTSCHED_EQ_CHECK_OWNER() \
  do {                            \
  } while (false)
#endif

EventId EventQueue::push(SimTime at, Callback cb) {
  INTSCHED_EQ_CHECK_OWNER();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Node& node = slab_[slot];
  ++node.gen;
  node.armed = true;
  node.cb = std::move(cb);
  heap_.push(HeapEntry{at, next_seq_++, slot, node.gen});
  ++live_;
  return encode(slot, node.gen);
}

bool EventQueue::cancel(EventId id) {
  INTSCHED_EQ_CHECK_OWNER();
  const std::uint64_t slot_plus_one = id.value >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slab_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  const auto gen = static_cast<std::uint32_t>(id.value);
  Node& node = slab_[slot];
  if (!node.armed || node.gen != gen) return false;
  // Tombstone: disarm and recycle now; the stale heap entry is skipped
  // when it reaches the front (its generation no longer matches).
  release_slot(slot);
  return true;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Node& node = slab_[slot];
  node.armed = false;
  node.cb = Callback{};
  free_slots_.push_back(slot);
  --live_;
}

void EventQueue::drop_dead_front() const {
  while (!heap_.empty() && !entry_live(heap_.top())) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_dead_front();
  assert(!heap_.empty() && "next_time() on empty queue");
  INTSCHED_AUDIT_ASSERT(!heap_.empty(),
                        "next_time() requires a pending event");
  return heap_.top().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  INTSCHED_EQ_CHECK_OWNER();
  drop_dead_front();
  assert(!heap_.empty() && "pop() on empty queue");
  INTSCHED_AUDIT_ASSERT(!heap_.empty(), "pop() requires a pending event");
  const HeapEntry entry = heap_.top();
  heap_.pop();
  INTSCHED_AUDIT_ASSERT(
      entry.at >= last_popped_,
      "event-queue time went backwards: a popped event predates an "
      "already-executed one");
  last_popped_ = entry.at;
  Callback cb = std::move(slab_[entry.slot].cb);
  release_slot(entry.slot);
  return {entry.at, std::move(cb)};
}

}  // namespace intsched::sim
