#include "intsched/sim/event_queue.hpp"

#include <cassert>

namespace intsched::sim {

EventId EventQueue::push(SimTime at, Callback cb) {
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

bool EventQueue::cancel(EventId id) { return callbacks_.erase(id.value) > 0; }

void EventQueue::drop_cancelled_front() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_front();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty() && "pop() on empty queue");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  return {entry.at, std::move(cb)};
}

}  // namespace intsched::sim
