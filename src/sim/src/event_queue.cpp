#include "intsched/sim/event_queue.hpp"

#include <cassert>

#include "intsched/sim/audit.hpp"

namespace intsched::sim {

EventId EventQueue::push(SimTime at, Callback cb) {
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

bool EventQueue::cancel(EventId id) { return callbacks_.erase(id.value) > 0; }

void EventQueue::drop_cancelled_front() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_front();
  assert(!heap_.empty() && "next_time() on empty queue");
  INTSCHED_AUDIT_ASSERT(!heap_.empty(),
                        "next_time() requires a pending event");
  return heap_.top().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty() && "pop() on empty queue");
  INTSCHED_AUDIT_ASSERT(!heap_.empty(), "pop() requires a pending event");
  const Entry entry = heap_.top();
  heap_.pop();
  INTSCHED_AUDIT_ASSERT(
      entry.at >= last_popped_,
      "event-queue time went backwards: a popped event predates an "
      "already-executed one");
  last_popped_ = entry.at;
  auto it = callbacks_.find(entry.id);
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  return {entry.at, std::move(cb)};
}

}  // namespace intsched::sim
