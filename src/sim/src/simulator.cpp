#include "intsched/sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "intsched/sim/audit.hpp"
#include "intsched/sim/strfmt.hpp"

namespace intsched::sim {

std::string to_string(SimTime t) {
  const double ns = static_cast<double>(t.ns());
  if (t.ns() % 1'000'000'000 == 0) return cat(t.ns() / 1'000'000'000, "s");
  if (ns >= 1e9 || ns <= -1e9) return cat(fixed(ns * 1e-9, 3), "s");
  if (ns >= 1e6 || ns <= -1e6) return cat(fixed(ns * 1e-6, 3), "ms");
  if (ns >= 1e3 || ns <= -1e3) return cat(fixed(ns * 1e-3, 3), "us");
  return cat(t.ns(), "ns");
}

std::string to_string(SimDuration d) {
  // A duration renders exactly like the instant at the same offset; the
  // types differ so arithmetic is checked, not so the formatting is.
  return to_string(SimTime::at(d));
}

struct PeriodicHandle::State {
  Simulator* sim = nullptr;
  SimDuration period;
  std::function<void()> cb;
  EventId pending;
  bool cancelled = false;
};

void PeriodicHandle::cancel() {
  if (!state_ || state_->cancelled) return;
  state_->cancelled = true;
  state_->sim->cancel(state_->pending);
}

bool PeriodicHandle::active() const { return state_ && !state_->cancelled; }

EventId Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  if (at < now_) {
    throw std::invalid_argument("schedule_at: time is in the past");
  }
  return queue_.push(at, std::move(cb));
}

EventId Simulator::schedule_after(SimDuration delay,
                                  EventQueue::Callback cb) {
  if (delay < SimDuration::zero()) {
    throw std::invalid_argument("schedule_after: negative delay");
  }
  return queue_.push(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

void Simulator::arm_periodic(
    const std::shared_ptr<PeriodicHandle::State>& state) {
  state->pending = schedule_after(state->period, [this, state] {
    if (state->cancelled) return;
    state->cb();
    if (!state->cancelled) arm_periodic(state);
  });
}

PeriodicHandle Simulator::schedule_periodic(SimDuration initial_delay,
                                            SimDuration period,
                                            std::function<void()> cb) {
  if (period <= SimDuration::zero()) {
    throw std::invalid_argument("schedule_periodic: period must be positive");
  }
  auto state = std::make_shared<PeriodicHandle::State>();
  state->sim = this;
  state->period = period;
  state->cb = std::move(cb);
  state->pending = schedule_after(initial_delay, [this, state] {
    if (state->cancelled) return;
    state->cb();
    if (!state->cancelled) arm_periodic(state);
  });
  return PeriodicHandle{state};
}

std::int64_t Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  std::int64_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    auto [at, cb] = queue_.pop();
    assert(at >= now_ && "event queue went backwards");
    INTSCHED_AUDIT_ASSERT(at >= now_,
                          "simulator clock must advance monotonically");
    now_ = at;
    cb();
    ++executed;
    ++events_executed_;
  }
  // The clock still advances to the deadline even if the queue drained
  // earlier, so back-to-back run_until calls observe monotonic time. A
  // drain-everything run (deadline == max) leaves the clock at the last
  // event instead.
  if (now_ < deadline && deadline != SimTime::max() && !stop_requested_) {
    now_ = deadline;
  }
  return executed;
}

std::int64_t Simulator::run() { return run_until(SimTime::max()); }

}  // namespace intsched::sim
