#include "intsched/sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace intsched::sim {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }
double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Ecdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Ecdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

std::int64_t Ecdf::count() const {
  return static_cast<std::int64_t>(samples_.size());
}

void Ecdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Ecdf::fraction_at_least(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

double Ecdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Ecdf::quantile on empty set");
  ensure_sorted();
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

const std::vector<double>& Ecdf::sorted() const {
  ensure_sorted();
  return samples_;
}

Histogram::Histogram(double lo, double hi, std::int64_t bins)
    : lo_{lo},
      width_{(hi - lo) / static_cast<double>(bins)},
      counts_(static_cast<std::size_t>(bins), 0) {
  if (bins <= 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) {
  auto bin = static_cast<std::int64_t>((x - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::int64_t Histogram::bin_count(std::int64_t bin) const {
  assert(bin >= 0 && bin < bins());
  return counts_[static_cast<std::size_t>(bin)];
}

double Histogram::bin_lower(std::int64_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::int64_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace intsched::sim
