#include "intsched/sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace intsched::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over the stream name, mixed into the master seed so that derived
/// streams are independent and stable across runs.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

Rng Rng::derive(std::uint64_t master_seed, std::string_view stream_name) {
  return Rng{master_seed ^ hash_name(stream_name)};
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** step.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double probability) { return uniform01() < probability; }

double Rng::exponential(double mean) {
  // Inverse transform; 1 - u avoids log(0).
  return -mean * std::log(1.0 - uniform01());
}

std::int64_t Rng::index(std::int64_t size) {
  assert(size > 0);
  return uniform_int(0, size - 1);
}

}  // namespace intsched::sim
