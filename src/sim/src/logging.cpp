#include "intsched/sim/logging.hpp"

#include <cstdio>

namespace intsched::sim {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }

LogLevel Log::level() { return g_level; }

void Log::write(LogLevel level, SimTime at, std::string_view component,
                std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] t=%s %.*s: %.*s\n", level_name(level),
               to_string(at).c_str(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace intsched::sim
