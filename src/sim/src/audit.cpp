#include "intsched/sim/audit.hpp"

#include <cstdio>
#include <cstdlib>

namespace intsched::sim::audit {

namespace {
// The simulator is single-threaded by design (see Simulator's class
// comment), so a plain counter is sufficient.
std::int64_t g_checks = 0;
}  // namespace

std::int64_t checks_executed() { return g_checks; }

namespace detail {

void note_check() { ++g_checks; }

void fail(const char* file, int line, const char* expr,
          const char* message) {
  std::fprintf(stderr,
               "\n[intsched-audit] invariant violated at %s:%d\n"
               "  check:   %s\n"
               "  meaning: %s\n",
               file, line, expr, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail

}  // namespace intsched::sim::audit
