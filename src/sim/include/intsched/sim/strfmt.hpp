#pragma once

#include <iomanip>
#include <sstream>
#include <string>

namespace intsched::sim {

/// Fixed-precision double wrapper for cat(): cat("x=", fixed(3.14159, 2)).
/// (The toolchain's libstdc++ predates <format>; this tiny shim covers the
/// project's formatting needs without an external dependency.)
struct Fixed {
  double value;
  int precision;
};
[[nodiscard]] inline Fixed fixed(double v, int precision = 3) {
  return Fixed{v, precision};
}

inline std::ostream& operator<<(std::ostream& os, const Fixed& f) {
  const auto flags = os.flags();
  const auto prec = os.precision();
  os << std::fixed << std::setprecision(f.precision) << f.value;
  os.flags(flags);
  os.precision(prec);
  return os;
}

/// Concatenates all arguments through an ostringstream.
template <typename... Args>
[[nodiscard]] std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace intsched::sim
