#pragma once

#include <cstdint>
#include <vector>

namespace intsched::sim {

/// Streaming moments (Welford) plus min/max; O(1) memory.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-reduction friendly).
  void merge(const RunningStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical cumulative distribution over a stored sample set.
class Ecdf {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::int64_t count() const;

  /// Fraction of samples <= x, in [0, 1]. Returns 0 for an empty set.
  [[nodiscard]] double fraction_at_most(double x) const;

  /// Fraction of samples >= x.
  [[nodiscard]] double fraction_at_least(double x) const;

  /// q-quantile, q in [0, 1], by nearest-rank. Requires count() > 0.
  [[nodiscard]] double quantile(double q) const;

  /// Sorted copy of the samples (for plotting/export).
  [[nodiscard]] const std::vector<double>& sorted() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin. Used for queue-occupancy and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::int64_t bins);

  void add(double x);

  [[nodiscard]] std::int64_t bins() const {
    return static_cast<std::int64_t>(counts_.size());
  }
  [[nodiscard]] std::int64_t bin_count(std::int64_t bin) const;
  [[nodiscard]] double bin_lower(std::int64_t bin) const;
  [[nodiscard]] double bin_upper(std::int64_t bin) const;
  [[nodiscard]] std::int64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace intsched::sim
