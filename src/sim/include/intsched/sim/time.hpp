#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace intsched::sim {

/// Simulated time. A strong wrapper over a signed 64-bit nanosecond count so
/// that durations and instants cannot be confused with plain integers.
///
/// The simulation epoch is SimTime::zero(); all event timestamps are
/// non-negative in practice, but arithmetic (differences) may produce
/// negative values, which is why the representation is signed
/// (Core Guidelines ES.102).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t ns) {
    return SimTime{ns};
  }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1'000};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000'000};
  }
  /// Converts a floating-point second count, e.g. from a rate computation.
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double to_microseconds() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t m) {
    return SimTime{a.ns_ * m};
  }
  friend constexpr SimTime operator*(std::int64_t m, SimTime a) { return a * m; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t d) {
    return SimTime{a.ns_ / d};
  }
  /// Ratio of two durations (e.g. elapsed / interval).
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Human-readable rendering with an auto-selected unit, e.g. "12.5ms".
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace intsched::sim
