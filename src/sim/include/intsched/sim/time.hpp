#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace intsched::sim {

/// A span of simulated time. Signed 64-bit nanosecond count with explicit
/// unit constructors; the duration half of the chrono-like
/// SimDuration/SimTime pair (DESIGN.md "types as the analyzer").
///
/// Durations and instants are distinct types on purpose: link delays,
/// queue windows, probing intervals, and k-factors are durations; event
/// timestamps are instants. Adding two instants, or passing a raw ns
/// count where a duration is expected, no longer compiles.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  [[nodiscard]] static constexpr SimDuration zero() { return SimDuration{0}; }
  [[nodiscard]] static constexpr SimDuration max() {
    return SimDuration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] static constexpr SimDuration nanos(std::int64_t ns) {
    return SimDuration{ns};
  }
  [[nodiscard]] static constexpr SimDuration micros(std::int64_t us) {
    return SimDuration{us * 1'000};
  }
  [[nodiscard]] static constexpr SimDuration millis(std::int64_t ms) {
    return SimDuration{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr SimDuration secs(std::int64_t s) {
    return SimDuration{s * 1'000'000'000};
  }
  // Long-form spellings, for symmetry with SimTime's factories.
  [[nodiscard]] static constexpr SimDuration nanoseconds(std::int64_t ns) {
    return nanos(ns);
  }
  [[nodiscard]] static constexpr SimDuration microseconds(std::int64_t us) {
    return micros(us);
  }
  [[nodiscard]] static constexpr SimDuration milliseconds(std::int64_t ms) {
    return millis(ms);
  }
  [[nodiscard]] static constexpr SimDuration seconds(std::int64_t s) {
    return secs(s);
  }
  /// Converts a floating-point second count, e.g. from a rate computation.
  [[nodiscard]] static constexpr SimDuration from_seconds(double s) {
    return SimDuration{static_cast<std::int64_t>(s * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double to_microseconds() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration{a.ns_ + b.ns_};
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration{a.ns_ - b.ns_};
  }
  constexpr SimDuration operator-() const { return SimDuration{-ns_}; }
  constexpr SimDuration& operator+=(SimDuration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t m) {
    return SimDuration{a.ns_ * m};
  }
  friend constexpr SimDuration operator*(std::int64_t m, SimDuration a) {
    return a * m;
  }
  friend constexpr SimDuration operator/(SimDuration a, std::int64_t d) {
    return SimDuration{a.ns_ / d};
  }
  /// Ratio of two durations (e.g. elapsed / interval).
  friend constexpr double operator/(SimDuration a, SimDuration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  explicit constexpr SimDuration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// An instant of simulated time: a point on the simulation clock, measured
/// as a signed 64-bit nanosecond offset from the epoch SimTime::zero().
///
/// The algebra is chrono-like and deliberately closed:
///   instant - instant  -> SimDuration
///   instant +- duration -> instant
/// Instants cannot be added, scaled, or divided — those operations only
/// make sense on durations, and requesting them is a unit bug the compiler
/// now rejects. Event timestamps are non-negative in practice, but
/// differences may be negative, which is why the representation is signed
/// (Core Guidelines ES.102).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime min() {
    return SimTime{std::numeric_limits<std::int64_t>::min()};
  }

  // Absolute-instant factories: "N units after the simulation epoch".
  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t ns) {
    return SimTime{ns};
  }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1'000};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) {
    return SimTime{s * 1'000'000'000};
  }
  /// Converts a floating-point second count, e.g. from a rate computation.
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  /// The instant `d` after the simulation epoch.
  [[nodiscard]] static constexpr SimTime at(SimDuration d) {
    return SimTime{d.ns()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  /// Offset from the simulation epoch, as a duration.
  [[nodiscard]] constexpr SimDuration since_epoch() const {
    return SimDuration::nanos(ns_);
  }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr double to_microseconds() const {
    return static_cast<double>(ns_) * 1e-3;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime{t.ns_ + d.ns()};
  }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) {
    return t + d;
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime{t.ns_ - d.ns()};
  }
  constexpr SimTime& operator+=(SimDuration d) {
    ns_ += d.ns();
    return *this;
  }
  constexpr SimTime& operator-=(SimDuration d) {
    ns_ -= d.ns();
    return *this;
  }

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Human-readable rendering with an auto-selected unit, e.g. "12.5ms".
[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(SimDuration d);

}  // namespace intsched::sim
