#pragma once

#include <string>
#include <string_view>

#include "intsched/sim/strfmt.hpp"
#include "intsched/sim/time.hpp"

namespace intsched::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log sink for simulation diagnostics. Off above kWarn by
/// default so experiment binaries print only their tables; tests flip it on
/// when debugging.
class Log {
 public:
  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Emits one line: "[level] t=<simtime> <component>: <message>".
  static void write(LogLevel level, SimTime at, std::string_view component,
                    std::string_view message);

  /// Streams all message arguments together, e.g.
  /// Log::log(LogLevel::kDebug, now, "tcp", "cwnd=", cwnd).
  template <typename... Args>
  static void log(LogLevel lvl, SimTime at, std::string_view component,
                  Args&&... args) {
    if (lvl < level()) return;
    write(lvl, at, component, cat(std::forward<Args>(args)...));
  }
};

}  // namespace intsched::sim
