#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "intsched/sim/event_queue.hpp"
#include "intsched/sim/time.hpp"

namespace intsched::sim {

class Simulator;

/// Cancellable handle to a periodic timer created by
/// Simulator::schedule_periodic.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// Stops future firings. Safe to call multiple times.
  void cancel();

  [[nodiscard]] bool active() const;

 private:
  friend class Simulator;
  struct State;
  explicit PeriodicHandle(std::shared_ptr<State> state)
      : state_{std::move(state)} {}
  std::shared_ptr<State> state_;
};

/// The discrete-event simulation kernel: a virtual clock plus an event
/// queue. Single-threaded by design — determinism is a correctness
/// requirement for paired experiment arms, and the workloads here are far
/// below the scale where a parallel DES (optimistic/conservative) would pay
/// for its synchronization.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at the absolute time `at`. `at` must not be in the past.
  EventId schedule_at(SimTime at, EventQueue::Callback cb);

  /// Schedules `cb` after the given delay (>= 0) from now.
  EventId schedule_after(SimDuration delay, EventQueue::Callback cb);

  /// Cancels a pending one-shot event.
  bool cancel(EventId id);

  /// Fires `cb` every `period` starting at now + `initial_delay`, until the
  /// returned handle is cancelled or the simulation ends.
  PeriodicHandle schedule_periodic(SimDuration initial_delay,
                                   SimDuration period,
                                   std::function<void()> cb);

  /// Runs until the event queue drains or the clock passes `deadline`.
  /// Events at exactly `deadline` still fire. Returns the number of events
  /// executed.
  std::int64_t run_until(SimTime deadline);

  /// Runs until the event queue drains.
  std::int64_t run();

  /// Requests that the run loop stop after the current event.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::int64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  void arm_periodic(const std::shared_ptr<PeriodicHandle::State>& state);

  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::int64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace intsched::sim
