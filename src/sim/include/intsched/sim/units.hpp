#pragma once

#include <cstdint>
#include <compare>

#include "intsched/sim/time.hpp"

namespace intsched::sim {

/// Byte counts are signed (ES.102); negative values never occur in valid
/// states and are caught by assertions at construction sites.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
/// The paper speaks in KB/MB (decimal) for workload sizes.
inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kMB = 1000 * kKB;

/// Transmission rate of a link or a constant-bit-rate source.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bits_per_second(double bps) {
    return DataRate{bps};
  }
  [[nodiscard]] static constexpr DataRate kilobits_per_second(double kbps) {
    return DataRate{kbps * 1e3};
  }
  [[nodiscard]] static constexpr DataRate megabits_per_second(double mbps) {
    return DataRate{mbps * 1e6};
  }

  [[nodiscard]] constexpr double bps() const { return bits_per_sec_; }
  [[nodiscard]] constexpr double mbps() const { return bits_per_sec_ * 1e-6; }

  /// Time to serialize `size` bytes onto a medium at this rate.
  [[nodiscard]] constexpr SimDuration transmission_time(Bytes size) const {
    return SimDuration::from_seconds(static_cast<double>(size) * 8.0 /
                                     bits_per_sec_);
  }
  /// Bytes transferable in `window` at this rate.
  [[nodiscard]] constexpr Bytes bytes_in(SimDuration window) const {
    return static_cast<Bytes>(bits_per_sec_ * window.to_seconds() / 8.0);
  }

  friend constexpr auto operator<=>(DataRate, DataRate) = default;
  friend constexpr DataRate operator*(DataRate r, double f) {
    return DataRate{r.bits_per_sec_ * f};
  }
  friend constexpr DataRate operator*(double f, DataRate r) { return r * f; }
  friend constexpr double operator/(DataRate a, DataRate b) {
    return a.bits_per_sec_ / b.bits_per_sec_;
  }

 private:
  explicit constexpr DataRate(double bps) : bits_per_sec_{bps} {}
  double bits_per_sec_ = 0.0;
};

}  // namespace intsched::sim
