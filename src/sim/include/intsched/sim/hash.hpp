#pragma once

#include <cstdint>

namespace intsched::sim {

/// Incremental FNV-1a (64-bit): a tiny, dependency-free, machine-stable
/// fingerprint for experiment results. Benches hash the sequence of
/// integer decisions (chosen server ids, delay estimates in ns) so two
/// runs — or two arms of the same run — can assert byte-identical
/// behaviour with a single number instead of gigabytes of logs.
///
/// Only feed it integers. Hashing doubles directly would tie fingerprints
/// to bit patterns that are stable in practice but harder to reason
/// about; the delay metric's integer arithmetic (SimTime ns) is exact.
class Fnv1a64 {
 public:
  void add(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffU;
      hash_ *= 1099511628211ULL;
    }
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

}  // namespace intsched::sim
