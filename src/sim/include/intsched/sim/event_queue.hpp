#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "intsched/sim/time.hpp"

namespace intsched::sim {

/// Opaque handle to a scheduled event; used to cancel it.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so
/// the simulation is fully deterministic: two events scheduled for the same
/// instant fire in the order they were scheduled.
///
/// Cancellation is lazy: cancelled ids are dropped from the callback map and
/// their heap entries are skipped when they surface.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Inserts an event at the given absolute time.
  EventId push(SimTime at, Callback cb);

  /// Cancels a pending event. Returns false if the id was never issued or
  /// has already fired.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }

  /// Time of the earliest pending (non-cancelled) event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest pending event. Requires !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops heap entries whose callbacks were cancelled.
  void drop_cancelled_front() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  /// Time of the most recent pop; audit mode asserts pops never go
  /// backwards (the queue-level half of simulator clock monotonicity).
  SimTime last_popped_ = SimTime::zero();
};

}  // namespace intsched::sim
