#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "intsched/sim/audit.hpp"
#include "intsched/sim/time.hpp"

#if INTSCHED_AUDIT_ENABLED
#include <thread>
#endif

namespace intsched::sim {

/// Opaque handle to a scheduled event; used to cancel it. Encodes a slab
/// slot plus a per-slot generation so handles of fired or cancelled events
/// can never alias a later event that reuses the slot.
struct EventId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(EventId, EventId) = default;
};

/// Time-ordered queue of callbacks. Ties are broken by insertion order so
/// the simulation is fully deterministic: two events scheduled for the same
/// instant fire in the order they were scheduled.
///
/// Hot-path design (this is the per-event cost of the whole simulator):
///  - Callbacks live in a slab of reusable nodes; freed slots go on a free
///    list, so steady-state push/pop performs no allocation at all.
///  - Small callables are stored inline in the node (no std::function heap
///    allocation); only oversized captures spill to the heap.
///  - Cancellation is a tombstone: the node is disarmed and its slot
///    recycled immediately, and the stale heap entry is skipped when it
///    surfaces (generation mismatch). No per-event map find/erase anywhere.
///
/// Threading: the slab, free list, and tombstone generations are *thread
/// confined*, not shared — each trial's Simulator (and its queue) lives and
/// dies on one thread (DESIGN.md §9), so the hot path carries no locks and
/// no capability annotations. Audit builds enforce the confinement
/// dynamically: the queue binds to the first thread that touches it and
/// aborts if a second thread ever does.
class EventQueue {
 public:
  /// Move-only callable with inline small-buffer storage. Replaces
  /// std::function<void()> on the event hot path; implicitly constructible
  /// from any void() callable, so call sites are unchanged.
  class Callback {
   public:
    Callback() noexcept = default;

    template <typename F>
      requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
               std::is_invocable_v<std::decay_t<F>&>)
    Callback(F&& f) {  // NOLINT(google-explicit-constructor)
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineBytes &&
                    alignof(Fn) <= alignof(std::max_align_t) &&
                    std::is_nothrow_move_constructible_v<Fn>) {
        ::new (static_cast<void*>(inline_)) Fn(std::forward<F>(f));
        ops_ = &kInlineOps<Fn>;
      } else {
        heap_ = new Fn(std::forward<F>(f));
        ops_ = &kHeapOps<Fn>;
      }
    }

    Callback(Callback&& other) noexcept { move_from(other); }
    Callback& operator=(Callback&& other) noexcept {
      if (this != &other) {
        reset();
        move_from(other);
      }
      return *this;
    }
    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;
    ~Callback() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept {
      return ops_ != nullptr;
    }

    void operator()() const {
      assert(ops_ != nullptr && "invoking empty Callback");
      ops_->invoke(storage());
    }

   private:
    struct Ops {
      void (*invoke)(void*);
      /// Move-constructs dst from src and destroys src. Null for heap
      /// payloads (their pointer is moved instead).
      void (*relocate)(void* dst, void* src) noexcept;
      /// Destroys (and for heap payloads frees) the callable.
      void (*destroy)(void*) noexcept;
    };

    static constexpr std::size_t kInlineBytes = 48;

    template <typename Fn>
    static constexpr Ops kInlineOps{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }};

    template <typename Fn>
    static constexpr Ops kHeapOps{
        [](void* p) { (*static_cast<Fn*>(p))(); }, nullptr,
        [](void* p) noexcept { delete static_cast<Fn*>(p); }};

    [[nodiscard]] void* storage() const noexcept {
      return heap_ != nullptr
                 ? heap_
                 : const_cast<void*>(static_cast<const void*>(inline_));
    }

    void move_from(Callback& other) noexcept {
      ops_ = other.ops_;
      heap_ = other.heap_;
      if (ops_ != nullptr && heap_ == nullptr) {
        ops_->relocate(inline_, other.inline_);
      }
      other.ops_ = nullptr;
      other.heap_ = nullptr;
    }

    void reset() noexcept {
      if (ops_ != nullptr) {
        ops_->destroy(storage());
        ops_ = nullptr;
        heap_ = nullptr;
      }
    }

    alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
    void* heap_ = nullptr;
    const Ops* ops_ = nullptr;
  };

  /// Inserts an event at the given absolute time.
  EventId push(SimTime at, Callback cb);

  /// Cancels a pending event. Returns false if the id was never issued or
  /// has already fired.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending (non-cancelled) event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest pending event. Requires !empty().
  std::pair<SimTime, Callback> pop();

 private:
  /// One slab slot. `gen` is bumped on every (re)allocation; a heap entry
  /// or EventId whose generation no longer matches is dead.
  struct Node {
    std::uint32_t gen = 0;
    bool armed = false;
    Callback cb;
  };
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return EventId{((static_cast<std::uint64_t>(slot) + 1) << 32) |
                   static_cast<std::uint64_t>(gen)};
  }

  [[nodiscard]] bool entry_live(const HeapEntry& e) const {
    const Node& n = slab_[e.slot];
    return n.armed && n.gen == e.gen;
  }

  void release_slot(std::uint32_t slot);

  /// Pops heap entries whose events were cancelled (tombstones).
  void drop_dead_front() const;

  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::vector<Node> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  /// Time of the most recent pop; audit mode asserts pops never go
  /// backwards (the queue-level half of simulator clock monotonicity).
  SimTime last_popped_ = SimTime::zero();
#if INTSCHED_AUDIT_ENABLED
  /// Binds `audit_owner_` to the calling thread on first use and aborts
  /// when any later operation arrives from a different thread. First-use
  /// (not construction-time) binding keeps the legal pattern of building
  /// a Simulator on one thread and handing it whole to a worker.
  void audit_check_owner() const;
  /// Default id() means "not yet bound"; a live thread never has it.
  // intsched-lint: allow(thread-share): audit-only owner id, never shared
  mutable std::thread::id audit_owner_{};
#endif
};

}  // namespace intsched::sim
