#pragma once

#include <cstdint>

/// INTSCHED_AUDIT compile-time mode.
///
/// When the build defines INTSCHED_AUDIT (the `audit` CMake preset),
/// INTSCHED_AUDIT_ASSERT compiles to a checked invariant: on violation it
/// prints the site and message to stderr and aborts, which both gtest
/// death tests and sanitizers surface cleanly. In normal builds the macro
/// compiles to nothing — the condition is NOT evaluated — so audit checks
/// may be arbitrarily expensive (full-graph walks per ingest) without
/// taxing release hot paths. Hoist any computation a check needs under
/// `#if INTSCHED_AUDIT_ENABLED` so non-audit builds never pay for or warn
/// about it.
///
/// Audited invariants (see DESIGN.md "Static analysis & invariants"):
///   - event-queue/simulator time monotonicity,
///   - NetworkMap graph consistency (edges reference known nodes,
///     freshness stamps and queue samples never postdate the newest
///     ingest),
///   - INT-stack hop-order sanity at the collector,
///   - fault-ledger conservation (restarts <= kills, ups <= downs, ...).
#if defined(INTSCHED_AUDIT)
#define INTSCHED_AUDIT_ENABLED 1
#else
#define INTSCHED_AUDIT_ENABLED 0
#endif

namespace intsched::sim::audit {

/// Number of audit checks evaluated so far in this process; always 0 in
/// non-audit builds. Lets tests prove the instrumentation is live.
[[nodiscard]] std::int64_t checks_executed();

namespace detail {
void note_check();
[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const char* message);
}  // namespace detail

}  // namespace intsched::sim::audit

#if INTSCHED_AUDIT_ENABLED
#define INTSCHED_AUDIT_ASSERT(cond, msg)                                    \
  do {                                                                      \
    ::intsched::sim::audit::detail::note_check();                           \
    if (!(cond)) {                                                          \
      ::intsched::sim::audit::detail::fail(__FILE__, __LINE__, #cond, msg); \
    }                                                                       \
  } while (false)
#else
#define INTSCHED_AUDIT_ASSERT(cond, msg) \
  do {                                   \
  } while (false)
#endif
