#pragma once

#include <cstdint>
#include <string_view>

namespace intsched::sim {

/// Deterministic pseudo-random stream (xoshiro256** with splitmix64
/// seeding). Every source of randomness in the simulator draws from a
/// named, independently seeded Rng so that compared experiment arms see
/// identical workload/background sequences (the paper's fairness rule:
/// "we used the same order when comparing different scheduling
/// algorithms").
class Rng {
 public:
  /// Seeds from a master seed; all four words are derived via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent stream for a named purpose, so adding a new
  /// consumer never perturbs existing streams.
  [[nodiscard]] static Rng derive(std::uint64_t master_seed,
                                  std::string_view stream_name);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Index into a container of the given size. Requires size > 0.
  std::int64_t index(std::int64_t size);

 private:
  std::uint64_t s_[4];
};

}  // namespace intsched::sim
