#include "intsched/exp/fig4.hpp"

#include "intsched/sim/strfmt.hpp"
#include "intsched/telemetry/int_program.hpp"

namespace intsched::exp {

Fig4Network::Fig4Network(sim::Simulator& sim, const Fig4Config& config)
    : topology_{sim} {
  // Hosts first so "node<i>" gets id i-1.
  for (int i = 1; i <= 8; ++i) {
    hosts_.push_back(
        &topology_.add_node<net::Host>(sim::cat("node", i)));
  }

  p4::SwitchConfig sw_cfg = config.switch_config;
  sw_cfg.seed = config.seed;

  // Four pods: two leaves + one middle each.
  std::vector<p4::P4Switch*> mids;
  for (int pod = 0; pod < 4; ++pod) {
    auto& leaf_a = topology_.add_node<p4::P4Switch>(
        sim::cat("s", pod * 3 + 1), sw_cfg);
    auto& leaf_b = topology_.add_node<p4::P4Switch>(
        sim::cat("s", pod * 3 + 2), sw_cfg);
    auto& mid = topology_.add_node<p4::P4Switch>(
        sim::cat("s", pod * 3 + 3), sw_cfg);
    switches_.push_back(&leaf_a);
    switches_.push_back(&leaf_b);
    switches_.push_back(&mid);
    mids.push_back(&mid);

    net::Host& host_a = *hosts_[static_cast<std::size_t>(pod * 2)];
    net::Host& host_b = *hosts_[static_cast<std::size_t>(pod * 2 + 1)];
    topology_.connect(host_a, leaf_a, config.link);
    topology_.connect(host_b, leaf_b, config.link);
    topology_.connect(leaf_a, mid, config.link);
    topology_.connect(leaf_b, mid, config.link);
  }
  // Ring of middles.
  for (std::size_t i = 0; i < mids.size(); ++i) {
    topology_.connect(*mids[i], *mids[(i + 1) % mids.size()], config.link);
  }

  topology_.install_routes();

  for (p4::P4Switch* sw : switches_) {
    if (config.enable_int) {
      sw->load_program(
          std::make_unique<telemetry::IntTelemetryProgram>());
    } else {
      sw->load_program(std::make_unique<p4::ForwardingProgram>());
    }
  }
}

std::vector<core::NodeId> Fig4Network::host_ids() const {
  std::vector<core::NodeId> ids;
  ids.reserve(hosts_.size());
  for (const net::Host* h : hosts_) ids.push_back(h->id());
  return ids;
}

std::set<std::pair<core::NodeId, core::NodeId>>
Fig4Network::probe_covered_links() const {
  std::set<std::pair<core::NodeId, core::NodeId>> covered;
  const core::NodeId sink = scheduler_host().id();
  for (const net::Host* h : hosts_) {
    if (h->id() == sink) continue;
    const auto path = topology_.path(h->id(), sink);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      covered.emplace(path[i], path[i + 1]);
    }
  }
  return covered;
}

std::set<std::pair<core::NodeId, core::NodeId>> Fig4Network::switch_links()
    const {
  std::set<std::pair<core::NodeId, core::NodeId>> out;
  for (const p4::P4Switch* sw : switches_) {
    for (const auto& edge : topology_.graph().adjacency.at(sw->id())) {
      if (topology_.node(edge.to).kind() == net::NodeKind::kSwitch) {
        out.emplace(sw->id(), edge.to);
      }
    }
  }
  return out;
}

std::vector<core::NodeId> Fig4Network::probe_route(
    core::NodeId host, const std::vector<core::NodeId>& waypoints) const {
  const core::NodeId sink = scheduler_host().id();
  std::vector<core::NodeId> full{host};
  core::NodeId at = host;
  for (const core::NodeId w : waypoints) {
    const auto leg = topology_.path(at, w);
    full.insert(full.end(), leg.begin() + 1, leg.end());
    at = w;
  }
  const auto tail = topology_.path(at, sink);
  full.insert(full.end(), tail.begin() + 1, tail.end());
  return full;
}

std::map<core::NodeId, std::vector<core::NodeId>>
Fig4Network::plan_probe_routes() const {
  const core::NodeId sink = scheduler_host().id();
  std::set<std::pair<core::NodeId, core::NodeId>> uncovered = switch_links();

  const auto path_links = [&](const std::vector<core::NodeId>& path) {
    std::vector<std::pair<core::NodeId, core::NodeId>> links;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      links.emplace_back(path[i], path[i + 1]);
    }
    return links;
  };
  const auto route_links = [&](core::NodeId host,
                               const std::vector<core::NodeId>& waypoints) {
    return path_links(probe_route(host, waypoints));
  };
  const auto gain_of =
      [&](const std::vector<std::pair<core::NodeId, core::NodeId>>& links) {
        std::int64_t gain = 0;
        for (const auto& link : links) {
          if (uncovered.contains(link)) ++gain;
        }
        return gain;
      };

  std::map<core::NodeId, std::vector<core::NodeId>> plan;
  // Greedy: per probing host, pick the waypoint list (none, one switch,
  // or an ordered pair — pairs allow hairpins like visiting the far side
  // of a ring and returning) that covers the most still-uncovered links.
  for (const net::Host* h : hosts_) {
    if (h->id() == sink) continue;
    std::vector<core::NodeId> best_waypoints;
    auto best_links = route_links(h->id(), {});
    std::int64_t best_gain = gain_of(best_links);
    for (const p4::P4Switch* a : switches_) {
      const std::vector<core::NodeId> single{a->id()};
      auto links = route_links(h->id(), single);
      std::int64_t gain = gain_of(links);
      if (gain > best_gain) {
        best_gain = gain;
        best_waypoints = single;
        best_links = std::move(links);
      }
      for (const p4::P4Switch* b : switches_) {
        if (b == a) continue;
        const std::vector<core::NodeId> pair{a->id(), b->id()};
        auto pair_links = route_links(h->id(), pair);
        const std::int64_t pair_gain = gain_of(pair_links);
        // Prefer shorter routes on ties: only switch to a pair when it
        // strictly beats the best single/none option.
        if (pair_gain > best_gain) {
          best_gain = pair_gain;
          best_waypoints = pair;
          best_links = std::move(pair_links);
        }
      }
    }
    plan[h->id()] = best_waypoints;
    for (const auto& link : best_links) uncovered.erase(link);
  }
  return plan;
}

}  // namespace intsched::exp
