#include "intsched/exp/flow_monitor.hpp"

#include <algorithm>
#include <ostream>

#include "intsched/exp/report.hpp"

namespace intsched::exp {

FlowMonitor::FlowMonitor(net::Topology& topology,
                         sim::SimDuration interval)
    : topology_{topology}, interval_{interval} {
  for (std::int32_t i = 0; i < topology_.node_count(); ++i) {
    net::Node& node = topology_.node(core::NodeId{i});
    for (std::int32_t p = 0; p < node.port_count(); ++p) {
      ports_.push_back(PortState{&node, p, sim::SimDuration::zero(), 0, 0});
    }
  }
}

void FlowMonitor::start() {
  if (timer_.active()) return;
  timer_ = topology_.simulator().schedule_periodic(
      interval_, interval_, [this] { sample_all(); });
}

void FlowMonitor::stop() { timer_.cancel(); }

void FlowMonitor::sample_all() {
  const sim::SimTime now = topology_.simulator().now();
  for (PortState& state : ports_) {
    const net::Port& port = state.node->port(state.port);
    Sample s;
    s.at = now;
    s.node = state.node->id();
    s.port = state.port;
    s.peer = port.peer() != nullptr ? port.peer()->id() : core::kInvalidNode;
    s.utilization = (port.busy_time() - state.last_busy) / interval_;
    s.tx_packets = port.tx_packets() - state.last_tx;
    s.drops = port.queue().dropped() - state.last_drops;
    s.queue_depth = port.queue().size_pkts();
    samples_.push_back(s);

    state.last_busy = port.busy_time();
    state.last_tx = port.tx_packets();
    state.last_drops = port.queue().dropped();
  }
}

double FlowMonitor::peak_utilization(core::NodeId node) const {
  double peak = 0.0;
  for (const Sample& s : samples_) {
    if (s.node == node) peak = std::max(peak, s.utilization);
  }
  return peak;
}

void FlowMonitor::write_csv(std::ostream& os) const {
  os << "time_s,node,port,peer,utilization,tx_packets,drops,queue\n";
  for (const Sample& s : samples_) {
    write_csv_row(os, {fmt_seconds(s.at.to_seconds()),
                       core::to_string(s.node), std::to_string(s.port),
                       core::to_string(s.peer), fmt_seconds(s.utilization),
                       std::to_string(s.tx_packets),
                       std::to_string(s.drops),
                       std::to_string(s.queue_depth)});
  }
}

}  // namespace intsched::exp
