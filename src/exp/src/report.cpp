#include "intsched/exp/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "intsched/sim/strfmt.hpp"

namespace intsched::exp {

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  if (!headers_.empty()) {
    print_row(headers_);
    std::size_t rule = 0;
    for (const std::size_t w : widths) rule += w + 2;
    os << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

double percent_gain(double baseline, double treatment) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - treatment) / baseline * 100.0;
}

std::string fmt_seconds(double s) { return sim::cat(sim::fixed(s, 3)); }

std::string fmt_percent(double p) {
  return sim::cat(sim::fixed(p, 1), "%");
}

std::string fmt_opt_seconds(const std::optional<double>& s) {
  return s.has_value() ? fmt_seconds(*s) : std::string{"n/a"};
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << cells[i];
    if (i + 1 < cells.size()) os << ',';
  }
  os << '\n';
}

}  // namespace intsched::exp
