#include "intsched/exp/metro.hpp"

#include <algorithm>
#include <deque>

namespace intsched::exp {

MetroTelemetryGen::MetroTelemetryGen(net::GenTopology topo,
                                     MetroTelemetryConfig config)
    : topo_{std::move(topo)},
      cfg_{config},
      rng_{sim::Rng::derive(cfg_.seed, "metro.telemetry")} {
  const std::size_t n = topo_.nodes.size();
  adj_.resize(n);
  std::vector<std::int32_t> next_port(n, 0);
  for (const net::GenLink& l : topo_.links) {
    const auto a = l.a.index();
    const auto b = l.b.index();
    adj_[a].push_back(l.b);
    adj_[b].push_back(l.a);
    // Same per-node sequential assignment as GenTopology::graph(), so the
    // stack entries carry the ports the routing layers will learn.
    ports_[{l.a, l.b}] = next_port[a]++;
    ports_[{l.b, l.a}] = next_port[b]++;
    delays_[std::minmax(l.a, l.b)] = l.delay;
  }
  for (std::vector<core::NodeId>& neigh : adj_) {
    std::sort(neigh.begin(), neigh.end());
  }

  // Anchor chains: nearest host per node, BFS with sorted neighbours so
  // the chain — and every probe path built from it — is deterministic.
  anchor_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const core::NodeId start{static_cast<std::int32_t>(i)};
    if (topo_.nodes[i].kind == net::NodeKind::kHost) {
      anchor_[i] = {start};
      continue;
    }
    std::vector<core::NodeId> parent(n, core::kInvalidNode);
    std::vector<char> seen(n, 0);
    std::deque<core::NodeId> frontier{start};
    seen[i] = 1;
    core::NodeId found = core::kInvalidNode;
    while (!frontier.empty() && found == core::kInvalidNode) {
      const core::NodeId cur = frontier.front();
      frontier.pop_front();
      for (const core::NodeId nb : adj_[cur.index()]) {
        if (seen[nb.index()] != 0) continue;
        seen[nb.index()] = 1;
        parent[nb.index()] = cur;
        if (topo_.nodes[nb.index()].kind ==
            net::NodeKind::kHost) {
          found = nb;
          break;
        }
        frontier.push_back(nb);
      }
    }
    // parent[] points back toward `start`, so walking from the found host
    // yields [host, ..., start] directly — host-first, as anchor_ wants.
    std::vector<core::NodeId> chain;
    for (core::NodeId c = found; c != core::kInvalidNode;
         c = parent[c.index()]) {
      chain.push_back(c);
    }
    anchor_[i] = std::move(chain);
  }

  // Standing congestion, drawn once in node order.
  congestion_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (topo_.nodes[i].kind != net::NodeKind::kSwitch) continue;
    if (rng_.chance(cfg_.congested_frac)) {
      congestion_[i] = rng_.uniform_int(cfg_.min_level, cfg_.max_level);
    }
  }
}

sim::SimDuration MetroTelemetryGen::link_base_delay(core::NodeId a,
                                                core::NodeId b) const {
  const auto it = delays_.find(std::minmax(a, b));
  return it == delays_.end() ? sim::SimDuration::millis(1) : it->second;
}

telemetry::ProbeReport MetroTelemetryGen::probe_over_link(
    std::size_t link_index, bool forward) {
  const net::GenLink& l = topo_.links[link_index];
  const core::NodeId u = forward ? l.a : l.b;
  const core::NodeId v = forward ? l.b : l.a;

  // Node path: nearest-host chain to u, across the link, then v's chain
  // back down to its nearest host.
  std::vector<core::NodeId> path = anchor_[u.index()];
  const std::vector<core::NodeId>& back = anchor_[v.index()];
  path.insert(path.end(), back.rbegin(), back.rend());

  telemetry::ProbeReport report;
  report.src = path.front();
  report.dst = path.back();

  const auto wobbled = [this](core::NodeId a, core::NodeId b) {
    const sim::SimDuration base = link_base_delay(a, b);
    const double scale = rng_.uniform_real(1.0 - cfg_.delay_wobble_frac,
                                           1.0 + cfg_.delay_wobble_frac);
    return sim::SimDuration::nanos(static_cast<std::int64_t>(
        static_cast<double>(base.ns()) * scale));
  };

  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const core::NodeId device = path[i];
    net::IntStackEntry entry;
    entry.device = device;
    entry.ingress_port = ports_.at({device, path[i - 1]});
    entry.egress_port = ports_.at({device, path[i + 1]});
    // First hop has no upstream switch timestamp — exactly like a real
    // probe, the host access link stays unmeasured in this direction (it
    // is measured as the final hop of the reverse orientation).
    entry.ingress_link_latency = i == 1 ? sim::SimDuration::nanos(-1)
                                        : wobbled(path[i - 1], device);
    const std::int64_t level = congestion_[device.index()];
    const std::int64_t q =
        level == 0 ? 0
                   : std::max<std::int64_t>(0,
                                            level + rng_.uniform_int(-2, 2));
    entry.max_queue_pkts = q;
    entry.device_max_queue_pkts = q;
    entry.device_avg_queue_x100 = q * 40;  // mean well under the max
    entry.max_hop_latency = sim::SimDuration::micros(30 * q);
    report.entries.push_back(entry);
  }
  if (path.size() >= 2) {
    report.final_link_latency =
        wobbled(path[path.size() - 2], path.back());
  }
  return report;
}

std::vector<telemetry::ProbeReport> MetroTelemetryGen::full_sweep() {
  std::vector<telemetry::ProbeReport> out;
  out.reserve(topo_.links.size() * 2);
  for (std::size_t li = 0; li < topo_.links.size(); ++li) {
    out.push_back(probe_over_link(li, true));
    out.push_back(probe_over_link(li, false));
  }
  return out;
}

std::vector<telemetry::ProbeReport> MetroTelemetryGen::refresh(
    std::int64_t count) {
  std::vector<telemetry::ProbeReport> out;
  out.reserve(static_cast<std::size_t>(count) * 2);
  for (std::int64_t i = 0; i < count; ++i) {
    const auto li = static_cast<std::size_t>(
        rng_.index(static_cast<std::int64_t>(topo_.links.size())));
    const net::GenLink& l = topo_.links[li];
    if (rng_.chance(cfg_.churn_chance)) {
      for (const core::NodeId end : {l.a, l.b}) {
        const auto e = end.index();
        if (topo_.nodes[e].kind != net::NodeKind::kSwitch) continue;
        congestion_[e] = rng_.chance(cfg_.congested_frac)
                             ? rng_.uniform_int(cfg_.min_level,
                                                cfg_.max_level)
                             : 0;
      }
    }
    out.push_back(probe_over_link(li, true));
    out.push_back(probe_over_link(li, false));
  }
  return out;
}

}  // namespace intsched::exp
