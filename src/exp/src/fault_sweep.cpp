#include "intsched/exp/fault_sweep.hpp"

#include "intsched/exp/sweep_runner.hpp"
#include "intsched/sim/stats.hpp"
#include "intsched/sim/strfmt.hpp"

namespace intsched::exp {
namespace {

double overall_mean_completion_s(const edge::MetricsCollector& metrics) {
  sim::RunningStats stats;
  for (const edge::TaskRecord* r : metrics.records()) {
    if (r->is_complete()) stats.add(r->completion_time().to_seconds());
  }
  return stats.count() > 0 ? stats.mean() : 0.0;
}

}  // namespace

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config) {
  const sim::SimDuration staleness =
      config.staleness > sim::SimDuration::zero()
          ? config.staleness
          : config.base.probe_interval * 5;

  const SweepRunner runner{config.jobs};
  std::vector<ExperimentResult> results = runner.map<ExperimentResult>(
      config.drop_rates.size(), [&config, staleness](std::size_t i) {
        ExperimentConfig cfg = config.base;
        cfg.telemetry_staleness = staleness;
        cfg.faults.seed = cfg.seed;
        cfg.faults.probe.drop_probability = config.drop_rates[i];
        return run_experiment(cfg);
      });

  // Fixed-order merge: rows follow drop_rates order, never completion
  // order, so the report is byte-identical to the serial sweep.
  FaultSweepResult sweep;
  sweep.rows.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    sweep.rows.push_back(
        FaultSweepRow{config.drop_rates[i], std::move(results[i])});
  }
  return sweep;
}

TextTable render_fault_sweep(const FaultSweepResult& sweep) {
  TextTable table{"graceful degradation vs probe-loss rate"};
  table.set_headers({"probe loss", "completed", "mean completion (s)",
                     "probes sent", "probes lost", "reports",
                     "stale lookups", "fallbacks"});
  for (const FaultSweepRow& row : sweep.rows) {
    const ExperimentResult& r = row.result;
    table.add_row({sim::cat(static_cast<std::int64_t>(row.drop_rate * 100.0),
                            "%"),
                   sim::cat(r.tasks_completed, "/", r.tasks_total),
                   fmt_seconds(overall_mean_completion_s(r.metrics)),
                   sim::cat(r.probes_sent),
                   sim::cat(r.degradation.probes_dropped),
                   sim::cat(r.probe_reports),
                   sim::cat(r.degradation.stale_lookups),
                   sim::cat(r.degradation.fallback_decisions)});
  }
  return table;
}

}  // namespace intsched::exp
