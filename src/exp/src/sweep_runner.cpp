// Work-stealing pool implementation; see sweep_runner.hpp for the
// determinism contract. All cross-thread state here is either immutable
// after construction (the task vector), index-partitioned (result slots),
// or lock-annotated: the steal deques and the first-error slot are
// INTSCHED_GUARDED_BY their AnnotatedMutex (statically checked by the
// thread-safety preset), and the stop flag is a set-once seq_cst atomic.
// intsched-lint: allow-file(thread-share): this IS the thread-pool boundary

#include "intsched/exp/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "intsched/core/thread_annot.hpp"

namespace intsched::exp {

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

// One steal-deque per worker, seeded round-robin so the initial split is
// balanced. Owners pop LIFO from the back (cache-warm, most recently
// assigned); thieves steal FIFO from the front of a victim, which takes
// the oldest — typically largest-remaining — chunk of that worker's
// share. Trials are long (whole simulations), so a mutex per deque is
// plenty: contention is one lock per trial, not per event.
struct StealDeque {
  core::AnnotatedMutex mutex;
  std::deque<std::size_t> indices INTSCHED_GUARDED_BY(mutex);
};

// First task failure, published to the joining thread. The stop flag is
// raised alongside it so the pool abandons the remaining tasks — matching
// the serial path, where a throw out of task() skips everything after it.
struct ErrorSlot {
  core::AnnotatedMutex mutex;
  std::exception_ptr first INTSCHED_GUARDED_BY(mutex);
};

}  // namespace

void SweepRunner::run(std::vector<std::function<void()>> tasks) const {
  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), tasks.size()));
  if (workers <= 1) {
    // Serial fast path: no threads, identical to the pre-parallel code.
    for (auto& task : tasks) task();
    return;
  }

  std::vector<StealDeque> queues(static_cast<std::size_t>(workers));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    StealDeque& q = queues[i % static_cast<std::size_t>(workers)];
    // Uncontended (workers start below), but locked anyway: the guard is
    // what lets -Wthread-safety prove every indices access is disciplined.
    core::LockGuard lock{q.mutex};
    q.indices.push_back(i);
  }

  ErrorSlot error;
  // Default (seq_cst) ordering: raised once per run at most, never on the
  // per-trial fast path, so there is nothing to relax.
  std::atomic<bool> stop{false};

  const auto worker_loop = [&](std::size_t self) {
    for (;;) {
      if (stop.load()) return;  // a trial failed; abandon the rest
      std::size_t idx = 0;
      bool found = false;
      {
        StealDeque& own = queues[self];
        core::LockGuard lock{own.mutex};
        if (!own.indices.empty()) {
          idx = own.indices.back();
          own.indices.pop_back();
          found = true;
        }
      }
      for (std::size_t off = 1; !found && off < queues.size(); ++off) {
        StealDeque& victim = queues[(self + off) % queues.size()];
        core::LockGuard lock{victim.mutex};
        if (!victim.indices.empty()) {
          idx = victim.indices.front();
          victim.indices.pop_front();
          found = true;
        }
      }
      // Tasks never enqueue further tasks, so all-deques-empty means done.
      if (!found) return;
      try {
        tasks[idx]();
      } catch (...) {
        core::LockGuard lock{error.mutex};
        if (!error.first) error.first = std::current_exception();
        stop.store(true);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (std::size_t w = 0; w < static_cast<std::size_t>(workers); ++w) {
    pool.emplace_back(worker_loop, w);
  }
  for (std::thread& t : pool) t.join();

  std::exception_ptr failure;
  {
    core::LockGuard lock{error.mutex};
    failure = error.first;
  }
  if (failure) std::rethrow_exception(failure);
}

core::ParallelFor make_parallel_for(int jobs) {
  // The runner is shared so the returned std::function stays copyable
  // (ShardedMapConfig copies it into every map).
  auto runner = std::make_shared<SweepRunner>(jobs);
  return [runner](std::size_t n,
                  const std::function<void(std::size_t)>& body) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([&body, i] { body(i); });
    }
    runner->run(std::move(tasks));
  };
}

std::map<core::PolicyKind, ExperimentResult> run_policy_suite_parallel(
    const ExperimentConfig& base, const std::vector<core::PolicyKind>& arms,
    int jobs) {
  const SweepRunner runner{jobs};
  std::vector<ExperimentResult> results = runner.map<ExperimentResult>(
      arms.size(), [&base, &arms](std::size_t i) {
        ExperimentConfig cfg = base;
        cfg.policy = arms[i];
        return run_experiment(cfg);
      });
  // Fixed-order merge: key order is the arms' order, exactly as the serial
  // run_policy_suite emplaces them (duplicates keep the first result).
  std::map<core::PolicyKind, ExperimentResult> out;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    out.emplace(arms[i], std::move(results[i]));
  }
  return out;
}

}  // namespace intsched::exp
