#include "intsched/exp/background.hpp"

#include <cassert>

#include "intsched/sim/strfmt.hpp"

namespace intsched::exp {

const char* to_string(BackgroundMode mode) {
  switch (mode) {
    case BackgroundMode::kNone: return "none";
    case BackgroundMode::kRandomPairs: return "random-pairs";
    case BackgroundMode::kPattern1: return "traffic-1";
    case BackgroundMode::kPattern2: return "traffic-2";
  }
  return "?";
}

BackgroundTraffic::BackgroundTraffic(
    sim::Simulator& sim, std::vector<transport::HostStack*> hosts,
    BackgroundConfig config)
    : sim_{sim},
      hosts_{std::move(hosts)},
      cfg_{config},
      rng_{sim::Rng::derive(config.seed, "background-traffic")} {
  assert(hosts_.size() >= 2);
}

BackgroundTraffic::~BackgroundTraffic() { stop(); }

void BackgroundTraffic::start() {
  if (running_ || cfg_.mode == BackgroundMode::kNone) return;
  running_ = true;
  switch (cfg_.mode) {
    case BackgroundMode::kNone:
      break;
    case BackgroundMode::kRandomPairs:
      // Slot 0 runs back-to-back flows; slot 1 alternates flow/idle, so
      // 1-2 flows are live at any instant.
      slots_.resize(2);
      schedule_cycle(0, sim::SimDuration::zero());
      schedule_cycle(1, sim::SimDuration::zero());
      break;
    case BackgroundMode::kPattern1:
      slots_.resize(3);
      for (std::size_t s = 0; s < 3; ++s) {
        schedule_cycle(s, sim::SimDuration::secs(10 * static_cast<int>(s)));
      }
      break;
    case BackgroundMode::kPattern2:
      slots_.resize(3);
      for (std::size_t s = 0; s < 3; ++s) {
        schedule_cycle(s, sim::SimDuration::secs(3 * static_cast<int>(s)));
      }
      break;
  }
}

void BackgroundTraffic::stop() {
  running_ = false;
  for (Slot& slot : slots_) {
    slot.stopped = true;
    if (slot.sender) slot.sender->stop();
  }
}

void BackgroundTraffic::schedule_cycle(std::size_t slot,
                                       sim::SimDuration at) {
  sim_.schedule_after(at, [this, slot] {
    if (!running_ || slots_[slot].stopped) return;
    switch (cfg_.mode) {
      case BackgroundMode::kNone:
        return;
      case BackgroundMode::kRandomPairs: {
        const sim::SimDuration on =
            rng_.chance(0.5) ? sim::SimDuration::secs(30)
                             : sim::SimDuration::secs(60);
        // Slot 0: continuous; slot 1: idle as long as it ran.
        const sim::SimDuration off =
            slot == 0 ? sim::SimDuration::zero() : on;
        begin_flow(slot, on, off);
        return;
      }
      case BackgroundMode::kPattern1:
        begin_flow(slot, sim::SimDuration::secs(30), sim::SimDuration::secs(30));
        return;
      case BackgroundMode::kPattern2:
        begin_flow(slot, sim::SimDuration::secs(5), sim::SimDuration::secs(5));
        return;
    }
  });
}

void BackgroundTraffic::begin_flow(std::size_t slot,
                                   sim::SimDuration on_duration,
                                   sim::SimDuration off_duration) {
  const auto n = static_cast<std::int64_t>(hosts_.size());
  const auto src = rng_.index(n);
  auto dst = rng_.index(n - 1);
  if (dst >= src) ++dst;  // distinct pair

  const double fraction =
      rng_.uniform_real(cfg_.rate_min_fraction, cfg_.rate_max_fraction);

  transport::IperfUdpSender::Config flow_cfg;
  flow_cfg.rate = cfg_.nominal_capacity * fraction;
  flow_cfg.packet_size = cfg_.packet_size;

  Slot& s = slots_[slot];
  s.sender = std::make_unique<transport::IperfUdpSender>(
      *hosts_[static_cast<std::size_t>(src)],
      hosts_[static_cast<std::size_t>(dst)]->host().id(), flow_cfg);
  s.sender->start(on_duration);
  ++flows_;

  schedule_cycle(slot, on_duration + off_duration);
}

}  // namespace intsched::exp
