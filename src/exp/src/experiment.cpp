#include "intsched/exp/experiment.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "intsched/core/scheduler_service.hpp"
#include "intsched/edge/edge_device.hpp"
#include "intsched/sim/logging.hpp"
#include "intsched/sim/strfmt.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/host_stack.hpp"
#include "intsched/transport/iperf.hpp"

namespace intsched::exp {
namespace {

core::RankingMetric metric_for(core::PolicyKind policy) {
  return policy == core::PolicyKind::kIntBandwidth
             ? core::RankingMetric::kBandwidth
             : core::RankingMetric::kDelay;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Simulator sim;

  Fig4Config net_cfg = config.network;
  net_cfg.seed = config.seed;
  Fig4Network network{sim, net_cfg};
  const std::vector<core::NodeId> host_ids = network.host_ids();
  const core::NodeId scheduler_id = network.scheduler_host().id();

  // Host stacks + iperf sinks (background traffic needs a receiver
  // everywhere).
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::vector<std::unique_ptr<transport::IperfUdpSink>> sinks;
  transport::HostStack* scheduler_stack_ptr = nullptr;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
    sinks.push_back(std::make_unique<transport::IperfUdpSink>(*stacks.back()));
    if (h->id() == scheduler_id) scheduler_stack_ptr = stacks.back().get();
  }
  if (scheduler_stack_ptr == nullptr) {
    throw std::logic_error(
        "Fig4Network: scheduler host missing from hosts()");
  }
  transport::HostStack& scheduler_stack = *scheduler_stack_ptr;

  // Fault injection: only instantiated when the plan actually does
  // something, so fault-free configs keep null fault pointers everywhere
  // (byte-identical to the seed).
  std::unique_ptr<net::FaultPlan> fault_plan;
  if (config.faults.enabled()) {
    fault_plan = std::make_unique<net::FaultPlan>(config.faults);
    fault_plan->arm(network.topology());
  }

  // Scheduler service. The freshness window tracks the probing interval:
  // "maximum observed queue size in the last probing interval".
  core::NetworkMapConfig map_cfg;
  map_cfg.nominal_capacity = config.background.nominal_capacity;
  map_cfg.queue_window = std::max(sim::SimDuration::millis(150),
                                  (config.probe_interval * 3) / 2);
  map_cfg.link_staleness = config.telemetry_staleness;
  core::SchedulerService service{scheduler_stack, config.ranker, map_cfg,
                                 config.scheduler};
  for (const core::NodeId id : host_ids) service.register_edge_server(id);

  // Probe agents on every edge server (all non-scheduler hosts), staggered
  // across the interval so probe arrivals interleave.
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  {
    const auto route_plan =
        config.optimize_probe_routes
            ? network.plan_probe_routes()
            : std::map<core::NodeId, std::vector<core::NodeId>>{};
    std::int64_t idx = 0;
    const auto n =
        static_cast<std::int64_t>(network.hosts().size() - 1);
    for (net::Host* h : network.hosts()) {
      if (h->id() == scheduler_id) continue;
      telemetry::ProbeConfig pc;
      pc.interval = config.probe_interval;
      pc.start_offset = (config.probe_interval * idx) / n;
      pc.faults = fault_plan.get();
      if (const auto it = route_plan.find(h->id());
          it != route_plan.end()) {
        pc.waypoints = it->second;
      }
      agents.push_back(
          std::make_unique<telemetry::ProbeAgent>(*h, scheduler_id, pc));
      agents.back()->start();
      ++idx;
    }
  }

  // Selection policies.
  std::vector<std::unique_ptr<core::SchedulerClient>> clients;
  std::vector<std::unique_ptr<core::SelectionPolicy>> policies;
  core::NearestPolicy nearest{network.topology(), host_ids};
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    switch (config.policy) {
      case core::PolicyKind::kIntDelay:
      case core::PolicyKind::kIntBandwidth: {
        const core::RankingMetric metric = metric_for(config.policy);
        if (stacks[i]->host().id() == scheduler_id) {
          policies.push_back(
              std::make_unique<core::DirectIntPolicy>(service, metric));
        } else {
          clients.push_back(std::make_unique<core::SchedulerClient>(
              *stacks[i], scheduler_id));
          policies.push_back(std::make_unique<core::IntPolicy>(
              *clients.back(), metric));
        }
        break;
      }
      case core::PolicyKind::kNearest: {
        // Shared table, per-device facade.
        class NearestFacade : public core::SelectionPolicy {
         public:
          explicit NearestFacade(core::NearestPolicy& inner)
              : inner_{inner} {}
          void select(core::NodeId device, std::int32_t count,
                      const std::vector<std::string>& requirements,
                      SelectionHandler handler) override {
            inner_.select(device, count, requirements, std::move(handler));
          }
          [[nodiscard]] core::PolicyKind kind() const override {
            return core::PolicyKind::kNearest;
          }

         private:
          core::NearestPolicy& inner_;
        };
        policies.push_back(std::make_unique<NearestFacade>(nearest));
        break;
      }
      case core::PolicyKind::kRandom:
        policies.push_back(std::make_unique<core::RandomPolicy>(
            host_ids,
            sim::Rng::derive(config.seed, sim::cat("random-policy-", i))));
        break;
    }
  }

  // Edge servers and devices on every host.
  edge::MetricsCollector metrics;
  std::vector<std::unique_ptr<edge::EdgeServer>> servers;
  std::vector<std::unique_ptr<edge::EdgeDevice>> devices;
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    servers.push_back(std::make_unique<edge::EdgeServer>(
        *stacks[i], metrics, config.server));
    if (config.scheduler.compute_aware) {
      servers.back()->enable_load_reports(scheduler_id);
    }
    devices.push_back(std::make_unique<edge::EdgeDevice>(
        *stacks[i], metrics, *policies[i]));
  }

  // Background congestion.
  BackgroundConfig bg_cfg = config.background;
  bg_cfg.seed = config.seed;
  std::vector<transport::HostStack*> stack_ptrs;
  for (const auto& s : stacks) stack_ptrs.push_back(s.get());
  BackgroundTraffic background{sim, stack_ptrs, bg_cfg};
  background.start();

  // Workload (identical across policy arms: derived stream of the seed).
  sim::Rng workload_rng = sim::Rng::derive(config.seed, "workload");
  const std::vector<edge::JobSpec> jobs =
      edge::generate_workload(config.workload, host_ids, workload_rng);
  std::int64_t total_tasks = 0;
  for (const edge::JobSpec& job : jobs) {
    total_tasks += static_cast<std::int64_t>(job.tasks.size());
    sim.schedule_at(job.submit_at, [&devices, &job] {
      devices[job.submitter.index()]->submit(job);
    });
  }

  // Stop as soon as the last task completes.
  for (const auto& device : devices) {
    device->set_completion_handler(
        [&metrics, &sim, total_tasks](const edge::TaskRecord&) {
          if (metrics.completed() >= total_tasks) sim.stop();
        });
  }

  sim.run_until(sim::SimTime::at(config.max_duration));

  ExperimentResult result;
  result.tasks_total = total_tasks;
  result.tasks_completed = metrics.completed();
  result.sim_duration = sim.now().since_epoch();
  result.events_executed = sim.events_executed();
  for (const auto& agent : agents) {
    result.probes_sent += agent->probes_sent();
    result.probe_bytes_sent += agent->bytes_sent();
  }
  result.probe_reports = service.network_map().reports_ingested();
  result.queries_served = service.queries_served();
  for (const p4::P4Switch* sw : network.switches()) {
    result.switch_queue_drops += sw->queue_drops();
  }
  result.background_flows = background.flows_started();
  if (fault_plan != nullptr) {
    const net::FaultCounters& fc = fault_plan->counters();
    result.degradation.probes_dropped = fc.probes_dropped;
    result.degradation.probes_delayed = fc.probes_delayed;
    result.degradation.probes_duplicated = fc.probes_duplicated;
    result.degradation.packets_lost_link_down = fc.packets_lost_link_down;
    result.degradation.link_flap_events =
        fc.link_down_events + fc.link_up_events;
    result.degradation.switch_kills = fc.switch_kills;
    result.degradation.switch_restarts = fc.switch_restarts;
  }
  result.degradation.malformed_reports = service.collector().malformed();
  result.degradation.rejected_entries =
      service.network_map().rejected_entries();
  result.degradation.stale_lookups = service.stale_lookups();
  result.degradation.fallback_decisions = service.fallback_decisions();
  result.metrics = std::move(metrics);
  return result;
}

std::map<core::PolicyKind, ExperimentResult> run_policy_suite(
    const ExperimentConfig& base,
    const std::vector<core::PolicyKind>& arms) {
  std::map<core::PolicyKind, ExperimentResult> results;
  for (const core::PolicyKind policy : arms) {
    ExperimentConfig cfg = base;
    cfg.policy = policy;
    results.emplace(policy, run_experiment(cfg));
  }
  return results;
}

}  // namespace intsched::exp
