#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "intsched/sim/rng.hpp"
#include "intsched/transport/iperf.hpp"

namespace intsched::exp {

/// §IV background-congestion patterns.
enum class BackgroundMode : std::uint8_t {
  kNone,
  /// Main experiments: "at any given time, one or two iperf transfers run
  /// between randomly selected nodes for 30 s or 60 s".
  kRandomPairs,
  /// §IV-C Traffic 1: three transfers, 30 s on / 30 s off, 10 s stagger
  /// (slow-changing congestion).
  kPattern1,
  /// §IV-C Traffic 2: three transfers, 5 s on / 5 s off, ~3 s stagger
  /// (fast-changing congestion).
  kPattern2,
};

[[nodiscard]] const char* to_string(BackgroundMode mode);

struct BackgroundConfig {
  BackgroundMode mode = BackgroundMode::kRandomPairs;
  std::uint64_t seed = 42;
  /// Per-flow CBR rate range as a fraction of the nominal 20 Mbps
  /// effective switch capacity; drawn per flow. The upper end exceeding
  /// 1.0 creates genuinely saturated hotspots.
  double rate_min_fraction = 0.6;
  double rate_max_fraction = 1.0;
  sim::DataRate nominal_capacity = sim::DataRate::megabits_per_second(20.0);
  sim::Bytes packet_size = 1500;
};

/// Drives iperf-like UDP flows between random host pairs per the selected
/// pattern. Deterministic: the flow sequence depends only on the seed, so
/// compared policy arms see identical congestion (the paper's fairness
/// rule).
class BackgroundTraffic {
 public:
  BackgroundTraffic(sim::Simulator& sim,
                    std::vector<transport::HostStack*> hosts,
                    BackgroundConfig config);
  ~BackgroundTraffic();
  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::int64_t flows_started() const { return flows_; }

 private:
  struct Slot {
    std::unique_ptr<transport::IperfUdpSender> sender;
    bool stopped = false;
  };

  void schedule_cycle(std::size_t slot, sim::SimDuration at);
  void begin_flow(std::size_t slot, sim::SimDuration on_duration,
                  sim::SimDuration off_duration);

  sim::Simulator& sim_;
  std::vector<transport::HostStack*> hosts_;
  BackgroundConfig cfg_;
  sim::Rng rng_;
  std::vector<Slot> slots_;
  bool running_ = false;
  std::int64_t flows_ = 0;
};

}  // namespace intsched::exp
