#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"
#include "intsched/sim/simulator.hpp"

namespace intsched::exp {

struct Fig4Config {
  std::uint64_t seed = 42;
  /// All links carry the paper's 10 ms delay. Rates are 100 Mbps because
  /// the effective bottleneck is switch processing, exactly as in the
  /// paper's BMv2 deployment.
  net::LinkConfig link{};
  p4::SwitchConfig switch_config{};
  /// Load the INT telemetry program onto every switch (true for all paper
  /// experiments; false gives plain forwarding for ablations).
  bool enable_int = true;
};

/// The experimental topology of paper Fig. 4: 8 host nodes connected
/// through 12 P4 switches, realized as four pods (two leaf switches with
/// one host each + one middle switch) whose middles form a ring. Intra-pod
/// host pairs — (1,2), (3,4), (5,6), (7,8) — are three switch-hops apart,
/// matching the paper's "Node 7 and Node 8 are the nearest nodes for each
/// other". Node 6 is the scheduler.
class Fig4Network {
 public:
  Fig4Network(sim::Simulator& sim, const Fig4Config& config);

  [[nodiscard]] net::Topology& topology() { return topology_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }

  /// Host nodes in paper order: hosts()[i] is "node<i+1>".
  [[nodiscard]] const std::vector<net::Host*>& hosts() const {
    return hosts_;
  }
  [[nodiscard]] const std::vector<p4::P4Switch*>& switches() const {
    return switches_;
  }
  /// Node 6 (index 5) per the paper.
  [[nodiscard]] net::Host& scheduler_host() const { return *hosts_[5]; }

  [[nodiscard]] std::vector<core::NodeId> host_ids() const;

  /// Directed switch-to-switch and switch-to-host links traversed by at
  /// least one host->scheduler probe path — what INT can actually observe
  /// under the paper's probing pattern.
  [[nodiscard]] std::set<std::pair<core::NodeId, core::NodeId>>
  probe_covered_links() const;

  /// All directed switch-to-switch links (the coverage target for probe
  /// routing; host downlinks cannot be covered by scheduler-bound probes).
  [[nodiscard]] std::set<std::pair<core::NodeId, core::NodeId>>
  switch_links() const;

  /// Probe-route optimization (the paper's §III-A future work): greedily
  /// assigns each probing host at most one waypoint so the union of probe
  /// paths covers every directed switch-to-switch link. Returns waypoint
  /// lists per host id (empty list = default shortest path). Ordered map
  /// so iterating the plan (probe scheduling, reports) is deterministic.
  [[nodiscard]] std::map<core::NodeId, std::vector<core::NodeId>>
  plan_probe_routes() const;

  /// Full node sequence a probe from `host` takes through `waypoints` to
  /// the scheduler (ground-truth routing).
  [[nodiscard]] std::vector<core::NodeId> probe_route(
      core::NodeId host, const std::vector<core::NodeId>& waypoints) const;

 private:
  net::Topology topology_;
  std::vector<net::Host*> hosts_;
  std::vector<p4::P4Switch*> switches_;
};

}  // namespace intsched::exp
