#pragma once

#include <vector>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/report.hpp"

namespace intsched::exp {

/// Probe-loss ablation: reruns the same experiment while the fault plan
/// destroys an increasing fraction of the INT probes, with the scheduler's
/// staleness window enabled so dead telemetry is detected rather than
/// trusted forever.
struct FaultSweepConfig {
  /// The common arm; its `faults.probe.drop_probability` and
  /// `telemetry_staleness` fields are overwritten per sweep point.
  ExperimentConfig base{};
  /// Probe drop probabilities to sweep (0 = pristine baseline).
  std::vector<double> drop_rates{0.0, 0.05, 0.2, 0.5};
  /// Staleness window applied to every arm (including the baseline, so the
  /// arms differ only in injected loss). Zero = derive 5x probe interval.
  sim::SimDuration staleness = sim::SimDuration::zero();
  /// Worker threads for the sweep (each drop rate is an independent
  /// deterministic trial). 1 = serial; 0 = hardware concurrency. The row
  /// order — and every byte of the result — is independent of this value.
  int jobs = 1;
};

struct FaultSweepRow {
  double drop_rate = 0.0;
  ExperimentResult result;
};

struct FaultSweepResult {
  std::vector<FaultSweepRow> rows;
};

[[nodiscard]] FaultSweepResult run_fault_sweep(const FaultSweepConfig& config);

/// Paper-style text table: loss rate vs delivery, telemetry health, and
/// degradation counters.
[[nodiscard]] TextTable render_fault_sweep(const FaultSweepResult& sweep);

}  // namespace intsched::exp
