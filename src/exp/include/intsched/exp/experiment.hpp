#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "intsched/core/policies.hpp"
#include "intsched/edge/edge_server.hpp"
#include "intsched/edge/metrics.hpp"
#include "intsched/edge/workload.hpp"
#include "intsched/exp/background.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/net/fault.hpp"

namespace intsched::exp {

/// Everything defining one experiment arm. Two configs differing only in
/// `policy` see byte-identical workloads and background traffic.
struct ExperimentConfig {
  std::uint64_t seed = 42;
  core::PolicyKind policy = core::PolicyKind::kIntDelay;
  edge::WorkloadConfig workload{};
  sim::SimDuration probe_interval = sim::SimDuration::millis(100);
  /// Probe-route optimization (the paper's future work): source-route
  /// probes so every switch-to-switch link is measured. Off = the paper's
  /// shortest-path probing.
  bool optimize_probe_routes = false;
  BackgroundConfig background{};
  Fig4Config network{};
  edge::EdgeServerConfig server{};
  core::RankerConfig ranker{};
  /// Compute-aware extension knobs; when scheduler.compute_aware is set,
  /// every edge server also streams load reports to the scheduler.
  core::SchedulerConfig scheduler{};
  /// Hard stop even if tasks are still pending (lost-completion safety).
  sim::SimDuration max_duration = sim::SimDuration::secs(3600);
  /// Fault injection (off by default). When enabled() the run gets a
  /// FaultPlan armed on the Fig.-4 topology; disabled configs take the
  /// exact seed code paths and produce byte-identical results.
  net::FaultPlanConfig faults{};
  /// Link-telemetry staleness window for the scheduler's map. Zero keeps
  /// the seed behaviour (estimates never expire); fault runs typically set
  /// a few probe intervals so dead paths are detected.
  sim::SimDuration telemetry_staleness = sim::SimDuration::zero();
};

struct ExperimentResult {
  edge::MetricsCollector metrics;
  std::int64_t tasks_total = 0;
  std::int64_t tasks_completed = 0;
  sim::SimDuration sim_duration = sim::SimDuration::zero();
  std::int64_t events_executed = 0;

  // Infrastructure counters for overhead analysis / sanity checks.
  std::int64_t probes_sent = 0;
  sim::Bytes probe_bytes_sent = 0;
  std::int64_t probe_reports = 0;
  std::int64_t queries_served = 0;
  std::int64_t switch_queue_drops = 0;
  std::int64_t background_flows = 0;
  /// Fault-injection + graceful-degradation ledger; all zero when the
  /// config's fault plan is disabled.
  edge::DegradationCounters degradation{};
};

/// Builds the Fig.-4 network, deploys the full system (INT programs,
/// probe agents, scheduler service, edge servers/devices, background
/// traffic), replays the generated workload under the configured policy,
/// and runs to completion. Single-threaded and deterministic.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs the same config under several policies (same seed => identical
/// workload + congestion), the paper's comparison methodology.
[[nodiscard]] std::map<core::PolicyKind, ExperimentResult> run_policy_suite(
    const ExperimentConfig& base, const std::vector<core::PolicyKind>& arms);

}  // namespace intsched::exp
