#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "intsched/net/topology.hpp"
#include "intsched/sim/simulator.hpp"

namespace intsched::exp {

/// Periodically samples every port's counters and derives per-interval
/// link utilization — the ground-truth time series the INT telemetry is
/// trying to estimate. Used by monitoring examples and for debugging
/// experiments; exportable as CSV for plotting.
class FlowMonitor {
 public:
  struct Sample {
    sim::SimTime at;
    core::NodeId node = core::kInvalidNode;
    std::int32_t port = -1;
    core::NodeId peer = core::kInvalidNode;
    double utilization = 0.0;  ///< busy fraction within the interval
    std::int64_t tx_packets = 0;
    std::int64_t drops = 0;
    std::int64_t queue_depth = 0;
  };

  FlowMonitor(net::Topology& topology, sim::SimDuration interval);
  ~FlowMonitor() { stop(); }
  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::vector<Sample>& samples() const {
    return samples_;
  }

  /// Peak utilization seen on any port of the node across all samples.
  [[nodiscard]] double peak_utilization(core::NodeId node) const;

  /// Writes "time_s,node,port,peer,utilization,tx_packets,drops,queue".
  void write_csv(std::ostream& os) const;

 private:
  struct PortState {
    net::Node* node = nullptr;
    std::int32_t port = -1;
    sim::SimDuration last_busy = sim::SimDuration::zero();
    std::int64_t last_tx = 0;
    std::int64_t last_drops = 0;
  };

  void sample_all();

  net::Topology& topology_;
  sim::SimDuration interval_;
  sim::PeriodicHandle timer_;
  std::vector<PortState> ports_;
  std::vector<Sample> samples_;
};

}  // namespace intsched::exp
