#pragma once

// Work-stealing parallel runner for independent deterministic trials.
//
// The paper's whole evaluation is a sweep of independent simulations
// (policy arms x repetitions x sweep points); each trial owns its own
// Simulator, RNG streams, and result object, so trials share *nothing*
// mutable and can run on any thread in any order. Determinism contract:
// results are written into per-trial slots and merged by the caller in a
// fixed key order, so the merged output is byte-identical to the serial
// path at the same seed regardless of --jobs or scheduling jitter.
//
// Threading primitives are deliberately confined to sweep_runner.{hpp,cpp};
// detlint's thread-share rule flags them anywhere else in the tree.

#include <cstddef>
#include <functional>
#include <vector>

#include "intsched/core/policies.hpp"
#include "intsched/core/sharded_map.hpp"
#include "intsched/exp/experiment.hpp"

namespace intsched::exp {

/// Worker count for a requested --jobs value: the request itself when
/// positive, otherwise (0 = auto) the hardware concurrency, at least 1.
[[nodiscard]] int resolve_jobs(int requested);

/// Executes a batch of independent tasks on a work-stealing thread pool.
/// With jobs == 1 (or a single task) everything runs inline on the calling
/// thread — exactly the serial code path, no threads created.
class SweepRunner {
 public:
  /// `jobs` <= 0 means auto (hardware concurrency).
  explicit SweepRunner(int jobs = 0) : jobs_{resolve_jobs(jobs)} {}

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Runs the tasks and returns. Tasks must be mutually independent (each
  /// touching only its own state/result slot) — or share state exclusively
  /// through an explicitly thread-safe type (e.g. core::ConcurrentNetworkMap;
  /// such runs trade the byte-identity guarantee for throughput). The first
  /// exception thrown by any task is rethrown here after the workers join;
  /// a stop flag abandons tasks not yet started, matching the serial path
  /// where a throw skips everything after the failing task.
  void run(std::vector<std::function<void()>> tasks) const;

  /// Deterministic parallel map: out[i] = fn(i). The result order is the
  /// index order, never the completion order.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn) const {
    std::vector<R> out(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back([&out, &fn, i] { out[i] = fn(i); });
    }
    run(std::move(tasks));
    return out;
  }

 private:
  int jobs_;
};

/// Adapts a SweepRunner to core::ParallelFor — the executor hook
/// core::ShardedNetworkMap's publish uses for parallel region-snapshot
/// rebuilds. core cannot depend on exp, so the adapter lives here. The
/// returned functor owns its runner (shared, copyable) and satisfies the
/// hook's contract: body(i) exactly once per index, return after all
/// complete.
[[nodiscard]] core::ParallelFor make_parallel_for(int jobs = 0);

/// Parallel counterpart of run_policy_suite: runs every arm as its own
/// trial on a SweepRunner and merges the results in the arms' order.
/// Byte-identical to run_policy_suite at the same seed for any jobs value.
[[nodiscard]] std::map<core::PolicyKind, ExperimentResult>
run_policy_suite_parallel(const ExperimentConfig& base,
                          const std::vector<core::PolicyKind>& arms,
                          int jobs = 0);

}  // namespace intsched::exp
