#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "intsched/edge/metrics.hpp"

namespace intsched::exp {

/// Plain-text aligned table, the output format of every bench binary.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_{std::move(title)} {}

  void set_headers(std::vector<std::string> headers) {
    headers_ = std::move(headers);
  }
  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Percent improvement of `treatment` over `baseline` (positive = faster).
[[nodiscard]] double percent_gain(double baseline, double treatment);

/// "1.234" style fixed formatting helpers used by the bench binaries.
[[nodiscard]] std::string fmt_seconds(double s);
[[nodiscard]] std::string fmt_percent(double p);
[[nodiscard]] std::string fmt_opt_seconds(const std::optional<double>& s);

/// CSV escape-free writer for downstream plotting; one call per row.
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

}  // namespace intsched::exp
