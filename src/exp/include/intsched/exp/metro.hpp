#pragma once

// Synthetic INT telemetry for TopologyGen-scale metros. The packet-level
// simulator (exp::Fig4Network) cannot push probes through a thousand
// switches in bench time, so metro experiments synthesize the *reports*
// instead — but with the same structure real probes produce: every report
// is a host-to-host traversal whose INT stack entries carry the real
// ingress/egress ports from the generated topology. That matters because
// NetworkMap's port learning is last-write-wins: a fabricated
// single-link report with a switch source would stamp port 0 onto
// switch-to-switch links and poison link_max_queue's port lookup. Probes
// anchored at hosts reproduce exactly what the collector would have
// learned.
//
// Determinism: all draws (delay wobble, congestion registers, refresh
// link choice) come from one named Rng stream in emission order. Generate
// a report batch once and feed it to every arm under comparison.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "intsched/net/topology_gen.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/telemetry/collector.hpp"

namespace intsched::exp {

struct MetroTelemetryConfig {
  std::uint64_t seed = 42;
  /// Fraction of switches given a standing congestion level at
  /// construction (the rest report empty queues).
  double congested_frac = 0.15;
  /// Congestion level range (window-max queue, packets) for congested
  /// switches.
  std::int64_t min_level = 2;
  std::int64_t max_level = 40;
  /// Per-sample multiplicative wobble on link-delay measurements.
  double delay_wobble_frac = 0.02;
  /// Chance that a refreshed link's endpoint devices redraw their
  /// congestion level (telemetry churn between epochs).
  double churn_chance = 0.3;
};

/// Generates probe reports over a generated metro topology: full sweeps
/// (every link, both orientations — enough for the map to learn the whole
/// topology) and incremental refreshes (a seeded subset of links, the
/// steady-state probing an epoch delivers).
class MetroTelemetryGen {
 public:
  MetroTelemetryGen(net::GenTopology topo, MetroTelemetryConfig config = {});

  /// Two reports (one per orientation) for every link.
  [[nodiscard]] std::vector<telemetry::ProbeReport> full_sweep();

  /// Two reports each for `count` randomly drawn links, with congestion
  /// churn on the touched devices.
  [[nodiscard]] std::vector<telemetry::ProbeReport> refresh(
      std::int64_t count);

  [[nodiscard]] const net::GenTopology& topology() const { return topo_; }

 private:
  /// host(u)-anchored traversal: anchor(u) ++ reverse(anchor(v)), where
  /// anchor(n) is the BFS-nearest host's path to n (deterministic
  /// smallest-neighbour order). Crossing the (u, v) link mid-path is what
  /// gets its delay measured.
  [[nodiscard]] telemetry::ProbeReport probe_over_link(std::size_t link_index,
                                                      bool forward);
  [[nodiscard]] sim::SimDuration link_base_delay(core::NodeId a,
                                             core::NodeId b) const;

  net::GenTopology topo_;
  MetroTelemetryConfig cfg_;
  sim::Rng rng_;
  /// Sorted undirected adjacency (BFS determinism).
  std::vector<std::vector<core::NodeId>> adj_;
  /// Directed (from, to) -> egress port, mirroring GenTopology::graph().
  std::map<std::pair<core::NodeId, core::NodeId>, std::int32_t> ports_;
  /// Base delay per undirected pair (symmetric).
  std::map<std::pair<core::NodeId, core::NodeId>, sim::SimDuration> delays_;
  /// anchor_[n]: node path nearest-host .. n (just [n] for hosts).
  std::vector<std::vector<core::NodeId>> anchor_;
  /// Standing congestion level per node (0 = uncongested).
  std::vector<std::int64_t> congestion_;
};

}  // namespace intsched::exp
