// Ablation (paper §VI future work): compute-aware scheduling. When edge
// servers have a single worker and jobs arrive faster than they execute,
// the purely network-aware scheduler keeps piling tasks onto the
// network-best server; folding load reports into the ranking spreads them.
//
// Flags: --seed=N

#include "bench_common.hpp"
#include "intsched/core/scheduler_service.hpp"
#include "intsched/edge/edge_device.hpp"
#include "intsched/edge/edge_server.hpp"
#include "intsched/telemetry/probe_agent.hpp"

using namespace intsched;

namespace {

double run_arm(bool compute_aware, std::uint64_t seed) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  core::SchedulerConfig sched_cfg;
  sched_cfg.compute_aware = compute_aware;
  sched_cfg.load_penalty = sim::SimDuration::seconds(2);
  core::SchedulerService service{*stacks[5], core::RankerConfig{},
                                 core::NetworkMapConfig{}, sched_cfg};
  for (const core::NodeId id : network.host_ids()) {
    service.register_edge_server(id);
  }
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id()));
    agents.back()->start();
  }

  edge::MetricsCollector metrics;
  edge::EdgeServerConfig server_cfg;
  server_cfg.worker_slots = 1;  // execution is the contended resource
  std::vector<std::unique_ptr<edge::EdgeServer>> servers;
  for (auto& stack : stacks) {
    servers.push_back(
        std::make_unique<edge::EdgeServer>(*stack, metrics, server_cfg));
    servers.back()->enable_load_reports(network.scheduler_host().id(),
                                        sim::SimDuration::milliseconds(250));
  }
  core::DirectIntPolicy policy{service, core::RankingMetric::kDelay};
  edge::EdgeDevice device{*stacks[0], metrics, policy};

  // 12 jobs from node1, 1.5 s apart, each executing for 4 s: a single
  // server can hold at most ~3 without queueing.
  sim::Rng rng = sim::Rng::derive(seed, "compute-aware-workload");
  std::vector<edge::JobSpec> jobs;
  for (int j = 0; j < 12; ++j) {
    edge::JobSpec job;
    job.job_id = j;
    job.submitter = core::NodeId{0};
    edge::TaskSpec spec;
    spec.job_id = j;
    spec.task_index = 0;
    spec.cls = edge::TaskClass::kVerySmall;
    spec.data_bytes = 200 * sim::kKB;
    spec.exec_time = sim::SimDuration::seconds(4);
    job.tasks.push_back(spec);
    job.submit_at = sim::SimTime::seconds(2) +
                    sim::SimDuration::milliseconds(1500 * j) +
                    sim::SimDuration::milliseconds(rng.uniform_int(0, 200));
    jobs.push_back(job);
  }
  for (const auto& job : jobs) {
    sim.schedule_at(job.submit_at, [&device, &job] { device.submit(job); });
  }
  std::int64_t total = static_cast<std::int64_t>(jobs.size());
  device.set_completion_handler([&](const edge::TaskRecord&) {
    if (metrics.completed() >= total) sim.stop();
  });
  sim.run_until(sim::SimTime::seconds(600));

  sim::RunningStats completion;
  for (const edge::TaskRecord* r : metrics.records()) {
    if (r->is_complete()) completion.add(r->completion_time().to_seconds());
  }
  return completion.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);
  std::cout << "Ablation: compute-aware scheduling (paper SVI future "
               "work)\nSingle-worker servers, 4 s tasks arriving every "
               "1.5 s from one device.\n\n";

  exp::TextTable table{"mean task completion time (s)"};
  table.set_headers({"scheduler", "mean completion"});
  const double plain = run_arm(false, opts.seed);
  const double aware = run_arm(true, opts.seed);
  table.add_row({"network-aware only", exp::fmt_seconds(plain)});
  table.add_row({"network + compute aware", exp::fmt_seconds(aware)});
  table.print(std::cout);
  std::cout << "gain from load awareness: "
            << exp::fmt_percent(exp::percent_gain(plain, aware)) << "\n";
  return 0;
}
