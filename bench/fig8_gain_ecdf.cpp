// Reproduces paper Fig. 8: empirical CDF of the per-task completion-time
// gain of network-aware scheduling over the nearest baseline, for three
// configurations: distributed/bandwidth, distributed/delay and
// serverless/delay.
//
// Paper expectation: ~19% of distributed/bandwidth tasks and ~38% of
// delay-ranked tasks see zero or negative gain (measurement jitter
// de-prioritizing nearest nodes under light congestion); >60% of
// distributed/bandwidth tasks gain >=20%; 10-20% of tasks gain >=60%.
//
// Flags: --full, --csv, --seed=N, --jobs=N

#include "bench_common.hpp"
#include "intsched/sim/stats.hpp"

using namespace intsched;

namespace {

struct Series {
  std::string name;
  sim::Ecdf ecdf;
};

Series run_series(const std::string& name, edge::WorkloadKind kind,
                  core::PolicyKind policy,
                  const benchtool::Options& opts) {
  exp::ExperimentConfig cfg = benchtool::make_base_config(kind, opts);
  const auto results = benchtool::run_suite(
      cfg, {policy, core::PolicyKind::kNearest}, opts.reps, opts.jobs);
  Series s;
  s.name = name;
  s.ecdf.add_all(
      benchtool::pooled_gains(results, policy, /*use_transfer_time=*/false));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  std::cout << "Fig. 8 reproduction: ECDF of per-task completion-time gain "
               "vs nearest\n(paper: 19% / 38% of tasks at zero-or-negative "
               "gain for bw / delay ranking;\n >60% of distributed-bw tasks "
               "gain >=20%; 10-20% of tasks gain >=60%)\n\n";

  std::vector<Series> series;
  series.push_back(run_series("distributed/bandwidth",
                              edge::WorkloadKind::kDistributed,
                              core::PolicyKind::kIntBandwidth, opts));
  series.push_back(run_series("distributed/delay",
                              edge::WorkloadKind::kDistributed,
                              core::PolicyKind::kIntDelay, opts));
  series.push_back(run_series("serverless/delay",
                              edge::WorkloadKind::kServerless,
                              core::PolicyKind::kIntDelay, opts));

  exp::TextTable table{"Fig 8: fraction of tasks by completion-time gain"};
  table.set_headers({"series", "tasks", "gain<=0", ">=20%", ">=40%",
                     ">=60%", "median"});
  for (const Series& s : series) {
    table.add_row({s.name, std::to_string(s.ecdf.count()),
                   exp::fmt_percent(100.0 * s.ecdf.fraction_at_most(0.0)),
                   exp::fmt_percent(100.0 * s.ecdf.fraction_at_least(0.2)),
                   exp::fmt_percent(100.0 * s.ecdf.fraction_at_least(0.4)),
                   exp::fmt_percent(100.0 * s.ecdf.fraction_at_least(0.6)),
                   exp::fmt_percent(100.0 * s.ecdf.quantile(0.5))});
  }
  table.print(std::cout);

  if (opts.csv) {
    std::cout << "csv:series,gain\n";
    for (const Series& s : series) {
      for (const double g : s.ecdf.sorted()) {
        exp::write_csv_row(std::cout, {s.name, exp::fmt_seconds(g)});
      }
    }
  }
  return 0;
}
