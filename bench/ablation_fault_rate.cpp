// Ablation: telemetry robustness. The paper assumes a lossless probe
// plane (every 100 ms each server's probe reaches the scheduler); real
// INT deployments lose probes to the very congestion — and failures —
// they are meant to measure. This sweep destroys a growing fraction of
// probes while the scheduler runs with a staleness window (5 probe
// intervals), and reports how delivery and the degradation counters move.
//
// Expectation: moderate loss (<= 20%) barely moves task completion —
// the EWMA map coasts on last-known-good estimates and the staleness
// fallback only kicks in for paths that went fully dark. Extreme loss
// (50%+) pushes stale lookups and Nearest-style fallbacks up while the
// workload still completes: degradation, not collapse.
//
// Flags: --full, --seed=N, --jobs=N

#include "bench_common.hpp"
#include "intsched/exp/fault_sweep.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  exp::FaultSweepConfig cfg;
  cfg.base = benchtool::make_base_config(edge::WorkloadKind::kServerless,
                                         opts);
  cfg.base.policy = core::PolicyKind::kIntDelay;
  cfg.drop_rates = {0.0, 0.05, 0.2, 0.5, 0.9};
  cfg.jobs = opts.jobs;

  std::cout << "Ablation: probe loss vs scheduling robustness (fault "
               "injection + staleness fallback)\n\n";

  const exp::FaultSweepResult sweep = exp::run_fault_sweep(cfg);
  exp::render_fault_sweep(sweep).print(std::cout);

  std::cout << "Probe loss thins the scheduler's telemetry; the staleness "
               "window turns silence into explicit fallbacks instead of "
               "stale-data trust, so tasks keep completing.\n";
  return 0;
}
