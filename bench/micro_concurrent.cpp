// Multi-threaded QPS benchmark for the scheduler read path: N query
// threads ranking against ONE shared ConcurrentNetworkMap while a live
// ingest thread keeps publishing fresh telemetry — the contended shape the
// snapshot redesign exists for. Each BM_RankQps* variant runs with
// google-benchmark's --threads = {2, 3, 5, 9}, i.e. 1/2/4/8 query threads
// plus thread 0 acting as the ingester. Reported metrics:
//   items_per_second — ranks/sec across all query threads (the QPS axis;
//                      only query threads call SetItemsProcessed)
//   rank_p50_ns / rank_p99_ns / rank_p999_ns
//                    — mean per-reader rank-latency percentiles from the
//                      shared log-linear histogram (benchtool::
//                      LatencyHistogram, ~12.5% resolution, bounded
//                      memory — the same helper qps_serve reports with)
// Run both modes to A/B the lock-free snapshot path against the
// single-mutex facade; the acceptance bar is QPS scaling of the snapshot
// mode at 4 query threads vs the facade (meaningless on a 1-core box —
// compare on real hardware / CI runners).
//
// The shared map + tick counter are the benchmark's point, not an
// accident:
// intsched-lint: allow-file(thread-share): query threads must contend on
//   one ConcurrentNetworkMap to measure the read path under load

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "intsched/core/concurrent_map.hpp"

namespace {

using namespace intsched;

sim::SimDuration ms(std::int64_t v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(std::int64_t v) { return sim::SimTime::at(ms(v)); }

constexpr core::NodeId kOrigin{0};
constexpr int kServers = 4;

/// Probe origin -> switch (10+server) -> server, with a queue depth that
/// varies per ingest so every report really moves the EWMAs and windows.
telemetry::ProbeReport probe(core::NodeId server, std::int64_t queue) {
  telemetry::ProbeReport r;
  r.src = kOrigin;
  r.dst = server;
  net::IntStackEntry e;
  e.device = core::NodeId{10 + server.value()};
  e.ingress_port = 0;
  e.egress_port = 1;
  e.max_queue_pkts = queue;
  e.device_max_queue_pkts = queue;
  e.ingress_link_latency = sim::SimDuration::microseconds(200 + 10 * server.value());
  r.entries.push_back(e);
  r.final_link_latency = sim::SimDuration::microseconds(150);
  return r;
}

std::vector<core::NodeId> candidate_servers() {
  std::vector<core::NodeId> c;
  for (core::NodeId s = core::NodeId{1}; s.value() <= kServers; ++s) c.push_back(s);
  return c;
}

/// One shared map per benchmark variant, seeded with every candidate so
/// query threads rank a live topology from the first iteration. Leaked on
/// purpose (function-local static pointer): benchmark shared state must
/// outlive google-benchmark's worker threads in every exit path.
struct SharedState {
  core::ConcurrentNetworkMap map;
  std::atomic<std::int64_t> tick{0};

  explicit SharedState(core::ConcurrencyMode mode)
      : map{{}, {}, mode} {
    std::vector<telemetry::ProbeReport> seed;
    for (core::NodeId s = core::NodeId{1}; s.value() <= kServers; ++s) seed.push_back(probe(s, 4));
    map.ingest_batch(seed, at_ms(tick.fetch_add(1, std::memory_order_relaxed)));
  }
};

using benchtool::LatencyHistogram;

/// Thread 0 ingests (one report per iteration, cycling servers); every
/// other thread ranks and times each call. ranks/sec comes out as
/// items_per_second because only query threads report items.
void run_rank_qps(benchmark::State& state, core::ConcurrentNetworkMap& map,
                  std::atomic<std::int64_t>& tick) {
  const std::vector<core::NodeId> candidates = candidate_servers();
  if (state.thread_index() == 0) {
    for (auto _ : state) {
      const std::int64_t t = tick.fetch_add(1, std::memory_order_relaxed);
      map.ingest(probe(core::NodeId{static_cast<std::int32_t>(1 + t % kServers)}, t % 23), at_ms(t));
    }
    return;
  }
  LatencyHistogram hist;
  for (auto _ : state) {
    // intsched-lint: allow(atomic-ordering): approximate "now" is fine here
    const std::int64_t now = tick.load(std::memory_order_relaxed);
    // intsched-lint: allow(wall-clock): measuring real rank latency
    const auto begin = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(map.rank(kOrigin, candidates,
                                      core::RankingMetric::kDelay, at_ms(now)));
    // intsched-lint: allow(wall-clock): measuring real rank latency
    const auto end = std::chrono::steady_clock::now();
    hist.record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
  }
  state.SetItemsProcessed(state.iterations());
  // Sum over readers of (pXX / readers) = mean per-reader percentile; the
  // ingester contributes nothing, so the default sum-merge is the mean.
  const int readers = state.threads() - 1;
  const double scale = 1.0 / (readers > 0 ? readers : 1);
  state.counters["rank_p50_ns"] = benchmark::Counter(hist.p50() * scale);
  state.counters["rank_p99_ns"] = benchmark::Counter(hist.p99() * scale);
  state.counters["rank_p999_ns"] = benchmark::Counter(hist.p999() * scale);
}

void BM_RankQpsSnapshot(benchmark::State& state) {
  static SharedState* shared =
      new SharedState{core::ConcurrencyMode::kSnapshot};
  run_rank_qps(state, shared->map, shared->tick);
}
BENCHMARK(BM_RankQpsSnapshot)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9)
    ->UseRealTime();

void BM_RankQpsLockedFacade(benchmark::State& state) {
  static SharedState* shared =
      new SharedState{core::ConcurrencyMode::kLockedFacade};
  run_rank_qps(state, shared->map, shared->tick);
}
BENCHMARK(BM_RankQpsLockedFacade)
    ->Threads(2)
    ->Threads(3)
    ->Threads(5)
    ->Threads(9)
    ->UseRealTime();

/// Cost of ONE ingest on the snapshot path (map mutation + a full
/// snapshot rebuild + publish) — the price rank() no longer pays.
void BM_SnapshotIngestPublish(benchmark::State& state) {
  static SharedState* shared =
      new SharedState{core::ConcurrencyMode::kSnapshot};
  for (auto _ : state) {
    const std::int64_t t =
        shared->tick.fetch_add(1, std::memory_order_relaxed);
    shared->map.ingest(probe(core::NodeId{static_cast<std::int32_t>(1 + t % kServers)}, t % 23), at_ms(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotIngestPublish);

/// A 32-probe burst fed one report at a time: 32 publishes.
void BM_SnapshotBurst32Sequential(benchmark::State& state) {
  static SharedState* shared =
      new SharedState{core::ConcurrencyMode::kSnapshot};
  for (auto _ : state) {
    const std::int64_t t =
        shared->tick.fetch_add(1, std::memory_order_relaxed);
    for (std::int64_t i = 0; i < 32; ++i) {
      shared->map.ingest(probe(core::NodeId{static_cast<std::int32_t>(1 + (t + i) % kServers)}, i % 23), at_ms(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SnapshotBurst32Sequential);

/// The same burst through ingest_batch: one publish. The gap between this
/// and Burst32Sequential is what ReportBatcher buys the collector path.
void BM_SnapshotBurst32Batched(benchmark::State& state) {
  static SharedState* shared =
      new SharedState{core::ConcurrencyMode::kSnapshot};
  std::vector<telemetry::ProbeReport> burst;
  for (auto _ : state) {
    const std::int64_t t =
        shared->tick.fetch_add(1, std::memory_order_relaxed);
    burst.clear();
    for (std::int64_t i = 0; i < 32; ++i) {
      burst.push_back(probe(core::NodeId{static_cast<std::int32_t>(1 + (t + i) % kServers)}, i % 23));
    }
    shared->map.ingest_batch(burst, at_ms(t));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SnapshotBurst32Batched);

}  // namespace

BENCHMARK_MAIN();
