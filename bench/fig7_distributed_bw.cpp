// Reproduces paper Fig. 7: distributed-computing workload with
// bandwidth-based ranking; the reported metric is the data-transfer time
// from end device to edge server (completion times shown as well).
//
// Paper expectation: 28-40% transfer-time reduction vs nearest and 22-35%
// completion-time reduction; unlike delay ranking, large tasks also gain
// substantially (~30%) because bandwidth ranking prefers uncongested
// remote nodes over lightly congested nearby ones.
//
// Flags: --full, --csv, --seed=N, --jobs=N

#include "bench_common.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  exp::ExperimentConfig cfg =
      benchtool::make_base_config(edge::WorkloadKind::kDistributed, opts);

  std::cout << "Fig. 7 reproduction: distributed workload, bandwidth-based "
               "ranking\n(paper: 28-40% transfer-time gain over nearest; "
               "22-35% completion-time gain)\n\n";

  const auto results = benchtool::run_suite(
      cfg,
      {core::PolicyKind::kIntBandwidth, core::PolicyKind::kNearest,
       core::PolicyKind::kRandom},
      opts.reps, opts.jobs);

  benchtool::print_comparison(
      "Fig 7: avg data transfer time, distributed / bandwidth ranking",
      results, core::PolicyKind::kIntBandwidth, /*transfer_time=*/true,
      opts.csv);
  benchtool::print_comparison(
      "Fig 7 (companion): avg task completion time",
      results, core::PolicyKind::kIntBandwidth, /*transfer_time=*/false,
      opts.csv);
  benchtool::print_run_summary(results);
  return 0;
}
