// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/report.hpp"
#include "intsched/exp/sweep_runner.hpp"
#include "intsched/sim/stats.hpp"
#include "intsched/sim/strfmt.hpp"

namespace intsched::benchtool {

/// Log-linear latency histogram (HDR-style): exact below 8 ns, then 8
/// linear sub-buckets per power of two (~12.5% worst-case resolution).
/// Fixed footprint, no allocation on the record path — safe inside a
/// timed loop. Shared by micro_concurrent (per-reader rank latency) and
/// qps_serve (per-request decision latency); per-thread histograms merge
/// additively after the measurement window.
class LatencyHistogram {
 public:
  void record(std::int64_t ns) {
    ++buckets_[bucket_index(ns)];
    ++count_;
  }

  /// Pools another thread's histogram into this one (bucket-wise sum).
  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }

  /// Upper bound (ns) of the bucket holding the q-th quantile
  /// (0 < q <= 1), nearest-rank; 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    if (count_ == 0) return 0.0;
    const auto target = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return static_cast<double>(bucket_upper(i));
    }
    return static_cast<double>(bucket_upper(kBuckets - 1));
  }

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

 private:
  static constexpr std::size_t kBuckets = 8 * 62;

  static std::size_t bucket_index(std::int64_t ns) {
    const std::uint64_t v = ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
    if (v < 8) return static_cast<std::size_t>(v);
    int width = 0;
    for (std::uint64_t w = v; w != 0; w >>= 1) ++width;  // bit width >= 4
    const int shift = width - 4;
    const std::uint64_t top = v >> shift;  // in [8, 15]
    const std::size_t idx = static_cast<std::size_t>(width - 3) * 8 +
                            static_cast<std::size_t>(top - 8);
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static std::int64_t bucket_upper(std::size_t idx) {
    if (idx < 8) return static_cast<std::int64_t>(idx);
    const std::size_t width = idx / 8 + 3;
    const std::size_t top = idx % 8 + 8;
    return static_cast<std::int64_t>(((top + 1) << (width - 4)) - 1);
  }

  std::vector<std::int64_t> buckets_ = std::vector<std::int64_t>(kBuckets, 0);
  std::int64_t count_ = 0;
};

struct Options {
  /// --full: paper scale (200 tasks per run). Default is a scaled-down run
  /// so the whole bench suite finishes in a few minutes.
  bool full = false;
  bool csv = false;
  std::uint64_t seed = 42;
  /// Independent repetitions (seed, seed+1, ...) pooled into the reported
  /// statistics; per-class means from a single 200-task run are noisy.
  std::int32_t reps = 2;
  /// --jobs=N: worker threads for independent trials (0 = hardware
  /// concurrency, the default). Output is byte-identical for every value.
  int jobs = 0;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") opts.full = true;
    if (arg == "--csv") opts.csv = true;
    if (arg.rfind("--seed=", 0) == 0) opts.seed = std::stoull(arg.substr(7));
    if (arg.rfind("--reps=", 0) == 0) {
      opts.reps = std::stoi(arg.substr(7));
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      opts.jobs = std::stoi(arg.substr(7));
    }
  }
  return opts;
}

/// Baseline experiment configuration shared by the Fig. 5-9 benches.
inline exp::ExperimentConfig make_base_config(edge::WorkloadKind kind,
                                              const Options& opts) {
  exp::ExperimentConfig cfg;
  cfg.seed = opts.seed;
  cfg.workload.kind = kind;
  cfg.workload.total_tasks = opts.full ? 200 : 120;
  // Same mean task arrival rate for both workload kinds.
  cfg.workload.job_interval = kind == edge::WorkloadKind::kServerless
                                  ? sim::SimDuration::seconds(2)
                                  : sim::SimDuration::seconds(6);
  cfg.background.mode = exp::BackgroundMode::kRandomPairs;
  return cfg;
}

/// All repetitions of all policy arms of one experiment.
using SuiteResults =
    std::map<core::PolicyKind, std::vector<exp::ExperimentResult>>;

/// Runs `reps` repetitions (consecutive seeds) of every policy arm; each
/// repetition's arms share a seed, so per-rep comparisons stay paired.
/// Every (rep, arm) trial is an independent deterministic simulation, so
/// they run concurrently on a SweepRunner; results are merged rep-major in
/// arm order — the serial iteration order — so the suite is byte-identical
/// for every jobs value.
inline SuiteResults run_suite(const exp::ExperimentConfig& base,
                              const std::vector<core::PolicyKind>& arms,
                              std::int32_t reps, int jobs = 1) {
  std::vector<exp::ExperimentConfig> trials;
  trials.reserve(static_cast<std::size_t>(reps) * arms.size());
  for (std::int32_t rep = 0; rep < reps; ++rep) {
    exp::ExperimentConfig cfg = base;
    cfg.seed = base.seed + static_cast<std::uint64_t>(rep);
    for (const core::PolicyKind policy : arms) {
      cfg.policy = policy;
      trials.push_back(cfg);
    }
  }

  const exp::SweepRunner runner{jobs};
  std::vector<exp::ExperimentResult> results =
      runner.map<exp::ExperimentResult>(trials.size(), [&](std::size_t i) {
        return exp::run_experiment(trials[i]);
      });

  SuiteResults all;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    all[trials[i].policy].push_back(std::move(results[i]));
  }
  return all;
}

/// Runs `reps` repetitions (consecutive seeds, starting at `base.seed`) of
/// one fully configured arm. The repetitions are independent trials, so
/// they run concurrently; the returned vector is always in rep order, so
/// downstream aggregation is byte-identical for every jobs value.
inline std::vector<exp::ExperimentResult> run_reps(
    const exp::ExperimentConfig& base, std::int32_t reps, int jobs = 1) {
  const exp::SweepRunner runner{jobs};
  return runner.map<exp::ExperimentResult>(
      static_cast<std::size_t>(reps), [&base](std::size_t rep) {
        exp::ExperimentConfig cfg = base;
        cfg.seed = base.seed + static_cast<std::uint64_t>(rep);
        return exp::run_experiment(cfg);
      });
}

/// Task-level pooled mean of completion or transfer time for one class
/// across all repetitions of one arm.
inline std::optional<double> pooled_class_mean(
    const std::vector<exp::ExperimentResult>& reps, edge::TaskClass cls,
    bool transfer_time) {
  sim::RunningStats stats;
  for (const exp::ExperimentResult& r : reps) {
    for (const edge::TaskRecord* record : r.metrics.records()) {
      if (record->cls != cls || !record->is_complete()) continue;
      if (transfer_time) {
        if (record->transfer_end < sim::SimTime::zero()) continue;
        stats.add(record->transfer_time().to_seconds());
      } else {
        stats.add(record->completion_time().to_seconds());
      }
    }
  }
  if (stats.count() == 0) return std::nullopt;
  return stats.mean();
}

/// Pools per-task paired gains (vs the nearest arm, matched by rep and
/// task id) across repetitions.
inline std::vector<double> pooled_gains(const SuiteResults& results,
                                        core::PolicyKind treatment,
                                        bool use_transfer_time) {
  std::vector<double> gains;
  const auto& treat_reps = results.at(treatment);
  const auto& base_reps = results.at(core::PolicyKind::kNearest);
  for (std::size_t rep = 0;
       rep < std::min(treat_reps.size(), base_reps.size()); ++rep) {
    const std::vector<double> g = edge::paired_gains(
        treat_reps[rep].metrics, base_reps[rep].metrics, use_transfer_time);
    gains.insert(gains.end(), g.begin(), g.end());
  }
  return gains;
}

/// Prints the canonical policy-comparison table: per task class, the mean
/// metric per policy plus INT-vs-baseline gains.
inline void print_comparison(const std::string& title,
                             const SuiteResults& results,
                             core::PolicyKind int_policy, bool transfer_time,
                             bool csv) {
  exp::TextTable table{title};
  table.set_headers({"class", "int (s)", "nearest (s)", "random (s)",
                     "gain vs nearest", "gain vs random"});

  std::vector<std::vector<std::string>> csv_rows;
  for (const edge::TaskClass cls : edge::kAllTaskClasses) {
    const auto t =
        pooled_class_mean(results.at(int_policy), cls, transfer_time);
    const auto n = pooled_class_mean(results.at(core::PolicyKind::kNearest),
                                     cls, transfer_time);
    const auto r = pooled_class_mean(results.at(core::PolicyKind::kRandom),
                                     cls, transfer_time);
    std::string gain_n = "n/a";
    std::string gain_r = "n/a";
    if (t && n) gain_n = exp::fmt_percent(exp::percent_gain(*n, *t));
    if (t && r) gain_r = exp::fmt_percent(exp::percent_gain(*r, *t));
    table.add_row({edge::short_name(cls), exp::fmt_opt_seconds(t),
                   exp::fmt_opt_seconds(n), exp::fmt_opt_seconds(r), gain_n,
                   gain_r});
    csv_rows.push_back({edge::short_name(cls), exp::fmt_opt_seconds(t),
                        exp::fmt_opt_seconds(n), exp::fmt_opt_seconds(r)});
  }
  table.print(std::cout);

  if (csv) {
    std::cout << "csv:class,int_s,nearest_s,random_s ("
              << (transfer_time ? "transfer" : "completion") << ")\n";
    for (const auto& row : csv_rows) exp::write_csv_row(std::cout, row);
    std::cout << '\n';
  }
}

inline void print_run_summary(const SuiteResults& results) {
  exp::TextTable table{"run summary (summed over repetitions)"};
  table.set_headers({"policy", "tasks done", "sim time (s)", "events",
                     "probes", "reports", "queries", "drops", "bg flows"});
  for (const auto& [policy, reps] : results) {
    exp::ExperimentResult sum;
    for (const exp::ExperimentResult& r : reps) {
      sum.tasks_completed += r.tasks_completed;
      sum.tasks_total += r.tasks_total;
      sum.sim_duration += r.sim_duration;
      sum.events_executed += r.events_executed;
      sum.probes_sent += r.probes_sent;
      sum.probe_reports += r.probe_reports;
      sum.queries_served += r.queries_served;
      sum.switch_queue_drops += r.switch_queue_drops;
      sum.background_flows += r.background_flows;
    }
    table.add_row({core::to_string(policy),
                   sim::cat(sum.tasks_completed, "/", sum.tasks_total),
                   exp::fmt_seconds(sum.sim_duration.to_seconds()),
                   std::to_string(sum.events_executed),
                   std::to_string(sum.probes_sent),
                   std::to_string(sum.probe_reports),
                   std::to_string(sum.queries_served),
                   std::to_string(sum.switch_queue_drops),
                   std::to_string(sum.background_flows)});
  }
  table.print(std::cout);
}

}  // namespace intsched::benchtool
