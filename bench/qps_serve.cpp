// Open-loop load harness for the scheduler-as-a-service path (DESIGN.md
// §13): N producer threads drive wire-encoded rank requests through ONE
// shared serve::ServeFrontend — encode, serve (decode + flat-table
// candidate check + snapshot rank/pick + encode), decode — and time every
// round trip into per-thread benchtool::LatencyHistogram (merged after
// the window).
//
// Phases:
//   ceiling  closed loop: every producer issues back-to-back requests for
//            the window; aggregate completions/sec is the decision-rate
//            ceiling on this machine and the histogram is pure service
//            time.
//   fixed    open loop at --offered total QPS: arrivals are scheduled on
//            the wall clock and latency is measured from the *scheduled*
//            arrival, so queueing delay counts when the offered load
//            exceeds capacity (the classic coordinated-omission fix).
//            This is the phase tools/bench/BENCH_qps.json gates on.
//   ladder   --find-max: descending offered-load trials (fractions of the
//            measured ceiling) until one sustains achieved >= 95% of
//            offered with p99 <= --slo-p99-us; that offered load is the
//            max sustained QPS at the SLO.
//
// --ingest adds one live ingester task republishing telemetry refresh
// batches during the window, so producers race snapshot publishes the
// way a real deployment would. Default is off: the smoke gate wants the
// low-variance number (and a 1-core box would just timeshare).
//
// The shared frontend + tick counter are the bench's point:
// intsched-lint: allow-file(thread-share): producers must share one
//   frontend/map to measure the serving path under concurrent load

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "intsched/core/sharded_map.hpp"
#include "intsched/exp/metro.hpp"
#include "intsched/exp/report.hpp"
#include "intsched/exp/sweep_runner.hpp"
#include "intsched/net/topology_gen.hpp"
#include "intsched/serve/frontend.hpp"
#include "intsched/serve/wire.hpp"

namespace {

using namespace intsched;

struct QpsOptions {
  bool full = false;
  std::uint64_t seed = 42;
  std::int32_t pods = 4;
  /// Producer threads. 0 = auto: hardware concurrency - 1, min 1.
  int threads = 0;
  /// Measurement window / warmup, seconds of wall time per trial.
  double seconds = 1.0;
  double warmup = 0.25;
  /// Total offered load (QPS across all producers) for the fixed trial.
  double offered = 150000.0;
  bool find_max = false;
  // intsched-lint: allow(raw-unit): CLI flag, wall-clock microseconds
  double slo_p99_us = 1000.0;
  /// Explicit candidates per request; 0 = rank the whole registry
  /// (the region-pruned pick path).
  std::int32_t candidates = 0;
  std::int32_t max_results = 1;
  bool ingest = false;
  /// Rebuild-executor width for snapshot publishes (0 = auto).
  int jobs = 0;
  std::string json_path;
};

QpsOptions parse_qps_options(int argc, char** argv) {
  QpsOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") opts.full = true;
    if (arg == "--find-max") opts.find_max = true;
    if (arg == "--ingest") opts.ingest = true;
    if (arg.rfind("--seed=", 0) == 0) opts.seed = std::stoull(arg.substr(7));
    if (arg.rfind("--pods=", 0) == 0) opts.pods = std::stoi(arg.substr(7));
    if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = std::stoi(arg.substr(10));
    }
    if (arg.rfind("--seconds=", 0) == 0) {
      opts.seconds = std::stod(arg.substr(10));
    }
    if (arg.rfind("--warmup=", 0) == 0) opts.warmup = std::stod(arg.substr(9));
    if (arg.rfind("--offered=", 0) == 0) {
      opts.offered = std::stod(arg.substr(10));
    }
    if (arg.rfind("--slo-p99-us=", 0) == 0) {
      opts.slo_p99_us = std::stod(arg.substr(13));
    }
    if (arg.rfind("--candidates=", 0) == 0) {
      opts.candidates = std::stoi(arg.substr(13));
    }
    if (arg.rfind("--max-results=", 0) == 0) {
      opts.max_results = std::stoi(arg.substr(14));
    }
    if (arg.rfind("--jobs=", 0) == 0) opts.jobs = std::stoi(arg.substr(7));
    if (arg.rfind("--json=", 0) == 0) opts.json_path = arg.substr(7);
  }
  if (opts.full && opts.pods == 4) opts.pods = 48;
  if (opts.threads <= 0) {
    opts.threads = std::max(1, exp::resolve_jobs(0) - 1);
  }
  return opts;
}

net::MetroConfig make_metro_config(const QpsOptions& opts) {
  net::MetroConfig cfg;
  cfg.seed = opts.seed;
  cfg.pods = opts.pods;
  if (opts.full) {
    // Acceptance scale: 48 x (6 + 16) = 1056 switches, 768 hosts,
    // 192 edge servers.
    cfg.pod.spines = 6;
    cfg.pod.leaves = 16;
    cfg.pod.hosts_per_leaf = 1;
    cfg.pod.edge_servers_per_pod = 4;
    cfg.ring_chords = 2;
  }
  return cfg;
}

sim::SimTime at_ms(std::int64_t v) {
  return sim::SimTime::at(sim::SimDuration::milliseconds(v));
}

/// Wall clock in ns. The ONLY wall-clock read in this binary; everything
/// (pacing, windows, latencies) is derived from it.
std::int64_t wall_ns() {
  // intsched-lint: allow(wall-clock): load harness measures real time
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t h) {
  h += 0x9E3779B97F4A7C15ULL;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

/// One trial's shared parameters; start_ns is a shared future instant so
/// every producer agrees on the warmup/measurement boundaries.
struct TrialPlan {
  // intsched-lint: allow(raw-unit): wall-clock harness ns, not sim time
  std::int64_t start_ns = 0;
  // intsched-lint: allow(raw-unit): wall-clock harness ns, not sim time
  std::int64_t warmup_ns = 0;
  // intsched-lint: allow(raw-unit): wall-clock harness ns, not sim time
  std::int64_t window_ns = 0;
  /// Per-producer pacing interval; 0 = closed loop.
  // intsched-lint: allow(raw-unit): wall-clock harness ns, not sim time
  std::int64_t interval_ns = 0;
  std::uint64_t seed = 0;
  std::int32_t explicit_candidates = 0;
  std::uint8_t max_results = 1;
};

struct ProducerOut {
  benchtool::LatencyHistogram hist;
  std::int64_t completed = 0;
  std::int64_t errors = 0;
};

struct TrialStats {
  double offered_qps = 0.0;  ///< 0 = closed loop
  double achieved_qps = 0.0;
  std::int64_t completed = 0;
  std::int64_t errors = 0;
  benchtool::LatencyHistogram hist;
};

/// One producer: encode request -> frontend.serve -> decode response,
/// full round trip timed. Open-loop latency is measured from the
/// scheduled arrival; when the backlog exceeds the pacing interval the
/// spin-wait naturally disappears and queueing delay lands in the
/// histogram instead of being silently omitted.
ProducerOut run_producer(const serve::ServeFrontend& frontend,
                         const std::vector<core::NodeId>& hosts,
                         const std::vector<core::NodeId>& servers,
                         const TrialPlan& plan, std::size_t tid,
                         std::size_t producers,
                         const std::atomic<std::int64_t>& tick_ms) {
  ProducerOut out;
  serve::ServeContext ctx;
  serve::RankRequest req;
  serve::RankResponse resp;
  std::array<std::byte, serve::kMaxFrameSize> req_buf{};
  std::array<std::byte, serve::kMaxFrameSize> resp_buf{};

  req.metric = core::RankingMetric::kDelay;
  req.max_results = plan.max_results;
  const std::size_t explicit_count = std::min<std::size_t>(
      {static_cast<std::size_t>(std::max<std::int32_t>(
           0, plan.explicit_candidates)),
       serve::kMaxRequestCandidates, servers.size()});
  req.candidate_count = static_cast<std::uint16_t>(explicit_count);

  const std::int64_t measure_begin = plan.start_ns + plan.warmup_ns;
  const std::int64_t deadline = measure_begin + plan.window_ns;
  // Stagger paced producers across one interval so aggregate arrivals
  // spread instead of bursting in lockstep.
  std::int64_t next =
      plan.start_ns +
      (plan.interval_ns > 0 && producers > 0
           ? plan.interval_ns * static_cast<std::int64_t>(tid) /
                 static_cast<std::int64_t>(producers)
           : 0);
  const std::uint64_t thread_salt =
      plan.seed ^ (0xA24BAED4963EE407ULL * (tid + 1));

  std::uint64_t q = 0;
  for (;;) {
    std::int64_t t = wall_ns();
    if (t >= deadline) break;
    if (plan.interval_ns > 0) {
      if (next >= deadline) break;  // no more arrivals in this window
      if (t < next) {
        if (next - t > 200000) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(next - t - 100000));
        }
        do {
          t = wall_ns();
        } while (t < next);
      }
    }
    const std::int64_t scheduled = plan.interval_ns > 0 ? next : t;

    const std::uint64_t h = splitmix64(thread_salt ^ q);
    req.query_id = q;
    req.origin = hosts[h % hosts.size()];
    if (explicit_count != 0) {
      const std::size_t base = h % servers.size();
      for (std::size_t j = 0; j < explicit_count; ++j) {
        req.candidates[j] = servers[(base + j) % servers.size()];
      }
    }

    const std::size_t req_len =
        serve::encode_rank_request(req, req_buf.data(), req_buf.size());
    std::size_t resp_len = 0;
    bool ok =
        req_len != 0 &&
        frontend.serve(ctx, req_buf.data(), req_len, resp_buf.data(),
                       resp_buf.size(), resp_len, at_ms(tick_ms.load()));
    ok = ok &&
         serve::decode_rank_response(resp_buf.data(), resp_len, resp) ==
             serve::WireError::kOk &&
         resp.status == serve::ServeStatus::kOk && resp.entry_count > 0;
    const std::int64_t done = wall_ns();

    ++q;
    if (plan.interval_ns > 0) next += plan.interval_ns;
    if (scheduled >= measure_begin) {
      out.hist.record(done - scheduled);
      ++out.completed;
      if (!ok) ++out.errors;
    }
  }
  return out;
}

/// Live ingest: republish telemetry refresh batches (pre-generated, so
/// the generator itself stays single-threaded) every ~5 ms, advancing
/// the shared sim-time tick each publish.
void run_ingester(core::ShardedNetworkMap& map,
                  const std::vector<std::vector<telemetry::ProbeReport>>& pool,
                  // intsched-lint: allow(raw-unit): wall-clock harness ns
                  std::int64_t deadline_ns,
                  std::atomic<std::int64_t>& tick_ms) {
  std::size_t k = 0;
  while (wall_ns() < deadline_ns) {
    const std::int64_t t = tick_ms.fetch_add(50) + 50;
    map.ingest_batch(pool[k % pool.size()], at_ms(t));
    ++k;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

TrialStats run_trial(const serve::ServeFrontend& frontend,
                     core::ShardedNetworkMap& map,
                     const std::vector<core::NodeId>& hosts,
                     const std::vector<core::NodeId>& servers,
                     const std::vector<std::vector<telemetry::ProbeReport>>&
                         ingest_pool,
                     const QpsOptions& opts, double offered_qps) {
  const std::size_t producers = static_cast<std::size_t>(opts.threads);
  const bool ingest = opts.ingest && !ingest_pool.empty();
  const std::size_t tasks = producers + (ingest ? 1 : 0);

  std::atomic<std::int64_t> tick_ms{1000};
  TrialPlan plan;
  plan.warmup_ns = static_cast<std::int64_t>(opts.warmup * 1e9);
  plan.window_ns = static_cast<std::int64_t>(opts.seconds * 1e9);
  plan.interval_ns =
      offered_qps > 0.0
          ? std::llround(1e9 * static_cast<double>(producers) / offered_qps)
          : 0;
  plan.seed = opts.seed;
  plan.explicit_candidates = opts.candidates;
  plan.max_results = static_cast<std::uint8_t>(std::clamp<std::int32_t>(
      opts.max_results, 1,
      static_cast<std::int32_t>(serve::kMaxResponseEntries)));
  // 2 ms lead so every worker observes the same (future) start instant.
  plan.start_ns = wall_ns() + 2000000;
  const std::int64_t deadline =
      plan.start_ns + plan.warmup_ns + plan.window_ns;

  const exp::SweepRunner runner{static_cast<int>(tasks)};
  const std::vector<ProducerOut> outs =
      runner.map<ProducerOut>(tasks, [&](std::size_t i) {
        if (ingest && i == producers) {
          run_ingester(map, ingest_pool, deadline, tick_ms);
          return ProducerOut{};
        }
        return run_producer(frontend, hosts, servers, plan, i, producers,
                            tick_ms);
      });

  TrialStats stats;
  stats.offered_qps = offered_qps;
  for (const ProducerOut& o : outs) {
    stats.hist.merge(o.hist);
    stats.completed += o.completed;
    stats.errors += o.errors;
  }
  stats.achieved_qps =
      static_cast<double>(stats.completed) / opts.seconds;
  return stats;
}

bool sustained(const TrialStats& t, const QpsOptions& opts) {
  return t.errors == 0 && t.achieved_qps >= 0.95 * t.offered_qps &&
         t.hist.p99() <= opts.slo_p99_us * 1000.0;
}

std::string fmt_qps(double qps) {
  return std::to_string(static_cast<std::int64_t>(std::llround(qps)));
}

void add_trial_row(exp::TextTable& table, const std::string& name,
                   const TrialStats& t) {
  table.add_row({name,
                 t.offered_qps > 0.0 ? fmt_qps(t.offered_qps) : "closed",
                 fmt_qps(t.achieved_qps),
                 std::to_string(static_cast<std::int64_t>(t.hist.p50())),
                 std::to_string(static_cast<std::int64_t>(t.hist.p99())),
                 std::to_string(static_cast<std::int64_t>(t.hist.p999())),
                 std::to_string(t.errors)});
}

void write_trial_json(std::ostream& os, const char* key,
                      const TrialStats& t, bool is_sustained) {
  os << "  \"" << key << "\": {\"offered_qps\": " << t.offered_qps
     << ", \"achieved_qps\": " << t.achieved_qps
     << ", \"completed\": " << t.completed << ", \"errors\": " << t.errors
     << ", \"p50_ns\": " << t.hist.p50() << ", \"p99_ns\": " << t.hist.p99()
     << ", \"p999_ns\": " << t.hist.p999()
     << ", \"sustained\": " << (is_sustained ? "true" : "false") << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const QpsOptions opts = parse_qps_options(argc, argv);
  if (opts.pods <= 0 || opts.seconds <= 0.0 || opts.warmup < 0.0 ||
      opts.offered <= 0.0) {
    std::cerr << "qps_serve: --pods/--seconds/--offered must be positive\n";
    return 2;
  }

  const net::MetroConfig metro_cfg = make_metro_config(opts);
  const net::GenTopology topo = net::TopologyGen::ring_of_pods(metro_cfg);
  const std::vector<std::string> problems = topo.validate();
  if (!problems.empty()) {
    std::cerr << "qps_serve: generated topology is malformed:\n";
    for (const std::string& p : problems) std::cerr << "  " << p << "\n";
    return 2;
  }
  const std::vector<core::NodeId> servers = topo.edge_servers();
  const std::vector<core::NodeId> hosts = topo.hosts();

  std::cout << "qps_serve: " << opts.pods << " pods, " << topo.switch_count()
            << " switches, " << hosts.size() << " hosts, " << servers.size()
            << " edge servers; " << opts.threads << " producer thread(s), "
            << opts.seconds << "s window (+" << opts.warmup
            << "s warmup), seed " << opts.seed
            << (opts.ingest ? ", live ingest" : "") << "\n";

  // Seed the map with one full telemetry sweep so every link has an
  // estimate, then (optionally) pre-generate refresh batches for the
  // live-ingest task.
  exp::MetroTelemetryGen telemetry{topo,
                                   exp::MetroTelemetryConfig{.seed = opts.seed}};
  core::ShardedMapConfig map_cfg;
  map_cfg.rebuild_executor = exp::make_parallel_for(opts.jobs);
  core::ShardedNetworkMap map{core::RegionAssignment::from_topology(topo),
                              map_cfg};
  map.ingest_batch(telemetry.full_sweep(), at_ms(1000));

  std::vector<std::vector<telemetry::ProbeReport>> ingest_pool;
  if (opts.ingest) {
    const auto refresh_count = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(topo.links.size()) / 8);
    for (int i = 0; i < 32; ++i) {
      ingest_pool.push_back(telemetry.refresh(refresh_count));
    }
  }

  serve::ServeFrontend frontend{map};
  for (const core::NodeId s : servers) frontend.register_server(s);

  // Phase 1: closed-loop ceiling (pure service rate, no pacing).
  const TrialStats ceiling =
      run_trial(frontend, map, hosts, servers, ingest_pool, opts, 0.0);
  if (ceiling.completed == 0) {
    std::cerr << "qps_serve: ceiling trial completed zero requests\n";
    return 2;
  }

  // Phase 2: fixed open-loop trial at --offered (the gated number).
  const TrialStats fixed =
      run_trial(frontend, map, hosts, servers, ingest_pool, opts,
                opts.offered);
  const bool fixed_ok = sustained(fixed, opts);

  // Phase 3 (--find-max): descend fractions of the ceiling until one
  // offered load sustains at the SLO.
  double max_sustained = 0.0;
  std::vector<std::pair<TrialStats, bool>> ladder;
  if (opts.find_max) {
    for (const double frac : {1.05, 0.95, 0.85, 0.75, 0.65, 0.55, 0.45,
                              0.35, 0.25, 0.15}) {
      const double offered = frac * ceiling.achieved_qps;
      if (offered <= 0.0) break;
      const TrialStats t = run_trial(frontend, map, hosts, servers,
                                     ingest_pool, opts, offered);
      const bool ok = sustained(t, opts);
      ladder.emplace_back(t, ok);
      if (ok) {
        max_sustained = offered;
        break;
      }
    }
  }

  exp::TextTable table{"qps_serve: serving-path load"};
  table.set_headers({"trial", "offered qps", "achieved qps", "p50 (ns)",
                     "p99 (ns)", "p999 (ns)", "errors"});
  add_trial_row(table, "ceiling", ceiling);
  add_trial_row(table, "fixed", fixed);
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    add_trial_row(table, "ladder[" + std::to_string(i) + "]",
                  ladder[i].first);
  }
  table.print(std::cout);

  std::cout << "decision-rate ceiling: " << fmt_qps(ceiling.achieved_qps)
            << " qps aggregate over " << opts.threads << " thread(s)\n";
  std::cout << "fixed " << fmt_qps(fixed.offered_qps)
            << " qps offered: p50/p99/p999 = "
            << static_cast<std::int64_t>(fixed.hist.p50()) << "/"
            << static_cast<std::int64_t>(fixed.hist.p99()) << "/"
            << static_cast<std::int64_t>(fixed.hist.p999()) << " ns, "
            << (fixed_ok ? "SUSTAINED" : "NOT sustained") << " at p99 <= "
            << opts.slo_p99_us << " us\n";
  if (opts.find_max) {
    std::cout << "max sustained qps at SLO: " << fmt_qps(max_sustained)
              << "\n";
  }

  if (!opts.json_path.empty()) {
    std::ofstream json{opts.json_path};
    if (!json) {
      std::cerr << "qps_serve: cannot write " << opts.json_path << "\n";
      return 2;
    }
    json << "{\n";
    json << "  \"bench\": \"qps_serve\",\n";
    json << "  \"pods\": " << opts.pods << ",\n";
    json << "  \"switches\": " << topo.switch_count() << ",\n";
    json << "  \"hosts\": " << hosts.size() << ",\n";
    json << "  \"servers\": " << servers.size() << ",\n";
    json << "  \"threads\": " << opts.threads << ",\n";
    json << "  \"seconds\": " << opts.seconds << ",\n";
    json << "  \"seed\": " << opts.seed << ",\n";
    json << "  \"ingest\": " << (opts.ingest ? "true" : "false") << ",\n";
    json << "  \"slo_p99_us\": " << opts.slo_p99_us << ",\n";
    json << "  \"ceiling_qps\": " << ceiling.achieved_qps << ",\n";
    write_trial_json(json, "ceiling", ceiling, false);
    json << ",\n";
    write_trial_json(json, "fixed", fixed, fixed_ok);
    json << ",\n";
    json << "  \"max_sustained_qps\": " << max_sustained << "\n";
    json << "}\n";
    std::cout << "wrote " << opts.json_path << "\n";
  }
  return 0;
}
