// Ablation: sensitivity of delay-based ranking to the queue-to-latency
// conversion factor k (Algorithm 1). The paper fixes k = 20 ms and defers
// tuning to future work; this sweep shows the gain-vs-nearest as k moves
// from "ignore queues" (k ~ 0) to "panic at any queue" (k = 100 ms).
//
// Flags: --full, --seed=N, --reps=N, --jobs=N

#include "bench_common.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  std::cout << "Ablation: Algorithm 1 conversion factor k\n"
               "(paper default k = 20 ms; small k under-reacts to "
               "congestion, huge k chases any transient queue)\n\n";

  // Baseline (nearest) once per rep; reused across the k sweep.
  exp::ExperimentConfig base =
      benchtool::make_base_config(edge::WorkloadKind::kServerless, opts);
  exp::ExperimentConfig nearest_cfg = base;
  nearest_cfg.policy = core::PolicyKind::kNearest;
  const std::vector<exp::ExperimentResult> nearest_runs =
      benchtool::run_reps(nearest_cfg, opts.reps, opts.jobs);

  exp::TextTable table{"completion-time gain vs nearest, by k"};
  table.set_headers({"k (ms)", "VS", "S", "M", "L", "overall"});
  for (const std::int64_t k_ms : {0, 5, 10, 20, 50, 100}) {
    exp::ExperimentConfig arm = base;
    arm.policy = core::PolicyKind::kIntDelay;
    arm.ranker.k_factor = sim::SimDuration::milliseconds(k_ms);
    const std::vector<exp::ExperimentResult> runs =
        benchtool::run_reps(arm, opts.reps, opts.jobs);
    std::vector<std::string> row{std::to_string(k_ms)};
    sim::RunningStats treat_all;
    sim::RunningStats base_all;
    for (const edge::TaskClass cls : edge::kAllTaskClasses) {
      const auto t = benchtool::pooled_class_mean(runs, cls, false);
      const auto n = benchtool::pooled_class_mean(nearest_runs, cls, false);
      row.push_back(t && n ? exp::fmt_percent(exp::percent_gain(*n, *t))
                           : std::string{"n/a"});
      if (t && n) {
        treat_all.add(*t);
        base_all.add(*n);
      }
    }
    row.push_back(exp::fmt_percent(
        exp::percent_gain(base_all.sum(), treat_all.sum())));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
