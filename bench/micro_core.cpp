// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the scheduler: event queue churn, per-packet pipeline cost, INT
// probe processing, Dijkstra, and Algorithm-1 ranking.

#include <benchmark/benchmark.h>

#include "intsched/core/ranking.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/sim/event_queue.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/sim/strfmt.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/host_stack.hpp"
#include "intsched/transport/tcp.hpp"

namespace {

using namespace intsched;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng{1};
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(sim::SimTime::nanoseconds(t + rng.uniform_int(0, 1'000'000)),
             [] {});
    }
    for (int i = 0; i < 64; ++i) {
      auto [at, cb] = q.pop();
      t = at.ns();
      benchmark::DoNotOptimize(cb);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueuePushPop);

/// Timer-heavy workloads (TCP retransmit timers, staleness timeouts) arm
/// events that are almost always cancelled before firing; this measures
/// the slab's tombstone path: push + cancel churn with a live heap.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng{1};
  std::int64_t t = 0;
  std::vector<sim::EventId> armed;
  for (auto _ : state) {
    armed.clear();
    for (int i = 0; i < 64; ++i) {
      armed.push_back(q.push(
          sim::SimTime::nanoseconds(t + 1 + rng.uniform_int(0, 1'000'000)),
          [] {}));
    }
    // Cancel three quarters of them (the timer-churn pattern), fire the
    // rest so the heap drains its tombstones.
    for (std::size_t i = 0; i < armed.size(); ++i) {
      if (i % 4 != 0) q.cancel(armed[i]);
    }
    for (int i = 0; i < 16; ++i) {
      auto [at, cb] = q.pop();
      t = at.ns();
      benchmark::DoNotOptimize(cb);
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_RngU64(benchmark::State& state) {
  sim::Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngU64);

void BM_DijkstraFig4(benchmark::State& state) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  const net::Graph& g = network.topology().graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::dijkstra(g, core::NodeId{0}));
  }
}
BENCHMARK(BM_DijkstraFig4);

/// Cost of pushing one data packet through a P4 switch pipeline
/// (parse + table lookup + enqueue + egress), amortized.
void BM_SwitchPipelinePerPacket(benchmark::State& state) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& a = topo.add_node<net::Host>("a");
  auto& b = topo.add_node<net::Host>("b");
  p4::SwitchConfig cfg;
  cfg.proc_delay_mean = sim::SimDuration::microseconds(1);
  cfg.stall_probability = 0.0;
  auto& sw = topo.add_node<p4::P4Switch>("sw", cfg);
  net::LinkConfig link;
  link.prop_delay = sim::SimDuration::microseconds(1);
  topo.connect(a, sw, link);
  topo.connect(b, sw, link);
  topo.install_routes();
  sw.load_program(std::make_unique<telemetry::IntTelemetryProgram>());
  std::int64_t delivered = 0;
  b.set_receiver([&](net::Packet&&) { ++delivered; });
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      net::Packet p;
      p.dst = b.id();
      p.wire_size = 1500;
      a.send(std::move(p));
    }
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SwitchPipelinePerPacket);

/// Full probe round: host -> 3 switches -> collector, parse included.
void BM_ProbeRoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& a = topo.add_node<net::Host>("a");
  auto& b = topo.add_node<net::Host>("b");
  p4::SwitchConfig cfg;
  cfg.proc_delay_mean = sim::SimDuration::microseconds(1);
  cfg.stall_probability = 0.0;
  std::vector<p4::P4Switch*> switches;
  for (int i = 0; i < 3; ++i) {
    switches.push_back(&topo.add_node<p4::P4Switch>(sim::cat("s", i), cfg));
  }
  net::LinkConfig link;
  link.prop_delay = sim::SimDuration::microseconds(1);
  topo.connect(a, *switches[0], link);
  topo.connect(*switches[0], *switches[1], link);
  topo.connect(*switches[1], *switches[2], link);
  topo.connect(*switches[2], b, link);
  topo.install_routes();
  for (auto* sw : switches) {
    sw->load_program(std::make_unique<telemetry::IntTelemetryProgram>());
  }
  transport::HostStack stack_b{b};
  telemetry::IntCollector collector{b};
  stack_b.bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });
  telemetry::ProbeAgent agent{a, b.id()};
  for (auto _ : state) {
    agent.send_probe();
    sim.run();
  }
  benchmark::DoNotOptimize(collector.probes_received());
}
BENCHMARK(BM_ProbeRoundTrip);

/// Ingest + window-max congestion queries against the monotonic
/// max-deque, interleaved the way the scheduler sees them: a burst of
/// probe reports per probing interval, many ranking queries in between.
void BM_WindowMaxQuery(benchmark::State& state) {
  core::NetworkMap map;
  sim::Rng rng{1};
  sim::SimTime now = sim::SimTime::zero();
  const core::NodeId device{3};
  std::int64_t acc = 0;
  for (auto _ : state) {
    now += sim::SimDuration::milliseconds(10);
    telemetry::ProbeReport report;
    report.src = core::NodeId{100};
    report.dst = core::NodeId{101};
    net::IntStackEntry entry;
    entry.device = device;
    entry.ingress_port = 0;
    entry.egress_port = 1;
    entry.max_queue_pkts = rng.uniform_int(0, 64);
    entry.device_max_queue_pkts = entry.max_queue_pkts;
    report.entries.push_back(entry);
    map.ingest(report, now);
    for (int i = 0; i < 32; ++i) {
      acc += map.device_max_queue(device, now);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_WindowMaxQuery);

/// Algorithm 1 over the inferred Fig. 4 map with live telemetry.
void BM_RankSevenCandidates(benchmark::State& state) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  const core::NodeId scheduler_id = network.scheduler_host().id();
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  transport::HostStack* scheduler_stack = nullptr;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
    if (h->id() == scheduler_id) scheduler_stack = stacks.back().get();
  }
  telemetry::IntCollector collector{network.scheduler_host()};
  core::NetworkMap map;
  scheduler_stack->bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });
  collector.set_handler([&](const telemetry::ProbeReport& r) {
    map.ingest(r, sim.now());
  });
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == scheduler_id) continue;
    agents.push_back(
        std::make_unique<telemetry::ProbeAgent>(*h, scheduler_id));
    agents.back()->start();
  }
  sim.run_until(sim::SimTime::seconds(1));
  core::Ranker ranker{map};
  const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{2}, core::NodeId{3}, core::NodeId{4}, core::NodeId{5}, core::NodeId{6}, core::NodeId{7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ranker.rank(
        core::NodeId{0}, candidates, core::RankingMetric::kDelay, sim.now()));
  }
}
BENCHMARK(BM_RankSevenCandidates);

/// End-to-end simulated TCP throughput: wall time per simulated megabyte.
void BM_TcpTransferPerMB(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Topology topo{sim};
    auto& a = topo.add_node<net::Host>("a");
    auto& b = topo.add_node<net::Host>("b");
    p4::SwitchConfig cfg;
    cfg.stall_probability = 0.0;
    auto& sw = topo.add_node<p4::P4Switch>("sw", cfg);
    topo.connect(a, sw, net::LinkConfig{});
    topo.connect(b, sw, net::LinkConfig{});
    topo.install_routes();
    sw.load_program(std::make_unique<p4::ForwardingProgram>());
    transport::HostStack stack_a{a};
    transport::HostStack stack_b{b};
    transport::TcpListener listener{
        stack_b, net::kTaskPort,
        [](core::NodeId, sim::Bytes, std::shared_ptr<const net::AppMessage>) {
        }};
    transport::TcpSender sender{stack_a, b.id(), net::kTaskPort,
                                1 * sim::kMB};
    sender.start();
    sim.run();
    benchmark::DoNotOptimize(sender.complete());
  }
  state.SetBytesProcessed(state.iterations() * sim::kMB);
}
BENCHMARK(BM_TcpTransferPerMB)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
