// Reproduces paper Fig. 6: distributed-computing workload (three tasks per
// job, offloaded to the top-3 ranked servers) with delay-based ranking.
//
// Paper expectation: 7-13% completion-time gain over nearest — smaller
// than the serverless case because three concurrent tasks must all find
// uncongested paths.
//
// Flags: --full, --csv, --seed=N, --jobs=N

#include "bench_common.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  exp::ExperimentConfig cfg =
      benchtool::make_base_config(edge::WorkloadKind::kDistributed, opts);

  std::cout << "Fig. 6 reproduction: distributed workload, delay-based "
               "ranking\n(paper: 7-13% completion-time gain over nearest)\n\n";

  const auto results = benchtool::run_suite(
      cfg,
      {core::PolicyKind::kIntDelay, core::PolicyKind::kNearest,
       core::PolicyKind::kRandom},
      opts.reps, opts.jobs);

  benchtool::print_comparison(
      "Fig 6: avg task completion time, distributed / delay ranking",
      results, core::PolicyKind::kIntDelay, /*transfer_time=*/false,
      opts.csv);
  benchtool::print_run_summary(results);
  return 0;
}
