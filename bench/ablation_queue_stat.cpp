// Ablation: maximum vs average queue-occupancy statistic for hop-latency
// inference. Reproduces the paper's §III-C finding: "taking average of all
// queue sizes observed during a probing period leads to inconclusive
// results ... even if a network device is running at full capacity,
// average queue latency returns close to zero".
//
// Part 1 re-runs the Fig.-3 calibration and prints both statistics per
// utilization level. Part 2 compares scheduling gains with each statistic.
//
// Flags: --full, --seed=N, --reps=N, --jobs=N

#include "bench_common.hpp"
#include "intsched/net/topology.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/iperf.hpp"

using namespace intsched;

namespace {

struct StatPoint {
  double avg_of_max = 0.0;
  double avg_of_avg = 0.0;
};

StatPoint run_calibration_point(double utilization, sim::SimTime duration) {
  sim::Simulator simulator;
  net::Topology topo{simulator};
  auto& h1 = topo.add_node<net::Host>("h1");
  auto& h2 = topo.add_node<net::Host>("h2");
  p4::SwitchConfig sw_cfg;
  sw_cfg.seed = 42;
  auto& s1 = topo.add_node<p4::P4Switch>("s1", sw_cfg);
  net::LinkConfig link;
  topo.connect(h1, s1, link);
  topo.connect(h2, s1, link);
  topo.install_routes();
  s1.load_program(std::make_unique<telemetry::IntTelemetryProgram>());

  transport::HostStack stack1{h1};
  transport::HostStack stack2{h2};
  transport::IperfUdpSink sink{stack2};

  const sim::SimDuration per_pkt =
      link.rate.transmission_time(1500) + sw_cfg.proc_delay_mean;
  transport::IperfUdpSender::Config flow;
  flow.rate = sim::DataRate::bits_per_second(1500.0 * 8.0 /
                                             per_pkt.to_seconds()) *
              utilization;
  transport::IperfUdpSender iperf{stack1, h2.id(), flow};
  if (utilization > 0.0) iperf.start((duration).since_epoch());

  telemetry::ProbeAgent agent{h1, h2.id()};
  telemetry::IntCollector collector{h2};
  stack2.bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });
  sim::RunningStats max_stat;
  sim::RunningStats avg_stat;
  collector.set_handler([&](const telemetry::ProbeReport& report) {
    for (const auto& e : report.entries) {
      max_stat.add(static_cast<double>(e.device_max_queue_pkts));
      avg_stat.add(static_cast<double>(e.device_avg_queue_x100) / 100.0);
    }
  });
  agent.start();
  simulator.run_until(duration);
  return {max_stat.mean(), avg_stat.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);
  const sim::SimTime duration =
      opts.full ? sim::SimTime::seconds(300) : sim::SimTime::seconds(40);

  std::cout << "Ablation: max vs average queue statistic\n\n";

  exp::TextTable cal{"calibration: statistic value vs utilization"};
  cal.set_headers({"util%", "mean of window-max (pkts)",
                   "mean of window-avg (pkts)"});
  for (int pct = 0; pct <= 100; pct += 20) {
    const StatPoint p =
        run_calibration_point(static_cast<double>(pct) / 100.0, duration);
    cal.add_row({std::to_string(pct), exp::fmt_seconds(p.avg_of_max),
                 exp::fmt_seconds(p.avg_of_avg)});
  }
  cal.print(std::cout);
  std::cout << "(paper: the average stays near zero even at full load "
               "because most packets observe an empty or short queue)\n\n";

  // Part 2: scheduling quality with each statistic.
  exp::ExperimentConfig base =
      benchtool::make_base_config(edge::WorkloadKind::kServerless, opts);
  exp::TextTable sched{"scheduling gain vs nearest, by statistic"};
  sched.set_headers({"statistic", "overall gain"});
  exp::ExperimentConfig nearest_cfg = base;
  nearest_cfg.policy = core::PolicyKind::kNearest;
  const std::vector<exp::ExperimentResult> nearest_runs =
      benchtool::run_reps(nearest_cfg, opts.reps, opts.jobs);
  for (const auto stat :
       {core::QueueStatistic::kMaximum, core::QueueStatistic::kAverage}) {
    exp::ExperimentConfig arm = base;
    arm.policy = core::PolicyKind::kIntDelay;
    arm.ranker.queue_statistic = stat;
    const std::vector<exp::ExperimentResult> runs =
        benchtool::run_reps(arm, opts.reps, opts.jobs);
    double treat = 0.0;
    double baseline = 0.0;
    for (const edge::TaskClass cls : edge::kAllTaskClasses) {
      const auto t = benchtool::pooled_class_mean(runs, cls, false);
      const auto n = benchtool::pooled_class_mean(nearest_runs, cls, false);
      if (t && n) {
        treat += *t;
        baseline += *n;
      }
    }
    sched.add_row({stat == core::QueueStatistic::kMaximum ? "maximum"
                                                          : "average",
                   exp::fmt_percent(exp::percent_gain(baseline, treat))});
  }
  sched.print(std::cout);
  return 0;
}
