// Ablation: the paper's k * max_queue hop-latency heuristic vs a direct
// in-switch dwell-time measurement (what a full INT deployment exports).
// The heuristic needs a hand-tuned k; the measurement needs an extra
// register but no tuning. How much scheduling quality does the heuristic
// give up?
//
// Flags: --full, --seed=N, --reps=N, --jobs=N

#include "bench_common.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);
  std::cout << "Ablation: k*maxQueue heuristic vs measured hop latency\n\n";

  exp::ExperimentConfig base =
      benchtool::make_base_config(edge::WorkloadKind::kServerless, opts);
  exp::ExperimentConfig nearest_cfg = base;
  nearest_cfg.policy = core::PolicyKind::kNearest;
  const std::vector<exp::ExperimentResult> nearest_runs =
      benchtool::run_reps(nearest_cfg, opts.reps, opts.jobs);

  exp::TextTable table{"completion-time gain vs nearest"};
  table.set_headers({"hop-latency source", "overall gain"});
  struct Arm {
    const char* name;
    core::QueueStatistic stat;
  };
  for (const Arm arm :
       {Arm{"k * max queue (paper)", core::QueueStatistic::kMaximum},
        Arm{"measured dwell time", core::QueueStatistic::kMeasuredHopLatency}}) {
    exp::ExperimentConfig arm_cfg = base;
    arm_cfg.policy = core::PolicyKind::kIntDelay;
    arm_cfg.ranker.queue_statistic = arm.stat;
    const std::vector<exp::ExperimentResult> runs =
        benchtool::run_reps(arm_cfg, opts.reps, opts.jobs);
    double treat = 0.0;
    double baseline = 0.0;
    for (const edge::TaskClass cls : edge::kAllTaskClasses) {
      const auto t = benchtool::pooled_class_mean(runs, cls, false);
      const auto n = benchtool::pooled_class_mean(nearest_runs, cls, false);
      if (t && n) {
        treat += *t;
        baseline += *n;
      }
    }
    table.add_row(
        {arm.name, exp::fmt_percent(exp::percent_gain(baseline, treat))});
  }
  table.print(std::cout);
  std::cout << "(the measured variant charges true queueing delay — often "
               "milliseconds — where the paper's k = 20 ms deliberately "
               "overreacts to any queue; both beat the baseline)\n";
  return 0;
}
