// Reproduces paper Table I: the data-size and execution-time ranges of the
// four task classes, and validates that the workload generator samples
// uniformly inside them.
//
// Flags: --seed=N

#include "bench_common.hpp"
#include "intsched/sim/stats.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  std::cout << "Table I reproduction: task classes and sampled statistics\n\n";

  exp::TextTable spec_table{"Table I: configured ranges"};
  spec_table.set_headers(
      {"type", "data size (KB)", "execution time (ms)"});
  for (const edge::TaskClass cls : edge::kAllTaskClasses) {
    const auto& spec = edge::task_class_spec(cls);
    spec_table.add_row(
        {sim::cat(to_string(cls), " (", edge::short_name(cls), ")"),
         sim::cat(spec.data_min / sim::kKB, " - ", spec.data_max / sim::kKB),
         sim::cat(spec.exec_min.ns() / 1'000'000, " - ",
                  spec.exec_max.ns() / 1'000'000)});
  }
  spec_table.print(std::cout);

  // Sample 10k tasks per class and report the observed spread.
  sim::Rng rng{opts.seed};
  exp::TextTable sample_table{"sampled statistics (10000 tasks per class)"};
  sample_table.set_headers({"type", "data KB min/mean/max",
                            "exec ms min/mean/max"});
  for (const edge::TaskClass cls : edge::kAllTaskClasses) {
    sim::RunningStats data_kb;
    sim::RunningStats exec_ms;
    for (int i = 0; i < 10000; ++i) {
      const edge::TaskSpec t = edge::sample_task(cls, i, 0, rng);
      data_kb.add(static_cast<double>(t.data_bytes) / 1000.0);
      exec_ms.add(t.exec_time.to_milliseconds());
    }
    sample_table.add_row(
        {edge::short_name(cls),
         sim::cat(sim::fixed(data_kb.min(), 0), " / ",
                  sim::fixed(data_kb.mean(), 0), " / ",
                  sim::fixed(data_kb.max(), 0)),
         sim::cat(sim::fixed(exec_ms.min(), 0), " / ",
                  sim::fixed(exec_ms.mean(), 0), " / ",
                  sim::fixed(exec_ms.max(), 0))});
  }
  sample_table.print(std::cout);
  return 0;
}
