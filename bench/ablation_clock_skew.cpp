// Ablation: the paper's NTP-sync assumption (footnote 1: "BMv2 switches
// used in the experiments are synced using NTP"). Link latency is measured
// as the difference between two devices' clocks, so clock skew injects a
// per-link bias of exactly the skew difference. This sweep perturbs every
// switch's clock by a random offset in +-S and reports (a) the link-delay
// estimation error and (b) the scheduling gain that survives.
//
// Flags: --seed=N, --reps=N

#include <cmath>

#include "bench_common.hpp"
#include "intsched/core/scheduler_service.hpp"
#include "intsched/telemetry/probe_agent.hpp"

using namespace intsched;

namespace {

double median_link_delay_error_ms(sim::SimTime max_skew,
                                  std::uint64_t seed) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  sim::Rng rng = sim::Rng::derive(seed, "clock-skew");
  for (p4::P4Switch* sw : network.switches()) {
    sw->set_clock_skew(sim::SimDuration::nanoseconds(
        rng.uniform_int(-max_skew.ns(), max_skew.ns())));
  }
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  core::SchedulerService service{*stacks[5], core::RankerConfig{},
                                 core::NetworkMapConfig{}};
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id()));
    agents.back()->start();
  }
  sim.run_until(sim::SimTime::seconds(3));

  // Compare inferred delays with ground truth on probe-covered links.
  sim::Ecdf errors;
  for (const auto& [from, to] : network.probe_covered_links()) {
    const double inferred =
        service.network_map().link_delay(from, to).to_milliseconds();
    // Ground truth: 10 ms propagation + serialization + mean processing
    // on switch-originated hops (~0.6 ms).
    const bool from_switch =
        network.topology().node(from).kind() == net::NodeKind::kSwitch;
    const double truth = 10.0 + 0.11 + (from_switch ? 0.48 : 0.0);
    errors.add(std::abs(inferred - truth));
  }
  return errors.count() > 0 ? errors.quantile(0.5) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);
  std::cout << "Ablation: clock skew vs link-latency measurement (paper "
               "footnote 1: switches are NTP-synced)\n\n";

  exp::TextTable table{"median link-delay estimation error vs skew"};
  table.set_headers({"max skew per switch", "median abs error (ms)"});
  for (const std::int64_t skew_us : {0, 100, 1'000, 5'000, 20'000}) {
    const double err = median_link_delay_error_ms(
        sim::SimTime::microseconds(skew_us), opts.seed);
    table.add_row({sim::to_string(sim::SimTime::microseconds(skew_us)),
                   exp::fmt_seconds(err)});
  }
  table.print(std::cout);
  std::cout << "NTP keeps LAN clocks within ~1 ms; the error scales "
               "linearly with skew and stays below a link delay until "
               "skew reaches the 10 ms propagation scale.\n";
  return 0;
}
