// Reproduces paper Fig. 9: impact of the probing interval on average data
// transfer time, under slowly changing (Traffic 1: 30 s on / 30 s off,
// medium tasks) and rapidly changing (Traffic 2: 5 s on / 5 s off, small
// tasks) background congestion.
//
// Paper expectation: shorter probing intervals yield lower transfer times
// in both scenarios (e.g. ~12.5 s at 0.1 s vs >15 s at 30 s for Traffic 1
// — >20% difference); stale telemetry hurts more when congestion changes
// faster.
//
// Flags: --full, --csv, --seed=N, --jobs=N

#include <iterator>

#include "bench_common.hpp"

using namespace intsched;

namespace {

exp::ExperimentConfig make_point_config(exp::BackgroundMode mode,
                                        edge::TaskClass cls,
                                        sim::SimDuration probe_interval,
                                        const benchtool::Options& opts) {
  exp::ExperimentConfig cfg =
      benchtool::make_base_config(edge::WorkloadKind::kDistributed, opts);
  cfg.policy = core::PolicyKind::kIntBandwidth;
  cfg.background.mode = mode;
  cfg.workload.classes = {cls};
  cfg.probe_interval = probe_interval;
  return cfg;
}

/// Pools mean transfer time over the repetitions of one sweep point.
double pooled_transfer_mean(const std::vector<exp::ExperimentResult>& reps) {
  sim::RunningStats transfer;
  for (const exp::ExperimentResult& result : reps) {
    for (const edge::TaskRecord* r : result.metrics.records()) {
      if (r->is_complete() && r->transfer_end >= sim::SimTime::zero()) {
        transfer.add(r->transfer_time().to_seconds());
      }
    }
  }
  return transfer.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  std::cout << "Fig. 9 reproduction: probing interval vs avg transfer time\n"
               "(paper: 0.1 s probing beats 30 s probing by >20%; both "
               "traffic patterns degrade as probes get stale)\n\n";

  const sim::SimDuration intervals[] = {
      sim::SimDuration::milliseconds(100), sim::SimDuration::seconds(5),
      sim::SimDuration::seconds(10), sim::SimDuration::seconds(20),
      sim::SimDuration::seconds(30)};

  // The whole sweep — (interval, traffic, rep) — is one flat trial batch,
  // so every simulation runs concurrently; rows are then aggregated in the
  // original interval-major order, byte-identical to the serial sweep.
  std::vector<exp::ExperimentConfig> points;
  for (const sim::SimDuration interval : intervals) {
    points.push_back(make_point_config(exp::BackgroundMode::kPattern1,
                                       edge::TaskClass::kMedium, interval,
                                       opts));
    points.push_back(make_point_config(exp::BackgroundMode::kPattern2,
                                       edge::TaskClass::kSmall, interval,
                                       opts));
  }
  std::vector<exp::ExperimentConfig> trials;
  trials.reserve(points.size() * static_cast<std::size_t>(opts.reps));
  for (const exp::ExperimentConfig& point : points) {
    for (std::int32_t rep = 0; rep < opts.reps; ++rep) {
      exp::ExperimentConfig cfg = point;
      cfg.seed = opts.seed + static_cast<std::uint64_t>(rep);
      trials.push_back(cfg);
    }
  }
  const exp::SweepRunner runner{opts.jobs};
  std::vector<exp::ExperimentResult> results =
      runner.map<exp::ExperimentResult>(trials.size(), [&](std::size_t i) {
        return exp::run_experiment(trials[i]);
      });

  exp::TextTable table{"Fig 9: avg data transfer time (s) by probing interval"};
  table.set_headers({"interval", "Traffic 1 (M tasks)", "Traffic 2 (S tasks)"});
  std::vector<std::vector<std::string>> csv_rows;
  const auto reps_of_point = [&](std::size_t point_idx) {
    const std::size_t reps = static_cast<std::size_t>(opts.reps);
    const auto first =
        results.begin() + static_cast<std::ptrdiff_t>(point_idx * reps);
    return std::vector<exp::ExperimentResult>(
        std::make_move_iterator(first),
        std::make_move_iterator(first + static_cast<std::ptrdiff_t>(reps)));
  };
  for (std::size_t i = 0; i < std::size(intervals); ++i) {
    const double t1 = pooled_transfer_mean(reps_of_point(2 * i));
    const double t2 = pooled_transfer_mean(reps_of_point(2 * i + 1));
    table.add_row({sim::to_string(intervals[i]), exp::fmt_seconds(t1),
                   exp::fmt_seconds(t2)});
    csv_rows.push_back({exp::fmt_seconds(intervals[i].to_seconds()),
                        exp::fmt_seconds(t1), exp::fmt_seconds(t2)});
  }
  table.print(std::cout);

  if (opts.csv) {
    std::cout << "csv:interval_s,traffic1_transfer_s,traffic2_transfer_s\n";
    for (const auto& row : csv_rows) exp::write_csv_row(std::cout, row);
  }
  return 0;
}
