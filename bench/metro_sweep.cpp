// Metro-scale two-level scheduling sweep (DESIGN.md §11): generates a
// ring-of-pods metro with TopologyGen, synthesizes INT telemetry epochs
// with exp::MetroTelemetryGen, and runs the same million-task decision
// stream through two arms —
//
//   flat     core::ConcurrentNetworkMap (snapshot mode): every decision is
//            a metro-wide rank over one flat map.
//   sharded  core::ShardedNetworkMap: region shards + summary graph,
//            decisions via MetroView::pick (two-level with region
//            pruning), snapshot rebuilds parallelized over regions.
//
// Both arms consume byte-identical inputs (the report batches are
// generated once; the task stream is re-derived from the same seed), so
// the chosen-server fingerprints and the agreement fraction measure the
// two-level path's fidelity while the wall clocks measure its win.
//
// Default is a 2-pod smoke configuration (CI's metro-smoke step); --full
// is the acceptance-scale run: 48 pods x (6 spines + 16 leaves) = 1056
// switches, 768 hosts, 192 edge servers, one million tasks.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "intsched/core/concurrent_map.hpp"
#include "intsched/core/sharded_map.hpp"
#include "intsched/edge/workload.hpp"
#include "intsched/exp/metro.hpp"
#include "intsched/exp/report.hpp"
#include "intsched/exp/sweep_runner.hpp"
#include "intsched/net/topology_gen.hpp"
#include "intsched/sim/hash.hpp"
#include "intsched/sim/stats.hpp"

namespace {

using intsched::core::ConcurrentNetworkMap;
using intsched::core::PickStats;
using intsched::core::RankingMetric;
using intsched::core::RegionAssignment;
using intsched::core::ServerRank;
using intsched::core::ShardedMapConfig;
using intsched::core::ShardedNetworkMap;

struct MetroOptions {
  bool full = false;
  bool csv = false;
  std::uint64_t seed = 42;
  std::int32_t pods = 2;
  std::int64_t tasks = 20000;
  std::int32_t epochs = 50;
  int jobs = 0;
  std::string json_path;
};

MetroOptions parse_metro_options(int argc, char** argv) {
  MetroOptions opts;
  bool tasks_set = false;
  bool pods_set = false;
  bool epochs_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") opts.full = true;
    if (arg == "--csv") opts.csv = true;
    if (arg.rfind("--seed=", 0) == 0) opts.seed = std::stoull(arg.substr(7));
    if (arg.rfind("--pods=", 0) == 0) {
      opts.pods = std::stoi(arg.substr(7));
      pods_set = true;
    }
    if (arg.rfind("--tasks=", 0) == 0) {
      opts.tasks = std::stoll(arg.substr(8));
      tasks_set = true;
    }
    if (arg.rfind("--epochs=", 0) == 0) {
      opts.epochs = std::stoi(arg.substr(9));
      epochs_set = true;
    }
    if (arg.rfind("--jobs=", 0) == 0) opts.jobs = std::stoi(arg.substr(7));
    if (arg.rfind("--json=", 0) == 0) opts.json_path = arg.substr(7);
  }
  if (opts.full) {
    if (!pods_set) opts.pods = 48;
    if (!tasks_set) opts.tasks = 1000000;
    if (!epochs_set) opts.epochs = 200;
  }
  return opts;
}

intsched::net::MetroConfig make_metro_config(const MetroOptions& opts) {
  intsched::net::MetroConfig cfg;
  cfg.seed = opts.seed;
  cfg.pods = opts.pods;
  if (opts.full) {
    // Acceptance scale: 48 x (6 + 16) = 1056 switches, 768 hosts,
    // 192 edge servers.
    cfg.pod.spines = 6;
    cfg.pod.leaves = 16;
    cfg.pod.hosts_per_leaf = 1;
    cfg.pod.edge_servers_per_pod = 4;
    cfg.ring_chords = 2;
  }
  return cfg;
}

/// One arm's measured outcome over the shared decision stream.
struct ArmResult {
  std::string name;
  double wall_seconds = 0.0;
  intsched::sim::Ecdf rank_ns;
  std::vector<intsched::core::NodeId> chosen;
  std::uint64_t fingerprint = 0;
};

/// Drives `decide` through every epoch: ingest the epoch's report batch,
/// then time each task decision individually. The report batches and the
/// task stream are identical across arms; only `decide` differs.
template <typename IngestFn, typename DecideFn>
ArmResult run_arm(
    std::string name, const MetroOptions& opts,
    const std::vector<std::vector<intsched::telemetry::ProbeReport>>& batches,
    const std::vector<intsched::core::NodeId>& submitters, IngestFn ingest,
    DecideFn decide) {
  ArmResult out;
  out.name = std::move(name);
  out.chosen.reserve(static_cast<std::size_t>(opts.tasks));
  intsched::edge::MetroTaskStream stream{opts.seed, submitters};

  const std::int64_t per_epoch =
      std::max<std::int64_t>(1, opts.tasks / opts.epochs);
  // intsched-lint: allow(wall-clock): bench harness measuring real time
  const auto arm_begin = std::chrono::steady_clock::now();
  std::int64_t issued = 0;
  for (std::int32_t e = 0; e < opts.epochs && issued < opts.tasks; ++e) {
    const auto now =
        intsched::sim::SimTime::seconds(static_cast<std::int64_t>(e) + 1);
    ingest(batches[static_cast<std::size_t>(e)], now);
    const std::int64_t quota = e + 1 == opts.epochs
                                   ? opts.tasks - issued
                                   : std::min(per_epoch, opts.tasks - issued);
    for (std::int64_t t = 0; t < quota; ++t, ++issued) {
      const auto task = stream.next();
      // intsched-lint: allow(wall-clock): measuring real decision latency
      const auto begin = std::chrono::steady_clock::now();
      const intsched::core::NodeId server = decide(task.submitter, now);
      // intsched-lint: allow(wall-clock): measuring real decision latency
      const auto end = std::chrono::steady_clock::now();
      out.rank_ns.add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
              .count()));
      out.chosen.push_back(server);
    }
  }
  // intsched-lint: allow(wall-clock): bench harness measuring real time
  const auto arm_end = std::chrono::steady_clock::now();
  out.wall_seconds =
      std::chrono::duration<double>(arm_end - arm_begin).count();

  intsched::sim::Fnv1a64 hash;
  for (const intsched::core::NodeId n : out.chosen) {
    hash.add(static_cast<std::uint64_t>(n.value()));
  }
  out.fingerprint = hash.digest();
  return out;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    s.push_back(digits[(v >> shift) & 0xF]);
  }
  return s;
}

void write_json(std::ostream& os, const MetroOptions& opts,
                const intsched::net::GenTopology& topo,
                const std::vector<ArmResult>& arms, double agreement,
                double speedup) {
  os << "{\n";
  os << "  \"bench\": \"metro_sweep\",\n";
  os << "  \"pods\": " << opts.pods << ",\n";
  os << "  \"switches\": " << topo.switch_count() << ",\n";
  os << "  \"hosts\": " << topo.hosts().size() << ",\n";
  os << "  \"servers\": " << topo.edge_servers().size() << ",\n";
  os << "  \"regions\": " << topo.regions << ",\n";
  os << "  \"links\": " << topo.links.size() << ",\n";
  os << "  \"tasks\": " << opts.tasks << ",\n";
  os << "  \"epochs\": " << opts.epochs << ",\n";
  os << "  \"seed\": " << opts.seed << ",\n";
  os << "  \"arms\": [\n";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& a = arms[i];
    os << "    {\"arm\": \"" << a.name << "\", \"wall_seconds\": "
       << a.wall_seconds << ", \"rank_ns_p50\": " << a.rank_ns.quantile(0.5)
       << ", \"rank_ns_p99\": " << a.rank_ns.quantile(0.99)
       << ", \"fingerprint\": \"" << hex64(a.fingerprint) << "\"}"
       << (i + 1 < arms.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"agreement\": " << agreement << ",\n";
  os << "  \"speedup\": " << speedup << "\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const MetroOptions opts = parse_metro_options(argc, argv);
  if (opts.epochs <= 0 || opts.tasks <= 0 || opts.pods <= 0) {
    std::cerr << "metro_sweep: --pods/--tasks/--epochs must be positive\n";
    return 2;
  }

  const intsched::net::MetroConfig metro_cfg = make_metro_config(opts);
  const intsched::net::GenTopology topo =
      intsched::net::TopologyGen::ring_of_pods(metro_cfg);
  const std::vector<std::string> problems = topo.validate();
  if (!problems.empty()) {
    std::cerr << "metro_sweep: generated topology is malformed:\n";
    for (const std::string& p : problems) std::cerr << "  " << p << "\n";
    return 2;
  }
  const std::vector<intsched::core::NodeId> servers = topo.edge_servers();
  const std::vector<intsched::core::NodeId> hosts = topo.hosts();

  std::cout << "metro_sweep: " << opts.pods << " pods, "
            << topo.switch_count() << " switches, " << hosts.size()
            << " hosts, " << servers.size() << " edge servers, "
            << topo.links.size() << " links; " << opts.tasks << " tasks / "
            << opts.epochs << " epochs, seed " << opts.seed << "\n";

  // Generate every epoch's report batch ONCE; both arms ingest the same
  // bytes. Epoch 0 is a full sweep (the map learns the topology); later
  // epochs refresh an eighth of the links with congestion churn.
  intsched::exp::MetroTelemetryGen telemetry{
      topo, intsched::exp::MetroTelemetryConfig{.seed = opts.seed}};
  std::vector<std::vector<intsched::telemetry::ProbeReport>> batches;
  batches.reserve(static_cast<std::size_t>(opts.epochs));
  batches.push_back(telemetry.full_sweep());
  const auto refresh_count = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(topo.links.size()) / 8);
  for (std::int32_t e = 1; e < opts.epochs; ++e) {
    batches.push_back(telemetry.refresh(refresh_count));
  }

  std::vector<ArmResult> arms;

  {
    ConcurrentNetworkMap flat{{}, {}, intsched::core::ConcurrencyMode::kSnapshot};
    arms.push_back(run_arm(
        "flat", opts, batches, hosts,
        [&](const std::vector<intsched::telemetry::ProbeReport>& b,
            intsched::sim::SimTime now) { flat.ingest_batch(b, now); },
        [&](intsched::core::NodeId origin, intsched::sim::SimTime now) {
          const std::vector<ServerRank> ranked =
              flat.rank(origin, servers, RankingMetric::kDelay, now);
          return ranked.empty() ? intsched::core::kInvalidNode
                                : ranked.front().server;
        }));
  }

  PickStats pick_stats;
  std::int64_t sharded_builds = 0;
  {
    ShardedMapConfig cfg;
    cfg.rebuild_executor = intsched::exp::make_parallel_for(opts.jobs);
    ShardedNetworkMap sharded{RegionAssignment::from_topology(topo), cfg};
    arms.push_back(run_arm(
        "sharded", opts, batches, hosts,
        [&](const std::vector<intsched::telemetry::ProbeReport>& b,
            intsched::sim::SimTime now) { sharded.ingest_batch(b, now); },
        [&](intsched::core::NodeId origin, intsched::sim::SimTime now) {
          PickStats one;
          const std::optional<ServerRank> best = sharded.pick(
              origin, servers, RankingMetric::kDelay, now, &one);
          pick_stats.regions_considered += one.regions_considered;
          pick_stats.regions_pruned += one.regions_pruned;
          pick_stats.candidates_scored += one.candidates_scored;
          return best ? best->server : intsched::core::kInvalidNode;
        }));
    sharded_builds = sharded.region_snapshot_builds();
  }

  const ArmResult& flat = arms[0];
  const ArmResult& sharded = arms[1];
  std::int64_t agree = 0;
  const std::size_t n = std::min(flat.chosen.size(), sharded.chosen.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (flat.chosen[i] == sharded.chosen[i]) ++agree;
  }
  const double agreement =
      n == 0 ? 0.0 : static_cast<double>(agree) / static_cast<double>(n);
  const double speedup = sharded.wall_seconds > 0.0
                             ? flat.wall_seconds / sharded.wall_seconds
                             : 0.0;

  intsched::exp::TextTable table{"metro sweep: flat vs two-level"};
  table.set_headers({"arm", "wall (s)", "rank p50 (ns)", "rank p99 (ns)",
                     "fingerprint"});
  for (const ArmResult& a : arms) {
    table.add_row({a.name, intsched::exp::fmt_seconds(a.wall_seconds),
                   std::to_string(static_cast<std::int64_t>(
                       a.rank_ns.quantile(0.5))),
                   std::to_string(static_cast<std::int64_t>(
                       a.rank_ns.quantile(0.99))),
                   hex64(a.fingerprint)});
  }
  table.print(std::cout);

  std::cout << "agreement: " << agree << "/" << n << " ("
            << agreement * 100.0 << "%)\n";
  std::cout << "speedup (flat wall / sharded wall): " << speedup << "x\n";
  std::cout << "pick pruning: " << pick_stats.regions_pruned << " of "
            << pick_stats.regions_pruned + pick_stats.regions_considered
            << " region visits pruned, " << pick_stats.candidates_scored
            << " candidates scored\n";
  std::cout << "sharded region snapshot builds: " << sharded_builds << "\n";

  if (opts.csv) {
    std::cout << "csv:arm,wall_seconds,rank_ns_p50,rank_ns_p99,fingerprint\n";
    for (const ArmResult& a : arms) {
      intsched::exp::write_csv_row(
          std::cout,
          {a.name, std::to_string(a.wall_seconds),
           std::to_string(a.rank_ns.quantile(0.5)),
           std::to_string(a.rank_ns.quantile(0.99)), hex64(a.fingerprint)});
    }
  }

  if (!opts.json_path.empty()) {
    std::ofstream json{opts.json_path};
    if (!json) {
      std::cerr << "metro_sweep: cannot write " << opts.json_path << "\n";
      return 2;
    }
    write_json(json, opts, topo, arms, agreement, speedup);
    std::cout << "wrote " << opts.json_path << "\n";
  }
  return 0;
}
