// Ablation: probe-route optimization (the paper's §III-A future work:
// "we leave route selection optimization for probe packets as a future
// work and assume that the probe packets visit each device").
//
// With the paper's shortest-path probing, some directed links are never
// measured (on our Fig.-4 pods realization, the M0-M3 ring link and the
// scheduler leaf's uplink direction): the scheduler's inferred topology
// detours around them and far-pod delay estimates are inflated. Source-
// routed probes (greedy waypoint planner) cover every switch link.
//
// Flags: --full, --seed=N, --reps=N, --jobs=N

#include "bench_common.hpp"
#include "intsched/core/scheduler_service.hpp"
#include "intsched/telemetry/probe_agent.hpp"

using namespace intsched;

namespace {

struct MapQuality {
  std::int64_t covered_switch_links = 0;
  std::int64_t total_switch_links = 0;
  // intsched-lint: allow(raw-unit): display statistic, fractional ms
  double node7_delay_ms = 0.0;  ///< idle-network estimate from node1
};

MapQuality measure_map(bool optimized) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  core::SchedulerService service{*stacks[5], core::RankerConfig{},
                                 core::NetworkMapConfig{}};
  for (const core::NodeId id : network.host_ids()) {
    service.register_edge_server(id);
  }
  const auto plan = network.plan_probe_routes();
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    telemetry::ProbeConfig pc;
    if (optimized) {
      if (const auto it = plan.find(h->id()); it != plan.end()) {
        pc.waypoints = it->second;
      }
    }
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id(), pc));
    agents.back()->start();
  }
  sim.run_until(sim::SimTime::seconds(2));

  MapQuality q;
  for (const auto& [from, to] : network.switch_links()) {
    ++q.total_switch_links;
    // A link is "covered" when its delay was actually measured (the
    // default estimate is exactly the configured 10 ms).
    if (service.network_map().link_delay(from, to) >
        sim::SimDuration::milliseconds(10)) {
      ++q.covered_switch_links;
    }
  }
  const auto ranked = service.rank_for(core::NodeId{0}, core::RankingMetric::kDelay);
  for (const auto& r : ranked) {
    if (r.server == core::NodeId{6}) q.node7_delay_ms = r.delay_estimate.to_milliseconds();
  }
  return q;
}

double overall_gain(bool optimized, const benchtool::Options& opts) {
  exp::ExperimentConfig cfg =
      benchtool::make_base_config(edge::WorkloadKind::kServerless, opts);
  cfg.optimize_probe_routes = optimized;
  const auto results = benchtool::run_suite(
      cfg, {core::PolicyKind::kIntDelay, core::PolicyKind::kNearest},
      opts.reps, opts.jobs);
  double treat = 0.0;
  double base = 0.0;
  for (const edge::TaskClass cls : edge::kAllTaskClasses) {
    const auto t = benchtool::pooled_class_mean(
        results.at(core::PolicyKind::kIntDelay), cls, false);
    const auto n = benchtool::pooled_class_mean(
        results.at(core::PolicyKind::kNearest), cls, false);
    if (t && n) {
      treat += *t;
      base += *n;
    }
  }
  return exp::percent_gain(base, treat);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);
  std::cout << "Ablation: probe-route optimization (paper SIII-A future "
               "work)\n\n";

  const MapQuality plain = measure_map(false);
  const MapQuality optimized = measure_map(true);
  exp::TextTable map_table{"inferred-map quality on an idle network"};
  map_table.set_headers({"probing", "measured switch links",
                         "node1->node7 delay estimate (ms)"});
  map_table.add_row(
      {"shortest path (paper)",
       sim::cat(plain.covered_switch_links, "/", plain.total_switch_links),
       exp::fmt_seconds(plain.node7_delay_ms)});
  map_table.add_row(
      {"source-routed (planner)",
       sim::cat(optimized.covered_switch_links, "/",
                optimized.total_switch_links),
       exp::fmt_seconds(optimized.node7_delay_ms)});
  map_table.print(std::cout);
  std::cout << "(true node1->node7 path delay is ~51 ms: 5 links + "
               "service time)\n\n";

  exp::TextTable gain_table{"scheduling gain vs nearest"};
  gain_table.set_headers({"probing", "overall gain"});
  gain_table.add_row({"shortest path (paper)",
                      exp::fmt_percent(overall_gain(false, opts))});
  gain_table.add_row({"source-routed (planner)",
                      exp::fmt_percent(overall_gain(true, opts))});
  gain_table.print(std::cout);
  return 0;
}
