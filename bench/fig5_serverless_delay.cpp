// Reproduces paper Fig. 5: serverless-computing workload (one task per
// job) scheduled with delay-based node ranking, compared against the
// Nearest and Random baselines under random-pair background congestion.
//
// Paper expectation: INT-based network-aware scheduling beats Nearest by
// 17-31% in average task completion time, with the largest gain for the
// very-small (VS) class and the smallest for large (L) tasks.
//
// Flags: --full (200 tasks, paper scale), --csv, --seed=N, --jobs=N

#include "bench_common.hpp"

using namespace intsched;

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);

  exp::ExperimentConfig cfg =
      benchtool::make_base_config(edge::WorkloadKind::kServerless, opts);

  std::cout << "Fig. 5 reproduction: serverless workload, delay-based "
               "ranking\n(paper: 17-31% completion-time gain over nearest, "
               "max for VS)\n\n";

  const auto results = benchtool::run_suite(
      cfg,
      {core::PolicyKind::kIntDelay, core::PolicyKind::kNearest,
       core::PolicyKind::kRandom},
      opts.reps, opts.jobs);

  benchtool::print_comparison(
      "Fig 5: avg task completion time, serverless / delay ranking",
      results, core::PolicyKind::kIntDelay, /*transfer_time=*/false,
      opts.csv);
  benchtool::print_run_summary(results);
  return 0;
}
