// Reproduces paper Fig. 3: max queue length and end-to-end delay at
// increasing egress-port utilization.
//
// Setup (per the paper): two hosts connected via one P4 switch, 10 ms
// links, ~20 Mbps effective switch capacity. iperf generates fixed-rate
// traffic at x% of capacity; ping samples RTT every second; an INT probe
// every 100 ms collects and resets the max-queue register.
//
// Flags: --full   run 300 s per point (paper duration; default 60 s)
//        --csv    emit a CSV block after the table

#include <iostream>
#include <string>
#include <vector>

#include "intsched/exp/report.hpp"
#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"
#include "intsched/sim/simulator.hpp"
#include "intsched/sim/stats.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/iperf.hpp"
#include "intsched/transport/ping.hpp"

using namespace intsched;

namespace {

struct PointResult {
  double utilization = 0.0;
  double offered_mbps = 0.0;
  double avg_max_queue = 0.0;  ///< mean of per-probe-interval maxima
  double p95_max_queue = 0.0;
  // intsched-lint: allow(raw-unit): display statistics, fractional ms
  double avg_rtt_ms = 0.0;
  // intsched-lint: allow(raw-unit): display statistic, fractional ms
  double max_rtt_ms = 0.0;
  double loss_percent = 0.0;
};

PointResult run_point(double utilization, sim::SimTime duration,
                      std::uint64_t seed) {
  sim::Simulator simulator;
  net::Topology topo{simulator};

  auto& h1 = topo.add_node<net::Host>("h1");
  auto& h2 = topo.add_node<net::Host>("h2");
  p4::SwitchConfig sw_cfg;
  sw_cfg.seed = seed;
  auto& s1 = topo.add_node<p4::P4Switch>("s1", sw_cfg);

  net::LinkConfig link;  // 100 Mbps, 10 ms — switch processing dominates
  topo.connect(h1, s1, link);
  topo.connect(h2, s1, link);
  topo.install_routes();
  s1.load_program(std::make_unique<telemetry::IntTelemetryProgram>());

  transport::HostStack stack1{h1};
  transport::HostStack stack2{h2};
  transport::PingResponder responder{stack2};
  transport::IperfUdpSink sink{stack2};

  // The effective per-port capacity: serialization + mean processing.
  const sim::SimDuration per_pkt =
      link.rate.transmission_time(1500) + sw_cfg.proc_delay_mean;
  const auto capacity = sim::DataRate::bits_per_second(
      1500.0 * 8.0 / per_pkt.to_seconds());

  transport::IperfUdpSender::Config flow;
  flow.rate = capacity * utilization;
  flow.packet_size = 1500;
  transport::IperfUdpSender iperf{stack1, h2.id(), flow};
  if (utilization > 0.0) iperf.start((duration).since_epoch());

  transport::PingApp ping{stack1, h2.id()};
  ping.start();

  // Probe h1 -> h2 so probes traverse the congested egress port
  // (s1 toward h2); the collector on h2 terminates the INT data.
  telemetry::ProbeAgent agent{h1, h2.id()};
  telemetry::IntCollector collector{h2};
  stack2.bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });
  sim::RunningStats queue_stats;
  sim::Ecdf queue_ecdf;
  collector.set_handler([&](const telemetry::ProbeReport& report) {
    for (const auto& entry : report.entries) {
      queue_stats.add(static_cast<double>(entry.max_queue_pkts));
      queue_ecdf.add(static_cast<double>(entry.max_queue_pkts));
    }
  });
  agent.start();

  simulator.run_until(duration);

  PointResult r;
  r.utilization = utilization;
  r.offered_mbps = flow.rate.mbps();
  r.avg_max_queue = queue_stats.mean();
  r.p95_max_queue = queue_ecdf.count() > 0 ? queue_ecdf.quantile(0.95) : 0.0;
  r.avg_rtt_ms = ping.rtt_ms().mean();
  r.max_rtt_ms = ping.rtt_ms().max();
  if (iperf.packets_sent() > 0) {
    r.loss_percent = 100.0 *
                     static_cast<double>(iperf.packets_sent() -
                                         sink.packets_received()) /
                     static_cast<double>(iperf.packets_sent());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") full = true;
    if (arg == "--csv") csv = true;
  }
  const sim::SimTime duration =
      full ? sim::SimTime::seconds(300) : sim::SimTime::seconds(60);

  std::cout << "Fig. 3 reproduction: max queue length and RTT vs egress "
               "utilization\n"
            << "(paper: queue < 5 pkts below 50% load, > 30 pkts near "
               "saturation;\n"
            << " RTT ~40 ms baseline, gradual rise to ~50-60 ms at 80%, "
               "sharp jump at 100%)\n\n";

  std::vector<PointResult> results;
  for (int pct = 0; pct <= 100; pct += 10) {
    results.push_back(
        run_point(static_cast<double>(pct) / 100.0, duration, 42));
  }

  exp::TextTable table{"Fig 3: queue occupancy & delay vs utilization"};
  table.set_headers({"util%", "offered Mbps", "avg max queue", "p95 queue",
                     "avg RTT ms", "max RTT ms", "loss%"});
  for (const PointResult& r : results) {
    table.add_row({std::to_string(static_cast<int>(r.utilization * 100)),
                   exp::fmt_seconds(r.offered_mbps),
                   exp::fmt_seconds(r.avg_max_queue),
                   exp::fmt_seconds(r.p95_max_queue),
                   exp::fmt_seconds(r.avg_rtt_ms),
                   exp::fmt_seconds(r.max_rtt_ms),
                   exp::fmt_seconds(r.loss_percent)});
  }
  table.print(std::cout);

  if (csv) {
    std::cout << "csv:util,offered_mbps,avg_max_queue,p95_queue,avg_rtt_ms,"
                 "max_rtt_ms,loss_pct\n";
    for (const PointResult& r : results) {
      exp::write_csv_row(
          std::cout,
          {exp::fmt_seconds(r.utilization), exp::fmt_seconds(r.offered_mbps),
           exp::fmt_seconds(r.avg_max_queue), exp::fmt_seconds(r.p95_max_queue),
           exp::fmt_seconds(r.avg_rtt_ms), exp::fmt_seconds(r.max_rtt_ms),
           exp::fmt_seconds(r.loss_percent)});
    }
  }
  return 0;
}
