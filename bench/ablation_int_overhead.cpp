// Ablation: telemetry collection overhead — per-packet INT embedding vs
// the paper's register+probe scheme (§III-A).
//
// The paper's argument: embedding even two INT fields into every packet
// costs ~4.2% of payload over five switches, while register storage plus
// 100 ms probes costs a fixed ~120 kbps per server (~1.1% of a 10 Mbps
// link). This bench measures both on live traffic.
//
// Flags: --full, --seed=N

#include "bench_common.hpp"
#include "intsched/net/topology.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/iperf.hpp"

using namespace intsched;

namespace {

/// Chain of `hops` switches between two hosts; CBR traffic; returns the
/// telemetry bytes added as a fraction of delivered bytes.
double embedding_overhead(int hops, sim::SimDuration duration) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& a = topo.add_node<net::Host>("a");
  auto& b = topo.add_node<net::Host>("b");
  p4::SwitchConfig cfg;
  cfg.stall_probability = 0.0;
  std::vector<p4::P4Switch*> switches;
  for (int i = 0; i < hops; ++i) {
    switches.push_back(
        &topo.add_node<p4::P4Switch>(sim::cat("s", i), cfg));
  }
  net::LinkConfig link;
  topo.connect(a, *switches.front(), link);
  for (int i = 0; i + 1 < hops; ++i) {
    topo.connect(*switches[static_cast<std::size_t>(i)],
                 *switches[static_cast<std::size_t>(i + 1)], link);
  }
  topo.connect(*switches.back(), b, link);
  topo.install_routes();
  std::vector<telemetry::EmbeddingIntProgram*> programs;
  for (p4::P4Switch* sw : switches) {
    auto program = std::make_unique<telemetry::EmbeddingIntProgram>();
    programs.push_back(program.get());
    sw->load_program(std::move(program));
  }

  transport::HostStack stack_a{a};
  transport::HostStack stack_b{b};
  transport::IperfUdpSink sink{stack_b};
  transport::IperfUdpSender::Config flow;
  flow.rate = sim::DataRate::megabits_per_second(10.0);
  transport::IperfUdpSender iperf{stack_a, b.id(), flow};
  iperf.start(duration);
  sim.run_until(sim::SimTime::at(duration) + sim::SimDuration::seconds(1));

  sim::Bytes telemetry = 0;
  for (const auto* p : programs) telemetry += p->telemetry_bytes_added();
  return static_cast<double>(telemetry) /
         static_cast<double>(iperf.bytes_sent());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchtool::parse_options(argc, argv);
  const sim::SimDuration duration =
      opts.full ? sim::SimDuration::seconds(60) : sim::SimDuration::seconds(10);

  std::cout << "Ablation: INT collection overhead (paper §III-A)\n\n";

  exp::TextTable embed{"per-packet embedding: telemetry bytes / data bytes"};
  embed.set_headers({"switches on path", "overhead"});
  for (const int hops : {1, 2, 3, 5, 8}) {
    embed.add_row({std::to_string(hops),
                   exp::fmt_percent(100.0 *
                                    embedding_overhead(hops, duration))});
  }
  embed.print(std::cout);
  std::cout << "(paper: ~4.2% for 2 INT fields over 5 switches; our stack "
               "entry carries 7 fields in 32 B, hence the higher slope)\n\n";

  // Register+probe scheme on the Fig. 4 network: probe bytes per server.
  exp::ExperimentConfig cfg;
  cfg.seed = opts.seed;
  cfg.workload.total_tasks = 16;
  cfg.background.mode = exp::BackgroundMode::kNone;
  const exp::ExperimentResult r = exp::run_experiment(cfg);
  const double per_server_kbps =
      static_cast<double>(r.probe_bytes_sent) * 8.0 /
      r.sim_duration.to_seconds() / 7.0 / 1000.0;
  exp::TextTable probes{"register + probe scheme (the paper's design)"};
  probes.set_headers({"metric", "value"});
  probes.add_row({"probe traffic per server",
                  exp::fmt_seconds(per_server_kbps) + " kbps"});
  probes.add_row({"as % of 10 Mbps access",
                  exp::fmt_percent(per_server_kbps / 10'000.0 * 100.0)});
  probes.add_row({"as % of 20 Mbps effective capacity",
                  exp::fmt_percent(per_server_kbps / 20'000.0 * 100.0)});
  probes.add_row({"bytes added to production packets", "0"});
  probes.print(std::cout);
  std::cout << "(paper: 120 kbps per server, ~1.1% of a 10 Mbps link; and "
               "zero bytes on production traffic)\n";
  return 0;
}
