// Network-monitoring scenario: use the telemetry stack alone — no task
// scheduling — as a live congestion monitor, the way a NOC dashboard
// would. Shows INT's core value proposition from the paper's §I: probes
// pick up a transient 8-second congestion event within one 100 ms probing
// interval, while an SNMP-style 30-second poller misses it entirely.
//
// Run: ./build/examples/congestion_monitor

#include <iomanip>
#include <iostream>

#include "intsched/core/network_map.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/iperf.hpp"

using namespace intsched;

int main() {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};

  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::vector<std::unique_ptr<transport::IperfUdpSink>> sinks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
    sinks.push_back(std::make_unique<transport::IperfUdpSink>(*stacks.back()));
  }

  // INT termination on the scheduler host, feeding a NetworkMap.
  telemetry::IntCollector collector{network.scheduler_host()};
  core::NetworkMap map;
  stacks[5]->bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });
  collector.set_handler([&](const telemetry::ProbeReport& r) {
    map.ingest(r, sim.now());
  });
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id()));
    agents.back()->start();
  }

  // A transient 8 s congestion event: node3 floods node4 at t in [4, 12).
  transport::IperfUdpSender::Config burst;
  burst.rate = sim::DataRate::megabits_per_second(21.0);
  transport::IperfUdpSender flood{*stacks[2], network.hosts()[3]->id(),
                                  burst};
  sim.schedule_at(sim::SimTime::seconds(4),
                  [&] { flood.start(sim::SimDuration::seconds(8)); });

  // INT-based monitor: sample the map every second. SNMP-style monitor:
  // sample a 30 s-old snapshot (reports nothing until t = 30).
  std::cout << "t(s)  INT view: max device queue (pod-1 switches)   "
               "verdict\n";
  std::int64_t int_detections = 0;
  for (int t = 1; t <= 20; ++t) {
    sim.run_until(sim::SimTime::seconds(t));
    std::int64_t worst = 0;
    for (const p4::P4Switch* sw : network.switches()) {
      worst = std::max(worst, map.device_max_queue(sw->id(), sim.now()));
    }
    const bool congested = worst > 10;
    if (congested) ++int_detections;
    std::cout << std::setw(3) << t << "   max queue = " << std::setw(4)
              << worst << "                               "
              << (congested ? "CONGESTED" : "clear") << "\n";
  }
  std::cout << "\nINT monitor flagged the 8 s event in " << int_detections
            << " of 20 one-second samples.\n";
  std::cout << "A 30 s SNMP poll cycle would have produced its first "
               "report after the event ended.\n";
  std::cout << "\nprobes parsed: " << collector.probes_received()
            << ", links mapped: " << map.known_link_count() << "\n";
  return 0;
}
