// Command-line experiment driver: run any scheduling experiment the
// library supports without writing code.
//
//   run_experiment_cli [--policy=int-delay|int-bandwidth|nearest|random]
//                      [--workload=serverless|distributed]
//                      [--tasks=N] [--seed=N] [--probe-interval-ms=N]
//                      [--background=none|random-pairs|traffic-1|traffic-2]
//                      [--classes=VS,S,M,L] [--k-ms=N] [--compute-aware]
//                      [--worker-slots=N] [--csv]
//
// Prints the per-class summary table; --csv appends per-task records.

#include <iostream>
#include <sstream>
#include <string>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/report.hpp"
#include "intsched/sim/strfmt.hpp"

using namespace intsched;

namespace {

[[noreturn]] void usage(const std::string& bad) {
  std::cerr << "unknown or malformed option: " << bad << "\n"
            << "see the header comment of run_experiment_cli.cpp\n";
  std::exit(2);
}

core::PolicyKind parse_policy(const std::string& v) {
  if (v == "int-delay") return core::PolicyKind::kIntDelay;
  if (v == "int-bandwidth") return core::PolicyKind::kIntBandwidth;
  if (v == "nearest") return core::PolicyKind::kNearest;
  if (v == "random") return core::PolicyKind::kRandom;
  usage("--policy=" + v);
}

exp::BackgroundMode parse_background(const std::string& v) {
  if (v == "none") return exp::BackgroundMode::kNone;
  if (v == "random-pairs") return exp::BackgroundMode::kRandomPairs;
  if (v == "traffic-1") return exp::BackgroundMode::kPattern1;
  if (v == "traffic-2") return exp::BackgroundMode::kPattern2;
  usage("--background=" + v);
}

std::vector<edge::TaskClass> parse_classes(const std::string& v) {
  std::vector<edge::TaskClass> out;
  std::stringstream ss{v};
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "VS") out.push_back(edge::TaskClass::kVerySmall);
    else if (token == "S") out.push_back(edge::TaskClass::kSmall);
    else if (token == "M") out.push_back(edge::TaskClass::kMedium);
    else if (token == "L") out.push_back(edge::TaskClass::kLarge);
    else usage("--classes=" + v);
  }
  if (out.empty()) usage("--classes=" + v);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  exp::ExperimentConfig cfg;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--policy=", 0) == 0) {
      cfg.policy = parse_policy(value("--policy="));
    } else if (arg.rfind("--workload=", 0) == 0) {
      const std::string v = value("--workload=");
      if (v == "serverless") {
        cfg.workload.kind = edge::WorkloadKind::kServerless;
      } else if (v == "distributed") {
        cfg.workload.kind = edge::WorkloadKind::kDistributed;
        cfg.workload.job_interval = sim::SimDuration::seconds(6);
      } else {
        usage(arg);
      }
    } else if (arg.rfind("--tasks=", 0) == 0) {
      cfg.workload.total_tasks = std::stoi(value("--tasks="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--probe-interval-ms=", 0) == 0) {
      cfg.probe_interval = sim::SimDuration::milliseconds(
          std::stoll(value("--probe-interval-ms=")));
    } else if (arg.rfind("--background=", 0) == 0) {
      cfg.background.mode = parse_background(value("--background="));
    } else if (arg.rfind("--classes=", 0) == 0) {
      cfg.workload.classes = parse_classes(value("--classes="));
    } else if (arg.rfind("--k-ms=", 0) == 0) {
      cfg.ranker.k_factor =
          sim::SimDuration::milliseconds(std::stoll(value("--k-ms=")));
    } else if (arg == "--compute-aware") {
      cfg.scheduler.compute_aware = true;
    } else if (arg.rfind("--worker-slots=", 0) == 0) {
      cfg.server.worker_slots = std::stoi(value("--worker-slots="));
    } else if (arg == "--csv") {
      csv = true;
    } else {
      usage(arg);
    }
  }

  const exp::ExperimentResult result = exp::run_experiment(cfg);

  exp::TextTable table{sim::cat("experiment: ", core::to_string(cfg.policy),
                                " / ", to_string(cfg.workload.kind),
                                " / seed ", cfg.seed)};
  table.set_headers({"class", "tasks", "mean completion (s)",
                     "mean transfer (s)"});
  for (const edge::TaskClass cls : edge::kAllTaskClasses) {
    std::int64_t count = 0;
    for (const edge::TaskRecord* r : result.metrics.records()) {
      if (r->cls == cls && r->is_complete()) ++count;
    }
    if (count == 0) continue;
    table.add_row({edge::short_name(cls), std::to_string(count),
                   exp::fmt_opt_seconds(result.metrics.mean_completion_s(cls)),
                   exp::fmt_opt_seconds(result.metrics.mean_transfer_s(cls))});
  }
  table.print(std::cout);
  std::cout << "completed " << result.tasks_completed << "/"
            << result.tasks_total << " tasks in "
            << sim::to_string(result.sim_duration) << " simulated ("
            << result.events_executed << " events); probes "
            << result.probes_sent << ", queries " << result.queries_served
            << ", drops " << result.switch_queue_drops << "\n";

  if (csv) {
    std::cout << "\ncsv:job,task,class,device,server,submitted_s,"
                 "transfer_s,completion_s\n";
    for (const edge::TaskRecord* r : result.metrics.records()) {
      if (!r->is_complete()) continue;
      exp::write_csv_row(
          std::cout,
          {std::to_string(r->job_id), std::to_string(r->task_index),
           edge::short_name(r->cls), std::to_string(r->device.value()),
           std::to_string(r->server.value()),
           exp::fmt_seconds(r->submitted.to_seconds()),
           exp::fmt_seconds(r->transfer_time().to_seconds()),
           exp::fmt_seconds(r->completion_time().to_seconds())});
    }
  }
  return 0;
}
