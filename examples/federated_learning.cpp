// Distributed-computing scenario — the paper's second workload, motivated
// by federated/distributed ML training: each round ships a model shard to
// three edge servers, waits for all three "training" tasks, then starts
// the next round (synchronous rounds, straggler-bound).
//
// The example drives the public API directly (no experiment harness):
// topology, scheduler service, probes, devices — and reports per-round
// makespan under bandwidth-based ranking vs the nearest baseline.
//
// Run: ./build/examples/federated_learning

#include <iostream>

#include "intsched/core/scheduler_service.hpp"
#include "intsched/edge/edge_device.hpp"
#include "intsched/edge/edge_server.hpp"
#include "intsched/exp/background.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/exp/report.hpp"
#include "intsched/telemetry/probe_agent.hpp"

using namespace intsched;

namespace {

std::uint64_t g_seed = 5;  // override with argv[1]; single-coordinator rounds are noisy

constexpr int kRounds = 6;
constexpr sim::Bytes kShardBytes = 2 * sim::kMB;
constexpr auto kLocalTrainTime = sim::SimDuration::seconds(4);

struct Deployment {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::vector<std::unique_ptr<transport::IperfUdpSink>> sinks;
  std::unique_ptr<core::SchedulerService> scheduler;
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> probes;
  std::unique_ptr<core::SchedulerClient> client;
  std::unique_ptr<core::SelectionPolicy> policy;
  std::unique_ptr<core::NearestPolicy> nearest;
  edge::MetricsCollector metrics;
  std::vector<std::unique_ptr<edge::EdgeServer>> servers;
  std::unique_ptr<edge::EdgeDevice> coordinator;
  std::unique_ptr<exp::BackgroundTraffic> background;
  std::vector<double> round_makespans;

  explicit Deployment(bool network_aware) {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
      sinks.push_back(
          std::make_unique<transport::IperfUdpSink>(*stacks.back()));
    }
    scheduler = std::make_unique<core::SchedulerService>(
        *stacks[5], core::RankerConfig{}, core::NetworkMapConfig{});
    for (const core::NodeId id : network.host_ids()) {
      scheduler->register_edge_server(id);
      servers.push_back(std::make_unique<edge::EdgeServer>(
          *stacks[id.index()], metrics));
    }
    for (net::Host* h : network.hosts()) {
      if (h->id() == network.scheduler_host().id()) continue;
      probes.push_back(std::make_unique<telemetry::ProbeAgent>(
          *h, network.scheduler_host().id()));
      probes.back()->start();
    }
    if (network_aware) {
      client = std::make_unique<core::SchedulerClient>(
          *stacks[0], network.scheduler_host().id());
      policy = std::make_unique<core::IntPolicy>(
          *client, core::RankingMetric::kBandwidth);
    } else {
      nearest = std::make_unique<core::NearestPolicy>(network.topology(),
                                                      network.host_ids());
      struct Facade : core::SelectionPolicy {
        core::NearestPolicy& inner;
        explicit Facade(core::NearestPolicy& n) : inner{n} {}
        void select(core::NodeId device, std::int32_t count,
                    const std::vector<std::string>& requirements,
                    SelectionHandler handler) override {
          inner.select(device, count, requirements, std::move(handler));
        }
        [[nodiscard]] core::PolicyKind kind() const override {
          return core::PolicyKind::kNearest;
        }
      };
      policy = std::make_unique<Facade>(*nearest);
    }
    coordinator =
        std::make_unique<edge::EdgeDevice>(*stacks[0], metrics, *policy);

    exp::BackgroundConfig bg;
    bg.mode = exp::BackgroundMode::kRandomPairs;  // 1-2 roaming flows
    bg.seed = g_seed;
    std::vector<transport::HostStack*> ptrs;
    for (const auto& s : stacks) ptrs.push_back(s.get());
    background = std::make_unique<exp::BackgroundTraffic>(sim, ptrs, bg);
    background->start();
  }

  void run_round(int round) {
    edge::JobSpec job;
    job.job_id = round;
    job.kind = edge::WorkloadKind::kDistributed;
    job.cls = edge::TaskClass::kSmall;
    job.submitter = core::NodeId{0};
    for (int t = 0; t < 3; ++t) {
      edge::TaskSpec spec;
      spec.job_id = round;
      spec.task_index = t;
      spec.cls = edge::TaskClass::kSmall;
      spec.data_bytes = kShardBytes;
      spec.exec_time = kLocalTrainTime;
      job.tasks.push_back(spec);
    }
    const sim::SimTime start = sim.now();
    int done = 0;
    coordinator->set_completion_handler([&](const edge::TaskRecord& r) {
      if (r.job_id == round && ++done == 3) sim.stop();
    });
    coordinator->submit(job);
    sim.run_until(sim::SimTime::seconds(3600));
    round_makespans.push_back((sim.now() - start).to_seconds());
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_seed = std::stoull(argv[1]);
  std::cout << "Federated-learning rounds: 3 x " << kShardBytes / sim::kMB
            << " MB shards per round, synchronous barrier per round\n\n";

  Deployment aware{true};
  Deployment baseline{false};
  // Let probes populate the network map before the first round.
  aware.sim.run_until(sim::SimTime::seconds(2));
  baseline.sim.run_until(sim::SimTime::seconds(2));

  exp::TextTable table{"per-round makespan (s): transfer + training + ack"};
  table.set_headers({"round", "nearest", "int-bandwidth", "gain"});
  double total_n = 0.0;
  double total_a = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    baseline.run_round(round);
    aware.run_round(round);
    const double tn = baseline.round_makespans.back();
    const double ta = aware.round_makespans.back();
    total_n += tn;
    total_a += ta;
    table.add_row({std::to_string(round), exp::fmt_seconds(tn),
                   exp::fmt_seconds(ta),
                   exp::fmt_percent(exp::percent_gain(tn, ta))});
  }
  table.print(std::cout);
  std::cout << "total training wall-clock: nearest "
            << exp::fmt_seconds(total_n) << " s, network-aware "
            << exp::fmt_seconds(total_a) << " s ("
            << exp::fmt_percent(exp::percent_gain(total_n, total_a))
            << " gain)\n";
  return 0;
}
