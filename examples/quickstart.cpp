// Quickstart: bring up the paper's Fig.-4 network with INT telemetry,
// let probes map the network, then ask the scheduler to rank edge servers
// for a device — once on an idle network and once with a congested link.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <iostream>

#include "intsched/core/scheduler_service.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/sim/simulator.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/iperf.hpp"

using namespace intsched;

namespace {

void print_ranking(const char* label,
                   const std::vector<core::ServerRank>& ranked) {
  std::cout << label << "\n";
  for (const core::ServerRank& r : ranked) {
    std::cout << "  node" << r.server.value() + 1
              << "  delay=" << sim::to_string(r.delay_estimate)
              << "  bandwidth=" << r.bandwidth_estimate.mbps() << " Mbps\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  sim::Simulator sim;

  // 1. The emulated network: 8 hosts, 12 P4 switches, INT program loaded.
  exp::Fig4Network network{sim, exp::Fig4Config{}};

  // 2. Host stacks; the scheduler service lives on node 6.
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  core::SchedulerService scheduler{*stacks[5], core::RankerConfig{},
                                   core::NetworkMapConfig{}};
  for (const core::NodeId id : network.host_ids()) {
    scheduler.register_edge_server(id);
  }

  // 3. Every edge server probes the scheduler every 100 ms.
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id()));
    agents.back()->start();
  }

  // 4. Let the map build, then rank candidates for node 1 on an idle net.
  sim.run_until(sim::SimTime::seconds(2));
  std::cout << "After " << sim::to_string(sim.now()) << ": map knows "
            << scheduler.network_map().known_link_count()
            << " directed links from "
            << scheduler.network_map().reports_ingested()
            << " probe reports\n\n";
  print_ranking("Ranking for node1 (idle network, delay metric):",
                scheduler.rank_for(core::NodeId{0}, core::RankingMetric::kDelay));
  std::cout << "(nodes 7/8 are truly one ring-hop closer than 5/6 yet rank "
               "behind them: the M0-M3 ring\n link lies on no probe path, "
               "so the inferred map detours around it — the paper's\n "
               "probe-coverage assumption; see bench/ablation_probe_routing "
               "for the fix)\n\n";

  // 5. Congest node1's nearest neighbour (node2) with an iperf flow, then
  //    rank again: the scheduler should now demote node2.
  transport::IperfUdpSender::Config flow;
  flow.rate = sim::DataRate::megabits_per_second(19.0);
  transport::IperfUdpSink sink{*stacks[1]};
  transport::IperfUdpSender iperf{*stacks[4], network.hosts()[1]->id(),
                                  flow};
  iperf.start(sim::SimDuration::seconds(10));
  sim.run_until(sim::SimTime::seconds(8));

  print_ranking("Ranking for node1 (node2 congested, delay metric):",
                scheduler.rank_for(core::NodeId{0}, core::RankingMetric::kDelay));
  print_ranking("Ranking for node1 (node2 congested, bandwidth metric):",
                scheduler.rank_for(core::NodeId{0}, core::RankingMetric::kBandwidth));

  std::cout << "Simulated " << sim.events_executed() << " events in "
            << sim::to_string(sim.now()) << " of virtual time\n";
  return 0;
}
