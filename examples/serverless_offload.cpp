// Serverless (FaaS) offloading scenario — the paper's first workload.
//
// A burst of short functions (very-small tasks) is submitted from node1
// while a congestion hotspot sits on its nearest neighbour's pod. The
// example runs the same burst twice — once with the static nearest-node
// policy and once with INT-based delay ranking — and prints the per-task
// and mean completion times side by side.
//
// Run: ./build/examples/serverless_offload

#include <iostream>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/report.hpp"

using namespace intsched;

namespace {

std::uint64_t g_seed = 4;  // override with argv[1]; small runs are noisy

exp::ExperimentResult run_arm(core::PolicyKind policy) {
  exp::ExperimentConfig cfg;
  cfg.seed = g_seed;
  cfg.policy = policy;
  cfg.workload.kind = edge::WorkloadKind::kServerless;
  cfg.workload.total_tasks = 24;
  cfg.workload.classes = {edge::TaskClass::kVerySmall};
  cfg.workload.job_interval = sim::SimDuration::seconds(2);
  cfg.background.mode = exp::BackgroundMode::kRandomPairs;
  return exp::run_experiment(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_seed = std::stoull(argv[1]);
  std::cout << "Serverless offloading: 24 very-small functions under "
               "random background congestion\n\n";

  const exp::ExperimentResult nearest =
      run_arm(core::PolicyKind::kNearest);
  const exp::ExperimentResult aware =
      run_arm(core::PolicyKind::kIntDelay);

  exp::TextTable table{"per-task completion times (s)"};
  table.set_headers({"job", "device", "nearest: server / time",
                     "int-delay: server / time", "gain"});
  for (const edge::TaskRecord* n : nearest.metrics.records()) {
    const edge::TaskRecord* a =
        aware.metrics.find(n->job_id, n->task_index);
    if (a == nullptr || !a->is_complete() || !n->is_complete()) continue;
    const double tn = n->completion_time().to_seconds();
    const double ta = a->completion_time().to_seconds();
    table.add_row(
        {std::to_string(n->job_id), "node" + std::to_string(n->device.value() + 1),
         "node" + std::to_string(n->server.value() + 1) + " / " +
             exp::fmt_seconds(tn),
         "node" + std::to_string(a->server.value() + 1) + " / " +
             exp::fmt_seconds(ta),
         exp::fmt_percent(exp::percent_gain(tn, ta))});
  }
  table.print(std::cout);

  const auto mean_n =
      nearest.metrics.mean_completion_s(edge::TaskClass::kVerySmall);
  const auto mean_a =
      aware.metrics.mean_completion_s(edge::TaskClass::kVerySmall);
  if (mean_n && mean_a) {
    std::cout << "mean completion: nearest " << exp::fmt_seconds(*mean_n)
              << " s,  int-delay " << exp::fmt_seconds(*mean_a)
              << " s  (gain "
              << exp::fmt_percent(exp::percent_gain(*mean_n, *mean_a))
              << ")\n";
  }
  return 0;
}
