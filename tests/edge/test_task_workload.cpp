#include <gtest/gtest.h>

#include <map>

#include "intsched/edge/workload.hpp"

namespace intsched::edge {
namespace {

TEST(TaskClassTest, Names) {
  EXPECT_STREQ(to_string(TaskClass::kVerySmall), "very-small");
  EXPECT_STREQ(short_name(TaskClass::kVerySmall), "VS");
  EXPECT_STREQ(short_name(TaskClass::kSmall), "S");
  EXPECT_STREQ(short_name(TaskClass::kMedium), "M");
  EXPECT_STREQ(short_name(TaskClass::kLarge), "L");
}

TEST(TaskClassTest, TableOneRanges) {
  const auto& vs = task_class_spec(TaskClass::kVerySmall);
  EXPECT_EQ(vs.data_max, 1000 * sim::kKB);
  EXPECT_EQ(vs.exec_max, sim::SimDuration::milliseconds(2000));
  const auto& l = task_class_spec(TaskClass::kLarge);
  EXPECT_EQ(l.data_min, 4500 * sim::kKB);
  EXPECT_EQ(l.data_max, 5500 * sim::kKB);
  EXPECT_EQ(l.exec_min, sim::SimDuration::milliseconds(7500));
  EXPECT_EQ(l.exec_max, sim::SimDuration::milliseconds(9500));
}

TEST(TaskClassTest, ClassesAreDisjointAndOrdered) {
  for (std::size_t i = 1; i < kAllTaskClasses.size(); ++i) {
    const auto& prev = task_class_spec(kAllTaskClasses[i - 1]);
    const auto& cur = task_class_spec(kAllTaskClasses[i]);
    EXPECT_LT(prev.data_max, cur.data_min);
    EXPECT_LT(prev.exec_max, cur.exec_min);
  }
}

TEST(SampleTaskTest, StaysInRange) {
  sim::Rng rng{3};
  for (const TaskClass cls : kAllTaskClasses) {
    const auto& spec = task_class_spec(cls);
    for (int i = 0; i < 500; ++i) {
      const TaskSpec t = sample_task(cls, 1, 0, rng);
      EXPECT_GE(t.data_bytes, spec.data_min);
      EXPECT_LE(t.data_bytes, spec.data_max);
      EXPECT_GE(t.exec_time, spec.exec_min);
      EXPECT_LE(t.exec_time, spec.exec_max);
      EXPECT_EQ(t.cls, cls);
    }
  }
}

TEST(SampleTaskTest, CarriesIdentity) {
  sim::Rng rng{3};
  const TaskSpec t = sample_task(TaskClass::kSmall, 42, 2, rng);
  EXPECT_EQ(t.job_id, 42);
  EXPECT_EQ(t.task_index, 2);
}

TEST(WorkloadKindTest, TasksPerJob) {
  EXPECT_EQ(tasks_per_job(WorkloadKind::kServerless), 1);
  EXPECT_EQ(tasks_per_job(WorkloadKind::kDistributed), 3);
  EXPECT_STREQ(to_string(WorkloadKind::kServerless), "serverless");
  EXPECT_STREQ(to_string(WorkloadKind::kDistributed), "distributed");
}

TEST(WorkloadGenTest, ServerlessJobCountMatchesTasks) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kServerless;
  cfg.total_tasks = 200;
  sim::Rng rng{1};
  const auto jobs = generate_workload(cfg, {core::NodeId{0}, core::NodeId{1}, core::NodeId{2}}, rng);
  EXPECT_EQ(jobs.size(), 200u);
  for (const JobSpec& j : jobs) EXPECT_EQ(j.tasks.size(), 1u);
}

TEST(WorkloadGenTest, DistributedRoundsUp) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::kDistributed;
  cfg.total_tasks = 200;
  sim::Rng rng{1};
  const auto jobs = generate_workload(cfg, {core::NodeId{0}, core::NodeId{1}}, rng);
  EXPECT_EQ(jobs.size(), 67u);  // ceil(200/3)
  for (const JobSpec& j : jobs) EXPECT_EQ(j.tasks.size(), 3u);
}

TEST(WorkloadGenTest, ClassesCycleEvenly) {
  WorkloadConfig cfg;
  cfg.total_tasks = 80;
  sim::Rng rng{1};
  const auto jobs = generate_workload(cfg, {core::NodeId{0}}, rng);
  std::map<TaskClass, int> counts;
  for (const JobSpec& j : jobs) ++counts[j.cls];
  for (const TaskClass cls : kAllTaskClasses) EXPECT_EQ(counts[cls], 20);
}

TEST(WorkloadGenTest, SingleClassRestriction) {
  WorkloadConfig cfg;
  cfg.total_tasks = 10;
  cfg.classes = {TaskClass::kMedium};
  sim::Rng rng{1};
  for (const JobSpec& j : generate_workload(cfg, {core::NodeId{0}}, rng)) {
    EXPECT_EQ(j.cls, TaskClass::kMedium);
  }
}

TEST(WorkloadGenTest, SubmitTimesMonotoneWithJitter) {
  WorkloadConfig cfg;
  cfg.total_tasks = 50;
  cfg.job_interval = sim::SimDuration::seconds(2);
  sim::Rng rng{1};
  const auto jobs = generate_workload(cfg, {core::NodeId{0}}, rng);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const sim::SimDuration gap = jobs[i].submit_at - jobs[i - 1].submit_at;
    EXPECT_GE(gap, sim::SimDuration::milliseconds(1500));
    EXPECT_LE(gap, sim::SimDuration::milliseconds(2500));
  }
  EXPECT_EQ(jobs[0].submit_at, cfg.first_submit);
}

TEST(WorkloadGenTest, DeterministicForSeed) {
  WorkloadConfig cfg;
  cfg.total_tasks = 40;
  sim::Rng r1{9};
  sim::Rng r2{9};
  const auto a = generate_workload(cfg, {core::NodeId{0}, core::NodeId{1}, core::NodeId{2}, core::NodeId{3}}, r1);
  const auto b = generate_workload(cfg, {core::NodeId{0}, core::NodeId{1}, core::NodeId{2}, core::NodeId{3}}, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submitter, b[i].submitter);
    EXPECT_EQ(a[i].submit_at, b[i].submit_at);
    for (std::size_t t = 0; t < a[i].tasks.size(); ++t) {
      EXPECT_EQ(a[i].tasks[t].data_bytes, b[i].tasks[t].data_bytes);
      EXPECT_EQ(a[i].tasks[t].exec_time, b[i].tasks[t].exec_time);
    }
  }
}

TEST(WorkloadGenTest, SubmittersDrawnFromPool) {
  WorkloadConfig cfg;
  cfg.total_tasks = 100;
  sim::Rng rng{2};
  std::set<core::NodeId> seen;
  for (const JobSpec& j : generate_workload(cfg, {core::NodeId{4}, core::NodeId{5}, core::NodeId{6}}, rng)) {
    seen.insert(j.submitter);
  }
  for (const core::NodeId s : seen) {
    EXPECT_TRUE(s == core::NodeId{4} || s == core::NodeId{5} || s == core::NodeId{6});
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(WorkloadGenTest, EmptyInputsThrow) {
  WorkloadConfig cfg;
  sim::Rng rng{1};
  EXPECT_THROW(static_cast<void>(generate_workload(cfg, {}, rng)),
               std::invalid_argument);
  cfg.classes.clear();
  EXPECT_THROW(static_cast<void>(generate_workload(cfg, {core::NodeId{0}}, rng)),
               std::invalid_argument);
}

}  // namespace
}  // namespace intsched::edge
