// Device + server end-to-end on a small topology: full task lifecycle,
// timestamps ordered, worker-slot queueing, completion-notification
// reliability.
#include <gtest/gtest.h>

#include "intsched/edge/edge_device.hpp"
#include "intsched/edge/edge_server.hpp"
#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"

namespace intsched::edge {
namespace {

/// Fixed-choice policy for tests.
class FixedPolicy : public core::SelectionPolicy {
 public:
  explicit FixedPolicy(std::vector<core::NodeId> servers)
      : servers_{std::move(servers)} {}
  void select(core::NodeId, std::int32_t count,
              const std::vector<std::string>&,
              SelectionHandler handler) override {
    std::vector<core::NodeId> chosen;
    for (std::int32_t i = 0; i < count; ++i) {
      chosen.push_back(servers_[static_cast<std::size_t>(i) %
                                servers_.size()]);
    }
    handler(std::move(chosen));
  }
  using core::SelectionPolicy::select;
  [[nodiscard]] core::PolicyKind kind() const override {
    return core::PolicyKind::kNearest;
  }

 private:
  std::vector<core::NodeId> servers_;
};

JobSpec make_job(std::int64_t id, core::NodeId submitter, int tasks,
                 sim::Bytes data = 100'000,
                 sim::SimDuration exec = sim::SimDuration::seconds(1)) {
  JobSpec job;
  job.job_id = id;
  job.kind = tasks == 1 ? WorkloadKind::kServerless
                        : WorkloadKind::kDistributed;
  job.submitter = submitter;
  for (int t = 0; t < tasks; ++t) {
    TaskSpec spec;
    spec.job_id = id;
    spec.task_index = t;
    spec.cls = TaskClass::kVerySmall;
    spec.data_bytes = data;
    spec.exec_time = exec;
    job.tasks.push_back(spec);
  }
  return job;
}

struct EdgeFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* device_host = nullptr;
  net::Host* server_host1 = nullptr;
  net::Host* server_host2 = nullptr;
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  MetricsCollector metrics;
  std::unique_ptr<FixedPolicy> policy;
  std::unique_ptr<EdgeDevice> device;
  std::vector<std::unique_ptr<EdgeServer>> servers;

  void wire(EdgeServerConfig server_cfg = {}) {
    device_host = &topo.add_node<net::Host>("device");
    server_host1 = &topo.add_node<net::Host>("server1");
    server_host2 = &topo.add_node<net::Host>("server2");
    p4::SwitchConfig cfg;
    cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
    cfg.proc_jitter_frac = 0.0;
    cfg.stall_probability = 0.0;
    auto& sw = topo.add_node<p4::P4Switch>("sw", cfg);
    for (net::Host* h : {device_host, server_host1, server_host2}) {
      net::LinkConfig link;
      link.prop_delay = sim::SimDuration::milliseconds(5);
      topo.connect(*h, sw, link);
    }
    topo.install_routes();
    sw.load_program(std::make_unique<p4::ForwardingProgram>());
    for (net::Host* h : {device_host, server_host1, server_host2}) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
    }
    policy = std::make_unique<FixedPolicy>(std::vector<core::NodeId>{
        server_host1->id(), server_host2->id()});
    device = std::make_unique<EdgeDevice>(*stacks[0], metrics, *policy);
    servers.push_back(
        std::make_unique<EdgeServer>(*stacks[1], metrics, server_cfg));
    servers.push_back(
        std::make_unique<EdgeServer>(*stacks[2], metrics, server_cfg));
  }
};

TEST_F(EdgeFixture, SingleTaskLifecycle) {
  wire();
  device->submit(make_job(0, device_host->id(), 1));
  sim.run();
  const TaskRecord& r = metrics.at(0, 0);
  EXPECT_TRUE(r.is_complete());
  EXPECT_EQ(r.server, server_host1->id());
  EXPECT_EQ(r.device, device_host->id());
  EXPECT_EQ(metrics.completed(), 1);
  EXPECT_EQ(servers[0]->tasks_executed(), 1);
}

TEST_F(EdgeFixture, TimestampsOrdered) {
  wire();
  device->submit(make_job(0, device_host->id(), 1));
  sim.run();
  const TaskRecord& r = metrics.at(0, 0);
  EXPECT_GE(r.scheduled, r.submitted);
  EXPECT_GE(r.transfer_start, r.scheduled);
  EXPECT_GT(r.transfer_end, r.transfer_start);
  EXPECT_GE(r.exec_end, r.transfer_end + r.exec_time);
  EXPECT_GT(r.completed, r.exec_end);
}

TEST_F(EdgeFixture, ExecutionTimeRespected) {
  wire();
  device->submit(make_job(0, device_host->id(), 1, 50'000,
                          sim::SimDuration::seconds(3)));
  sim.run();
  const TaskRecord& r = metrics.at(0, 0);
  EXPECT_EQ(r.exec_end - r.transfer_end, sim::SimDuration::seconds(3));
}

TEST_F(EdgeFixture, DistributedJobSpreadsTasks) {
  wire();
  device->submit(make_job(0, device_host->id(), 3));
  sim.run();
  EXPECT_EQ(metrics.completed(), 3);
  // Round-robin over two servers: tasks 0, 2 -> server1; task 1 -> server2.
  EXPECT_EQ(metrics.at(0, 0).server, server_host1->id());
  EXPECT_EQ(metrics.at(0, 1).server, server_host2->id());
  EXPECT_EQ(metrics.at(0, 2).server, server_host1->id());
}

TEST_F(EdgeFixture, UnlimitedSlotsRunConcurrently) {
  wire();  // worker_slots = 0 (unlimited)
  device->submit(make_job(0, device_host->id(), 3, 50'000,
                          sim::SimDuration::seconds(5)));
  sim.run();
  EXPECT_EQ(servers[0]->max_concurrent(), 2);  // tasks 0 and 2 overlap
}

TEST_F(EdgeFixture, SingleSlotSerializesExecution) {
  EdgeServerConfig cfg;
  cfg.worker_slots = 1;
  wire(cfg);
  device->submit(make_job(0, device_host->id(), 3, 50'000,
                          sim::SimDuration::seconds(5)));
  sim.run();
  EXPECT_EQ(servers[0]->max_concurrent(), 1);
  // Both tasks at server1 executed, 5 s apart.
  const sim::SimDuration gap =
      metrics.at(0, 2).exec_end - metrics.at(0, 0).exec_end;
  EXPECT_EQ(gap, sim::SimDuration::seconds(5));
}

TEST_F(EdgeFixture, MultipleJobsAllComplete) {
  wire();
  for (int j = 0; j < 5; ++j) {
    const auto job = make_job(j, device_host->id(), 1);
    sim.schedule_at(sim::SimTime::seconds(j),
                    [this, job] { device->submit(job); });
  }
  sim.run();
  EXPECT_EQ(metrics.completed(), 5);
  EXPECT_EQ(device->tasks_completed(), 5);
  EXPECT_EQ(device->jobs_submitted(), 5);
}

TEST_F(EdgeFixture, CompletionHandlerFires) {
  wire();
  std::vector<std::int64_t> completed_jobs;
  device->set_completion_handler(
      [&](const TaskRecord& r) { completed_jobs.push_back(r.job_id); });
  device->submit(make_job(7, device_host->id(), 1));
  sim.run();
  EXPECT_EQ(completed_jobs, (std::vector<std::int64_t>{7}));
}

TEST_F(EdgeFixture, TransferBytesMatchTaskSize) {
  wire();
  device->submit(make_job(0, device_host->id(), 1, 250'000));
  sim.run();
  EXPECT_EQ(servers[0]->tasks_received(), 1);
  const TaskRecord& r = metrics.at(0, 0);
  EXPECT_EQ(r.data_bytes, 250'000);
  // Transfer of 250 KB at ~52 Mbps effective takes tens of ms.
  EXPECT_GT(r.transfer_time(), sim::SimDuration::milliseconds(20));
  EXPECT_LT(r.transfer_time(), sim::SimDuration::seconds(2));
}

TEST_F(EdgeFixture, NoSendersLeakAfterCompletion) {
  wire();
  device->submit(make_job(0, device_host->id(), 3));
  sim.run();
  EXPECT_EQ(device->transfers_in_flight(), 0);
}

}  // namespace
}  // namespace intsched::edge
