#include "intsched/edge/metrics.hpp"

#include <gtest/gtest.h>

namespace intsched::edge {
namespace {

sim::SimDuration s(int v) { return sim::SimDuration::seconds(v); }
sim::SimTime ts(int v) { return sim::SimTime::seconds(v); }

TaskSpec spec(std::int64_t job, std::int32_t idx,
              TaskClass cls = TaskClass::kSmall) {
  TaskSpec t;
  t.job_id = job;
  t.task_index = idx;
  t.cls = cls;
  t.data_bytes = 1000;
  t.exec_time = s(1);
  return t;
}

TEST(MetricsTest, OpenInitializesRecord) {
  MetricsCollector m;
  TaskRecord& r = m.open(spec(1, 0), core::NodeId{4});
  EXPECT_EQ(r.job_id, 1);
  EXPECT_EQ(r.device, core::NodeId{4});
  EXPECT_FALSE(r.is_complete());
  EXPECT_EQ(m.total(), 1);
}

TEST(MetricsTest, DoubleOpenThrows) {
  MetricsCollector m;
  m.open(spec(1, 0), core::NodeId{4});
  EXPECT_THROW(m.open(spec(1, 0), core::NodeId{4}), std::logic_error);
}

TEST(MetricsTest, AtFindsOrThrows) {
  MetricsCollector m;
  m.open(spec(1, 2), core::NodeId{4});
  EXPECT_NO_THROW(static_cast<void>(m.at(1, 2)));
  EXPECT_THROW(static_cast<void>(m.at(9, 9)), std::logic_error);
  EXPECT_EQ(m.find(9, 9), nullptr);
  EXPECT_NE(m.find(1, 2), nullptr);
}

TEST(MetricsTest, DurationsComputed) {
  MetricsCollector m;
  TaskRecord& r = m.open(spec(1, 0), core::NodeId{4});
  r.submitted = ts(10);
  r.transfer_start = ts(11);
  r.transfer_end = ts(13);
  r.completed = ts(20);
  EXPECT_EQ(r.transfer_time(), s(2));
  EXPECT_EQ(r.completion_time(), s(10));
  EXPECT_TRUE(r.is_complete());
}

TEST(MetricsTest, PerClassMeans) {
  MetricsCollector m;
  for (int i = 0; i < 3; ++i) {
    TaskRecord& r = m.open(spec(i, 0, TaskClass::kMedium), core::NodeId{1});
    r.submitted = ts(0);
    r.completed = ts(10 + i);  // 10, 11, 12
    r.transfer_start = ts(0);
    r.transfer_end = ts(2);
    m.note_completed();
  }
  TaskRecord& other = m.open(spec(10, 0, TaskClass::kLarge), core::NodeId{1});
  other.submitted = ts(0);
  other.completed = ts(100);
  m.note_completed();

  EXPECT_DOUBLE_EQ(*m.mean_completion_s(TaskClass::kMedium), 11.0);
  EXPECT_DOUBLE_EQ(*m.mean_transfer_s(TaskClass::kMedium), 2.0);
  EXPECT_DOUBLE_EQ(*m.mean_completion_s(TaskClass::kLarge), 100.0);
  EXPECT_FALSE(m.mean_completion_s(TaskClass::kSmall).has_value());
  EXPECT_EQ(m.completed(), 4);
}

TEST(MetricsTest, IncompleteTasksExcludedFromMeans) {
  MetricsCollector m;
  TaskRecord& done = m.open(spec(1, 0), core::NodeId{1});
  done.submitted = ts(0);
  done.completed = ts(5);
  m.open(spec(2, 0), core::NodeId{1}).submitted = ts(0);  // never completes
  EXPECT_DOUBLE_EQ(*m.mean_completion_s(TaskClass::kSmall), 5.0);
}

TEST(MetricsTest, RecordsOrderedByKey) {
  MetricsCollector m;
  m.open(spec(2, 0), core::NodeId{1});
  m.open(spec(1, 1), core::NodeId{1});
  m.open(spec(1, 0), core::NodeId{1});
  const auto records = m.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0]->job_id, 1);
  EXPECT_EQ(records[0]->task_index, 0);
  EXPECT_EQ(records[1]->task_index, 1);
  EXPECT_EQ(records[2]->job_id, 2);
}

TEST(PairedGainsTest, ComputesRelativeGain) {
  MetricsCollector base;
  MetricsCollector treat;
  for (int i = 0; i < 2; ++i) {
    TaskRecord& b = base.open(spec(i, 0), core::NodeId{1});
    b.submitted = ts(0);
    b.completed = ts(10);
    TaskRecord& t = treat.open(spec(i, 0), core::NodeId{1});
    t.submitted = ts(0);
    t.completed = ts(i == 0 ? 5 : 20);  // +50% and -100%
  }
  const auto gains = paired_gains(treat, base);
  ASSERT_EQ(gains.size(), 2u);
  EXPECT_DOUBLE_EQ(gains[0], 0.5);
  EXPECT_DOUBLE_EQ(gains[1], -1.0);
}

TEST(PairedGainsTest, SkipsUnmatchedOrIncomplete) {
  MetricsCollector base;
  MetricsCollector treat;
  TaskRecord& t1 = treat.open(spec(1, 0), core::NodeId{1});
  t1.submitted = ts(0);
  t1.completed = ts(5);
  // No matching record in base.
  EXPECT_TRUE(paired_gains(treat, base).empty());

  TaskRecord& b1 = base.open(spec(1, 0), core::NodeId{1});
  b1.submitted = ts(0);  // incomplete in base
  EXPECT_TRUE(paired_gains(treat, base).empty());
}

TEST(PairedGainsTest, TransferTimeVariant) {
  MetricsCollector base;
  MetricsCollector treat;
  TaskRecord& b = base.open(spec(1, 0), core::NodeId{1});
  b.submitted = ts(0);
  b.completed = ts(30);
  b.transfer_start = ts(0);
  b.transfer_end = ts(4);
  TaskRecord& t = treat.open(spec(1, 0), core::NodeId{1});
  t.submitted = ts(0);
  t.completed = ts(30);
  t.transfer_start = ts(0);
  t.transfer_end = ts(1);
  const auto gains = paired_gains(treat, base, /*use_transfer_time=*/true);
  ASSERT_EQ(gains.size(), 1u);
  EXPECT_DOUBLE_EQ(gains[0], 0.75);
}

}  // namespace
}  // namespace intsched::edge
