// The parallel sweep engine's contract: the merged output of a sweep is
// byte-identical to the serial run at the same seed, for every jobs value.
// These tests serialize every field of every result — including the full
// per-task timeline — and compare the strings, so any nondeterminism in
// trial placement, merge order, or cross-thread state sharing fails loudly.

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/fault_sweep.hpp"
#include "intsched/exp/sweep_runner.hpp"

namespace intsched::exp {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.workload.total_tasks = 24;
  cfg.background.mode = BackgroundMode::kRandomPairs;
  return cfg;
}

void serialize(std::ostringstream& out, const ExperimentResult& r) {
  out << r.tasks_total << '|' << r.tasks_completed << '|'
      << r.sim_duration.ns() << '|' << r.events_executed << '|'
      << r.probes_sent << '|' << r.probe_bytes_sent << '|' << r.probe_reports
      << '|' << r.queries_served << '|' << r.switch_queue_drops << '|'
      << r.background_flows << '|' << r.degradation.probes_dropped << '|'
      << r.degradation.stale_lookups << '|'
      << r.degradation.fallback_decisions << '\n';
  for (const edge::TaskRecord* t : r.metrics.records()) {
    out << t->job_id << ',' << t->task_index << ','
        << static_cast<int>(t->cls) << ',' << t->device << ',' << t->server
        << ',' << t->data_bytes << ',' << t->exec_time.ns() << ','
        << t->submitted.ns() << ',' << t->scheduled.ns() << ','
        << t->transfer_start.ns() << ',' << t->transfer_end.ns() << ','
        << t->exec_end.ns() << ',' << t->completed.ns() << '\n';
  }
}

std::string serialize_suite(
    const std::map<core::PolicyKind, ExperimentResult>& results) {
  std::ostringstream out;
  for (const auto& [policy, result] : results) {
    out << core::to_string(policy) << '\n';
    serialize(out, result);
  }
  return out.str();
}

TEST(ParallelDeterminism, PolicySuiteIsByteIdenticalAcrossJobCounts) {
  const ExperimentConfig base = small_config();
  const std::vector<core::PolicyKind> arms{core::PolicyKind::kIntDelay,
                                           core::PolicyKind::kNearest,
                                           core::PolicyKind::kRandom};

  const std::string serial =
      serialize_suite(run_policy_suite(base, arms));
  for (const int jobs : {1, 2, 8}) {
    const std::string parallel =
        serialize_suite(run_policy_suite_parallel(base, arms, jobs));
    EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, SweepRunnerMapPreservesIndexOrder) {
  for (const int jobs : {1, 2, 8}) {
    const SweepRunner runner{jobs};
    const std::vector<int> out =
        runner.map<int>(100, [](std::size_t i) {
          return static_cast<int>(i * i);
        });
    ASSERT_EQ(out.size(), 100u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i)) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelDeterminism, FaultSweepIsByteIdenticalAcrossJobCounts) {
  FaultSweepConfig cfg;
  cfg.base = small_config();
  cfg.drop_rates = {0.0, 0.2, 0.5};

  const auto render = [](const FaultSweepResult& sweep) {
    std::ostringstream out;
    for (const FaultSweepRow& row : sweep.rows) {
      out << row.drop_rate << '\n';
      serialize(out, row.result);
    }
    return out.str();
  };

  cfg.jobs = 1;
  const std::string serial = render(run_fault_sweep(cfg));
  for (const int jobs : {2, 8}) {
    cfg.jobs = jobs;
    EXPECT_EQ(serial, render(run_fault_sweep(cfg))) << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, ExceptionsPropagateAfterDrain) {
  const SweepRunner runner{4};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i] {
      if (i == 5) throw std::runtime_error("trial failed");
    });
  }
  EXPECT_THROW(runner.run(std::move(tasks)), std::runtime_error);
}

TEST(ParallelDeterminism, SerialPathAbandonsTasksAfterThrow) {
  // The parallel stop flag mirrors this exactly: a failing trial means no
  // usable sweep, so later tasks are skipped rather than run for nothing.
  const SweepRunner runner{1};
  bool later_ran = false;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("trial failed"); });
  tasks.push_back([&later_ran] { later_ran = true; });
  EXPECT_THROW(runner.run(std::move(tasks)), std::runtime_error);
  EXPECT_FALSE(later_ran);
}

TEST(ParallelDeterminism, ResolveJobsHonoursExplicitRequest) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-2), 1);
}

}  // namespace
}  // namespace intsched::exp
