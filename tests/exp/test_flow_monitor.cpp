#include "intsched/exp/flow_monitor.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "intsched/exp/fig4.hpp"
#include "intsched/transport/iperf.hpp"

namespace intsched::exp {
namespace {

struct FlowMonitorFixture : ::testing::Test {
  sim::Simulator sim;
  Fig4Network network{sim, Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::vector<std::unique_ptr<transport::IperfUdpSink>> sinks;

  void SetUp() override {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
      sinks.push_back(
          std::make_unique<transport::IperfUdpSink>(*stacks.back()));
    }
  }
};

TEST_F(FlowMonitorFixture, IdleNetworkShowsZeroUtilization) {
  FlowMonitor monitor{network.topology(), sim::SimDuration::seconds(1)};
  monitor.start();
  sim.run_until(sim::SimTime::seconds(5));
  ASSERT_FALSE(monitor.samples().empty());
  for (const auto& s : monitor.samples()) {
    EXPECT_DOUBLE_EQ(s.utilization, 0.0);
    EXPECT_EQ(s.tx_packets, 0);
  }
}

TEST_F(FlowMonitorFixture, DetectsSaturatedPort) {
  transport::IperfUdpSender::Config cfg;
  cfg.rate = sim::DataRate::megabits_per_second(25.0);  // > capacity
  transport::IperfUdpSender flood{*stacks[0], network.hosts()[1]->id(),
                                  cfg};
  flood.start(sim::SimDuration::seconds(10));
  FlowMonitor monitor{network.topology(), sim::SimDuration::seconds(1)};
  monitor.start();
  sim.run_until(sim::SimTime::seconds(10));
  // node1's leaf switch (id 8) must show a saturated egress port.
  EXPECT_GT(monitor.peak_utilization(core::NodeId{8}), 0.95);
  // An untouched pod-3 switch stays idle.
  EXPECT_LT(monitor.peak_utilization(core::NodeId{17}), 0.05);
}

TEST_F(FlowMonitorFixture, SamplesCarryIntervalDeltas) {
  transport::IperfUdpSender::Config cfg;
  cfg.rate = sim::DataRate::megabits_per_second(10.0);
  transport::IperfUdpSender flow{*stacks[0], network.hosts()[1]->id(), cfg};
  flow.start(sim::SimDuration::seconds(4));
  FlowMonitor monitor{network.topology(), sim::SimDuration::seconds(1)};
  monitor.start();
  sim.run_until(sim::SimTime::seconds(6));
  // 10 Mbps of 1500 B packets ~ 833 pkt/s per 1 s interval on the host
  // uplink while the flow runs.
  std::int64_t max_interval_pkts = 0;
  for (const auto& s : monitor.samples()) {
    if (s.node == core::NodeId{0}) {
      max_interval_pkts = std::max(max_interval_pkts, s.tx_packets);
    }
  }
  EXPECT_NEAR(static_cast<double>(max_interval_pkts), 833.0, 10.0);
}

TEST_F(FlowMonitorFixture, CsvHasHeaderAndRows) {
  FlowMonitor monitor{network.topology(), sim::SimDuration::seconds(1)};
  monitor.start();
  sim.run_until(sim::SimTime::seconds(2));
  std::ostringstream os;
  monitor.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("time_s,node,port,peer"), std::string::npos);
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 10);
}

TEST_F(FlowMonitorFixture, StopFreezesSamples) {
  FlowMonitor monitor{network.topology(), sim::SimDuration::seconds(1)};
  monitor.start();
  sim.run_until(sim::SimTime::seconds(3));
  monitor.stop();
  const std::size_t count = monitor.samples().size();
  sim.run_until(sim::SimTime::seconds(10));
  EXPECT_EQ(monitor.samples().size(), count);
}

}  // namespace
}  // namespace intsched::exp
