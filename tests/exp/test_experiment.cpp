// Experiment runner: completion, determinism, policy pairing.
#include "intsched/exp/experiment.hpp"

#include <gtest/gtest.h>

namespace intsched::exp {
namespace {

ExperimentConfig small_config(core::PolicyKind policy,
                              std::int32_t tasks = 12) {
  ExperimentConfig cfg;
  cfg.seed = 5;
  cfg.policy = policy;
  cfg.workload.total_tasks = tasks;
  cfg.workload.job_interval = sim::SimDuration::seconds(2);
  cfg.background.mode = BackgroundMode::kNone;
  return cfg;
}

TEST(ExperimentTest, AllTasksCompleteOnQuietNetwork) {
  const ExperimentResult r =
      run_experiment(small_config(core::PolicyKind::kNearest));
  EXPECT_EQ(r.tasks_total, 12);
  EXPECT_EQ(r.tasks_completed, 12);
  EXPECT_LT(r.sim_duration, sim::SimDuration::seconds(120));
}

TEST(ExperimentTest, IntPolicyAlsoCompletes) {
  const ExperimentResult r =
      run_experiment(small_config(core::PolicyKind::kIntDelay));
  EXPECT_EQ(r.tasks_completed, 12);
  EXPECT_GT(r.queries_served, 0);
  EXPECT_GT(r.probe_reports, 0);
}

TEST(ExperimentTest, RandomPolicyCompletes) {
  const ExperimentResult r =
      run_experiment(small_config(core::PolicyKind::kRandom));
  EXPECT_EQ(r.tasks_completed, 12);
  EXPECT_EQ(r.queries_served, 0);  // random never asks the scheduler
}

TEST(ExperimentTest, ProbesRunRegardlessOfPolicy) {
  const ExperimentResult r =
      run_experiment(small_config(core::PolicyKind::kNearest));
  EXPECT_GT(r.probes_sent, 0);
  EXPECT_GT(r.probe_reports, 0);
}

TEST(ExperimentTest, DeterministicRepeat) {
  const ExperimentConfig cfg = small_config(core::PolicyKind::kIntDelay);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.events_executed, b.events_executed);
  const auto ra = a.metrics.records();
  const auto rb = b.metrics.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i]->completed, rb[i]->completed);
    EXPECT_EQ(ra[i]->server, rb[i]->server);
  }
}

TEST(ExperimentTest, PoliciesSeeIdenticalWorkload) {
  const auto results = run_policy_suite(
      small_config(core::PolicyKind::kIntDelay),
      {core::PolicyKind::kIntDelay, core::PolicyKind::kNearest});
  const auto a = results.at(core::PolicyKind::kIntDelay).metrics.records();
  const auto b = results.at(core::PolicyKind::kNearest).metrics.records();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->job_id, b[i]->job_id);
    EXPECT_EQ(a[i]->device, b[i]->device);
    EXPECT_EQ(a[i]->data_bytes, b[i]->data_bytes);
    EXPECT_EQ(a[i]->exec_time, b[i]->exec_time);
    EXPECT_EQ(a[i]->submitted, b[i]->submitted);
  }
}

TEST(ExperimentTest, DistributedWorkloadUsesThreeServers) {
  ExperimentConfig cfg = small_config(core::PolicyKind::kIntDelay);
  cfg.workload.kind = edge::WorkloadKind::kDistributed;
  cfg.workload.total_tasks = 9;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.tasks_completed, 9);
  // Each job's three tasks go to three distinct servers.
  for (std::int64_t job = 0; job < 3; ++job) {
    const auto* t0 = r.metrics.find(job, 0);
    const auto* t1 = r.metrics.find(job, 1);
    const auto* t2 = r.metrics.find(job, 2);
    ASSERT_NE(t0, nullptr);
    ASSERT_NE(t1, nullptr);
    ASSERT_NE(t2, nullptr);
    EXPECT_NE(t0->server, t1->server);
    EXPECT_NE(t1->server, t2->server);
    EXPECT_NE(t0->server, t2->server);
  }
}

TEST(ExperimentTest, CompletionTimesIncludeExecution) {
  const ExperimentResult r =
      run_experiment(small_config(core::PolicyKind::kNearest));
  for (const edge::TaskRecord* rec : r.metrics.records()) {
    ASSERT_TRUE(rec->is_complete());
    EXPECT_GT(rec->completion_time(), rec->exec_time);
  }
}

TEST(ExperimentTest, MaxDurationSafetyStop) {
  ExperimentConfig cfg = small_config(core::PolicyKind::kNearest);
  cfg.max_duration = sim::SimDuration::seconds(6);  // too short to finish
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_LT(r.tasks_completed, r.tasks_total);
  EXPECT_EQ(r.sim_duration, sim::SimDuration::seconds(6));
}

TEST(ExperimentTest, BackgroundCongestionSlowsTasks) {
  ExperimentConfig quiet = small_config(core::PolicyKind::kNearest, 16);
  ExperimentConfig busy = quiet;
  busy.background.mode = BackgroundMode::kRandomPairs;
  const ExperimentResult rq = run_experiment(quiet);
  const ExperimentResult rb = run_experiment(busy);
  double quiet_mean = 0.0;
  double busy_mean = 0.0;
  for (const edge::TaskClass cls : edge::kAllTaskClasses) {
    quiet_mean += rq.metrics.mean_completion_s(cls).value_or(0.0);
    busy_mean += rb.metrics.mean_completion_s(cls).value_or(0.0);
  }
  EXPECT_GT(busy_mean, quiet_mean);
}

}  // namespace
}  // namespace intsched::exp

// -- Extension paths through the experiment runner --

namespace intsched::exp {
namespace {

TEST(ExperimentExtensionTest, ComputeAwareRunsEndToEnd) {
  ExperimentConfig cfg;
  cfg.seed = 6;
  cfg.workload.total_tasks = 12;
  cfg.background.mode = BackgroundMode::kNone;
  cfg.policy = core::PolicyKind::kIntDelay;
  cfg.scheduler.compute_aware = true;
  cfg.server.worker_slots = 1;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_EQ(r.tasks_completed, 12);
}

TEST(ExperimentExtensionTest, ComputeAwareSpreadsLoadUnderOverload) {
  // Short job interval + single worker: compute-aware completes faster.
  ExperimentConfig cfg;
  cfg.seed = 6;
  cfg.workload.total_tasks = 24;
  cfg.workload.job_interval = sim::SimDuration::milliseconds(700);
  cfg.workload.classes = {edge::TaskClass::kMedium};  // 5-7 s execution
  cfg.background.mode = BackgroundMode::kNone;
  cfg.policy = core::PolicyKind::kIntDelay;
  cfg.server.worker_slots = 1;

  const ExperimentResult plain = run_experiment(cfg);
  cfg.scheduler.compute_aware = true;
  cfg.scheduler.load_penalty = sim::SimDuration::seconds(2);
  const ExperimentResult aware = run_experiment(cfg);

  ASSERT_EQ(plain.tasks_completed, 24);
  ASSERT_EQ(aware.tasks_completed, 24);
  double plain_total = 0.0;
  double aware_total = 0.0;
  for (const edge::TaskRecord* r : plain.metrics.records()) {
    plain_total += r->completion_time().to_seconds();
  }
  for (const edge::TaskRecord* r : aware.metrics.records()) {
    aware_total += r->completion_time().to_seconds();
  }
  EXPECT_LT(aware_total, plain_total);
}

}  // namespace
}  // namespace intsched::exp
