#include "intsched/exp/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace intsched::exp {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t{"demo"};
  t.set_headers({"a", "long-header"});
  t.add_row({"wide-cell", "x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, RowsKeepOrder) {
  TextTable t{"demo"};
  t.set_headers({"v"});
  t.add_row({"first"});
  t.add_row({"second"});
  const std::string out = t.to_string();
  EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(TextTableTest, NoHeadersNoRule) {
  TextTable t{"demo"};
  t.add_row({"only"});
  const std::string out = t.to_string();
  EXPECT_EQ(out.find("---"), std::string::npos);
}

TEST(PercentGainTest, Basics) {
  EXPECT_DOUBLE_EQ(percent_gain(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_gain(10.0, 15.0), -50.0);
  EXPECT_DOUBLE_EQ(percent_gain(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_gain(0.0, 5.0), 0.0);  // guarded
}

TEST(FormattersTest, Seconds) {
  EXPECT_EQ(fmt_seconds(1.23456), "1.235");
  EXPECT_EQ(fmt_seconds(0.0), "0.000");
}

TEST(FormattersTest, Percent) {
  EXPECT_EQ(fmt_percent(12.34), "12.3%");
  EXPECT_EQ(fmt_percent(-5.0), "-5.0%");
}

TEST(FormattersTest, OptionalSeconds) {
  EXPECT_EQ(fmt_opt_seconds(1.5), "1.500");
  EXPECT_EQ(fmt_opt_seconds(std::nullopt), "n/a");
}

TEST(CsvTest, WritesCommaSeparated) {
  std::ostringstream os;
  write_csv_row(os, {"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvTest, SingleCell) {
  std::ostringstream os;
  write_csv_row(os, {"only"});
  EXPECT_EQ(os.str(), "only\n");
}

}  // namespace
}  // namespace intsched::exp
