#include "intsched/exp/background.hpp"

#include <gtest/gtest.h>

#include "intsched/exp/fig4.hpp"

namespace intsched::exp {
namespace {

struct BackgroundFixture : ::testing::Test {
  sim::Simulator sim;
  Fig4Network network{sim, Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::vector<std::unique_ptr<transport::IperfUdpSink>> sinks;
  std::vector<transport::HostStack*> ptrs;

  void SetUp() override {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
      sinks.push_back(
          std::make_unique<transport::IperfUdpSink>(*stacks.back()));
      ptrs.push_back(stacks.back().get());
    }
  }

  sim::Bytes total_received() const {
    sim::Bytes total = 0;
    for (const auto& sink : sinks) total += sink->bytes_received();
    return total;
  }
};

TEST_F(BackgroundFixture, NoneModeGeneratesNothing) {
  BackgroundConfig cfg;
  cfg.mode = BackgroundMode::kNone;
  BackgroundTraffic bg{sim, ptrs, cfg};
  bg.start();
  sim.run_until(sim::SimTime::seconds(30));
  EXPECT_EQ(bg.flows_started(), 0);
  EXPECT_EQ(total_received(), 0);
}

TEST_F(BackgroundFixture, RandomPairsKeepsTrafficFlowing) {
  BackgroundConfig cfg;
  cfg.mode = BackgroundMode::kRandomPairs;
  BackgroundTraffic bg{sim, ptrs, cfg};
  bg.start();
  sim.run_until(sim::SimTime::seconds(120));
  // Slot 0 runs back-to-back 30/60 s flows: at least 2 in 120 s; slot 1
  // contributes more.
  EXPECT_GE(bg.flows_started(), 3);
  EXPECT_GT(total_received(), 50 * sim::kMB);
}

TEST_F(BackgroundFixture, Pattern1ThreeStaggeredSlots) {
  BackgroundConfig cfg;
  cfg.mode = BackgroundMode::kPattern1;
  BackgroundTraffic bg{sim, ptrs, cfg};
  bg.start();
  // Slots start at 0, 10, 20 s; each cycles 30 s on / 30 s off.
  sim.run_until(sim::SimTime::seconds(25));
  EXPECT_EQ(bg.flows_started(), 3);
  sim.run_until(sim::SimTime::seconds(85));
  EXPECT_EQ(bg.flows_started(), 6);  // second flows at t = 60, 70, 80
}

TEST_F(BackgroundFixture, Pattern2CyclesFaster) {
  BackgroundConfig cfg;
  cfg.mode = BackgroundMode::kPattern2;
  BackgroundTraffic bg{sim, ptrs, cfg};
  bg.start();
  sim.run_until(sim::SimTime::seconds(30));
  // 5 s on / 5 s off: each slot starts a flow every 10 s -> ~9 flows.
  EXPECT_GE(bg.flows_started(), 8);
}

TEST_F(BackgroundFixture, DeterministicForSeed) {
  BackgroundConfig cfg;
  cfg.mode = BackgroundMode::kRandomPairs;
  cfg.seed = 77;
  BackgroundTraffic bg{sim, ptrs, cfg};
  bg.start();
  sim.run_until(sim::SimTime::seconds(100));
  const sim::Bytes first = total_received();
  const std::int64_t first_flows = bg.flows_started();

  // Rebuild the identical world and replay.
  sim::Simulator sim2;
  Fig4Network net2{sim2, Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks2;
  std::vector<std::unique_ptr<transport::IperfUdpSink>> sinks2;
  std::vector<transport::HostStack*> ptrs2;
  for (net::Host* h : net2.hosts()) {
    stacks2.push_back(std::make_unique<transport::HostStack>(*h));
    sinks2.push_back(
        std::make_unique<transport::IperfUdpSink>(*stacks2.back()));
    ptrs2.push_back(stacks2.back().get());
  }
  BackgroundTraffic bg2{sim2, ptrs2, cfg};
  bg2.start();
  sim2.run_until(sim::SimTime::seconds(100));
  sim::Bytes second = 0;
  for (const auto& sink : sinks2) second += sink->bytes_received();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_flows, bg2.flows_started());
}

TEST_F(BackgroundFixture, StopHaltsFlows) {
  BackgroundConfig cfg;
  cfg.mode = BackgroundMode::kRandomPairs;
  BackgroundTraffic bg{sim, ptrs, cfg};
  bg.start();
  sim.run_until(sim::SimTime::seconds(10));
  bg.stop();
  const sim::Bytes at_stop = total_received();
  sim.run_until(sim::SimTime::seconds(40));
  // In-flight packets may still land, but no meaningful new traffic.
  EXPECT_LT(total_received() - at_stop, 1 * sim::kMB);
}

TEST_F(BackgroundFixture, ModeNames) {
  EXPECT_STREQ(to_string(BackgroundMode::kNone), "none");
  EXPECT_STREQ(to_string(BackgroundMode::kRandomPairs), "random-pairs");
  EXPECT_STREQ(to_string(BackgroundMode::kPattern1), "traffic-1");
  EXPECT_STREQ(to_string(BackgroundMode::kPattern2), "traffic-2");
}

}  // namespace
}  // namespace intsched::exp
