#include "intsched/exp/fig4.hpp"

#include <gtest/gtest.h>

#include "intsched/core/scheduler_service.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"

namespace intsched::exp {
namespace {

struct Fig4Fixture : ::testing::Test {
  sim::Simulator sim;
  Fig4Network network{sim, Fig4Config{}};
};

TEST_F(Fig4Fixture, PaperScale) {
  EXPECT_EQ(network.hosts().size(), 8u);
  EXPECT_EQ(network.switches().size(), 12u);
  EXPECT_EQ(network.topology().node_count(), 20);
}

TEST_F(Fig4Fixture, HostNamesAndIds) {
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(network.hosts()[static_cast<std::size_t>(i)]->id(), core::NodeId{i});
    EXPECT_EQ(network.hosts()[static_cast<std::size_t>(i)]->name(),
              "node" + std::to_string(i + 1));
  }
}

TEST_F(Fig4Fixture, SchedulerIsNodeSix) {
  EXPECT_EQ(network.scheduler_host().name(), "node6");
  EXPECT_EQ(network.scheduler_host().id(), core::NodeId{5});
}

TEST_F(Fig4Fixture, NearestPairsAreThreeSwitchHops) {
  // Intra-pod pairs traverse exactly 3 switches (paper: "nodes that are
  // located three hops away are the nearest node for each other").
  for (const auto& [a, b] : {std::pair{0, 1}, {2, 3}, {4, 5}, {6, 7}}) {
    const auto path = network.topology().path(core::NodeId{a}, core::NodeId{b});
    EXPECT_EQ(path.size(), 5u) << a << "->" << b;  // h + 3 switches + h
  }
}

TEST_F(Fig4Fixture, CrossPodPathsAreLonger) {
  const auto near = network.topology().path_delay(core::NodeId{6}, core::NodeId{7});
  const auto far = network.topology().path_delay(core::NodeId{0}, core::NodeId{6});
  EXPECT_LT(near, far);
}

TEST_F(Fig4Fixture, AllHostPairsReachable) {
  for (core::NodeId a = core::NodeId{0}; a < core::NodeId{8}; ++a) {
    for (core::NodeId b = core::NodeId{0}; b < core::NodeId{8}; ++b) {
      if (a == b) continue;
      EXPECT_FALSE(network.topology().path(a, b).empty());
    }
  }
}

TEST_F(Fig4Fixture, UniformTenMillisecondLinks) {
  // Nearest pair: 4 links of 10 ms each.
  EXPECT_EQ(network.topology().path_delay(core::NodeId{6}, core::NodeId{7}),
            sim::SimDuration::milliseconds(40));
}

TEST_F(Fig4Fixture, IntProgramLoadedEverywhere) {
  for (const p4::P4Switch* sw : network.switches()) {
    EXPECT_NE(dynamic_cast<const telemetry::IntTelemetryProgram*>(
                  sw->program()),
              nullptr)
        << sw->name();
  }
}

TEST_F(Fig4Fixture, ForwardingOnlyWhenIntDisabled) {
  sim::Simulator sim2;
  Fig4Config cfg;
  cfg.enable_int = false;
  Fig4Network plain{sim2, cfg};
  for (const p4::P4Switch* sw : plain.switches()) {
    EXPECT_EQ(dynamic_cast<const telemetry::IntTelemetryProgram*>(
                  sw->program()),
              nullptr);
  }
}

TEST_F(Fig4Fixture, ProbeCoverageTouchesEverySwitch) {
  const auto covered = network.probe_covered_links();
  std::set<core::NodeId> covered_devices;
  for (const auto& [from, to] : covered) {
    covered_devices.insert(from);
    covered_devices.insert(to);
  }
  // The paper assumes probes visit every device at least once.
  for (const p4::P4Switch* sw : network.switches()) {
    EXPECT_TRUE(covered_devices.contains(sw->id())) << sw->name();
  }
}

TEST_F(Fig4Fixture, HostIdsHelper) {
  const auto ids = network.host_ids();
  ASSERT_EQ(ids.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ids[static_cast<std::size_t>(i)], core::NodeId{i});
}

}  // namespace
}  // namespace intsched::exp

// -- Probe-route optimization (paper future work) --

namespace intsched::exp {
namespace {

struct ProbeRoutingFixture : Fig4Fixture {};

TEST_F(ProbeRoutingFixture, DefaultProbingMissesRingLink) {
  const auto covered = network.probe_covered_links();
  const auto all = network.switch_links();
  std::int64_t missing = 0;
  for (const auto& link : all) {
    if (!covered.contains(link)) ++missing;
  }
  EXPECT_GT(missing, 0);  // the coverage gap the planner must close
}

TEST_F(ProbeRoutingFixture, PlanCoversEverySwitchLink) {
  const auto plan = network.plan_probe_routes();
  const core::NodeId sink = network.scheduler_host().id();

  (void)sink;
  std::set<std::pair<core::NodeId, core::NodeId>> covered;
  for (const auto& [host, waypoints] : plan) {
    const auto full = network.probe_route(host, waypoints);
    for (std::size_t i = 0; i + 1 < full.size(); ++i) {
      covered.emplace(full[i], full[i + 1]);
    }
  }
  for (const auto& link : network.switch_links()) {
    EXPECT_TRUE(covered.contains(link))
        << link.first << "->" << link.second;
  }
}

TEST_F(ProbeRoutingFixture, PlanAssignsAtMostTwoWaypoints) {
  // Single waypoints suffice for most links; pairs are needed only for
  // hairpins (e.g. covering the scheduler leaf's uplink direction).
  for (const auto& [host, waypoints] : network.plan_probe_routes()) {
    EXPECT_LE(waypoints.size(), 2u) << "host " << host;
  }
}

TEST_F(ProbeRoutingFixture, SourceRoutedProbeVisitsWaypoint) {
  // Probe from node1 (pod 0) via M3 (s12, id 19): its INT stack must
  // contain s12 even though the shortest path avoids it.
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  std::vector<core::NodeId> seen_devices;
  stacks[5]->bind_udp(net::kProbePort, [&](const net::Packet& p) {
    for (const auto& e : p.int_stack) seen_devices.push_back(e.device);
  });
  telemetry::ProbeConfig pc;
  pc.waypoints = {core::NodeId{19}};
  telemetry::ProbeAgent agent{*network.hosts()[0],
                              network.scheduler_host().id(), pc};
  agent.send_probe();
  sim.run();
  EXPECT_NE(std::find(seen_devices.begin(), seen_devices.end(), core::NodeId{19}),
            seen_devices.end());
}

TEST_F(ProbeRoutingFixture, OptimizedRoutesLearnTheRingLink) {
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  core::SchedulerService service{*stacks[5], core::RankerConfig{},
                                 core::NetworkMapConfig{}};
  const auto plan = network.plan_probe_routes();
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    telemetry::ProbeConfig pc;
    if (const auto it = plan.find(h->id()); it != plan.end()) {
      pc.waypoints = it->second;
    }
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id(), pc));
    agents.back()->start();
  }
  sim.run_until(sim::SimTime::seconds(2));

  // Every switch link now has a *measured* delay in the map (the default
  // estimate is exactly 10 ms; measured values include service time).
  for (const auto& [from, to] : network.switch_links()) {
    EXPECT_GT(service.network_map().link_delay(from, to),
              sim::SimDuration::milliseconds(10))
        << from << "->" << to;
  }
  // And the far pod's delay estimate collapses to its true 5-link value.
  const auto ranked = service.rank_for(core::NodeId{0}, core::RankingMetric::kDelay);
  for (const auto& r : ranked) {
    if (r.server == core::NodeId{6} || r.server == core::NodeId{7}) {
      EXPECT_LT(r.delay_estimate, sim::SimDuration::milliseconds(80));
    }
  }
}

}  // namespace
}  // namespace intsched::exp
