#include "intsched/p4/register_array.hpp"

#include <gtest/gtest.h>

namespace intsched::p4 {
namespace {

TEST(RegisterArrayTest, InitializesToInitialValue) {
  RegisterArray r{"r", 4, 7};
  EXPECT_EQ(r.size(), 4);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(r.read(i), 7);
}

TEST(RegisterArrayTest, WriteRead) {
  RegisterArray r{"r", 2};
  r.write(0, 42);
  EXPECT_EQ(r.read(0), 42);
  EXPECT_EQ(r.read(1), 0);
}

TEST(RegisterArrayTest, UpdateMaxKeepsLarger) {
  RegisterArray r{"r", 1};
  r.update_max(0, 5);
  EXPECT_EQ(r.read(0), 5);
  r.update_max(0, 3);
  EXPECT_EQ(r.read(0), 5);
  r.update_max(0, 9);
  EXPECT_EQ(r.read(0), 9);
}

TEST(RegisterArrayTest, CollectReturnsAndResets) {
  RegisterArray r{"r", 1, 0};
  r.update_max(0, 11);
  EXPECT_EQ(r.collect(0), 11);
  EXPECT_EQ(r.read(0), 0);
  EXPECT_EQ(r.collect(0), 0);  // idempotent when already reset
}

TEST(RegisterArrayTest, CollectResetsToInitialNotZero) {
  RegisterArray r{"r", 1, -1};
  r.write(0, 5);
  EXPECT_EQ(r.collect(0), 5);
  EXPECT_EQ(r.read(0), -1);
}

TEST(RegisterArrayTest, ResetAll) {
  RegisterArray r{"r", 3};
  r.write(0, 1);
  r.write(1, 2);
  r.write(2, 3);
  r.reset_all();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(r.read(i), 0);
}

TEST(RegisterArrayTest, Name) {
  RegisterArray r{"int_max_queue_port", 1};
  EXPECT_EQ(r.name(), "int_max_queue_port");
}

TEST(RegisterArrayTest, IndependentCells) {
  RegisterArray r{"r", 3};
  r.update_max(1, 10);
  EXPECT_EQ(r.read(0), 0);
  EXPECT_EQ(r.read(1), 10);
  EXPECT_EQ(r.read(2), 0);
  r.collect(1);
  EXPECT_EQ(r.read(1), 0);
}

}  // namespace
}  // namespace intsched::p4
