#include "intsched/p4/switch.hpp"

#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"
#include "intsched/p4/program.hpp"

namespace intsched::p4 {
namespace {

net::Packet packet_to(core::NodeId dst, sim::Bytes size = 500) {
  net::Packet p;
  p.dst = dst;
  p.wire_size = size;
  return p;
}

struct SwitchFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  P4Switch* sw = nullptr;
  std::vector<net::Packet> delivered;

  void wire(SwitchConfig cfg = {}) {
    a = &topo.add_node<net::Host>("a");
    b = &topo.add_node<net::Host>("b");
    sw = &topo.add_node<P4Switch>("s", cfg);
    topo.connect(*a, *sw, net::LinkConfig{});
    topo.connect(*b, *sw, net::LinkConfig{});
    topo.install_routes();
    sw->load_program(std::make_unique<ForwardingProgram>());
    b->set_receiver([this](net::Packet&& p) {
      delivered.push_back(std::move(p));
    });
  }
};

TEST_F(SwitchFixture, ForwardsViaMatchActionTable) {
  wire();
  a->send(packet_to(b->id()));
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(sw->processed_packets(), 1);
  EXPECT_GT(sw->forwarding_table().hits(), 0);
}

TEST_F(SwitchFixture, UnknownDestinationDropsInPipeline) {
  wire();
  a->send(packet_to(core::NodeId{77}));
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(sw->pipeline_drops(), 1);
  EXPECT_EQ(sw->processed_packets(), 0);
}

TEST_F(SwitchFixture, TtlExpiryDrops) {
  wire();
  net::Packet p = packet_to(b->id());
  p.ttl = 1;  // decremented to 0 at the switch
  a->send(std::move(p));
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(sw->pipeline_drops(), 1);
}

TEST_F(SwitchFixture, TtlDecrementsInFlight) {
  wire();
  net::Packet p = packet_to(b->id());
  p.ttl = 10;
  a->send(std::move(p));
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].ttl, 9);
}

TEST_F(SwitchFixture, NoProgramThrows) {
  a = &topo.add_node<net::Host>("a");
  sw = &topo.add_node<P4Switch>("s", SwitchConfig{});
  topo.connect(*a, *sw, net::LinkConfig{});
  topo.install_routes();
  a->send(packet_to(sw->id()));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(SwitchFixture, ServiceDelayWithinConfiguredRange) {
  SwitchConfig cfg;
  cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
  cfg.proc_jitter_frac = 0.5;
  cfg.stall_probability = 0.0;
  wire(cfg);
  for (int i = 0; i < 200; ++i) {
    const sim::SimDuration d =
        sw->egress_service_delay(packet_to(b->id()), sw->port(0));
    EXPECT_GE(d, sim::SimDuration::microseconds(50));
    EXPECT_LE(d, sim::SimDuration::microseconds(150));
  }
}

TEST_F(SwitchFixture, StallsAddLargeDelays) {
  SwitchConfig cfg;
  cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
  cfg.proc_jitter_frac = 0.0;
  cfg.stall_probability = 1.0;  // every packet stalls
  cfg.stall_min = sim::SimDuration::milliseconds(5);
  cfg.stall_max = sim::SimDuration::milliseconds(6);
  wire(cfg);
  const sim::SimDuration d =
      sw->egress_service_delay(packet_to(b->id()), sw->port(0));
  EXPECT_GE(d, sim::SimDuration::milliseconds(5));
  EXPECT_LE(d, sim::SimDuration::microseconds(6100));
}

TEST_F(SwitchFixture, ZeroStallProbabilityNeverStalls) {
  SwitchConfig cfg;
  cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
  cfg.proc_jitter_frac = 0.0;
  cfg.stall_probability = 0.0;
  wire(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sw->egress_service_delay(packet_to(b->id()), sw->port(0)),
              sim::SimDuration::microseconds(100));
  }
}

TEST_F(SwitchFixture, RegisterAllocationIsIdempotent) {
  wire();
  RegisterArray& r1 = sw->register_array("x", 4);
  RegisterArray& r2 = sw->register_array("x", 4);
  EXPECT_EQ(&r1, &r2);
  EXPECT_THROW(static_cast<void>(sw->register_array("x", 8)),
               std::logic_error);
}

TEST_F(SwitchFixture, FindRegisterArray) {
  wire();
  EXPECT_EQ(sw->find_register_array("missing"), nullptr);
  sw->register_array("present", 2);
  EXPECT_NE(sw->find_register_array("present"), nullptr);
}

TEST_F(SwitchFixture, QueueDropsAggregateAcrossPorts) {
  wire();
  EXPECT_EQ(sw->queue_drops(), 0);
}

TEST_F(SwitchFixture, DeterministicServiceForSameSeed) {
  SwitchConfig cfg;
  cfg.seed = 99;
  sim::Simulator sim2;
  net::Topology topo2{sim2};
  auto& s1 = topo.add_node<P4Switch>("s1", cfg);
  auto& s2 = topo2.add_node<P4Switch>("s1", cfg);
  s1.add_port(net::LinkConfig{});
  s2.add_port(net::LinkConfig{});
  net::Packet p = packet_to(core::NodeId{0});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s1.egress_service_delay(p, s1.port(0)),
              s2.egress_service_delay(p, s2.port(0)));
  }
}

}  // namespace
}  // namespace intsched::p4
