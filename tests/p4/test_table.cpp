#include "intsched/p4/table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace intsched::p4 {
namespace {

TEST(ExactMatchTableTest, MissWithoutDefaultIsEmpty) {
  ExactMatchTable<int, int> t;
  EXPECT_FALSE(t.lookup(5).has_value());
  EXPECT_EQ(t.misses(), 1);
  EXPECT_EQ(t.hits(), 0);
}

TEST(ExactMatchTableTest, HitReturnsBoundValue) {
  ExactMatchTable<int, int> t;
  t.insert(5, 99);
  EXPECT_EQ(t.lookup(5), 99);
  EXPECT_EQ(t.hits(), 1);
}

TEST(ExactMatchTableTest, DefaultActionOnMiss) {
  ExactMatchTable<int, std::string> t;
  t.set_default("drop");
  EXPECT_EQ(t.lookup(1), "drop");
  EXPECT_EQ(t.misses(), 1);
}

TEST(ExactMatchTableTest, InsertOverwrites) {
  ExactMatchTable<int, int> t;
  t.insert(1, 10);
  t.insert(1, 20);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.lookup(1), 20);
}

TEST(ExactMatchTableTest, Erase) {
  ExactMatchTable<int, int> t;
  t.insert(1, 10);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.lookup(1).has_value());
}

TEST(ExactMatchTableTest, CountersAccumulate) {
  ExactMatchTable<int, int> t;
  t.insert(1, 10);
  static_cast<void>(t.lookup(1));
  static_cast<void>(t.lookup(1));
  static_cast<void>(t.lookup(2));
  EXPECT_EQ(t.hits(), 2);
  EXPECT_EQ(t.misses(), 1);
}

}  // namespace
}  // namespace intsched::p4
