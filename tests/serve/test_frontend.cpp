// serve::ServeFrontend: the wire-to-wire serving path must agree
// field-exactly (and byte-exactly on re-serve) with calling the
// underlying ShardedNetworkMap directly over a seeded metro topology —
// the PR-6 agreement-test style, now through the binary protocol — and
// the warm decision path must be allocation-free, enforced by a global
// operator-new counter (the runtime check behind the hotpath-alloc lint).
#include "intsched/serve/frontend.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/concurrent_map.hpp"
#include "intsched/core/sharded_map.hpp"
#include "intsched/exp/metro.hpp"
#include "intsched/net/topology_gen.hpp"
#include "intsched/serve/wire.hpp"

// -- global allocation counter ------------------------------------------
// Counts every operator-new in the test binary. Single-threaded tests
// only read the delta around a warm serve loop, so a plain counter is
// enough. Frees are deliberately not counted: the contract under test is
// "no allocation", not "balanced allocation".

namespace {
std::int64_t g_news = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t n) {
  ++g_news;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace intsched::serve {
namespace {

using core::NodeId;
using core::RankingMetric;
using core::ServerRank;

struct MetroFixture {
  net::GenTopology topo;
  exp::MetroTelemetryGen gen;
  std::vector<std::vector<telemetry::ProbeReport>> batches;

  explicit MetroFixture(std::int32_t pods, std::int32_t epochs,
                        std::uint64_t seed = 42)
      : topo{net::TopologyGen::ring_of_pods([&] {
          net::MetroConfig cfg;
          cfg.seed = seed;
          cfg.pods = pods;
          return cfg;
        }())},
        gen{topo, exp::MetroTelemetryConfig{.seed = seed}} {
    batches.push_back(gen.full_sweep());
    const auto refresh = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(topo.links.size()) / 4);
    for (std::int32_t e = 1; e < epochs; ++e) {
      batches.push_back(gen.refresh(refresh));
    }
  }

  [[nodiscard]] static sim::SimTime epoch_time(std::size_t e) {
    return sim::SimTime::seconds(static_cast<std::int64_t>(e) + 1);
  }
};

/// Drives one request through the full wire path and returns the decoded
/// response (asserting the frames were well-formed).
RankResponse serve_one(const ServeFrontend& frontend, ServeContext& ctx,
                       const RankRequest& req, sim::SimTime now,
                       std::vector<std::byte>* raw = nullptr) {
  std::array<std::byte, kMaxFrameSize> req_buf{};
  std::array<std::byte, kMaxFrameSize> resp_buf{};
  const std::size_t req_len =
      encode_rank_request(req, req_buf.data(), req_buf.size());
  EXPECT_GT(req_len, 0u);
  std::size_t resp_len = 0;
  EXPECT_TRUE(frontend.serve(ctx, req_buf.data(), req_len, resp_buf.data(),
                             resp_buf.size(), resp_len, now));
  RankResponse resp;
  EXPECT_EQ(decode_rank_response(resp_buf.data(), resp_len, resp),
            WireError::kOk);
  if (raw != nullptr) {
    raw->assign(resp_buf.data(), resp_buf.data() + resp_len);
  }
  return resp;
}

void expect_entry_matches_rank(const RankResponseEntry& e,
                               const ServerRank& r, const char* what) {
  EXPECT_EQ(e.server, r.server) << what;
  EXPECT_EQ(e.stale, r.stale) << what;
  EXPECT_EQ(e.delay_estimate, r.delay_estimate) << what;
  EXPECT_EQ(e.baseline_delay, r.baseline_delay) << what;
  EXPECT_EQ(e.bandwidth_estimate.bps(), r.bandwidth_estimate.bps()) << what;
}

TEST(ServeFrontendTest, AgreesWithDirectPickAndRankEveryEpoch) {
  MetroFixture m{3, 6};
  core::ShardedNetworkMap map{core::RegionAssignment::from_topology(m.topo)};
  ServeFrontend frontend{map};
  for (const NodeId s : m.topo.edge_servers()) frontend.register_server(s);
  EXPECT_EQ(frontend.registered(), m.topo.edge_servers());

  ServeContext ctx;
  std::uint64_t query = 0;
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    const sim::SimTime now = MetroFixture::epoch_time(e);
    map.ingest_batch(m.batches[e], now);
    for (const NodeId origin : m.topo.hosts()) {
      // Top-1 delay request (the pick path) vs direct map.pick.
      RankRequest req;
      req.query_id = ++query;
      req.origin = origin;
      req.metric = RankingMetric::kDelay;
      req.max_results = 1;
      const RankResponse got = serve_one(frontend, ctx, req, now);
      EXPECT_EQ(got.query_id, req.query_id);
      EXPECT_EQ(got.status, ServeStatus::kOk);
      EXPECT_EQ(got.epoch, map.view()->epoch());
      const auto want = map.pick(origin, m.topo.edge_servers(),
                                 RankingMetric::kDelay, now);
      ASSERT_TRUE(want.has_value());
      ASSERT_EQ(got.entry_count, 1);
      expect_entry_matches_rank(got.entries[0], *want, "pick path");

      // Top-k over both metrics (the rank path) vs direct map.rank.
      for (const auto metric :
           {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
        req.query_id = ++query;
        req.metric = metric;
        req.max_results = 5;
        const RankResponse ranked_resp = serve_one(frontend, ctx, req, now);
        EXPECT_EQ(ranked_resp.status, ServeStatus::kOk);
        const std::vector<ServerRank> want_ranked =
            map.rank(origin, m.topo.edge_servers(), metric, now);
        ASSERT_EQ(ranked_resp.entry_count,
                  std::min<std::size_t>(5, want_ranked.size()));
        for (std::size_t i = 0; i < ranked_resp.entry_count; ++i) {
          expect_entry_matches_rank(ranked_resp.entries[i], want_ranked[i],
                                    "rank path");
        }
      }
    }
  }
  EXPECT_EQ(ctx.malformed, 0);
  EXPECT_EQ(ctx.unknown_origin, 0);
  EXPECT_EQ(ctx.no_candidates, 0);
}

TEST(ServeFrontendTest, ReServeIsByteIdentical) {
  MetroFixture m{2, 3};
  core::ShardedNetworkMap map{core::RegionAssignment::from_topology(m.topo)};
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    map.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
  }
  ServeFrontend frontend{map};
  for (const NodeId s : m.topo.edge_servers()) frontend.register_server(s);

  const sim::SimTime now = MetroFixture::epoch_time(m.batches.size());
  ServeContext ctx_a;
  ServeContext ctx_b;
  std::uint64_t query = 0;
  for (const NodeId origin : m.topo.hosts()) {
    for (const std::uint8_t k : {std::uint8_t{1}, std::uint8_t{4}}) {
      RankRequest req;
      req.query_id = ++query;
      req.origin = origin;
      req.max_results = k;
      std::vector<std::byte> first;
      std::vector<std::byte> second;
      serve_one(frontend, ctx_a, req, now, &first);
      // A fresh context (cold scratch) must produce the same bytes.
      serve_one(frontend, ctx_b, req, now, &second);
      EXPECT_EQ(first, second) << "origin " << origin;
    }
  }
}

TEST(ServeFrontendTest, ExplicitCandidateSubsetMatchesDirectRank) {
  MetroFixture m{3, 4};
  core::ShardedNetworkMap map{core::RegionAssignment::from_topology(m.topo)};
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    map.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
  }
  ServeFrontend frontend{map};
  const std::vector<NodeId> servers = m.topo.edge_servers();
  for (const NodeId s : servers) frontend.register_server(s);

  const sim::SimTime now = MetroFixture::epoch_time(m.batches.size());
  ServeContext ctx;
  // Every other server, plus one bogus id the frontend must filter out.
  std::vector<NodeId> subset;
  for (std::size_t i = 0; i < servers.size(); i += 2) {
    subset.push_back(servers[i]);
  }
  RankRequest req;
  req.origin = m.topo.hosts()[3];
  req.max_results = static_cast<std::uint8_t>(
      std::min<std::size_t>(subset.size() + 1, kMaxResponseEntries));
  req.candidate_count = static_cast<std::uint16_t>(subset.size() + 1);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    req.candidates[i] = subset[i];
  }
  req.candidates[subset.size()] = NodeId{999999};  // never registered

  const RankResponse got = serve_one(frontend, ctx, req, now);
  EXPECT_EQ(got.status, ServeStatus::kOk);
  const std::vector<ServerRank> want =
      map.rank(req.origin, subset, RankingMetric::kDelay, now);
  ASSERT_EQ(got.entry_count,
            std::min<std::size_t>(req.max_results, want.size()));
  for (std::size_t i = 0; i < got.entry_count; ++i) {
    expect_entry_matches_rank(got.entries[i], want[i], "subset");
  }
}

TEST(ServeFrontendTest, StatusesAndMalformedInputs) {
  MetroFixture m{2, 2};
  core::ShardedNetworkMap map{core::RegionAssignment::from_topology(m.topo)};
  map.ingest_batch(m.batches[0], MetroFixture::epoch_time(0));
  ServeFrontend frontend{map};
  for (const NodeId s : m.topo.edge_servers()) frontend.register_server(s);
  const sim::SimTime now = MetroFixture::epoch_time(1);
  ServeContext ctx;

  // Invalid origin id -> kUnknownOrigin, still a well-formed response.
  RankRequest req;
  req.query_id = 1;
  req.origin = core::kInvalidNode;
  RankResponse resp = serve_one(frontend, ctx, req, now);
  EXPECT_EQ(resp.status, ServeStatus::kUnknownOrigin);
  EXPECT_EQ(resp.entry_count, 0);
  EXPECT_EQ(ctx.unknown_origin, 1);

  // Only unregistered candidates -> kNoCandidates.
  req.origin = m.topo.hosts()[0];
  req.candidate_count = 2;
  req.candidates[0] = NodeId{777777};
  req.candidates[1] = NodeId{888888};
  resp = serve_one(frontend, ctx, req, now);
  EXPECT_EQ(resp.status, ServeStatus::kNoCandidates);
  EXPECT_EQ(resp.entry_count, 0);
  EXPECT_EQ(ctx.no_candidates, 1);

  // Malformed request -> serve() returns false, counts it, writes no
  // response bytes.
  std::array<std::byte, kMaxFrameSize> garbage{};
  garbage.fill(std::byte{0xAB});
  std::array<std::byte, kMaxFrameSize> resp_buf{};
  std::size_t resp_len = 123;
  EXPECT_FALSE(frontend.serve(ctx, garbage.data(), 40, resp_buf.data(),
                              resp_buf.size(), resp_len, now));
  EXPECT_EQ(resp_len, 0u);
  EXPECT_EQ(ctx.malformed, 1);
  EXPECT_EQ(ctx.served, 2);

  // Registry introspection.
  core::RegionId region = core::kNoRegion;
  EXPECT_TRUE(frontend.is_registered(m.topo.edge_servers()[0], &region));
  EXPECT_NE(region, core::kNoRegion);
  EXPECT_FALSE(frontend.is_registered(NodeId{777777}));
}

TEST(ServeFrontendTest, WarmDecisionPathIsAllocationFree) {
  MetroFixture m{3, 3};
  core::ShardedNetworkMap map{core::RegionAssignment::from_topology(m.topo)};
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    map.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
  }
  ServeFrontend frontend{map};
  for (const NodeId s : m.topo.edge_servers()) frontend.register_server(s);

  const sim::SimTime now = MetroFixture::epoch_time(m.batches.size());
  const std::vector<NodeId> origins = m.topo.hosts();
  ServeContext ctx;
  std::array<std::byte, kMaxFrameSize> req_buf{};
  std::array<std::byte, kMaxFrameSize> resp_buf{};

  const auto serve_round = [&](std::uint64_t salt) {
    std::size_t good = 0;
    for (std::size_t i = 0; i < origins.size(); ++i) {
      RankRequest req;
      req.query_id = salt * 1000 + i;
      req.origin = origins[i];
      // Alternate the pick path (top-1 delay) and the rank path (top-4),
      // so both stay warm and both are measured.
      req.max_results = (i % 2 == 0) ? std::uint8_t{1} : std::uint8_t{4};
      const std::size_t req_len =
          encode_rank_request(req, req_buf.data(), req_buf.size());
      std::size_t resp_len = 0;
      if (frontend.serve(ctx, req_buf.data(), req_len, resp_buf.data(),
                         resp_buf.size(), resp_len, now) &&
          resp_len != 0) {
        ++good;
      }
    }
    return good;
  };

  // Warm-up: first touch of every origin fills the view's per-origin
  // query contexts and grows the scratch buffers to their steady size.
  ASSERT_EQ(serve_round(1), origins.size());
  serve_round(2);

  const std::int64_t before = g_news;
  std::size_t good = 0;
  for (std::uint64_t round = 0; round < 10; ++round) {
    good += serve_round(3 + round);
  }
  const std::int64_t after = g_news;
  EXPECT_EQ(good, origins.size() * 10);
  EXPECT_EQ(after - before, 0)
      << "warm serve path allocated " << (after - before) << " time(s)";
}

}  // namespace
}  // namespace intsched::serve
