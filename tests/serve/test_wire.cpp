// serve wire format: encode/decode round-trips must be byte-identical
// and field-exact for randomized valid messages, every malformed input —
// truncations at every prefix length, corrupted headers, inconsistent
// payload lengths, out-of-range enum/count fields, nonzero reserved
// bytes, raw garbage — must come back as a typed WireError with no UB
// (this suite rides the asan-ubsan preset), and encode must refuse
// undersized buffers and over-limit counts instead of writing past them.
#include "intsched/serve/wire.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/sim/rng.hpp"

namespace intsched::serve {
namespace {

using core::NodeId;
using core::RankingMetric;

RankRequest random_request(sim::Rng& rng) {
  RankRequest req;
  req.query_id = rng.next_u64();
  req.origin = NodeId{static_cast<std::int32_t>(rng.uniform_int(0, 1 << 20))};
  req.metric = rng.chance(0.5) ? RankingMetric::kDelay
                               : RankingMetric::kBandwidth;
  req.max_results = static_cast<std::uint8_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(kMaxResponseEntries)));
  req.candidate_count = static_cast<std::uint16_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(kMaxRequestCandidates)));
  for (std::size_t i = 0; i < req.candidate_count; ++i) {
    req.candidates[i] =
        NodeId{static_cast<std::int32_t>(rng.uniform_int(0, 1 << 20))};
  }
  return req;
}

RankResponse random_response(sim::Rng& rng) {
  RankResponse resp;
  resp.query_id = rng.next_u64();
  resp.epoch = core::Epoch{rng.uniform_int(0, 1 << 30)};
  resp.status = static_cast<ServeStatus>(rng.uniform_int(0, 2));
  resp.entry_count = static_cast<std::uint8_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kMaxResponseEntries)));
  for (std::size_t i = 0; i < resp.entry_count; ++i) {
    RankResponseEntry& e = resp.entries[i];
    e.server = NodeId{static_cast<std::int32_t>(rng.uniform_int(0, 4095))};
    e.stale = rng.chance(0.3);
    e.delay_estimate =
        rng.chance(0.1)
            ? sim::SimDuration::max()
            : sim::SimDuration::nanoseconds(rng.uniform_int(0, 1 << 30));
    e.baseline_delay =
        sim::SimDuration::nanoseconds(rng.uniform_int(0, 1 << 30));
    e.bandwidth_estimate =
        sim::DataRate::bits_per_second(rng.uniform_real(0.0, 1e10));
  }
  return resp;
}

void expect_requests_equal(const RankRequest& got, const RankRequest& want) {
  EXPECT_EQ(got.query_id, want.query_id);
  EXPECT_EQ(got.origin, want.origin);
  EXPECT_EQ(got.metric, want.metric);
  EXPECT_EQ(got.max_results, want.max_results);
  ASSERT_EQ(got.candidate_count, want.candidate_count);
  for (std::size_t i = 0; i < want.candidate_count; ++i) {
    EXPECT_EQ(got.candidates[i], want.candidates[i]) << "candidate " << i;
  }
}

void expect_responses_equal(const RankResponse& got,
                            const RankResponse& want) {
  EXPECT_EQ(got.query_id, want.query_id);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.status, want.status);
  ASSERT_EQ(got.entry_count, want.entry_count);
  for (std::size_t i = 0; i < want.entry_count; ++i) {
    EXPECT_EQ(got.entries[i].server, want.entries[i].server) << i;
    EXPECT_EQ(got.entries[i].stale, want.entries[i].stale) << i;
    EXPECT_EQ(got.entries[i].delay_estimate, want.entries[i].delay_estimate)
        << i;
    EXPECT_EQ(got.entries[i].baseline_delay, want.entries[i].baseline_delay)
        << i;
    // Bandwidth must round-trip by BIT PATTERN, not approximately.
    EXPECT_EQ(got.entries[i].bandwidth_estimate.bps(),
              want.entries[i].bandwidth_estimate.bps())
        << i;
  }
}

TEST(WireTest, RequestRoundTripsByteIdentical) {
  sim::Rng rng{7};
  std::array<std::byte, kMaxFrameSize> buf{};
  std::array<std::byte, kMaxFrameSize> buf2{};
  for (int trial = 0; trial < 500; ++trial) {
    const RankRequest req = random_request(rng);
    const std::size_t len = encode_rank_request(req, buf.data(), buf.size());
    ASSERT_EQ(len, encoded_request_size(req.candidate_count));

    RankRequest decoded;
    ASSERT_EQ(decode_rank_request(buf.data(), len, decoded), WireError::kOk);
    expect_requests_equal(decoded, req);

    // Re-encoding the decoded struct reproduces the exact bytes.
    const std::size_t len2 =
        encode_rank_request(decoded, buf2.data(), buf2.size());
    ASSERT_EQ(len2, len);
    EXPECT_EQ(std::memcmp(buf.data(), buf2.data(), len), 0);
  }
}

TEST(WireTest, ResponseRoundTripsByteIdentical) {
  sim::Rng rng{11};
  std::array<std::byte, kMaxFrameSize> buf{};
  std::array<std::byte, kMaxFrameSize> buf2{};
  for (int trial = 0; trial < 500; ++trial) {
    const RankResponse resp = random_response(rng);
    const std::size_t len =
        encode_rank_response(resp, buf.data(), buf.size());
    ASSERT_EQ(len, encoded_response_size(resp.entry_count));

    RankResponse decoded;
    ASSERT_EQ(decode_rank_response(buf.data(), len, decoded),
              WireError::kOk);
    expect_responses_equal(decoded, resp);

    const std::size_t len2 =
        encode_rank_response(decoded, buf2.data(), buf2.size());
    ASSERT_EQ(len2, len);
    EXPECT_EQ(std::memcmp(buf.data(), buf2.data(), len), 0);
  }
}

// Golden-byte tests: the frames below are written out literally,
// byte-for-byte, from the layout comment in wire.hpp. Round-trip tests
// alone would pass on a codec that used host byte order throughout; only
// comparing against explicitly constructed little-endian bytes proves
// the on-wire layout is what the spec says on EVERY host (the companion
// compile-time check is wire.hpp's wire_le_bytes static_assert).
TEST(WireTest, RequestMatchesExplicitLittleEndianBytes) {
  RankRequest req;
  req.query_id = 0x1122334455667788ULL;
  req.origin = NodeId{0x01020304};
  req.metric = RankingMetric::kBandwidth;  // wire value 1
  req.max_results = 2;
  req.candidate_count = 2;
  req.candidates[0] = NodeId{123};    // 0x0000007B
  req.candidates[1] = NodeId{0x200};  // 512

  const std::array<std::uint8_t, 32> want = {
      // header: magic 0x4E49 LE, version 1, type 1 (request), len 24 LE
      0x49, 0x4E, 0x01, 0x01, 0x18, 0x00, 0x00, 0x00,
      // query_id LE
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
      // origin LE, metric, max_results
      0x04, 0x03, 0x02, 0x01, 0x01, 0x02,
      // candidate_count LE
      0x02, 0x00,
      // candidates LE
      0x7B, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00};

  std::array<std::byte, kMaxFrameSize> buf{};
  const std::size_t len = encode_rank_request(req, buf.data(), buf.size());
  ASSERT_EQ(len, want.size());
  EXPECT_EQ(std::memcmp(buf.data(), want.data(), want.size()), 0);

  // And the same bytes, built by hand, decode to the same fields.
  RankRequest out;
  ASSERT_EQ(decode_rank_request(
                reinterpret_cast<const std::byte*>(want.data()), want.size(),
                out),
            WireError::kOk);
  expect_requests_equal(out, req);
}

TEST(WireTest, ResponseMatchesExplicitLittleEndianBytes) {
  RankResponse resp;
  resp.query_id = 0x00000000DEADBEEFULL;
  resp.epoch = core::Epoch{0x0102030405060708LL};
  resp.status = ServeStatus::kOk;
  resp.entry_count = 1;
  resp.entries[0].server = NodeId{7};
  resp.entries[0].stale = true;
  resp.entries[0].delay_estimate = sim::SimDuration::nanoseconds(1000);
  resp.entries[0].baseline_delay = sim::SimDuration::nanoseconds(500);
  // 1.5 bits/s = IEEE-754 double 0x3FF8000000000000, shipped by bit
  // pattern: the trailing bytes below are that pattern little-endian.
  resp.entries[0].bandwidth_estimate = sim::DataRate::bits_per_second(1.5);

  const std::array<std::uint8_t, 60> want = {
      // header: magic LE, version 1, type 2 (response), len 52 LE
      0x49, 0x4E, 0x01, 0x02, 0x34, 0x00, 0x00, 0x00,
      // query_id LE
      0xEF, 0xBE, 0xAD, 0xDE, 0x00, 0x00, 0x00, 0x00,
      // epoch LE
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      // status ok, entry_count 1, reserved u16
      0x00, 0x01, 0x00, 0x00,
      // entry: server LE, flags (stale bit), 3 reserved bytes
      0x07, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      // delay 1000ns LE
      0xE8, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // baseline 500ns LE
      0xF4, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // bandwidth: double 1.5 bit pattern LE
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F};

  std::array<std::byte, kMaxFrameSize> buf{};
  const std::size_t len = encode_rank_response(resp, buf.data(), buf.size());
  ASSERT_EQ(len, want.size());
  EXPECT_EQ(std::memcmp(buf.data(), want.data(), want.size()), 0);

  RankResponse out;
  ASSERT_EQ(decode_rank_response(
                reinterpret_cast<const std::byte*>(want.data()), want.size(),
                out),
            WireError::kOk);
  expect_responses_equal(out, resp);
}

TEST(WireTest, EncodeRefusesUndersizedBuffers) {
  sim::Rng rng{13};
  const RankRequest req = random_request(rng);
  const RankResponse resp = random_response(rng);
  std::array<std::byte, kMaxFrameSize> buf{};
  const std::size_t req_len = encoded_request_size(req.candidate_count);
  const std::size_t resp_len = encoded_response_size(resp.entry_count);
  for (std::size_t cap = 0; cap < req_len; ++cap) {
    EXPECT_EQ(encode_rank_request(req, buf.data(), cap), 0u) << cap;
  }
  for (std::size_t cap = 0; cap < resp_len; ++cap) {
    EXPECT_EQ(encode_rank_response(resp, buf.data(), cap), 0u) << cap;
  }
}

TEST(WireTest, EncodeRefusesOverLimitCounts) {
  std::array<std::byte, 4 * kMaxFrameSize> big{};
  RankRequest req;
  req.candidate_count = kMaxRequestCandidates + 1;
  EXPECT_EQ(encode_rank_request(req, big.data(), big.size()), 0u);
  RankResponse resp;
  resp.entry_count = kMaxResponseEntries + 1;
  EXPECT_EQ(encode_rank_response(resp, big.data(), big.size()), 0u);
  // max_results of 0 or beyond the response bound is not encodable.
  RankRequest bad_results;
  bad_results.max_results = 0;
  EXPECT_EQ(encode_rank_request(bad_results, big.data(), big.size()), 0u);
  bad_results.max_results =
      static_cast<std::uint8_t>(kMaxResponseEntries + 1);
  EXPECT_EQ(encode_rank_request(bad_results, big.data(), big.size()), 0u);
}

TEST(WireTest, TruncationAtEveryLengthIsTyped) {
  sim::Rng rng{17};
  std::array<std::byte, kMaxFrameSize> buf{};
  const RankRequest req = random_request(rng);
  const std::size_t len = encode_rank_request(req, buf.data(), buf.size());
  ASSERT_GT(len, 0u);
  RankRequest out;
  for (std::size_t cut = 0; cut < len; ++cut) {
    const WireError err = decode_rank_request(buf.data(), cut, out);
    EXPECT_TRUE(err == WireError::kTruncated || err == WireError::kBadLength)
        << "cut at " << cut << ": " << to_string(err);
  }
  // Trailing garbage is an exact-framing violation, not ignored.
  std::array<std::byte, kMaxFrameSize + 1> padded{};
  std::memcpy(padded.data(), buf.data(), len);
  EXPECT_EQ(decode_rank_request(padded.data(), len + 1, out),
            WireError::kBadLength);

  const RankResponse resp = random_response(rng);
  const std::size_t rlen =
      encode_rank_response(resp, buf.data(), buf.size());
  RankResponse rout;
  for (std::size_t cut = 0; cut < rlen; ++cut) {
    const WireError err = decode_rank_response(buf.data(), cut, rout);
    EXPECT_TRUE(err == WireError::kTruncated || err == WireError::kBadLength)
        << "cut at " << cut << ": " << to_string(err);
  }
}

TEST(WireTest, CorruptHeadersAreTyped) {
  std::array<std::byte, kMaxFrameSize> buf{};
  RankRequest req;
  req.origin = NodeId{3};
  const std::size_t len = encode_rank_request(req, buf.data(), buf.size());
  ASSERT_GT(len, 0u);
  RankRequest out;

  auto corrupted = buf;
  corrupted[0] = std::byte{0xFF};  // magic low byte
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadMagic);

  corrupted = buf;
  corrupted[2] = std::byte{9};  // version
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadVersion);

  corrupted = buf;
  corrupted[3] = std::byte{7};  // type neither request nor response
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadType);

  // A valid RESPONSE frame handed to the request decoder is kBadType.
  RankResponse resp;
  std::array<std::byte, kMaxFrameSize> rbuf{};
  const std::size_t rlen =
      encode_rank_response(resp, rbuf.data(), rbuf.size());
  EXPECT_EQ(decode_rank_request(rbuf.data(), rlen, out),
            WireError::kBadType);
  RankResponse rout;
  EXPECT_EQ(decode_rank_response(buf.data(), len, rout), WireError::kBadType);

  corrupted = buf;
  corrupted[4] = std::byte{0xEE};  // payload_len disagrees with the buffer
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadLength);
}

TEST(WireTest, OutOfRangeFieldsAreTyped) {
  std::array<std::byte, kMaxFrameSize> buf{};
  RankRequest req;
  req.origin = NodeId{3};
  req.max_results = 4;
  const std::size_t len = encode_rank_request(req, buf.data(), buf.size());
  RankRequest out;

  auto corrupted = buf;
  corrupted[kHeaderSize + 12] = std::byte{2};  // metric > kBandwidth
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadField);

  corrupted = buf;
  corrupted[kHeaderSize + 13] = std::byte{0};  // max_results = 0
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadField);
  corrupted[kHeaderSize + 13] =
      static_cast<std::byte>(kMaxResponseEntries + 1);
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadField);

  // candidate_count above the protocol limit: the range check fires
  // before the payload-length cross-check.
  corrupted = buf;
  corrupted[kHeaderSize + 14] = std::byte{200};
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadField);
  // In range but inconsistent with payload_len: typed as a length error.
  corrupted[kHeaderSize + 14] = std::byte{9};
  EXPECT_EQ(decode_rank_request(corrupted.data(), len, out),
            WireError::kBadLength);

  RankResponse resp;
  resp.entry_count = 1;
  resp.entries[0].server = NodeId{5};
  std::array<std::byte, kMaxFrameSize> rbuf{};
  const std::size_t rlen =
      encode_rank_response(resp, rbuf.data(), rbuf.size());
  RankResponse rout;

  auto rcorrupt = rbuf;
  rcorrupt[kHeaderSize + 16] = std::byte{3};  // status out of range
  EXPECT_EQ(decode_rank_response(rcorrupt.data(), rlen, rout),
            WireError::kBadField);

  rcorrupt = rbuf;
  rcorrupt[kHeaderSize + 18] = std::byte{1};  // reserved u16 must be zero
  EXPECT_EQ(decode_rank_response(rcorrupt.data(), rlen, rout),
            WireError::kBadField);

  rcorrupt = rbuf;
  rcorrupt[kHeaderSize + 20 + 4] = std::byte{2};  // entry flags > 1
  EXPECT_EQ(decode_rank_response(rcorrupt.data(), rlen, rout),
            WireError::kBadField);

  rcorrupt = rbuf;
  rcorrupt[kHeaderSize + 20 + 5] = std::byte{1};  // entry reserved bytes
  EXPECT_EQ(decode_rank_response(rcorrupt.data(), rlen, rout),
            WireError::kBadField);
}

TEST(WireTest, GarbageFuzzNeverMisbehaves) {
  // Random buffers of random sizes: decode must always return a typed
  // error (or, astronomically unlikely, kOk) without reading out of
  // bounds — ASan/UBSan turn any slip into a test failure. Heap buffers
  // sized exactly keep ASan's redzones tight against the last byte.
  sim::Rng rng{23};
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, 96));
    std::vector<std::byte> buf(len);
    for (std::byte& b : buf) {
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    }
    // Half the trials get a plausible header so decode reaches the
    // payload validation paths instead of dying on the magic check.
    if (len >= kHeaderSize && rng.chance(0.5)) {
      buf[0] = std::byte{0x49};
      buf[1] = std::byte{0x4E};
      buf[2] = std::byte{kWireVersion};
      buf[3] = static_cast<std::byte>(rng.uniform_int(1, 2));
      const auto payload = static_cast<std::uint32_t>(len - kHeaderSize);
      buf[4] = static_cast<std::byte>(payload & 0xFF);
      buf[5] = static_cast<std::byte>((payload >> 8) & 0xFF);
      buf[6] = static_cast<std::byte>((payload >> 16) & 0xFF);
      buf[7] = static_cast<std::byte>((payload >> 24) & 0xFF);
    }
    RankRequest req;
    RankResponse resp;
    const WireError a = decode_rank_request(buf.data(), buf.size(), req);
    const WireError b = decode_rank_response(buf.data(), buf.size(), resp);
    // The two decoders can never both accept one frame (type bytes
    // differ); beyond that, any typed result is fine.
    EXPECT_FALSE(a == WireError::kOk && b == WireError::kOk);
    if (a == WireError::kOk) {
      EXPECT_LE(req.candidate_count, kMaxRequestCandidates);
    }
    if (b == WireError::kOk) {
      EXPECT_LE(resp.entry_count, kMaxResponseEntries);
    }
  }
}

TEST(WireTest, ErrorStringsAreDistinct) {
  EXPECT_STRNE(to_string(WireError::kOk), to_string(WireError::kTruncated));
  EXPECT_STRNE(to_string(WireError::kBadMagic),
               to_string(WireError::kBadVersion));
  EXPECT_STRNE(to_string(WireError::kBadType),
               to_string(WireError::kBadLength));
  EXPECT_STRNE(to_string(WireError::kBadLength),
               to_string(WireError::kBadField));
}

}  // namespace
}  // namespace intsched::serve
