#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"
#include "intsched/transport/iperf.hpp"
#include "intsched/transport/ping.hpp"

namespace intsched::transport {
namespace {

struct AppsFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  std::unique_ptr<HostStack> stack_a;
  std::unique_ptr<HostStack> stack_b;

  void SetUp() override {
    a = &topo.add_node<net::Host>("a");
    b = &topo.add_node<net::Host>("b");
    p4::SwitchConfig cfg;
    cfg.proc_delay_mean = sim::SimDuration::microseconds(50);
    cfg.proc_jitter_frac = 0.0;
    cfg.stall_probability = 0.0;
    auto& sw = topo.add_node<p4::P4Switch>("sw", cfg);
    net::LinkConfig link;
    link.prop_delay = sim::SimDuration::milliseconds(10);
    topo.connect(*a, sw, link);
    topo.connect(*b, sw, link);
    topo.install_routes();
    sw.load_program(std::make_unique<p4::ForwardingProgram>());
    stack_a = std::make_unique<HostStack>(*a);
    stack_b = std::make_unique<HostStack>(*b);
  }
};

TEST_F(AppsFixture, CbrSendsAtConfiguredRate) {
  IperfUdpSender::Config cfg;
  cfg.rate = sim::DataRate::megabits_per_second(12.0);
  cfg.packet_size = 1500;  // 1 ms spacing
  IperfUdpSink sink{*stack_b};
  IperfUdpSender sender{*stack_a, b->id(), cfg};
  sender.start(sim::SimDuration::seconds(1));
  sim.run();
  // 1 packet per ms for 1 s (t=0 inclusive, stop at t=1s).
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()), 1000.0, 2.0);
  EXPECT_EQ(sink.packets_received(), sender.packets_sent());
}

TEST_F(AppsFixture, SinkGoodputMatchesRate) {
  IperfUdpSender::Config cfg;
  cfg.rate = sim::DataRate::megabits_per_second(10.0);
  IperfUdpSink sink{*stack_b};
  IperfUdpSender sender{*stack_a, b->id(), cfg};
  sender.start(sim::SimDuration::seconds(5));
  sim.run();
  EXPECT_NEAR(sink.goodput().mbps(), 10.0, 0.5);
}

TEST_F(AppsFixture, StopHaltsFlow) {
  IperfUdpSender::Config cfg;
  cfg.rate = sim::DataRate::megabits_per_second(10.0);
  IperfUdpSender sender{*stack_a, b->id(), cfg};
  sender.start();
  sim.run_until(sim::SimTime::milliseconds(100));
  sender.stop();
  const std::int64_t sent = sender.packets_sent();
  EXPECT_FALSE(sender.running());
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(sender.packets_sent(), sent);
}

TEST_F(AppsFixture, EmptySinkReportsZeroGoodput) {
  IperfUdpSink sink{*stack_b};
  EXPECT_DOUBLE_EQ(sink.goodput().bps(), 0.0);
  EXPECT_EQ(sink.packets_received(), 0);
}

TEST_F(AppsFixture, TcpBulkTransferReportsThroughput) {
  IperfTcpServer server{*stack_b};
  IperfTcpSender sender{*stack_a, b->id(), 2'000'000};
  sender.start();
  sim.run();
  EXPECT_TRUE(sender.complete());
  EXPECT_EQ(server.transfers_completed(), 1);
  EXPECT_GT(sender.throughput().mbps(), 10.0);
  EXPECT_GT(sender.elapsed(), sim::SimDuration::zero());
}

TEST_F(AppsFixture, PingMeasuresBaselineRtt) {
  PingResponder responder{*stack_b};
  PingApp ping{*stack_a, b->id()};
  ping.start();
  sim.run_until(sim::SimTime::milliseconds(10500));
  ping.stop();
  EXPECT_EQ(ping.sent(), 11);
  EXPECT_EQ(ping.received(), 11);
  EXPECT_EQ(responder.replies_sent(), 11);
  // 4 x 10 ms propagation + small service/serialization each way.
  EXPECT_NEAR(ping.rtt_ms().mean(), 40.3, 0.5);
}

TEST_F(AppsFixture, PingSamplesRecorded) {
  PingResponder responder{*stack_b};
  PingApp ping{*stack_a, b->id()};
  ping.start();
  sim.run_until(sim::SimTime::milliseconds(3500));
  EXPECT_EQ(ping.rtt_samples_ms().size(), 4u);
  for (const double rtt : ping.rtt_samples_ms()) {
    EXPECT_GT(rtt, 40.0);
    EXPECT_LT(rtt, 42.0);
  }
}

TEST_F(AppsFixture, PingRttInflatesUnderCongestion) {
  PingResponder responder{*stack_b};
  PingApp quiet{*stack_a, b->id()};
  quiet.start();
  sim.run_until(sim::SimTime::seconds(3));
  quiet.stop();
  const double baseline = quiet.rtt_ms().mean();

  // Saturate the a->b egress: service is 50 us + 120 us; a 1500 B CBR at
  // 100 Mbps offers a packet every 120 us.
  IperfUdpSink sink{*stack_b};
  IperfUdpSender::Config cfg;
  cfg.rate = sim::DataRate::megabits_per_second(90.0);
  IperfUdpSender flood{*stack_a, b->id(), cfg};
  flood.start(sim::SimDuration::seconds(5));
  PingApp loaded{*stack_a, b->id()};
  loaded.start();
  sim.run_until(sim::SimTime::seconds(8));
  EXPECT_GT(loaded.rtt_ms().mean(), baseline + 1.0);
}

}  // namespace
}  // namespace intsched::transport
