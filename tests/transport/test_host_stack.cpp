#include "intsched/transport/host_stack.hpp"

#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"

namespace intsched::transport {
namespace {

struct StackFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  std::unique_ptr<HostStack> stack_a;
  std::unique_ptr<HostStack> stack_b;

  void SetUp() override {
    a = &topo.add_node<net::Host>("a");
    b = &topo.add_node<net::Host>("b");
    topo.connect(*a, *b, net::LinkConfig{});
    topo.install_routes();
    stack_a = std::make_unique<HostStack>(*a);
    stack_b = std::make_unique<HostStack>(*b);
  }
};

TEST_F(StackFixture, UdpDemuxByPort) {
  int on_5000 = 0;
  int on_6000 = 0;
  stack_b->bind_udp(5000, [&](const net::Packet&) { ++on_5000; });
  stack_b->bind_udp(6000, [&](const net::Packet&) { ++on_6000; });
  stack_a->send_datagram(b->id(), 1, 5000, 100);
  stack_a->send_datagram(b->id(), 1, 5000, 100);
  stack_a->send_datagram(b->id(), 1, 6000, 100);
  sim.run();
  EXPECT_EQ(on_5000, 2);
  EXPECT_EQ(on_6000, 1);
  EXPECT_EQ(stack_b->datagrams_received(), 3);
}

TEST_F(StackFixture, UnboundPortCountsUnroutable) {
  stack_a->send_datagram(b->id(), 1, 7777, 100);
  sim.run();
  EXPECT_EQ(stack_b->unroutable_packets(), 1);
  EXPECT_EQ(stack_b->datagrams_received(), 0);
}

TEST_F(StackFixture, AppMessageRidesAlong) {
  struct Marker : net::AppMessage {
    int value = 0;
  };
  int seen = 0;
  stack_b->bind_udp(5000, [&](const net::Packet& p) {
    const auto* m = dynamic_cast<const Marker*>(p.app.get());
    ASSERT_NE(m, nullptr);
    seen = m->value;
  });
  auto msg = std::make_shared<Marker>();
  msg->value = 42;
  stack_a->send_datagram(b->id(), 1, 5000, 100, std::move(msg));
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST_F(StackFixture, EphemeralPortsAdvance) {
  const net::PortNumber p1 = stack_a->allocate_port();
  const net::PortNumber p2 = stack_a->allocate_port();
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 20000);
}

TEST_F(StackFixture, TcpWithoutListenerUnroutable) {
  net::Packet syn;
  syn.src = a->id();
  syn.dst = b->id();
  syn.protocol = net::IpProtocol::kTcp;
  syn.l4 = net::TcpHeader{.src_port = 1, .dst_port = 2,
                          .flags = net::TcpFlag::kSyn};
  syn.wire_size = net::kHeaderBytes;
  a->send(std::move(syn));
  sim.run();
  EXPECT_EQ(stack_b->unroutable_packets(), 1);
}

TEST_F(StackFixture, RebindReplacesHandler) {
  int first = 0;
  int second = 0;
  stack_b->bind_udp(5000, [&](const net::Packet&) { ++first; });
  stack_b->bind_udp(5000, [&](const net::Packet&) { ++second; });
  stack_a->send_datagram(b->id(), 1, 5000, 100);
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(StackFixture, DatagramSizeHelper) {
  EXPECT_EQ(HostStack::datagram_size(100), 100 + net::kHeaderBytes);
}

}  // namespace
}  // namespace intsched::transport
