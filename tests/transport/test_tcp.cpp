// Reliable-transport behaviour: handshake, delivery, loss recovery,
// congestion response. Loss is induced with tiny switch queues.
#include "intsched/transport/tcp.hpp"

#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"

namespace intsched::transport {
namespace {

struct TcpFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  p4::P4Switch* sw = nullptr;
  std::unique_ptr<HostStack> stack_a;
  std::unique_ptr<HostStack> stack_b;
  std::unique_ptr<TcpListener> listener;

  sim::Bytes received_bytes = 0;
  int transfers_done = 0;
  std::shared_ptr<const net::AppMessage> received_msg;

  void wire(std::int64_t switch_queue_capacity = 512) {
    a = &topo.add_node<net::Host>("a");
    b = &topo.add_node<net::Host>("b");
    p4::SwitchConfig cfg;
    cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
    cfg.proc_jitter_frac = 0.0;
    cfg.stall_probability = 0.0;
    sw = &topo.add_node<p4::P4Switch>("sw", cfg);
    net::LinkConfig link;
    link.prop_delay = sim::SimDuration::milliseconds(5);
    link.queue_capacity_pkts = switch_queue_capacity;
    topo.connect(*a, *sw, link);
    topo.connect(*b, *sw, link);
    topo.install_routes();
    sw->load_program(std::make_unique<p4::ForwardingProgram>());
    stack_a = std::make_unique<HostStack>(*a);
    stack_b = std::make_unique<HostStack>(*b);
    listener = std::make_unique<TcpListener>(
        *stack_b, net::kTaskPort,
        [this](core::NodeId, sim::Bytes bytes,
               std::shared_ptr<const net::AppMessage> msg) {
          received_bytes = bytes;
          received_msg = std::move(msg);
          ++transfers_done;
        });
  }
};

TEST_F(TcpFixture, SmallTransferDeliversExactBytes) {
  wire();
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 5000};
  sender.start();
  sim.run();
  EXPECT_EQ(transfers_done, 1);
  EXPECT_EQ(received_bytes, 5000);
  EXPECT_TRUE(sender.complete());
  EXPECT_EQ(sender.retransmissions(), 0);
  EXPECT_EQ(sender.timeouts(), 0);
}

TEST_F(TcpFixture, MultiSegmentTransfer) {
  wire();
  const sim::Bytes size = 1'000'000;
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, size};
  sender.start();
  sim.run();
  EXPECT_EQ(received_bytes, size);
  EXPECT_EQ(listener->accepted(), 1);
  EXPECT_EQ(listener->completed(), 1);
}

TEST_F(TcpFixture, MessageDeliveredWithTransfer) {
  wire();
  struct Tag : net::AppMessage {
    int id = 0;
  };
  auto tag = std::make_shared<Tag>();
  tag->id = 1234;
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 10'000, tag};
  sender.start();
  sim.run();
  const auto* got = dynamic_cast<const Tag*>(received_msg.get());
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, 1234);
}

TEST_F(TcpFixture, CompletionHandlerFires) {
  wire();
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 5000};
  bool done = false;
  sender.set_completion_handler([&](TcpSender& s) {
    done = true;
    EXPECT_TRUE(s.complete());
  });
  sender.start();
  sim.run();
  EXPECT_TRUE(done);
}

TEST_F(TcpFixture, TransferTimeBoundedByHandshakePlusSerialization) {
  wire();
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 5000};
  sender.start();
  sim.run();
  // >= 2 RTT-ish (handshake + data); one-way is ~10.2 ms.
  const sim::SimDuration elapsed =
      sender.completion_time() - sender.start_time();
  EXPECT_GT(elapsed, sim::SimDuration::milliseconds(40));
  EXPECT_LT(elapsed, sim::SimDuration::milliseconds(120));
}

TEST_F(TcpFixture, RecoversFromHeavyLoss) {
  wire(/*switch_queue_capacity=*/4);  // brutal: 4-packet queues
  const sim::Bytes size = 500'000;
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, size};
  sender.start();
  sim.run();
  EXPECT_EQ(received_bytes, size);
  EXPECT_TRUE(sender.complete());
  EXPECT_GT(sender.retransmissions() + sender.timeouts(), 0);
  EXPECT_GT(sw->queue_drops(), 0);
}

TEST_F(TcpFixture, SlowStartGrowsWindow) {
  wire();
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 2'000'000};
  const double initial = static_cast<double>(10 * net::kMss);
  sender.start();
  sim.run_until(sim::SimTime::seconds(2));
  EXPECT_GT(sender.cwnd_bytes(), initial);
}

TEST_F(TcpFixture, RttEstimateTracksPath) {
  wire();
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 500'000};
  sender.start();
  sim.run();
  // Path RTT ~20.5 ms (2x 5 ms prop each way + service); srtt should be
  // in a sane band even with queueing.
  EXPECT_GT(sender.smoothed_rtt(), sim::SimDuration::milliseconds(15));
  EXPECT_LT(sender.smoothed_rtt(), sim::SimDuration::milliseconds(120));
}

TEST_F(TcpFixture, ParallelTransfersBothComplete) {
  wire();
  TcpSender s1{*stack_a, b->id(), net::kTaskPort, 300'000};
  TcpSender s2{*stack_a, b->id(), net::kTaskPort, 300'000};
  s1.start();
  s2.start();
  sim.run();
  EXPECT_EQ(transfers_done, 2);
  EXPECT_TRUE(s1.complete());
  EXPECT_TRUE(s2.complete());
  EXPECT_EQ(listener->accepted(), 2);
}

TEST_F(TcpFixture, SenderDeletableFromCompletionHandler) {
  wire();
  auto* sender =
      new TcpSender{*stack_a, b->id(), net::kTaskPort, 5000};
  bool deleted = false;
  sender->set_completion_handler([&](TcpSender& s) {
    delete &s;
    deleted = true;
  });
  sender->start();
  sim.run();
  EXPECT_TRUE(deleted);
}

TEST_F(TcpFixture, ThroughputApproachesBottleneck) {
  wire();
  // Bottleneck: 100 us processing + ~120 us serialization per 1.5 KB.
  const sim::Bytes size = 5'000'000;
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, size};
  sender.start();
  sim.run();
  const double secs =
      (sender.completion_time() - sender.start_time()).to_seconds();
  const double mbps = static_cast<double>(size) * 8.0 / secs / 1e6;
  EXPECT_GT(mbps, 20.0);  // should get most of the ~52 Mbps service rate
}

}  // namespace
}  // namespace intsched::transport

// -- Additional edge cases --

namespace intsched::transport {
namespace {

TEST_F(TcpFixture, RtoBackoffOnTotalBlackout) {
  wire();
  // Remove the route to b at the switch so every data packet dies.
  sw->forwarding_table().erase(b->id());
  sw->set_route(b->id(), -1);
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 10'000};
  sender.start();
  sim.run_until(sim::SimTime::seconds(30));
  EXPECT_FALSE(sender.complete());
  // 1 s initial RTO doubling: retries at ~1, 3, 7, 15 s -> >= 4 timeouts.
  EXPECT_GE(sender.timeouts(), 4);
  EXPECT_LE(sender.timeouts(), 8);
}

TEST_F(TcpFixture, RecoversWhenRouteHealsMidTransfer) {
  wire();
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 200'000};
  sender.start();
  sim.run_until(sim::SimTime::milliseconds(50));
  // Blackhole for two seconds, then heal.
  const std::int32_t port = sw->route_to(b->id());
  sw->forwarding_table().erase(b->id());
  sim.run_until(sim::SimTime::seconds(2));
  sw->forwarding_table().insert(b->id(), port);
  sim.run();
  EXPECT_TRUE(sender.complete());
  EXPECT_EQ(received_bytes, 200'000);
  EXPECT_GE(sender.timeouts(), 1);
}

TEST_F(TcpFixture, ManySmallTransfersSequentially) {
  wire();
  for (int i = 0; i < 20; ++i) {
    TcpSender sender{*stack_a, b->id(), net::kTaskPort, 1'000};
    sender.start();
    sim.run();
    ASSERT_TRUE(sender.complete()) << i;
  }
  EXPECT_EQ(listener->completed(), 20);
}

TEST_F(TcpFixture, BidirectionalTransfersShareThePath) {
  wire();
  // Reverse-direction listener on a.
  sim::Bytes reverse_bytes = 0;
  TcpListener reverse{*stack_a, net::kTaskPort,
                      [&](core::NodeId, sim::Bytes bytes,
                          std::shared_ptr<const net::AppMessage>) {
                        reverse_bytes = bytes;
                      }};
  TcpSender fwd{*stack_a, b->id(), net::kTaskPort, 400'000};
  TcpSender rev{*stack_b, a->id(), net::kTaskPort, 400'000};
  fwd.start();
  rev.start();
  sim.run();
  EXPECT_TRUE(fwd.complete());
  EXPECT_TRUE(rev.complete());
  EXPECT_EQ(received_bytes, 400'000);
  EXPECT_EQ(reverse_bytes, 400'000);
}

TEST_F(TcpFixture, SsthreshDropsAfterLoss) {
  wire(/*switch_queue_capacity=*/6);
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 1'000'000};
  sender.start();
  sim.run();
  ASSERT_TRUE(sender.complete());
  // With an 6-packet bottleneck queue the window cannot stay at the
  // 256 KB cap; congestion control must have clamped it.
  EXPECT_LT(sender.cwnd_bytes(), 200'000.0);
}

TEST_F(TcpFixture, ZeroLossPathHasNoRetransmissions) {
  wire(1024);
  TcpSender sender{*stack_a, b->id(), net::kTaskPort, 3'000'000};
  sender.start();
  sim.run();
  EXPECT_TRUE(sender.complete());
  EXPECT_EQ(sender.retransmissions(), 0);
  EXPECT_EQ(sender.timeouts(), 0);
  EXPECT_EQ(sw->queue_drops(), 0);
}

}  // namespace
}  // namespace intsched::transport
