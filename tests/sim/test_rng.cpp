#include "intsched/sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace intsched::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DerivedStreamsAreIndependent) {
  Rng a = Rng::derive(42, "stream-a");
  Rng b = Rng::derive(42, "stream-b");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DerivedStreamIsStable) {
  Rng a = Rng::derive(42, "workload");
  Rng b = Rng::derive(42, "workload");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng{7};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -1);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -1);
  }
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RngTest, UniformRealBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(2.5, 3.5);
    ASSERT_GE(v, 2.5);
    ASSERT_LT(v, 3.5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng{7};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 2.0, 0.1);
}

TEST(RngTest, IndexCoversRange) {
  Rng rng{7};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[static_cast<std::size_t>(rng.index(4))];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // roughly uniform
    EXPECT_LT(c, 1200);
  }
}

}  // namespace
}  // namespace intsched::sim
