#include "intsched/sim/time.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace intsched::sim {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimDuration{}.ns(), 0);
  EXPECT_EQ(SimDuration{}, SimDuration::zero());
}

TEST(SimTimeTest, UnitConstructors) {
  EXPECT_EQ(SimTime::nanoseconds(7).ns(), 7);
  EXPECT_EQ(SimTime::microseconds(7).ns(), 7'000);
  EXPECT_EQ(SimTime::milliseconds(7).ns(), 7'000'000);
  EXPECT_EQ(SimTime::seconds(7).ns(), 7'000'000'000);
}

TEST(SimDurationTest, UnitConstructors) {
  EXPECT_EQ(SimDuration::nanos(7).ns(), 7);
  EXPECT_EQ(SimDuration::micros(7).ns(), 7'000);
  EXPECT_EQ(SimDuration::millis(7).ns(), 7'000'000);
  EXPECT_EQ(SimDuration::secs(7).ns(), 7'000'000'000);
  // Long-form spellings are the same factories.
  EXPECT_EQ(SimDuration::nanoseconds(7), SimDuration::nanos(7));
  EXPECT_EQ(SimDuration::microseconds(7), SimDuration::micros(7));
  EXPECT_EQ(SimDuration::milliseconds(7), SimDuration::millis(7));
  EXPECT_EQ(SimDuration::seconds(7), SimDuration::secs(7));
}

TEST(SimTimeTest, FromSecondsRoundsTowardZero) {
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_seconds(0.0).ns(), 0);
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimDuration::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimDuration::from_seconds(1e-9).ns(), 1);
}

TEST(SimTimeTest, Conversions) {
  const SimTime t = SimTime::milliseconds(1500);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_milliseconds(), 1500.0);
  EXPECT_DOUBLE_EQ(t.to_microseconds(), 1'500'000.0);
  const SimDuration d = SimDuration::millis(1500);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_milliseconds(), 1500.0);
  EXPECT_DOUBLE_EQ(d.to_microseconds(), 1'500'000.0);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_LE(SimTime::seconds(2), SimTime::seconds(2));
  EXPECT_GT(SimTime::seconds(3), SimTime::seconds(2));
  EXPECT_EQ(SimTime::milliseconds(1000), SimTime::seconds(1));
  EXPECT_NE(SimTime::milliseconds(1001), SimTime::seconds(1));
  EXPECT_LT(SimDuration::secs(1), SimDuration::secs(2));
  EXPECT_EQ(SimDuration::millis(1000), SimDuration::secs(1));
}

TEST(SimTimeTest, InstantDurationAlgebra) {
  const SimTime a = SimTime::seconds(2);
  const SimDuration b = SimDuration::millis(500);
  EXPECT_EQ((a + b).ns(), 2'500'000'000);
  EXPECT_EQ((b + a).ns(), 2'500'000'000);
  EXPECT_EQ((a - b).ns(), 1'500'000'000);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::milliseconds(2500));
  c -= b;
  EXPECT_EQ(c, a);
  // instant - instant is a duration.
  EXPECT_EQ(c - a, SimDuration::zero());
  EXPECT_EQ(SimTime::at(b), SimTime::milliseconds(500));
  EXPECT_EQ(SimTime::milliseconds(500).since_epoch(), b);
}

TEST(SimDurationTest, AdditionSubtraction) {
  const SimDuration a = SimDuration::secs(2);
  const SimDuration b = SimDuration::millis(500);
  EXPECT_EQ((a + b).ns(), 2'500'000'000);
  EXPECT_EQ((a - b).ns(), 1'500'000'000);
  SimDuration c = a;
  c += b;
  EXPECT_EQ(c, SimDuration::millis(2500));
  c -= a;
  EXPECT_EQ(c, b);
  EXPECT_EQ((-b).ns(), -500'000'000);
}

TEST(SimTimeTest, DifferencesMayBeNegative) {
  const SimDuration d = SimTime::seconds(1) - SimTime::seconds(3);
  EXPECT_EQ(d.ns(), -2'000'000'000);
  EXPECT_LT(d, SimDuration::zero());
}

TEST(SimDurationTest, ScalarMultiplyDivide) {
  EXPECT_EQ(SimDuration::secs(2) * 3, SimDuration::secs(6));
  EXPECT_EQ(3 * SimDuration::secs(2), SimDuration::secs(6));
  EXPECT_EQ(SimDuration::secs(6) / 3, SimDuration::secs(2));
}

TEST(SimDurationTest, DurationRatio) {
  EXPECT_DOUBLE_EQ(SimDuration::secs(3) / SimDuration::secs(2), 1.5);
}

TEST(SimTimeTest, MaxIsHuge) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1'000'000'000));
  EXPECT_GT(SimDuration::max(), SimDuration::secs(1'000'000'000));
  EXPECT_LT(SimTime::min(), SimTime::zero());
}

// The algebra is closed: operations that only make sense on durations do
// not exist on instants, and the two types do not implicitly convert.
static_assert(!std::is_convertible_v<SimTime, SimDuration>);
static_assert(!std::is_convertible_v<SimDuration, SimTime>);
static_assert(!std::is_convertible_v<std::int64_t, SimTime>);
static_assert(!std::is_convertible_v<std::int64_t, SimDuration>);

TEST(SimTimeToStringTest, PicksUnits) {
  EXPECT_EQ(to_string(SimTime::seconds(3)), "3s");
  EXPECT_EQ(to_string(SimTime::milliseconds(1500)), "1.500s");
  EXPECT_EQ(to_string(SimTime::milliseconds(12)), "12.000ms");
  EXPECT_EQ(to_string(SimTime::microseconds(7)), "7.000us");
  EXPECT_EQ(to_string(SimTime::nanoseconds(42)), "42ns");
  EXPECT_EQ(to_string(SimTime::zero()), "0s");
  EXPECT_EQ(to_string(SimDuration::millis(12)), "12.000ms");
  EXPECT_EQ(to_string(SimDuration::zero()), "0s");
}

}  // namespace
}  // namespace intsched::sim
