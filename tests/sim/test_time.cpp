#include "intsched/sim/time.hpp"

#include <gtest/gtest.h>

namespace intsched::sim {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime{}, SimTime::zero());
}

TEST(SimTimeTest, UnitConstructors) {
  EXPECT_EQ(SimTime::nanoseconds(7).ns(), 7);
  EXPECT_EQ(SimTime::microseconds(7).ns(), 7'000);
  EXPECT_EQ(SimTime::milliseconds(7).ns(), 7'000'000);
  EXPECT_EQ(SimTime::seconds(7).ns(), 7'000'000'000);
}

TEST(SimTimeTest, FromSecondsRoundsTowardZero) {
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_seconds(0.0).ns(), 0);
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
}

TEST(SimTimeTest, Conversions) {
  const SimTime t = SimTime::milliseconds(1500);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.to_milliseconds(), 1500.0);
  EXPECT_DOUBLE_EQ(t.to_microseconds(), 1'500'000.0);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::seconds(1), SimTime::seconds(2));
  EXPECT_LE(SimTime::seconds(2), SimTime::seconds(2));
  EXPECT_GT(SimTime::seconds(3), SimTime::seconds(2));
  EXPECT_EQ(SimTime::milliseconds(1000), SimTime::seconds(1));
  EXPECT_NE(SimTime::milliseconds(1001), SimTime::seconds(1));
}

TEST(SimTimeTest, AdditionSubtraction) {
  const SimTime a = SimTime::seconds(2);
  const SimTime b = SimTime::milliseconds(500);
  EXPECT_EQ((a + b).ns(), 2'500'000'000);
  EXPECT_EQ((a - b).ns(), 1'500'000'000);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::milliseconds(2500));
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(SimTimeTest, DifferencesMayBeNegative) {
  const SimTime d = SimTime::seconds(1) - SimTime::seconds(3);
  EXPECT_EQ(d.ns(), -2'000'000'000);
  EXPECT_LT(d, SimTime::zero());
}

TEST(SimTimeTest, ScalarMultiplyDivide) {
  EXPECT_EQ(SimTime::seconds(2) * 3, SimTime::seconds(6));
  EXPECT_EQ(3 * SimTime::seconds(2), SimTime::seconds(6));
  EXPECT_EQ(SimTime::seconds(6) / 3, SimTime::seconds(2));
}

TEST(SimTimeTest, DurationRatio) {
  EXPECT_DOUBLE_EQ(SimTime::seconds(3) / SimTime::seconds(2), 1.5);
}

TEST(SimTimeTest, MaxIsHuge) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1'000'000'000));
}

TEST(SimTimeToStringTest, PicksUnits) {
  EXPECT_EQ(to_string(SimTime::seconds(3)), "3s");
  EXPECT_EQ(to_string(SimTime::milliseconds(1500)), "1.500s");
  EXPECT_EQ(to_string(SimTime::milliseconds(12)), "12.000ms");
  EXPECT_EQ(to_string(SimTime::microseconds(7)), "7.000us");
  EXPECT_EQ(to_string(SimTime::nanoseconds(42)), "42ns");
  EXPECT_EQ(to_string(SimTime::zero()), "0s");
}

}  // namespace
}  // namespace intsched::sim
