// The audit layer's own tests. The file compiles in every preset; the
// death-test half only exists under INTSCHED_AUDIT (the `audit` preset),
// and the non-audit half proves the checks compile to nothing.
#include "intsched/sim/audit.hpp"

#include <gtest/gtest.h>

#include "intsched/sim/event_queue.hpp"
#include "intsched/sim/simulator.hpp"

namespace sim = intsched::sim;

#if INTSCHED_AUDIT_ENABLED

TEST(AuditMode, ChecksAreLiveDuringSimulation) {
  const std::int64_t before = sim::audit::checks_executed();
  sim::Simulator s;
  s.schedule_after(sim::SimDuration::millis(1), [] {});
  s.schedule_after(sim::SimTime::milliseconds(2), [] {});
  s.run();
  EXPECT_GT(sim::audit::checks_executed(), before)
      << "audit build must evaluate invariant checks on the event path";
}

TEST(AuditModeDeathTest, EmptyPopTripsInvariant) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::EventQueue q;
        (void)q.pop();
      },
      "intsched-audit");
}

TEST(AuditModeDeathTest, ViolationReportNamesTheCheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::EventQueue q;
        (void)q.next_time();
      },
      "pending event");
}

#else  // !INTSCHED_AUDIT_ENABLED

TEST(AuditMode, DisabledBuildEvaluatesNothing) {
  sim::Simulator s;
  s.schedule_after(sim::SimDuration::millis(1), [] {});
  s.run();
  EXPECT_EQ(sim::audit::checks_executed(), 0)
      << "non-audit builds must not pay for invariant checks";
}

TEST(AuditMode, AssertMacroDoesNotEvaluateCondition) {
  // The macro must compile its argument away entirely: a condition with a
  // side effect is never executed in non-audit builds.
  int evaluations = 0;
  INTSCHED_AUDIT_ASSERT(++evaluations > 0, "never evaluated when disabled");
  EXPECT_EQ(evaluations, 0);
}

#endif
