#include "intsched/sim/units.hpp"

#include <gtest/gtest.h>

namespace intsched::sim {
namespace {

TEST(DataRateTest, UnitConstructors) {
  EXPECT_DOUBLE_EQ(DataRate::bits_per_second(1e6).bps(), 1e6);
  EXPECT_DOUBLE_EQ(DataRate::kilobits_per_second(1000.0).bps(), 1e6);
  EXPECT_DOUBLE_EQ(DataRate::megabits_per_second(1.0).bps(), 1e6);
  EXPECT_DOUBLE_EQ(DataRate::megabits_per_second(20.0).mbps(), 20.0);
}

TEST(DataRateTest, TransmissionTime) {
  // 1500 B at 12 Mbps = 1 ms.
  const DataRate rate = DataRate::megabits_per_second(12.0);
  EXPECT_EQ(rate.transmission_time(1500), SimDuration::millis(1));
}

TEST(DataRateTest, TransmissionTimeScalesLinearly) {
  const DataRate rate = DataRate::megabits_per_second(8.0);
  const SimDuration one = rate.transmission_time(1000);
  const SimDuration two = rate.transmission_time(2000);
  EXPECT_EQ(two.ns(), 2 * one.ns());
}

TEST(DataRateTest, BytesInWindow) {
  const DataRate rate = DataRate::megabits_per_second(8.0);  // 1 MB/s
  EXPECT_EQ(rate.bytes_in(SimDuration::secs(1)), 1'000'000);
  EXPECT_EQ(rate.bytes_in(SimDuration::millis(1)), 1'000);
}

TEST(DataRateTest, RoundTripTransmissionBytes) {
  const DataRate rate = DataRate::megabits_per_second(20.0);
  const Bytes size = 123'456;
  const SimDuration t = rate.transmission_time(size);
  EXPECT_NEAR(static_cast<double>(rate.bytes_in(t)),
              static_cast<double>(size), 2.0);
}

TEST(DataRateTest, Comparisons) {
  EXPECT_LT(DataRate::megabits_per_second(1.0),
            DataRate::megabits_per_second(2.0));
  EXPECT_EQ(DataRate::megabits_per_second(1.0),
            DataRate::kilobits_per_second(1000.0));
}

TEST(DataRateTest, Scaling) {
  const DataRate r = DataRate::megabits_per_second(10.0) * 0.5;
  EXPECT_DOUBLE_EQ(r.mbps(), 5.0);
  EXPECT_DOUBLE_EQ(0.5 * DataRate::megabits_per_second(10.0) /
                       DataRate::megabits_per_second(5.0),
                   1.0);
}

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024);
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(kKB, 1000);
  EXPECT_EQ(kMB, 1'000'000);
}

}  // namespace
}  // namespace intsched::sim
