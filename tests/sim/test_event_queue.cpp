#include "intsched/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace intsched::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.push(SimTime::milliseconds(250), [] {});
  const auto [at, cb] = q.pop();
  EXPECT_EQ(at, SimTime::milliseconds(250));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(2), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

// -- generation-handle edge cases: a handle must only ever affect the exact
// event it was issued for, across firing, cancellation, and slot reuse. --

TEST(EventQueueTest, CancelAfterFireIsNoOpWhenSlotIsReused) {
  EventQueue q;
  const EventId old_id = q.push(SimTime::seconds(1), [] {});
  q.pop().second();  // fires; slot goes back on the free list

  // The replacement event recycles the same slab slot (gen bumped).
  bool fired = false;
  q.push(SimTime::seconds(2), [&] { fired = true; });
  EXPECT_FALSE(q.cancel(old_id));  // stale handle: strict no-op
  EXPECT_EQ(q.size(), 1u);         // the new event must survive
  q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, HandleReuseAcrossGenerationsNeverCancelsWrongEvent) {
  EventQueue q;
  // Cycle one slot through many generations, keeping every stale handle.
  std::vector<EventId> stale;
  for (int gen = 0; gen < 64; ++gen) {
    const EventId id = q.push(SimTime::seconds(1), [] {});
    EXPECT_TRUE(q.cancel(id));
    stale.push_back(id);
  }
  // The live event takes yet another generation of the same slot.
  bool fired = false;
  const EventId live = q.push(SimTime::seconds(1), [&] { fired = true; });
  for (const EventId id : stale) {
    EXPECT_FALSE(q.cancel(id)) << "stale handle cancelled a later event";
  }
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(q.cancel(live));  // and the live handle died with the fire
}

TEST(EventQueueTest, CancellationUnderFullTombstoneSlab) {
  EventQueue q;
  // Fill the slab, then tombstone every slot: the heap now holds nothing
  // but dead entries while the free list holds the whole slab.
  constexpr int kSlab = 128;
  std::vector<EventId> ids;
  for (int i = 0; i < kSlab; ++i) {
    ids.push_back(q.push(SimTime::milliseconds(i + 1), [] {}));
  }
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  for (const EventId id : ids) EXPECT_FALSE(q.cancel(id));  // double cancel

  // Refill through the recycled slots at *earlier* times than the
  // tombstones: pops must yield only the new events, in time order.
  std::vector<int> order;
  for (int i = 0; i < kSlab; ++i) {
    q.push(SimTime::microseconds(kSlab - i), [&order, i] {
      order.push_back(i);
    });
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kSlab));
  // Every pre-tombstone handle is still inert against the reused slots.
  for (const EventId id : ids) EXPECT_FALSE(q.cancel(id));
  SimTime last = SimTime::zero();
  while (!q.empty()) {
    const auto [at, cb] = q.pop();
    EXPECT_GE(at, last);
    last = at;
    cb();
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kSlab));
  // Later pushes had earlier times: expect exact reverse submission order.
  for (int i = 0; i < kSlab; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], kSlab - 1 - i);
  }
}

TEST(EventQueueTest, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.push(SimTime::milliseconds(100 - i), [] {}));
  }
  // Cancel every other event.
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  SimTime last = SimTime::zero();
  int popped = 0;
  while (!q.empty()) {
    const auto [at, cb] = q.pop();
    EXPECT_GE(at, last);
    last = at;
    ++popped;
  }
  EXPECT_EQ(popped, 50);
}

}  // namespace
}  // namespace intsched::sim
