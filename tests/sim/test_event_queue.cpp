#include "intsched/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace intsched::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::seconds(3), [&] { order.push_back(3); });
  q.push(SimTime::seconds(1), [&] { order.push_back(1); });
  q.push(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.push(SimTime::milliseconds(250), [] {});
  const auto [at, cb] = q.pop();
  EXPECT_EQ(at, SimTime::milliseconds(250));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(2), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{9999}));
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(SimTime::seconds(1), [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(SimTime::seconds(1), [] {});
  q.push(SimTime::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.push(SimTime::milliseconds(100 - i), [] {}));
  }
  // Cancel every other event.
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  SimTime last = SimTime::zero();
  int popped = 0;
  while (!q.empty()) {
    const auto [at, cb] = q.pop();
    EXPECT_GE(at, last);
    last = at;
    ++popped;
  }
  EXPECT_EQ(popped, 50);
}

}  // namespace
}  // namespace intsched::sim
