#include "intsched/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace intsched::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(SimulatorTest, ScheduleAtAdvancesClock) {
  Simulator sim;
  SimTime fired_at = SimTime::zero();
  sim.schedule_at(SimTime::seconds(5), [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, SimTime::seconds(5));
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.schedule_at(SimTime::seconds(2), [&] {
    sim.schedule_after(SimDuration::seconds(3),
                       [&] { fires.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], SimTime::seconds(5));
}

TEST(SimulatorTest, ScheduleInPastThrows) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::seconds(1), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(SimDuration::nanoseconds(-1), [] {}),
               std::invalid_argument);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(10), [&] { ++fired; });
  const std::int64_t executed = sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, EventExactlyAtDeadlineFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(SimTime::seconds(5), [&] { fired = true; });
  sim.run_until(SimTime::seconds(5));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, BackToBackRunUntilMonotonic) {
  Simulator sim;
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(sim.now(), SimTime::seconds(3));
  sim.run_until(SimTime::seconds(7));
  EXPECT_EQ(sim.now(), SimTime::seconds(7));
}

TEST(SimulatorTest, RunDrainsWithoutClockJumpToMax) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(2), [] {});
  sim.run();
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(SimTime::seconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(SimTime::seconds(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5);
}

TEST(SimulatorPeriodicTest, FiresAtFixedIntervals) {
  Simulator sim;
  std::vector<SimTime> fires;
  auto handle = sim.schedule_periodic(SimDuration::zero(), SimDuration::seconds(2),
                                      [&] { fires.push_back(sim.now()); });
  sim.run_until(SimTime::seconds(7));
  handle.cancel();
  ASSERT_EQ(fires.size(), 4u);  // t = 0, 2, 4, 6
  EXPECT_EQ(fires[0], SimTime::zero());
  EXPECT_EQ(fires[3], SimTime::seconds(6));
}

TEST(SimulatorPeriodicTest, InitialDelayShiftsPhase) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.schedule_periodic(SimDuration::seconds(1), SimDuration::seconds(2),
                        [&] { fires.push_back(sim.now()); });
  sim.run_until(SimTime::seconds(6));
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], SimTime::seconds(1));
  EXPECT_EQ(fires[1], SimTime::seconds(3));
  EXPECT_EQ(fires[2], SimTime::seconds(5));
}

TEST(SimulatorPeriodicTest, CancelStopsFiring) {
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule_periodic(SimDuration::zero(), SimDuration::seconds(1),
                                      [&] { ++fires; });
  sim.run_until(SimTime::milliseconds(2500));
  handle.cancel();
  EXPECT_FALSE(handle.active());
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(fires, 3);  // t = 0, 1, 2
}

TEST(SimulatorPeriodicTest, CancelFromWithinCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicHandle handle;
  handle = sim.schedule_periodic(SimDuration::zero(), SimDuration::seconds(1), [&] {
    if (++fires == 2) handle.cancel();
  });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(fires, 2);
}

TEST(SimulatorPeriodicTest, ZeroPeriodThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_periodic(SimDuration::zero(), SimDuration::zero(), [] {}),
               std::invalid_argument);
}

TEST(SimulatorPeriodicTest, DefaultHandleInactive) {
  PeriodicHandle handle;
  EXPECT_FALSE(handle.active());
  handle.cancel();  // must be safe
}

}  // namespace
}  // namespace intsched::sim
