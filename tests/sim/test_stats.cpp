#include "intsched/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace intsched::sim {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i * i % 17);
    all.add(x);
    (i < 25 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(EcdfTest, EmptyBehaviour) {
  Ecdf e;
  EXPECT_EQ(e.count(), 0);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(1.0), 0.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_least(1.0), 0.0);
  EXPECT_THROW(static_cast<void>(e.quantile(0.5)), std::logic_error);
}

TEST(EcdfTest, Fractions) {
  Ecdf e;
  e.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_least(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.fraction_at_least(4.1), 0.0);
}

TEST(EcdfTest, Quantiles) {
  Ecdf e;
  for (int i = 1; i <= 100; ++i) e.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.95), 95.0);
}

TEST(EcdfTest, DuplicatesCount) {
  Ecdf e;
  e.add_all({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(e.fraction_at_most(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 2.0);
}

TEST(EcdfTest, SortedView) {
  Ecdf e;
  e.add_all({3.0, 1.0, 2.0});
  const auto& sorted = e.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_EQ(h.bins(), 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(100.0);  // clamps into bin 4
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_EQ(h.total(), 4);
}

TEST(HistogramTest, BinEdges) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(4), 10.0);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(6.0, 5.0, 3), std::invalid_argument);
}

TEST(HistogramTest, BoundaryFallsInUpperBin) {
  Histogram h{0.0, 10.0, 5};
  h.add(2.0);  // exactly on the 0/1 boundary -> bin 1
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(0), 0);
}

}  // namespace
}  // namespace intsched::sim
