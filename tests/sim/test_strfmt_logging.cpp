#include <gtest/gtest.h>

#include <sstream>

#include "intsched/sim/logging.hpp"
#include "intsched/sim/strfmt.hpp"

namespace intsched::sim {
namespace {

TEST(StrFmtTest, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(cat("solo"), "solo");
}

TEST(StrFmtTest, FixedControlsPrecision) {
  EXPECT_EQ(cat(fixed(3.14159, 2)), "3.14");
  EXPECT_EQ(cat(fixed(3.14159, 0)), "3");
  EXPECT_EQ(cat(fixed(-1.005, 1)), "-1.0");
  EXPECT_EQ(cat(fixed(2.0)), "2.000");  // default precision 3
}

TEST(StrFmtTest, FixedDoesNotLeakStreamState) {
  std::ostringstream os;
  os << fixed(1.23456, 2) << " " << 1.23456;
  EXPECT_EQ(os.str(), "1.23 1.23456");
}

TEST(LoggingTest, LevelGate) {
  const LogLevel old = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_EQ(Log::level(), LogLevel::kError);
  // kInfo below threshold: write() must be a no-op (no crash, no output
  // check possible on stderr; the gate itself is the contract).
  Log::log(LogLevel::kInfo, SimTime::zero(), "test", "suppressed");
  Log::set_level(old);
}

TEST(LoggingTest, OffSilencesEverything) {
  const LogLevel old = Log::level();
  Log::set_level(LogLevel::kOff);
  Log::log(LogLevel::kError, SimTime::zero(), "test", "suppressed");
  Log::set_level(old);
}

}  // namespace
}  // namespace intsched::sim
