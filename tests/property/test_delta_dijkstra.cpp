// Delta-Dijkstra equivalence property (ISSUE satellite): a persistent
// Ranker whose path cache absorbs epoch changes incrementally must stay
// field-exactly equal to a freshly constructed Ranker (full recompute)
// after arbitrary randomized link-update sequences — metro telemetry
// refreshes with congestion churn, and the fault-injection link-flap
// driver on the Fig. 4 network. The delta counters must show the
// incremental path actually ran (a test that silently full-rebuilds every
// epoch proves nothing).
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/core/scheduler_service.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/exp/metro.hpp"
#include "intsched/net/fault.hpp"
#include "intsched/net/topology_gen.hpp"
#include "intsched/telemetry/probe_agent.hpp"

namespace intsched::core {
namespace {

void expect_ranks_identical(const std::vector<ServerRank>& got,
                            const std::vector<ServerRank>& want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].server, want[i].server) << what << " rank " << i;
    EXPECT_EQ(got[i].delay_estimate, want[i].delay_estimate)
        << what << " rank " << i;
    EXPECT_EQ(got[i].bandwidth_estimate.bps(),
              want[i].bandwidth_estimate.bps())
        << what << " rank " << i;
    EXPECT_EQ(got[i].baseline_delay, want[i].baseline_delay)
        << what << " rank " << i;
    EXPECT_EQ(got[i].stale, want[i].stale) << what << " rank " << i;
  }
}

/// Persistent-vs-fresh comparison over every (origin, metric) pair.
void compare_all(const Ranker& persistent, const NetworkMap& map,
                 const std::vector<core::NodeId>& origins,
                 const std::vector<core::NodeId>& candidates,
                 sim::SimTime now, const char* what) {
  const Ranker fresh{map, persistent.config()};
  for (const core::NodeId origin : origins) {
    for (const auto metric :
         {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
      expect_ranks_identical(
          persistent.rank(origin, candidates, metric, now),
          fresh.rank(origin, candidates, metric, now), what);
    }
  }
}

struct MetroCase {
  exp::MetroTelemetryConfig telemetry{};
  std::int32_t rounds = 10;
};

/// Shared driver: full sweep, then `rounds` randomized refresh batches;
/// after every batch the persistent ranker must match a full recompute.
void run_metro_case(const MetroCase& mc) {
  net::MetroConfig cfg;
  cfg.pods = 3;
  const net::GenTopology topo = net::TopologyGen::ring_of_pods(cfg);
  ASSERT_TRUE(topo.validate().empty());
  exp::MetroTelemetryGen gen{topo, mc.telemetry};

  NetworkMap map;
  const Ranker persistent{map};
  const std::vector<core::NodeId> origins = topo.hosts();
  const std::vector<core::NodeId> candidates = topo.edge_servers();

  auto now = sim::SimTime::seconds(1);
  for (const auto& r : gen.full_sweep()) map.ingest(r, now);
  compare_all(persistent, map, origins, candidates, now, "after sweep");

  const auto refresh_count = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(topo.links.size()) / 6);
  for (std::int32_t e = 0; e < mc.rounds; ++e) {
    now = sim::SimTime::seconds(2 + e);
    for (const auto& r : gen.refresh(refresh_count)) map.ingest(r, now);
    compare_all(persistent, map, origins, candidates, now, "after refresh");
  }

  // The incremental path must have carried real weight: epoch changes
  // absorbed by diffing, with origins' memos surviving.
  EXPECT_GT(persistent.delta_refreshes(), 0);
  EXPECT_GT(persistent.origins_kept(), 0);
}

TEST(DeltaDijkstraProperty, MetroRefreshRoundsMatchFullRecompute) {
  // Zero delay wobble: refresh samples replay the converged EWMA values,
  // so the delay graph holds still while the queue/congestion telemetry
  // churns — the regime where every origin's Dijkstra memo must survive
  // the epoch bumps (and the rankings must still track the fresh queue
  // data, which is never cached).
  MetroCase mc;
  mc.telemetry.delay_wobble_frac = 0.0;
  run_metro_case(mc);
}

TEST(DeltaDijkstraProperty, HeavyChurnStillMatchesFullRecompute) {
  // Aggressive wobble + certain churn: every refreshed link's delay
  // estimate moves, so the invalidation rule must actually drop origins —
  // and the results must still match a full recompute exactly.
  MetroCase mc;
  mc.telemetry.seed = 1234;
  mc.telemetry.delay_wobble_frac = 0.25;
  mc.telemetry.churn_chance = 1.0;
  mc.rounds = 8;

  net::MetroConfig cfg;
  cfg.pods = 3;
  const net::GenTopology topo = net::TopologyGen::ring_of_pods(cfg);
  exp::MetroTelemetryGen gen{topo, mc.telemetry};

  NetworkMap map;
  const Ranker persistent{map};
  const std::vector<core::NodeId> origins = topo.hosts();
  const std::vector<core::NodeId> candidates = topo.edge_servers();

  auto now = sim::SimTime::seconds(1);
  for (const auto& r : gen.full_sweep()) map.ingest(r, now);
  compare_all(persistent, map, origins, candidates, now, "after sweep");
  for (std::int32_t e = 0; e < mc.rounds; ++e) {
    now = sim::SimTime::seconds(2 + e);
    // One refreshed link per round: few enough changed edges for the
    // delta path (not the full-rebuild bailout), but its heavy wobble
    // moves measured estimates, so the invalidation rule must fire.
    for (const auto& r : gen.refresh(1)) map.ingest(r, now);
    compare_all(persistent, map, origins, candidates, now, "after churn");
  }
  EXPECT_GT(persistent.delta_refreshes(), 0);
  EXPECT_GT(persistent.origins_dropped(), 0);
}

net::IntStackEntry entry(core::NodeId device, std::int32_t in_port,
                         std::int32_t out_port,
                         sim::SimDuration ingress_latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.ingress_link_latency = ingress_latency;
  return e;
}

telemetry::ProbeReport report(core::NodeId src, core::NodeId dst,
                              std::vector<net::IntStackEntry> entries,
                              sim::SimDuration final_latency) {
  telemetry::ProbeReport r;
  r.src = src;
  r.dst = dst;
  r.entries = std::move(entries);
  r.final_link_latency = final_latency;
  return r;
}

// Surgical check of the invalidation rule on a diamond: hosts H0..H2
// behind switches A(10), B(11), C(12); fabric A-B = A-C = 5 ms and
// B-C = 8 ms. When B-C's estimate moves to 12 ms, origins H1/H2 (whose
// shortest-path trees contain B-C as a tree edge) must be dropped, while
// H0 — which routes B and C via A and for which the pricier B-C can
// neither be a tree edge nor an improvement — must keep its memo. Both
// outcomes must leave the persistent ranker equal to a full recompute.
TEST(DeltaDijkstraProperty, PartialInvalidationKeepsUnaffectedOrigins) {
  const auto ms = [](int v) { return sim::SimDuration::milliseconds(v); };
  const auto at_ms = [](int v) {
    return sim::SimTime::at(sim::SimDuration::milliseconds(v));
  };
  const auto unmeasured = sim::SimDuration::nanoseconds(-1);
  NetworkMap map;
  const auto learn_all = [&](sim::SimTime now, sim::SimDuration bc) {
    // Ports: on each switch, 0 faces its host; 1/2 face the other two
    // switches in id order.
    map.ingest(report(core::NodeId{0}, core::NodeId{1}, {entry(core::NodeId{10}, 0, 1, unmeasured),
                             entry(core::NodeId{11}, 1, 0, ms(5))}, ms(2)), now);
    map.ingest(report(core::NodeId{1}, core::NodeId{0}, {entry(core::NodeId{11}, 0, 1, unmeasured),
                             entry(core::NodeId{10}, 1, 0, ms(5))}, ms(2)), now);
    map.ingest(report(core::NodeId{0}, core::NodeId{2}, {entry(core::NodeId{10}, 0, 2, unmeasured),
                             entry(core::NodeId{12}, 1, 0, ms(5))}, ms(2)), now);
    map.ingest(report(core::NodeId{2}, core::NodeId{0}, {entry(core::NodeId{12}, 0, 1, unmeasured),
                             entry(core::NodeId{10}, 2, 0, ms(5))}, ms(2)), now);
    map.ingest(report(core::NodeId{1}, core::NodeId{2}, {entry(core::NodeId{11}, 0, 2, unmeasured),
                             entry(core::NodeId{12}, 2, 0, bc)}, ms(2)), now);
    map.ingest(report(core::NodeId{2}, core::NodeId{1}, {entry(core::NodeId{12}, 0, 2, unmeasured),
                             entry(core::NodeId{11}, 2, 0, bc)}, ms(2)), now);
  };
  learn_all(at_ms(0), ms(8));

  const Ranker persistent{map};
  const std::vector<core::NodeId> origins{core::NodeId{0}, core::NodeId{1}, core::NodeId{2}};
  const std::vector<core::NodeId> candidates{core::NodeId{0}, core::NodeId{1}, core::NodeId{2}};
  compare_all(persistent, map, origins, candidates, at_ms(1), "warmup");
  EXPECT_EQ(persistent.full_rebuilds(), 1);

  // B-C jumps to 24 ms; the EWMA (alpha 0.25) lands on 12 ms. Every
  // other sample replays its converged estimate, so the changed edge set
  // is exactly {B->C, C->B}.
  learn_all(at_ms(10), ms(24));
  compare_all(persistent, map, origins, candidates, at_ms(11), "after bump");

  EXPECT_EQ(persistent.delta_refreshes(), 1);
  EXPECT_EQ(persistent.full_rebuilds(), 1);
  EXPECT_EQ(persistent.origins_kept(), 1);    // H0
  EXPECT_EQ(persistent.origins_dropped(), 2)  // H1, H2
      << "tree-edge change must invalidate exactly the affected origins";
}

// The fault-injection link-flap driver (tests/fault): probes traverse the
// Fig. 4 network while armed link flaps cut and restore links mid-run.
// The scheduler's long-lived Ranker sees the resulting delay-graph churn
// through its delta path and must never diverge from a full recompute.
TEST(DeltaDijkstraProperty, Fig4LinkFlapsMatchFullRecompute) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  for (net::Host* h : network.hosts()) {
    stacks.push_back(std::make_unique<transport::HostStack>(*h));
  }
  SchedulerService service{*stacks[5], RankerConfig{}, NetworkMapConfig{}};
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id()));
    agents.back()->start();
  }

  net::FaultPlanConfig fault_cfg;
  fault_cfg.seed = 42;
  fault_cfg.link_flaps.push_back(net::LinkFlapSpec{
      core::NodeId{0}, core::NodeId{8}, sim::SimTime::seconds(2), sim::SimTime::seconds(5)});
  fault_cfg.link_flaps.push_back(net::LinkFlapSpec{
      core::NodeId{4}, core::NodeId{10}, sim::SimTime::seconds(3), sim::SimTime::seconds(7)});
  net::FaultPlan plan{fault_cfg};
  plan.arm(network.topology());

  const std::vector<core::NodeId> origins{core::NodeId{0}, core::NodeId{2}, core::NodeId{4}, core::NodeId{6}};
  std::vector<core::NodeId> candidates;
  for (const core::NodeId id : network.host_ids()) {
    if (id != network.scheduler_host().id()) candidates.push_back(id);
  }

  for (int second = 1; second <= 9; ++second) {
    sim.run_until(sim::SimTime::seconds(second));
    compare_all(service.ranker(), service.network_map(), origins,
                candidates, sim.now(), "flap step");
  }
  // The cache absorbed at least one epoch change by some path.
  EXPECT_GT(service.ranker().delta_refreshes() +
                service.ranker().full_rebuilds(),
            0);
}

}  // namespace
}  // namespace intsched::core
