// Property-based suites: invariants checked across parameter sweeps and
// randomized instances (seeded, reproducible).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "intsched/core/ranking.hpp"
#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"
#include "intsched/sim/rng.hpp"
#include "intsched/sim/strfmt.hpp"
#include "intsched/sim/stats.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/host_stack.hpp"
#include "intsched/transport/tcp.hpp"

namespace intsched {
namespace {

// ---------------------------------------------------------------------
// Property: TCP delivers exactly the requested bytes, regardless of how
// hostile the bottleneck queue is.
struct TcpParam {
  std::int64_t queue_capacity;
  sim::Bytes transfer_size;
};

class TcpConservation : public ::testing::TestWithParam<TcpParam> {};

TEST_P(TcpConservation, AllBytesDeliveredOnce) {
  const TcpParam param = GetParam();
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& a = topo.add_node<net::Host>("a");
  auto& b = topo.add_node<net::Host>("b");
  p4::SwitchConfig sw_cfg;
  sw_cfg.proc_delay_mean = sim::SimDuration::microseconds(200);
  sw_cfg.stall_probability = 0.0;
  auto& sw = topo.add_node<p4::P4Switch>("sw", sw_cfg);
  net::LinkConfig link;
  link.prop_delay = sim::SimDuration::milliseconds(5);
  link.queue_capacity_pkts = param.queue_capacity;
  topo.connect(a, sw, link);
  topo.connect(b, sw, link);
  topo.install_routes();
  sw.load_program(std::make_unique<p4::ForwardingProgram>());

  transport::HostStack stack_a{a};
  transport::HostStack stack_b{b};
  sim::Bytes delivered = -1;
  transport::TcpListener listener{
      stack_b, net::kTaskPort,
      [&](core::NodeId, sim::Bytes bytes,
          std::shared_ptr<const net::AppMessage>) { delivered = bytes; }};
  transport::TcpSender sender{stack_a, b.id(), net::kTaskPort,
                              param.transfer_size};
  sender.start();
  sim.run_until(sim::SimTime::seconds(600));
  EXPECT_EQ(delivered, param.transfer_size);
  EXPECT_TRUE(sender.complete());
}

INSTANTIATE_TEST_SUITE_P(
    QueueAndSizeSweep, TcpConservation,
    ::testing::Values(TcpParam{2, 100'000}, TcpParam{4, 250'000},
                      TcpParam{8, 500'000}, TcpParam{16, 500'000},
                      TcpParam{64, 1'000'000}, TcpParam{512, 2'000'000},
                      TcpParam{3, 1'000}, TcpParam{512, 1}));

// ---------------------------------------------------------------------
// Property: Algorithm 1's estimate equals the brute-force formula on
// randomized telemetry, and ranking order is consistent with it.
class RankerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankerProperty, EstimateMatchesBruteForce) {
  sim::Rng rng{GetParam()};
  // Random line topology: host 0 - s100 - s101 - ... - host 1.
  const std::int64_t hops = rng.uniform_int(1, 6);
  core::NetworkMap map;
  telemetry::ProbeReport report;
  report.src = core::NodeId{0};
  report.dst = core::NodeId{1};
  std::vector<std::int64_t> queues;
  std::vector<sim::SimDuration> delays;
  for (std::int64_t h = 0; h < hops; ++h) {
    net::IntStackEntry e;
    e.device = core::NodeId{static_cast<std::int32_t>(100 + h)};
    e.ingress_port = 0;
    e.egress_port = 1;
    e.max_queue_pkts = rng.uniform_int(0, 60);
    e.device_max_queue_pkts = e.max_queue_pkts;
    e.ingress_link_latency =
        sim::SimDuration::microseconds(rng.uniform_int(5'000, 20'000));
    report.entries.push_back(e);
    queues.push_back(e.max_queue_pkts);
    delays.push_back(e.ingress_link_latency);
  }
  report.final_link_latency =
      sim::SimDuration::microseconds(rng.uniform_int(5'000, 20'000));
  map.ingest(report, sim::SimTime::zero());

  core::RankerConfig cfg;
  cfg.k_factor = sim::SimDuration::milliseconds(rng.uniform_int(1, 40));
  core::Ranker ranker{map, cfg};

  std::vector<core::NodeId> path{core::NodeId{0}};
  for (std::int64_t h = 0; h < hops; ++h) {
    path.push_back(core::NodeId{static_cast<std::int32_t>(100 + h)});
  }
  path.push_back(core::NodeId{1});

  sim::SimDuration expected = report.final_link_latency;
  for (std::int64_t h = 0; h < hops; ++h) {
    expected += delays[static_cast<std::size_t>(h)];
    expected += cfg.k_factor * queues[static_cast<std::size_t>(h)];
  }
  EXPECT_EQ(ranker.path_delay_estimate(path, sim::SimTime::zero()),
            expected);
}

TEST_P(RankerProperty, RankingOrderConsistentWithEstimates) {
  sim::Rng rng{GetParam() ^ 0xABCD};
  core::NetworkMap map;
  // Star: collector host 1 at the hub switch 100; candidates 10..14 each
  // behind their own leaf switch.
  for (core::NodeId c = core::NodeId{10}; c < core::NodeId{15}; ++c) {
    telemetry::ProbeReport r;
    r.src = c;
    r.dst = core::NodeId{1};
    net::IntStackEntry leaf;
    leaf.device = core::NodeId{100 + c.value()};
    leaf.ingress_port = 0;
    leaf.egress_port = 1;
    leaf.max_queue_pkts = rng.uniform_int(0, 80);
    leaf.device_max_queue_pkts = leaf.max_queue_pkts;
    leaf.ingress_link_latency =
        sim::SimDuration::microseconds(rng.uniform_int(2'000, 30'000));
    net::IntStackEntry hub;
    hub.device = core::NodeId{100};
    hub.ingress_port = c.value();
    hub.egress_port = 0;
    hub.max_queue_pkts = rng.uniform_int(0, 10);
    hub.device_max_queue_pkts = hub.max_queue_pkts;
    hub.ingress_link_latency =
        sim::SimDuration::microseconds(rng.uniform_int(2'000, 30'000));
    r.entries = {leaf, hub};
    r.final_link_latency = sim::SimDuration::milliseconds(5);
    map.ingest(r, sim::SimTime::zero());
  }
  core::Ranker ranker{map};
  const std::vector<core::NodeId> candidates{core::NodeId{10}, core::NodeId{11}, core::NodeId{12}, core::NodeId{13}, core::NodeId{14}};
  const auto by_delay =
      ranker.rank(core::NodeId{1}, candidates, core::RankingMetric::kDelay,
                  sim::SimTime::zero());
  ASSERT_EQ(by_delay.size(), candidates.size());
  for (std::size_t i = 1; i < by_delay.size(); ++i) {
    EXPECT_LE(by_delay[i - 1].delay_estimate, by_delay[i].delay_estimate);
  }
  const auto by_bw =
      ranker.rank(core::NodeId{1}, candidates, core::RankingMetric::kBandwidth,
                  sim::SimTime::zero());
  for (std::size_t i = 1; i < by_bw.size(); ++i) {
    EXPECT_GE(by_bw[i - 1].bandwidth_estimate.bps(),
              by_bw[i].bandwidth_estimate.bps());
  }
}

TEST_P(RankerProperty, RankingInvariantToCandidateOrder) {
  sim::Rng rng{GetParam() ^ 0x1234};
  core::NetworkMap map;
  telemetry::ProbeReport r;
  r.src = core::NodeId{10};
  r.dst = core::NodeId{1};
  net::IntStackEntry e;
  e.device = core::NodeId{100};
  e.ingress_port = 0;
  e.egress_port = 1;
  e.max_queue_pkts = rng.uniform_int(0, 50);
  e.device_max_queue_pkts = e.max_queue_pkts;
  e.ingress_link_latency = sim::SimDuration::milliseconds(10);
  r.entries = {e};
  r.final_link_latency = sim::SimDuration::milliseconds(10);
  map.ingest(r, sim::SimTime::zero());

  core::Ranker ranker{map};
  std::vector<core::NodeId> candidates{core::NodeId{10}, core::NodeId{1}, core::NodeId{99}, core::NodeId{100}};
  const auto sorted_once = ranker.rank(
      core::NodeId{10}, candidates, core::RankingMetric::kDelay, sim::SimTime::zero());
  std::reverse(candidates.begin(), candidates.end());
  const auto sorted_again = ranker.rank(
      core::NodeId{10}, candidates, core::RankingMetric::kDelay, sim::SimTime::zero());
  ASSERT_EQ(sorted_once.size(), sorted_again.size());
  for (std::size_t i = 0; i < sorted_once.size(); ++i) {
    EXPECT_EQ(sorted_once[i].server, sorted_again[i].server);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankerProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------
// Property: topology inference from probes reconstructs random trees.
class InferenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InferenceProperty, RandomTreeRecovered) {
  sim::Rng rng{GetParam()};
  sim::Simulator sim;
  net::Topology topo{sim};

  // Random switch tree of 3-8 switches; one host per switch; the
  // collector host hangs off switch 0.
  const std::int64_t n_switches = rng.uniform_int(3, 8);
  std::vector<p4::P4Switch*> switches;
  std::vector<net::Host*> hosts;
  for (std::int64_t i = 0; i < n_switches; ++i) {
    hosts.push_back(&topo.add_node<net::Host>(sim::cat("h", i)));
  }
  p4::SwitchConfig sw_cfg;
  sw_cfg.stall_probability = 0.0;
  for (std::int64_t i = 0; i < n_switches; ++i) {
    switches.push_back(
        &topo.add_node<p4::P4Switch>(sim::cat("s", i), sw_cfg));
  }
  net::LinkConfig link;
  for (std::int64_t i = 0; i < n_switches; ++i) {
    topo.connect(*hosts[static_cast<std::size_t>(i)],
                 *switches[static_cast<std::size_t>(i)], link);
    if (i > 0) {
      const auto parent = rng.uniform_int(0, i - 1);
      topo.connect(*switches[static_cast<std::size_t>(i)],
                   *switches[static_cast<std::size_t>(parent)], link);
    }
  }
  topo.install_routes();
  for (p4::P4Switch* sw : switches) {
    sw->load_program(std::make_unique<telemetry::IntTelemetryProgram>());
  }

  net::Host* collector_host = hosts[0];
  transport::HostStack stack{*collector_host};
  telemetry::IntCollector collector{*collector_host};
  core::NetworkMap map;
  stack.bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });
  collector.set_handler([&](const telemetry::ProbeReport& r) {
    map.ingest(r, sim.now());
  });

  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *hosts[i], collector_host->id()));
    agents.back()->start();
  }
  sim.run_until(sim::SimTime::seconds(2));

  // Every directed link on every host->collector path must be known with
  // the correct egress port, and its delay within the service envelope.
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const auto path = topo.path(hosts[i]->id(), collector_host->id());
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      const core::NodeId from = path[j];
      const core::NodeId to = path[j + 1];
      EXPECT_TRUE(map.knows_node(from));
      const sim::SimDuration d = map.link_delay(from, to);
      EXPECT_GE(d, sim::SimDuration::milliseconds(9)) << from << "->" << to;
      EXPECT_LE(d, sim::SimDuration::milliseconds(12)) << from << "->" << to;
      if (j > 0) {  // switch egress ports are learnable
        const std::int32_t port = map.egress_port(from, to);
        EXPECT_EQ(port, topo.node(from).route_to(to)) << from << "->" << to;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Property: drop-tail queue never exceeds capacity and conserves packets.
class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperty, ConservationAndBounds) {
  sim::Rng rng{GetParam()};
  const std::int64_t capacity = rng.uniform_int(1, 32);
  net::DropTailQueue q{capacity};
  std::int64_t max_seen = 0;
  q.set_occupancy_observer([&](std::int64_t d) {
    max_seen = std::max(max_seen, d);
  });
  std::int64_t dequeued = 0;
  for (int op = 0; op < 2000; ++op) {
    if (rng.chance(0.6)) {
      net::Packet p;
      p.wire_size = rng.uniform_int(64, 1500);
      q.enqueue(std::move(p));
    } else if (q.dequeue().has_value()) {
      ++dequeued;
    }
    ASSERT_LE(q.size_pkts(), capacity);
    ASSERT_GE(q.size_bytes(), 0);
  }
  EXPECT_EQ(q.enqueued() - q.dequeued(), q.size_pkts());
  EXPECT_EQ(q.dequeued(), dequeued);
  EXPECT_LE(max_seen, capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------
// Property: dijkstra agrees with Floyd-Warshall on random graphs.
class ShortestPathProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ShortestPathProperty, MatchesFloydWarshall) {
  sim::Rng rng{GetParam()};
  const std::int64_t n = rng.uniform_int(3, 10);
  net::Graph g;
  std::map<std::pair<core::NodeId, core::NodeId>, std::int64_t> w;
  for (core::NodeId i = core::NodeId{0}; i.value() < n; ++i) {
    for (core::NodeId j = core::NodeId{0}; j.value() < n; ++j) {
      if (i == j) continue;
      if (rng.chance(0.4)) {
        const std::int64_t cost = rng.uniform_int(1, 50);
        g.add_edge(i, j, 0, sim::SimDuration::milliseconds(cost));
        w[{i, j}] = cost;
      }
    }
  }
  // Floyd-Warshall baseline.
  constexpr std::int64_t kInf = 1'000'000;
  std::vector<std::vector<std::int64_t>> dist(
      static_cast<std::size_t>(n),
      std::vector<std::int64_t>(static_cast<std::size_t>(n), kInf));
  for (core::NodeId i = core::NodeId{0}; i.value() < n; ++i) {
    dist[i.index()][i.index()] = 0;
  }
  for (const auto& [key, cost] : w) {
    dist[key.first.index()][key.second.index()] =
        std::min(dist[key.first.index()][key.second.index()], cost);
  }
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const auto ik = dist[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(k)];
        const auto kj = dist[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(j)];
        auto& ij = dist[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(j)];
        if (ik + kj < ij) ij = ik + kj;
      }
    }
  }
  for (core::NodeId src = core::NodeId{0}; src.value() < n; ++src) {
    const net::ShortestPaths sp = net::dijkstra(g, src);
    for (core::NodeId dst = core::NodeId{0}; dst.value() < n; ++dst) {
      const auto expected = dist[src.index()][dst.index()];
      if (expected >= kInf) {
        EXPECT_FALSE(sp.distance.contains(dst));
      } else {
        ASSERT_TRUE(sp.distance.contains(dst)) << src << "->" << dst;
        EXPECT_EQ(sp.distance.at(dst),
                  sim::SimDuration::milliseconds(expected));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------
// Property: ECDF axioms hold for arbitrary sample sets.
class EcdfProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfProperty, AxiomsHold) {
  sim::Rng rng{GetParam()};
  sim::Ecdf e;
  const std::int64_t count = rng.uniform_int(1, 500);
  for (std::int64_t i = 0; i < count; ++i) {
    e.add(rng.uniform_real(-100.0, 100.0));
  }
  double prev = 0.0;
  for (double x = -110.0; x <= 110.0; x += 7.3) {
    const double f = e.fraction_at_most(x);
    EXPECT_GE(f, prev);  // monotone nondecreasing
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_NEAR(f + e.fraction_at_least(x), 1.0 + 0.0,
                1.0)  // complements overlap only at atoms
        << x;
    prev = f;
  }
  EXPECT_DOUBLE_EQ(e.fraction_at_most(101.0), 1.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_most(-101.0), 0.0);
  EXPECT_GE(e.quantile(1.0), e.quantile(0.5));
  EXPECT_GE(e.quantile(0.5), e.quantile(0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace intsched

// ---------------------------------------------------------------------
// Property: every policy x workload combination completes all tasks with
// well-ordered timestamps and valid server assignments.
#include "intsched/exp/experiment.hpp"

namespace intsched {
namespace {

struct SuiteParam {
  core::PolicyKind policy;
  edge::WorkloadKind workload;
};

class ExperimentMatrix : public ::testing::TestWithParam<SuiteParam> {};

TEST_P(ExperimentMatrix, CompletesWithOrderedTimelines) {
  const SuiteParam param = GetParam();
  exp::ExperimentConfig cfg;
  cfg.seed = 31;
  cfg.policy = param.policy;
  cfg.workload.kind = param.workload;
  cfg.workload.total_tasks = 12;
  cfg.workload.job_interval = sim::SimDuration::seconds(3);
  cfg.background.mode = exp::BackgroundMode::kRandomPairs;
  const exp::ExperimentResult result = exp::run_experiment(cfg);

  EXPECT_EQ(result.tasks_completed, result.tasks_total);
  for (const edge::TaskRecord* r : result.metrics.records()) {
    ASSERT_TRUE(r->is_complete());
    // Valid assignment: a host other than the submitting device.
    EXPECT_GE(r->server, core::NodeId{0});
    EXPECT_LT(r->server, core::NodeId{8});
    EXPECT_NE(r->server, r->device);
    // Ordered timeline.
    EXPECT_GE(r->scheduled, r->submitted);
    EXPECT_GE(r->transfer_start, r->scheduled);
    EXPECT_GT(r->transfer_end, r->transfer_start);
    EXPECT_GE(r->exec_end, r->transfer_end + r->exec_time);
    EXPECT_GT(r->completed, r->exec_end);
    // Transfer cannot beat the speed of light through 3+ switches.
    EXPECT_GT(r->transfer_time(), sim::SimDuration::milliseconds(30));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ExperimentMatrix,
    ::testing::Values(
        SuiteParam{core::PolicyKind::kIntDelay,
                   edge::WorkloadKind::kServerless},
        SuiteParam{core::PolicyKind::kIntDelay,
                   edge::WorkloadKind::kDistributed},
        SuiteParam{core::PolicyKind::kIntBandwidth,
                   edge::WorkloadKind::kServerless},
        SuiteParam{core::PolicyKind::kIntBandwidth,
                   edge::WorkloadKind::kDistributed},
        SuiteParam{core::PolicyKind::kNearest,
                   edge::WorkloadKind::kServerless},
        SuiteParam{core::PolicyKind::kNearest,
                   edge::WorkloadKind::kDistributed},
        SuiteParam{core::PolicyKind::kRandom,
                   edge::WorkloadKind::kServerless},
        SuiteParam{core::PolicyKind::kRandom,
                   edge::WorkloadKind::kDistributed}));

}  // namespace
}  // namespace intsched
