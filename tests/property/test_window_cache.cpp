// Property suites for the two hot-path data structures introduced by the
// sweep-engine overhaul:
//  - the NetworkMap's monotonic max-deque (window-max congestion queries)
//    must answer exactly like a naive scan over every sample ever
//    ingested, for randomized sequences including late stragglers;
//  - the Ranker's epoch-invalidated path cache must never serve a ranking
//    computed before the latest ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"
#include "intsched/sim/rng.hpp"

namespace intsched {
namespace {

// ---------------------------------------------------------------------
// Monotonic max-deque vs the naive reference model.

/// Single-device probe report carrying one set of register values.
telemetry::ProbeReport queue_report(core::NodeId device, std::int64_t max_q,
                                    std::int64_t avg_q_x100,
                                    sim::SimDuration hop_latency) {
  telemetry::ProbeReport report;
  report.src = core::NodeId{100};
  report.dst = core::NodeId{101};
  net::IntStackEntry entry;
  entry.device = device;
  entry.ingress_port = 0;
  entry.egress_port = 1;
  entry.max_queue_pkts = max_q;
  entry.device_max_queue_pkts = max_q;
  entry.device_avg_queue_x100 = avg_q_x100;
  entry.max_hop_latency = hop_latency;
  report.entries.push_back(entry);
  return report;
}

/// The reference model: every sample ever ingested, scanned in full.
struct NaiveSeries {
  std::vector<std::pair<sim::SimTime, std::int64_t>> samples;

  [[nodiscard]] std::int64_t max_from(sim::SimTime cutoff) const {
    std::int64_t best = 0;
    for (const auto& [t, v] : samples) {
      if (t >= cutoff) best = std::max(best, v);
    }
    return best;
  }
};

TEST(WindowMaxProperty, MatchesNaiveScanOverRandomizedSequences) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    sim::Rng rng{seed};
    core::NetworkMapConfig cfg;
    cfg.queue_window = sim::SimDuration::milliseconds(
        rng.uniform_int(50, 400));
    core::NetworkMap map{cfg};
    const core::NodeId device{7};

    NaiveSeries naive_max;
    NaiveSeries naive_avg;
    sim::SimTime high_water = sim::SimTime::zero();

    sim::SimTime now = sim::SimTime::zero();
    for (int step = 0; step < 400; ++step) {
      now += sim::SimDuration::microseconds(rng.uniform_int(0, 40'000));
      // ~10% of ingests are late stragglers: an older report arriving
      // after newer ones (reordered probe delivery).
      sim::SimTime at = now;
      if (rng.chance(0.1) && high_water > sim::SimTime::zero()) {
        at = sim::SimTime::nanoseconds(
            rng.uniform_int(0, high_water.ns()));
      }
      high_water = std::max(high_water, at);

      const std::int64_t max_q = rng.uniform_int(0, 64);
      const std::int64_t avg_q = rng.uniform_int(0, 4'000);
      map.ingest(queue_report(device, max_q, avg_q,
                              sim::SimDuration::microseconds(max_q)),
                 at);
      naive_max.samples.push_back({at, max_q});
      naive_avg.samples.push_back({at, avg_q});

      // Query at the newest time seen and at a few later instants (the
      // scheduler always queries at the current sim time, which can only
      // move forward past every ingest).
      for (const std::int64_t ahead_us : {std::int64_t{0},
                                          rng.uniform_int(0, 500'000)}) {
        const sim::SimTime q_now =
            high_water + sim::SimDuration::microseconds(ahead_us);
        const sim::SimTime cutoff = q_now - cfg.queue_window;
        ASSERT_EQ(map.device_max_queue(device, q_now),
                  naive_max.max_from(cutoff))
            << "seed=" << seed << " step=" << step;
        ASSERT_EQ(map.device_avg_queue(device, q_now),
                  static_cast<double>(naive_avg.max_from(cutoff)) / 100.0)
            << "seed=" << seed << " step=" << step;
      }
    }
  }
}

TEST(WindowMaxProperty, EmptyAndExpiredWindowsReadZero) {
  core::NetworkMapConfig cfg;
  cfg.queue_window = sim::SimDuration::milliseconds(100);
  core::NetworkMap map{cfg};

  // Unknown device: the paper's "assume uncongested" fallback.
  EXPECT_EQ(map.device_max_queue(core::NodeId{3}, sim::SimTime::seconds(1)), 0);

  map.ingest(queue_report(core::NodeId{3}, 40, 1000, sim::SimDuration::zero()),
             sim::SimTime::seconds(1));
  EXPECT_EQ(map.device_max_queue(core::NodeId{3}, sim::SimTime::seconds(1)), 40);
  // Every sample older than the window: back to zero, without mutation.
  EXPECT_EQ(map.device_max_queue(core::NodeId{3}, sim::SimTime::seconds(10)), 0);
  // The sample is still there for a query window that covers it.
  EXPECT_EQ(map.device_max_queue(core::NodeId{3},
                                 sim::SimTime::seconds(1) +
                                     sim::SimDuration::milliseconds(50)),
            40);
}

// ---------------------------------------------------------------------
// Epoch-invalidated path cache: cached rankings must be indistinguishable
// from a cache-cold Ranker's, before and after every ingest.

std::string render_ranks(const std::vector<core::ServerRank>& ranks) {
  std::ostringstream out;
  for (const core::ServerRank& r : ranks) {
    out << r.server << '|' << r.delay_estimate.ns() << '|'
        << r.bandwidth_estimate.bps() << '|'
        << r.baseline_delay.ns() << '\n';
  }
  return out.str();
}

/// A probe report that walks a two-switch chain src -> s1 -> s2 -> dst,
/// teaching the map the chain topology with the given per-hop delays.
telemetry::ProbeReport chain_report(core::NodeId src, core::NodeId s1,
                                    core::NodeId s2, core::NodeId dst,
                                    sim::SimDuration hop_delay,
                                    std::int64_t max_q) {
  telemetry::ProbeReport report;
  report.src = src;
  report.dst = dst;
  net::IntStackEntry first;
  first.device = s1;
  first.ingress_port = 0;
  first.egress_port = 1;
  first.device_max_queue_pkts = max_q;
  first.ingress_link_latency = hop_delay;
  report.entries.push_back(first);
  net::IntStackEntry second = first;
  second.device = s2;
  report.entries.push_back(second);
  report.final_link_latency = hop_delay;
  return report;
}

TEST(PathCacheProperty, NeverServesPreIngestRankings) {
  sim::Rng rng{99};
  core::NetworkMap map;
  const core::Ranker cached{map};
  const std::vector<core::NodeId> candidates{core::NodeId{20}, core::NodeId{21}};

  sim::SimTime now = sim::SimTime::zero();
  for (int round = 0; round < 30; ++round) {
    now += sim::SimDuration::milliseconds(rng.uniform_int(1, 50));
    // Mutate the map: fresh delays (EWMA moves) and queue registers on
    // two chains reaching the two candidate servers.
    const auto delay =
        sim::SimDuration::microseconds(rng.uniform_int(500, 20'000));
    map.ingest(chain_report(core::NodeId{10}, core::NodeId{11}, core::NodeId{12}, core::NodeId{20}, delay,
                            rng.uniform_int(0, 32)),
               now);
    map.ingest(chain_report(core::NodeId{10}, core::NodeId{11}, core::NodeId{13}, core::NodeId{21}, delay * 2,
                            rng.uniform_int(0, 32)),
               now);

    // The cached ranker must answer exactly like a cache-cold one built
    // on the same map — i.e. it must observe every ingest so far.
    const core::Ranker cold{map};
    for (const auto metric :
         {core::RankingMetric::kDelay, core::RankingMetric::kBandwidth}) {
      ASSERT_EQ(render_ranks(cached.rank(core::NodeId{10}, candidates, metric, now)),
                render_ranks(cold.rank(core::NodeId{10}, candidates, metric, now)))
          << "round=" << round;
    }
    // The cache tracked the map's epoch (it may not have needed a rebuild
    // this round only if nothing was ingested — impossible here).
    EXPECT_EQ(cached.path_cache_epoch(), core::Epoch{map.reports_ingested()});
  }
  // The cache actually cached: with two rank calls per round sharing one
  // origin and epoch, at least half of the lookups were hits.
  EXPECT_GT(cached.path_cache_hits(), 0);
  EXPECT_GT(cached.path_cache_misses(), 0);
  EXPECT_LT(cached.path_cache_misses(), cached.path_cache_hits() +
                                            cached.path_cache_misses());
}

TEST(PathCacheProperty, CountersSeparateHitsFromRebuilds) {
  core::NetworkMap map;
  map.ingest(chain_report(core::NodeId{10}, core::NodeId{11}, core::NodeId{12}, core::NodeId{20}, sim::SimDuration::milliseconds(1), 0),
             sim::SimTime::milliseconds(1));
  const core::Ranker ranker{map};
  const std::vector<core::NodeId> candidates{core::NodeId{20}};
  const sim::SimTime t1 = sim::SimTime::milliseconds(2);

  EXPECT_EQ(ranker.path_cache_epoch(), core::Epoch::none());
  (void)ranker.rank(core::NodeId{10}, candidates, core::RankingMetric::kDelay, t1);
  EXPECT_EQ(ranker.path_cache_misses(), 1);
  EXPECT_EQ(ranker.path_cache_epoch(), core::Epoch{map.reports_ingested()});

  // Same epoch, same origin: pure hit.
  (void)ranker.rank(core::NodeId{10}, candidates, core::RankingMetric::kDelay, t1);
  EXPECT_EQ(ranker.path_cache_misses(), 1);
  EXPECT_EQ(ranker.path_cache_hits(), 1);

  // New ingest bumps the epoch: the next rank must rebuild.
  map.ingest(chain_report(core::NodeId{10}, core::NodeId{11}, core::NodeId{12}, core::NodeId{20}, sim::SimDuration::milliseconds(5), 0),
             sim::SimTime::milliseconds(3));
  (void)ranker.rank(core::NodeId{10}, candidates, core::RankingMetric::kDelay,
                    sim::SimTime::milliseconds(4));
  EXPECT_EQ(ranker.path_cache_misses(), 2);
  EXPECT_EQ(ranker.path_cache_epoch(), core::Epoch{map.reports_ingested()});
}

}  // namespace
}  // namespace intsched
