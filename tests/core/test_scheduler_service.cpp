// Scheduler service on the Fig. 4 network: probes feed the map, UDP
// queries get ranked responses.
#include "intsched/core/scheduler_service.hpp"

#include <gtest/gtest.h>

#include "intsched/core/policies.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/net/fault.hpp"
#include "intsched/telemetry/probe_agent.hpp"

namespace intsched::core {
namespace {

struct ServiceFixture : ::testing::Test {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::unique_ptr<SchedulerService> service;
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;

  void SetUp() override {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
    }
    service = std::make_unique<SchedulerService>(
        *stacks[5], RankerConfig{}, NetworkMapConfig{});
    for (const core::NodeId id : network.host_ids()) {
      service->register_edge_server(id);
    }
    for (net::Host* h : network.hosts()) {
      if (h->id() == network.scheduler_host().id()) continue;
      agents.push_back(std::make_unique<telemetry::ProbeAgent>(
          *h, network.scheduler_host().id()));
      agents.back()->start();
    }
  }
};

TEST_F(ServiceFixture, ProbesBuildFullHostMap) {
  sim.run_until(sim::SimTime::seconds(1));
  for (const core::NodeId id : network.host_ids()) {
    EXPECT_TRUE(service->network_map().knows_node(id)) << "host " << id;
  }
  // All 12 switches observed.
  for (const p4::P4Switch* sw : network.switches()) {
    EXPECT_TRUE(service->network_map().knows_node(sw->id()))
        << sw->name();
  }
}

TEST_F(ServiceFixture, RankForExcludesRequester) {
  sim.run_until(sim::SimTime::seconds(1));
  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  EXPECT_EQ(ranked.size(), 7u);
  for (const auto& r : ranked) EXPECT_NE(r.server, core::NodeId{0});
}

TEST_F(ServiceFixture, IdleNetworkRanksPodSiblingFirst) {
  sim.run_until(sim::SimTime::seconds(2));
  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].server, core::NodeId{1});  // node2: intra-pod sibling
}

TEST_F(ServiceFixture, QueryOverUdpGetsResponse) {
  SchedulerClient client{*stacks[0], network.scheduler_host().id()};
  sim.run_until(sim::SimTime::seconds(1));
  std::vector<ServerRank> response;
  client.query(RankingMetric::kDelay,
               [&](const CandidateResponse& r) { response = r.ranked; });
  sim.run_until(sim::SimTime::seconds(2));
  ASSERT_EQ(response.size(), 7u);
  EXPECT_EQ(client.responses_received(), 1);
  EXPECT_EQ(service->queries_served(), 1);
  EXPECT_EQ(response[0].server, core::NodeId{1});
}

TEST_F(ServiceFixture, QueryLatencyIsNetworkRoundTrip) {
  SchedulerClient client{*stacks[0], network.scheduler_host().id()};
  sim.run_until(sim::SimTime::seconds(1));
  const sim::SimTime asked = sim.now();
  sim::SimTime answered = sim::SimTime::zero();
  client.query(RankingMetric::kDelay,
               [&](const CandidateResponse&) { answered = sim.now(); });
  sim.run_until(sim::SimTime::seconds(2));
  // node1 <-> node6: 5 links each way = >=100 ms RTT.
  EXPECT_GT(answered - asked, sim::SimDuration::milliseconds(90));
  EXPECT_LT(answered - asked, sim::SimDuration::milliseconds(300));
}

TEST_F(ServiceFixture, RegisterEdgeServerIdempotent) {
  service->register_edge_server(core::NodeId{0});
  service->register_edge_server(core::NodeId{0});
  EXPECT_EQ(service->edge_servers().size(), 8u);
}

TEST_F(ServiceFixture, BandwidthQueryReturnsEstimates) {
  SchedulerClient client{*stacks[2], network.scheduler_host().id()};
  sim.run_until(sim::SimTime::seconds(1));
  std::vector<ServerRank> response;
  client.query(RankingMetric::kBandwidth,
               [&](const CandidateResponse& r) { response = r.ranked; });
  sim.run_until(sim::SimTime::seconds(2));
  ASSERT_FALSE(response.empty());
  for (std::size_t i = 1; i < response.size(); ++i) {
    EXPECT_GE(response[i - 1].bandwidth_estimate.bps(),
              response[i].bandwidth_estimate.bps());
  }
}

TEST_F(ServiceFixture, DirectPolicySelectsImmediately) {
  sim.run_until(sim::SimTime::seconds(1));
  DirectIntPolicy policy{*service, RankingMetric::kDelay};
  std::vector<core::NodeId> chosen;
  policy.select(core::NodeId{5}, 3, [&](std::vector<core::NodeId> s) { chosen = s; });
  ASSERT_EQ(chosen.size(), 3u);  // synchronous: no sim stepping needed
  EXPECT_EQ(policy.kind(), PolicyKind::kIntDelay);
}

TEST_F(ServiceFixture, IntPolicyWrapsClientQuery) {
  SchedulerClient client{*stacks[0], network.scheduler_host().id()};
  IntPolicy policy{client, RankingMetric::kBandwidth};
  EXPECT_EQ(policy.kind(), PolicyKind::kIntBandwidth);
  sim.run_until(sim::SimTime::seconds(1));
  std::vector<core::NodeId> chosen;
  policy.select(core::NodeId{0}, 2, [&](std::vector<core::NodeId> s) { chosen = s; });
  sim.run_until(sim::SimTime::seconds(2));
  EXPECT_EQ(chosen.size(), 2u);
}

TEST_F(ServiceFixture, ProbeReportsCounted) {
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_GT(service->collector().probes_received(), 50);
  EXPECT_EQ(service->collector().malformed(), 0);
  EXPECT_EQ(service->network_map().reports_ingested(),
            service->collector().probes_received());
}

// -- Graceful degradation under telemetry loss --

/// Same wiring as ServiceFixture but with the staleness window enabled
/// and a fault plan available for the individual tests to arm.
struct DegradedServiceFixture : ::testing::Test {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::unique_ptr<SchedulerService> service;
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;

  void SetUp() override {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
    }
    NetworkMapConfig map_cfg;
    map_cfg.link_staleness = sim::SimDuration::milliseconds(400);
    service = std::make_unique<SchedulerService>(
        *stacks[5], RankerConfig{}, map_cfg);
    for (const core::NodeId id : network.host_ids()) {
      service->register_edge_server(id);
    }
    for (net::Host* h : network.hosts()) {
      if (h->id() == network.scheduler_host().id()) continue;
      agents.push_back(std::make_unique<telemetry::ProbeAgent>(
          *h, network.scheduler_host().id()));
      agents.back()->start();
    }
  }
};

TEST_F(DegradedServiceFixture, StalePathIsDeprioritizedNotDropped) {
  // Warm up, then cut host 0's access link for good: server 0's telemetry
  // goes stale while everyone else stays fresh.
  net::FaultPlanConfig cfg;
  cfg.link_flaps.push_back(net::LinkFlapSpec{
      core::NodeId{0}, core::NodeId{8}, sim::SimTime::seconds(2), sim::SimTime::zero()});
  net::FaultPlan plan{cfg};
  plan.arm(network.topology());
  sim.run_until(sim::SimTime::seconds(4));

  // Query from host 2 (unaffected): all 7 candidates still present.
  const auto ranked = service->rank_for(core::NodeId{2}, RankingMetric::kDelay);
  ASSERT_EQ(ranked.size(), 7u);
  EXPECT_EQ(ranked.back().server, core::NodeId{0});
  EXPECT_TRUE(ranked.back().stale);
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_FALSE(ranked[i].stale) << "server " << ranked[i].server;
  }
  EXPECT_GT(service->stale_lookups(), 0);
  EXPECT_GT(service->fallback_decisions(), 0);
}

TEST_F(DegradedServiceFixture, AllStaleFallsBackToNearestOrdering) {
  sim.run_until(sim::SimTime::seconds(2));
  for (auto& a : agents) a->stop();  // total telemetry blackout
  sim.run_until(sim::SimTime::seconds(4));  // well past the 400 ms window

  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  ASSERT_EQ(ranked.size(), 7u);
  for (const auto& r : ranked) EXPECT_TRUE(r.stale);
  // Nearest-style fallback: intra-pod sibling first, by topology alone.
  EXPECT_EQ(ranked[0].server, core::NodeId{1});
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].baseline_delay, ranked[i - 1].baseline_delay);
  }
}

TEST_F(DegradedServiceFixture, QueryDuringBlackoutStillWellFormed) {
  sim.run_until(sim::SimTime::seconds(2));
  for (auto& a : agents) a->stop();
  sim.run_until(sim::SimTime::seconds(4));

  SchedulerClient client{*stacks[0], network.scheduler_host().id()};
  std::vector<ServerRank> response;
  client.query(RankingMetric::kDelay,
               [&](const CandidateResponse& r) { response = r.ranked; });
  sim.run_until(sim::SimTime::seconds(5));
  ASSERT_EQ(response.size(), 7u);
  EXPECT_EQ(response[0].server, core::NodeId{1});
  EXPECT_EQ(client.responses_received(), 1);
}

TEST_F(DegradedServiceFixture, FreshTelemetryMeansNoFallbacks) {
  sim.run_until(sim::SimTime::seconds(3));
  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  ASSERT_EQ(ranked.size(), 7u);
  for (const auto& r : ranked) EXPECT_FALSE(r.stale);
  EXPECT_EQ(service->fallback_decisions(), 0);
  EXPECT_EQ(ranked[0].server, core::NodeId{1});
}

}  // namespace
}  // namespace intsched::core

// -- Lifetime safety --

#include "intsched/edge/edge_server.hpp"

namespace intsched::core {
namespace {

TEST_F(ServiceFixture, ClientDestroyedWithPendingQueryIsSafe) {
  {
    SchedulerClient client{*stacks[0], network.scheduler_host().id()};
    client.query(RankingMetric::kDelay, [](const CandidateResponse&) {
      FAIL() << "response after client death must not fire";
    });
    // Destroy immediately: the request and its retry timer are in flight.
  }
  sim.run_until(sim::SimTime::seconds(15));  // past several retry rounds
}

TEST_F(ServiceFixture, ServerDestroyedMidExecutionIsSafe) {
  intsched::edge::MetricsCollector metrics;
  {
    intsched::edge::EdgeServer server{*stacks[1], metrics};
    server.enable_load_reports(network.scheduler_host().id());
    sim.run_until(sim::SimTime::milliseconds(600));
  }
  sim.run_until(sim::SimTime::seconds(5));  // pending timers must no-op
}

}  // namespace
}  // namespace intsched::core
