// Extension features from the paper's §VI future work: compute-aware
// ranking via load reports, and heterogeneous server capabilities.
#include <gtest/gtest.h>

#include "intsched/core/policies.hpp"
#include "intsched/edge/edge_server.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/telemetry/probe_agent.hpp"

namespace intsched::core {
namespace {

struct ExtensionFixture : ::testing::Test {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::unique_ptr<SchedulerService> service;
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;

  void make_service(SchedulerConfig cfg = {}) {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
    }
    service = std::make_unique<SchedulerService>(
        *stacks[5], RankerConfig{}, NetworkMapConfig{}, cfg);
    for (net::Host* h : network.hosts()) {
      if (h->id() == network.scheduler_host().id()) continue;
      agents.push_back(std::make_unique<telemetry::ProbeAgent>(
          *h, network.scheduler_host().id()));
      agents.back()->start();
    }
  }
};

TEST_F(ExtensionFixture, CapabilityFilterExcludesUnqualified) {
  make_service();
  service->register_edge_server(core::NodeId{1}, {"gpu"});
  service->register_edge_server(core::NodeId{2}, {"gpu", "keras"});
  service->register_edge_server(core::NodeId{3}, {});
  sim.run_until(sim::SimTime::seconds(1));

  const auto any = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  EXPECT_EQ(any.size(), 3u);

  const auto gpu = service->rank_for(core::NodeId{0}, RankingMetric::kDelay, {"gpu"});
  ASSERT_EQ(gpu.size(), 2u);
  for (const auto& r : gpu) EXPECT_NE(r.server, core::NodeId{3});

  const auto both =
      service->rank_for(core::NodeId{0}, RankingMetric::kDelay, {"gpu", "keras"});
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].server, core::NodeId{2});

  EXPECT_TRUE(
      service->rank_for(core::NodeId{0}, RankingMetric::kDelay, {"tpu"}).empty());
}

TEST_F(ExtensionFixture, ReRegisteringUpdatesCapabilities) {
  make_service();
  service->register_edge_server(core::NodeId{1}, {});
  service->register_edge_server(core::NodeId{1}, {"gpu"});
  EXPECT_EQ(service->edge_servers().size(), 1u);
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(service->rank_for(core::NodeId{0}, RankingMetric::kDelay, {"gpu"}).size(),
            1u);
}

TEST_F(ExtensionFixture, LoadReportsTracked) {
  SchedulerConfig cfg;
  cfg.compute_aware = true;
  make_service(cfg);
  for (const core::NodeId id : network.host_ids()) {
    service->register_edge_server(id);
  }
  edge::MetricsCollector metrics;
  edge::EdgeServer server{*stacks[1], metrics};
  server.enable_load_reports(network.scheduler_host().id());
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(service->server_load(core::NodeId{1}), 0);  // idle server reports zero
}

TEST_F(ExtensionFixture, StaleLoadReportsExpire) {
  SchedulerConfig cfg;
  cfg.compute_aware = true;
  cfg.load_staleness = sim::SimDuration::seconds(3);
  make_service(cfg);
  service->register_edge_server(core::NodeId{1});
  edge::MetricsCollector metrics;
  edge::EdgeServer server{*stacks[1], metrics};
  server.enable_load_reports(network.scheduler_host().id(),
                             sim::SimDuration::milliseconds(500));
  sim.run_until(sim::SimTime::seconds(1));
  server.disable_load_reports();
  sim.run_until(sim::SimTime::seconds(10));
  EXPECT_EQ(service->server_load(core::NodeId{1}), 0);
}

TEST_F(ExtensionFixture, ComputeAwareDemotesLoadedServer) {
  SchedulerConfig cfg;
  cfg.compute_aware = true;
  cfg.load_penalty = sim::SimDuration::milliseconds(500);
  make_service(cfg);
  for (const core::NodeId id : network.host_ids()) {
    service->register_edge_server(id);
  }
  sim.run_until(sim::SimTime::seconds(1));

  // Inject a heavy load report for node2 (node1's nearest).
  LoadReportMessage report;
  report.server = core::NodeId{1};
  report.outstanding_tasks = 10;
  auto msg = std::make_shared<LoadReportMessage>(report);
  stacks[1]->send_datagram(network.scheduler_host().id(), net::kTaskPort,
                           net::kSchedulerPort, 62, std::move(msg));
  sim.run_until(sim.now() + sim::SimDuration::milliseconds(200));

  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  ASSERT_FALSE(ranked.empty());
  EXPECT_NE(ranked[0].server, core::NodeId{1});  // 10 x 500 ms penalty demotes node2
  for (const auto& r : ranked) {
    if (r.server == core::NodeId{1}) {
      EXPECT_EQ(r.outstanding_tasks, 10);
    }
  }
}

TEST_F(ExtensionFixture, ComputeAwareOffIgnoresLoad) {
  make_service();  // compute_aware = false
  for (const core::NodeId id : network.host_ids()) {
    service->register_edge_server(id);
  }
  sim.run_until(sim::SimTime::seconds(1));
  LoadReportMessage report;
  report.server = core::NodeId{1};
  report.outstanding_tasks = 50;
  auto msg = std::make_shared<LoadReportMessage>(report);
  stacks[1]->send_datagram(network.scheduler_host().id(), net::kTaskPort,
                           net::kSchedulerPort, 62, std::move(msg));
  sim.run_until(sim.now() + sim::SimDuration::milliseconds(200));
  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kDelay);
  EXPECT_EQ(ranked[0].server, core::NodeId{1});  // load is reported but not acted on
  EXPECT_EQ(ranked[0].outstanding_tasks, 50);
}

TEST_F(ExtensionFixture, ComputeAwareBandwidthSharesCapacity) {
  SchedulerConfig cfg;
  cfg.compute_aware = true;
  make_service(cfg);
  for (const core::NodeId id : network.host_ids()) {
    service->register_edge_server(id);
  }
  sim.run_until(sim::SimTime::seconds(1));
  LoadReportMessage report;
  report.server = core::NodeId{1};
  report.outstanding_tasks = 4;
  auto msg = std::make_shared<LoadReportMessage>(report);
  stacks[1]->send_datagram(network.scheduler_host().id(), net::kTaskPort,
                           net::kSchedulerPort, 62, std::move(msg));
  sim.run_until(sim.now() + sim::SimDuration::milliseconds(200));
  const auto ranked = service->rank_for(core::NodeId{0}, RankingMetric::kBandwidth);
  // node2 divides its ~20 Mbps by 5; everyone else keeps theirs.
  EXPECT_NE(ranked[0].server, core::NodeId{1});
}

TEST_F(ExtensionFixture, PoliciesRespectRequirements) {
  make_service();
  std::unordered_map<core::NodeId, std::vector<std::string>> caps;
  caps[core::NodeId{2}] = {"gpu"};
  caps[core::NodeId{6}] = {"gpu"};
  NearestPolicy nearest{network.topology(), network.host_ids(), caps};
  std::vector<core::NodeId> chosen;
  nearest.select(core::NodeId{0}, 2, {"gpu"},
                 [&](std::vector<core::NodeId> s) { chosen = s; });
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0], core::NodeId{2});  // nearest gpu-capable
  EXPECT_EQ(chosen[1], core::NodeId{6});

  RandomPolicy random{network.host_ids(), sim::Rng{3}, caps};
  for (int trial = 0; trial < 30; ++trial) {
    random.select(core::NodeId{0}, 1, {"gpu"}, [&](std::vector<core::NodeId> s) {
      ASSERT_EQ(s.size(), 1u);
      EXPECT_TRUE(s[0] == core::NodeId{2} || s[0] == core::NodeId{6});
    });
  }
}

TEST_F(ExtensionFixture, RequirementsTravelOverUdpQueries) {
  make_service();
  service->register_edge_server(core::NodeId{1}, {"gpu"});
  service->register_edge_server(core::NodeId{2}, {});
  sim.run_until(sim::SimTime::seconds(1));
  SchedulerClient client{*stacks[0], network.scheduler_host().id()};
  std::vector<ServerRank> response;
  client.query(
      RankingMetric::kDelay,
      [&](const CandidateResponse& r) { response = r.ranked; }, {"gpu"});
  sim.run_until(sim.now() + sim::SimDuration::seconds(1));
  ASSERT_EQ(response.size(), 1u);
  EXPECT_EQ(response[0].server, core::NodeId{1});
}

}  // namespace
}  // namespace intsched::core
