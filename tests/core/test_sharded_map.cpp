// ShardedNetworkMap / MetroView: the two-level metro read path must be a
// drop-in for the flat ConcurrentNetworkMap — field-exact rank agreement
// in the delay-isolated metro regime, pick() == rank()[0] with real
// region pruning, byte-identical results across rebuild-executor widths
// (serial / 2 / 8 threads), and an 8-reader/1-writer torture run
// mirroring the RankSnapshot one (this file rides in concurrency_tests,
// ctest label `perf`, so the tsan preset hammers the same paths).
//
// The torture test's cross-thread state is the maps themselves:
#include "intsched/core/sharded_map.hpp"

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/concurrent_map.hpp"
#include "intsched/core/scheduler_service.hpp"
#include "intsched/exp/fig4.hpp"
#include "intsched/exp/metro.hpp"
#include "intsched/exp/sweep_runner.hpp"
#include "intsched/net/topology_gen.hpp"
#include "intsched/telemetry/probe_agent.hpp"

namespace intsched::core {
namespace {

void expect_ranks_identical(const std::vector<ServerRank>& got,
                            const std::vector<ServerRank>& want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].server, want[i].server) << what << " rank " << i;
    EXPECT_EQ(got[i].delay_estimate, want[i].delay_estimate)
        << what << " rank " << i;
    EXPECT_EQ(got[i].bandwidth_estimate.bps(),
              want[i].bandwidth_estimate.bps())
        << what << " rank " << i;
    EXPECT_EQ(got[i].baseline_delay, want[i].baseline_delay)
        << what << " rank " << i;
    EXPECT_EQ(got[i].stale, want[i].stale) << what << " rank " << i;
  }
}

struct MetroFixture {
  net::GenTopology topo;
  exp::MetroTelemetryGen gen;
  std::vector<std::vector<telemetry::ProbeReport>> batches;

  /// `refresh_links` = links refreshed per epoch batch (0: a quarter of
  /// the topology, the dense default).
  explicit MetroFixture(std::int32_t pods, std::int32_t epochs,
                        std::uint64_t seed = 42,
                        std::int64_t refresh_links = 0)
      : topo{net::TopologyGen::ring_of_pods([&] {
          net::MetroConfig cfg;
          cfg.seed = seed;
          cfg.pods = pods;
          return cfg;
        }())},
        gen{topo, exp::MetroTelemetryConfig{.seed = seed}} {
    batches.push_back(gen.full_sweep());
    const std::int64_t refresh =
        refresh_links > 0
            ? refresh_links
            : std::max<std::int64_t>(
                  1, static_cast<std::int64_t>(topo.links.size()) / 4);
    for (std::int32_t e = 1; e < epochs; ++e) {
      batches.push_back(gen.refresh(refresh));
    }
  }

  [[nodiscard]] static sim::SimTime epoch_time(std::size_t e) {
    return sim::SimTime::seconds(static_cast<std::int64_t>(e) + 1);
  }
};

TEST(ShardedMapTest, MatchesFlatFieldExactEveryEpoch) {
  MetroFixture m{3, 8};
  ShardedNetworkMap sharded{RegionAssignment::from_topology(m.topo)};
  ConcurrentNetworkMap flat;  // snapshot mode
  EXPECT_EQ(sharded.region_count(), core::RegionId{3});

  const std::vector<core::NodeId> origins = m.topo.hosts();
  const std::vector<core::NodeId> candidates = m.topo.edge_servers();
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    const sim::SimTime now = MetroFixture::epoch_time(e);
    sharded.ingest_batch(m.batches[e], now);
    flat.ingest_batch(m.batches[e], now);
    for (const core::NodeId origin : origins) {
      for (const auto metric :
           {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
        const auto want = flat.rank(origin, candidates, metric, now);
        const auto got = sharded.rank(origin, candidates, metric, now);
        expect_ranks_identical(got, want, "epoch");

        // pick() is exactly rank()[0] (bandwidth falls back internally).
        const auto best =
            sharded.pick(origin, candidates, metric, now);
        ASSERT_TRUE(best.has_value());
        EXPECT_EQ(best->server, want.front().server);
        EXPECT_EQ(best->delay_estimate, want.front().delay_estimate);
      }
    }
  }
  EXPECT_EQ(sharded.reports_ingested(), flat.reports_ingested());
  EXPECT_EQ(sharded.rejected_entries(), 0);
}

TEST(ShardedMapTest, OnlyTouchedRegionsAreRebuilt) {
  // Sparse steady state: one refreshed link per epoch across 8 pods. A
  // probe pair touches at most two regions (plus the summary), so most
  // publishes must reuse most region snapshots by pointer — this saving
  // is the point of region sharding.
  MetroFixture m{8, 10, 42, 1};
  ShardedNetworkMap sharded{RegionAssignment::from_topology(m.topo)};
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    sharded.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
  }
  EXPECT_EQ(sharded.view_publishes(),
            static_cast<std::int64_t>(m.batches.size()) + 1);  // +ctor
  // Construction + full sweep rebuild all 8; each of the 9 refreshes may
  // rebuild at most 2. Far below publishes * regions = 88.
  EXPECT_LE(sharded.region_snapshot_builds(), 8 + 8 + 9 * 2);
  EXPECT_LT(sharded.region_snapshot_builds(),
            sharded.view_publishes() *
                static_cast<std::int64_t>(sharded.region_count().value()));
}

TEST(ShardedMapTest, PickPrunesRegionsAndAgreesWithRank) {
  MetroFixture m{5, 4};
  ShardedNetworkMap sharded{RegionAssignment::from_topology(m.topo)};
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    sharded.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
  }
  const sim::SimTime now = MetroFixture::epoch_time(m.batches.size());
  const std::vector<core::NodeId> candidates = m.topo.edge_servers();

  PickStats total;
  for (const core::NodeId origin : m.topo.hosts()) {
    PickStats stats;
    const auto best = sharded.pick(origin, candidates,
                                   RankingMetric::kDelay, now, &stats);
    const auto ranked =
        sharded.rank(origin, candidates, RankingMetric::kDelay, now);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->server, ranked.front().server);
    EXPECT_EQ(best->delay_estimate, ranked.front().delay_estimate);
    total.regions_considered += stats.regions_considered;
    total.regions_pruned += stats.regions_pruned;
    total.candidates_scored += stats.candidates_scored;
  }
  // Delay isolation makes remote regions prunable: most candidates are
  // never scored.
  EXPECT_GT(total.regions_pruned, 0);
  EXPECT_LT(total.candidates_scored,
            static_cast<std::int64_t>(m.topo.hosts().size() *
                                      candidates.size()));
}

TEST(ShardedMapTest, ByteIdenticalAcrossRebuildExecutorWidths) {
  MetroFixture m{4, 6};
  const RegionAssignment regions = RegionAssignment::from_topology(m.topo);

  // Serial (null executor) and pools of width 1, 2, 8.
  std::vector<std::unique_ptr<ShardedNetworkMap>> maps;
  maps.push_back(std::make_unique<ShardedNetworkMap>(regions));
  for (const int jobs : {1, 2, 8}) {
    ShardedMapConfig cfg;
    cfg.rebuild_executor = exp::make_parallel_for(jobs);
    maps.push_back(std::make_unique<ShardedNetworkMap>(regions, cfg));
  }

  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    for (auto& map : maps) {
      map->ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
    }
  }

  const sim::SimTime now = MetroFixture::epoch_time(m.batches.size());
  const std::vector<core::NodeId> candidates = m.topo.edge_servers();
  for (const core::NodeId origin : m.topo.hosts()) {
    for (const auto metric :
         {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
      const auto want = maps[0]->rank(origin, candidates, metric, now);
      for (std::size_t i = 1; i < maps.size(); ++i) {
        expect_ranks_identical(maps[i]->rank(origin, candidates, metric, now),
                               want, "executor width");
      }
    }
  }
  for (const auto& map : maps) {
    EXPECT_EQ(map->region_snapshot_builds(),
              maps[0]->region_snapshot_builds());
    EXPECT_EQ(map->view()->epoch(), maps[0]->view()->epoch());
  }
}

TEST(ShardedMapTest, SetKFactorRepublishesEverything) {
  MetroFixture m{2, 2};
  ShardedNetworkMap sharded{RegionAssignment::from_topology(m.topo)};
  sharded.ingest_batch(m.batches[0], MetroFixture::epoch_time(0));
  const auto before = sharded.view();

  sharded.set_k_factor(sim::SimDuration::milliseconds(40));
  const auto after = sharded.view();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(after->config().k_factor, sim::SimDuration::milliseconds(40));

  // The new k flows into delay estimates (flat map as the oracle).
  ConcurrentNetworkMap flat{{}, RankerConfig{.k_factor =
                                                 sim::SimDuration::milliseconds(40)}};
  flat.ingest_batch(m.batches[0], MetroFixture::epoch_time(0));
  const std::vector<core::NodeId> candidates = m.topo.edge_servers();
  const sim::SimTime now = MetroFixture::epoch_time(1);
  expect_ranks_identical(
      sharded.rank(m.topo.hosts()[0], candidates, RankingMetric::kDelay, now),
      flat.rank(m.topo.hosts()[0], candidates, RankingMetric::kDelay, now),
      "post set_k_factor");
}

// Torture: 8 readers hammering the lock-free two-level path (rank + pick)
// against 1 writer streaming pre-generated refresh batches, mirroring
// RankSnapshotTest.TortureEightReadersOneWriter. Assertions run after the
// join; while running, the test's job is giving TSan real traffic over
// the MetroView publish/load edge and the per-origin call_once contexts.
TEST(ShardedMapTest, TortureEightReadersOneWriter) {
  constexpr int kReaders = 8;
  constexpr int kOpsPerReader = 400;  // each op = one rank + one pick

  MetroFixture m{3, 40};
  ShardedNetworkMap shared{RegionAssignment::from_topology(m.topo)};
  shared.ingest_batch(m.batches[0], MetroFixture::epoch_time(0));

  const std::vector<core::NodeId> origins = m.topo.hosts();
  const std::vector<core::NodeId> candidates = m.topo.edge_servers();

  std::vector<std::function<void()>> tasks;
  tasks.push_back([&shared, &m] {
    for (std::size_t e = 1; e < m.batches.size(); ++e) {
      shared.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
    }
  });
  std::vector<std::int64_t> bad(kReaders, 0);
  for (int t = 0; t < kReaders; ++t) {
    tasks.push_back([&shared, &origins, &candidates, &bad, t] {
      for (int i = 0; i < kOpsPerReader; ++i) {
        const core::NodeId origin =
            origins[static_cast<std::size_t>(t * 31 + i) % origins.size()];
        const auto metric = (i % 2 == 0) ? RankingMetric::kDelay
                                         : RankingMetric::kBandwidth;
        const sim::SimTime now = sim::SimTime::seconds(1 + i % 40);
        const auto ranked = shared.rank(origin, candidates, metric, now);
        // pick-vs-rank consistency must hold on ONE view: the wrapper
        // calls above may straddle a publish.
        const auto view = shared.view();
        const auto vranked = view->rank(origin, candidates, metric, now);
        const auto vbest = view->pick(origin, candidates, metric, now);
        if (ranked.size() != candidates.size() ||
            vranked.size() != candidates.size() || !vbest.has_value() ||
            vbest->server != vranked.front().server) {
          ++bad[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  const exp::SweepRunner runner{1 + kReaders};
  runner.run(std::move(tasks));

  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(bad[static_cast<std::size_t>(t)], 0) << "reader " << t;
  }
  std::int64_t expected_reports = 0;
  for (const auto& b : m.batches) {
    expected_reports += static_cast<std::int64_t>(b.size());
  }
  EXPECT_EQ(shared.reports_ingested(), expected_reports);
  // Only the wrapper rank() bumps the counter (view-level calls don't).
  EXPECT_EQ(shared.queries_served(),
            static_cast<std::int64_t>(kReaders) * kOpsPerReader);
  EXPECT_EQ(shared.view()->epoch(), core::Epoch{expected_reports});

  // Quiesced state replays field-identically against the flat oracle.
  ConcurrentNetworkMap flat;
  for (std::size_t e = 0; e < m.batches.size(); ++e) {
    flat.ingest_batch(m.batches[e], MetroFixture::epoch_time(e));
  }
  const sim::SimTime now = MetroFixture::epoch_time(m.batches.size());
  for (const core::NodeId origin : {origins[0], origins[5]}) {
    for (const auto metric :
         {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
      expect_ranks_identical(shared.rank(origin, candidates, metric, now),
                             flat.rank(origin, candidates, metric, now),
                             "post torture");
    }
  }
}

// SchedulerService with an attached single-region metro map must behave
// exactly like the stock flat service: same probe traffic, same answers.
TEST(ShardedMapTest, SchedulerServiceRoutesThroughAttachedMetro) {
  const auto run_service =
      [](ShardedNetworkMap* metro) -> std::vector<ServerRank> {
    sim::Simulator sim;
    exp::Fig4Network network{sim, exp::Fig4Config{}};
    std::vector<std::unique_ptr<transport::HostStack>> stacks;
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
    }
    SchedulerService service{*stacks[5], RankerConfig{}, NetworkMapConfig{}};
    if (metro != nullptr) service.attach_metro(metro);
    for (const core::NodeId id : network.host_ids()) {
      service.register_edge_server(id);
    }
    std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
    for (net::Host* h : network.hosts()) {
      if (h->id() == network.scheduler_host().id()) continue;
      agents.push_back(std::make_unique<telemetry::ProbeAgent>(
          *h, network.scheduler_host().id()));
      agents.back()->start();
    }
    sim.run_until(sim::SimTime::seconds(2));
    return service.rank_for(core::NodeId{0}, RankingMetric::kDelay);
  };

  // Fig. 4's node-id space (hosts + switches) mapped onto one region.
  ShardedNetworkMap metro{
      RegionAssignment{std::vector<core::RegionId>(32, core::RegionId{0}), core::RegionId{1}}};
  const std::vector<ServerRank> with_metro = run_service(&metro);
  const std::vector<ServerRank> flat = run_service(nullptr);

  EXPECT_GT(metro.reports_ingested(), 0);
  expect_ranks_identical(with_metro, flat, "attach_metro");
}

}  // namespace
}  // namespace intsched::core
