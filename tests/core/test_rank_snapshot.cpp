// RankSnapshot + the lock-free read path of ConcurrentNetworkMap:
// immutability, lazy once-only Dijkstra memoization, the
// freshness/linearizability property (a rank() issued after ingest() of
// report N returns must observe a snapshot with epoch >= N), and an
// 8-reader/1-writer torture run. All parallelism flows through
// exp::SweepRunner (the sanctioned pool); worker tasks record into
// index-addressed slots and the assertions run after the join, so the
// tests are schedule-insensitive while giving ThreadSanitizer (the `tsan`
// preset, ctest label `perf`) real traffic over the snapshot-publish /
// snapshot-load edge and the call_once memo fill.
//
// The shared progress counter below is the test's own cross-thread state:
// intsched-lint: allow-file(thread-share): freshness property needs a
//   release/acquire progress counter between writer and readers

#include "intsched/core/rank_snapshot.hpp"

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/concurrent_map.hpp"
#include "intsched/exp/sweep_runner.hpp"

namespace intsched::core {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

net::IntStackEntry entry(core::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t queue,
                         sim::SimDuration link_latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = queue;
  e.device_max_queue_pkts = queue;
  e.ingress_link_latency = link_latency;
  return e;
}

/// host 0 -> s10 -> s11 -> host 1 (candidate server / collector).
telemetry::ProbeReport simple_report(std::int64_t q10 = 0,
                                     std::int64_t q11 = 0) {
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  r.entries = {
      entry(core::NodeId{10}, 0, 2, q10, ms(10)),
      entry(core::NodeId{11}, 1, 3, q11, ms(12)),
  };
  r.final_link_latency = ms(9);
  return r;
}

void expect_ranks_identical(const std::vector<ServerRank>& got,
                            const std::vector<ServerRank>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].server, want[i].server) << "rank " << i;
    EXPECT_EQ(got[i].delay_estimate, want[i].delay_estimate) << "rank " << i;
    EXPECT_EQ(got[i].bandwidth_estimate.bps(),
              want[i].bandwidth_estimate.bps())
        << "rank " << i;
    EXPECT_EQ(got[i].baseline_delay, want[i].baseline_delay) << "rank " << i;
    EXPECT_EQ(got[i].outstanding_tasks, want[i].outstanding_tasks)
        << "rank " << i;
    EXPECT_EQ(got[i].stale, want[i].stale) << "rank " << i;
  }
}

TEST(RankSnapshotTest, RankMatchesRankerOnTheSameMap) {
  NetworkMap map;
  map.ingest(simple_report(5, 3), at_ms(0));
  map.ingest(simple_report(2, 7), at_ms(1));

  const Ranker ranker{map};
  const RankSnapshot snapshot{map, RankerConfig{}};
  EXPECT_EQ(snapshot.epoch(), map.ingest_epoch());

  const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{99}};
  for (const auto metric :
       {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
    expect_ranks_identical(snapshot.rank(core::NodeId{0}, candidates, metric, at_ms(2)),
                           ranker.rank(core::NodeId{0}, candidates, metric, at_ms(2)));
  }
}

TEST(RankSnapshotTest, SnapshotIsImmutableAcrossLaterIngest) {
  ConcurrentNetworkMap shared;  // snapshot mode by default
  shared.ingest(simple_report(4, 4), at_ms(0));

  const std::shared_ptr<const RankSnapshot> old = shared.snapshot();
  ASSERT_NE(old, nullptr);
  const Epoch old_epoch = old->epoch();
  const std::vector<core::NodeId> candidates{core::NodeId{1}};
  const auto before = old->rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));

  // Heavier congestion arrives; the *old* snapshot must not move.
  shared.ingest(simple_report(60, 60), at_ms(1));
  EXPECT_EQ(old->epoch(), old_epoch);
  expect_ranks_identical(
      old->rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1)), before);

  const std::shared_ptr<const RankSnapshot> fresh = shared.snapshot();
  ASSERT_NE(fresh, nullptr);
  EXPECT_GT(fresh->epoch(), old_epoch);
  const auto after = fresh->rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));
  EXPECT_GT(after[0].delay_estimate, before[0].delay_estimate);
}

TEST(RankSnapshotTest, DijkstraMemoFillsOncePerOrigin) {
  NetworkMap map;
  map.ingest(simple_report(), at_ms(0));
  const RankSnapshot snapshot{map, RankerConfig{}};

  const std::vector<core::NodeId> candidates{core::NodeId{1}};
  for (int i = 0; i < 5; ++i) {
    (void)snapshot.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1 + i));
  }
  EXPECT_EQ(snapshot.memo_fills(), 1);

  (void)snapshot.rank(core::NodeId{1}, candidates, RankingMetric::kDelay, at_ms(10));
  EXPECT_EQ(snapshot.memo_fills(), 2);

  // Unknown origin: computed locally, never memoized.
  (void)snapshot.rank(core::NodeId{777}, candidates, RankingMetric::kDelay, at_ms(11));
  EXPECT_EQ(snapshot.memo_fills(), 2);
}

TEST(RankSnapshotTest, LockedFacadePublishesNoSnapshot) {
  ConcurrentNetworkMap locked{{}, {}, ConcurrencyMode::kLockedFacade};
  locked.ingest(simple_report(), at_ms(0));
  EXPECT_EQ(locked.snapshot(), nullptr);
}

// Freshness/linearizability property: ingest() of report N publishes
// before it returns, so any observation that starts after the return must
// see epoch >= N. The writer advances a release-stored progress counter
// only after each ingest returns; readers acquire-load the counter, then
// load the snapshot — seeing an older epoch would be a publication-order
// violation. Violations are counted per reader slot and asserted after
// the join (gtest assertions are not thread-safe on worker threads).
// Readers run a fixed observation count rather than polling a done flag:
// on a single-core box the writer can finish before any reader is ever
// scheduled, and the property must be checked under whatever overlap the
// machine actually provides (including none).
TEST(RankSnapshotTest, FreshnessPropertyUnderConcurrentIngest) {
  constexpr int kReports = 400;
  constexpr int kReaders = 4;
  constexpr int kObservationsPerReader = 200;

  ConcurrentNetworkMap shared;  // snapshot mode
  shared.ingest(simple_report(), at_ms(0));

  std::atomic<std::int64_t> progress{1};  // reports whose ingest returned
  std::vector<std::int64_t> violations(kReaders, 0);

  std::vector<std::function<void()>> tasks;
  tasks.push_back([&shared, &progress] {
    for (int i = 1; i <= kReports; ++i) {
      shared.ingest(simple_report(i % 9, i % 6), at_ms(i));
      progress.store(1 + i, std::memory_order_release);
    }
  });
  for (int t = 0; t < kReaders; ++t) {
    tasks.push_back([&shared, &progress, &violations, t] {
      const std::vector<core::NodeId> candidates{core::NodeId{1}};
      for (int i = 0; i < kObservationsPerReader; ++i) {
        const std::int64_t seen = progress.load(std::memory_order_acquire);
        const std::shared_ptr<const RankSnapshot> snap = shared.snapshot();
        if (snap->epoch() < Epoch{seen}) ++violations[static_cast<std::size_t>(t)];
        (void)shared.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(static_cast<int>(seen)));
      }
    });
  }

  const exp::SweepRunner runner{1 + kReaders};
  runner.run(std::move(tasks));

  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(violations[static_cast<std::size_t>(t)], 0)
        << "reader " << t << " observed a pre-ingest snapshot";
  }
  EXPECT_EQ(shared.reports_ingested(), 1 + kReports);
  // At quiescence the published snapshot is the newest epoch.
  EXPECT_EQ(shared.snapshot()->epoch(), Epoch{1 + kReports});
}

// Torture: 8 readers hammering the lock-free path against 1 writer mixing
// single and batched ingest, ~10k ops total. Asserts exact totals after
// the join and that the final state replays byte-identically on a locked
// facade — while giving TSan maximal snapshot-churn traffic.
TEST(RankSnapshotTest, TortureEightReadersOneWriter) {
  constexpr int kReaders = 8;
  constexpr int kRanksPerReader = 1000;   // 8k ranks
  constexpr int kSingles = 1000;          // 1k single ingests
  constexpr int kBatches = 250;           // 1k more reports, batched by 4
  constexpr int kBatchSize = 4;

  ConcurrentNetworkMap shared;  // snapshot mode
  shared.ingest(simple_report(), at_ms(0));

  std::vector<std::function<void()>> tasks;
  tasks.push_back([&shared] {
    for (int i = 0; i < kSingles; ++i) {
      shared.ingest(simple_report(i % 13, i % 8), at_ms(1 + i));
    }
    for (int b = 0; b < kBatches; ++b) {
      std::vector<telemetry::ProbeReport> burst;
      burst.reserve(kBatchSize);
      for (int j = 0; j < kBatchSize; ++j) {
        burst.push_back(simple_report((b + j) % 11, (b * j) % 7));
      }
      shared.ingest_batch(burst, at_ms(1 + kSingles + b));
    }
  });
  std::vector<std::int64_t> bad_shapes(kReaders, 0);
  for (int t = 0; t < kReaders; ++t) {
    tasks.push_back([&shared, &bad_shapes, t] {
      const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{99}};
      for (int i = 0; i < kRanksPerReader; ++i) {
        const auto metric = (i % 2 == 0) ? RankingMetric::kDelay
                                         : RankingMetric::kBandwidth;
        const std::vector<ServerRank> ranked =
            shared.rank(core::NodeId{t}, candidates, metric, at_ms(i));
        if (ranked.size() != candidates.size()) {
          ++bad_shapes[static_cast<std::size_t>(t)];
        }
      }
    });
  }

  const exp::SweepRunner runner{1 + kReaders};
  runner.run(std::move(tasks));

  for (int t = 0; t < kReaders; ++t) {
    EXPECT_EQ(bad_shapes[static_cast<std::size_t>(t)], 0) << "reader " << t;
  }
  const std::int64_t expected_reports =
      1 + kSingles + static_cast<std::int64_t>(kBatches) * kBatchSize;
  EXPECT_EQ(shared.reports_ingested(), expected_reports);
  EXPECT_EQ(shared.queries_served(),
            static_cast<std::int64_t>(kReaders) * kRanksPerReader);
  EXPECT_EQ(shared.snapshot()->epoch(), Epoch{expected_reports});

  // Quiesced state replays byte-identically on the locked facade.
  ConcurrentNetworkMap locked{{}, {}, ConcurrencyMode::kLockedFacade};
  locked.ingest(simple_report(), at_ms(0));
  for (int i = 0; i < kSingles; ++i) {
    locked.ingest(simple_report(i % 13, i % 8), at_ms(1 + i));
  }
  for (int b = 0; b < kBatches; ++b) {
    std::vector<telemetry::ProbeReport> burst;
    for (int j = 0; j < kBatchSize; ++j) {
      burst.push_back(simple_report((b + j) % 11, (b * j) % 7));
    }
    locked.ingest_batch(burst, at_ms(1 + kSingles + b));
  }
  const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{99}};
  const int final_t = 1 + kSingles + kBatches;
  for (const auto metric :
       {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
    expect_ranks_identical(
        shared.rank(core::NodeId{0}, candidates, metric, at_ms(final_t)),
        locked.rank(core::NodeId{0}, candidates, metric, at_ms(final_t)));
  }
}

}  // namespace
}  // namespace intsched::core
