// core::FlatTable: the open-addressing registry table on the serving
// decision path (DESIGN.md §13). Covers insert/find/overwrite semantics,
// growth + rehash correctness against a std::unordered_map oracle,
// probe-length bounds under dense sequential keys (the realistic id
// pattern), and the invalid-key sentinel contract.
#include "intsched/core/flat_table.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/types.hpp"
#include "intsched/sim/rng.hpp"

namespace intsched::core {
namespace {

TEST(FlatTableTest, InsertFindOverwrite) {
  FlatTable<NodeId, std::int32_t> table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(NodeId{7}), nullptr);
  EXPECT_FALSE(table.contains(NodeId{7}));

  table.insert_or_assign(NodeId{7}, 70);
  table.insert_or_assign(NodeId{9}, 90);
  ASSERT_NE(table.find(NodeId{7}), nullptr);
  EXPECT_EQ(*table.find(NodeId{7}), 70);
  EXPECT_EQ(*table.find(NodeId{9}), 90);
  EXPECT_EQ(table.size(), 2u);

  // insert_or_assign overwrites in place without growing the count.
  table.insert_or_assign(NodeId{7}, 71);
  EXPECT_EQ(*table.find(NodeId{7}), 71);
  EXPECT_EQ(table.size(), 2u);

  EXPECT_EQ(table.find(NodeId{8}), nullptr);
}

TEST(FlatTableTest, InvalidKeyIsNeverPresent) {
  FlatTable<NodeId, int> table;
  table.insert_or_assign(NodeId{1}, 1);
  // Id::invalid() is the empty-slot sentinel; looking it up is
  // well-defined and always absent.
  EXPECT_EQ(table.find(kInvalidNode), nullptr);
  EXPECT_FALSE(table.contains(NodeId::invalid()));
}

TEST(FlatTableTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ((FlatTable<NodeId, int>{0}.capacity()), 8u);
  EXPECT_EQ((FlatTable<NodeId, int>{8}.capacity()), 8u);
  EXPECT_EQ((FlatTable<NodeId, int>{9}.capacity()), 16u);
  EXPECT_EQ((FlatTable<NodeId, int>{1000}.capacity()), 1024u);
}

TEST(FlatTableTest, GrowthKeepsEveryEntry) {
  // Dense sequential ids — the real registry pattern — through several
  // rehashes, checked against an unordered_map oracle.
  FlatTable<NodeId, std::int64_t> table{8};
  std::unordered_map<NodeId, std::int64_t> oracle;
  for (std::int32_t i = 0; i < 5000; ++i) {
    const NodeId key{i * 3};
    table.insert_or_assign(key, i * 7);
    oracle[key] = i * 7;
  }
  EXPECT_EQ(table.size(), oracle.size());
  // Load factor stays at or below 70%.
  EXPECT_LE(table.size() * 100, table.capacity() * 70);
  // intsched-lint: allow(unordered-iter): order-free membership check
  for (const auto& [key, value] : oracle) {
    const std::int64_t* got = table.find(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(*got, value) << key;
  }
  for (std::int32_t i = 0; i < 5000; ++i) {
    if (i % 3 != 0) {
      EXPECT_EQ(table.find(NodeId{i}), nullptr) << i;
    }
  }
}

TEST(FlatTableTest, RandomizedAgainstOracle) {
  sim::Rng rng{2024};
  FlatTable<ServerId, std::uint64_t> table;
  std::unordered_map<ServerId, std::uint64_t> oracle;
  for (int op = 0; op < 20000; ++op) {
    const ServerId key{
        static_cast<std::int32_t>(rng.uniform_int(0, 4000))};
    if (rng.chance(0.7)) {
      const std::uint64_t value = rng.next_u64();
      table.insert_or_assign(key, value);
      oracle[key] = value;
    } else {
      const auto it = oracle.find(key);
      const std::uint64_t* got = table.find(key);
      if (it == oracle.end()) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
}

TEST(FlatTableTest, ProbeLengthsStayShortAtMaxLoad) {
  // Sequential ids at the 70% load bound: the splitmix64 mix must spread
  // them well enough that the worst probe chain stays far below a scan.
  FlatTable<NodeId, int> table{1024};
  for (std::int32_t i = 0; i < 700; ++i) {
    table.insert_or_assign(NodeId{i}, i);
  }
  EXPECT_EQ(table.capacity(), 1024u);  // no growth past the bound
  EXPECT_GE(table.max_probe_length(), 1u);
  EXPECT_LE(table.max_probe_length(), 64u);
}

/// Test-side replica of FlatTable's documented hash (a fixed
/// splitmix64-style finalizer) so tests can *construct* adversarial key
/// sets instead of hoping random ones collide. If the table's mix ever
/// changes, the probe-placement tests below fail loudly rather than
/// silently testing nothing.
std::size_t reference_mix(std::int32_t raw) {
  auto h = static_cast<std::uint64_t>(static_cast<std::int64_t>(raw));
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return static_cast<std::size_t>(h);
}

/// Collects `want` distinct ids whose home slot equals `home` for the
/// given table capacity (mask = capacity - 1).
std::vector<std::int32_t> ids_with_home(std::size_t capacity,
                                        std::size_t home, std::size_t want) {
  std::vector<std::int32_t> ids;
  for (std::int32_t raw = 0; ids.size() < want; ++raw) {
    if ((reference_mix(raw) & (capacity - 1)) == home) ids.push_back(raw);
  }
  return ids;
}

TEST(FlatTableTest, ProbeChainsWrapAroundTheArrayEnd) {
  // Pin several keys whose home is the *last* slot: every key after the
  // first must wrap to index 0 and continue probing from the front. Stay
  // below the growth threshold so the placement is exercised as built.
  constexpr std::size_t kCap = 64;
  FlatTable<NodeId, std::int32_t> table{kCap};
  const std::vector<std::int32_t> ids = ids_with_home(kCap, kCap - 1, 5);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    table.insert_or_assign(NodeId{ids[i]}, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(table.capacity(), kCap);  // no growth: wrap really happened
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int32_t* got = table.find(NodeId{ids[i]});
    ASSERT_NE(got, nullptr) << ids[i];
    EXPECT_EQ(*got, static_cast<std::int32_t>(i));
  }
  // A sixth same-home key that was never inserted must probe through the
  // whole wrapped chain and stop at the first empty slot, not loop.
  const std::int32_t absent = ids_with_home(kCap, kCap - 1, 6).back();
  EXPECT_EQ(table.find(NodeId{absent}), nullptr);
  // Overwriting the deepest wrapped key must hit its slot, not re-insert.
  table.insert_or_assign(NodeId{ids.back()}, 99);
  EXPECT_EQ(*table.find(NodeId{ids.back()}), 99);
  EXPECT_EQ(table.size(), ids.size());
}

TEST(FlatTableTest, GrowthRehashesCollidingClusterCorrectly) {
  // An adversarial cluster: many keys sharing one home slot at the small
  // capacity. Growth doubles the array, so the cluster's keys scatter to
  // new homes — every one must survive the rehash and stay findable, and
  // keys absent before growth must stay absent after it.
  constexpr std::size_t kSmall = 16;
  FlatTable<NodeId, std::int32_t> table{kSmall};
  const std::vector<std::int32_t> cluster = ids_with_home(kSmall, 3, 20);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    table.insert_or_assign(NodeId{cluster[i]},
                           static_cast<std::int32_t>(i) * 11);
  }
  EXPECT_GT(table.capacity(), kSmall);  // the cluster forced growth
  EXPECT_EQ(table.size(), cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const std::int32_t* got = table.find(NodeId{cluster[i]});
    ASSERT_NE(got, nullptr) << cluster[i];
    EXPECT_EQ(*got, static_cast<std::int32_t>(i) * 11);
  }
  const std::int32_t absent = ids_with_home(kSmall, 3, 21).back();
  EXPECT_EQ(table.find(NodeId{absent}), nullptr);
}

TEST(FlatTableTest, InsertOfInvalidSentinelIsRejected) {
  // Id::invalid() is the empty-slot sentinel: storing it would create a
  // phantom slot that terminates every probe chain crossing it. The
  // insert must be a rejected no-op, and the table must stay fully
  // functional afterwards.
  FlatTable<NodeId, std::int32_t> table{8};
  table.insert_or_assign(NodeId{1}, 10);
  table.insert_or_assign(NodeId::invalid(), 666);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(NodeId::invalid()), nullptr);
  EXPECT_FALSE(table.contains(NodeId::invalid()));
  table.insert_or_assign(NodeId{2}, 20);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(*table.find(NodeId{1}), 10);
  EXPECT_EQ(*table.find(NodeId{2}), 20);
}

TEST(FlatTableTest, NonTrivialValueType) {
  FlatTable<RegionId, std::string> table;
  table.insert_or_assign(RegionId{0}, "metro-a");
  table.insert_or_assign(RegionId{1}, "metro-b");
  table.insert_or_assign(RegionId{0}, "metro-a2");
  ASSERT_NE(table.find(RegionId{0}), nullptr);
  EXPECT_EQ(*table.find(RegionId{0}), "metro-a2");
  EXPECT_EQ(*table.find(RegionId{1}), "metro-b");
  EXPECT_EQ(table.size(), 2u);
}

}  // namespace
}  // namespace intsched::core
