// The strong-type layer itself (intsched/core/types.hpp): what fails to
// compile (cross-tag and raw-integer conversion — checked with
// static_asserts, the only way to test "does not compile" in-process),
// the arithmetic identities the migration relies on, and the stability
// contracts (ordering, hashing, stream rendering) that keep the layer
// bit-identical to the raw-integer code it replaced.
#include "intsched/core/types.hpp"

#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace intsched::core {
namespace {

// --- what must NOT compile -------------------------------------------

// No implicit construction from the raw representation, no implicit
// conversion back: an id is not an integer.
static_assert(!std::is_convertible_v<std::int32_t, NodeId>);
static_assert(!std::is_convertible_v<NodeId, std::int32_t>);
static_assert(std::is_constructible_v<NodeId, std::int32_t>);  // explicit

// No cross-tag conversion in either direction, explicit or implicit: a
// RegionId where a NodeId is due is a build error, not a reinterpreted
// index.
static_assert(!std::is_convertible_v<RegionId, NodeId>);
static_assert(!std::is_constructible_v<NodeId, RegionId>);
static_assert(!std::is_constructible_v<ServerId, NodeId>);
static_assert(!std::is_constructible_v<RegionId, ServerId>);

// Epoch mirrors the same discipline against its representation.
static_assert(!std::is_convertible_v<std::int64_t, Epoch>);
static_assert(!std::is_convertible_v<Epoch, std::int64_t>);
static_assert(!std::is_constructible_v<Epoch, NodeId>);

// No cross-tag comparison: the spaceship is defaulted per type, so
// NodeId{1} == ServerId{1} must not even be a valid expression.
template <typename A, typename B, typename = void>
struct comparable : std::false_type {};
template <typename A, typename B>
struct comparable<A, B,
                  std::void_t<decltype(std::declval<A>() ==
                                       std::declval<B>())>>
    : std::true_type {};
static_assert(comparable<NodeId, NodeId>::value);
static_assert(!comparable<NodeId, ServerId>::value);
static_assert(!comparable<NodeId, int>::value);
static_assert(!comparable<Epoch, std::int64_t>::value);

// --- zero-cost layout ------------------------------------------------

static_assert(sizeof(NodeId) == sizeof(std::int32_t));
static_assert(sizeof(Epoch) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<NodeId>);
static_assert(std::is_trivially_copyable_v<Epoch>);

// --- arithmetic identities -------------------------------------------

TEST(TaggedIdTest, ValueRoundTripsAndIndexMatchesCast) {
  constexpr NodeId n{42};
  static_assert(n.value() == 42);
  static_assert(n.index() == 42u);
  EXPECT_EQ(NodeId{n.value()}, n);
}

TEST(TaggedIdTest, IncrementWalksTheDenseIdSpace) {
  NodeId n{0};
  std::int32_t raw = 0;
  for (; n.value() < 5; ++n, ++raw) {
    EXPECT_EQ(n.value(), raw);
  }
  EXPECT_EQ(n, NodeId{5});
}

TEST(TaggedIdTest, InvalidSentinelMatchesRawConvention) {
  static_assert(NodeId::invalid().value() == -1);
  static_assert(!NodeId::invalid().valid());
  static_assert(NodeId{0}.valid());
  EXPECT_EQ(kInvalidNode, NodeId::invalid());
  EXPECT_LT(NodeId::invalid(), NodeId{0});  // sorts before every real id
}

TEST(TaggedIdTest, ServerNodeConvertersAreExplicitInverses) {
  constexpr ServerId s{7};
  static_assert(node_of(s).value() == 7);
  static_assert(server_at(node_of(s)) == s);
  constexpr NodeId n{3};
  static_assert(node_of(server_at(n)) == n);
}

TEST(EpochTest, NoneIsDefaultAndPrecedesEveryRealEpoch) {
  static_assert(Epoch{} == Epoch::none());
  static_assert(Epoch::none().value() == -1);
  static_assert(!Epoch::none().valid());
  static_assert(Epoch::none() < Epoch{0});
  EXPECT_LT(Epoch{0}, Epoch{1});  // freshness follows ingest order
}

// --- ordering and hashing stability ----------------------------------

// The migration must not reorder any container: TaggedId ordering is the
// representation's ordering, including negatives.
TEST(TaggedIdTest, OrderingMatchesRawRepresentation) {
  const std::set<NodeId> ids{NodeId{3}, NodeId{-1}, NodeId{0}, NodeId{7}};
  std::vector<std::int32_t> raw;
  for (const NodeId id : ids) raw.push_back(id.value());
  EXPECT_EQ(raw, (std::vector<std::int32_t>{-1, 0, 3, 7}));

  const std::map<std::pair<NodeId, NodeId>, int> links{
      {{NodeId{1}, NodeId{2}}, 0}, {{NodeId{0}, NodeId{9}}, 1}};
  EXPECT_EQ(links.begin()->second, 1);  // (0,9) < (1,2), as with raw ints
}

// std::hash<TaggedId> delegates to the representation's hash, so bucket
// placement (and therefore unordered-container iteration order, which
// detlint already polices separately) is unchanged by the migration.
TEST(TaggedIdTest, HashEqualsRepresentationHash) {
  for (const std::int32_t v : {-1, 0, 1, 42, 1 << 20}) {
    EXPECT_EQ(std::hash<NodeId>{}(NodeId{v}),
              std::hash<std::int32_t>{}(v));
  }
  for (const std::int64_t v : {-1LL, 0LL, 7LL, 1LL << 40}) {
    EXPECT_EQ(std::hash<Epoch>{}(Epoch{v}), std::hash<std::int64_t>{}(v));
  }
}

TEST(TaggedIdTest, UnorderedContainersWorkAcrossTags) {
  std::unordered_set<NodeId> id_set{NodeId{1}, NodeId{2}, NodeId{1}};
  EXPECT_EQ(id_set.size(), 2u);
  std::unordered_map<RegionId, int> regions;
  regions[RegionId{0}] = 10;
  regions[RegionId{1}] = 20;
  EXPECT_EQ(regions.at(RegionId{1}), 20);
}

// --- rendering --------------------------------------------------------

TEST(TaggedIdTest, StreamsAndToStringRenderTheRawValue) {
  std::ostringstream os;
  os << NodeId{12} << ' ' << Epoch{3} << ' ' << RegionId::invalid();
  EXPECT_EQ(os.str(), "12 3 -1");
  EXPECT_EQ(to_string(NodeId{12}), "12");
  EXPECT_EQ(to_string(Epoch::none()), "-1");
}

// --- the duration/instant split --------------------------------------

// The same no-mixing discipline for time: instants and spans are closed
// under exactly the algebra DESIGN.md §12 tabulates, nothing more.
template <typename A, typename B, typename = void>
struct addable : std::false_type {};
template <typename A, typename B>
struct addable<A, B,
               std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};
static_assert(addable<sim::SimTime, sim::SimDuration>::value);
static_assert(addable<sim::SimDuration, sim::SimDuration>::value);
static_assert(!addable<sim::SimTime, sim::SimTime>::value);
static_assert(!comparable<sim::SimTime, sim::SimDuration>::value);
static_assert(!std::is_convertible_v<sim::SimTime, sim::SimDuration>);
static_assert(!std::is_convertible_v<sim::SimDuration, sim::SimTime>);

TEST(TimeSplitTest, InstantDurationAlgebraIdentities) {
  const sim::SimDuration d = sim::SimDuration::milliseconds(250);
  const sim::SimTime t = sim::SimTime::at(d);
  EXPECT_EQ(t.ns(), d.ns());
  EXPECT_EQ((t + d) - t, d);            // (instant + span) - instant
  EXPECT_EQ(t - d, sim::SimTime::zero());
  EXPECT_EQ(sim::SimTime::zero() + d, t);
}

}  // namespace
}  // namespace intsched::core
