// Ranking tie-break determinism: equal-metric candidates must rank in the
// documented stable order (ascending server id) no matter how the
// NetworkMap's hash tables happened to be populated or rehashed, and no
// matter the order the candidate list arrives in. This is the contract
// that keeps same-seed experiment reports byte-identical.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"

namespace intsched::core {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

std::vector<core::NodeId> nids(std::initializer_list<std::int32_t> raw) {
  std::vector<core::NodeId> out;
  for (const std::int32_t v : raw) out.emplace_back(v);
  return out;
}

net::IntStackEntry entry(core::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t q,
                         sim::SimDuration latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = q;
  e.device_max_queue_pkts = q;
  e.ingress_link_latency = latency;
  return e;
}

/// One probe teaching the map the path: host 0 -> switch 10 -> `server`.
telemetry::ProbeReport star_probe(core::NodeId server, std::int64_t q) {
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = server;
  r.entries = {entry(core::NodeId{10}, 0, server.value(), q, ms(10))};
  r.final_link_latency = ms(10);
  return r;
}

/// Star topology with identical spokes: every server in `servers` sits one
/// identical hop behind switch 10, so all delay and bandwidth estimates
/// tie exactly. Probes are ingested in the order given, which controls the
/// hash maps' insertion history.
NetworkMap make_star(const std::vector<core::NodeId>& servers,
                     std::int64_t q = 0) {
  NetworkMap map;
  for (const core::NodeId s : servers) map.ingest(star_probe(s, q), at_ms(0));
  return map;
}

std::vector<core::NodeId> ranked_ids(const NetworkMap& map,
                                    const std::vector<core::NodeId>& cands,
                                    RankingMetric metric) {
  Ranker ranker{map};
  std::vector<core::NodeId> ids;
  for (const ServerRank& r : ranker.rank(core::NodeId{0}, cands, metric, at_ms(10))) {
    ids.push_back(r.server);
  }
  return ids;
}

TEST(RankingDeterminismTest, EqualDelayTiesBreakAscendingByServerId) {
  const std::vector<core::NodeId> servers = nids({5, 3, 4, 1, 2});
  NetworkMap map = make_star(servers);
  EXPECT_EQ(ranked_ids(map, servers, RankingMetric::kDelay),
            nids({1, 2, 3, 4, 5}));
}

TEST(RankingDeterminismTest, EqualBandwidthTiesBreakAscendingByServerId) {
  const std::vector<core::NodeId> servers = nids({4, 2, 5, 1, 3});
  NetworkMap map = make_star(servers, 3);  // equal congestion everywhere
  EXPECT_EQ(ranked_ids(map, servers, RankingMetric::kBandwidth),
            nids({1, 2, 3, 4, 5}));
}

TEST(RankingDeterminismTest, OrderIndependentOfCandidateListOrder) {
  const std::vector<core::NodeId> servers = nids({1, 2, 3, 4, 5});
  NetworkMap map = make_star(servers);
  const std::vector<core::NodeId> reference =
      ranked_ids(map, servers, RankingMetric::kDelay);
  // Every permutation of a 5-element candidate list must rank identically.
  std::vector<core::NodeId> perm = servers;
  do {
    EXPECT_EQ(ranked_ids(map, perm, RankingMetric::kDelay), reference);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(RankingDeterminismTest, OrderIndependentOfIngestInsertionOrder) {
  // Same topology taught in opposite probe orders: the hash maps end up
  // with different bucket layouts, but ranking must not notice.
  std::vector<core::NodeId> fwd = nids({1, 2, 3, 4, 5});
  std::vector<core::NodeId> rev = nids({5, 4, 3, 2, 1});
  NetworkMap a = make_star(fwd);
  NetworkMap b = make_star(rev);
  EXPECT_EQ(ranked_ids(a, fwd, RankingMetric::kDelay),
            ranked_ids(b, fwd, RankingMetric::kDelay));
  EXPECT_EQ(ranked_ids(a, fwd, RankingMetric::kBandwidth),
            ranked_ids(b, fwd, RankingMetric::kBandwidth));
}

TEST(RankingDeterminismTest, OrderSurvivesRehash) {
  const std::vector<core::NodeId> servers = nids({5, 3, 4, 1, 2});
  NetworkMap map = make_star(servers);
  const std::vector<core::NodeId> before =
      ranked_ids(map, servers, RankingMetric::kDelay);
  // Flood the map with unrelated spokes so its unordered_maps grow well
  // past their initial bucket counts and rehash; none of the new nodes is
  // on a candidate path, so the ranking inputs are unchanged.
  for (core::NodeId extra = core::NodeId{100}; extra < core::NodeId{400}; ++extra) {
    map.ingest(star_probe(extra, 0), at_ms(0));
  }
  EXPECT_EQ(ranked_ids(map, servers, RankingMetric::kDelay), before);
  EXPECT_EQ(before, nids({1, 2, 3, 4, 5}));
}

TEST(RankingDeterminismTest, UnreachableCandidatesTieBreakToo) {
  // Unreachable servers all tie at delay = max(); they must still appear
  // in ascending-id order after the reachable ones.
  NetworkMap map = make_star({core::NodeId{1}, core::NodeId{2}});
  const std::vector<core::NodeId> cands = nids({9, 2, 8, 1, 7});
  EXPECT_EQ(ranked_ids(map, cands, RankingMetric::kDelay),
            nids({1, 2, 7, 8, 9}));
}

}  // namespace
}  // namespace intsched::core
