// Ranking tie-break determinism: equal-metric candidates must rank in the
// documented stable order (ascending server id) no matter how the
// NetworkMap's hash tables happened to be populated or rehashed, and no
// matter the order the candidate list arrives in. This is the contract
// that keeps same-seed experiment reports byte-identical.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/core/network_map.hpp"
#include "intsched/core/ranking.hpp"

namespace intsched::core {
namespace {

sim::SimTime ms(int v) { return sim::SimTime::milliseconds(v); }

net::IntStackEntry entry(net::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t q,
                         sim::SimTime latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = q;
  e.device_max_queue_pkts = q;
  e.ingress_link_latency = latency;
  return e;
}

/// One probe teaching the map the path: host 0 -> switch 10 -> `server`.
telemetry::ProbeReport star_probe(net::NodeId server, std::int64_t q) {
  telemetry::ProbeReport r;
  r.src = 0;
  r.dst = server;
  r.entries = {entry(10, 0, static_cast<std::int32_t>(server), q, ms(10))};
  r.final_link_latency = ms(10);
  return r;
}

/// Star topology with identical spokes: every server in `servers` sits one
/// identical hop behind switch 10, so all delay and bandwidth estimates
/// tie exactly. Probes are ingested in the order given, which controls the
/// hash maps' insertion history.
NetworkMap make_star(const std::vector<net::NodeId>& servers,
                     std::int64_t q = 0) {
  NetworkMap map;
  for (const net::NodeId s : servers) map.ingest(star_probe(s, q), ms(0));
  return map;
}

std::vector<net::NodeId> ranked_ids(const NetworkMap& map,
                                    const std::vector<net::NodeId>& cands,
                                    RankingMetric metric) {
  Ranker ranker{map};
  std::vector<net::NodeId> ids;
  for (const ServerRank& r : ranker.rank(0, cands, metric, ms(10))) {
    ids.push_back(r.server);
  }
  return ids;
}

TEST(RankingDeterminismTest, EqualDelayTiesBreakAscendingByServerId) {
  const std::vector<net::NodeId> servers{5, 3, 4, 1, 2};
  NetworkMap map = make_star(servers);
  EXPECT_EQ(ranked_ids(map, servers, RankingMetric::kDelay),
            (std::vector<net::NodeId>{1, 2, 3, 4, 5}));
}

TEST(RankingDeterminismTest, EqualBandwidthTiesBreakAscendingByServerId) {
  const std::vector<net::NodeId> servers{4, 2, 5, 1, 3};
  NetworkMap map = make_star(servers, 3);  // equal congestion everywhere
  EXPECT_EQ(ranked_ids(map, servers, RankingMetric::kBandwidth),
            (std::vector<net::NodeId>{1, 2, 3, 4, 5}));
}

TEST(RankingDeterminismTest, OrderIndependentOfCandidateListOrder) {
  const std::vector<net::NodeId> servers{1, 2, 3, 4, 5};
  NetworkMap map = make_star(servers);
  const std::vector<net::NodeId> reference =
      ranked_ids(map, servers, RankingMetric::kDelay);
  // Every permutation of a 5-element candidate list must rank identically.
  std::vector<net::NodeId> perm = servers;
  do {
    EXPECT_EQ(ranked_ids(map, perm, RankingMetric::kDelay), reference);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(RankingDeterminismTest, OrderIndependentOfIngestInsertionOrder) {
  // Same topology taught in opposite probe orders: the hash maps end up
  // with different bucket layouts, but ranking must not notice.
  std::vector<net::NodeId> fwd{1, 2, 3, 4, 5};
  std::vector<net::NodeId> rev{5, 4, 3, 2, 1};
  NetworkMap a = make_star(fwd);
  NetworkMap b = make_star(rev);
  EXPECT_EQ(ranked_ids(a, fwd, RankingMetric::kDelay),
            ranked_ids(b, fwd, RankingMetric::kDelay));
  EXPECT_EQ(ranked_ids(a, fwd, RankingMetric::kBandwidth),
            ranked_ids(b, fwd, RankingMetric::kBandwidth));
}

TEST(RankingDeterminismTest, OrderSurvivesRehash) {
  const std::vector<net::NodeId> servers{5, 3, 4, 1, 2};
  NetworkMap map = make_star(servers);
  const std::vector<net::NodeId> before =
      ranked_ids(map, servers, RankingMetric::kDelay);
  // Flood the map with unrelated spokes so its unordered_maps grow well
  // past their initial bucket counts and rehash; none of the new nodes is
  // on a candidate path, so the ranking inputs are unchanged.
  for (net::NodeId extra = 100; extra < 400; ++extra) {
    map.ingest(star_probe(extra, 0), ms(0));
  }
  EXPECT_EQ(ranked_ids(map, servers, RankingMetric::kDelay), before);
  EXPECT_EQ(before, (std::vector<net::NodeId>{1, 2, 3, 4, 5}));
}

TEST(RankingDeterminismTest, UnreachableCandidatesTieBreakToo) {
  // Unreachable servers all tie at delay = max(); they must still appear
  // in ascending-id order after the reachable ones.
  NetworkMap map = make_star({1, 2});
  const std::vector<net::NodeId> cands{9, 2, 8, 1, 7};
  EXPECT_EQ(ranked_ids(map, cands, RankingMetric::kDelay),
            (std::vector<net::NodeId>{1, 2, 7, 8, 9}));
}

}  // namespace
}  // namespace intsched::core
