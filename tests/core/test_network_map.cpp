// NetworkMap: topology inference from INT entry order, link-delay EWMA,
// queue freshness windows.
#include "intsched/core/network_map.hpp"

#include <gtest/gtest.h>

namespace intsched::core {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

net::IntStackEntry entry(core::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t port_q,
                         std::int64_t dev_q, sim::SimDuration link_latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = port_q;
  e.device_max_queue_pkts = dev_q;
  e.ingress_link_latency = link_latency;
  return e;
}

/// host 0 -> s10 -> s11 -> host 1 (the collector).
telemetry::ProbeReport simple_report(std::int64_t q10 = 0,
                                     std::int64_t q11 = 0) {
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  r.entries = {
      entry(core::NodeId{10}, 0, 2, q10, q10, ms(10)),
      entry(core::NodeId{11}, 1, 3, q11, q11, ms(12)),
  };
  r.final_link_latency = ms(9);
  return r;
}

TEST(NetworkMapTest, LearnsAdjacencyFromEntryOrder) {
  NetworkMap map;
  map.ingest(simple_report(), at_ms(0));
  EXPECT_TRUE(map.knows_node(core::NodeId{0}));
  EXPECT_TRUE(map.knows_node(core::NodeId{10}));
  EXPECT_TRUE(map.knows_node(core::NodeId{11}));
  EXPECT_TRUE(map.knows_node(core::NodeId{1}));
  // Both directions of every traversed link.
  EXPECT_EQ(map.known_link_count(), 6);
}

TEST(NetworkMapTest, LearnsEgressPortsBothDirections) {
  NetworkMap map;
  map.ingest(simple_report(), at_ms(0));
  EXPECT_EQ(map.egress_port(core::NodeId{10}, core::NodeId{11}), 2);  // forward: s10's egress
  EXPECT_EQ(map.egress_port(core::NodeId{11}, core::NodeId{10}), 1);  // reverse: s11's ingress port
  EXPECT_EQ(map.egress_port(core::NodeId{11}, core::NodeId{1}), 3);   // toward the collector
}

TEST(NetworkMapTest, LinkDelaysFromMeasurements) {
  NetworkMap map;
  map.ingest(simple_report(), at_ms(0));
  EXPECT_EQ(map.link_delay(core::NodeId{0}, core::NodeId{10}), ms(10));
  EXPECT_EQ(map.link_delay(core::NodeId{10}, core::NodeId{11}), ms(12));
  EXPECT_EQ(map.link_delay(core::NodeId{11}, core::NodeId{1}), ms(9));
}

TEST(NetworkMapTest, ReverseDirectionAssumedSymmetric) {
  NetworkMap map;
  map.ingest(simple_report(), at_ms(0));
  EXPECT_EQ(map.link_delay(core::NodeId{11}, core::NodeId{10}), ms(12));
  EXPECT_EQ(map.link_delay(core::NodeId{1}, core::NodeId{11}), ms(9));
}

TEST(NetworkMapTest, UnknownLinkUsesDefault) {
  NetworkMapConfig cfg;
  cfg.default_link_delay = ms(33);
  NetworkMap map{cfg};
  EXPECT_EQ(map.link_delay(core::NodeId{5}, core::NodeId{6}), ms(33));
}

TEST(NetworkMapTest, EwmaSmoothsLinkDelay) {
  NetworkMapConfig cfg;
  cfg.link_delay_alpha = 0.5;
  NetworkMap map{cfg};
  map.ingest(simple_report(), at_ms(0));  // s10->s11 = 12 ms
  telemetry::ProbeReport r2 = simple_report();
  r2.entries[1].ingress_link_latency = ms(20);
  map.ingest(r2, at_ms(100));
  EXPECT_EQ(map.link_delay(core::NodeId{10}, core::NodeId{11}), ms(16));  // 0.5*20 + 0.5*12
}

TEST(NetworkMapTest, DeviceMaxQueueWithinWindow) {
  NetworkMapConfig cfg;
  cfg.queue_window = ms(150);
  NetworkMap map{cfg};
  map.ingest(simple_report(7, 0), at_ms(0));
  EXPECT_EQ(map.device_max_queue(core::NodeId{10}, at_ms(100)), 7);
}

TEST(NetworkMapTest, StaleReportsExpire) {
  NetworkMapConfig cfg;
  cfg.queue_window = ms(150);
  NetworkMap map{cfg};
  map.ingest(simple_report(7, 0), at_ms(0));
  EXPECT_EQ(map.device_max_queue(core::NodeId{10}, at_ms(400)), 0);
}

TEST(NetworkMapTest, WindowKeepsMaxOfMultipleReports) {
  NetworkMapConfig cfg;
  cfg.queue_window = ms(150);
  NetworkMap map{cfg};
  map.ingest(simple_report(3, 0), at_ms(0));
  map.ingest(simple_report(9, 0), at_ms(50));
  map.ingest(simple_report(2, 0), at_ms(100));
  EXPECT_EQ(map.device_max_queue(core::NodeId{10}, at_ms(120)), 9);
}

TEST(NetworkMapTest, LinkMaxQueueUsesPortRegister) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries[0].max_queue_pkts = 4;        // port 2 (toward s11)
  r.entries[0].device_max_queue_pkts = 9; // some other port was busier
  map.ingest(r, at_ms(0));
  EXPECT_EQ(map.link_max_queue(core::NodeId{10}, core::NodeId{11}, at_ms(10)), 4);
  EXPECT_EQ(map.device_max_queue(core::NodeId{10}, at_ms(10)), 9);
}

TEST(NetworkMapTest, LinkMaxQueueFallsBackToDevice) {
  NetworkMap map;
  map.ingest(simple_report(6, 0), at_ms(0));
  // Link s10 -> host 0 (reverse direction) was never probed per-port;
  // the device-wide register of s10 is the conservative answer.
  EXPECT_EQ(map.link_max_queue(core::NodeId{10}, core::NodeId{0}, at_ms(10)), 6);
}

TEST(NetworkMapTest, UnknownDeviceQueueIsZero) {
  NetworkMap map;
  EXPECT_EQ(map.device_max_queue(core::NodeId{99}, at_ms(0)), 0);
  EXPECT_EQ(map.link_max_queue(core::NodeId{99}, core::NodeId{98}, at_ms(0)), 0);
}

TEST(NetworkMapTest, DelayGraphUsesCurrentEstimates) {
  NetworkMapConfig cfg;
  cfg.link_delay_alpha = 1.0;  // adopt newest sample outright
  NetworkMap map{cfg};
  map.ingest(simple_report(), at_ms(0));
  telemetry::ProbeReport r2 = simple_report();
  r2.entries[1].ingress_link_latency = ms(50);
  map.ingest(r2, at_ms(100));

  const net::Graph g = map.delay_graph();
  bool found = false;
  for (const auto& edge : g.adjacency.at(core::NodeId{10})) {
    if (edge.to == core::NodeId{11}) {
      EXPECT_EQ(edge.cost, ms(50));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NetworkMapTest, ReportsCounted) {
  NetworkMap map;
  map.ingest(simple_report(), at_ms(0));
  map.ingest(simple_report(), at_ms(100));
  EXPECT_EQ(map.reports_ingested(), 2);
}

TEST(NetworkMapTest, NegativeLatencySampleIgnored) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries[0].ingress_link_latency = sim::SimDuration::nanoseconds(-1);
  map.ingest(r, at_ms(0));
  // Falls back to the default estimate instead of adopting garbage.
  EXPECT_EQ(map.link_delay(core::NodeId{0}, core::NodeId{10}), map.config().default_link_delay);
}

TEST(NetworkMapTest, NegativeQueueValuesClampedToZero) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries[0].max_queue_pkts = -5;
  r.entries[0].device_max_queue_pkts = -9;
  map.ingest(r, at_ms(0));
  EXPECT_EQ(map.device_max_queue(core::NodeId{10}, at_ms(10)), 0);
  EXPECT_EQ(map.link_max_queue(core::NodeId{10}, core::NodeId{11}, at_ms(10)), 0);
}

TEST(NetworkMapTest, InvalidDeviceEntryRejectedNotLearned) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries.insert(r.entries.begin() + 1,
                   entry(core::kInvalidNode, 0, 0, 0, 0, ms(5)));
  map.ingest(r, at_ms(0));
  EXPECT_EQ(map.rejected_entries(), 1);
  EXPECT_FALSE(map.knows_node(core::kInvalidNode));
  // The surviving entries still stitch the path together correctly.
  EXPECT_TRUE(map.knows_node(core::NodeId{10}));
  EXPECT_TRUE(map.knows_node(core::NodeId{11}));
}

TEST(NetworkMapTest, OutOfOrderIngestIsSafe) {
  // Reports may arrive with decreasing timestamps (clock-skewed probes);
  // the freshness bookkeeping must take the max, not the latest arrival.
  NetworkMapConfig cfg;
  cfg.link_staleness = ms(200);
  NetworkMap map{cfg};
  map.ingest(simple_report(), at_ms(500));
  map.ingest(simple_report(), at_ms(100));  // late straggler
  EXPECT_FALSE(map.link_stale(core::NodeId{0}, core::NodeId{10}, at_ms(600)));
  EXPECT_TRUE(map.link_stale(core::NodeId{0}, core::NodeId{10}, at_ms(800)));
}

}  // namespace
}  // namespace intsched::core

// -- Link jitter tracking (paper §III-A: probes capture jitter) --

namespace intsched::core {
namespace {

telemetry::ProbeReport one_hop_report(sim::SimDuration latency) {
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  net::IntStackEntry e;
  e.device = core::NodeId{10};
  e.ingress_port = 0;
  e.egress_port = 1;
  e.ingress_link_latency = latency;
  r.entries = {e};
  r.final_link_latency = sim::SimDuration::milliseconds(10);
  return r;
}

TEST(NetworkMapJitterTest, StableLinkHasZeroJitter) {
  NetworkMap map;
  for (int i = 0; i < 10; ++i) {
    map.ingest(one_hop_report(sim::SimDuration::milliseconds(10)),
               sim::SimTime::milliseconds(100 * i));
  }
  EXPECT_EQ(map.link_jitter(core::NodeId{0}, core::NodeId{10}), sim::SimDuration::zero());
}

TEST(NetworkMapJitterTest, VariableLinkAccumulatesJitter) {
  NetworkMap map;
  for (int i = 0; i < 20; ++i) {
    const auto latency = sim::SimDuration::milliseconds(i % 2 == 0 ? 8 : 12);
    map.ingest(one_hop_report(latency), sim::SimTime::milliseconds(100 * i));
  }
  // Samples alternate +-2 ms around the mean: jitter settles near 2 ms.
  // intsched-lint: allow(raw-unit): fractional-ms bound check
  const double jitter_ms = map.link_jitter(core::NodeId{0}, core::NodeId{10}).to_milliseconds();
  EXPECT_GT(jitter_ms, 1.0);
  EXPECT_LT(jitter_ms, 3.0);
}

TEST(NetworkMapJitterTest, UnknownLinkReportsZero) {
  NetworkMap map;
  EXPECT_EQ(map.link_jitter(core::NodeId{5}, core::NodeId{6}), sim::SimDuration::zero());
}

TEST(NetworkMapJitterTest, ReverseDirectionFallsBack) {
  NetworkMap map;
  for (int i = 0; i < 20; ++i) {
    const auto latency = sim::SimDuration::milliseconds(i % 2 == 0 ? 5 : 15);
    map.ingest(one_hop_report(latency), sim::SimTime::milliseconds(100 * i));
  }
  EXPECT_GT(map.link_jitter(core::NodeId{10}, core::NodeId{0}), sim::SimDuration::zero());
  EXPECT_EQ(map.link_jitter(core::NodeId{10}, core::NodeId{0}), map.link_jitter(core::NodeId{0}, core::NodeId{10}));
}

}  // namespace
}  // namespace intsched::core

// -- Telemetry staleness (failure model: expire what probes stop refreshing) --

namespace intsched::core {
namespace {

sim::SimTime sms(int v) { return sim::SimTime::milliseconds(v); }
sim::SimDuration dms(int v) { return sim::SimDuration::milliseconds(v); }

telemetry::ProbeReport stale_report() {
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  net::IntStackEntry e;
  e.device = core::NodeId{10};
  e.ingress_port = 0;
  e.egress_port = 1;
  e.ingress_link_latency = dms(10);
  r.entries = {e};
  r.final_link_latency = dms(9);
  return r;
}

TEST(NetworkMapStalenessTest, FreshWithinWindowStaleBeyondIt) {
  NetworkMapConfig cfg;
  cfg.link_staleness = dms(200);
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(100));
  EXPECT_FALSE(map.link_stale(core::NodeId{0}, core::NodeId{10}, sms(250)));
  EXPECT_TRUE(map.link_stale(core::NodeId{0}, core::NodeId{10}, sms(301)));
}

TEST(NetworkMapStalenessTest, ReverseMeasurementRefreshesLink) {
  // Only the 0->10 direction is ever measured; queries about 10->0 use
  // the symmetric estimate and inherit its freshness.
  NetworkMapConfig cfg;
  cfg.link_staleness = dms(200);
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(100));
  EXPECT_FALSE(map.link_stale(core::NodeId{10}, core::NodeId{0}, sms(250)));
  EXPECT_TRUE(map.link_stale(core::NodeId{10}, core::NodeId{0}, sms(301)));
}

TEST(NetworkMapStalenessTest, NeverMeasuredLinkIsStale) {
  NetworkMapConfig cfg;
  cfg.link_staleness = dms(200);
  NetworkMap map{cfg};
  EXPECT_TRUE(map.link_stale(core::NodeId{4}, core::NodeId{5}, sms(0)));
}

TEST(NetworkMapStalenessTest, DisabledWindowNeverExpires) {
  NetworkMap map;  // link_staleness defaults to zero = disabled
  EXPECT_FALSE(map.link_stale(core::NodeId{4}, core::NodeId{5}, sms(0)));
  map.ingest(stale_report(), sms(0));
  EXPECT_FALSE(map.link_stale(core::NodeId{0}, core::NodeId{10}, sim::SimTime::seconds(3600)));
}

TEST(NetworkMapStalenessTest, PathStaleIfAnyHopIsStale) {
  NetworkMapConfig cfg;
  cfg.link_staleness = dms(200);
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(100));
  map.ingest(stale_report(), sms(400));  // refresh 0->10 only
  // Path 0 -> 10 -> 99: second hop never measured.
  EXPECT_TRUE(map.path_stale({core::NodeId{0}, core::NodeId{10}, core::NodeId{99}}, sms(450)));
  EXPECT_FALSE(map.path_stale({core::NodeId{0}, core::NodeId{10}}, sms(450)));
  // Degenerate paths can't be judged and are never stale.
  EXPECT_FALSE(map.path_stale({core::NodeId{0}}, sms(450)));
  EXPECT_FALSE(map.path_stale({}, sms(450)));
}

TEST(NetworkMapStalenessTest, HugeWindowDoesNotUnderflow) {
  // now - window must saturate, not wrap: a max() window means "never
  // expire", even queried at t=0. (Pinned: this is SimTime arithmetic on
  // the raw ns value, where naive subtraction would be signed overflow.)
  NetworkMapConfig cfg;
  cfg.link_staleness = sim::SimDuration::max();
  cfg.queue_window = sim::SimDuration::max();
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(0));
  EXPECT_FALSE(map.link_stale(core::NodeId{0}, core::NodeId{10}, sms(0)));
  EXPECT_FALSE(map.link_stale(core::NodeId{0}, core::NodeId{10}, sim::SimTime::seconds(100000)));
  EXPECT_EQ(map.device_max_queue(core::NodeId{10}, sim::SimTime::seconds(100000)),
            map.device_max_queue(core::NodeId{10}, sms(1)));
}

TEST(NetworkMapStalenessTest, QueriesAreTranslationInvariant) {
  // The same report ingested at t and t+X must answer window queries
  // identically at now and now+X: all comparisons live in SimTime, no
  // absolute epoch leaks in.
  const sim::SimDuration shift = sim::SimDuration::seconds(7200);
  NetworkMapConfig cfg;
  cfg.link_staleness = dms(200);
  cfg.queue_window = dms(150);
  NetworkMap a{cfg};
  NetworkMap b{cfg};
  telemetry::ProbeReport r = stale_report();
  r.entries[0].max_queue_pkts = 6;
  r.entries[0].device_max_queue_pkts = 6;
  a.ingest(r, sms(100));
  b.ingest(r, sms(100) + shift);
  for (const int probe_ms : {120, 240, 290, 310, 500}) {
    EXPECT_EQ(a.link_stale(core::NodeId{0}, core::NodeId{10}, sms(probe_ms)),
              b.link_stale(core::NodeId{0}, core::NodeId{10}, sms(probe_ms) + shift))
        << probe_ms;
    EXPECT_EQ(a.device_max_queue(core::NodeId{10}, sms(probe_ms)),
              b.device_max_queue(core::NodeId{10}, sms(probe_ms) + shift))
        << probe_ms;
  }
}

}  // namespace
}  // namespace intsched::core
