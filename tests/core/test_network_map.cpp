// NetworkMap: topology inference from INT entry order, link-delay EWMA,
// queue freshness windows.
#include "intsched/core/network_map.hpp"

#include <gtest/gtest.h>

namespace intsched::core {
namespace {

sim::SimTime ms(int v) { return sim::SimTime::milliseconds(v); }

net::IntStackEntry entry(net::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t port_q,
                         std::int64_t dev_q, sim::SimTime link_latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = port_q;
  e.device_max_queue_pkts = dev_q;
  e.ingress_link_latency = link_latency;
  return e;
}

/// host 0 -> s10 -> s11 -> host 1 (the collector).
telemetry::ProbeReport simple_report(std::int64_t q10 = 0,
                                     std::int64_t q11 = 0) {
  telemetry::ProbeReport r;
  r.src = 0;
  r.dst = 1;
  r.entries = {
      entry(10, 0, 2, q10, q10, ms(10)),
      entry(11, 1, 3, q11, q11, ms(12)),
  };
  r.final_link_latency = ms(9);
  return r;
}

TEST(NetworkMapTest, LearnsAdjacencyFromEntryOrder) {
  NetworkMap map;
  map.ingest(simple_report(), ms(0));
  EXPECT_TRUE(map.knows_node(0));
  EXPECT_TRUE(map.knows_node(10));
  EXPECT_TRUE(map.knows_node(11));
  EXPECT_TRUE(map.knows_node(1));
  // Both directions of every traversed link.
  EXPECT_EQ(map.known_link_count(), 6);
}

TEST(NetworkMapTest, LearnsEgressPortsBothDirections) {
  NetworkMap map;
  map.ingest(simple_report(), ms(0));
  EXPECT_EQ(map.egress_port(10, 11), 2);  // forward: s10's egress
  EXPECT_EQ(map.egress_port(11, 10), 1);  // reverse: s11's ingress port
  EXPECT_EQ(map.egress_port(11, 1), 3);   // toward the collector
}

TEST(NetworkMapTest, LinkDelaysFromMeasurements) {
  NetworkMap map;
  map.ingest(simple_report(), ms(0));
  EXPECT_EQ(map.link_delay(0, 10), ms(10));
  EXPECT_EQ(map.link_delay(10, 11), ms(12));
  EXPECT_EQ(map.link_delay(11, 1), ms(9));
}

TEST(NetworkMapTest, ReverseDirectionAssumedSymmetric) {
  NetworkMap map;
  map.ingest(simple_report(), ms(0));
  EXPECT_EQ(map.link_delay(11, 10), ms(12));
  EXPECT_EQ(map.link_delay(1, 11), ms(9));
}

TEST(NetworkMapTest, UnknownLinkUsesDefault) {
  NetworkMapConfig cfg;
  cfg.default_link_delay = ms(33);
  NetworkMap map{cfg};
  EXPECT_EQ(map.link_delay(5, 6), ms(33));
}

TEST(NetworkMapTest, EwmaSmoothsLinkDelay) {
  NetworkMapConfig cfg;
  cfg.link_delay_alpha = 0.5;
  NetworkMap map{cfg};
  map.ingest(simple_report(), ms(0));  // s10->s11 = 12 ms
  telemetry::ProbeReport r2 = simple_report();
  r2.entries[1].ingress_link_latency = ms(20);
  map.ingest(r2, ms(100));
  EXPECT_EQ(map.link_delay(10, 11), ms(16));  // 0.5*20 + 0.5*12
}

TEST(NetworkMapTest, DeviceMaxQueueWithinWindow) {
  NetworkMapConfig cfg;
  cfg.queue_window = ms(150);
  NetworkMap map{cfg};
  map.ingest(simple_report(7, 0), ms(0));
  EXPECT_EQ(map.device_max_queue(10, ms(100)), 7);
}

TEST(NetworkMapTest, StaleReportsExpire) {
  NetworkMapConfig cfg;
  cfg.queue_window = ms(150);
  NetworkMap map{cfg};
  map.ingest(simple_report(7, 0), ms(0));
  EXPECT_EQ(map.device_max_queue(10, ms(400)), 0);
}

TEST(NetworkMapTest, WindowKeepsMaxOfMultipleReports) {
  NetworkMapConfig cfg;
  cfg.queue_window = ms(150);
  NetworkMap map{cfg};
  map.ingest(simple_report(3, 0), ms(0));
  map.ingest(simple_report(9, 0), ms(50));
  map.ingest(simple_report(2, 0), ms(100));
  EXPECT_EQ(map.device_max_queue(10, ms(120)), 9);
}

TEST(NetworkMapTest, LinkMaxQueueUsesPortRegister) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries[0].max_queue_pkts = 4;        // port 2 (toward s11)
  r.entries[0].device_max_queue_pkts = 9; // some other port was busier
  map.ingest(r, ms(0));
  EXPECT_EQ(map.link_max_queue(10, 11, ms(10)), 4);
  EXPECT_EQ(map.device_max_queue(10, ms(10)), 9);
}

TEST(NetworkMapTest, LinkMaxQueueFallsBackToDevice) {
  NetworkMap map;
  map.ingest(simple_report(6, 0), ms(0));
  // Link s10 -> host 0 (reverse direction) was never probed per-port;
  // the device-wide register of s10 is the conservative answer.
  EXPECT_EQ(map.link_max_queue(10, 0, ms(10)), 6);
}

TEST(NetworkMapTest, UnknownDeviceQueueIsZero) {
  NetworkMap map;
  EXPECT_EQ(map.device_max_queue(99, ms(0)), 0);
  EXPECT_EQ(map.link_max_queue(99, 98, ms(0)), 0);
}

TEST(NetworkMapTest, DelayGraphUsesCurrentEstimates) {
  NetworkMapConfig cfg;
  cfg.link_delay_alpha = 1.0;  // adopt newest sample outright
  NetworkMap map{cfg};
  map.ingest(simple_report(), ms(0));
  telemetry::ProbeReport r2 = simple_report();
  r2.entries[1].ingress_link_latency = ms(50);
  map.ingest(r2, ms(100));

  const net::Graph g = map.delay_graph();
  bool found = false;
  for (const auto& edge : g.adjacency.at(10)) {
    if (edge.to == 11) {
      EXPECT_EQ(edge.cost, ms(50));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NetworkMapTest, ReportsCounted) {
  NetworkMap map;
  map.ingest(simple_report(), ms(0));
  map.ingest(simple_report(), ms(100));
  EXPECT_EQ(map.reports_ingested(), 2);
}

TEST(NetworkMapTest, NegativeLatencySampleIgnored) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries[0].ingress_link_latency = sim::SimTime::nanoseconds(-1);
  map.ingest(r, ms(0));
  // Falls back to the default estimate instead of adopting garbage.
  EXPECT_EQ(map.link_delay(0, 10), map.config().default_link_delay);
}

TEST(NetworkMapTest, NegativeQueueValuesClampedToZero) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries[0].max_queue_pkts = -5;
  r.entries[0].device_max_queue_pkts = -9;
  map.ingest(r, ms(0));
  EXPECT_EQ(map.device_max_queue(10, ms(10)), 0);
  EXPECT_EQ(map.link_max_queue(10, 11, ms(10)), 0);
}

TEST(NetworkMapTest, InvalidDeviceEntryRejectedNotLearned) {
  NetworkMap map;
  telemetry::ProbeReport r = simple_report();
  r.entries.insert(r.entries.begin() + 1,
                   entry(net::kInvalidNode, 0, 0, 0, 0, ms(5)));
  map.ingest(r, ms(0));
  EXPECT_EQ(map.rejected_entries(), 1);
  EXPECT_FALSE(map.knows_node(net::kInvalidNode));
  // The surviving entries still stitch the path together correctly.
  EXPECT_TRUE(map.knows_node(10));
  EXPECT_TRUE(map.knows_node(11));
}

TEST(NetworkMapTest, OutOfOrderIngestIsSafe) {
  // Reports may arrive with decreasing timestamps (clock-skewed probes);
  // the freshness bookkeeping must take the max, not the latest arrival.
  NetworkMapConfig cfg;
  cfg.link_staleness = ms(200);
  NetworkMap map{cfg};
  map.ingest(simple_report(), ms(500));
  map.ingest(simple_report(), ms(100));  // late straggler
  EXPECT_FALSE(map.link_stale(0, 10, ms(600)));
  EXPECT_TRUE(map.link_stale(0, 10, ms(800)));
}

}  // namespace
}  // namespace intsched::core

// -- Link jitter tracking (paper §III-A: probes capture jitter) --

namespace intsched::core {
namespace {

telemetry::ProbeReport one_hop_report(sim::SimTime latency) {
  telemetry::ProbeReport r;
  r.src = 0;
  r.dst = 1;
  net::IntStackEntry e;
  e.device = 10;
  e.ingress_port = 0;
  e.egress_port = 1;
  e.ingress_link_latency = latency;
  r.entries = {e};
  r.final_link_latency = sim::SimTime::milliseconds(10);
  return r;
}

TEST(NetworkMapJitterTest, StableLinkHasZeroJitter) {
  NetworkMap map;
  for (int i = 0; i < 10; ++i) {
    map.ingest(one_hop_report(sim::SimTime::milliseconds(10)),
               sim::SimTime::milliseconds(100 * i));
  }
  EXPECT_EQ(map.link_jitter(0, 10), sim::SimTime::zero());
}

TEST(NetworkMapJitterTest, VariableLinkAccumulatesJitter) {
  NetworkMap map;
  for (int i = 0; i < 20; ++i) {
    const auto latency = sim::SimTime::milliseconds(i % 2 == 0 ? 8 : 12);
    map.ingest(one_hop_report(latency), sim::SimTime::milliseconds(100 * i));
  }
  // Samples alternate +-2 ms around the mean: jitter settles near 2 ms.
  const double jitter_ms = map.link_jitter(0, 10).to_milliseconds();
  EXPECT_GT(jitter_ms, 1.0);
  EXPECT_LT(jitter_ms, 3.0);
}

TEST(NetworkMapJitterTest, UnknownLinkReportsZero) {
  NetworkMap map;
  EXPECT_EQ(map.link_jitter(5, 6), sim::SimTime::zero());
}

TEST(NetworkMapJitterTest, ReverseDirectionFallsBack) {
  NetworkMap map;
  for (int i = 0; i < 20; ++i) {
    const auto latency = sim::SimTime::milliseconds(i % 2 == 0 ? 5 : 15);
    map.ingest(one_hop_report(latency), sim::SimTime::milliseconds(100 * i));
  }
  EXPECT_GT(map.link_jitter(10, 0), sim::SimTime::zero());
  EXPECT_EQ(map.link_jitter(10, 0), map.link_jitter(0, 10));
}

}  // namespace
}  // namespace intsched::core

// -- Telemetry staleness (failure model: expire what probes stop refreshing) --

namespace intsched::core {
namespace {

sim::SimTime sms(int v) { return sim::SimTime::milliseconds(v); }

telemetry::ProbeReport stale_report() {
  telemetry::ProbeReport r;
  r.src = 0;
  r.dst = 1;
  net::IntStackEntry e;
  e.device = 10;
  e.ingress_port = 0;
  e.egress_port = 1;
  e.ingress_link_latency = sms(10);
  r.entries = {e};
  r.final_link_latency = sms(9);
  return r;
}

TEST(NetworkMapStalenessTest, FreshWithinWindowStaleBeyondIt) {
  NetworkMapConfig cfg;
  cfg.link_staleness = sms(200);
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(100));
  EXPECT_FALSE(map.link_stale(0, 10, sms(250)));
  EXPECT_TRUE(map.link_stale(0, 10, sms(301)));
}

TEST(NetworkMapStalenessTest, ReverseMeasurementRefreshesLink) {
  // Only the 0->10 direction is ever measured; queries about 10->0 use
  // the symmetric estimate and inherit its freshness.
  NetworkMapConfig cfg;
  cfg.link_staleness = sms(200);
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(100));
  EXPECT_FALSE(map.link_stale(10, 0, sms(250)));
  EXPECT_TRUE(map.link_stale(10, 0, sms(301)));
}

TEST(NetworkMapStalenessTest, NeverMeasuredLinkIsStale) {
  NetworkMapConfig cfg;
  cfg.link_staleness = sms(200);
  NetworkMap map{cfg};
  EXPECT_TRUE(map.link_stale(4, 5, sms(0)));
}

TEST(NetworkMapStalenessTest, DisabledWindowNeverExpires) {
  NetworkMap map;  // link_staleness defaults to zero = disabled
  EXPECT_FALSE(map.link_stale(4, 5, sms(0)));
  map.ingest(stale_report(), sms(0));
  EXPECT_FALSE(map.link_stale(0, 10, sim::SimTime::seconds(3600)));
}

TEST(NetworkMapStalenessTest, PathStaleIfAnyHopIsStale) {
  NetworkMapConfig cfg;
  cfg.link_staleness = sms(200);
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(100));
  map.ingest(stale_report(), sms(400));  // refresh 0->10 only
  // Path 0 -> 10 -> 99: second hop never measured.
  EXPECT_TRUE(map.path_stale({0, 10, 99}, sms(450)));
  EXPECT_FALSE(map.path_stale({0, 10}, sms(450)));
  // Degenerate paths can't be judged and are never stale.
  EXPECT_FALSE(map.path_stale({0}, sms(450)));
  EXPECT_FALSE(map.path_stale({}, sms(450)));
}

TEST(NetworkMapStalenessTest, HugeWindowDoesNotUnderflow) {
  // now - window must saturate, not wrap: a max() window means "never
  // expire", even queried at t=0. (Pinned: this is SimTime arithmetic on
  // the raw ns value, where naive subtraction would be signed overflow.)
  NetworkMapConfig cfg;
  cfg.link_staleness = sim::SimTime::max();
  cfg.queue_window = sim::SimTime::max();
  NetworkMap map{cfg};
  map.ingest(stale_report(), sms(0));
  EXPECT_FALSE(map.link_stale(0, 10, sms(0)));
  EXPECT_FALSE(map.link_stale(0, 10, sim::SimTime::seconds(100000)));
  EXPECT_EQ(map.device_max_queue(10, sim::SimTime::seconds(100000)),
            map.device_max_queue(10, sms(1)));
}

TEST(NetworkMapStalenessTest, QueriesAreTranslationInvariant) {
  // The same report ingested at t and t+X must answer window queries
  // identically at now and now+X: all comparisons live in SimTime, no
  // absolute epoch leaks in.
  const sim::SimTime shift = sim::SimTime::seconds(7200);
  NetworkMapConfig cfg;
  cfg.link_staleness = sms(200);
  cfg.queue_window = sms(150);
  NetworkMap a{cfg};
  NetworkMap b{cfg};
  telemetry::ProbeReport r = stale_report();
  r.entries[0].max_queue_pkts = 6;
  r.entries[0].device_max_queue_pkts = 6;
  a.ingest(r, sms(100));
  b.ingest(r, sms(100) + shift);
  for (const int probe_ms : {120, 240, 290, 310, 500}) {
    EXPECT_EQ(a.link_stale(0, 10, sms(probe_ms)),
              b.link_stale(0, 10, sms(probe_ms) + shift))
        << probe_ms;
    EXPECT_EQ(a.device_max_queue(10, sms(probe_ms)),
              b.device_max_queue(10, sms(probe_ms) + shift))
        << probe_ms;
  }
}

}  // namespace
}  // namespace intsched::core
