#include "intsched/core/policies.hpp"

#include <gtest/gtest.h>

#include <set>

#include "intsched/exp/fig4.hpp"

namespace intsched::core {
namespace {

struct PoliciesFixture : ::testing::Test {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<core::NodeId> servers = network.host_ids();
};

TEST_F(PoliciesFixture, NearestPrefersPodSibling) {
  NearestPolicy nearest{network.topology(), servers};
  // Paper: node 7 and node 8 (ids 6, 7) are each other's nearest.
  EXPECT_EQ(nearest.order_for(core::NodeId{6}).front(), core::NodeId{7});
  EXPECT_EQ(nearest.order_for(core::NodeId{7}).front(), core::NodeId{6});
  EXPECT_EQ(nearest.order_for(core::NodeId{0}).front(), core::NodeId{1});
  EXPECT_EQ(nearest.order_for(core::NodeId{1}).front(), core::NodeId{0});
}

TEST_F(PoliciesFixture, NearestOrderExcludesSelf) {
  NearestPolicy nearest{network.topology(), servers};
  for (core::NodeId device = core::NodeId{0}; device < core::NodeId{8}; ++device) {
    const auto& order = nearest.order_for(device);
    EXPECT_EQ(order.size(), 7u);
    for (const core::NodeId s : order) EXPECT_NE(s, device);
  }
}

TEST_F(PoliciesFixture, NearestOrderSortedByGroundTruthDelay) {
  NearestPolicy nearest{network.topology(), servers};
  const auto& order = nearest.order_for(core::NodeId{0});
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(network.topology().path_delay(core::NodeId{0}, order[i - 1]),
              network.topology().path_delay(core::NodeId{0}, order[i]));
  }
}

TEST_F(PoliciesFixture, NearestSelectReturnsTopN) {
  NearestPolicy nearest{network.topology(), servers};
  std::vector<core::NodeId> chosen;
  nearest.select(core::NodeId{6}, 3, [&](std::vector<core::NodeId> s) { chosen = s; });
  ASSERT_EQ(chosen.size(), 3u);
  EXPECT_EQ(chosen[0], core::NodeId{7});  // pod sibling first
}

TEST_F(PoliciesFixture, NearestUnknownDeviceThrows) {
  NearestPolicy nearest{network.topology(), servers};
  EXPECT_THROW(static_cast<void>(nearest.order_for(core::NodeId{99})),
               std::invalid_argument);
}

TEST_F(PoliciesFixture, RandomSelectsDistinctServers) {
  RandomPolicy random{servers, sim::Rng{7}};
  std::vector<core::NodeId> chosen;
  random.select(core::NodeId{3}, 3, [&](std::vector<core::NodeId> s) { chosen = s; });
  ASSERT_EQ(chosen.size(), 3u);
  const std::set<core::NodeId> uniq(chosen.begin(), chosen.end());
  EXPECT_EQ(uniq.size(), 3u);
  for (const core::NodeId s : chosen) EXPECT_NE(s, core::NodeId{3});
}

TEST_F(PoliciesFixture, RandomNeverPicksSelf) {
  RandomPolicy random{servers, sim::Rng{7}};
  for (int trial = 0; trial < 50; ++trial) {
    random.select(core::NodeId{0}, 1, [&](std::vector<core::NodeId> s) {
      ASSERT_EQ(s.size(), 1u);
      EXPECT_NE(s[0], core::NodeId{0});
    });
  }
}

TEST_F(PoliciesFixture, RandomIsDeterministicPerSeed) {
  RandomPolicy r1{servers, sim::Rng{5}};
  RandomPolicy r2{servers, sim::Rng{5}};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::NodeId> a;
    std::vector<core::NodeId> b;
    r1.select(core::NodeId{0}, 3, [&](std::vector<core::NodeId> s) { a = s; });
    r2.select(core::NodeId{0}, 3, [&](std::vector<core::NodeId> s) { b = s; });
    EXPECT_EQ(a, b);
  }
}

TEST_F(PoliciesFixture, RandomCoversAllServersEventually) {
  RandomPolicy random{servers, sim::Rng{11}};
  std::set<core::NodeId> seen;
  for (int trial = 0; trial < 200; ++trial) {
    random.select(core::NodeId{0}, 1, [&](std::vector<core::NodeId> s) {
      seen.insert(s[0]);
    });
  }
  EXPECT_EQ(seen.size(), 7u);  // every server except the device itself
}

TEST_F(PoliciesFixture, KindMapping) {
  NearestPolicy nearest{network.topology(), servers};
  RandomPolicy random{servers, sim::Rng{1}};
  EXPECT_EQ(nearest.kind(), PolicyKind::kNearest);
  EXPECT_EQ(random.kind(), PolicyKind::kRandom);
}

TEST(PolicyNamesTest, ToString) {
  EXPECT_STREQ(to_string(PolicyKind::kIntDelay), "int-delay");
  EXPECT_STREQ(to_string(PolicyKind::kIntBandwidth), "int-bandwidth");
  EXPECT_STREQ(to_string(PolicyKind::kNearest), "nearest");
  EXPECT_STREQ(to_string(PolicyKind::kRandom), "random");
}

}  // namespace
}  // namespace intsched::core
