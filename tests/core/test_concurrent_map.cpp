// ConcurrentNetworkMap: the locked ingest-vs-rank facade. The concurrent
// tests drive real parallelism through exp::SweepRunner (the sanctioned
// pool) and assert only interleaving-insensitive facts — totals after the
// join, and the final converged ranking — so they pass under any schedule
// while giving ThreadSanitizer (the `tsan` preset) real cross-thread
// traffic over every lock path.

#include "intsched/core/concurrent_map.hpp"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/exp/sweep_runner.hpp"

namespace intsched::core {
namespace {

sim::SimTime ms(int v) { return sim::SimTime::milliseconds(v); }

net::IntStackEntry entry(net::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t queue,
                         sim::SimTime link_latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = queue;
  e.device_max_queue_pkts = queue;
  e.ingress_link_latency = link_latency;
  return e;
}

/// host 0 -> s10 -> s11 -> host 1 (candidate server / collector).
telemetry::ProbeReport simple_report(std::int64_t q10 = 0,
                                     std::int64_t q11 = 0) {
  telemetry::ProbeReport r;
  r.src = 0;
  r.dst = 1;
  r.entries = {
      entry(10, 0, 2, q10, ms(10)),
      entry(11, 1, 3, q11, ms(12)),
  };
  r.final_link_latency = ms(9);
  return r;
}

TEST(ConcurrentNetworkMapTest, SingleThreadedBehaviourMatchesNetworkMap) {
  ConcurrentNetworkMap shared;
  shared.ingest(simple_report(), ms(0));

  NetworkMap plain;
  plain.ingest(simple_report(), ms(0));

  EXPECT_TRUE(shared.knows_node(10));
  EXPECT_EQ(shared.reports_ingested(), 1);
  EXPECT_EQ(shared.rejected_entries(), 0);
  EXPECT_EQ(shared.link_delay(0, 10), plain.link_delay(0, 10));
  EXPECT_EQ(shared.link_delay(10, 11), plain.link_delay(10, 11));
}

TEST(ConcurrentNetworkMapTest, RankMatchesDirectRankerAndCountsQueries) {
  ConcurrentNetworkMap shared;
  shared.ingest(simple_report(), ms(0));

  NetworkMap plain;
  plain.ingest(simple_report(), ms(0));
  const Ranker ranker{plain};

  const std::vector<net::NodeId> candidates{1};
  const std::vector<ServerRank> got =
      shared.rank(0, candidates, RankingMetric::kDelay, ms(1));
  const std::vector<ServerRank> want =
      ranker.rank(0, candidates, RankingMetric::kDelay, ms(1));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].server, want[0].server);
  EXPECT_EQ(got[0].delay_estimate, want[0].delay_estimate);
  EXPECT_EQ(got[0].bandwidth_estimate.bps(), want[0].bandwidth_estimate.bps());
  EXPECT_EQ(shared.queries_served(), 1);
}

TEST(ConcurrentNetworkMapTest, ConcurrentIngestAndRankKeepTotalsExact) {
  constexpr int kIngestTasks = 4;
  constexpr int kRankTasks = 4;
  constexpr int kOpsPerTask = 50;

  ConcurrentNetworkMap shared;
  // Seed the topology so rank tasks have a graph from the first instant.
  shared.ingest(simple_report(), ms(0));

  const std::vector<net::NodeId> candidates{1, 99};
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < kIngestTasks; ++t) {
    tasks.push_back([&shared, t] {
      for (int i = 0; i < kOpsPerTask; ++i) {
        // Distinct queue values and times per task: every ingest really
        // mutates the EWMAs, windows, and the ranker's cache epoch.
        shared.ingest(simple_report(i % 7, (i + t) % 5), ms(1 + i));
      }
    });
  }
  for (int t = 0; t < kRankTasks; ++t) {
    tasks.push_back([&shared, &candidates] {
      for (int i = 0; i < kOpsPerTask; ++i) {
        const std::vector<ServerRank> ranked =
            shared.rank(0, candidates, RankingMetric::kDelay, ms(1 + i));
        // Interleaving-insensitive: shape and ordering policy only.
        ASSERT_EQ(ranked.size(), candidates.size());
        EXPECT_LE(ranked[0].delay_estimate, ranked[1].delay_estimate);
      }
    });
  }

  const exp::SweepRunner runner{4};
  runner.run(std::move(tasks));

  EXPECT_EQ(shared.reports_ingested(), 1 + kIngestTasks * kOpsPerTask);
  EXPECT_EQ(shared.queries_served(), kRankTasks * kOpsPerTask);

  // After the join the state has quiesced: ranking is deterministic again.
  const std::vector<ServerRank> final_rank =
      shared.rank(0, candidates, RankingMetric::kDelay, ms(kOpsPerTask));
  ASSERT_EQ(final_rank.size(), 2u);
  EXPECT_EQ(final_rank[0].server, 1);
  EXPECT_EQ(final_rank[1].server, 99);  // never probed: unreachable, last
}

}  // namespace
}  // namespace intsched::core
