// ConcurrentNetworkMap: the ingest-vs-rank facade in both of its modes —
// kSnapshot (RCU-style published snapshots, lock-free reads) and
// kLockedFacade (single exclusive mutex). The concurrent tests drive real
// parallelism through exp::SweepRunner (the sanctioned pool) and assert
// only interleaving-insensitive facts — totals after the join, and the
// final converged ranking — so they pass under any schedule while giving
// ThreadSanitizer (the `tsan` preset) real cross-thread traffic over both
// the lock paths and the lock-free snapshot path. The two modes must be
// behaviourally indistinguishable at quiescence: byte-identical ServerRank
// vectors for the same ingest sequence (the A/B contract).

#include "intsched/core/concurrent_map.hpp"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "intsched/exp/sweep_runner.hpp"

namespace intsched::core {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

net::IntStackEntry entry(core::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t queue,
                         sim::SimDuration link_latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = queue;
  e.device_max_queue_pkts = queue;
  e.ingress_link_latency = link_latency;
  return e;
}

/// host 0 -> s10 -> s11 -> host 1 (candidate server / collector).
telemetry::ProbeReport simple_report(std::int64_t q10 = 0,
                                     std::int64_t q11 = 0) {
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  r.entries = {
      entry(core::NodeId{10}, 0, 2, q10, ms(10)),
      entry(core::NodeId{11}, 1, 3, q11, ms(12)),
  };
  r.final_link_latency = ms(9);
  return r;
}

/// Field-exact ServerRank equality — the byte-identity contract between
/// the snapshot path and the locked facade (and the direct Ranker).
void expect_ranks_identical(const std::vector<ServerRank>& got,
                            const std::vector<ServerRank>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].server, want[i].server) << "rank " << i;
    EXPECT_EQ(got[i].delay_estimate, want[i].delay_estimate) << "rank " << i;
    EXPECT_EQ(got[i].bandwidth_estimate.bps(),
              want[i].bandwidth_estimate.bps())
        << "rank " << i;
    EXPECT_EQ(got[i].baseline_delay, want[i].baseline_delay) << "rank " << i;
    EXPECT_EQ(got[i].outstanding_tasks, want[i].outstanding_tasks)
        << "rank " << i;
    EXPECT_EQ(got[i].stale, want[i].stale) << "rank " << i;
  }
}

class ConcurrentMapModes : public ::testing::TestWithParam<ConcurrencyMode> {};

INSTANTIATE_TEST_SUITE_P(
    BothModes, ConcurrentMapModes,
    ::testing::Values(ConcurrencyMode::kSnapshot,
                      ConcurrencyMode::kLockedFacade),
    [](const ::testing::TestParamInfo<ConcurrencyMode>& param_info) {
      return std::string{to_string(param_info.param)};
    });

TEST_P(ConcurrentMapModes, SingleThreadedBehaviourMatchesNetworkMap) {
  ConcurrentNetworkMap shared{{}, {}, GetParam()};
  shared.ingest(simple_report(), at_ms(0));

  NetworkMap plain;
  plain.ingest(simple_report(), at_ms(0));

  EXPECT_TRUE(shared.knows_node(core::NodeId{10}));
  EXPECT_EQ(shared.reports_ingested(), 1);
  EXPECT_EQ(shared.rejected_entries(), 0);
  EXPECT_EQ(shared.link_delay(core::NodeId{0}, core::NodeId{10}), plain.link_delay(core::NodeId{0}, core::NodeId{10}));
  EXPECT_EQ(shared.link_delay(core::NodeId{10}, core::NodeId{11}), plain.link_delay(core::NodeId{10}, core::NodeId{11}));
}

TEST_P(ConcurrentMapModes, RankMatchesDirectRankerAndCountsQueries) {
  ConcurrentNetworkMap shared{{}, {}, GetParam()};
  shared.ingest(simple_report(), at_ms(0));

  NetworkMap plain;
  plain.ingest(simple_report(), at_ms(0));
  const Ranker ranker{plain};

  const std::vector<core::NodeId> candidates{core::NodeId{1}};
  const std::vector<ServerRank> got =
      shared.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));
  const std::vector<ServerRank> want =
      ranker.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));

  expect_ranks_identical(got, want);
  EXPECT_EQ(shared.queries_served(), 1);
}

TEST_P(ConcurrentMapModes, IngestBatchMatchesSequentialIngests) {
  ConcurrentNetworkMap batched{{}, {}, GetParam()};
  ConcurrentNetworkMap sequential{{}, {}, GetParam()};

  std::vector<telemetry::ProbeReport> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(simple_report(i % 5, (i * 3) % 7));
  }
  batched.ingest_batch(burst, at_ms(5));
  for (const auto& r : burst) sequential.ingest(r, at_ms(5));

  EXPECT_EQ(batched.reports_ingested(), sequential.reports_ingested());
  const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{99}};
  for (const auto metric :
       {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
    expect_ranks_identical(batched.rank(core::NodeId{0}, candidates, metric, at_ms(6)),
                           sequential.rank(core::NodeId{0}, candidates, metric, at_ms(6)));
  }
}

TEST_P(ConcurrentMapModes, EmptyBatchIsANoOp) {
  ConcurrentNetworkMap shared{{}, {}, GetParam()};
  shared.ingest_batch({}, at_ms(0));
  EXPECT_EQ(shared.reports_ingested(), 0);
}

// Regression (satellite): a k-factor change between ingests must take
// effect on the very next rank. On the snapshot path this requires
// set_k_factor to republish — an already-published snapshot carries the
// config it was built under, so without the republish the old k would be
// served until the next ingest.
TEST_P(ConcurrentMapModes, KFactorChangeAppliesWithoutNewIngest) {
  ConcurrentNetworkMap shared{{}, {}, GetParam()};
  shared.ingest(simple_report(6, 4), at_ms(0));

  const std::vector<core::NodeId> candidates{core::NodeId{1}};
  const std::vector<ServerRank> before =
      shared.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));

  shared.set_k_factor(ms(50));
  const std::vector<ServerRank> after =
      shared.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));

  NetworkMap plain;
  plain.ingest(simple_report(6, 4), at_ms(0));
  RankerConfig cfg;
  cfg.k_factor = ms(50);
  const Ranker ranker{plain, cfg};
  const std::vector<ServerRank> want =
      ranker.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1));

  ASSERT_EQ(before.size(), 1u);
  EXPECT_NE(before[0].delay_estimate, after[0].delay_estimate)
      << "k change had no effect on the next rank";
  expect_ranks_identical(after, want);
}

// The A/B contract: for the same ingest sequence the snapshot path and
// the locked facade return byte-identical ServerRank vectors at every
// step, for both metrics.
TEST(ConcurrentNetworkMapTest, ModesAreByteIdenticalOverAnIngestSequence) {
  ConcurrentNetworkMap snap{{}, {}, ConcurrencyMode::kSnapshot};
  ConcurrentNetworkMap locked{{}, {}, ConcurrencyMode::kLockedFacade};

  const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{99}};
  for (int i = 0; i < 20; ++i) {
    const telemetry::ProbeReport r = simple_report(i % 7, (i * 5) % 11);
    snap.ingest(r, at_ms(i));
    locked.ingest(r, at_ms(i));
    for (const auto metric :
         {RankingMetric::kDelay, RankingMetric::kBandwidth}) {
      expect_ranks_identical(snap.rank(core::NodeId{0}, candidates, metric, at_ms(i)),
                             locked.rank(core::NodeId{0}, candidates, metric, at_ms(i)));
    }
  }
  EXPECT_EQ(snap.reports_ingested(), locked.reports_ingested());
  EXPECT_EQ(snap.queries_served(), locked.queries_served());
}

TEST_P(ConcurrentMapModes, ConcurrentIngestAndRankKeepTotalsExact) {
  constexpr int kIngestTasks = 4;
  constexpr int kRankTasks = 4;
  constexpr int kOpsPerTask = 50;

  ConcurrentNetworkMap shared{{}, {}, GetParam()};
  // Seed the topology so rank tasks have a graph from the first instant.
  shared.ingest(simple_report(), at_ms(0));

  const std::vector<core::NodeId> candidates{core::NodeId{1}, core::NodeId{99}};
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < kIngestTasks; ++t) {
    tasks.push_back([&shared, t] {
      for (int i = 0; i < kOpsPerTask; ++i) {
        // Distinct queue values and times per task: every ingest really
        // mutates the EWMAs, windows, and the published epoch.
        shared.ingest(simple_report(i % 7, (i + t) % 5), at_ms(1 + i));
      }
    });
  }
  for (int t = 0; t < kRankTasks; ++t) {
    tasks.push_back([&shared, &candidates] {
      for (int i = 0; i < kOpsPerTask; ++i) {
        const std::vector<ServerRank> ranked =
            shared.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(1 + i));
        // Interleaving-insensitive: shape and ordering policy only.
        ASSERT_EQ(ranked.size(), candidates.size());
        EXPECT_LE(ranked[0].delay_estimate, ranked[1].delay_estimate);
      }
    });
  }

  const exp::SweepRunner runner{4};
  runner.run(std::move(tasks));

  EXPECT_EQ(shared.reports_ingested(), 1 + kIngestTasks * kOpsPerTask);
  EXPECT_EQ(shared.queries_served(), kRankTasks * kOpsPerTask);

  // After the join the state has quiesced: ranking is deterministic again.
  const std::vector<ServerRank> final_rank =
      shared.rank(core::NodeId{0}, candidates, RankingMetric::kDelay, at_ms(kOpsPerTask));
  ASSERT_EQ(final_rank.size(), 2u);
  EXPECT_EQ(final_rank[0].server, core::NodeId{1});
  EXPECT_EQ(final_rank[1].server, core::NodeId{99});  // never probed: unreachable, last
}

}  // namespace
}  // namespace intsched::core
