// Ranker: Algorithm 1 (delay) and the min-bandwidth path estimate.
#include "intsched/core/ranking.hpp"

#include <gtest/gtest.h>

namespace intsched::core {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

net::IntStackEntry entry(core::NodeId device, std::int32_t in_port,
                         std::int32_t out_port, std::int64_t q,
                         sim::SimDuration latency) {
  net::IntStackEntry e;
  e.device = device;
  e.ingress_port = in_port;
  e.egress_port = out_port;
  e.max_queue_pkts = q;
  e.device_max_queue_pkts = q;
  e.ingress_link_latency = latency;
  return e;
}

/// Builds a map of a line topology:
///   host 0 -- s10 -- s11 -- host 1 (collector), with s12 -- host 2
///   hanging off s10.
/// via two probes (from hosts 0 and 2) to collector host 1.
NetworkMap make_map(std::int64_t q10, std::int64_t q11, std::int64_t q12) {
  NetworkMap map;
  telemetry::ProbeReport from0;
  from0.src = core::NodeId{0};
  from0.dst = core::NodeId{1};
  from0.entries = {entry(core::NodeId{10}, 0, 1, q10, ms(10)),
                   entry(core::NodeId{11}, 0, 1, q11, ms(10))};
  from0.final_link_latency = ms(10);
  map.ingest(from0, at_ms(0));

  telemetry::ProbeReport from2;
  from2.src = core::NodeId{2};
  from2.dst = core::NodeId{1};
  from2.entries = {entry(core::NodeId{12}, 0, 1, q12, ms(10)),
                   entry(core::NodeId{10}, 2, 1, q10, ms(10)),
                   entry(core::NodeId{11}, 0, 1, q11, ms(10))};
  from2.final_link_latency = ms(10);
  map.ingest(from2, at_ms(0));
  return map;
}

TEST(QueueToUtilizationTest, EndpointsClamp) {
  QueueToUtilization q;
  EXPECT_DOUBLE_EQ(q.utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(q.utilization(100000), 1.0);
}

TEST(QueueToUtilizationTest, MonotoneNondecreasing) {
  QueueToUtilization q;
  double prev = -1.0;
  for (std::int64_t i = 0; i <= 600; i += 5) {
    const double u = q.utilization(i);
    EXPECT_GE(u, prev);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    prev = u;
  }
}

TEST(QueueToUtilizationTest, LinearInterpolationBetweenPoints) {
  QueueToUtilization q{{{0.0, 0.0}, {10.0, 1.0}}};
  EXPECT_DOUBLE_EQ(q.utilization(5), 0.5);
  EXPECT_DOUBLE_EQ(q.utilization(2), 0.2);
}

TEST(QueueToUtilizationTest, RejectsBadTables) {
  EXPECT_THROW(QueueToUtilization(std::vector<QueueToUtilization::Point>{}),
               std::invalid_argument);
  EXPECT_THROW(QueueToUtilization(std::vector<QueueToUtilization::Point>{
                   {5.0, 0.1}, {1.0, 0.9}}),
               std::invalid_argument);
}

TEST(RankerTest, Algorithm1FormulaExact) {
  // Delay(path) = sum(link delays) + k * sum(device max queues).
  NetworkMap map = make_map(3, 5, 0);
  RankerConfig cfg;
  cfg.k_factor = ms(20);
  Ranker ranker{map, cfg};
  // Path 0 -> s10 -> s11 -> 1: links 10+10+10, hops 3 and 5.
  const sim::SimDuration d =
      ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(10));
  EXPECT_EQ(d, ms(30) + ms(20) * 8);
}

TEST(RankerTest, ZeroQueuesGivePureLinkDelay) {
  NetworkMap map = make_map(0, 0, 0);
  Ranker ranker{map};
  EXPECT_EQ(ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(10)), ms(30));
}

TEST(RankerTest, KFactorScalesHopPenalty) {
  NetworkMap map = make_map(2, 0, 0);
  RankerConfig cfg;
  cfg.k_factor = ms(5);
  Ranker ranker{map, cfg};
  EXPECT_EQ(ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(10)),
            ms(30) + ms(10));
  ranker.set_k_factor(ms(50));
  EXPECT_EQ(ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(10)),
            ms(30) + ms(100));
}

// Regression: set_k_factor must invalidate the path cache. The cached
// Dijkstra trees themselves are k-independent today, but the cache is
// keyed by "config under which it was filled" as a contract — a future
// k-aware edge weight would silently serve stale paths otherwise.
TEST(RankerTest, SetKFactorInvalidatesPathCache) {
  NetworkMap map = make_map(2, 0, 0);
  Ranker ranker{map};
  (void)ranker.rank(core::NodeId{0}, {core::NodeId{1}, core::NodeId{2}}, RankingMetric::kDelay, at_ms(10));
  EXPECT_GE(ranker.path_cache_epoch(), core::Epoch{0});

  ranker.set_k_factor(ms(50));
  EXPECT_EQ(ranker.path_cache_epoch(), core::Epoch::none());

  // Next rank refills the cache and serves the new k.
  (void)ranker.rank(core::NodeId{0}, {core::NodeId{1}, core::NodeId{2}}, RankingMetric::kDelay, at_ms(10));
  EXPECT_GE(ranker.path_cache_epoch(), core::Epoch{0});
  EXPECT_EQ(ranker.config().k_factor, ms(50));
}

TEST(RankerTest, BandwidthIsMinOverLinks) {
  // Utilization table maps q=0 -> 0 so idle path = nominal capacity.
  NetworkMap map = make_map(0, 0, 0);
  Ranker ranker{map};
  const sim::DataRate bw =
      ranker.path_bandwidth_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(10));
  EXPECT_NEAR(bw.mbps(), map.config().nominal_capacity.mbps(), 1e-9);
}

TEST(RankerTest, CongestedLinkCapsBandwidth) {
  NetworkMap map = make_map(512, 0, 0);  // s10's egress saturated
  Ranker ranker{map};
  const sim::DataRate bw =
      ranker.path_bandwidth_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(10));
  EXPECT_LT(bw.mbps(), 1.0);
}

TEST(RankerTest, RankByDelaySortsAscending) {
  // Make host 2's branch congested: s12 has a deep queue.
  NetworkMap map = make_map(0, 0, 40);
  Ranker ranker{map};
  // From host 1's view, rank hosts 0 and 2.
  const auto ranked =
      ranker.rank(core::NodeId{1}, {core::NodeId{0}, core::NodeId{2}}, RankingMetric::kDelay, at_ms(10));
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].server, core::NodeId{0});
  EXPECT_EQ(ranked[1].server, core::NodeId{2});
  EXPECT_LT(ranked[0].delay_estimate, ranked[1].delay_estimate);
}

TEST(RankerTest, RankByBandwidthSortsDescending) {
  NetworkMap map = make_map(0, 0, 40);
  Ranker ranker{map};
  const auto ranked =
      ranker.rank(core::NodeId{1}, {core::NodeId{0}, core::NodeId{2}}, RankingMetric::kBandwidth, at_ms(10));
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].server, core::NodeId{0});
  EXPECT_GT(ranked[0].bandwidth_estimate.bps(),
            ranked[1].bandwidth_estimate.bps());
}

TEST(RankerTest, BothEstimatesAlwaysFilled) {
  NetworkMap map = make_map(1, 2, 3);
  Ranker ranker{map};
  for (const auto& r : ranker.rank(core::NodeId{0}, {core::NodeId{1}, core::NodeId{2}}, RankingMetric::kDelay, at_ms(10))) {
    EXPECT_GT(r.delay_estimate, sim::SimDuration::zero());
    EXPECT_GT(r.bandwidth_estimate.bps(), 0.0);
  }
}

TEST(RankerTest, UnreachableCandidateRanksLast) {
  NetworkMap map = make_map(0, 0, 0);
  Ranker ranker{map};
  const auto ranked =
      ranker.rank(core::NodeId{0}, {core::NodeId{1}, core::NodeId{99}}, RankingMetric::kDelay, at_ms(10));
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].server, core::NodeId{1});
  EXPECT_EQ(ranked[1].server, core::NodeId{99});
  EXPECT_EQ(ranked[1].delay_estimate, sim::SimDuration::max());
  EXPECT_DOUBLE_EQ(ranked[1].bandwidth_estimate.bps(), 0.0);
}

TEST(RankerTest, EqualDelayTieBreaksById) {
  NetworkMap map = make_map(0, 0, 0);
  Ranker ranker{map};
  // Hosts 0 and... construct: rank from host 1 where both reachable with
  // equal metrics is hard in this topology; instead verify determinism by
  // ranking twice.
  const auto a = ranker.rank(core::NodeId{1}, {core::NodeId{0}, core::NodeId{2}}, RankingMetric::kDelay, at_ms(10));
  const auto b = ranker.rank(core::NodeId{1}, {core::NodeId{0}, core::NodeId{2}}, RankingMetric::kDelay, at_ms(10));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].server, b[i].server);
  }
}

TEST(RankerTest, StaleCongestionForgotten) {
  NetworkMapConfig map_cfg;
  map_cfg.queue_window = ms(150);
  NetworkMap map{map_cfg};
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  r.entries = {entry(core::NodeId{10}, 0, 1, 50, ms(10)), entry(core::NodeId{11}, 0, 1, 0, ms(10))};
  r.final_link_latency = ms(10);
  map.ingest(r, at_ms(0));
  Ranker ranker{map};
  const sim::SimDuration congested =
      ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(50));
  const sim::SimDuration later =
      ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{11}, core::NodeId{1}}, at_ms(500));
  EXPECT_GT(congested, later);
  EXPECT_EQ(later, ms(30));
}

TEST(RankingMetricTest, Names) {
  EXPECT_STREQ(to_string(RankingMetric::kDelay), "delay");
  EXPECT_STREQ(to_string(RankingMetric::kBandwidth), "bandwidth");
}

}  // namespace
}  // namespace intsched::core

// -- k-factor auto-calibration (paper §III-C future work) --

namespace intsched::core {
namespace {

TEST(KCalibrationTest, RecoversLinearRelation) {
  std::vector<KCalibrationSample> samples;
  for (int q = 0; q <= 30; q += 3) {
    samples.push_back({static_cast<double>(q), 2.5 * q});  // k = 2.5 ms
  }
  const sim::SimDuration k = estimate_k_factor(samples);
  EXPECT_NEAR(k.to_milliseconds(), 2.5, 0.01);
}

TEST(KCalibrationTest, NoisyDataStillClose) {
  std::vector<KCalibrationSample> samples;
  sim::Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    const double q = rng.uniform_real(0.0, 50.0);
    const double noise = rng.uniform_real(-3.0, 3.0);
    samples.push_back({q, 4.0 * q + noise});
  }
  EXPECT_NEAR(estimate_k_factor(samples).to_milliseconds(), 4.0, 0.2);
}

TEST(KCalibrationTest, DegenerateDataFallsBackToPaperDefault) {
  EXPECT_EQ(estimate_k_factor({}), sim::SimDuration::milliseconds(20));
  EXPECT_EQ(estimate_k_factor({{0.0, 0.0}, {0.0, 5.0}}),
            sim::SimDuration::milliseconds(20));
  // All-negative correlation: no positive signal either.
  EXPECT_EQ(estimate_k_factor({{10.0, -5.0}, {20.0, -9.0}}),
            sim::SimDuration::milliseconds(20));
}

TEST(KCalibrationTest, EndToEndFromMeasuredCurve) {
  // Feed it the shape of our own Fig.-3 reproduction (queue, RTT-40ms):
  // the fit should land in the same order of magnitude as the queueing
  // delay per packet (~0.6 ms service), far below the paper's k = 20 ms
  // detector weight.
  const std::vector<KCalibrationSample> measured = {
      {0.5, 0.3}, {2.6, 1.3}, {4.3, 1.0},  {6.6, 1.7},
      {10.2, 3.1}, {16.8, 6.5}, {187.4, 114.4}, {494.8, 324.2}};
  // intsched-lint: allow(raw-unit): fractional-ms bound check
  const double k_ms = estimate_k_factor(measured).to_milliseconds();
  EXPECT_GT(k_ms, 0.3);
  EXPECT_LT(k_ms, 2.0);
}

}  // namespace
}  // namespace intsched::core

// -- Measured-hop-latency ranking statistic --

namespace intsched::core {
namespace {

TEST(MeasuredHopLatencyTest, UsedDirectlyWithoutK) {
  NetworkMap map;
  telemetry::ProbeReport r;
  r.src = core::NodeId{0};
  r.dst = core::NodeId{1};
  net::IntStackEntry e;
  e.device = core::NodeId{10};
  e.ingress_port = 0;
  e.egress_port = 1;
  e.device_max_queue_pkts = 50;  // would cost 1 s at k = 20 ms
  e.max_hop_latency = sim::SimDuration::milliseconds(7);
  e.ingress_link_latency = sim::SimDuration::milliseconds(10);
  r.entries = {e};
  r.final_link_latency = sim::SimDuration::milliseconds(10);
  map.ingest(r, sim::SimTime::zero());

  RankerConfig cfg;
  cfg.queue_statistic = QueueStatistic::kMeasuredHopLatency;
  Ranker ranker{map, cfg};
  // 20 ms links + 7 ms measured dwell, independent of k.
  EXPECT_EQ(ranker.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{1}}, sim::SimTime::zero()),
            sim::SimDuration::milliseconds(27));
  cfg.queue_statistic = QueueStatistic::kMaximum;
  Ranker paper{map, cfg};
  EXPECT_EQ(paper.path_delay_estimate({core::NodeId{0}, core::NodeId{10}, core::NodeId{1}}, sim::SimTime::zero()),
            sim::SimDuration::milliseconds(20) + sim::SimDuration::seconds(1));
}

TEST(MeasuredHopLatencyTest, UnreportedDeviceContributesZero) {
  NetworkMap map;
  EXPECT_EQ(map.device_hop_latency(core::NodeId{99}, sim::SimTime::zero()),
            sim::SimDuration::zero());
}

}  // namespace
}  // namespace intsched::core
