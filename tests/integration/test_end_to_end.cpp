// Full-system integration: constructed congestion scenarios where the
// network-aware scheduler must demonstrably beat the nearest baseline,
// plus system-level invariants of a complete experiment run.
#include <gtest/gtest.h>

#include "intsched/core/scheduler_service.hpp"
#include "intsched/exp/experiment.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/iperf.hpp"

namespace intsched {
namespace {

/// Deterministic scenario: pod 3 (nodes 7/8) is saturated by an intra-pod
/// flood while pod 1 stays clean. From node1's viewpoint, pods 1 and 3 are
/// equidistant, so the scheduler must rank the clean pod's servers above
/// the congested pod's for both metrics. (Congesting node1's *own* nearest
/// necessarily taints the mid-switch shared by all of node1's paths —
/// device-level queue registers cannot tell directions apart, which is
/// exactly the measurement-granularity weakness the paper reports in
/// Fig. 8.)
struct ForcedCongestionFixture : ::testing::Test {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  std::vector<std::unique_ptr<transport::HostStack>> stacks;
  std::unique_ptr<core::SchedulerService> service;
  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  std::unique_ptr<transport::IperfUdpSink> sink;
  std::unique_ptr<transport::IperfUdpSender> flood;

  void SetUp() override {
    for (net::Host* h : network.hosts()) {
      stacks.push_back(std::make_unique<transport::HostStack>(*h));
    }
    service = std::make_unique<core::SchedulerService>(
        *stacks[5], core::RankerConfig{}, core::NetworkMapConfig{});
    for (const core::NodeId id : network.host_ids()) {
      service->register_edge_server(id);
    }
    for (net::Host* h : network.hosts()) {
      if (h->id() == network.scheduler_host().id()) continue;
      agents.push_back(std::make_unique<telemetry::ProbeAgent>(
          *h, network.scheduler_host().id()));
      agents.back()->start();
    }
    // Saturate pod 3 internally: node7 -> node8 at 22 Mbps.
    sink = std::make_unique<transport::IperfUdpSink>(*stacks[7]);
    transport::IperfUdpSender::Config cfg;
    cfg.rate = sim::DataRate::megabits_per_second(22.0);
    flood = std::make_unique<transport::IperfUdpSender>(
        *stacks[6], network.hosts()[7]->id(), cfg);
    flood->start();
    sim.run_until(sim::SimTime::seconds(5));
  }
};

std::size_t rank_of(const std::vector<core::ServerRank>& ranked,
                    core::NodeId server) {
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].server == server) return i;
  }
  return ranked.size();
}

TEST_F(ForcedCongestionFixture, DelayRankingDemotesCongestedPod) {
  const auto ranked = service->rank_for(core::NodeId{0}, core::RankingMetric::kDelay);
  ASSERT_EQ(ranked.size(), 7u);
  // Clean pod 1 (nodes 3, 4 = ids 2, 3) must beat congested pod 3
  // (nodes 7, 8 = ids 6, 7) at equal distance.
  EXPECT_LT(rank_of(ranked, core::NodeId{2}), rank_of(ranked, core::NodeId{6}));
  EXPECT_LT(rank_of(ranked, core::NodeId{2}), rank_of(ranked, core::NodeId{7}));
  EXPECT_LT(rank_of(ranked, core::NodeId{3}), rank_of(ranked, core::NodeId{6}));
  EXPECT_LT(rank_of(ranked, core::NodeId{3}), rank_of(ranked, core::NodeId{7}));
  // node1's own pod is clean: its sibling still ranks first.
  EXPECT_EQ(ranked[0].server, core::NodeId{1});
}

TEST_F(ForcedCongestionFixture, BandwidthRankingDemotesCongestedPod) {
  const auto ranked = service->rank_for(core::NodeId{0}, core::RankingMetric::kBandwidth);
  ASSERT_EQ(ranked.size(), 7u);
  EXPECT_LT(rank_of(ranked, core::NodeId{2}), rank_of(ranked, core::NodeId{7}));
  EXPECT_LT(rank_of(ranked, core::NodeId{3}), rank_of(ranked, core::NodeId{7}));
  // The flooded node8's estimate collapses far below nominal.
  for (const auto& r : ranked) {
    if (r.server == core::NodeId{7}) {
      EXPECT_LT(r.bandwidth_estimate.mbps(), 10.0);
    }
  }
}

TEST_F(ForcedCongestionFixture, CongestionClearsAfterFlowStops) {
  const auto during = service->rank_for(core::NodeId{0}, core::RankingMetric::kDelay);
  const auto d7_during = during[rank_of(during, core::NodeId{6})].delay_estimate;

  flood->stop();
  sim.run_until(sim.now() + sim::SimDuration::seconds(3));
  const auto after = service->rank_for(core::NodeId{0}, core::RankingMetric::kDelay);
  const auto d7_after = after[rank_of(after, core::NodeId{6})].delay_estimate;
  // Registers drained and freshness windows expired: the congested pod's
  // estimate collapses back toward its structural baseline. (The baseline
  // itself is higher than pod 1's because the M0-M3 ring link lies on no
  // probe path — the probe-coverage limitation the paper defers to future
  // work — so we assert recovery, not equality with pod 1.)
  EXPECT_LT(d7_after, d7_during / 2);
  EXPECT_LT(d7_after, sim::SimDuration::milliseconds(200));
  EXPECT_EQ(after[0].server, core::NodeId{1});
}

TEST_F(ForcedCongestionFixture, UnprobedRingLinkStaysUnknown) {
  // Ground truth: M0 (s3, id 10) connects to M3 (s12, id 19), but no
  // host-to-scheduler probe traverses that link, so the inferred map must
  // route around it. This documents the paper's coverage assumption.
  const auto covered = network.probe_covered_links();
  EXPECT_FALSE(covered.contains({core::NodeId{10}, core::NodeId{19}}));
  EXPECT_FALSE(covered.contains({core::NodeId{19}, core::NodeId{10}}));
  EXPECT_EQ(service->network_map().egress_port(core::NodeId{10}, core::NodeId{19}), -1);
}

TEST_F(ForcedCongestionFixture, MapTracksAllLinksDespiteCongestion) {
  EXPECT_GE(service->network_map().known_link_count(), 30);
  EXPECT_GT(service->network_map().reports_ingested(), 100);
}

/// System-level run with every component engaged.
TEST(FullSystemTest, IntBeatsNearestUnderConstructedHotspot) {
  // Custom scenario built through the experiment runner: heavy random
  // background, serverless workload. Totals pooled across three seeds
  // because the paper itself reports per-task regressions (Fig. 8) — only
  // the pooled mean is a stable claim.
  double int_total = 0.0;
  double nearest_total = 0.0;
  for (const std::uint64_t seed : {42ULL, 43ULL, 44ULL}) {
    exp::ExperimentConfig cfg;
    cfg.seed = seed;
    cfg.workload.total_tasks = 60;
    cfg.workload.job_interval = sim::SimDuration::seconds(2);
    cfg.background.mode = exp::BackgroundMode::kRandomPairs;
    const auto results = exp::run_policy_suite(
        cfg, {core::PolicyKind::kIntDelay, core::PolicyKind::kNearest});
    for (const auto& [policy, result] : results) {
      EXPECT_EQ(result.tasks_completed, result.tasks_total)
          << core::to_string(policy) << " seed " << seed;
      double total = 0.0;
      for (const edge::TaskRecord* r : result.metrics.records()) {
        total += r->completion_time().to_seconds();
      }
      (policy == core::PolicyKind::kIntDelay ? int_total : nearest_total) +=
          total;
    }
  }
  EXPECT_LT(int_total, nearest_total);
}

TEST(FullSystemTest, ProbeOverheadStaysNegligible) {
  exp::ExperimentConfig cfg;
  cfg.seed = 3;
  cfg.workload.total_tasks = 12;
  cfg.background.mode = exp::BackgroundMode::kNone;
  const auto result = exp::run_experiment(cfg);
  // Paper: 120 kbps per server, ~1.1% of a 10 Mbps link. Compare probe
  // bytes against the nominal capacity over the run.
  const double probe_bps =
      static_cast<double>(result.probe_bytes_sent) * 8.0 /
      result.sim_duration.to_seconds();
  const double per_server_kbps = probe_bps / 7.0 / 1000.0;
  EXPECT_LT(per_server_kbps, 130.0);
  EXPECT_GT(per_server_kbps, 50.0);
}

TEST(FullSystemTest, SchedulerQueriesCostOneRoundTripEach) {
  exp::ExperimentConfig cfg;
  cfg.seed = 3;
  cfg.policy = core::PolicyKind::kIntDelay;
  cfg.workload.total_tasks = 12;
  cfg.background.mode = exp::BackgroundMode::kNone;
  const auto result = exp::run_experiment(cfg);
  // Every remote job queried once (node6's jobs use the direct path).
  EXPECT_LE(result.queries_served, 12);
  EXPECT_GT(result.queries_served, 0);
  for (const edge::TaskRecord* r : result.metrics.records()) {
    EXPECT_GE(r->scheduled, r->submitted);
    // Query latency below a second even on the 5-link diameter.
    EXPECT_LT(r->scheduled - r->submitted, sim::SimDuration::seconds(1));
  }
}

}  // namespace
}  // namespace intsched

// -- Fig.-3 shape property: queue telemetry grows monotonically with load --

#include "intsched/net/topology.hpp"
#include "intsched/telemetry/int_program.hpp"

namespace intsched {
namespace {

TEST(CalibrationShapeTest, QueueTelemetryMonotoneInUtilization) {
  // Three load points through one switch; the collected max-queue
  // telemetry must grow with offered load (the relationship both ranking
  // metrics rely on).
  double previous = -1.0;
  for (const double utilization : {0.3, 0.7, 0.95}) {
    sim::Simulator sim;
    net::Topology topo{sim};
    auto& h1 = topo.add_node<net::Host>("h1");
    auto& h2 = topo.add_node<net::Host>("h2");
    p4::SwitchConfig cfg;
    cfg.seed = 9;
    auto& s1 = topo.add_node<p4::P4Switch>("s1", cfg);
    net::LinkConfig link;
    topo.connect(h1, s1, link);
    topo.connect(h2, s1, link);
    topo.install_routes();
    s1.load_program(std::make_unique<telemetry::IntTelemetryProgram>());

    transport::HostStack stack1{h1};
    transport::HostStack stack2{h2};
    transport::IperfUdpSink sink{stack2};
    const sim::SimDuration per_pkt =
        link.rate.transmission_time(1500) + cfg.proc_delay_mean;
    transport::IperfUdpSender::Config flow;
    flow.rate = sim::DataRate::bits_per_second(
                    1500.0 * 8.0 / per_pkt.to_seconds()) *
                utilization;
    transport::IperfUdpSender iperf{stack1, h2.id(), flow};
    iperf.start(sim::SimDuration::seconds(20));

    telemetry::ProbeAgent agent{h1, h2.id()};
    telemetry::IntCollector collector{h2};
    stack2.bind_udp(net::kProbePort, [&](const net::Packet& p) {
      collector.handle_packet(p);
    });
    sim::RunningStats maxq;
    collector.set_handler([&](const telemetry::ProbeReport& r) {
      for (const auto& e : r.entries) {
        maxq.add(static_cast<double>(e.device_max_queue_pkts));
      }
    });
    agent.start();
    sim.run_until(sim::SimTime::seconds(20));

    EXPECT_GT(maxq.mean(), previous)
        << "utilization " << utilization;
    previous = maxq.mean();
  }
}

}  // namespace
}  // namespace intsched
