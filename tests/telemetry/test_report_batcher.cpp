// ReportBatcher: coalesces a per-interval probe burst into one batch so
// the concurrent map pays one publish per burst instead of one per probe.
// Contract under test: arrival order preserved, nothing dropped or
// duplicated, auto-flush at max_batch, explicit flush for partial bursts.

#include "intsched/telemetry/report_batcher.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace intsched::telemetry {
namespace {

ProbeReport report(core::NodeId src) {
  ProbeReport r;
  r.src = src;
  r.dst = core::NodeId{1};
  return r;
}

TEST(ReportBatcherTest, RejectsInvalidConstruction) {
  EXPECT_THROW(ReportBatcher(nullptr), std::invalid_argument);
  EXPECT_THROW(ReportBatcher([](const std::vector<ProbeReport>&) {}, 0),
               std::invalid_argument);
}

TEST(ReportBatcherTest, BuffersUntilExplicitFlush) {
  std::vector<std::vector<core::NodeId>> batches;
  ReportBatcher batcher{[&batches](const std::vector<ProbeReport>& batch) {
                          std::vector<core::NodeId> srcs;
                          for (const auto& r : batch) srcs.push_back(r.src);
                          batches.push_back(srcs);
                        },
                        8};

  batcher.add(report(core::NodeId{10}));
  batcher.add(report(core::NodeId{11}));
  batcher.add(report(core::NodeId{12}));
  EXPECT_TRUE(batches.empty());
  EXPECT_EQ(batcher.pending(), 3u);

  batcher.flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], (std::vector<core::NodeId>{core::NodeId{10}, core::NodeId{11}, core::NodeId{12}}));
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.reports_batched(), 3);
  EXPECT_EQ(batcher.batches_emitted(), 1);
}

TEST(ReportBatcherTest, AutoFlushesAtMaxBatch) {
  std::vector<std::size_t> batch_sizes;
  ReportBatcher batcher{[&batch_sizes](const std::vector<ProbeReport>& batch) {
                          batch_sizes.push_back(batch.size());
                        },
                        4};

  for (int i = 0; i < 10; ++i) batcher.add(report(core::NodeId{i}));
  // 10 adds with max_batch=4: two automatic flushes, 2 pending.
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4}));
  EXPECT_EQ(batcher.pending(), 2u);

  batcher.flush();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 2}));
  EXPECT_EQ(batcher.reports_batched(), 10);
  EXPECT_EQ(batcher.batches_emitted(), 3);
}

TEST(ReportBatcherTest, FlushOnEmptyBufferIsANoOp) {
  int calls = 0;
  ReportBatcher batcher{
      [&calls](const std::vector<ProbeReport>&) { ++calls; }};
  batcher.flush();
  batcher.flush();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(batcher.batches_emitted(), 0);
}

TEST(ReportBatcherTest, PreservesOrderAndCountAcrossManyBursts) {
  std::vector<core::NodeId> delivered;
  ReportBatcher batcher{[&delivered](const std::vector<ProbeReport>& batch) {
                          for (const auto& r : batch)
                            delivered.push_back(r.src);
                        },
                        5};

  std::vector<core::NodeId> expected;
  for (core::NodeId i = core::NodeId{0}; i < core::NodeId{37}; ++i) {
    batcher.add(report(i));
    expected.push_back(i);
  }
  batcher.flush();

  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(batcher.reports_batched(), 37);
  EXPECT_EQ(batcher.batches_emitted(), 8);  // 7 full + 1 partial
}

}  // namespace
}  // namespace intsched::telemetry
