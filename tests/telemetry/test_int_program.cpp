// INT data-plane program semantics: register updates on every packet,
// collect-and-reset into probes, per-hop stack growth, link-latency
// measurement via egress timestamps.
#include "intsched/telemetry/int_program.hpp"

#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"

namespace intsched::telemetry {
namespace {

net::Packet make_probe(core::NodeId src, core::NodeId dst) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.protocol = net::IpProtocol::kUdp;
  p.l4 = net::UdpHeader{.src_port = net::kProbePort,
                        .dst_port = net::kProbePort};
  p.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  p.wire_size = 1400;
  return p;
}

net::Packet make_data(core::NodeId dst) {
  net::Packet p;
  p.dst = dst;
  p.wire_size = 1500;
  p.l4 = net::UdpHeader{.src_port = 9, .dst_port = net::kIperfPort};
  return p;
}

struct IntFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  p4::P4Switch* s1 = nullptr;
  p4::P4Switch* s2 = nullptr;
  std::vector<net::Packet> at_b;

  void SetUp() override {
    a = &topo.add_node<net::Host>("a");
    b = &topo.add_node<net::Host>("b");
    p4::SwitchConfig cfg;
    cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
    cfg.proc_jitter_frac = 0.0;
    cfg.stall_probability = 0.0;
    s1 = &topo.add_node<p4::P4Switch>("s1", cfg);
    s2 = &topo.add_node<p4::P4Switch>("s2", cfg);
    net::LinkConfig link;
    link.prop_delay = sim::SimDuration::milliseconds(10);
    topo.connect(*a, *s1, link);
    topo.connect(*s1, *s2, link);
    topo.connect(*s2, *b, link);
    topo.install_routes();
    s1->load_program(std::make_unique<IntTelemetryProgram>());
    s2->load_program(std::make_unique<IntTelemetryProgram>());
    b->set_receiver([this](net::Packet&& p) { at_b.push_back(std::move(p)); });
  }
};

TEST_F(IntFixture, ProbeAccumulatesEntriesInTraversalOrder) {
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  const auto& stack = at_b[0].int_stack;
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0].device, s1->id());
  EXPECT_EQ(stack[1].device, s2->id());
}

TEST_F(IntFixture, ProbeWireSizeGrowsPerHop) {
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].wire_size, 1400 + 2 * net::kIntStackEntryWireBytes);
}

TEST_F(IntFixture, DataPacketsAreNeverModified) {
  a->send(make_data(b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_TRUE(at_b[0].int_stack.empty());
  EXPECT_EQ(at_b[0].wire_size, 1500);
  // No egress timestamp is stamped onto production packets.
  EXPECT_LT(at_b[0].last_egress_timestamp, sim::SimTime::zero());
}

TEST_F(IntFixture, RegistersRecordDataPacketOccupancy) {
  // Without probes the registers accumulate and are never reset.
  for (int i = 0; i < 20; ++i) a->send(make_data(b->id()));
  sim.run();
  auto* reg = s1->find_register_array(kMaxQueuePortRegister);
  ASSERT_NE(reg, nullptr);
  // 20 back-to-back packets through a 100 us processor: deep queue seen.
  const std::int64_t port_to_s2 = 1;  // port 0 faces a, port 1 faces s2
  EXPECT_GT(reg->read(port_to_s2), 5);
  auto* dev = s1->find_register_array(kMaxQueueDeviceRegister);
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(dev->read(0), reg->read(port_to_s2));
}

TEST_F(IntFixture, ProbeCollectsAndResetsRegisters) {
  for (int i = 0; i < 20; ++i) a->send(make_data(b->id()));
  sim.run();
  const std::int64_t before =
      s1->find_register_array(kMaxQueueDeviceRegister)->read(0);
  ASSERT_GT(before, 0);

  a->send(make_probe(a->id(), b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 21u);
  const auto& probe = at_b.back();
  ASSERT_EQ(probe.int_stack.size(), 2u);
  EXPECT_EQ(probe.int_stack[0].device_max_queue_pkts, before);
  EXPECT_EQ(s1->find_register_array(kMaxQueueDeviceRegister)->read(0), 0);
  EXPECT_EQ(s1->find_register_array(kMaxQueuePortRegister)->read(1), 0);
}

TEST_F(IntFixture, SecondProbeSeesOnlyNewWindow) {
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 2u);
  // Quiet network between probes: second probe reads near-zero registers.
  EXPECT_LE(at_b[1].int_stack[0].device_max_queue_pkts, 1);
}

TEST_F(IntFixture, LinkLatencyMeasuredBetweenSwitches) {
  net::Packet probe = make_probe(a->id(), b->id());
  probe.last_egress_timestamp = sim.now();  // host NIC stamp
  a->send(std::move(probe));
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  const auto& stack = at_b[0].int_stack;
  // Hop 0 latency: host uplink = 10 ms prop + 112 us tx of 1400 B at
  // 100 Mbps (no host processing delay).
  EXPECT_NEAR(stack[0].ingress_link_latency.to_milliseconds(), 10.1, 0.1);
  // Hop 1 latency: s1->s2 = 10 ms prop + ~115 us tx + 100 us processing.
  EXPECT_NEAR(stack[1].ingress_link_latency.to_milliseconds(), 10.2, 0.15);
}

TEST_F(IntFixture, LinkLatencyInvalidWithoutUpstreamStamp) {
  a->send(make_probe(a->id(), b->id()));  // no host NIC stamp
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_LT(at_b[0].int_stack[0].ingress_link_latency, sim::SimDuration::zero());
  EXPECT_GE(at_b[0].int_stack[1].ingress_link_latency, sim::SimDuration::zero());
}

TEST_F(IntFixture, ClockSkewBiasesLinkLatency) {
  s2->set_clock_skew(sim::SimDuration::milliseconds(2));
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  // s2's ingress extraction reads its skewed clock: +2 ms bias on hop 1.
  EXPECT_NEAR(at_b[0].int_stack[1].ingress_link_latency.to_milliseconds(),
              12.2, 0.2);
}

TEST_F(IntFixture, EgressTimestampMonotonePerHop) {
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  ASSERT_EQ(at_b.size(), 1u);
  const auto& stack = at_b[0].int_stack;
  EXPECT_LT(stack[0].egress_timestamp, stack[1].egress_timestamp);
  EXPECT_EQ(at_b[0].last_egress_timestamp, stack[1].egress_timestamp);
}

TEST_F(IntFixture, PortsRecordedInStack) {
  a->send(make_probe(a->id(), b->id()));
  sim.run();
  const auto& stack = at_b[0].int_stack;
  EXPECT_EQ(stack[0].ingress_port, 0);  // from host a
  EXPECT_EQ(stack[0].egress_port, 1);   // toward s2
  EXPECT_EQ(stack[1].ingress_port, 0);  // from s1
  EXPECT_EQ(stack[1].egress_port, 1);   // toward host b
}

TEST_F(IntFixture, MalformedProbeDroppedByParser) {
  net::Packet bad = make_probe(a->id(), b->id());
  bad.l4 = net::UdpHeader{.src_port = 1, .dst_port = 1234};  // wrong port
  a->send(std::move(bad));
  sim.run();
  EXPECT_TRUE(at_b.empty());
  EXPECT_EQ(s1->pipeline_drops(), 1);
}

}  // namespace
}  // namespace intsched::telemetry

// -- Extension coverage: average-queue registers & per-packet embedding --

namespace intsched::telemetry {
namespace {

struct IntExtensionFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  p4::P4Switch* sw = nullptr;
  std::vector<net::Packet> at_b;

  void wire(bool embedding) {
    a = &topo.add_node<net::Host>("a");
    b = &topo.add_node<net::Host>("b");
    p4::SwitchConfig cfg;
    cfg.proc_delay_mean = sim::SimDuration::microseconds(100);
    cfg.proc_jitter_frac = 0.0;
    cfg.stall_probability = 0.0;
    sw = &topo.add_node<p4::P4Switch>("sw", cfg);
    topo.connect(*a, *sw, net::LinkConfig{});
    topo.connect(*b, *sw, net::LinkConfig{});
    topo.install_routes();
    if (embedding) {
      sw->load_program(std::make_unique<EmbeddingIntProgram>());
    } else {
      sw->load_program(std::make_unique<IntTelemetryProgram>());
    }
    b->set_receiver([this](net::Packet&& p) { at_b.push_back(std::move(p)); });
  }

  net::Packet data(sim::Bytes size = 1500) {
    net::Packet p;
    p.dst = b->id();
    p.wire_size = size;
    return p;
  }

  net::Packet probe() {
    net::Packet p;
    p.src = a->id();
    p.dst = b->id();
    p.l4 = net::UdpHeader{.src_port = net::kProbePort,
                          .dst_port = net::kProbePort};
    p.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
    p.wire_size = 1400;
    return p;
  }
};

TEST_F(IntExtensionFixture, AverageQueueRegistersCollected) {
  wire(/*embedding=*/false);
  // A burst deep enough that the mean observed depth is clearly nonzero.
  for (int i = 0; i < 30; ++i) a->send(data());
  sim.run();
  a->send(probe());
  sim.run();
  ASSERT_EQ(at_b.size(), 31u);
  const auto& entry = at_b.back().int_stack.at(0);
  // The burst drains at ~220 us/pkt while arriving at ~120 us/pkt, so
  // depths ramp up to ~13; the average is far below the max but clearly
  // positive.
  EXPECT_GT(entry.device_avg_queue_x100, 100);  // > 1 packet mean
  EXPECT_GT(entry.device_max_queue_pkts, 8);
  EXPECT_LT(entry.device_avg_queue_x100 / 100,
            entry.device_max_queue_pkts);
}

TEST_F(IntExtensionFixture, AverageRegistersResetOnCollection) {
  wire(false);
  for (int i = 0; i < 10; ++i) a->send(data());
  sim.run();
  a->send(probe());
  sim.run();
  a->send(probe());
  sim.run();
  // Second probe saw only itself: near-zero average.
  EXPECT_LE(at_b.back().int_stack.at(0).device_avg_queue_x100, 100);
}

TEST_F(IntExtensionFixture, EmbeddingAddsEntryToEveryPacket) {
  wire(/*embedding=*/true);
  for (int i = 0; i < 5; ++i) a->send(data());
  sim.run();
  ASSERT_EQ(at_b.size(), 5u);
  for (const net::Packet& p : at_b) {
    ASSERT_EQ(p.int_stack.size(), 1u);
    EXPECT_EQ(p.int_stack[0].device, sw->id());
    EXPECT_EQ(p.wire_size, 1500 + net::kIntStackEntryWireBytes);
  }
  auto* program = dynamic_cast<EmbeddingIntProgram*>(sw->program());
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->telemetry_bytes_added(),
            5 * net::kIntStackEntryWireBytes);
}

TEST_F(IntExtensionFixture, EmbeddingNeedsNoRegisters) {
  wire(true);
  a->send(data());
  sim.run();
  EXPECT_EQ(sw->find_register_array(kMaxQueuePortRegister), nullptr);
}

}  // namespace
}  // namespace intsched::telemetry

// -- Direct hop-latency measurement --

namespace intsched::telemetry {
namespace {

struct HopLatencyFixture : IntExtensionFixture {};

TEST_F(HopLatencyFixture, MeasuresDwellTimeOfBurst) {
  wire(/*embedding=*/false);
  // 20 back-to-back packets: the last one dwells ~20 x (220-120) us.
  for (int i = 0; i < 20; ++i) a->send(data());
  sim.run();
  a->send(probe());
  sim.run();
  const auto& entry = at_b.back().int_stack.at(0);
  EXPECT_GT(entry.max_hop_latency, sim::SimDuration::microseconds(500));
  EXPECT_LT(entry.max_hop_latency, sim::SimDuration::milliseconds(10));
}

TEST_F(HopLatencyFixture, IdleSwitchShowsOnlyProcessing) {
  wire(false);
  a->send(data());
  sim.run();
  a->send(probe());
  sim.run();
  const auto& entry = at_b.back().int_stack.at(0);
  // No queueing: the packet is dequeued the instant it arrives (the
  // egress timestamp is taken before serialization/processing), so the
  // measured dwell is exactly zero on an idle switch.
  EXPECT_EQ(entry.max_hop_latency, sim::SimDuration::zero());
}

TEST_F(HopLatencyFixture, RegisterResetsAfterCollection) {
  wire(false);
  for (int i = 0; i < 20; ++i) a->send(data());
  sim.run();
  a->send(probe());
  sim.run();
  a->send(probe());
  sim.run();
  // Quiet window: only the probe's own dwell remains.
  EXPECT_LT(at_b.back().int_stack.at(0).max_hop_latency,
            sim::SimDuration::microseconds(400));
}

}  // namespace
}  // namespace intsched::telemetry
