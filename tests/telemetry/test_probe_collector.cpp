#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/host_stack.hpp"

namespace intsched::telemetry {
namespace {

struct ProbeFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* server = nullptr;
  net::Host* sched = nullptr;
  p4::P4Switch* sw = nullptr;
  std::unique_ptr<transport::HostStack> sched_stack;
  std::unique_ptr<IntCollector> collector;
  std::vector<ProbeReport> reports;

  void SetUp() override {
    server = &topo.add_node<net::Host>("server");
    sched = &topo.add_node<net::Host>("sched");
    p4::SwitchConfig cfg;
    cfg.stall_probability = 0.0;
    sw = &topo.add_node<p4::P4Switch>("sw", cfg);
    topo.connect(*server, *sw, net::LinkConfig{});
    topo.connect(*sched, *sw, net::LinkConfig{});
    topo.install_routes();
    sw->load_program(std::make_unique<IntTelemetryProgram>());

    sched_stack = std::make_unique<transport::HostStack>(*sched);
    collector = std::make_unique<IntCollector>(*sched);
    sched_stack->bind_udp(net::kProbePort, [this](const net::Packet& p) {
      collector->handle_packet(p);
    });
    collector->set_handler(
        [this](const ProbeReport& r) { reports.push_back(r); });
  }
};

TEST_F(ProbeFixture, AgentSendsAtConfiguredInterval) {
  ProbeConfig cfg;
  cfg.interval = sim::SimDuration::milliseconds(100);
  ProbeAgent agent{*server, sched->id(), cfg};
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));
  agent.stop();
  // t = 0, 100 ms, ..., 1000 ms inclusive.
  EXPECT_EQ(agent.probes_sent(), 11);
  EXPECT_EQ(agent.bytes_sent(), 11 * cfg.base_size);
}

TEST_F(ProbeFixture, StartOffsetDelaysFirstProbe) {
  ProbeConfig cfg;
  cfg.interval = sim::SimDuration::milliseconds(100);
  cfg.start_offset = sim::SimDuration::milliseconds(550);
  ProbeAgent agent{*server, sched->id(), cfg};
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(agent.probes_sent(), 5);  // 550, 650, 750, 850, 950
}

TEST_F(ProbeFixture, CollectorParsesReports) {
  ProbeAgent agent{*server, sched->id()};
  agent.start();
  sim.run_until(sim::SimTime::milliseconds(350));
  EXPECT_EQ(collector->probes_received(), 4);
  ASSERT_EQ(reports.size(), 4u);
  const ProbeReport& r = reports[0];
  EXPECT_EQ(r.src, server->id());
  EXPECT_EQ(r.dst, sched->id());
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].device, sw->id());
  EXPECT_EQ(collector->entries_parsed(), 4);
}

TEST_F(ProbeFixture, FinalLinkLatencyMeasured) {
  ProbeAgent agent{*server, sched->id()};
  agent.start();
  sim.run_until(sim::SimTime::milliseconds(150));
  ASSERT_FALSE(reports.empty());
  // Switch -> scheduler host: 10 ms prop + serialization + no queueing.
  EXPECT_GT(reports[0].final_link_latency, sim::SimDuration::milliseconds(9));
  EXPECT_LT(reports[0].final_link_latency, sim::SimDuration::milliseconds(12));
}

TEST_F(ProbeFixture, NonProbePacketsIgnored) {
  net::Packet plain;
  plain.src = server->id();
  plain.dst = sched->id();
  plain.wire_size = 100;
  EXPECT_FALSE(collector->handle_packet(plain));
  EXPECT_EQ(collector->probes_received(), 0);
  EXPECT_EQ(collector->malformed(), 0);
}

TEST_F(ProbeFixture, MisaddressedProbeCountsMalformed) {
  net::Packet probe;
  probe.src = server->id();
  probe.dst = core::NodeId{42};  // not the collector's host
  probe.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  EXPECT_FALSE(collector->handle_packet(probe));
  EXPECT_EQ(collector->malformed(), 1);
}

TEST_F(ProbeFixture, RepeatedDeviceInStackRejected) {
  net::Packet probe;
  probe.src = server->id();
  probe.dst = sched->id();
  probe.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  net::IntStackEntry e;
  e.device = core::NodeId{7};
  probe.int_stack = {e, e};  // impossible: a device repeated back-to-back
  EXPECT_FALSE(collector->handle_packet(probe));
  EXPECT_EQ(collector->malformed(), 1);
}

TEST_F(ProbeFixture, EmptyIntStackIsValidButUseless) {
  // A probe whose INT stack was stripped (or that crossed no telemetry
  // switches) still parses: it proves liveness even with no hop data.
  net::Packet probe;
  probe.src = server->id();
  probe.dst = sched->id();
  probe.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  EXPECT_TRUE(collector->handle_packet(probe));
  EXPECT_EQ(collector->probes_received(), 1);
  EXPECT_EQ(collector->malformed(), 0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].entries.empty());
}

TEST_F(ProbeFixture, TruncatedStackStillParses) {
  // A stack that lost its tail mid-flight: remaining entries are usable.
  net::Packet probe;
  probe.src = server->id();
  probe.dst = sched->id();
  probe.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  net::IntStackEntry e;
  e.device = sw->id();
  probe.int_stack = {e};  // path actually had more hops
  EXPECT_TRUE(collector->handle_packet(probe));
  EXPECT_EQ(collector->malformed(), 0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].entries.size(), 1u);
}

TEST_F(ProbeFixture, NonConsecutiveRepeatAccepted) {
  // [7, 8, 7] is a legal (if odd) forwarding loop; only back-to-back
  // repeats are physically impossible and rejected.
  net::Packet probe;
  probe.src = server->id();
  probe.dst = sched->id();
  probe.geneve = net::GeneveOption{.type = net::kIntProbeOptionType};
  net::IntStackEntry a, b, c;
  a.device = core::NodeId{7};
  b.device = core::NodeId{8};
  c.device = core::NodeId{7};
  probe.int_stack = {a, b, c};
  EXPECT_TRUE(collector->handle_packet(probe));
  EXPECT_EQ(collector->malformed(), 0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].entries.size(), 3u);
}

TEST_F(ProbeFixture, SetIntervalRestartsTimer) {
  ProbeConfig cfg;
  cfg.interval = sim::SimDuration::milliseconds(100);
  ProbeAgent agent{*server, sched->id(), cfg};
  agent.start();
  sim.run_until(sim::SimTime::milliseconds(250));  // 3 probes: 0,100,200
  agent.set_interval(sim::SimDuration::seconds(1));
  EXPECT_EQ(agent.interval(), sim::SimDuration::seconds(1));
  sim.run_until(sim::SimTime::milliseconds(1500));
  // Restart sends immediately at 250 ms (offset 0) then at 1250 ms.
  EXPECT_EQ(agent.probes_sent(), 5);
}

TEST_F(ProbeFixture, StopHaltsProbing) {
  ProbeAgent agent{*server, sched->id()};
  agent.start();
  EXPECT_TRUE(agent.running());
  sim.run_until(sim::SimTime::milliseconds(150));
  agent.stop();
  EXPECT_FALSE(agent.running());
  const std::int64_t sent = agent.probes_sent();
  sim.run_until(sim::SimTime::seconds(2));
  EXPECT_EQ(agent.probes_sent(), sent);
}

TEST_F(ProbeFixture, ProbeTrafficMatchesPaperBudget) {
  // Paper: 10 probes/s * ~1.5 KB < 120 kbps per server.
  ProbeAgent agent{*server, sched->id()};
  agent.start();
  sim.run_until(sim::SimTime::seconds(10));
  const double kbps = static_cast<double>(agent.bytes_sent()) * 8.0 /
                      10.0 / 1000.0;
  EXPECT_LT(kbps, 120.0);
  EXPECT_GT(kbps, 80.0);
}

}  // namespace
}  // namespace intsched::telemetry
