#include "intsched/net/packet.hpp"

#include <gtest/gtest.h>

namespace intsched::net {
namespace {

TEST(TcpFlagTest, OrCombines) {
  const TcpFlag both = TcpFlag::kSyn | TcpFlag::kAck;
  EXPECT_TRUE(has_flag(both, TcpFlag::kSyn));
  EXPECT_TRUE(has_flag(both, TcpFlag::kAck));
  EXPECT_FALSE(has_flag(both, TcpFlag::kFin));
}

TEST(TcpFlagTest, NoneHasNoFlags) {
  EXPECT_FALSE(has_flag(TcpFlag::kNone, TcpFlag::kSyn));
  EXPECT_FALSE(has_flag(TcpFlag::kNone, TcpFlag::kAck));
}

TEST(PacketTest, DefaultsAreInvalid) {
  const Packet p;
  EXPECT_EQ(p.src, core::kInvalidNode);
  EXPECT_EQ(p.dst, core::kInvalidNode);
  EXPECT_FALSE(p.is_int_probe());
  EXPECT_TRUE(p.int_stack.empty());
  EXPECT_LT(p.last_egress_timestamp, sim::SimTime::zero());
}

TEST(PacketTest, L4Accessors) {
  Packet p;
  p.l4 = UdpHeader{.src_port = 10, .dst_port = 20};
  ASSERT_NE(p.udp(), nullptr);
  EXPECT_EQ(p.tcp(), nullptr);
  EXPECT_EQ(p.udp()->dst_port, 20);

  p.l4 = TcpHeader{.src_port = 1, .dst_port = 2, .seq = 100};
  ASSERT_NE(p.tcp(), nullptr);
  EXPECT_EQ(p.udp(), nullptr);
  EXPECT_EQ(p.tcp()->seq, 100);
}

TEST(PacketTest, ProbeRequiresGeneveOptionType) {
  Packet p;
  EXPECT_FALSE(p.is_int_probe());
  p.geneve = GeneveOption{};  // wrong type value
  EXPECT_FALSE(p.is_int_probe());
  p.geneve = GeneveOption{.type = kIntProbeOptionType};
  EXPECT_TRUE(p.is_int_probe());
}

TEST(PacketTest, ToStringMentionsKeyFields) {
  Packet p;
  p.src = core::NodeId{1};
  p.dst = core::NodeId{2};
  p.uid = 77;
  p.wire_size = 1500;
  p.protocol = IpProtocol::kTcp;
  const std::string s = to_string(p);
  EXPECT_NE(s.find("77"), std::string::npos);
  EXPECT_NE(s.find("tcp"), std::string::npos);
  EXPECT_NE(s.find("1500"), std::string::npos);
}

TEST(PacketTest, ProbeMarkerInToString) {
  Packet p;
  p.geneve = GeneveOption{.type = kIntProbeOptionType};
  EXPECT_NE(to_string(p).find("probe"), std::string::npos);
}

TEST(PacketTest, WireConstantsSane) {
  // A full segment plus headers matches the paper's 1.5 KB packets.
  EXPECT_EQ(kMss + kHeaderBytes, 1500);
  EXPECT_GT(kIntStackEntryWireBytes, 0);
}

}  // namespace
}  // namespace intsched::net
