// Port/link mechanics: serialization, propagation, busy-transmitter
// queueing, arrival monotonicity under jitter.
#include <gtest/gtest.h>

#include "intsched/net/node.hpp"
#include "intsched/net/topology.hpp"

namespace intsched::net {
namespace {

Packet sized_packet(sim::Bytes size) {
  Packet p;
  p.wire_size = size;
  return p;
}

struct LinkFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  Host* a = nullptr;
  Host* b = nullptr;
  std::vector<sim::SimTime> arrivals;

  void wire(LinkConfig cfg) {
    a = &topo.add_node<Host>("a");
    b = &topo.add_node<Host>("b");
    topo.connect(*a, *b, cfg);
    topo.install_routes();
    b->set_receiver([this](Packet&&) { arrivals.push_back(sim.now()); });
  }
};

TEST_F(LinkFixture, DeliveryTimeIsSerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.rate = sim::DataRate::megabits_per_second(8.0);  // 1 ms per 1000 B
  cfg.prop_delay = sim::SimDuration::milliseconds(10);
  wire(cfg);

  Packet p = sized_packet(1000);
  p.dst = b->id();
  a->send(std::move(p));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], sim::SimTime::milliseconds(11));
}

TEST_F(LinkFixture, BackToBackPacketsSerialize) {
  LinkConfig cfg;
  cfg.rate = sim::DataRate::megabits_per_second(8.0);
  cfg.prop_delay = sim::SimDuration::milliseconds(10);
  wire(cfg);

  for (int i = 0; i < 3; ++i) {
    Packet p = sized_packet(1000);
    p.dst = b->id();
    a->send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  // 1 ms serialization each, pipelined over the same 10 ms propagation.
  EXPECT_EQ(arrivals[0], sim::SimTime::milliseconds(11));
  EXPECT_EQ(arrivals[1], sim::SimTime::milliseconds(12));
  EXPECT_EQ(arrivals[2], sim::SimTime::milliseconds(13));
}

TEST_F(LinkFixture, JitterNeverReordersAChannel) {
  LinkConfig cfg;
  cfg.rate = sim::DataRate::megabits_per_second(100.0);
  cfg.prop_delay = sim::SimDuration::milliseconds(5);
  cfg.jitter = sim::SimDuration::milliseconds(4);
  wire(cfg);

  std::vector<std::uint64_t> uids;
  b->set_receiver([&](Packet&& p) {
    arrivals.push_back(sim.now());
    uids.push_back(p.uid);
  });
  for (int i = 0; i < 50; ++i) {
    Packet p = sized_packet(200);
    p.dst = b->id();
    a->send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 50u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
    EXPECT_GT(uids[i], uids[i - 1]);  // FIFO preserved
  }
}

TEST_F(LinkFixture, PortCountersTrackTraffic) {
  LinkConfig cfg;
  wire(cfg);
  for (int i = 0; i < 4; ++i) {
    Packet p = sized_packet(500);
    p.dst = b->id();
    a->send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(a->port(0).tx_packets(), 4);
  EXPECT_EQ(a->port(0).tx_bytes(), 2000);
  EXPECT_EQ(b->rx_packets(), 4);
  EXPECT_EQ(b->rx_bytes(), 2000);
}

TEST_F(LinkFixture, BusyTimeAccumulates) {
  LinkConfig cfg;
  cfg.rate = sim::DataRate::megabits_per_second(8.0);
  wire(cfg);
  Packet p = sized_packet(1000);  // 1 ms serialization
  p.dst = b->id();
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(a->port(0).busy_time(), sim::SimDuration::milliseconds(1));
}

TEST_F(LinkFixture, HostDropsForeignPackets) {
  LinkConfig cfg;
  wire(cfg);
  Packet p = sized_packet(100);
  p.dst = core::NodeId{999};  // not b
  a->port(0).send(std::move(p));
  sim.run();
  EXPECT_TRUE(arrivals.empty());
}

TEST_F(LinkFixture, HostAssignsDistinctUids) {
  LinkConfig cfg;
  wire(cfg);
  std::vector<std::uint64_t> uids;
  b->set_receiver([&](Packet&& p) { uids.push_back(p.uid); });
  for (int i = 0; i < 3; ++i) {
    Packet p = sized_packet(100);
    p.dst = b->id();
    a->send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_NE(uids[0], uids[1]);
  EXPECT_NE(uids[1], uids[2]);
}

TEST(LinkErrorTest, SendWithoutPortThrows) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& lonely = topo.add_node<Host>("lonely");
  Packet p;
  p.dst = core::NodeId{0};
  EXPECT_THROW(lonely.send(std::move(p)), std::logic_error);
}

TEST(LinkErrorTest, UnconnectedPortThrowsOnTransmit) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& h = topo.add_node<Host>("h");
  h.add_port(LinkConfig{});
  Packet p;
  p.dst = core::NodeId{5};
  p.wire_size = 10;
  EXPECT_THROW(h.port(0).send(std::move(p)), std::logic_error);
}

TEST(NodeClockTest, SkewShiftsLocalTime) {
  sim::Simulator sim;
  net::Topology topo{sim};
  auto& h = topo.add_node<Host>("h");
  h.set_clock_skew(sim::SimDuration::micros(250));
  sim.schedule_at(sim::SimTime::seconds(1), [] {});
  sim.run();
  EXPECT_EQ(h.local_time(),
            sim::SimTime::seconds(1) + sim::SimDuration::micros(250));
}

}  // namespace
}  // namespace intsched::net
