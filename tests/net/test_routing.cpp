#include "intsched/net/routing.hpp"

#include <gtest/gtest.h>

namespace intsched::net {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::millis(v); }
core::NodeId nid(int v) { return core::NodeId{v}; }

TEST(GraphTest, AddEdgeTracksNodes) {
  Graph g;
  g.add_edge(nid(1), nid(2), 0, ms(10));
  EXPECT_TRUE(g.has_node(nid(1)));
  EXPECT_TRUE(g.has_node(nid(2)));  // sink is known even with no out-edges
  EXPECT_FALSE(g.has_node(nid(3)));
}

TEST(GraphTest, NodesSorted) {
  Graph g;
  g.add_edge(nid(5), nid(1), 0, ms(1));
  g.add_edge(nid(3), nid(5), 0, ms(1));
  EXPECT_EQ(g.nodes(), (std::vector<core::NodeId>{nid(1), nid(3), nid(5)}));
}

TEST(DijkstraTest, LineGraphDistances) {
  Graph g;  // 0 -10ms- 1 -20ms- 2
  g.add_edge(nid(0), nid(1), 0, ms(10));
  g.add_edge(nid(1), nid(0), 0, ms(10));
  g.add_edge(nid(1), nid(2), 1, ms(20));
  g.add_edge(nid(2), nid(1), 0, ms(20));
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_EQ(sp.distance.at(nid(0)), ms(0));
  EXPECT_EQ(sp.distance.at(nid(1)), ms(10));
  EXPECT_EQ(sp.distance.at(nid(2)), ms(30));
}

TEST(DijkstraTest, PathReconstruction) {
  Graph g;
  g.add_edge(nid(0), nid(1), 0, ms(10));
  g.add_edge(nid(1), nid(2), 0, ms(10));
  g.add_edge(nid(2), nid(3), 0, ms(10));
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_EQ(sp.path_to(nid(3)),
            (std::vector<core::NodeId>{nid(0), nid(1), nid(2), nid(3)}));
  EXPECT_EQ(sp.path_to(nid(0)), (std::vector<core::NodeId>{nid(0)}));
}

TEST(DijkstraTest, UnreachableNodeAbsent) {
  Graph g;
  g.add_edge(nid(0), nid(1), 0, ms(10));
  g.add_edge(nid(2), nid(3), 0, ms(10));  // disconnected component
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_FALSE(sp.distance.contains(nid(3)));
  EXPECT_TRUE(sp.path_to(nid(3)).empty());
}

TEST(DijkstraTest, PicksShorterOfTwoRoutes) {
  Graph g;  // 0->1->3 costs 30; 0->2->3 costs 25
  g.add_edge(nid(0), nid(1), 0, ms(10));
  g.add_edge(nid(1), nid(3), 0, ms(20));
  g.add_edge(nid(0), nid(2), 1, ms(15));
  g.add_edge(nid(2), nid(3), 0, ms(10));
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_EQ(sp.distance.at(nid(3)), ms(25));
  EXPECT_EQ(sp.path_to(nid(3)),
            (std::vector<core::NodeId>{nid(0), nid(2), nid(3)}));
  EXPECT_EQ(sp.first_hop_port.at(nid(3)), 1);
}

TEST(DijkstraTest, FirstHopPortPropagates) {
  Graph g;
  g.add_edge(nid(0), nid(1), 7, ms(10));
  g.add_edge(nid(1), nid(2), 3, ms(10));
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_EQ(sp.first_hop_port.at(nid(1)), 7);
  EXPECT_EQ(sp.first_hop_port.at(nid(2)), 7);  // via node 1
  EXPECT_FALSE(sp.first_hop_port.contains(nid(0)));
}

TEST(DijkstraTest, TieBreaksBySmallerPredecessor) {
  // Two equal-cost routes to 3: via 1 and via 2. Predecessor must be 1.
  Graph g;
  g.add_edge(nid(0), nid(2), 1, ms(10));
  g.add_edge(nid(0), nid(1), 0, ms(10));
  g.add_edge(nid(2), nid(3), 0, ms(10));
  g.add_edge(nid(1), nid(3), 0, ms(10));
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_EQ(sp.distance.at(nid(3)), ms(20));
  EXPECT_EQ(sp.predecessor.at(nid(3)), nid(1));
  EXPECT_EQ(sp.path_to(nid(3)),
            (std::vector<core::NodeId>{nid(0), nid(1), nid(3)}));
}

TEST(DijkstraTest, UnknownSourceReachesOnlyItself) {
  Graph g;
  g.add_edge(nid(0), nid(1), 0, ms(10));
  const ShortestPaths sp = dijkstra(g, nid(42));
  // A source outside the graph still has distance 0 to itself and
  // reaches nothing else.
  ASSERT_EQ(sp.distance.size(), 1u);
  EXPECT_EQ(sp.distance.at(nid(42)), ms(0));
  EXPECT_TRUE(sp.path_to(nid(1)).empty());
}

TEST(DijkstraTest, RingBothDirections) {
  Graph g;  // ring 0-1-2-3-0, unit cost
  for (int i = 0; i < 4; ++i) {
    g.add_edge(nid(i), nid((i + 1) % 4), 0, ms(10));
    g.add_edge(nid((i + 1) % 4), nid(i), 1, ms(10));
  }
  const ShortestPaths sp = dijkstra(g, nid(0));
  EXPECT_EQ(sp.distance.at(nid(2)), ms(20));  // both ways equal
  EXPECT_EQ(sp.distance.at(nid(1)), ms(10));
  EXPECT_EQ(sp.distance.at(nid(3)), ms(10));
}

}  // namespace
}  // namespace intsched::net
