#include "intsched/net/queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace intsched::net {
namespace {

Packet make_packet(std::uint64_t uid, sim::Bytes size = 100) {
  Packet p;
  p.uid = uid;
  p.wire_size = size;
  return p;
}

TEST(DropTailQueueTest, StartsEmpty) {
  DropTailQueue q{4};
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size_pkts(), 0);
  EXPECT_EQ(q.size_bytes(), 0);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueueTest, FifoOrder) {
  DropTailQueue q{10};
  for (std::uint64_t i = 0; i < 5; ++i) q.enqueue(make_packet(i));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
}

TEST(DropTailQueueTest, DropsWhenFull) {
  DropTailQueue q{2};
  EXPECT_TRUE(q.enqueue(make_packet(1)));
  EXPECT_TRUE(q.enqueue(make_packet(2)));
  EXPECT_FALSE(q.enqueue(make_packet(3)));
  EXPECT_EQ(q.size_pkts(), 2);
  EXPECT_EQ(q.dropped(), 1);
  EXPECT_EQ(q.enqueued(), 2);
}

TEST(DropTailQueueTest, ByteAccounting) {
  DropTailQueue q{10};
  q.enqueue(make_packet(1, 100));
  q.enqueue(make_packet(2, 250));
  EXPECT_EQ(q.size_bytes(), 350);
  q.dequeue();
  EXPECT_EQ(q.size_bytes(), 250);
  q.dequeue();
  EXPECT_EQ(q.size_bytes(), 0);
}

TEST(DropTailQueueTest, CountersAccumulate) {
  DropTailQueue q{2};
  q.enqueue(make_packet(1));
  q.enqueue(make_packet(2));
  q.enqueue(make_packet(3));  // dropped
  q.dequeue();
  q.enqueue(make_packet(4));
  EXPECT_EQ(q.enqueued(), 3);
  EXPECT_EQ(q.dequeued(), 1);
  EXPECT_EQ(q.dropped(), 1);
}

TEST(DropTailQueueTest, ObserverSeesPreEnqueueDepth) {
  // BMv2 enq_qdepth semantics: the depth the arriving packet observes,
  // not including itself.
  DropTailQueue q{3};
  std::vector<std::int64_t> observed;
  q.set_occupancy_observer([&](std::int64_t d) { observed.push_back(d); });
  q.enqueue(make_packet(1));
  q.enqueue(make_packet(2));
  q.enqueue(make_packet(3));
  q.enqueue(make_packet(4));  // dropped, observes full queue
  EXPECT_EQ(observed, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(DropTailQueueTest, DropObserverFiresOnlyOnDrop) {
  DropTailQueue q{1};
  int drops = 0;
  q.set_drop_observer([&](const Packet&) { ++drops; });
  q.enqueue(make_packet(1));
  EXPECT_EQ(drops, 0);
  q.enqueue(make_packet(2));
  EXPECT_EQ(drops, 1);
}

TEST(DropTailQueueTest, CapacityQuery) {
  DropTailQueue q{42};
  EXPECT_EQ(q.capacity_pkts(), 42);
}

TEST(DropTailQueueTest, ReuseAfterDrain) {
  DropTailQueue q{1};
  q.enqueue(make_packet(1));
  q.enqueue(make_packet(2));  // dropped
  q.dequeue();
  EXPECT_TRUE(q.enqueue(make_packet(3)));
  EXPECT_EQ(q.dequeue()->uid, 3u);
}

}  // namespace
}  // namespace intsched::net
