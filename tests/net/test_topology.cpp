#include "intsched/net/topology.hpp"

#include <gtest/gtest.h>

#include "intsched/p4/switch.hpp"

namespace intsched::net {
namespace {

struct TopoFixture : ::testing::Test {
  sim::Simulator sim;
  Topology topo{sim};
};

TEST_F(TopoFixture, SequentialIdsDoubleAsAddresses) {
  auto& a = topo.add_node<Host>("a");
  auto& b = topo.add_node<Host>("b");
  EXPECT_EQ(a.id(), core::NodeId{0});
  EXPECT_EQ(b.id(), core::NodeId{1});
  EXPECT_EQ(&topo.node(core::NodeId{0}), &a);
  EXPECT_EQ(&topo.node(core::NodeId{1}), &b);
}

TEST_F(TopoFixture, ConnectCreatesPortsBothSides) {
  auto& a = topo.add_node<Host>("a");
  auto& b = topo.add_node<Host>("b");
  topo.connect(a, b, LinkConfig{});
  EXPECT_EQ(a.port_count(), 1);
  EXPECT_EQ(b.port_count(), 1);
  EXPECT_EQ(a.port(0).peer(), &b);
  EXPECT_EQ(b.port(0).peer(), &a);
}

TEST_F(TopoFixture, GraphHasBothDirections) {
  auto& a = topo.add_node<Host>("a");
  auto& b = topo.add_node<Host>("b");
  topo.connect(a, b, LinkConfig{});
  const auto& g = topo.graph();
  ASSERT_EQ(g.adjacency.at(a.id()).size(), 1u);
  ASSERT_EQ(g.adjacency.at(b.id()).size(), 1u);
  EXPECT_EQ(g.adjacency.at(a.id())[0].to, b.id());
}

TEST_F(TopoFixture, PathBeforeInstallThrows) {
  auto& a = topo.add_node<Host>("a");
  auto& b = topo.add_node<Host>("b");
  topo.connect(a, b, LinkConfig{});
  EXPECT_THROW(static_cast<void>(topo.path(a.id(), b.id())),
               std::logic_error);
}

TEST_F(TopoFixture, PathAndDelayThroughSwitch) {
  auto& a = topo.add_node<Host>("a");
  auto& b = topo.add_node<Host>("b");
  auto& sw = topo.add_node<p4::P4Switch>("s");
  LinkConfig cfg;
  cfg.prop_delay = sim::SimDuration::milliseconds(10);
  topo.connect(a, sw, cfg);
  topo.connect(b, sw, cfg);
  topo.install_routes();
  EXPECT_EQ(topo.path(a.id(), b.id()),
            (std::vector<core::NodeId>{a.id(), sw.id(), b.id()}));
  EXPECT_EQ(topo.path_delay(a.id(), b.id()), sim::SimDuration::milliseconds(20));
}

TEST_F(TopoFixture, RoutesInstalledIntoForwardingTables) {
  auto& a = topo.add_node<Host>("a");
  auto& b = topo.add_node<Host>("b");
  auto& sw = topo.add_node<p4::P4Switch>("s");
  topo.connect(a, sw, LinkConfig{});
  topo.connect(b, sw, LinkConfig{});
  topo.install_routes();
  EXPECT_EQ(sw.route_to(a.id()), 0);
  EXPECT_EQ(sw.route_to(b.id()), 1);
  EXPECT_EQ(sw.forwarding_table().lookup(b.id()), 1);
}

TEST_F(TopoFixture, UnknownNodeThrows) {
  EXPECT_THROW(static_cast<void>(topo.node(core::NodeId{12})), std::invalid_argument);
}

TEST_F(TopoFixture, UnreachableDelayThrows) {
  auto& a = topo.add_node<Host>("a");
  topo.add_node<Host>("isolated");
  topo.connect(a, topo.add_node<Host>("c"), LinkConfig{});
  topo.install_routes();
  EXPECT_THROW(static_cast<void>(topo.path_delay(a.id(), core::NodeId{1})),
               std::invalid_argument);
}

TEST_F(TopoFixture, NodesOfKindFilters) {
  topo.add_node<Host>("a");
  topo.add_node<p4::P4Switch>("s1");
  topo.add_node<Host>("b");
  topo.add_node<p4::P4Switch>("s2");
  EXPECT_EQ(topo.nodes_of_kind(NodeKind::kHost).size(), 2u);
  EXPECT_EQ(topo.nodes_of_kind(NodeKind::kSwitch).size(), 2u);
  EXPECT_EQ(topo.node_count(), 4);
}

TEST_F(TopoFixture, RouteToUnknownDestinationIsNegative) {
  auto& a = topo.add_node<Host>("a");
  EXPECT_EQ(a.route_to(core::NodeId{99}), -1);
}

}  // namespace
}  // namespace intsched::net
