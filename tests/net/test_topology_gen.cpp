// Property pack for the metro-scale topology generators: generated
// topologies are well-formed (connected, degree-bounded, no self-loops or
// duplicate links, hosts of degree 1) and generation is a pure function
// of the config — byte-identical fingerprints across repeated calls with
// the same seed, different bytes once the seed (jitter stream) moves.
#include "intsched/net/topology_gen.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "intsched/sim/rng.hpp"

namespace intsched::net {
namespace {

TEST(TopologyGenTest, ClosPodCountsAndRoles) {
  PodShape shape;  // 2 spines, 4 leaves, 2 hosts/leaf, 2 edge servers
  const GenTopology topo = TopologyGen::clos_pod(shape, 7);

  EXPECT_EQ(topo.regions, core::RegionId{1});
  EXPECT_EQ(topo.switch_count(), shape.spines + shape.leaves);
  EXPECT_EQ(topo.hosts().size(),
            static_cast<std::size_t>(shape.leaves * shape.hosts_per_leaf));
  EXPECT_EQ(topo.edge_servers().size(),
            static_cast<std::size_t>(shape.edge_servers_per_pod));
  // spines x leaves fabric + one access link per host.
  EXPECT_EQ(topo.links.size(),
            static_cast<std::size_t>(shape.spines * shape.leaves +
                                     shape.leaves * shape.hosts_per_leaf));
  for (const GenNode& n : topo.nodes) EXPECT_EQ(n.region, core::RegionId{0}) << n.name;
  EXPECT_TRUE(topo.border_links().empty());
}

TEST(TopologyGenTest, ClosPodWellFormedWithDegreeBound) {
  PodShape shape;
  const GenTopology topo = TopologyGen::clos_pod(shape, 7, 0.05);
  EXPECT_TRUE(topo.validate().empty());

  // Leaf degree = spines + hosts_per_leaf (the pod's maximum); one less
  // must trip the bound check.
  const std::int32_t max_degree =
      std::max(shape.leaves, shape.spines + shape.hosts_per_leaf);
  EXPECT_TRUE(topo.validate(max_degree).empty());
  EXPECT_FALSE(topo.validate(max_degree - 1).empty());
}

TEST(TopologyGenTest, RingOfPodsCountsBordersAndRegions) {
  MetroConfig cfg;
  cfg.pods = 4;
  cfg.ring_chords = 2;
  const GenTopology topo = TopologyGen::ring_of_pods(cfg);

  EXPECT_TRUE(topo.validate().empty());
  EXPECT_EQ(topo.regions, core::RegionId{4});
  EXPECT_EQ(topo.switch_count(),
            4 * (cfg.pod.spines + cfg.pod.leaves));
  // 4 ring trunks + chords 0<->2 and 1<->3 (both new pairs).
  EXPECT_EQ(topo.border_links().size(), 6u);
  for (const GenLink& l : topo.border_links()) {
    EXPECT_NE(topo.region_of(l.a), topo.region_of(l.b));
  }
  // Every node carries its pod's region label.
  for (const GenNode& n : topo.nodes) {
    EXPECT_GE(n.region, core::RegionId{0});
    EXPECT_LT(n.region, topo.regions);
  }
}

TEST(TopologyGenTest, TwoPodRingDedupesTheTrunk) {
  MetroConfig cfg;  // pods = 2, 1 gateway
  const GenTopology topo = TopologyGen::ring_of_pods(cfg);
  EXPECT_TRUE(topo.validate().empty());
  EXPECT_EQ(topo.border_links().size(), 1u);
}

TEST(TopologyGenTest, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  MetroConfig cfg;
  cfg.pods = 3;
  cfg.delay_jitter_frac = 0.05;
  const GenTopology a = TopologyGen::ring_of_pods(cfg);
  const GenTopology b = TopologyGen::ring_of_pods(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  MetroConfig other = cfg;
  other.seed = cfg.seed + 1;
  EXPECT_NE(a.fingerprint(),
            TopologyGen::ring_of_pods(other).fingerprint());
}

TEST(TopologyGenTest, GraphHasBothDirectionsWithStablePorts) {
  MetroConfig cfg;
  const GenTopology topo = TopologyGen::ring_of_pods(cfg);
  const Graph g1 = topo.graph();
  const Graph g2 = topo.graph();

  for (const GenLink& l : topo.links) {
    for (const auto& [from, to] :
         {std::pair{l.a, l.b}, std::pair{l.b, l.a}}) {
      const auto it = g1.adjacency.find(from);
      ASSERT_NE(it, g1.adjacency.end());
      const auto edge = std::ranges::find_if(
          it->second, [&](const Graph::Edge& e) { return e.to == to; });
      ASSERT_NE(edge, it->second.end()) << from << "->" << to;
      EXPECT_EQ(edge->cost, l.delay);
      // Port assignment is deterministic across re-instantiations.
      const auto& peers2 = g2.adjacency.at(from);
      const auto edge2 = std::ranges::find_if(
          peers2, [&](const Graph::Edge& e) { return e.to == to; });
      ASSERT_NE(edge2, peers2.end());
      EXPECT_EQ(edge->out_port, edge2->out_port);
    }
  }
}

// Randomized sweep: every config in a seeded family must generate a
// well-formed topology, and regeneration must be byte-identical.
TEST(TopologyGenTest, RandomizedConfigFamilyIsWellFormedAndDeterministic) {
  sim::Rng rng = sim::Rng::derive(99, "test.topogen.configs");
  for (int trial = 0; trial < 12; ++trial) {
    MetroConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
    cfg.pods = static_cast<std::int32_t>(rng.uniform_int(2, 6));
    cfg.pod.spines = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    cfg.pod.leaves = static_cast<std::int32_t>(rng.uniform_int(2, 5));
    cfg.pod.hosts_per_leaf = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    cfg.pod.edge_servers_per_pod = static_cast<std::int32_t>(rng.uniform_int(
        1, cfg.pod.leaves * cfg.pod.hosts_per_leaf));
    cfg.gateways_per_pod =
        static_cast<std::int32_t>(rng.uniform_int(1, cfg.pod.spines));
    cfg.ring_chords = static_cast<std::int32_t>(rng.uniform_int(0, 2));
    cfg.delay_jitter_frac = rng.uniform_real(0.0, 0.1);

    const GenTopology topo = TopologyGen::ring_of_pods(cfg);
    const std::vector<std::string> bad = topo.validate();
    EXPECT_TRUE(bad.empty())
        << "trial " << trial << ": " << (bad.empty() ? "" : bad.front());
    EXPECT_EQ(topo.fingerprint(),
              TopologyGen::ring_of_pods(cfg).fingerprint())
        << "trial " << trial;

    // No self-loops / duplicate undirected links (validate checks this
    // too; re-check directly so the property is visible in the test).
    std::set<std::pair<core::NodeId, core::NodeId>> seen;
    for (const GenLink& l : topo.links) {
      EXPECT_NE(l.a, l.b);
      EXPECT_TRUE(seen.insert(std::minmax(l.a, l.b)).second)
          << "duplicate link " << l.a << "-" << l.b;
      EXPECT_GT(l.delay, sim::SimDuration::zero());
    }
  }
}

TEST(TopologyGenTest, MetroScaleGeneratesThousandsOfSwitches) {
  // The acceptance-scale shape (metro_sweep --full): 1056 switches, 768
  // hosts, 192 edge servers, generated in one pure call.
  MetroConfig cfg;
  cfg.pods = 48;
  cfg.pod.spines = 6;
  cfg.pod.leaves = 16;
  cfg.pod.hosts_per_leaf = 1;
  cfg.pod.edge_servers_per_pod = 4;
  cfg.ring_chords = 2;
  const GenTopology topo = TopologyGen::ring_of_pods(cfg);
  EXPECT_EQ(topo.switch_count(), 1056);
  EXPECT_EQ(topo.hosts().size(), 768u);
  EXPECT_EQ(topo.edge_servers().size(), 192u);
  EXPECT_TRUE(topo.validate().empty());
}

}  // namespace
}  // namespace intsched::net
