// FaultPlan unit tests: config semantics, deterministic fault draws,
// link-state bookkeeping, topology arming (flaps, kills, skews), and the
// probe agent's drop/duplicate/delay hooks.
#include "intsched/net/fault.hpp"

#include <gtest/gtest.h>

#include "intsched/net/topology.hpp"
#include "intsched/p4/switch.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/int_program.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/host_stack.hpp"

namespace intsched::net {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

TEST(FaultPlanConfigTest, DefaultIsDisabled) {
  EXPECT_FALSE(FaultPlanConfig{}.enabled());
}

TEST(FaultPlanConfigTest, AnyKnobEnables) {
  FaultPlanConfig drop;
  drop.probe.drop_probability = 0.1;
  EXPECT_TRUE(drop.enabled());
  FaultPlanConfig dup;
  dup.probe.duplicate_probability = 0.1;
  EXPECT_TRUE(dup.enabled());
  FaultPlanConfig delay;
  delay.probe.delay_probability = 0.1;
  EXPECT_TRUE(delay.enabled());
  FaultPlanConfig flap;
  flap.link_flaps.push_back(LinkFlapSpec{core::NodeId{0}, core::NodeId{1}, at_ms(1), at_ms(2)});
  EXPECT_TRUE(flap.enabled());
  FaultPlanConfig kill;
  kill.switch_kills.push_back(SwitchKillSpec{core::NodeId{0}, at_ms(1), at_ms(2)});
  EXPECT_TRUE(kill.enabled());
  FaultPlanConfig skew;
  skew.clock_skews.push_back(ClockSkewSpec{core::NodeId{0}, ms(1)});
  EXPECT_TRUE(skew.enabled());
}

TEST(FaultPlanTest, DropDrawsAreDeterministicPerSeed) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.probe.drop_probability = 0.3;
  FaultPlan a{cfg};
  FaultPlan b{cfg};
  std::int64_t dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool da = a.should_drop_probe();
    EXPECT_EQ(da, b.should_drop_probe());
    if (da) ++dropped;
  }
  EXPECT_EQ(a.counters().probes_dropped, dropped);
  // Law of large numbers sanity: within a loose band of 30%.
  EXPECT_GT(dropped, 2000 * 0.2);
  EXPECT_LT(dropped, 2000 * 0.4);
}

TEST(FaultPlanTest, FaultKindsDrawFromIndependentStreams) {
  // Enabling duplication must not change which probes get dropped: the
  // kinds draw from separately derived Rng streams.
  FaultPlanConfig just_drop;
  just_drop.probe.drop_probability = 0.25;
  FaultPlanConfig both = just_drop;
  both.probe.duplicate_probability = 0.5;
  FaultPlan a{just_drop};
  FaultPlan b{both};
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.should_drop_probe(), b.should_drop_probe());
    (void)b.should_duplicate_probe();
  }
}

TEST(FaultPlanTest, ProbeDelayWithinConfiguredRange) {
  FaultPlanConfig cfg;
  cfg.probe.delay_probability = 1.0;
  cfg.probe.delay_min = ms(50);
  cfg.probe.delay_max = ms(500);
  FaultPlan plan{cfg};
  for (int i = 0; i < 200; ++i) {
    const auto d = plan.probe_delay();
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, ms(50));
    EXPECT_LE(*d, ms(500));
  }
  EXPECT_EQ(plan.counters().probes_delayed, 200);
}

TEST(FaultPlanTest, DisabledProbabilitiesNeverFire) {
  FaultPlan plan{FaultPlanConfig{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.should_drop_probe());
    EXPECT_FALSE(plan.should_duplicate_probe());
    EXPECT_FALSE(plan.probe_delay().has_value());
  }
  EXPECT_EQ(plan.counters().probes_dropped, 0);
  EXPECT_EQ(plan.counters().probes_duplicated, 0);
  EXPECT_EQ(plan.counters().probes_delayed, 0);
}

TEST(FaultPlanTest, LinkStateIsUndirectedAndCounted) {
  FaultPlan plan{FaultPlanConfig{}};
  EXPECT_TRUE(plan.link_up(core::NodeId{1}, core::NodeId{2}));
  plan.set_link_state(core::NodeId{1}, core::NodeId{2}, false);
  EXPECT_FALSE(plan.link_up(core::NodeId{1}, core::NodeId{2}));
  EXPECT_FALSE(plan.link_up(core::NodeId{2}, core::NodeId{1}));  // normalized key
  plan.set_link_state(core::NodeId{2}, core::NodeId{1}, false);  // idempotent: no double count
  EXPECT_EQ(plan.counters().link_down_events, 1);
  plan.set_link_state(core::NodeId{2}, core::NodeId{1}, true);
  EXPECT_TRUE(plan.link_up(core::NodeId{1}, core::NodeId{2}));
  EXPECT_EQ(plan.counters().link_up_events, 1);
  plan.set_link_state(core::NodeId{1}, core::NodeId{2}, true);  // already up: no count
  EXPECT_EQ(plan.counters().link_up_events, 1);
}

/// host0 -- sw -- host1, probes host0 -> host1 every 50 ms.
struct WiredFixture : ::testing::Test {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  p4::P4Switch* sw = nullptr;
  std::unique_ptr<transport::HostStack> dst_stack;
  std::unique_ptr<telemetry::IntCollector> collector;

  void SetUp() override {
    src = &topo.add_node<net::Host>("src");
    dst = &topo.add_node<net::Host>("dst");
    p4::SwitchConfig cfg;
    cfg.stall_probability = 0.0;
    sw = &topo.add_node<p4::P4Switch>("sw", cfg);
    topo.connect(*src, *sw, LinkConfig{});
    topo.connect(*dst, *sw, LinkConfig{});
    topo.install_routes();
    sw->load_program(std::make_unique<telemetry::IntTelemetryProgram>());
    dst_stack = std::make_unique<transport::HostStack>(*dst);
    collector = std::make_unique<telemetry::IntCollector>(*dst);
    dst_stack->bind_udp(kProbePort, [this](const Packet& p) {
      collector->handle_packet(p);
    });
  }

  telemetry::ProbeAgent make_agent(FaultPlan* plan) {
    telemetry::ProbeConfig pc;
    pc.interval = ms(50);
    pc.faults = plan;
    return telemetry::ProbeAgent{*src, dst->id(), pc};
  }
};

TEST_F(WiredFixture, LinkFlapLosesPacketsWhileDownThenRecovers) {
  FaultPlanConfig cfg;
  cfg.link_flaps.push_back(
      LinkFlapSpec{src->id(), sw->id(), at_ms(100), at_ms(300)});
  FaultPlan plan{cfg};
  plan.arm(topo);

  auto agent = make_agent(nullptr);
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));
  agent.stop();
  sim.run_until(sim::SimTime::seconds(2));

  EXPECT_GT(plan.counters().packets_lost_link_down, 0);
  EXPECT_EQ(plan.counters().link_down_events, 1);
  EXPECT_EQ(plan.counters().link_up_events, 1);
  // Everything the wire did not eat arrived.
  EXPECT_EQ(collector->probes_received(),
            agent.probes_sent() - plan.counters().packets_lost_link_down);
  // Probes after the link came back did get through.
  EXPECT_GT(collector->probes_received(), 10);
}

TEST_F(WiredFixture, FlapWithoutUpTimeStaysDown) {
  FaultPlanConfig cfg;
  cfg.link_flaps.push_back(LinkFlapSpec{src->id(), sw->id(), at_ms(100),
                                        sim::SimTime::zero()});
  FaultPlan plan{cfg};
  plan.arm(topo);

  auto agent = make_agent(nullptr);
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_FALSE(plan.link_up(src->id(), sw->id()));
  EXPECT_EQ(plan.counters().link_up_events, 0);
  // Only the probes sent before 100 ms made it: t = 0, 50 (the 100 ms
  // probe reaches the wire after the flap event at the same timestamp).
  EXPECT_LE(collector->probes_received(), 3);
}

TEST_F(WiredFixture, SwitchKillDropsArrivalsAndClearsRegisters) {
  FaultPlanConfig cfg;
  cfg.switch_kills.push_back(SwitchKillSpec{sw->id(), at_ms(100), at_ms(400)});
  FaultPlan plan{cfg};
  plan.arm(topo);

  // Seed a register so the restart wipe is observable.
  sw->register_array("scratch", 4).write(2, 99);

  auto agent = make_agent(nullptr);
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));

  EXPECT_EQ(plan.counters().switch_kills, 1);
  EXPECT_EQ(plan.counters().switch_restarts, 1);
  EXPECT_GT(sw->rx_dropped_offline(), 0);
  EXPECT_TRUE(sw->online());
  // Crash-restart lost the register state.
  EXPECT_EQ(sw->find_register_array("scratch")->read(2), 0);
  // Probes flowed again after the restart.
  EXPECT_GT(collector->probes_received(), 10);
}

TEST_F(WiredFixture, ClockSkewAppliedOnArm) {
  FaultPlanConfig cfg;
  cfg.clock_skews.push_back(ClockSkewSpec{sw->id(), ms(7)});
  FaultPlan plan{cfg};
  plan.arm(topo);
  EXPECT_EQ(sw->clock_skew(), ms(7));
  EXPECT_EQ(sw->local_time(), sim.now() + ms(7));
}

TEST_F(WiredFixture, ArmMidRunClampsPastEventTimes) {
  sim.run_until(at_ms(500));
  FaultPlanConfig cfg;
  cfg.link_flaps.push_back(
      LinkFlapSpec{src->id(), sw->id(), at_ms(100), sim::SimTime::zero()});
  FaultPlan plan{cfg};
  EXPECT_NO_THROW(plan.arm(topo));  // down_at is already in the past
  sim.run_until(at_ms(600));
  EXPECT_FALSE(plan.link_up(src->id(), sw->id()));
}

// -- probe agent hooks --

TEST_F(WiredFixture, AgentSuppressesDroppedProbes) {
  FaultPlanConfig cfg;
  cfg.probe.drop_probability = 1.0;
  FaultPlan plan{cfg};
  plan.arm(topo);
  auto agent = make_agent(&plan);
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(agent.probes_sent(), 0);
  EXPECT_GT(agent.probes_suppressed(), 15);
  EXPECT_EQ(agent.probes_suppressed(), plan.counters().probes_dropped);
  EXPECT_EQ(collector->probes_received(), 0);
}

TEST_F(WiredFixture, AgentDuplicatesProbes) {
  FaultPlanConfig cfg;
  cfg.probe.duplicate_probability = 1.0;
  FaultPlan plan{cfg};
  plan.arm(topo);
  auto agent = make_agent(&plan);
  agent.start();
  sim.run_until(at_ms(501));
  agent.stop();
  sim.run_until(sim::SimTime::seconds(2));
  // 11 timer fires (0..500 ms), each emitting the probe twice.
  EXPECT_EQ(agent.probes_sent(), 22);
  EXPECT_EQ(plan.counters().probes_duplicated, 11);
  EXPECT_EQ(collector->probes_received(), 22);
}

TEST_F(WiredFixture, AgentDelaysProbesButDeliversThemAll) {
  FaultPlanConfig cfg;
  cfg.probe.delay_probability = 1.0;
  cfg.probe.delay_min = ms(10);
  cfg.probe.delay_max = ms(40);
  FaultPlan plan{cfg};
  plan.arm(topo);
  auto agent = make_agent(&plan);
  agent.start();
  sim.run_until(at_ms(501));
  agent.stop();  // cancels probes still sitting in the delay stage
  sim.run_until(sim::SimTime::seconds(2));
  EXPECT_EQ(plan.counters().probes_delayed, 11);
  // Every probe that was emitted arrived; none emitted after stop().
  EXPECT_EQ(collector->probes_received(), agent.probes_sent());
  EXPECT_GE(agent.probes_sent(), 10);
  EXPECT_LE(agent.probes_sent(), 11);
}

TEST_F(WiredFixture, StopCancelsDelayedProbes) {
  FaultPlanConfig cfg;
  cfg.probe.delay_probability = 1.0;
  cfg.probe.delay_min = ms(200);
  cfg.probe.delay_max = ms(400);
  FaultPlan plan{cfg};
  plan.arm(topo);
  auto agent = make_agent(&plan);
  agent.start();
  sim.run_until(at_ms(101));  // 3 timer fires, all still in the delay stage
  agent.stop();
  sim.run_until(sim::SimTime::seconds(2));
  EXPECT_EQ(agent.probes_sent(), 0);
  EXPECT_EQ(collector->probes_received(), 0);
}

TEST_F(WiredFixture, NullPlanIsZeroCost) {
  // The exact probe count of the fault-free path: nothing consumed any
  // fault Rng stream and nothing was suppressed.
  auto agent = make_agent(nullptr);
  agent.start();
  sim.run_until(sim::SimTime::seconds(1));
  agent.stop();
  sim.run_until(sim::SimTime::seconds(2));  // drain the in-flight probe
  EXPECT_EQ(agent.probes_sent(), 21);
  EXPECT_EQ(agent.probes_suppressed(), 0);
  EXPECT_EQ(collector->probes_received(), 21);
}

}  // namespace
}  // namespace intsched::net
