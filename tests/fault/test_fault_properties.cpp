// Property suite for the fault layer: for a family of fault plans and
// seeds, (a) the simulation always terminates with a sane clock, (b) the
// probe conservation ledger closes exactly — every probe that entered the
// network is accounted for as delivered, malformed, or destroyed by a
// specific fault — and (c) identically-seeded runs produce byte-identical
// experiment reports (the determinism regression the whole repo relies on).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/fault_sweep.hpp"
#include "intsched/net/fault.hpp"
#include "intsched/sim/strfmt.hpp"
#include "intsched/telemetry/collector.hpp"
#include "intsched/telemetry/probe_agent.hpp"
#include "intsched/transport/host_stack.hpp"

namespace intsched {
namespace {

sim::SimDuration ms(int v) { return sim::SimDuration::milliseconds(v); }
sim::SimTime at_ms(int v) { return sim::SimTime::at(ms(v)); }

/// One probe-only run on the Fig. 4 network under the given plan; returns
/// every number the conservation ledger needs.
struct LedgerResult {
  std::int64_t sent = 0;        ///< probes that entered the network
  std::int64_t suppressed = 0;  ///< dropped by the plan pre-transmission
  std::int64_t received = 0;
  std::int64_t malformed = 0;
  std::int64_t lost_link_down = 0;
  std::int64_t offline_drops = 0;
  std::int64_t queue_drops = 0;
  std::int64_t pipeline_drops = 0;
  sim::SimTime end_time = sim::SimTime::zero();
  std::int64_t events = 0;

  [[nodiscard]] std::int64_t destroyed() const {
    return lost_link_down + offline_drops + queue_drops + pipeline_drops;
  }
  [[nodiscard]] std::string fingerprint() const {
    return sim::cat(sent, ":", suppressed, ":", received, ":", malformed,
                    ":", lost_link_down, ":", offline_drops, ":",
                    queue_drops, ":", pipeline_drops, ":", events);
  }
};

LedgerResult run_probe_only(const net::FaultPlanConfig& plan_cfg) {
  sim::Simulator sim;
  exp::Fig4Network network{sim, exp::Fig4Config{}};
  net::FaultPlan plan{plan_cfg};
  plan.arm(network.topology());

  transport::HostStack sched_stack{network.scheduler_host()};
  telemetry::IntCollector collector{network.scheduler_host()};
  sched_stack.bind_udp(net::kProbePort, [&](const net::Packet& p) {
    collector.handle_packet(p);
  });

  std::vector<std::unique_ptr<telemetry::ProbeAgent>> agents;
  for (net::Host* h : network.hosts()) {
    if (h->id() == network.scheduler_host().id()) continue;
    telemetry::ProbeConfig pc;
    pc.interval = ms(100);
    pc.faults = &plan;
    agents.push_back(std::make_unique<telemetry::ProbeAgent>(
        *h, network.scheduler_host().id(), pc));
    agents.back()->start();
  }

  sim.run_until(sim::SimTime::seconds(5));
  for (auto& a : agents) a->stop();
  // Drain: longest path + max probe delay is well under this margin, so
  // afterwards every packet is either delivered or counted as destroyed.
  sim.run_until(sim::SimTime::seconds(10));

  LedgerResult r;
  for (const auto& a : agents) {
    r.sent += a->probes_sent();
    r.suppressed += a->probes_suppressed();
  }
  r.received = collector.probes_received();
  r.malformed = collector.malformed();
  r.lost_link_down = plan.counters().packets_lost_link_down;
  for (core::NodeId id = core::NodeId{0}; id.value() < network.topology().node_count(); ++id) {
    r.offline_drops += network.topology().node(id).rx_dropped_offline();
  }
  for (const p4::P4Switch* sw : network.switches()) {
    r.queue_drops += sw->queue_drops();
    r.pipeline_drops += sw->pipeline_drops();
  }
  r.end_time = sim.now();
  r.events = sim.events_executed();
  return r;
}

/// The plan family the properties quantify over: probe faults, a link
/// flap, and a switch kill/restart, all scaled by the seed.
net::FaultPlanConfig plan_for_seed(std::uint64_t seed) {
  net::FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.probe.drop_probability = 0.05 * static_cast<double>(seed % 4);
  cfg.probe.duplicate_probability = 0.1 * static_cast<double>(seed % 3);
  cfg.probe.delay_probability = 0.15 * static_cast<double>(seed % 2);
  // Flap a host access link and a switch-to-switch link.
  cfg.link_flaps.push_back(net::LinkFlapSpec{
      core::NodeId{0}, core::NodeId{8}, at_ms(500 + 100 * static_cast<int>(seed % 5)), at_ms(2000)});
  cfg.link_flaps.push_back(net::LinkFlapSpec{core::NodeId{10}, core::NodeId{13}, at_ms(1500), at_ms(1600)});
  // Kill a mid switch; odd seeds never restart it.
  cfg.switch_kills.push_back(net::SwitchKillSpec{
      core::NodeId{16}, at_ms(1000), seed % 2 == 0 ? at_ms(3000) : sim::SimTime::zero()});
  cfg.clock_skews.push_back(
      net::ClockSkewSpec{core::NodeId{9}, sim::SimDuration::microseconds(
                                static_cast<std::int64_t>(seed) * 100)});
  return cfg;
}

TEST(FaultPropertyTest, ConservationLedgerClosesUnderAnyPlan) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL}) {
    const LedgerResult r = run_probe_only(plan_for_seed(seed));
    SCOPED_TRACE(sim::cat("seed ", seed, " ledger ", r.fingerprint()));
    // Termination with a sane clock: the run reached its deadline, no
    // event executed at a negative time (the simulator would have thrown),
    // and the queue never starved mid-run.
    EXPECT_EQ(r.end_time, sim::SimTime::seconds(10));
    EXPECT_GT(r.events, 0);
    // Something actually happened in every arm.
    EXPECT_GT(r.sent, 0);
    EXPECT_GT(r.received, 0);
    // Conservation: probes that entered the network either reached the
    // collector (parsed or malformed) or were destroyed by an attributed
    // fault. Nothing vanishes, nothing is double-counted.
    EXPECT_EQ(r.sent, r.received + r.malformed + r.destroyed());
  }
}

TEST(FaultPropertyTest, IdenticalSeedsProduceIdenticalLedgers) {
  for (const std::uint64_t seed : {3ULL, 5ULL}) {
    const LedgerResult a = run_probe_only(plan_for_seed(seed));
    const LedgerResult b = run_probe_only(plan_for_seed(seed));
    EXPECT_EQ(a.fingerprint(), b.fingerprint()) << "seed " << seed;
  }
}

TEST(FaultPropertyTest, FaultFreePlanArmedIsInert) {
  // Arming a disabled plan must not change anything measurable: same
  // probe/report counts as not arming at all.
  const LedgerResult faulty = run_probe_only(net::FaultPlanConfig{});
  EXPECT_EQ(faulty.suppressed, 0);
  EXPECT_EQ(faulty.lost_link_down, 0);
  EXPECT_EQ(faulty.offline_drops, 0);
  EXPECT_EQ(faulty.sent, faulty.received + faulty.malformed +
                             faulty.queue_drops + faulty.pipeline_drops);
}

/// Serializes everything an experiment reports into one comparable blob.
std::string report_blob(const exp::ExperimentResult& r) {
  std::ostringstream os;
  os << r.tasks_total << '/' << r.tasks_completed << '\n'
     << r.sim_duration.ns() << ' ' << r.events_executed << '\n'
     << r.probes_sent << ' ' << r.probe_bytes_sent << ' '
     << r.probe_reports << ' ' << r.queries_served << ' '
     << r.switch_queue_drops << ' ' << r.background_flows << '\n'
     << edge::to_string(r.degradation) << '\n';
  for (const edge::TaskRecord* t : r.metrics.records()) {
    os << t->job_id << ',' << t->task_index << ',' << t->server << ','
       << t->submitted.ns() << ',' << t->scheduled.ns() << ','
       << t->transfer_start.ns() << ',' << t->transfer_end.ns() << ','
       << t->exec_end.ns() << ',' << t->completed.ns() << '\n';
  }
  return os.str();
}

exp::ExperimentConfig small_faulty_config() {
  exp::ExperimentConfig cfg;
  cfg.seed = 99;
  cfg.workload.total_tasks = 24;
  cfg.workload.job_interval = sim::SimDuration::seconds(2);
  cfg.faults.seed = 99;
  cfg.faults.probe.drop_probability = 0.2;
  cfg.faults.probe.delay_probability = 0.1;
  cfg.faults.link_flaps.push_back(
      net::LinkFlapSpec{core::NodeId{0}, core::NodeId{8}, sim::SimTime::seconds(5),
                        sim::SimTime::seconds(12)});
  cfg.telemetry_staleness = ms(300);
  return cfg;
}

TEST(FaultPropertyTest, SameSeedExperimentReportsAreByteIdentical) {
  const exp::ExperimentConfig cfg = small_faulty_config();
  const std::string a = report_blob(exp::run_experiment(cfg));
  const std::string b = report_blob(exp::run_experiment(cfg));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FaultPropertyTest, FaultSeedChangesOnlyFaultStream) {
  // Different fault seed, same workload seed: the run differs (faults hit
  // different probes) but stays a valid, complete experiment.
  exp::ExperimentConfig cfg = small_faulty_config();
  const exp::ExperimentResult a = exp::run_experiment(cfg);
  cfg.faults.seed = 123;
  const exp::ExperimentResult b = exp::run_experiment(cfg);
  EXPECT_EQ(a.tasks_total, b.tasks_total);
  EXPECT_EQ(a.tasks_completed, a.tasks_total);
  EXPECT_EQ(b.tasks_completed, b.tasks_total);
  EXPECT_NE(report_blob(a), report_blob(b));
}

}  // namespace
}  // namespace intsched
