// Acceptance tests for graceful degradation: experiments complete under
// injected faults, the degradation ledger reflects the injected loss, and
// the fault-free configuration is exactly the seed behaviour.
#include <gtest/gtest.h>

#include <string>

#include "intsched/exp/experiment.hpp"
#include "intsched/exp/fault_sweep.hpp"

namespace intsched {
namespace {

exp::ExperimentConfig small_config() {
  exp::ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.workload.total_tasks = 30;
  cfg.workload.job_interval = sim::SimDuration::seconds(2);
  return cfg;
}

TEST(DegradationTest, FaultFreeRunHasAllZeroCounters) {
  const exp::ExperimentResult r = exp::run_experiment(small_config());
  EXPECT_EQ(r.tasks_completed, r.tasks_total);
  EXPECT_FALSE(r.degradation.any()) << edge::to_string(r.degradation);
}

TEST(DegradationTest, TwentyPercentProbeLossDegradesGracefully) {
  // The ISSUE's acceptance scenario: a 20% probe-loss plan with the
  // staleness window on. The run must complete every task while the
  // stale-fallback machinery visibly engages.
  exp::ExperimentConfig cfg = small_config();
  cfg.faults.seed = cfg.seed;
  cfg.faults.probe.drop_probability = 0.2;
  cfg.telemetry_staleness = sim::SimDuration::milliseconds(300);
  const exp::ExperimentResult r = exp::run_experiment(cfg);

  EXPECT_EQ(r.tasks_completed, r.tasks_total);
  EXPECT_GT(r.degradation.probes_dropped, 0);
  // ~20% of the per-host probe budget was suppressed.
  const double loss =
      static_cast<double>(r.degradation.probes_dropped) /
      static_cast<double>(r.probes_sent + r.degradation.probes_dropped);
  EXPECT_GT(loss, 0.15);
  EXPECT_LT(loss, 0.25);
  // The stale-fallback machinery engaged at least once.
  EXPECT_GT(r.degradation.stale_lookups + r.degradation.fallback_decisions,
            0)
      << edge::to_string(r.degradation);
}

TEST(DegradationTest, LinkFlapLossesAreCountedAndSurvived) {
  exp::ExperimentConfig cfg = small_config();
  cfg.faults.seed = cfg.seed;
  cfg.faults.link_flaps.push_back(net::LinkFlapSpec{
      core::NodeId{0}, core::NodeId{8}, sim::SimTime::seconds(3), sim::SimTime::seconds(8)});
  cfg.telemetry_staleness = sim::SimDuration::milliseconds(500);
  const exp::ExperimentResult r = exp::run_experiment(cfg);

  EXPECT_EQ(r.tasks_completed, r.tasks_total);
  EXPECT_GT(r.degradation.packets_lost_link_down, 0);
  EXPECT_EQ(r.degradation.link_flap_events, 2);  // one down + one up
}

TEST(DegradationTest, SwitchKillRestartIsCountedAndSurvived) {
  exp::ExperimentConfig cfg = small_config();
  cfg.faults.seed = cfg.seed;
  // Kill pod-0's mid switch for five seconds mid-run.
  cfg.faults.switch_kills.push_back(net::SwitchKillSpec{
      core::NodeId{10}, sim::SimTime::seconds(4), sim::SimTime::seconds(9)});
  cfg.telemetry_staleness = sim::SimDuration::milliseconds(500);
  const exp::ExperimentResult r = exp::run_experiment(cfg);

  EXPECT_EQ(r.tasks_completed, r.tasks_total);
  EXPECT_EQ(r.degradation.switch_kills, 1);
  EXPECT_EQ(r.degradation.switch_restarts, 1);
  EXPECT_GT(r.degradation.stale_lookups + r.degradation.fallback_decisions,
            0)
      << edge::to_string(r.degradation);
}

TEST(DegradationTest, FaultSweepCompletesWithMonotoneLoss) {
  exp::FaultSweepConfig cfg;
  cfg.base = small_config();
  cfg.base.workload.total_tasks = 16;
  cfg.drop_rates = {0.0, 0.2, 0.5};
  const exp::FaultSweepResult sweep = exp::run_fault_sweep(cfg);

  ASSERT_EQ(sweep.rows.size(), 3u);
  for (const exp::FaultSweepRow& row : sweep.rows) {
    EXPECT_EQ(row.result.tasks_completed, row.result.tasks_total)
        << "drop rate " << row.drop_rate;
  }
  // Loss counters scale with the injected rate.
  EXPECT_EQ(sweep.rows[0].result.degradation.probes_dropped, 0);
  EXPECT_GT(sweep.rows[1].result.degradation.probes_dropped, 0);
  EXPECT_GT(sweep.rows[2].result.degradation.probes_dropped,
            sweep.rows[1].result.degradation.probes_dropped);
  // The rendered table is well-formed (one row per sweep point).
  const std::string table = exp::render_fault_sweep(sweep).to_string();
  EXPECT_NE(table.find("20%"), std::string::npos);
  EXPECT_NE(table.find("50%"), std::string::npos);
}

std::string timeline(const exp::ExperimentResult& r) {
  std::string out;
  for (const edge::TaskRecord* t : r.metrics.records()) {
    out += std::to_string(t->job_id) + ':' + std::to_string(t->server.value()) +
           ':' + std::to_string(t->completed.ns()) + '\n';
  }
  return out;
}

TEST(DegradationTest, StalenessWindowAloneDoesNotPerturbHealthyRuns) {
  // With probes flowing normally, enabling the staleness window must not
  // change scheduling outcomes. Queries served before the first probe
  // reports land legitimately see never-measured (hence stale) paths and
  // fall back, but the fallback ordering coincides with the fresh ranking
  // there, so the two runs stay event-for-event identical.
  exp::ExperimentConfig cfg = small_config();
  const exp::ExperimentResult plain = exp::run_experiment(cfg);
  cfg.telemetry_staleness = sim::SimDuration::seconds(1);
  const exp::ExperimentResult windowed = exp::run_experiment(cfg);

  EXPECT_EQ(plain.tasks_completed, windowed.tasks_completed);
  EXPECT_EQ(plain.events_executed, windowed.events_executed);
  EXPECT_EQ(timeline(plain), timeline(windowed));
  // Any fallbacks happened during warm-up, not steady state.
  EXPECT_LT(windowed.degradation.fallback_decisions, 3);
}

}  // namespace
}  // namespace intsched
