#include "sched.hpp"

#include <memory>

namespace demo {

int Helper::refresh() {
  auto p = std::make_unique<int>(7);  // expect(hot-alloc)
  // expect-via(Frontend::serve->Ranker::rank_into->Helper::refresh)
  return *p;
}

int Ranker::rank_into(Helper& h) {
  return h.refresh();
}

int Frontend::serve() {
  return ranker_.rank_into(helper_);
}

}  // namespace demo
