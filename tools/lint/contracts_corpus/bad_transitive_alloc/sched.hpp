#pragma once
#include "contract_macros.hpp"

// The canonical hole detlint v2 cannot see: the allocation is three
// calls and two files away from the hot entry point.
namespace demo {

struct Helper {
  int refresh();  // allocates, in sched.cpp
};

struct Ranker {
  int rank_into(Helper& h);
};

struct Frontend {
  INTSCHED_HOTPATH int serve();
  Ranker ranker_;
  Helper helper_;
};

}  // namespace demo
