#pragma once
#include "contract_macros.hpp"

#include <vector>

namespace demo {

// The warm-path idiom the contract is careful NOT to flag: appending
// into caller-owned scratch that retains its capacity ("allocation-free
// once warm", the same semantics the counting-operator-new test gates).
struct Pipe {
  INTSCHED_HOTPATH void emit(std::vector<long>& out);
  void fill(std::vector<long>& out);
};

}  // namespace demo
