#include "pipe.hpp"

namespace demo {

void Pipe::fill(std::vector<long>& out) {
  for (long i = 0; i < 8; ++i) {
    out.push_back(i);
  }
}

void Pipe::emit(std::vector<long>& out) {
  out.clear();
  fill(out);
}

}  // namespace demo
