#include "tbl.hpp"

namespace demo {

long Table::scan() {
  long best = 0;
  for (const auto& kv : load_) {  // expect(hot-unordered-iter)
    // expect-via(Table::busiest->Table::scan)
    if (kv.second > best) best = kv.second;
  }
  return best;
}

long Table::busiest() {
  return scan();
}

}  // namespace demo
