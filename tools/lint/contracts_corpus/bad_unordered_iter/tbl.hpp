#pragma once
#include "contract_macros.hpp"

#include <unordered_map>

namespace demo {

// Hash-order iteration on the decision path, one call below the root:
// detlint flags this file-locally; here the *reachability* is the point.
struct Table {
  INTSCHED_HOTPATH long busiest();
  long scan();
  std::unordered_map<int, long> load_;
};

}  // namespace demo
