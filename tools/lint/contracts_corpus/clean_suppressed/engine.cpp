#include "engine.hpp"

namespace demo {

long Engine::warm() {
  // Every call after the first is a relaxed atomic flag test.
  // intsched-contract: allow(hot-lock): once-per-process memo fill
  std::call_once(once_, [this] { cache_ = 42; });
  return cache_;
}

void Engine::refill() {
  cache_ += 1;
}

long Engine::decide() {
  // intsched-contract: allow(hot-coldcall): sanctioned warm-start refill
  refill();
  return warm();
}

}  // namespace demo
