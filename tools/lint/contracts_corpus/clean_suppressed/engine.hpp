#pragma once
#include "contract_macros.hpp"

#include <mutex>

namespace demo {

// Every violation here carries a named, justified suppression — the
// tree-scan discipline: clean means "no finding without a reason",
// not "no sanctioned exception".
struct Engine {
  INTSCHED_HOTPATH long decide();
  INTSCHED_COLDPATH void refill();
  long warm();
  std::once_flag once_;
  long cache_ = 0;
};

}  // namespace demo
