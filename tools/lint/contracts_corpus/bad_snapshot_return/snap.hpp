#pragma once
#include "contract_macros.hpp"

#include <memory>

namespace demo {

struct RankSnapshot {
  const int* data() const;
  int best_ = 0;
};

// keep() alone is not a violation (its caller may own the handle for
// long enough); forwarding its result out of the frame that pinned the
// epoch is. The analyzer must link the two.
const RankSnapshot* keep(const RankSnapshot& s);

struct Holder {
  std::shared_ptr<RankSnapshot> view() const;
  const RankSnapshot* leak();
  const RankSnapshot* grab();
  std::shared_ptr<RankSnapshot> current_;
};

}  // namespace demo
