#include "snap.hpp"

namespace demo {

const int* RankSnapshot::data() const {
  return &best_;
}

const RankSnapshot* keep(const RankSnapshot& s) {
  return &s;
}

std::shared_ptr<RankSnapshot> Holder::view() const {
  return current_;
}

const RankSnapshot* Holder::leak() {
  auto snap = view();
  return snap.get();  // expect(snapshot-return)
}

const RankSnapshot* Holder::grab() {
  auto snap = view();
  return keep(*snap);  // expect(snapshot-return)
  // expect-via(Holder::grab->keep)
}

}  // namespace demo
