#include "contract_macros.hpp"

#include <vector>

namespace demo {

// A misspelled rule name must be a hard error, not a silent no-op that
// leaves the writer believing the line is covered.
// expect-error(unknown rule 'hot-allocc')

struct Builder {
  INTSCHED_COLDPATH std::vector<int> assemble();
};

std::vector<int> Builder::assemble() {
  // intsched-contract: allow(hot-allocc): typo, never matches any rule
  std::vector<int> out(4);
  return out;
}

}  // namespace demo
