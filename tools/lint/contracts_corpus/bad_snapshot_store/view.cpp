#include "view.hpp"

namespace demo {

int MetroView::rank() const {
  return epoch_;
}

void Cache::remember(const MetroView& view) {
  last_ = &view;  // expect(snapshot-store)
  // expect-via(Service::refresh->Cache::remember)
}

std::shared_ptr<MetroView> Service::view() const {
  return current_;
}

void Service::refresh(Cache& c) {
  auto v = view();
  c.remember(*v);
}

}  // namespace demo
