#pragma once
#include "contract_macros.hpp"

#include <memory>

namespace demo {

struct MetroView {
  int rank() const;
  int epoch_ = 0;
};

// The cross-function escape detlint's single-statement rule misses:
// remember() itself only sees "a reference parameter" — the violation
// is the *pair* (caller hands an epoch-bound view, callee stores it).
struct Cache {
  void remember(const MetroView& view);
  const MetroView* last_ = nullptr;
};

struct Service {
  std::shared_ptr<MetroView> view() const;
  void refresh(Cache& c);
  std::shared_ptr<MetroView> current_;
};

}  // namespace demo
