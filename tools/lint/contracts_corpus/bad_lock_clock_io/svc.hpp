#pragma once
#include "contract_macros.hpp"

#include <mutex>

namespace demo {

// One hot root fanning out to three helpers, each breaking a different
// rule family: the analyzer must report all three with their own
// multi-hop witnesses.
struct Svc {
  INTSCHED_HOTPATH long answer();
  long warm();
  long stamp();
  void log_decision(long v);
  std::mutex mu_;
  long cached_ = 0;
};

}  // namespace demo
